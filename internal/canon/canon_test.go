package canon

import (
	"testing"

	"repro/internal/eq"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func edgeP(a, b string) *pattern.Pattern {
	p := pattern.New()
	x := p.AddVar("x", a)
	y := p.AddVar("y", b)
	p.AddEdge(x, y, "e")
	return p
}

func TestBuildSigmaDisjointUnion(t *testing.T) {
	phi1 := gfd.MustNew("p1", edgeP("a", "b"), nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	phi2 := gfd.MustNew("p2", edgeP("b", "c"), nil, []gfd.Literal{gfd.Const(0, "B", "2")})
	cs := BuildSigma(gfd.NewSet(phi1, phi2))
	if cs.Graph.NumNodes() != 4 || cs.Graph.NumEdges() != 2 {
		t.Fatalf("G_Σ has %d nodes %d edges; want 4, 2", cs.Graph.NumNodes(), cs.Graph.NumEdges())
	}
	// Offsets rename variables apart.
	if cs.NodeOf(0, 0) == cs.NodeOf(1, 0) {
		t.Error("patterns not renamed apart")
	}
	if cs.Graph.Label(cs.NodeOf(1, 0)) != "b" {
		t.Errorf("offset mapping wrong: label %q", cs.Graph.Label(cs.NodeOf(1, 0)))
	}
	// F_A^Σ is empty: no attributes yet.
	for i := 0; i < cs.Graph.NumNodes(); i++ {
		if len(cs.Graph.Attrs(graph.NodeID(i))) != 0 {
			t.Error("canonical graph has non-empty attribute assignment")
		}
	}
	// Terms address offset nodes.
	tm := cs.TermOf(1, 1, "B")
	if tm.Node != cs.NodeOf(1, 1) || tm.Attr != "B" {
		t.Errorf("TermOf = %v", tm)
	}
}

func TestBuildSigmaKeepsWildcards(t *testing.T) {
	p := pattern.New()
	p.AddVar("x", graph.Wildcard)
	phi := gfd.MustNew("w", p, nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	cs := BuildSigma(gfd.NewSet(phi))
	if cs.Graph.Label(0) != graph.Wildcard {
		t.Errorf("wildcard node label = %q", cs.Graph.Label(0))
	}
}

func TestBuildPhiSeedsEqX(t *testing.T) {
	p := edgeP("a", "b")
	phi := gfd.MustNew("i", p,
		[]gfd.Literal{gfd.Const(0, "A", "1"), gfd.Vars(0, "B", 1, "C")},
		[]gfd.Literal{gfd.Const(1, "D", "2")})
	cp := BuildPhi(phi)
	if cp.Graph.NumNodes() != 2 {
		t.Fatalf("G^X_Q nodes = %d", cp.Graph.NumNodes())
	}
	if c, ok := cp.EqX.Const(eq.Term{Node: 0, Attr: "A"}); !ok || c != "1" {
		t.Errorf("Eq_X missing x.A=1: %q %v", c, ok)
	}
	if !cp.EqX.Same(eq.Term{Node: 0, Attr: "B"}, eq.Term{Node: 1, Attr: "C"}) {
		t.Error("Eq_X missing x.B=y.C merge")
	}
	// The construction log must be drained (Eq_X is base state, not delta).
	if d := cp.EqX.TakeDelta(); len(d) != 0 {
		t.Errorf("Eq_X left %d ops in the broadcast log", len(d))
	}
}

func TestBuildPhiTransitivity(t *testing.T) {
	// x.A = y.B and y.B = y.C must put all three in one class (F^X_A closed
	// under transitivity).
	p := edgeP("a", "b")
	phi := gfd.MustNew("t", p,
		[]gfd.Literal{gfd.Vars(0, "A", 1, "B"), gfd.Vars(1, "B", 1, "C")},
		nil)
	cp := BuildPhi(phi)
	if !cp.EqX.Same(eq.Term{Node: 0, Attr: "A"}, eq.Term{Node: 1, Attr: "C"}) {
		t.Error("transitive closure broken in Eq_X")
	}
}

func TestBuildPhiInconsistentX(t *testing.T) {
	p := edgeP("a", "b")
	phi := gfd.MustNew("c", p,
		[]gfd.Literal{gfd.Const(0, "A", "1"), gfd.Const(0, "A", "2")},
		nil)
	cp := BuildPhi(phi)
	if cp.EqX.Conflicted() == nil {
		t.Error("inconsistent X not detected at construction")
	}
}

func TestYDeduced(t *testing.T) {
	p := edgeP("a", "b")
	phi := gfd.MustNew("y", p, nil,
		[]gfd.Literal{gfd.Const(0, "A", "1"), gfd.Vars(0, "B", 1, "B")})
	cp := BuildPhi(phi)
	e := eq.New()
	if cp.YDeduced(e) {
		t.Error("empty Eq deduces Y")
	}
	e.AssignConst(eq.Term{Node: 0, Attr: "A"}, "1")
	if cp.YDeduced(e) {
		t.Error("partial Eq deduces Y")
	}
	e.Merge(eq.Term{Node: 0, Attr: "B"}, eq.Term{Node: 1, Attr: "B"})
	if !cp.YDeduced(e) {
		t.Error("full Eq does not deduce Y")
	}
	// Equal constants deduce a variable literal without a merge.
	e2 := eq.New()
	e2.AssignConst(eq.Term{Node: 0, Attr: "A"}, "1")
	e2.AssignConst(eq.Term{Node: 0, Attr: "B"}, "7")
	e2.AssignConst(eq.Term{Node: 1, Attr: "B"}, "7")
	if !cp.YDeduced(e2) {
		t.Error("equal constants do not deduce x.B=y.B")
	}
	// Empty Y is trivially deduced.
	triv := gfd.MustNew("e", edgeP("a", "b"), nil, nil)
	if !BuildPhi(triv).YDeduced(eq.New()) {
		t.Error("empty Y not trivially deduced")
	}
}
