// Package canon builds the canonical graphs of the small model properties:
// G_Σ for satisfiability (Section IV-B) and G^X_Q for implication
// (Section VI-A).
package canon

import (
	"repro/internal/eq"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Sigma is the canonical graph G_Σ of a set Σ: the disjoint union of all
// patterns in Σ (variables renamed apart by node-ID offsets), with an empty
// attribute assignment. Wildcard pattern labels are kept as the literal '_'
// label, so only wildcard pattern nodes can match them.
type Sigma struct {
	Graph *graph.Graph
	// Offset[i] maps pattern variables of Σ.GFDs[i] into Graph node IDs:
	// node = Offset[i] + NodeID(var).
	Offset []graph.NodeID
	Set    *gfd.Set
}

// BuildSigma constructs G_Σ.
func BuildSigma(set *gfd.Set) *Sigma {
	g := graph.New()
	offsets := make([]graph.NodeID, set.Len())
	for i, phi := range set.GFDs {
		offsets[i] = g.DisjointUnion(phi.Pattern.AsGraph())
	}
	return &Sigma{Graph: g, Offset: offsets, Set: set}
}

// NodeOf returns the G_Σ node that pattern variable v of Σ.GFDs[i] denotes.
func (s *Sigma) NodeOf(i int, v pattern.Var) graph.NodeID {
	return s.Offset[i] + graph.NodeID(v)
}

// TermOf returns the Eq term for attribute a of variable v of Σ.GFDs[i].
func (s *Sigma) TermOf(i int, v pattern.Var, a string) eq.Term {
	return eq.Term{Node: s.NodeOf(i, v), Attr: a}
}

// Phi is the canonical graph G^X_Q of a GFD φ = Q[x̄](X → Y): the pattern Q
// materialized as a data graph (node IDs equal variable indexes), plus the
// equivalence relation Eq_X encoding F^X_A — the attribute constraints of X
// closed under transitivity of equality.
type Phi struct {
	Graph *graph.Graph
	// EqX encodes F^X_A. It may already be conflicted when X is inconsistent
	// (e.g. x.A=1 ∧ x.A=2), in which case Σ |= φ holds trivially.
	EqX *eq.Eq
	GFD *gfd.GFD
}

// BuildPhi constructs G^X_Q with Eq_X.
func BuildPhi(phi *gfd.GFD) *Phi {
	g := phi.Pattern.AsGraph()
	e := eq.New()
	for _, l := range phi.X {
		switch l.Kind {
		case gfd.ConstLiteral:
			e.AssignConst(eq.Term{Node: graph.NodeID(l.X), Attr: l.A}, l.Const)
		case gfd.VarLiteral:
			e.Merge(eq.Term{Node: graph.NodeID(l.X), Attr: l.A}, eq.Term{Node: graph.NodeID(l.Y), Attr: l.B})
		}
	}
	// Drain the construction log: Eq_X is the starting point replicated to
	// every worker, not a delta to broadcast.
	e.TakeDelta()
	return &Phi{Graph: g, EqX: e, GFD: phi}
}

// YDeduced reports whether Y ⊆ Eq_H: every consequent literal of φ is
// deducible from the given relation (Corollary 4's success condition).
func (p *Phi) YDeduced(e *eq.Eq) bool {
	for _, l := range p.GFD.Y {
		switch l.Kind {
		case gfd.ConstLiteral:
			c, ok := e.Const(eq.Term{Node: graph.NodeID(l.X), Attr: l.A})
			if !ok || c != l.Const {
				return false
			}
		case gfd.VarLiteral:
			t := eq.Term{Node: graph.NodeID(l.X), Attr: l.A}
			u := eq.Term{Node: graph.NodeID(l.Y), Attr: l.B}
			if e.Same(t, u) {
				continue
			}
			// Classes forced to the same constant are equal in every
			// population even without a merge.
			ct, okT := e.Const(t)
			cu, okU := e.Const(u)
			if !(okT && okU && ct == cu) {
				return false
			}
		}
	}
	return true
}
