package depgraph

import (
	"testing"

	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func mk(label string, x []gfd.Literal, y []gfd.Literal) *gfd.GFD {
	p := pattern.New()
	p.AddVar("x", label)
	return gfd.MustNew("g", p, x, y)
}

func TestFeeds(t *testing.T) {
	// ψ1 writes A on label a; ψ2 reads A on label a → feeds.
	psi1 := mk("a", nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	psi2 := mk("a", []gfd.Literal{gfd.Const(0, "A", "1")}, []gfd.Literal{gfd.Const(0, "B", "1")})
	psi3 := mk("b", []gfd.Literal{gfd.Const(0, "A", "1")}, nil) // different label
	psi4 := mk("a", []gfd.Literal{gfd.Const(0, "C", "1")}, nil) // different attr
	it := NewInteraction(gfd.NewSet(psi1, psi2, psi3, psi4))
	if !it.Feeds(0, 1) {
		t.Error("same-label same-attr should feed")
	}
	if it.Feeds(0, 2) {
		t.Error("label-incompatible attrs should not feed")
	}
	if it.Feeds(0, 3) {
		t.Error("different attribute should not feed")
	}
	if it.Feeds(1, 0) {
		t.Error("feeding is directional (Y1 → X2)")
	}
}

func TestFeedsWildcardCompat(t *testing.T) {
	w := mk(graph.Wildcard, nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	c := mk("a", []gfd.Literal{gfd.Const(0, "A", "1")}, nil)
	it := NewInteraction(gfd.NewSet(w, c))
	if !it.Feeds(0, 1) {
		t.Error("wildcard consequent should feed any label's antecedent")
	}
}

func TestFeedsVarLiteralBothSides(t *testing.T) {
	// A variable literal mentions two attributes; both count.
	p := pattern.New()
	p.AddVar("x", "a")
	p.AddVar("y", "b")
	writer := gfd.MustNew("w", p, nil, []gfd.Literal{gfd.Vars(0, "A", 1, "B")})
	readerB := mk("b", []gfd.Literal{gfd.Const(0, "B", "1")}, nil)
	it := NewInteraction(gfd.NewSet(writer, readerB))
	if !it.Feeds(0, 1) {
		t.Error("var literal's rhs attribute not seen as written")
	}
}

func TestOrderGFDsEmptyXFirst(t *testing.T) {
	a := mk("a", []gfd.Literal{gfd.Const(0, "A", "1")}, []gfd.Literal{gfd.Const(0, "B", "1")})
	b := mk("a", nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	set := gfd.NewSet(a, b)
	order := OrderGFDs(set)
	if order[0] != 1 {
		t.Errorf("order = %v; the ∅-antecedent GFD must come first", order)
	}
}

func TestOrderGFDsTopological(t *testing.T) {
	// c writes C; b reads C writes B; a reads B. All nonempty X so the
	// partition doesn't reorder. Expect c before b before a.
	a := mk("a", []gfd.Literal{gfd.Const(0, "B", "1")}, []gfd.Literal{gfd.Const(0, "Z", "1")})
	b := mk("a", []gfd.Literal{gfd.Const(0, "C", "1")}, []gfd.Literal{gfd.Const(0, "B", "1")})
	c := mk("a", []gfd.Literal{gfd.Const(0, "D", "1")}, []gfd.Literal{gfd.Const(0, "C", "1")})
	set := gfd.NewSet(a, b, c)
	order := OrderGFDs(set)
	pos := make(map[int]int)
	for i, g := range order {
		pos[g] = i
	}
	if !(pos[2] < pos[1] && pos[1] < pos[0]) {
		t.Errorf("order = %v; want writer-before-reader (c,b,a)", order)
	}
}

func TestOrderGFDsCycleTerminates(t *testing.T) {
	// a and b feed each other: SCC condensation must still give a total
	// order containing both.
	a := mk("a", []gfd.Literal{gfd.Const(0, "A", "1")}, []gfd.Literal{gfd.Const(0, "B", "1")})
	b := mk("a", []gfd.Literal{gfd.Const(0, "B", "1")}, []gfd.Literal{gfd.Const(0, "A", "1")})
	order := OrderGFDs(gfd.NewSet(a, b))
	if len(order) != 2 {
		t.Fatalf("cyclic order = %v", order)
	}
}

func TestUnitDepsRequiresProximity(t *testing.T) {
	// Two units with feeding GFDs but far-apart pivots: no edge. Close
	// pivots: edge.
	writer := mk("a", nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	reader := mk("a", []gfd.Literal{gfd.Const(0, "A", "1")}, []gfd.Literal{gfd.Const(0, "B", "1")})
	set := gfd.NewSet(writer, reader)
	it := NewInteraction(set)

	g := graph.New()
	n0 := g.AddNode("a")
	n1 := g.AddNode("a")
	g.AddEdge(n0, n1, "e") // adjacent
	far := g.AddNode("a")  // isolated

	units := []Unit{
		{GFD: 0, Pivot: n0},
		{GFD: 1, Pivot: n1},
		{GFD: 1, Pivot: far},
	}
	radii := []int{1, 1}
	adj := UnitDeps(units, it, g, radii)
	found := func(from, to int) bool {
		for _, x := range adj[from] {
			if x == to {
				return true
			}
		}
		return false
	}
	if !found(0, 1) {
		t.Error("adjacent feeding units not linked")
	}
	if found(0, 2) {
		t.Error("distant pivots linked though out of d_Q reach")
	}
}

func TestUnitPrioritiesHighFirst(t *testing.T) {
	writer := mk("a", nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	reader := mk("a", []gfd.Literal{gfd.Const(0, "A", "1")}, nil)
	set := gfd.NewSet(writer, reader)
	units := []Unit{{GFD: 1, Pivot: 0}, {GFD: 0, Pivot: 0}}
	ranks := UnitPriorities(units, make([][]int, 2), set, nil)
	if !(ranks[1] < ranks[0]) {
		t.Errorf("ranks = %v; ∅-antecedent unit must rank first", ranks)
	}
	// Custom highFirst inverts the choice.
	ranks = UnitPriorities(units, make([][]int, 2), set, func(u Unit) bool { return u.GFD == 1 })
	if !(ranks[0] < ranks[1]) {
		t.Errorf("custom highFirst ignored: %v", ranks)
	}
}
