// Package depgraph builds the dependency structures used to order GFD
// enforcement (Section V-B): attribute-level interaction between GFDs
// (the antecedent of one may depend on the consequent of another) and the
// dependency graph over pivoted work units, from which a topological
// priority is deduced.
package depgraph

import (
	"container/heap"
	"sort"

	"repro/internal/gfd"
	"repro/internal/graph"
)

// attrSig is an attribute occurrence: attribute A on a variable labeled
// Label (possibly wildcard).
type attrSig struct {
	Label string
	Attr  string
}

// labelCompat reports whether two variable labels may denote the same data
// node: equal, or either is the wildcard.
func labelCompat(a, b string) bool {
	return a == graph.Wildcard || b == graph.Wildcard || a == b
}

// sigs extracts the attribute occurrences of a literal list.
func sigs(g *gfd.GFD, ls []gfd.Literal) []attrSig {
	var out []attrSig
	for _, l := range ls {
		out = append(out, attrSig{Label: g.Pattern.Label(l.X), Attr: l.A})
		if l.Kind == gfd.VarLiteral {
			out = append(out, attrSig{Label: g.Pattern.Label(l.Y), Attr: l.B})
		}
	}
	return out
}

// Interaction summarizes, for a set Σ, which GFDs' consequents feed which
// GFDs' antecedents.
type Interaction struct {
	set *gfd.Set
	out [][]attrSig // consequent signatures per GFD
	in  [][]attrSig // antecedent signatures per GFD
}

// NewInteraction precomputes the literal signatures of Σ.
func NewInteraction(set *gfd.Set) *Interaction {
	it := &Interaction{set: set, out: make([][]attrSig, set.Len()), in: make([][]attrSig, set.Len())}
	for i, g := range set.GFDs {
		it.out[i] = sigs(g, g.Y)
		it.in[i] = sigs(g, g.X)
	}
	return it
}

// Feeds reports whether some attribute written by Σ[i]'s consequent may be
// read by Σ[j]'s antecedent (same attribute name on label-compatible
// variables).
func (it *Interaction) Feeds(i, j int) bool {
	for _, o := range it.out[i] {
		for _, n := range it.in[j] {
			if o.Attr == n.Attr && labelCompat(o.Label, n.Label) {
				return true
			}
		}
	}
	return false
}

// OrderGFDs returns the indexes of Σ in enforcement order: GFDs with empty
// antecedents first (they seed the initial attribute batch), then a
// topological order of the interaction structure with cycles broken by SCC
// condensation; ties resolve by original index, keeping output deterministic.
//
// Instead of materializing the quadratic GFD×GFD graph, the order is
// computed on the bipartite graph GFD → written-attribute → reading-GFD
// (labels ignored — a sound coarsening: it only adds edges), which is
// O(|Σ|·l) in size. The quadratic Feeds relation remains available for the
// work-unit dependency graph, which is capped separately.
func OrderGFDs(set *gfd.Set) []int {
	n := set.Len()
	// Attribute node ids start at n.
	attrID := make(map[string]int)
	id := func(a string) int {
		if v, ok := attrID[a]; ok {
			return v
		}
		v := n + len(attrID)
		attrID[a] = v
		return v
	}
	type edge struct{ from, to int }
	var edges []edge
	for i, g := range set.GFDs {
		for _, s := range sigs(g, g.Y) {
			edges = append(edges, edge{i, id(s.Attr)})
		}
		for _, s := range sigs(g, g.X) {
			edges = append(edges, edge{id(s.Attr), i})
		}
	}
	total := n + len(attrID)
	adj := make([][]int, total)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	full := topoSCC(total, adj)
	order := make([]int, 0, n)
	for _, v := range full {
		if v < n {
			order = append(order, v)
		}
	}
	// Stable-partition: empty-antecedent GFDs to the front, preserving the
	// topological order within each part.
	var front, back []int
	for _, i := range order {
		if len(set.GFDs[i].X) == 0 {
			front = append(front, i)
		} else {
			back = append(back, i)
		}
	}
	return append(front, back...)
}

// topoSCC returns a topological order of the condensation of the directed
// graph (Tarjan SCC + Kahn over components), with deterministic tie-breaks.
func topoSCC(n int, adj [][]int) []int {
	comp := tarjan(n, adj)
	nc := 0
	for _, c := range comp {
		if c+1 > nc {
			nc = c + 1
		}
	}
	// Component DAG.
	cadj := make([]map[int]bool, nc)
	indeg := make([]int, nc)
	for i := range cadj {
		cadj[i] = make(map[int]bool)
	}
	for u := 0; u < n; u++ {
		for _, v := range adj[u] {
			if comp[u] != comp[v] && !cadj[comp[u]][comp[v]] {
				cadj[comp[u]][comp[v]] = true
				indeg[comp[v]]++
			}
		}
	}
	members := make([][]int, nc)
	for i := 0; i < n; i++ {
		members[comp[i]] = append(members[comp[i]], i)
	}
	for _, m := range members {
		sort.Ints(m)
	}
	// Kahn with a min-heap keyed by each component's smallest member, for a
	// deterministic order without re-sorting per pop.
	h := &compHeap{members: members}
	for c := 0; c < nc; c++ {
		if indeg[c] == 0 {
			heap.Push(h, c)
		}
	}
	var order []int
	for h.Len() > 0 {
		c := heap.Pop(h).(int)
		order = append(order, members[c]...)
		for d := range cadj[c] {
			indeg[d]--
			if indeg[d] == 0 {
				heap.Push(h, d)
			}
		}
	}
	return order
}

// compHeap orders component ids by their smallest member index.
type compHeap struct {
	items   []int
	members [][]int
}

func (h *compHeap) Len() int           { return len(h.items) }
func (h *compHeap) Less(i, j int) bool { return h.members[h.items[i]][0] < h.members[h.items[j]][0] }
func (h *compHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *compHeap) Push(x interface{}) { h.items = append(h.items, x.(int)) }
func (h *compHeap) Pop() interface{} {
	n := len(h.items)
	v := h.items[n-1]
	h.items = h.items[:n-1]
	return v
}

// tarjan assigns SCC component ids (iterative Tarjan; ids are in reverse
// topological completion order, unused beyond identity here).
func tarjan(n int, adj [][]int) []int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onstack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	next := 0
	ncomp := 0

	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		var call []frame
		call = append(call, frame{root, 0})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onstack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onstack[w] = true
					call = append(call, frame{w, 0})
				} else if onstack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}

// Unit identifies a pivoted work unit (Q_φ[z], φ): GFD index within Σ and
// pivot node z in the canonical graph.
type Unit struct {
	GFD   int
	Pivot graph.NodeID
}

// UnitDeps computes the work-unit dependency graph of Section V-B: an edge
// (w1, w2) when w1's GFD consequent feeds w2's GFD antecedent AND the two
// pivots are within d_Q1 hops of each other in the canonical graph g, where
// d_Q1 is the radius of w1's pattern at its pivot variable. radii[i] is that
// radius for Σ.GFDs[i].
//
// The proximity condition makes the graph sparse in canonical graphs (a
// disjoint union of small patterns bounds every neighborhood by one
// component), so candidate pairs are enumerated through a pivot index
// rather than all unit pairs, and the Feeds relation is memoized per GFD
// pair.
func UnitDeps(units []Unit, it *Interaction, g graph.Reader, radii []int) [][]int {
	adj := make([][]int, len(units))
	byPivot := make(map[graph.NodeID][]int)
	for i, u := range units {
		byPivot[u.Pivot] = append(byPivot[u.Pivot], i)
	}
	n := it.set.Len()
	memo := make([]int8, n*n) // 0 unknown, 1 feeds, -1 does not
	feeds := func(a, b int) bool {
		m := memo[a*n+b]
		if m != 0 {
			return m == 1
		}
		f := it.Feeds(a, b)
		if f {
			memo[a*n+b] = 1
		} else {
			memo[a*n+b] = -1
		}
		return f
	}
	for i, u := range units {
		hood := g.Neighborhood(u.Pivot, radii[u.GFD])
		for z := range hood {
			for _, j := range byPivot[z] {
				if j != i && feeds(u.GFD, units[j].GFD) {
					adj[i] = append(adj[i], j)
				}
			}
		}
	}
	return adj
}

// UnitPriorities returns, for each unit, a priority rank (lower = earlier)
// combining: (1) units whose GFD has an empty antecedent — or, when
// highFirst is non-nil, units it marks — come first; (2) topological order
// of the unit dependency graph.
func UnitPriorities(units []Unit, adj [][]int, set *gfd.Set, highFirst func(Unit) bool) []int {
	order := topoSCC(len(units), adj)
	rank := make([]int, len(units))
	pos := 0
	// First pass: high-priority units in topo order.
	isHigh := func(u Unit) bool {
		if highFirst != nil {
			return highFirst(u)
		}
		return len(set.GFDs[u.GFD].X) == 0
	}
	for _, i := range order {
		if isHigh(units[i]) {
			rank[i] = pos
			pos++
		}
	}
	for _, i := range order {
		if !isHigh(units[i]) {
			rank[i] = pos
			pos++
		}
	}
	return rank
}
