package dataset

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/graph"
)

func TestProfileStatisticsMatchPaper(t *testing.T) {
	cases := []struct {
		p         *Profile
		nodeTypes int
		edgeTypes int
		gfdCount  int
	}{
		{DBpedia(), 200, 160, 8000},
		{YAGO2(), 13, 36, 6000},
		{Pokec(), 269, 11, 10000},
	}
	for _, c := range cases {
		if len(c.p.NodeLabels) != c.nodeTypes {
			t.Errorf("%s node types = %d, want %d", c.p.Name, len(c.p.NodeLabels), c.nodeTypes)
		}
		if len(c.p.EdgeLabels) != c.edgeTypes {
			t.Errorf("%s edge types = %d, want %d", c.p.Name, len(c.p.EdgeLabels), c.edgeTypes)
		}
		if c.p.GFDCount != c.gfdCount {
			t.Errorf("%s GFD count = %d, want %d", c.p.Name, c.p.GFDCount, c.gfdCount)
		}
	}
	if len(All()) != 3 {
		t.Error("All() should return the three paper datasets")
	}
}

func TestSampleGraphShape(t *testing.T) {
	p := YAGO2()
	g := p.SampleGraph(GraphConfig{Nodes: 500, EdgesPerNode: 3, Seed: 1})
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() < 1000 {
		t.Fatalf("edges = %d, want ≈1500 (some dedup expected)", g.NumEdges())
	}
	// Labels are skewed: the most frequent label covers a disproportionate
	// share.
	max := 0
	for _, l := range g.Labels() {
		if n := g.LabelFrequency(l); n > max {
			max = n
		}
	}
	if max < 500/len(p.NodeLabels)*2 {
		t.Errorf("label distribution looks uniform: max frequency %d", max)
	}
}

func TestSampleGraphDeterministic(t *testing.T) {
	p := DBpedia()
	a := p.SampleGraph(GraphConfig{Nodes: 100, Seed: 5})
	b := p.SampleGraph(GraphConfig{Nodes: 100, Seed: 5})
	if a.String() != b.String() {
		t.Fatal("same seed produced different graphs")
	}
	c := p.SampleGraph(GraphConfig{Nodes: 100, Seed: 6})
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestSampleGraphHasMineableFDs(t *testing.T) {
	// Even offsets are label-determined: every node of one label must agree
	// on the first attribute of its slice.
	p := Pokec()
	g := p.SampleGraph(GraphConfig{Nodes: 300, AttrsPerNode: 2, Seed: 2})
	byLabel := make(map[string]map[string]string) // label → attr → value
	for i := 0; i < g.NumNodes(); i++ {
		id := graph.NodeID(i)
		label := g.Label(id)
		for a, v := range g.Attrs(id) {
			if byLabel[label] == nil {
				byLabel[label] = map[string]string{}
			}
			if prev, ok := byLabel[label][a]; ok && prev != v && v[:1] != "v" && prev[:1] != "v" {
				t.Fatalf("label-determined attr %s of %s has two values %q %q", a, label, prev, v)
			}
			if _, ok := byLabel[label][a]; !ok {
				byLabel[label][a] = v
			}
		}
	}
}

func TestZipfIndexBounds(t *testing.T) {
	p := YAGO2()
	g := p.SampleGraph(GraphConfig{Nodes: 50, Seed: 3})
	for _, l := range g.Labels() {
		found := false
		for _, known := range p.NodeLabels {
			if l == known {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("unknown label %q in sampled graph", l)
		}
	}
}

// TestSampleFrozenEquivalence pins the Builder wiring: for the same
// profile, config and seed, SampleFrozen carries exactly the graph
// SampleGraph produces — including under the zero-value defaults, which
// exercise the capacity-hint normalization.
func TestSampleFrozenEquivalence(t *testing.T) {
	p := DBpedia()
	for _, cfg := range []GraphConfig{
		{Nodes: 60, EdgesPerNode: 4, Seed: 3},
		{Seed: 5}, // defaults: 1000 nodes x 3 edges
	} {
		g := p.SampleGraph(cfg)
		f := p.SampleFrozen(cfg)
		if g.NumNodes() != f.NumNodes() || g.NumEdges() != f.NumEdges() {
			t.Fatalf("cfg %+v: cardinalities diverge: mutable (%d,%d) frozen (%d,%d)",
				cfg, g.NumNodes(), g.NumEdges(), f.NumNodes(), f.NumEdges())
		}
		for v := 0; v < g.NumNodes(); v++ {
			id := graph.NodeID(v)
			if g.Label(id) != f.Label(id) {
				t.Fatalf("cfg %+v: label of %d diverges", cfg, v)
			}
			if fmt.Sprint(g.Attrs(id)) != fmt.Sprint(f.Attrs(id)) {
				t.Fatalf("cfg %+v: attrs of %d diverge", cfg, v)
			}
			mo, fo := g.OutByLabel(id, graph.Wildcard), f.OutByLabel(id, graph.Wildcard)
			if fmt.Sprint(mo) != fmt.Sprint(fo) {
				t.Fatalf("cfg %+v: adjacency of %d diverges: %v vs %v", cfg, v, mo, fo)
			}
		}
	}
}

// TestSampleShardedEquivalence pins the sharded emitter: the same synthesis
// as SampleFrozen, pre-partitioned, with shards<=0 resolving to the default
// shard count.
func TestSampleShardedEquivalence(t *testing.T) {
	p := YAGO2()
	cfg := GraphConfig{Nodes: 60, EdgesPerNode: 4, Seed: 3}
	f := p.SampleFrozen(cfg)
	s := p.SampleSharded(cfg, 4)
	if s.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", s.ShardCount())
	}
	if s.NumNodes() != f.NumNodes() || s.NumEdges() != f.NumEdges() {
		t.Fatalf("cardinalities diverge: sharded (%d,%d) frozen (%d,%d)",
			s.NumNodes(), s.NumEdges(), f.NumNodes(), f.NumEdges())
	}
	for v := 0; v < f.NumNodes(); v++ {
		id := graph.NodeID(v)
		mo, so := f.OutByLabel(id, graph.Wildcard), s.OutByLabel(id, graph.Wildcard)
		if fmt.Sprint(mo) != fmt.Sprint(so) {
			t.Fatalf("adjacency of %d diverges: %v vs %v", v, mo, so)
		}
	}
	if p.SampleSharded(cfg, 0).ShardCount() < 1 {
		t.Fatal("default shard count not positive")
	}
}

// TestSampleDelta pins the profile update-stream generator: deterministic
// per seed, actually mutating, and composable with Overlay/Refreeze.
func TestSampleDelta(t *testing.T) {
	p := DBpedia()
	cfg := GraphConfig{Nodes: 300, EdgesPerNode: 3, Seed: 5}
	base := p.SampleFrozen(cfg)
	d1 := p.SampleDelta(base, 50, 9)
	d2 := p.SampleDelta(base, 50, 9)
	if d1.String() != d2.String() {
		t.Fatalf("same seed drew different deltas: %v vs %v", d1, d2)
	}
	if d1.Len() == 0 {
		t.Fatal("50 ops recorded nothing")
	}
	nf := base.Refreeze(d1)
	// Derived after the Refreeze: snapshot readers die at the epoch
	// boundary, and the delta itself is untouched by the merge.
	o := d1.Overlay()
	if nf.NumEdges() != o.NumEdges() || nf.NumNodes() != o.NumNodes() {
		t.Fatalf("refreeze disagrees with overlay: (%d,%d) vs (%d,%d)",
			nf.NumNodes(), nf.NumEdges(), o.NumNodes(), o.NumEdges())
	}
	edgeLabels := make(map[string]bool)
	for _, l := range p.EdgeLabels {
		edgeLabels[l] = true
	}
	for v := 0; v < o.NumNodes(); v++ {
		for _, e := range o.Out(graph.NodeID(v)) {
			if !edgeLabels[e.Label] {
				t.Fatalf("edge label %q not in the profile", e.Label)
			}
		}
	}
}

// TestSampleDeltaIntoWAL pins the persisted-fixture path: streaming the
// sampled ops through a WAL produces the same delta as the bare in-memory
// one, and recovering the log reproduces it exactly.
func TestSampleDeltaIntoWAL(t *testing.T) {
	p := YAGO2()
	base := p.SampleFrozen(GraphConfig{Nodes: 200, EdgesPerNode: 3, Seed: 7})
	bare := p.SampleDelta(base, 40, 11)

	var log bytes.Buffer
	w := graph.NewWAL(&log, graph.NewDelta(base))
	p.SampleDeltaInto(w, 40, 11)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Delta().String() != bare.String() {
		t.Fatalf("WAL-fronted delta diverges: %v vs %v", w.Delta(), bare)
	}
	rec, stats, err := graph.Recover(base, bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated || rec.String() != bare.String() {
		t.Fatalf("recovered delta diverges (%+v): %v vs %v", stats, rec, bare)
	}
	nf, rf := base.Refreeze(rec), base.Refreeze(bare)
	if nf.NumNodes() != rf.NumNodes() || nf.NumEdges() != rf.NumEdges() {
		t.Fatalf("refrozen recovery diverges: (%d,%d) vs (%d,%d)",
			nf.NumNodes(), nf.NumEdges(), rf.NumNodes(), rf.NumEdges())
	}
}
