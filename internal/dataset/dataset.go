// Package dataset provides synthetic stand-ins for the paper's three
// real-life workloads (Section VII): DBpedia, YAGO2 and Pokec.
//
// Substitution note (see DESIGN.md): the paper mines GFDs from the real
// graphs with the (unpublished) discovery algorithm of [23]. We reproduce
// the published *statistics* of each graph — number of node types, edge
// types, and the GFD-set sizes mined from each — as generation profiles.
// The reasoning algorithms only ever see GFD sets, so matching pattern
// size/shape distribution, label selectivity and literal mix preserves the
// experiments' behaviour. Profiles also synthesize data graphs drawn from
// the same label universe for the discovery substrate and the examples.
package dataset

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Profile describes one dataset's label/attribute universe and published
// statistics.
type Profile struct {
	Name string
	// NodeLabels and EdgeLabels reproduce the published type counts
	// (DBpedia: 200/160, YAGO2: 13/36, Pokec: 269/11).
	NodeLabels []string
	EdgeLabels []string
	// Attrs is the attribute universe GFD literals draw from.
	Attrs []string
	// GFDCount is the number of GFDs the paper mined from this dataset.
	GFDCount int
	// Zipf skews label frequencies: lower-indexed labels are more frequent,
	// mimicking the heavy-tailed type distributions of knowledge graphs.
	Zipf float64
}

// Paper-reported statistics.
const (
	dbpediaNodeTypes = 200
	dbpediaEdgeTypes = 160
	yagoNodeTypes    = 13
	yagoEdgeTypes    = 36
	pokecNodeTypes   = 269
	pokecEdgeTypes   = 11
)

func mkLabels(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

func mkAttrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("attr%d", i)
	}
	return out
}

// DBpedia returns the DBpedia profile: 200 entity types, 160 link types,
// 8000+ mined GFDs.
func DBpedia() *Profile {
	return &Profile{
		Name:       "DBpedia",
		NodeLabels: mkLabels("type", dbpediaNodeTypes),
		EdgeLabels: mkLabels("link", dbpediaEdgeTypes),
		Attrs:      mkAttrs(24),
		GFDCount:   8000,
		Zipf:       1.1,
	}
}

// YAGO2 returns the YAGO2 profile: 13 node types, 36 link types, 6000+
// mined GFDs.
func YAGO2() *Profile {
	return &Profile{
		Name:       "YAGO2",
		NodeLabels: mkLabels("ytype", yagoNodeTypes),
		EdgeLabels: mkLabels("ylink", yagoEdgeTypes),
		Attrs:      mkAttrs(16),
		GFDCount:   6000,
		Zipf:       0.9,
	}
}

// Pokec returns the Pokec profile: 269 node types, 11 edge types, 10000+
// mined GFDs.
func Pokec() *Profile {
	return &Profile{
		Name:       "Pokec",
		NodeLabels: mkLabels("ptype", pokecNodeTypes),
		EdgeLabels: mkLabels("plink", pokecEdgeTypes),
		Attrs:      mkAttrs(20),
		GFDCount:   10000,
		Zipf:       1.2,
	}
}

// All returns the three profiles in the paper's order.
func All() []*Profile {
	return []*Profile{DBpedia(), YAGO2(), Pokec()}
}

// SampleNodeLabel draws a node label with the profile's Zipf-like skew.
func (p *Profile) SampleNodeLabel(rng *rand.Rand) string {
	return p.NodeLabels[zipfIndex(rng, len(p.NodeLabels), p.Zipf)]
}

// SampleEdgeLabel draws an edge label uniformly.
func (p *Profile) SampleEdgeLabel(rng *rand.Rand) string {
	return p.EdgeLabels[rng.Intn(len(p.EdgeLabels))]
}

// SampleAttr draws an attribute uniformly.
func (p *Profile) SampleAttr(rng *rand.Rand) string {
	return p.Attrs[rng.Intn(len(p.Attrs))]
}

// zipfIndex draws an index in [0,n) with P(i) ∝ 1/(i+1)^s, via inverse
// transform on the truncated harmonic weights.
func zipfIndex(rng *rand.Rand, n int, s float64) int {
	if s <= 0 {
		return rng.Intn(n)
	}
	// For modest n the linear scan is fine and allocation-free.
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / powf(float64(i+1), s)
	}
	u := rng.Float64() * total
	for i := 0; i < n; i++ {
		u -= 1 / powf(float64(i+1), s)
		if u <= 0 {
			return i
		}
	}
	return n - 1
}

func powf(x, y float64) float64 { return math.Pow(x, y) }

// GraphConfig controls synthetic data-graph generation.
type GraphConfig struct {
	Nodes int
	// EdgesPerNode is the average out-degree.
	EdgesPerNode int
	// AttrsPerNode is the average number of attributes per node.
	AttrsPerNode int
	// Values is the size of the per-attribute value domain; small domains
	// create the value correlations the discovery substrate mines.
	Values int
	Seed   int64
}

// SampleGraph synthesizes a data graph from the profile: Zipf-skewed node
// labels, uniform edge labels, preferential attachment for a heavy-tailed
// degree distribution, and correlated attribute values (a node's values are
// a function of its label for a subset of attributes, so functional
// dependencies genuinely hold and can be mined).
func (p *Profile) SampleGraph(cfg GraphConfig) *graph.Graph {
	g := graph.New()
	p.sampleInto(g, cfg.withDefaults())
	return g
}

// SampleFrozen is SampleGraph through the bulk-load path: the same
// synthesis (identical per seed) appended into a graph.Builder and frozen
// into the immutable CSR snapshot — the representation to pick when the
// sample is only read (matching, mining, validation benchmarks).
func (p *Profile) SampleFrozen(cfg GraphConfig) *graph.Frozen {
	cfg = cfg.withDefaults()
	b := graph.NewBuilder(cfg.Nodes * cfg.EdgesPerNode)
	p.sampleInto(b, cfg)
	return b.Freeze()
}

// SampleSharded is SampleFrozen pre-partitioned into shards for the
// parallel consumers (the fan-out matcher, per-worker placement). Pass
// shards <= 0 for graph.DefaultShardCount.
func (p *Profile) SampleSharded(cfg GraphConfig, shards int) *graph.Sharded {
	cfg = cfg.withDefaults()
	if shards <= 0 {
		shards = graph.DefaultShardCount(cfg.Nodes)
	}
	b := graph.NewBuilder(cfg.Nodes * cfg.EdgesPerNode)
	p.sampleInto(b, cfg)
	return b.FreezeSharded(shards)
}

// SampleDelta synthesizes an update stream of ops random updates against a
// sampled snapshot, drawn from the same distributions as SampleGraph: added
// nodes carry Zipf-skewed labels and the schema-determined attribute slice,
// added edges use the deterministic label-pair edge labeling, removals drop
// sampled existing edges (occasionally whole nodes), and attribute rewrites
// redraw the small-domain noise values. Feed the result to
// Frozen.Refreeze/Delta.Overlay for the continuously-changing-graph
// workloads.
func (p *Profile) SampleDelta(base *graph.Frozen, ops int, seed int64) *graph.Delta {
	d := graph.NewDelta(base)
	p.SampleDeltaInto(d, ops, seed)
	return d
}

// SampleDeltaInto is SampleDelta against any graph.Mutator: a bare Delta, or
// a WAL fronting one — which persists the identical op stream as it is
// generated, the fixture path for the recovery tests and benchmarks.
func (p *Profile) SampleDeltaInto(d graph.Mutator, ops int, seed int64) {
	base := d.Base()
	rng := rand.New(rand.NewSource(seed))
	labelIdx := make(map[string]int, len(p.NodeLabels))
	for i, l := range p.NodeLabels {
		labelIdx[l] = i
	}
	alive := func() (graph.NodeID, bool) {
		for try := 0; try < 16 && d.NumNodes() > 0; try++ {
			v := graph.NodeID(rng.Intn(d.NumNodes()))
			if d.Alive(v) {
				return v, true
			}
		}
		return 0, false
	}
	edgeLabel := func(from, to graph.NodeID) string {
		return p.EdgeLabels[(labelIdx[d.Label(from)]*7+labelIdx[d.Label(to)]*3)%len(p.EdgeLabels)]
	}
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 15: // add a node with the schema attribute slice
			li := zipfIndex(rng, len(p.NodeLabels), p.Zipf)
			label := p.NodeLabels[li]
			id := d.AddNode(label)
			for a := 0; a < 3; a++ {
				attr := p.Attrs[(li+a)%len(p.Attrs)]
				if a%2 == 0 {
					d.SetAttr(id, attr, fmt.Sprintf("%s-%s", label, attr))
				} else {
					d.SetAttr(id, attr, fmt.Sprintf("v%d", rng.Intn(8)))
				}
			}
			if to, ok := alive(); ok && to != id {
				d.AddEdge(id, to, edgeLabel(id, to))
			}
		case r < 50: // add an edge under the deterministic labeling
			from, ok1 := alive()
			to, ok2 := alive()
			if !ok1 || !ok2 {
				continue
			}
			d.AddEdge(from, to, edgeLabel(from, to))
		case r < 70: // remove a sampled base edge
			if base.NumNodes() == 0 {
				continue
			}
			v := graph.NodeID(rng.Intn(base.NumNodes()))
			es := base.Out(v)
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			d.RemoveEdge(e.From, e.To, e.Label)
		case r < 94: // redraw an attribute value
			v, ok := alive()
			if !ok {
				continue
			}
			li := labelIdx[d.Label(v)]
			attr := p.Attrs[(li+rng.Intn(3))%len(p.Attrs)]
			d.SetAttr(v, attr, fmt.Sprintf("v%d", rng.Intn(8)))
		default:
			if v, ok := alive(); ok {
				d.RemoveNode(v)
			}
		}
	}
}

// SampleSnapshotTo writes a SampleFrozen graph straight to a binary
// snapshot image: the persisted-fixture path for tools and tests that want
// an on-disk store without a text intermediary.
func (p *Profile) SampleSnapshotTo(w io.Writer, cfg GraphConfig) error {
	return p.SampleFrozen(cfg).WriteSnapshot(w)
}

func (cfg GraphConfig) withDefaults() GraphConfig {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1000
	}
	if cfg.EdgesPerNode <= 0 {
		cfg.EdgesPerNode = 3
	}
	if cfg.AttrsPerNode <= 0 {
		cfg.AttrsPerNode = 3
	}
	if cfg.Values <= 0 {
		cfg.Values = 8
	}
	return cfg
}

// sampleInto synthesizes the profile sample into either build target.
// cfg must already be normalized via withDefaults.
func (p *Profile) sampleInto(g graph.Sink, cfg GraphConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	labelIdx := make([]int, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		li := zipfIndex(rng, len(p.NodeLabels), p.Zipf)
		labelIdx[i] = li
		label := p.NodeLabels[li]
		id := g.AddNode(label)
		// Each label carries a deterministic attribute slice of the
		// universe (as a schema would), with label-determined values for
		// even offsets (mineable FDs) and small-domain noise for odd ones.
		for a := 0; a < cfg.AttrsPerNode; a++ {
			attr := p.Attrs[(li+a)%len(p.Attrs)]
			var val string
			if a%2 == 0 {
				val = fmt.Sprintf("%s-%s", label, attr)
			} else {
				val = fmt.Sprintf("v%d", rng.Intn(cfg.Values))
			}
			g.SetAttr(id, attr, val)
		}
	}
	// Edges follow an implicit schema: the edge label between two node
	// labels is a deterministic function of the label pair, concentrating
	// (src, edge, dst) triples the way real typed graphs do. Targets use
	// preferential attachment for a heavy-tailed degree distribution.
	for i := 0; i < cfg.Nodes; i++ {
		for e := 0; e < cfg.EdgesPerNode; e++ {
			var to graph.NodeID
			if rng.Float64() < 0.6 && i > 0 {
				// Preferential: earlier nodes accumulate degree.
				to = graph.NodeID(rng.Intn(i))
			} else {
				to = graph.NodeID(rng.Intn(cfg.Nodes))
			}
			el := p.EdgeLabels[(labelIdx[i]*7+labelIdx[to]*3)%len(p.EdgeLabels)]
			g.AddEdge(graph.NodeID(i), to, el)
		}
	}
}
