package gen

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gfd"
	"repro/internal/graph"
)

func TestSetSatisfiableByConstruction(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := New(Config{N: 30, K: 4, L: 3, Seed: seed})
		set := g.Set()
		if set.Len() != 30 {
			t.Fatalf("|Σ| = %d, want 30", set.Len())
		}
		res := core.SeqSat(set)
		if !res.Satisfiable {
			t.Fatalf("seed %d: consistent set reported unsatisfiable: %v", seed, res.Conflict)
		}
	}
}

func TestSetUnsatisfiableWithConflicts(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := New(Config{N: 20, K: 4, L: 3, Seed: seed, Conflicts: 2})
		set := g.Set()
		if set.Len() != 20+2 { // N includes the anchor; conflicts are extra
			t.Fatalf("|Σ| = %d, want 22", set.Len())
		}
		res := core.SeqSat(set)
		if res.Satisfiable {
			t.Fatalf("seed %d: conflict-injected set reported satisfiable", seed)
		}
	}
}

func TestImpliedGFDIsImplied(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := New(Config{N: 15, K: 4, L: 3, Seed: seed})
		set := g.Set()
		phi := g.ImpliedGFD(set)
		if !core.SeqImp(set, phi).Implied {
			t.Fatalf("seed %d: weakened member not implied:\nφ: %s", seed, phi)
		}
	}
}

func TestNonImpliedGFDIsNotImplied(t *testing.T) {
	notImplied := 0
	for seed := int64(0); seed < 5; seed++ {
		g := New(Config{N: 15, K: 4, L: 3, Seed: seed})
		set := g.Set()
		phi := g.NonImpliedGFD()
		if !core.SeqImp(set, phi).Implied {
			notImplied++
		}
	}
	// "never" constants can in principle collide with an inconsistent-X
	// deduction, but for consistent sets that cannot happen: all seeds must
	// be non-implied.
	if notImplied != 5 {
		t.Fatalf("non-implied targets implied in %d/5 seeds", 5-notImplied)
	}
}

func TestPatternSizesRespectK(t *testing.T) {
	for _, k := range []int{1, 2, 4, 6, 10} {
		g := New(Config{N: 40, K: k, L: 2, Seed: 9})
		set := g.Set()
		for _, phi := range set.GFDs {
			if n := phi.Pattern.NumVars(); n > k || n < 1 {
				t.Fatalf("k=%d: pattern with %d vars", k, n)
			}
			if !phi.Pattern.Connected() && phi.Pattern.NumVars() > 1 {
				t.Fatalf("k=%d: disconnected generated pattern", k)
			}
		}
	}
}

func TestLiteralCountsRespectL(t *testing.T) {
	for _, l := range []int{1, 3, 5} {
		g := New(Config{N: 40, K: 4, L: l, Seed: 3})
		set := g.Set()
		for _, phi := range set.GFDs {
			if len(phi.X) > l || len(phi.Y) > l || len(phi.Y) == 0 {
				t.Fatalf("l=%d: |X|=%d |Y|=%d", l, len(phi.X), len(phi.Y))
			}
		}
	}
}

func TestProfilesDiffer(t *testing.T) {
	for _, p := range dataset.All() {
		g := New(Config{N: 10, K: 3, L: 2, Seed: 1, Profile: p})
		set := g.Set()
		if set.Len() != 10 {
			t.Fatalf("%s: |Σ| = %d", p.Name, set.Len())
		}
		if !core.SeqSat(set).Satisfiable {
			t.Fatalf("%s: consistent set unsatisfiable", p.Name)
		}
	}
}

func TestConsistentGraphSatisfiesSet(t *testing.T) {
	g := New(Config{N: 20, K: 3, L: 3, Seed: 11})
	set := g.Set()
	gr := g.ConsistentGraph(60)
	if gr.NumNodes() == 0 {
		t.Fatal("empty consistent graph")
	}
	if ok, v := core.Satisfies(gr, set); !ok {
		t.Fatalf("W-population violates a consistent GFD: %v at %v", v.GFD, v.Match)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(Config{N: 25, K: 4, L: 3, Seed: 77}).Set()
	b := New(Config{N: 25, K: 4, L: 3, Seed: 77}).Set()
	if a.String() != b.String() {
		t.Fatal("same seed produced different sets")
	}
	c := New(Config{N: 25, K: 4, L: 3, Seed: 78}).Set()
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestGeneratedSetsInteract(t *testing.T) {
	// The frequent-edge pool must make patterns overlap enough that the
	// canonical graph has cross-pattern matches — otherwise the reasoning
	// workload is trivial. Detect interaction via enforcement stats: with
	// shared labels, enforcements exceed the per-GFD identity matches.
	g := New(Config{N: 30, K: 4, L: 3, Seed: 5})
	set := g.Set()
	res := core.SeqSat(set)
	if !res.Satisfiable {
		t.Fatal("unexpected unsat")
	}
	if res.Stats.Matches < set.Len()*2 {
		t.Errorf("only %d matches for %d GFDs; patterns do not interact", res.Stats.Matches, set.Len())
	}
}

var _ = gfd.ConstLiteral // keep import stable if assertions above change

// assertSameGraph structurally compares a mutable graph with a read-only
// snapshot (frozen or sharded) built by an independent replay of the same
// synthesis: node labels and attributes, wildcard adjacency (ascending on
// both sides), and per-edge membership.
func assertSameGraph(t *testing.T, ctx string, g *graph.Graph, f graph.Reader) {
	t.Helper()
	if g.NumNodes() != f.NumNodes() || g.NumEdges() != f.NumEdges() {
		t.Fatalf("%s: cardinalities diverge: mutable (%d,%d) frozen (%d,%d)",
			ctx, g.NumNodes(), g.NumEdges(), f.NumNodes(), f.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if g.Label(id) != f.Label(id) {
			t.Fatalf("%s: label of %d diverges: %q vs %q", ctx, v, g.Label(id), f.Label(id))
		}
		if fmt.Sprint(g.Attrs(id)) != fmt.Sprint(f.Attrs(id)) {
			t.Fatalf("%s: attrs of %d diverge: %v vs %v", ctx, v, g.Attrs(id), f.Attrs(id))
		}
		mo, fo := g.OutByLabel(id, graph.Wildcard), f.OutByLabel(id, graph.Wildcard)
		if fmt.Sprint(mo) != fmt.Sprint(fo) {
			t.Fatalf("%s: adjacency of %d diverges: %v vs %v", ctx, v, mo, fo)
		}
		for _, e := range g.Out(id) {
			if !f.HasEdge(e.From, e.To, e.Label) {
				t.Fatalf("%s: frozen misses edge %v", ctx, e)
			}
		}
	}
}

// TestFrozenMaterializationsEquivalence pins the Builder wiring: for the
// same generator configuration, DenseFrozen and ConsistentFrozen carry
// exactly the graphs their mutable counterparts produce.
func TestFrozenMaterializationsEquivalence(t *testing.T) {
	cfg := Config{N: 12, K: 4, L: 2, Seed: 9}
	assertSameGraph(t, "dense",
		New(cfg).DenseGraph(150, 6), New(cfg).DenseFrozen(150, 6))
	assertSameGraph(t, "consistent",
		New(cfg).ConsistentGraph(80), New(cfg).ConsistentFrozen(80))
}

// TestShardedMaterializations pins the sharded emitters: same synthesis as
// the mutable materializations, pre-partitioned, with shards<=0 resolving
// to the default shard count.
func TestShardedMaterializations(t *testing.T) {
	cfg := Config{N: 12, K: 4, L: 2, Seed: 9}
	assertSameGraph(t, "dense-sharded",
		New(cfg).DenseGraph(150, 6), New(cfg).DenseSharded(150, 6, 4))
	assertSameGraph(t, "consistent-sharded",
		New(cfg).ConsistentGraph(80), New(cfg).ConsistentSharded(80, 3))
	if got := New(cfg).ConsistentSharded(80, 3).ShardCount(); got != 3 {
		t.Fatalf("ShardCount = %d, want 3", got)
	}
	if got := New(cfg).DenseSharded(150, 6, 0).ShardCount(); got < 1 {
		t.Fatalf("default shard count not positive: %d", got)
	}
}

// TestMutateDeltaDeterminism pins the update-stream generator: the same
// configuration draws the same delta, ops actually land, and the composed
// graph stays schema-consistent (every edge label comes from the profile).
func TestMutateDeltaDeterminism(t *testing.T) {
	cfg := Config{N: 12, K: 4, L: 2, Seed: 21}
	build := func() (*graph.Frozen, *graph.Delta) {
		g := New(cfg)
		base := g.DenseFrozen(300, 6)
		return base, g.DenseDelta(base, 60)
	}
	base1, d1 := build()
	_, d2 := build()
	if d1.String() != d2.String() {
		t.Fatalf("same seed drew different deltas: %v vs %v", d1, d2)
	}
	if fmt.Sprint(d1.TouchedNodes()) != fmt.Sprint(d2.TouchedNodes()) {
		t.Fatal("same seed touched different nodes")
	}
	if d1.Len() == 0 {
		t.Fatal("60 ops recorded nothing")
	}
	o := d1.Overlay()
	if o.NumEdges() == base1.NumEdges() && o.NumNodes() == base1.NumNodes() {
		t.Fatal("delta changed neither nodes nor edges")
	}
	labels := make(map[string]bool)
	for _, l := range cfg.withDefaults().Profile.EdgeLabels {
		labels[l] = true
	}
	for v := 0; v < o.NumNodes(); v++ {
		for _, e := range o.Out(graph.NodeID(v)) {
			if !labels[e.Label] {
				t.Fatalf("edge label %q not in the profile schema", e.Label)
			}
		}
	}
	// Refreeze of the generated stream agrees with the overlay. The overlay
	// is re-derived after the Refreeze: snapshot readers die at the epoch
	// boundary, and the delta itself is untouched by the merge.
	nf := base1.Refreeze(d1)
	o = d1.Overlay()
	if nf.NumEdges() != o.NumEdges() || nf.NumNodes() != o.NumNodes() || nf.Size() != o.Size() {
		t.Fatalf("refreeze disagrees with overlay: (%d,%d,%d) vs (%d,%d,%d)",
			nf.NumNodes(), nf.NumEdges(), nf.Size(), o.NumNodes(), o.NumEdges(), o.Size())
	}
}

// TestValidationSet pins the triangle validation workload: a clean
// materialization satisfies it wherever literals are defined, because the
// set is drawn before the graph so the W rows exist.
func TestValidationSet(t *testing.T) {
	g := New(Config{N: 16, K: 6, L: 2, Seed: 3})
	set := g.ValidationSet(12)
	if set.Len() == 0 {
		t.Skip("seed 3 schema closes no triangles")
	}
	for _, phi := range set.GFDs {
		if len(phi.Y) != 1 || phi.Y[0].Kind != gfd.ConstLiteral {
			t.Fatalf("GFD %s is not a single constant assertion", phi.Name)
		}
	}
}
