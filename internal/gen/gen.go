// Package gen is the GFD generator of Section VII: it produces sets Σ of
// GFDs Q[x̄](X → Y) controlled by (a) |Σ|, (b) the maximum number k of
// pattern nodes, and (c) the maximum number l of literals in X and Y,
// seeded with the node labels, frequent edges and active attributes of a
// dataset profile.
//
// Satisfiability control. The generator maintains a hidden value function
// W(label, attr) → constant. A "consistent" GFD only asserts literals that
// agree with W (constant literals use W's value; variable literals relate
// attribute pairs with equal W values), so the population assigning every
// x.A := W(L(x), A) is a model of any set of consistent GFDs: generated
// sets are satisfiable by construction. Injecting conflicts (GFDs that
// contradict W on patterns guaranteed to match) makes sets unsatisfiable by
// construction — both directions have ground truth without solving the
// coNP-hard problem.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// newGFD routes GFD construction through the error-returning gfd.New
// (gfd.MustNew is a test/example helper). The generator only ever builds
// literals over its own patterns' declared variables, so a validation
// failure is a generator bug and is asserted as such rather than silently
// dropped.
func newGFD(name string, p *pattern.Pattern, xs, ys []gfd.Literal) *gfd.GFD {
	phi, err := gfd.New(name, p, xs, ys)
	if err != nil {
		panic(fmt.Sprintf("gen: generated an invalid GFD: %v", err))
	}
	return phi
}

// Config controls generation.
type Config struct {
	// N is |Σ|, the number of GFDs (paper: up to 10000).
	N int
	// K is the maximum number of pattern nodes (paper: up to 6; varied 2–10
	// in Exp-3).
	K int
	// L is the maximum number of literals in X and in Y (paper: up to 5).
	L int
	// Profile seeds labels, edge labels and attributes; nil means DBpedia.
	Profile *dataset.Profile
	// Conflicts injects this many W-contradicting GFDs (0 = satisfiable by
	// construction). The paper expands mined sets with up to 10 random GFDs
	// to test satisfiability.
	Conflicts int
	// WildcardRate is the probability a pattern node is labeled '_'.
	WildcardRate float64
	// EmptyXRate is the probability a GFD has an empty antecedent.
	EmptyXRate float64
	Seed       int64
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 100
	}
	if c.K < 1 {
		c.K = 4
	}
	if c.L < 1 {
		c.L = 3
	}
	if c.Profile == nil {
		c.Profile = dataset.DBpedia()
	}
	if c.WildcardRate == 0 {
		c.WildcardRate = 0.1
	}
	if c.EmptyXRate == 0 {
		c.EmptyXRate = 0.3
	}
	return c
}

// Generator produces GFDs and remembers the hidden value function W so
// callers can also materialize consistent data graphs and implication
// instances.
type Generator struct {
	cfg Config
	rng *rand.Rand
	// w is the hidden value function W(label, attr) → constant, extended
	// lazily. Wildcard labels share one global row so consistency holds for
	// every instantiation.
	w map[[2]string]string
	// frequentEdges is a small pool of (srcLabel, edgeLabel, dstLabel)
	// triples reused across patterns, mimicking mined frequent edges: it
	// makes patterns overlap, which is what makes reasoning interact.
	frequentEdges [][3]string
}

// New constructs a Generator.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), w: make(map[[2]string]string)}
	// Frequent-edge pool: a small schema of (srcLabel, edgeLabel, dstLabel)
	// triples over the most frequent labels. Every generated pattern is a
	// walk in this schema, so patterns of different GFDs share subpatterns
	// and genuinely interact in the canonical graph — the property mined
	// GFD sets have and the reasoning algorithms are stressed by.
	pool := 12 + cfg.N/200
	if pool > 48 {
		pool = 48
	}
	edgeHead := len(cfg.Profile.EdgeLabels)
	if edgeHead > 8 {
		edgeHead = 8
	}
	for i := 0; i < pool; i++ {
		src := g.headLabel()
		dst := g.headLabel()
		el := cfg.Profile.EdgeLabels[g.rng.Intn(edgeHead)]
		g.frequentEdges = append(g.frequentEdges, [3]string{src, el, dst})
	}
	return g
}

// Schema returns a copy of the generator's frequent-edge pool: the
// (srcLabel, edgeLabel, dstLabel) triples every generated pattern walks.
// Callers use it to build workload-aligned probe patterns (e.g. the cycle
// patterns of the matching benchmarks) without reaching into the pool.
func (g *Generator) Schema() [][3]string {
	return append([][3]string(nil), g.frequentEdges...)
}

// SchemaTriangles enumerates triangle patterns x-[l1]->y-[l2]->z closed by
// a schema edge between x and z (either direction), up to max distinct
// patterns. Triangles are the canonical rejection-heavy matching workload:
// on a dense data graph the closing edge is satisfied by only a few percent
// of the two-hop paths, so the pattern-matching benchmarks use them to
// measure filtering cost rather than match materialization.
func SchemaTriangles(schema [][3]string, max int) []*pattern.Pattern {
	var ps []*pattern.Pattern
	seen := make(map[string]bool)
	for _, t1 := range schema {
		for _, t2 := range schema {
			if t2[0] != t1[2] {
				continue
			}
			for _, t3 := range schema {
				fwd := t3[0] == t1[0] && t3[2] == t2[2]
				rev := t3[0] == t2[2] && t3[2] == t1[0]
				if !fwd && !rev {
					continue
				}
				key := fmt.Sprint(t1, t2, t3, fwd)
				if seen[key] {
					continue
				}
				seen[key] = true
				p := pattern.New()
				x := p.AddVar("x", t1[0])
				y := p.AddVar("y", t1[2])
				z := p.AddVar("z", t2[2])
				p.AddEdge(x, y, t1[1])
				p.AddEdge(y, z, t2[1])
				if fwd {
					p.AddEdge(x, z, t3[1])
				} else {
					p.AddEdge(z, x, t3[1])
				}
				ps = append(ps, p)
				if len(ps) >= max {
					return ps
				}
			}
		}
	}
	return ps
}

// headLabel samples from the frequent (low-index) head of the label
// universe so patterns share labels and interact.
func (g *Generator) headLabel() string {
	labels := g.cfg.Profile.NodeLabels
	head := len(labels) / 25
	if head < 4 {
		head = 4
	}
	if head > len(labels) {
		head = len(labels)
	}
	return labels[g.rng.Intn(head)]
}

// wOf returns W(label, attr), extending W lazily with a fresh constant.
// The wildcard label is collapsed to a single row, so a wildcard node's
// asserted values agree across all labels it may match.
func (g *Generator) wOf(label, attr string) string {
	key := [2]string{graph.Wildcard, attr}
	if label != graph.Wildcard {
		// Wildcard rows take precedence: once any wildcard literal uses
		// attr, every label shares its value for attr. Conservative but
		// guarantees consistency.
		if v, ok := g.w[key]; ok {
			return v
		}
		key = [2]string{label, attr}
	}
	if v, ok := g.w[key]; ok {
		return v
	}
	v := fmt.Sprintf("w%d", len(g.w))
	g.w[key] = v
	return v
}

// wOfWildcardAware: when asserting on a wildcard variable, force the global
// row and migrate nothing (existing per-label rows may disagree; avoid by
// only using per-label rows for concrete labels that have not been asserted
// via wildcard). To keep the invariant simple, wildcard literals always use
// attributes from a reserved disjoint slice of the attribute universe.
func (g *Generator) attrFor(label string) string {
	attrs := g.cfg.Profile.Attrs
	if len(attrs) < 2 {
		return attrs[0]
	}
	half := len(attrs) / 2
	if label == graph.Wildcard {
		// Reserved wildcard attribute range.
		return attrs[g.rng.Intn(half)]
	}
	return attrs[half+g.rng.Intn(len(attrs)-half)]
}

// Pattern generates a connected random pattern with between 2 and K nodes
// (or 1 when K==1), grown as a walk in the frequent-edge schema: each new
// variable extends an existing one along a schema triple whose source (or
// destination) label matches, so labels and edge labels stay schema-
// consistent and patterns embed into each other's canonical-graph copies.
func (g *Generator) Pattern() *pattern.Pattern {
	k := 1
	if g.cfg.K > 1 {
		k = 2 + g.rng.Intn(g.cfg.K-1)
	}
	p := pattern.New()
	labels := make([]string, 0, k)
	add := func(label string) pattern.Var {
		v := p.AddVar(fmt.Sprintf("x%d", len(labels)), label)
		labels = append(labels, label)
		return v
	}
	seed := g.frequentEdges[g.rng.Intn(len(g.frequentEdges))]
	if k == 1 {
		add(seed[0])
	} else {
		x := add(seed[0])
		y := add(seed[2])
		p.AddEdge(x, y, seed[1])
	}
	for len(labels) < k {
		// Extend a random existing variable along a matching schema triple.
		vi := g.rng.Intn(len(labels))
		fes := g.triplesAt(labels[vi])
		if len(fes) == 0 {
			// No schema triple touches this label (possible for wildcarded
			// labels); extend from variable 0 instead.
			vi = 0
			fes = g.triplesAt(labels[0])
			if len(fes) == 0 {
				break
			}
		}
		fe := fes[g.rng.Intn(len(fes))]
		if fe[0] == labels[vi] {
			w := add(fe[2])
			p.AddEdge(pattern.Var(vi), w, fe[1])
		} else {
			w := add(fe[0])
			p.AddEdge(w, pattern.Var(vi), fe[1])
		}
	}
	// Occasionally close a cycle along a schema triple between existing
	// variables, as real mined patterns have (e.g. Q1's locatedIn/partOf).
	if len(labels) > 1 && g.rng.Intn(3) == 0 {
		a := g.rng.Intn(len(labels))
		b := g.rng.Intn(len(labels))
		for _, fe := range g.triplesAt(labels[a]) {
			if fe[0] == labels[a] && fe[2] == labels[b] {
				p.AddEdge(pattern.Var(a), pattern.Var(b), fe[1])
				break
			}
		}
	}
	// Wildcard relabeling happens only now: '_' still matches everything a
	// concrete label would, so schema consistency is preserved. Relabeling
	// in place is impossible on the immutable pattern, so wildcards are
	// decided before AddVar via the rate — emulated here by rebuilding.
	if g.cfg.WildcardRate > 0 {
		rebuilt := pattern.New()
		for i, l := range labels {
			if g.rng.Float64() < g.cfg.WildcardRate {
				l = graph.Wildcard
			}
			rebuilt.AddVar(fmt.Sprintf("x%d", i), l)
		}
		for _, e := range p.Edges() {
			rebuilt.AddEdge(e.From, e.To, e.Label)
		}
		return rebuilt
	}
	return p
}

// triplesAt returns the schema triples whose source or destination label is
// l.
func (g *Generator) triplesAt(l string) [][3]string {
	var out [][3]string
	for _, fe := range g.frequentEdges {
		if fe[0] == l || fe[2] == l {
			out = append(out, fe)
		}
	}
	return out
}

// consistentLiteral builds a literal that agrees with W over pattern p.
func (g *Generator) consistentLiteral(p *pattern.Pattern) gfd.Literal {
	x := pattern.Var(g.rng.Intn(p.NumVars()))
	lx := p.Label(x)
	a := g.attrFor(lx)
	if g.rng.Float64() < 0.3 && p.NumVars() > 1 {
		// Variable literal: find a (y, B) with W(ly,B) == W(lx,A). The
		// cheapest guaranteed-equal pair is the same attribute on a
		// same-label variable; otherwise force equality by defining W rows.
		y := pattern.Var(g.rng.Intn(p.NumVars()))
		ly := p.Label(y)
		if ly == lx {
			// Define the W row so consistent graphs materialize the
			// attribute (x.A = y.A needs A to exist, not just be equal).
			g.wOf(lx, a)
			return gfd.Vars(x, a, y, a)
		}
		// Align W rows: pick an attribute b for y and define W(ly,b) to be
		// W(lx,a) if unset; if both set and unequal, fall back to a constant
		// literal.
		b := g.attrFor(ly)
		va := g.wOf(lx, a)
		keyB := [2]string{ly, b}
		if ly == graph.Wildcard {
			keyB = [2]string{graph.Wildcard, b}
		}
		if vb, ok := g.w[keyB]; ok {
			if vb == va {
				return gfd.Vars(x, a, y, b)
			}
			return gfd.Const(x, a, va)
		}
		g.w[keyB] = va
		return gfd.Vars(x, a, y, b)
	}
	return gfd.Const(x, a, g.wOf(lx, a))
}

// GFD generates one W-consistent GFD.
func (g *Generator) GFD(name string) *gfd.GFD { return g.gfd(name, false) }

func (g *Generator) gfd(name string, forceEmptyX bool) *gfd.GFD {
	p := g.Pattern()
	var xs, ys []gfd.Literal
	if !forceEmptyX && g.rng.Float64() >= g.cfg.EmptyXRate {
		nx := 1 + g.rng.Intn(g.cfg.L)
		for i := 0; i < nx; i++ {
			xs = append(xs, g.consistentLiteral(p))
		}
	}
	ny := 1 + g.rng.Intn(g.cfg.L)
	for i := 0; i < ny; i++ {
		ys = append(ys, g.consistentLiteral(p))
	}
	return newGFD(name, p, xs, ys)
}

// anchorGFD builds a single-node, empty-antecedent, W-consistent GFD that
// injected conflicts negate: its pattern always matches in G_Σ (its own
// copy), so the contradiction is guaranteed to fire.
func (g *Generator) anchorGFD(name string) *gfd.GFD {
	p := pattern.New()
	p.AddVar("x", g.headLabel())
	a := g.attrFor(p.Label(0))
	return newGFD(name, p, nil, []gfd.Literal{gfd.Const(0, a, g.wOf(p.Label(0), a))})
}

// conflictGFD negates the anchor's constant literal on the same label.
func (g *Generator) conflictGFD(name string, anchor *gfd.GFD) *gfd.GFD {
	l := anchor.Y[0]
	p := pattern.New()
	p.AddVar("x", anchor.Pattern.Label(l.X))
	return newGFD(name, p, nil, []gfd.Literal{gfd.Const(0, l.A, l.Const+"'")})
}

// Set generates Σ per the configuration. With Conflicts == 0 the result is
// satisfiable by construction (the W population is a model); otherwise it is
// unsatisfiable by construction: an empty-antecedent anchor GFD is included
// and each injected conflict negates its constant on the same label.
func (g *Generator) Set() *gfd.Set {
	set := gfd.NewSet()
	n := g.cfg.N
	if g.cfg.Conflicts > 0 && n > 0 {
		n-- // the anchor takes one slot so |Σ| stays as configured
	}
	for i := 0; i < n; i++ {
		set.Add(g.GFD(fmt.Sprintf("gfd%d", i)))
	}
	if g.cfg.Conflicts > 0 {
		anchor := g.anchorGFD("anchor")
		set.Add(anchor)
		for i := 0; i < g.cfg.Conflicts; i++ {
			set.Add(g.conflictGFD(fmt.Sprintf("conflict%d", i), anchor))
		}
	}
	return set
}

// ImpliedGFD derives from Σ a GFD that Σ provably implies: it strengthens
// the antecedent and weakens the consequent of a member (Armstrong-style:
// Q[x̄](X → Y) implies Q[x̄](X∪Z → Y') for Y' ⊆ Y).
func (g *Generator) ImpliedGFD(set *gfd.Set) *gfd.GFD {
	base := set.GFDs[g.rng.Intn(set.Len())]
	xs := append([]gfd.Literal{}, base.X...)
	// Strengthen X with a consistent literal (on the same pattern).
	xs = append(xs, g.consistentLiteral(base.Pattern))
	ys := []gfd.Literal{base.Y[g.rng.Intn(len(base.Y))]}
	return newGFD(base.Name+"-implied", base.Pattern, xs, ys)
}

// ImpInstance builds an implication instance (Σ', φ) whose decision
// requires propagating a dependency chain of the given length: Σ' is a
// regular consistent set plus chainLen single-node GFDs
// ψ_i: x.a_i = W → x.a_{i+1} = W on a shared frequent label, listed in
// reverse order; φ's antecedent seeds the chain head and its consequent
// asks for a constant W never uses on the chain tail's attribute. The
// instance is not implied, but answering requires running the whole chain
// to the fixpoint — an ordered pass fires it once, while an unordered
// chase needs ~chainLen rounds (the structural gap behind the paper's
// SeqImp-vs-ParImpRDF comparison). Mined real-life rule sets have this
// interaction depth naturally.
func (g *Generator) ImpInstance(chainLen int) (*gfd.Set, *gfd.GFD) {
	if chainLen < 1 {
		chainLen = 4
	}
	attrs := g.cfg.Profile.Attrs
	half := len(attrs) / 2
	if chainLen+1 > len(attrs)-half {
		chainLen = len(attrs) - half - 1
	}
	label := g.headLabel()
	chainAttrs := attrs[half : half+chainLen+1]

	n := g.cfg.N - chainLen
	if n < 0 {
		n = 0
	}
	set := gfd.NewSet()
	for i := 0; i < n; i++ {
		set.Add(g.GFD(fmt.Sprintf("gfd%d", i)))
	}
	// Chain links, appended in reverse so list order is maximally unhelpful.
	for i := chainLen - 1; i >= 0; i-- {
		p := pattern.New()
		p.AddVar("x", label)
		set.Add(newGFD(fmt.Sprintf("chain%d", i), p,
			[]gfd.Literal{gfd.Const(0, chainAttrs[i], g.wOf(label, chainAttrs[i]))},
			[]gfd.Literal{gfd.Const(0, chainAttrs[i+1], g.wOf(label, chainAttrs[i+1]))}))
	}
	// φ seeds the chain head; its consequent is never deducible. Its
	// pattern is a full generated pattern (the canonical graph G^X_Q the
	// enforcement runs on) extended with a chain-labeled variable carrying
	// the seed, so the implication check does pattern-matching work
	// proportional to k like the satisfiability side.
	qp := g.Pattern()
	seedVar := qp.AddVar("seed", label)
	if qp.NumVars() > 1 {
		fe := g.triplesAt(label)
		if len(fe) > 0 && fe[0][0] == label {
			qp.AddEdge(seedVar, 0, fe[0][1])
		} else if len(fe) > 0 {
			qp.AddEdge(0, seedVar, fe[0][1])
		}
	}
	phi := newGFD("target", qp,
		[]gfd.Literal{gfd.Const(seedVar, chainAttrs[0], g.wOf(label, chainAttrs[0]))},
		[]gfd.Literal{gfd.Const(seedVar, chainAttrs[chainLen], "never")})
	return set, phi
}

// NonImpliedGFD builds a GFD almost surely not implied by a consistent Σ: a
// fresh pattern whose consequent asserts a constant W never uses.
func (g *Generator) NonImpliedGFD() *gfd.GFD {
	p := g.Pattern()
	x := pattern.Var(g.rng.Intn(p.NumVars()))
	a := g.attrFor(p.Label(x))
	return newGFD("non-implied", p, nil, []gfd.Literal{gfd.Const(x, a, "never")})
}

// ConsistentGraph materializes a data graph where every node's attributes
// follow W — a model-like graph for the mined-GFD scenario. The mutable
// representation is the default for these small workloads; see
// ConsistentFrozen for the bulk-load variant.
func (g *Generator) ConsistentGraph(nodes int) *graph.Graph {
	gr := graph.New()
	labels := g.consistentNodes(gr, nodes)
	g.consistentEdges(gr, labels)
	return gr
}

// ConsistentFrozen is ConsistentGraph through the bulk-load path: the same
// synthesis (identical for the same generator state) appended into a
// graph.Builder and frozen into an immutable CSR snapshot.
func (g *Generator) ConsistentFrozen(nodes int) *graph.Frozen {
	b := graph.NewBuilder(0)
	labels := g.consistentNodes(b, nodes)
	g.consistentEdges(b, labels)
	return b.Freeze()
}

// ConsistentSharded is ConsistentFrozen pre-partitioned into shards for
// parallel consumers. Pass shards <= 0 for graph.DefaultShardCount.
func (g *Generator) ConsistentSharded(nodes, shards int) *graph.Sharded {
	if shards <= 0 {
		shards = graph.DefaultShardCount(nodes)
	}
	return g.ConsistentFrozen(nodes).Sharded(shards)
}

// consistentEdges links each node along the frequent-edge schema to the
// first node carrying the destination label.
func (g *Generator) consistentEdges(gr graph.Sink, labels []string) {
	first := make(map[string]graph.NodeID, 8)
	for i, l := range labels {
		if _, ok := first[l]; !ok {
			first[l] = graph.NodeID(i)
		}
	}
	for i := range labels {
		for _, fe := range g.frequentEdges {
			if fe[0] != labels[i] {
				continue
			}
			if j, ok := first[fe[2]]; ok {
				gr.AddEdge(graph.NodeID(i), j, fe[1])
			}
		}
	}
}

// consistentNodes appends nodes carrying profile labels and W-consistent
// attribute values into the build target — the shared substrate of the
// Consistent/Dense materializations. It returns each node's label.
func (g *Generator) consistentNodes(gr graph.Sink, nodes int) []string {
	labels := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		labels[i] = g.headLabel()
		id := gr.AddNode(labels[i])
		for _, a := range g.cfg.Profile.Attrs {
			// Only materialize attributes W knows for this label (or via
			// the wildcard row).
			if v, ok := g.w[[2]string{labels[i], a}]; ok {
				gr.SetAttr(id, a, v)
			} else if v, ok := g.w[[2]string{graph.Wildcard, a}]; ok {
				gr.SetAttr(id, a, v)
			}
		}
	}
	return labels
}

// DenseGraph materializes a consistent data graph like ConsistentGraph but
// label-dense: each node draws up to degree outgoing edges by sampling the
// schema triples at its label with replacement, each toward a uniformly
// random node carrying the destination label. The result stays a model of
// consistent GFDs (attributes follow W) while giving every label a large
// candidate set and every node a fat multi-label adjacency — the workload
// where matching cost is dominated by adjacency filtering.
func (g *Generator) DenseGraph(nodes, degree int) *graph.Graph {
	gr := graph.New()
	labels := g.consistentNodes(gr, nodes)
	g.denseEdges(gr, labels, degree)
	return gr
}

// DenseFrozen is DenseGraph through the bulk-load path: O(1) edge appends
// into a graph.Builder, sorted once at Freeze. Given the same generator
// state it draws the same nodes and edges as DenseGraph (pinned by the
// equivalence tests), making it the materialization for read-only
// consumers of large dense workloads. The comparison benchmarks instead
// snapshot one DenseGraph via Graph.Frozen, since both modes there must
// measure the identical RNG draw.
func (g *Generator) DenseFrozen(nodes, degree int) *graph.Frozen {
	b := graph.NewBuilder(nodes * degree)
	labels := g.consistentNodes(b, nodes)
	g.denseEdges(b, labels, degree)
	return b.Freeze()
}

// DenseSharded is DenseFrozen pre-partitioned into shards — the
// materialization the parallel matching benchmarks fan out over. Pass
// shards <= 0 for graph.DefaultShardCount.
func (g *Generator) DenseSharded(nodes, degree, shards int) *graph.Sharded {
	if shards <= 0 {
		shards = graph.DefaultShardCount(nodes)
	}
	return g.DenseFrozen(nodes, degree).Sharded(shards)
}

// ValidationSet builds one empty-antecedent GFD per schema triangle (up to
// max), each asserting a W-consistent constant on the triangle's first
// variable. Calling it *before* materializing a Consistent/Dense graph
// forces the W rows those literals read, so the clean graph satisfies the
// set and violations appear exactly where later updates perturb attributes
// or close new triangles — the canonical validation workload for the
// incremental-revalidation benchmarks (triangles have radius 1, so the
// delta-scoped re-enumeration stays local).
func (g *Generator) ValidationSet(max int) *gfd.Set {
	set := gfd.NewSet()
	for i, p := range SchemaTriangles(g.frequentEdges, max) {
		a := g.attrFor(p.Label(0))
		set.Add(newGFD(fmt.Sprintf("tri%d", i), p, nil,
			[]gfd.Literal{gfd.Const(0, a, g.wOf(p.Label(0), a))}))
	}
	return set
}

// SharedValidationSet is ValidationSet with deliberate pattern sharing: up
// to maxPatterns schema triangles, each carried by perPattern GFDs with
// their own W-consistent literals. Members alternate between the shared
// pattern value and a rebuilt structurally equal copy with fresh variable
// names, so grouped evaluation must bucket by structure — pointer identity
// would split every other member off. Clean Consistent/Dense graphs
// materialized after this call satisfy the set (every literal agrees with
// W); perturbing attributes or closing triangles creates violations. This
// is the workload of the multi_gfd_speedup benchmark and the
// grouped-equivalence tests.
func (g *Generator) SharedValidationSet(maxPatterns, perPattern int) *gfd.Set {
	if perPattern < 1 {
		perPattern = 1
	}
	set := gfd.NewSet()
	for i, p := range SchemaTriangles(g.frequentEdges, maxPatterns) {
		for j := 0; j < perPattern; j++ {
			q := p
			if j%2 == 1 {
				q = renamedCopy(p, fmt.Sprintf("r%d_%d", i, j))
			}
			x := pattern.Var(j % q.NumVars())
			a := g.attrFor(q.Label(x))
			var xs []gfd.Literal
			if j%3 == 2 {
				xs = []gfd.Literal{g.consistentLiteral(q)}
			}
			set.Add(newGFD(fmt.Sprintf("tri%d_%d", i, j), q, xs,
				[]gfd.Literal{gfd.Const(x, a, g.wOf(q.Label(x), a))}))
		}
	}
	return set
}

// SharedSet is Set with deliberate pattern sharing for the reasoning
// algorithms: every member is followed by `copies` duplicates that keep its
// X → Y literals but carry a rebuilt, structurally equal pattern with fresh
// variable names. Satisfiability and implication answers are unchanged by
// construction (the duplicates assert what the originals already assert),
// so a run over the shared set must agree with the unshared semantics while
// enumerating each pattern shape once per group.
func (g *Generator) SharedSet(copies int) *gfd.Set {
	base := g.Set()
	if copies < 1 {
		return base
	}
	set := gfd.NewSet()
	for i, phi := range base.GFDs {
		set.Add(phi)
		for c := 1; c <= copies; c++ {
			q := renamedCopy(phi.Pattern, fmt.Sprintf("d%d_%d", i, c))
			set.Add(newGFD(fmt.Sprintf("%s-dup%d", phi.Name, c), q,
				append([]gfd.Literal{}, phi.X...),
				append([]gfd.Literal{}, phi.Y...)))
		}
	}
	return set
}

// renamedCopy rebuilds p with fresh variable names: a distinct,
// structurally equal pattern value.
func renamedCopy(p *pattern.Pattern, prefix string) *pattern.Pattern {
	q := pattern.New()
	for v := 0; v < p.NumVars(); v++ {
		q.AddVar(fmt.Sprintf("%s_%d", prefix, v), p.Label(pattern.Var(v)))
	}
	for _, e := range p.Edges() {
		q.AddEdge(e.From, e.To, e.Label)
	}
	return q
}

// MutateDelta applies n random updates to the delta, schema-consistent like
// the base materializations: added nodes carry W-consistent attributes and
// wire into the schema, added edges follow the frequent-edge triples,
// removals drop sampled base edges (and occasionally whole nodes), and
// attribute rewrites split between W-consistent values and fresh noise
// values that flip literal evaluations. The op mix mirrors a slowly
// changing graph: mostly edge churn, some attribute churn, rare node churn.
// The target is any graph.Mutator: a bare in-memory Delta, or a WAL fronting
// one — the latter persists the stream as it is generated, the fixture path
// for recovery tests and benchmarks.
func (g *Generator) MutateDelta(d graph.Mutator, n int) {
	base := d.Base()
	alive := func() (graph.NodeID, bool) {
		for try := 0; try < 16 && d.NumNodes() > 0; try++ {
			v := graph.NodeID(g.rng.Intn(d.NumNodes()))
			if d.Alive(v) {
				return v, true
			}
		}
		return 0, false
	}
	// Per-label candidate cache: CandidateNodes copies the label run on
	// every call (graph.Reader copy contract) and aliveTarget runs per op.
	// The base snapshot is immutable while the delta absorbs the updates,
	// so one copy per label serves the whole stream.
	candCache := map[string][]graph.NodeID{}
	aliveTarget := func(label string) (graph.NodeID, bool) {
		targets, ok := candCache[label]
		if !ok {
			targets = base.CandidateNodes(label)
			candCache[label] = targets
		}
		for try := 0; try < 8 && len(targets) > 0; try++ {
			t := targets[g.rng.Intn(len(targets))]
			if d.Alive(t) {
				return t, true
			}
		}
		return 0, false
	}
	for i := 0; i < n; i++ {
		switch r := g.rng.Intn(100); {
		case r < 15: // add a node, schema-wired into the existing graph
			l := g.headLabel()
			id := d.AddNode(l)
			for _, a := range g.cfg.Profile.Attrs {
				if v, ok := g.w[[2]string{l, a}]; ok {
					d.SetAttr(id, a, v)
				} else if v, ok := g.w[[2]string{graph.Wildcard, a}]; ok {
					d.SetAttr(id, a, v)
				}
			}
			for _, fe := range g.triplesAt(l) {
				if fe[0] != l {
					continue
				}
				if t, ok := aliveTarget(fe[2]); ok {
					d.AddEdge(id, t, fe[1])
				}
			}
		case r < 45: // add a schema edge between existing nodes
			v, ok := alive()
			if !ok {
				continue
			}
			var fes [][3]string
			for _, fe := range g.triplesAt(d.Label(v)) {
				if fe[0] == d.Label(v) {
					fes = append(fes, fe)
				}
			}
			if len(fes) == 0 {
				continue
			}
			fe := fes[g.rng.Intn(len(fes))]
			if t, ok := aliveTarget(fe[2]); ok {
				d.AddEdge(v, t, fe[1])
			}
		case r < 65: // remove a sampled base edge (no-op if already gone)
			if base.NumNodes() == 0 {
				continue
			}
			v := graph.NodeID(g.rng.Intn(base.NumNodes()))
			es := base.Out(v)
			if len(es) == 0 {
				continue
			}
			e := es[g.rng.Intn(len(es))]
			d.RemoveEdge(e.From, e.To, e.Label)
		case r < 92: // attribute rewrite: half consistent, half noise
			v, ok := alive()
			if !ok {
				continue
			}
			attrs := g.cfg.Profile.Attrs
			a := attrs[g.rng.Intn(len(attrs))]
			if g.rng.Intn(2) == 0 {
				d.SetAttr(v, a, g.wOf(d.Label(v), a))
			} else {
				d.SetAttr(v, a, fmt.Sprintf("noise%d", g.rng.Intn(16)))
			}
		default: // remove a node outright
			if v, ok := alive(); ok {
				d.RemoveNode(v)
			}
		}
	}
}

// DenseDelta builds a fresh n-op update stream over the base snapshot; see
// MutateDelta for the op mix.
func (g *Generator) DenseDelta(base *graph.Frozen, n int) *graph.Delta {
	d := graph.NewDelta(base)
	g.MutateDelta(d, n)
	return d
}

// denseEdges draws the label-dense edge set into the build target.
func (g *Generator) denseEdges(gr graph.Sink, labels []string, degree int) {
	byLabel := make(map[string][]graph.NodeID, 8)
	for i, l := range labels {
		byLabel[l] = append(byLabel[l], graph.NodeID(i))
	}
	for i := range labels {
		var fes [][3]string
		for _, fe := range g.frequentEdges {
			if fe[0] == labels[i] && len(byLabel[fe[2]]) > 0 {
				fes = append(fes, fe)
			}
		}
		if len(fes) == 0 {
			continue
		}
		for d := 0; d < degree; d++ {
			fe := fes[g.rng.Intn(len(fes))]
			targets := byLabel[fe[2]]
			gr.AddEdge(graph.NodeID(i), targets[g.rng.Intn(len(targets))], fe[1])
		}
	}
}
