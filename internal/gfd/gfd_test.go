package gfd

import (
	"strings"
	"testing"

	"repro/internal/pattern"
)

func edgeP() *pattern.Pattern {
	p := pattern.New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "b")
	p.AddEdge(x, y, "e")
	return p
}

func TestNewValidatesVariables(t *testing.T) {
	p := edgeP()
	if _, err := New("bad", p, nil, []Literal{Const(5, "A", "1")}); err == nil {
		t.Error("literal on undeclared variable accepted")
	}
	if _, err := New("bad2", p, []Literal{Vars(0, "A", 7, "B")}, nil); err == nil {
		t.Error("var literal with undeclared rhs accepted")
	}
	if _, err := New("ok", p, []Literal{Const(0, "A", "1")}, []Literal{Vars(0, "A", 1, "B")}); err != nil {
		t.Errorf("valid GFD rejected: %v", err)
	}
}

func TestFalseDesugaring(t *testing.T) {
	phi, err := NewFalse("f", edgeP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !phi.IsFalsehood() {
		t.Error("NewFalse result not recognized as falsehood")
	}
	if len(phi.Y) != 2 {
		t.Errorf("false desugars to %d literals, want 2", len(phi.Y))
	}
	// The two literals must contradict: same term, distinct constants.
	if phi.Y[0].X != phi.Y[0].X || phi.Y[0].A != phi.Y[1].A || phi.Y[0].Const == phi.Y[1].Const {
		t.Errorf("false literals do not contradict: %v", phi.Y)
	}
	// An ordinary GFD is not a falsehood.
	plain := MustNew("p", edgeP(), nil, []Literal{Const(0, "A", "1")})
	if plain.IsFalsehood() {
		t.Error("plain GFD misreported as falsehood")
	}
	// Empty-pattern falsehood is rejected.
	if _, err := NewFalse("e", pattern.New(), nil); err == nil {
		t.Error("false-GFD with no variables accepted")
	}
}

func TestSizeAndSetSize(t *testing.T) {
	phi := MustNew("s", edgeP(), []Literal{Const(0, "A", "1")}, []Literal{Vars(0, "A", 1, "B")})
	// |Q| = 2 vars + 1 edge = 3; |X| = 1; |Y| = 1.
	if phi.Size() != 5 {
		t.Errorf("Size = %d, want 5", phi.Size())
	}
	set := NewSet(phi, phi)
	if set.Size() != 10 || set.Len() != 2 {
		t.Errorf("set Size=%d Len=%d", set.Size(), set.Len())
	}
}

func TestConstants(t *testing.T) {
	phi1 := MustNew("a", edgeP(), []Literal{Const(0, "A", "u")}, []Literal{Const(1, "B", "v")})
	phi2 := MustNew("b", edgeP(), nil, []Literal{Const(0, "A", "u")}) // duplicate "u"
	cs := NewSet(phi1, phi2).Constants()
	if len(cs) != 2 || cs[0] != "u" || cs[1] != "v" {
		t.Errorf("Constants = %v, want [u v]", cs)
	}
}

func TestStringRendering(t *testing.T) {
	phi := MustNew("r", edgeP(), []Literal{Const(0, "A", "1")}, []Literal{Vars(0, "A", 1, "B")})
	s := phi.String()
	for _, want := range []string{"r:", `x.A="1"`, "x.A=y.B", "→"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	f, _ := NewFalse("f", edgeP(), nil)
	if !strings.Contains(f.String(), "false") {
		t.Errorf("falsehood renders as %q", f.String())
	}
}
