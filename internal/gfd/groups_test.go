package gfd_test

import (
	"testing"

	"repro/internal/gfd"
	"repro/internal/pattern"
)

func chainPattern(labels ...string) *pattern.Pattern {
	p := pattern.New()
	var prev pattern.Var
	for i, l := range labels {
		v := p.AddVar(string(rune('a'+i)), l)
		if i > 0 {
			p.AddEdge(prev, v, "e")
		}
		prev = v
	}
	return p
}

// TestSetGroups pins the grouping semantics: same pattern value groups,
// structurally equal distinct values group, structurally different patterns
// do not, and both group order and member order follow Σ order.
func TestSetGroups(t *testing.T) {
	shared := chainPattern("a", "b")
	sharedCopy := chainPattern("a", "b") // distinct value, equal structure
	other := chainPattern("a", "c")

	set := gfd.NewSet(
		gfd.MustNew("g0", shared, nil, []gfd.Literal{gfd.Const(0, "k", "v")}),
		gfd.MustNew("g1", other, nil, []gfd.Literal{gfd.Const(0, "k", "v")}),
		gfd.MustNew("g2", sharedCopy, nil, []gfd.Literal{gfd.Const(1, "k", "w")}),
		gfd.MustNew("g3", shared, []gfd.Literal{gfd.Const(0, "k", "v")}, []gfd.Literal{gfd.Const(1, "k", "w")}),
	)
	groups := set.Groups()
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(groups), groups)
	}
	if groups[0].Pattern != shared {
		t.Fatal("group 0 representative is not the first member's pattern value")
	}
	wantMembers := [][]int{{0, 2, 3}, {1}}
	for gi, want := range wantMembers {
		got := groups[gi].Members
		if len(got) != len(want) {
			t.Fatalf("group %d members %v, want %v", gi, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("group %d members %v, want %v", gi, got, want)
			}
		}
	}
}
