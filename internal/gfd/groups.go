package gfd

import "repro/internal/pattern"

// Group is one bucket of Set.Groups: the GFDs of Σ whose patterns are
// structurally equal. Because equality is positional (see
// pattern.StructuralEqual), a match of the representative Pattern is —
// index for index — a match of every member's pattern, which is what lets
// the evaluation layers enumerate a group's matches once and fan out only
// the X → Y literal checks per member.
type Group struct {
	// Pattern is the representative: the first member's pattern value.
	Pattern *pattern.Pattern
	// Members indexes Set.GFDs, ascending.
	Members []int
}

// Groups buckets Σ by pattern structure: fingerprint first, then the full
// structural-equality check behind the hash, so a 64-bit collision can
// never merge two patterns that differ. Groups are ordered by their first
// member's position in Σ and members stay in Σ order, keeping every
// grouped evaluation's output order derivable from Σ alone.
func (s *Set) Groups() []Group {
	groups := make([]Group, 0, len(s.GFDs))
	buckets := make(map[uint64][]int, len(s.GFDs)) // fingerprint → group indexes
	for i, phi := range s.GFDs {
		fp := phi.Pattern.Fingerprint()
		found := -1
		for _, gi := range buckets[fp] {
			if pattern.StructuralEqual(groups[gi].Pattern, phi.Pattern) {
				found = gi
				break
			}
		}
		if found < 0 {
			found = len(groups)
			groups = append(groups, Group{Pattern: phi.Pattern})
			buckets[fp] = append(buckets[fp], found)
		}
		groups[found].Members = append(groups[found].Members, i)
	}
	return groups
}
