// Package gfd defines graph functional dependencies Q[x̄](X → Y) as in
// Section III of the paper: a graph pattern Q scoping an attribute
// dependency X → Y over literals x.A = c and x.A = y.B.
package gfd

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
)

// LiteralKind distinguishes the two literal forms.
type LiteralKind int

const (
	// ConstLiteral is x.A = c.
	ConstLiteral LiteralKind = iota
	// VarLiteral is x.A = y.B.
	VarLiteral
)

// Reserved attribute and constants used to desugar the Boolean constant
// false in consequents: false ≡ {x.⊥ = ⊥0, x.⊥ = ⊥1} with distinct
// constants, which no model can satisfy.
const (
	FalseAttr   = "__false"
	FalseConst0 = "__bot0"
	FalseConst1 = "__bot1"
)

// Literal is an attribute literal over pattern variables.
type Literal struct {
	Kind LiteralKind
	X    pattern.Var // left variable
	A    string      // left attribute
	// ConstLiteral:
	Const string
	// VarLiteral:
	Y pattern.Var
	B string
}

// Const returns the literal x.A = c.
func Const(x pattern.Var, a, c string) Literal {
	return Literal{Kind: ConstLiteral, X: x, A: a, Const: c}
}

// Vars returns the literal x.A = y.B.
func Vars(x pattern.Var, a string, y pattern.Var, b string) Literal {
	return Literal{Kind: VarLiteral, X: x, A: a, Y: y, B: b}
}

// String renders the literal using variable indexes (use GFD.FormatLiteral
// for names).
func (l Literal) String() string {
	if l.Kind == ConstLiteral {
		return fmt.Sprintf("$%d.%s=%q", l.X, l.A, l.Const)
	}
	return fmt.Sprintf("$%d.%s=$%d.%s", l.X, l.A, l.Y, l.B)
}

// GFD is a graph functional dependency φ = Q[x̄](X → Y).
type GFD struct {
	// Name is an optional identifier used in diagnostics and work-unit
	// labels; generated GFDs get sequential names.
	Name    string
	Pattern *pattern.Pattern
	X       []Literal // antecedent; empty means "always fires"
	Y       []Literal // consequent; empty means trivially satisfied
}

// New constructs a GFD and validates that every literal references declared
// variables.
func New(name string, p *pattern.Pattern, x, y []Literal) (*GFD, error) {
	g := &GFD{Name: name, Pattern: p, X: x, Y: y}
	for _, l := range append(append([]Literal{}, x...), y...) {
		if int(l.X) < 0 || int(l.X) >= p.NumVars() {
			return nil, fmt.Errorf("gfd %s: literal references undeclared variable $%d", name, l.X)
		}
		if l.Kind == VarLiteral && (int(l.Y) < 0 || int(l.Y) >= p.NumVars()) {
			return nil, fmt.Errorf("gfd %s: literal references undeclared variable $%d", name, l.Y)
		}
	}
	p.Freeze()
	return g, nil
}

// MustNew is New that panics on error. It is a test and example helper
// only: library code routes through New and handles the error (parsers
// propagate it, miners skip the candidate, generators assert their own
// construction invariant).
func MustNew(name string, p *pattern.Pattern, x, y []Literal) *GFD {
	g, err := New(name, p, x, y)
	if err != nil {
		panic(err)
	}
	return g
}

// NewFalse constructs Q[x̄](X → false): the consequent is desugared to two
// contradicting constant literals on a reserved attribute of the first
// variable, following the paper's syntactic-sugar reading.
func NewFalse(name string, p *pattern.Pattern, x []Literal) (*GFD, error) {
	if p.NumVars() == 0 {
		return nil, fmt.Errorf("gfd %s: false-GFD needs at least one variable", name)
	}
	y := []Literal{Const(0, FalseAttr, FalseConst0), Const(0, FalseAttr, FalseConst1)}
	return New(name, p, x, y)
}

// IsFalsehood reports whether the consequent is the desugared false.
func (g *GFD) IsFalsehood() bool {
	seen0, seen1 := false, false
	for _, l := range g.Y {
		if l.Kind == ConstLiteral && l.A == FalseAttr {
			switch l.Const {
			case FalseConst0:
				seen0 = true
			case FalseConst1:
				seen1 = true
			}
		}
	}
	return seen0 && seen1
}

// Size returns |φ| = |Q| + |X| + |Y|, the measure used by the small model
// properties.
func (g *GFD) Size() int { return g.Pattern.Size() + len(g.X) + len(g.Y) }

// FormatLiteral renders a literal with the GFD's variable names.
func (g *GFD) FormatLiteral(l Literal) string {
	if l.Kind == ConstLiteral {
		return fmt.Sprintf("%s.%s=%q", g.Pattern.Name(l.X), l.A, l.Const)
	}
	return fmt.Sprintf("%s.%s=%s.%s", g.Pattern.Name(l.X), l.A, g.Pattern.Name(l.Y), l.B)
}

// String renders the GFD.
func (g *GFD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: Q[%s](", g.Name, g.Pattern.String())
	for i, l := range g.X {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(g.FormatLiteral(l))
	}
	b.WriteString(" → ")
	if g.IsFalsehood() {
		b.WriteString("false")
	} else {
		for i, l := range g.Y {
			if i > 0 {
				b.WriteString(" ∧ ")
			}
			b.WriteString(g.FormatLiteral(l))
		}
	}
	b.WriteString(")")
	return b.String()
}

// Set is an ordered set Σ of GFDs.
type Set struct {
	GFDs []*GFD
}

// NewSet builds a Set from the given GFDs.
func NewSet(gfds ...*GFD) *Set { return &Set{GFDs: gfds} }

// Add appends a GFD to Σ.
func (s *Set) Add(g *GFD) { s.GFDs = append(s.GFDs, g) }

// Len returns |Σ| as a count of GFDs.
func (s *Set) Len() int { return len(s.GFDs) }

// Size returns |Σ| as the total size of all GFDs (patterns plus literals),
// the bound of the small model property.
func (s *Set) Size() int {
	n := 0
	for _, g := range s.GFDs {
		n += g.Size()
	}
	return n
}

// Constants returns every constant appearing in Σ's literals (with
// duplicates removed, order deterministic by first occurrence). The small
// model property guarantees models only need these constants plus fresh
// distinct ones.
func (s *Set) Constants() []string {
	seen := make(map[string]bool)
	var out []string
	for _, g := range s.GFDs {
		for _, l := range append(append([]Literal{}, g.X...), g.Y...) {
			if l.Kind == ConstLiteral && !seen[l.Const] {
				seen[l.Const] = true
				out = append(out, l.Const)
			}
		}
	}
	return out
}

// String renders the set, one GFD per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, g := range s.GFDs {
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	return b.String()
}
