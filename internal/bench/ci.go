// Benchmark-regression gating for CI. RunCI measures a small, fast suite
// of the repo's own performance claims and reports them as named metrics;
// CompareCI fails a run that regresses more than a tolerance against a
// checked-in baseline (BENCH_baseline.json; regenerate with
// `go run ./cmd/benchall -ci BENCH_baseline.json`, then round the gating
// ratios down to conservative floors so runner-to-runner noise cannot
// flake the gate).
//
// Gating metrics are *ratios* (speedups between two code paths measured in
// the same process), not absolute times: ratios survive the machine change
// between the baseline author's box and a CI runner, while wall-clock
// numbers do not. Absolute times ride along as informational metrics so
// the uploaded artifact stays useful for eyeballing trends.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// Metric is one named CI measurement.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// HigherIsBetter orients the regression check: a gating metric
	// regresses when it moves against this direction by more than the
	// tolerance.
	HigherIsBetter bool `json:"higherIsBetter"`
	// Informational metrics are recorded in the artifact but never gate
	// (absolute times, machine-dependent).
	Informational bool `json:"informational,omitempty"`
}

// CIReport is the JSON document exchanged between a CI run and the
// checked-in baseline.
type CIReport struct {
	Metrics []Metric `json:"metrics"`
}

// Get returns the named metric.
func (r *CIReport) Get(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Canonical hub-heavy bulk-ingest workload size: large enough that the
// mutable index's O(deg) sorted inserts dominate, small enough for a CI
// rep. Shared (via HubHeavyIngest) with internal/graph's ingest
// benchmarks so the gate and the documented benchmark measure the same
// workload.
const (
	IngestNodes = 20000
	IngestEdges = 100000
	ingestHubs  = 16
	ingestLabs  = 8
)

// HubHeavyIngest synthesizes the canonical bulk-ingest worst case for the
// incremental index: IngestEdges edges over IngestNodes nodes where 80%
// of edges pile onto a few hub nodes, delivered in shuffled order so the
// sorted-insert tail fast path never helps. Each mutable AddEdge at a hub
// then pays an O(deg) shift — exactly what Freeze's sort-once amortizes
// away.
func HubHeavyIngest(seed int64) (from, to []graph.NodeID, lab []string) {
	rng := rand.New(rand.NewSource(seed))
	from = make([]graph.NodeID, IngestEdges)
	to = make([]graph.NodeID, IngestEdges)
	lab = make([]string, IngestEdges)
	names := make([]string, ingestLabs)
	for i := range names {
		names[i] = fmt.Sprintf("l%d", i)
	}
	for i := 0; i < IngestEdges; i++ {
		from[i] = graph.NodeID(rng.Intn(IngestNodes))
		if rng.Intn(10) < 8 {
			to[i] = graph.NodeID(rng.Intn(ingestHubs))
		} else {
			to[i] = graph.NodeID(rng.Intn(IngestNodes))
		}
		lab[i] = names[rng.Intn(ingestLabs)]
	}
	rng.Shuffle(IngestEdges, func(i, j int) {
		from[i], from[j] = from[j], from[i]
		to[i], to[j] = to[j], to[i]
		lab[i], lab[j] = lab[j], lab[i]
	})
	return from, to, lab
}

// IngestIncremental bulk-loads a HubHeavyIngest workload through the
// mutable path: AddEdge maintains the sorted per-label adjacency
// incrementally, so hub nodes pay an O(deg) shift per insert. Shared by
// the CI gate and BenchmarkIncrementalIngest so both measure the same
// loop.
func IngestIncremental(from, to []graph.NodeID, lab []string) *graph.Graph {
	g := graph.New()
	for v := 0; v < IngestNodes; v++ {
		g.AddNode("n")
	}
	for j := range from {
		g.AddEdge(from[j], to[j], lab[j])
	}
	return g
}

// IngestFrozen bulk-loads the same workload through the Builder: O(1)
// appends, one sort per adjacency run at Freeze. Shared by the CI gate and
// BenchmarkFreezeIngest.
func IngestFrozen(from, to []graph.NodeID, lab []string) *graph.Frozen {
	b := graph.NewBuilder(IngestEdges)
	for v := 0; v < IngestNodes; v++ {
		b.AddNode("n")
	}
	for j := range from {
		b.AddEdge(from[j], to[j], lab[j])
	}
	return b.Freeze()
}

// MatchWorkload builds the canonical label-dense matching workload: a
// DenseGraph(2000, 64) data graph plus the generator-schema triangle
// patterns whose closing edge rejects most partial assignments. Not every
// seed's schema closes a triangle, so the workload comes from the first
// seed in [seed, seed+16) that does; the error fires when none does.
// Shared — same seed policy, same walk — by the CI gate (RunCI) and the
// root BenchmarkMatchIndexed/Frozen/Scan, so at the default seed the
// gated ratios correspond to the published benchmark numbers.
func MatchWorkload(seed int64) (*graph.Graph, []*pattern.Pattern, error) {
	for s := seed; s < seed+16; s++ {
		gr := gen.New(gen.Config{N: 40, K: 6, L: 2, Profile: dataset.DBpedia(), WildcardRate: 0.2, Seed: s})
		if ps := gen.SchemaTriangles(gr.Schema(), 12); len(ps) > 0 {
			return gr.DenseGraph(2000, 64), ps, nil
		}
	}
	return nil, nil, fmt.Errorf("no triangle workload within seeds [%d,%d)", seed, seed+16)
}

// RefreezeOps is the update-batch size of the canonical refreeze workload:
// 1% of the ingest graph's edges, the "slowly changing graph" regime the
// incremental re-freeze targets.
const RefreezeOps = IngestEdges / 100

// RefreezeWorkload derives the canonical refreeze comparison from the
// hub-heavy ingest workload: the frozen base, a fresh ≤1% delta (half edge
// adds, half removes, duplicates of base triples avoided on both sides),
// and the final-state edge arrays a from-scratch rebuild would ingest.
// mkDelta builds an identical delta on every call so each timed Refreeze
// rep pays the full merge, row materialization included.
func RefreezeWorkload(seed int64) (base *graph.Frozen, mkDelta func() *graph.Delta, ffrom, fto []graph.NodeID, flab []string) {
	from, to, lab := HubHeavyIngest(seed)
	base = IngestFrozen(from, to, lab)
	rng := rand.New(rand.NewSource(seed + 1))

	type triple struct {
		from, to graph.NodeID
		lab      string
	}
	removed := make(map[triple]bool, RefreezeOps/2)
	for len(removed) < RefreezeOps/2 {
		i := rng.Intn(len(from))
		removed[triple{from[i], to[i], lab[i]}] = true
	}
	var adds []triple
	for len(adds) < RefreezeOps-RefreezeOps/2 {
		t := triple{graph.NodeID(rng.Intn(IngestNodes)), graph.NodeID(rng.Intn(IngestNodes)), lab[rng.Intn(len(lab))]}
		if !base.HasEdge(t.from, t.to, t.lab) {
			adds = append(adds, t)
		}
	}
	// Final-state arrays: base minus every occurrence of a removed triple
	// (HubHeavyIngest draws duplicates; Freeze collapses them), plus adds.
	for i := range from {
		if !removed[triple{from[i], to[i], lab[i]}] {
			ffrom = append(ffrom, from[i])
			fto = append(fto, to[i])
			flab = append(flab, lab[i])
		}
	}
	for _, t := range adds {
		ffrom = append(ffrom, t.from)
		fto = append(fto, t.to)
		flab = append(flab, t.lab)
	}
	mkDelta = func() *graph.Delta {
		d := graph.NewDelta(base)
		for t := range removed {
			d.RemoveEdge(t.from, t.to, t.lab)
		}
		for _, t := range adds {
			d.AddEdge(t.from, t.to, t.lab)
		}
		return d
	}
	return base, mkDelta, ffrom, fto, flab
}

// ValidateWorkload builds the canonical incremental-validation workload:
// the generator's triangle validation set (radius-1 patterns whose
// W-consistent consequents the clean graph satisfies) over a label-dense
// graph with a sprinkling of perturbed attributes (so the pre-delta graph
// already violates), plus a small update stream. Shared by the CI gate and
// the root BenchmarkRevalidate pair. Errors when no seed in [seed, seed+16)
// closes a schema triangle.
func ValidateWorkload(seed int64) (*gfd.Set, *graph.Frozen, *graph.Delta, error) {
	for s := seed; s < seed+16; s++ {
		gr := gen.New(gen.Config{N: 40, K: 6, L: 2, Profile: dataset.DBpedia(), WildcardRate: 0.2, Seed: s})
		set := gr.ValidationSet(12)
		if set.Len() == 0 {
			continue
		}
		g := gr.DenseGraph(20000, 8)
		rng := rand.New(rand.NewSource(s))
		for i := 0; i < 80; i++ {
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			for a := range g.Attrs(v) {
				g.SetAttr(v, a, "perturbed")
				break
			}
		}
		base := g.Frozen()
		return set, base, gr.DenseDelta(base, 30), nil
	}
	return nil, nil, nil, fmt.Errorf("no triangle validation workload within seeds [%d,%d)", seed, seed+16)
}

// Skewed-intersection workload sizes: a few hub nodes whose label-filtered
// in-runs hold ~tails/hubs entries each, intersected per frame against a
// fanout-sized candidate list — the length skew the galloping kernel exists
// for (see internal/match/intersect.go).
const (
	adaptiveHubs   = 4
	adaptiveMids   = 2000
	adaptiveTails  = 40000
	adaptiveFanout = 8
)

// AdaptiveWorkload builds the canonical skewed-operand matching workload: a
// three-layer hub graph (hubs own mids, mids point at a handful of random
// tails, every tail points back at one hub) and the triangle pattern over
// it. Enumerating the triangle closes each candidate tail against the bound
// hub's ~10k-entry "big" in-run, so the per-frame intersection is a
// fanout-long list against a hub-long one: the merge pays O(hub run) per
// frame where the gallop pays O(fanout·log(hub run)). Shared by the CI gate
// (match_adaptive_speedup) and the adaptive experiment report.
func AdaptiveWorkload(seed int64) (*graph.Frozen, *pattern.Pattern) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(adaptiveMids*(adaptiveFanout+1) + adaptiveTails)
	hubs := make([]graph.NodeID, adaptiveHubs)
	for i := range hubs {
		hubs[i] = b.AddNode("h")
	}
	mids := make([]graph.NodeID, adaptiveMids)
	for i := range mids {
		mids[i] = b.AddNode("m")
	}
	tails := make([]graph.NodeID, adaptiveTails)
	for i := range tails {
		tails[i] = b.AddNode("t")
	}
	for i, y := range mids {
		b.AddEdge(hubs[i%adaptiveHubs], y, "owns")
		for j := 0; j < adaptiveFanout; j++ {
			b.AddEdge(y, tails[rng.Intn(adaptiveTails)], "next")
		}
	}
	// Each tail closes toward one fixed hub, so ~1/hubs of every mid's
	// fan-out survives the closing edge: plenty of matches, but the
	// intersection still rejects most candidates.
	for i, z := range tails {
		b.AddEdge(z, hubs[i%adaptiveHubs], "big")
	}
	p := pattern.New()
	x := p.AddVar("x", "h")
	y := p.AddVar("y", "m")
	z := p.AddVar("z", "t")
	p.AddEdge(x, y, "owns")
	p.AddEdge(y, z, "next")
	p.AddEdge(z, x, "big")
	return b.Freeze(), p
}

// PlanWorkload builds the canonical repeated-query workload for the
// compiled-plan cache: the generator-schema triangle patterns over a graph
// sparse enough that per-query planning (order derivation, label/signature
// resolution, the pruned root pull) is a visible share of each query. Same
// seed-probing policy as MatchWorkload. Shared by the CI gate
// (plan_cache_speedup) and the adaptive experiment report.
func PlanWorkload(seed int64) (*graph.Frozen, []*pattern.Pattern, error) {
	for s := seed; s < seed+16; s++ {
		gr := gen.New(gen.Config{N: 40, K: 6, L: 2, Profile: dataset.DBpedia(), WildcardRate: 0.2, Seed: s})
		if ps := gen.SchemaTriangles(gr.Schema(), 12); len(ps) > 0 {
			return gr.DenseGraph(4000, 3).Frozen(), ps, nil
		}
	}
	return nil, nil, fmt.Errorf("no triangle plan workload within seeds [%d,%d)", seed, seed+16)
}

// PlanQueries runs every pattern once against f — through the cache when
// one is given, planless otherwise — and returns the total match count.
// This is the timed body of the plan-cache comparison: the warm side pays
// one cache probe per query, the cold side re-plans each one.
func PlanQueries(f *graph.Frozen, ps []*pattern.Pattern, cache *match.PlanCache) int {
	n := 0
	for _, p := range ps {
		var plan *match.Plan
		if cache != nil {
			plan = cache.Get(p, f)
		}
		n += match.NewSearch(p, f, match.Options{Plan: plan}).CountAll()
	}
	return n
}

// MultiGFDWorkload builds the canonical shared multi-GFD validation
// workload: a SharedValidationSet of up to 6 schema-triangle patterns with
// 8 GFDs each — members alternating between the shared pattern value and a
// rebuilt structurally equal copy, so grouping must go through the
// fingerprint — over a label-dense graph with a sprinkling of perturbed
// attributes so violations exist. Shared by the CI gate (multi_gfd_speedup)
// and the multigfd experiment. Errors when no seed in [seed, seed+16)
// closes a schema triangle.
func MultiGFDWorkload(seed int64) (*gfd.Set, *graph.Frozen, error) {
	for s := seed; s < seed+16; s++ {
		gr := gen.New(gen.Config{N: 40, K: 6, L: 2, Profile: dataset.DBpedia(), WildcardRate: 0.2, Seed: s})
		set := gr.SharedValidationSet(6, 8)
		if set.Len() == 0 {
			continue
		}
		g := gr.DenseGraph(20000, 8)
		rng := rand.New(rand.NewSource(s))
		for i := 0; i < 80; i++ {
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			for a := range g.Attrs(v) {
				g.SetAttr(v, a, "perturbed")
				break
			}
		}
		return set, g.Frozen(), nil
	}
	return nil, nil, fmt.Errorf("no shared multi-GFD workload within seeds [%d,%d)", seed, seed+16)
}

// sameViolations reports whether two violation lists agree violation for
// violation — GFD identity and match bindings, in order. The multi-GFD gate
// only times code paths this check has proven equivalent.
func sameViolations(a, b []core.Violation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].GFD != b[i].GFD || len(a[i].Match) != len(b[i].Match) {
			return false
		}
		for j := range a[i].Match {
			if a[i].Match[j] != b[i].Match[j] {
				return false
			}
		}
	}
	return true
}

// allocsPerOp measures steady-state heap allocations per call of f. One
// warm-up call runs first so lazily built structures (plans, compiled
// literal programs, scratch) are excluded — the steady state is what the
// hot loops claim. Informational only: counts are deterministic on one
// toolchain but shift across Go versions, so they ride in the artifact
// without gating.
func allocsPerOp(reps int, f func()) float64 {
	if reps < 1 {
		reps = 1
	}
	f()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(reps)
}

// CIShardWorkers is the fan-out width of the sharded/stealing CI metrics:
// the paper's per-machine worker count, oversubscribed harmlessly on
// smaller runners (goroutines, not threads).
const CIShardWorkers = 8

// ParWorkload builds the canonical parallel-reasoning workload for the
// scheduling metrics: a satisfiable DBpedia-profiled set large enough that
// ParSat runs hundreds of work units, checked with a tight TTL so straggler
// splitting (the path the work-stealing executor accelerates) actually
// fires. Shared by the CI gate and the root BenchmarkParSatSharded.
func ParWorkload(seed int64) (*gfd.Set, core.ParOptions) {
	set := gen.New(gen.Config{N: 300, K: 6, L: 3, Profile: dataset.DBpedia(), WildcardRate: 0.2, Seed: seed}).Set()
	opt := core.DefaultParOptions(CIShardWorkers)
	opt.TTL = time.Millisecond
	return set, opt
}

// RunCI measures the CI metric suite: freeze-vs-incremental bulk ingest on
// the 100k-edge hub-heavy graph, the matching hot path across the
// three modes (frozen CSR, mutable indexed, pre-index scan) on the
// label-dense triangle workload, the sharded parallel fan-out against the
// flat single-threaded enumeration of the same workload, the adaptive
// intersection kernels against the merge-only ablation on the skewed hub
// workload, the warm plan cache against per-query planning, the
// work-stealing executor against the central-queue baseline, the
// incremental re-freeze against a from-scratch rebuild of the same final
// state, incremental revalidation against full re-validation after a
// small delta, and the persistence metrics (snapshot load vs
// rebuild-from-edges, refreeze on a compacted vs tombstone-heavy base, WAL
// recovery). Wall time is a few seconds. The suite is
// fixed-size by design — Config.Scale does not apply — so reports stay
// comparable across baselines; Seed reseeds both workloads and Reps sets
// the per-measurement median width. It errors instead of gating when a
// workload cannot be built (a gate on garbage numbers is worse than no
// gate); the report measured up to that point is still returned beside the
// error, so callers can flush the partial artifact.
func RunCI(cfg Config) (*CIReport, error) {
	cfg = cfg.withDefaults()
	report := &CIReport{}
	msOf := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	gauge := func(name string, num, den time.Duration) {
		v := 0.0
		if den > 0 {
			v = float64(num) / float64(den)
		}
		report.Metrics = append(report.Metrics, Metric{Name: name, Value: v, Unit: "x", HigherIsBetter: true})
	}
	info := func(name string, d time.Duration) {
		report.Metrics = append(report.Metrics, Metric{Name: name, Value: msOf(d), Unit: "ms", Informational: true})
	}
	infoAllocs := func(name string, v float64) {
		report.Metrics = append(report.Metrics, Metric{Name: name, Value: v, Unit: "allocs/op", Informational: true})
	}

	from, to, lab := HubHeavyIngest(cfg.Seed)
	incremental := medianTime(cfg.Reps, func() { IngestIncremental(from, to, lab) })
	freeze := medianTime(cfg.Reps, func() { IngestFrozen(from, to, lab) })
	gauge("freeze_ingest_speedup", incremental, freeze)
	info("incremental_ingest_ms", incremental)
	info("freeze_ingest_ms", freeze)

	g, ps, err := MatchWorkload(cfg.Seed)
	if err != nil {
		return report, fmt.Errorf("cannot measure match metrics: %v", err)
	}
	f := g.Frozen()
	matchAll := func(data graph.Reader, scan bool) time.Duration {
		return medianTime(cfg.Reps, func() {
			for _, p := range ps {
				s := match.NewSearch(p, data, match.Options{Scan: scan})
				s.CountAll()
			}
		})
	}
	frozen, indexed, scan := matchAll(f, false), matchAll(g, false), matchAll(g, true)
	gauge("match_indexed_speedup", scan, indexed)
	gauge("match_frozen_gain", indexed, frozen)
	info("match_frozen_ms", frozen)
	info("match_indexed_ms", indexed)
	info("match_scan_ms", scan)
	infoAllocs("match_frozen_allocs", allocsPerOp(cfg.Reps, func() {
		for _, p := range ps {
			match.NewSearch(p, f, match.Options{}).CountAll()
		}
	}))

	// Sharded fan-out vs the flat single-threaded enumeration of the same
	// workload. The ratio is gated with a deliberately conservative baseline
	// floor: runner core counts vary (a 1-core runner can at best break
	// even), so the gate guards "sharding never becomes a tax", while the
	// informational times record the actual speedup per machine.
	sh := f.Sharded(graph.DefaultShardCount(f.NumNodes()))
	sharded := medianTime(cfg.Reps, func() {
		for _, p := range ps {
			match.CountSharded(p, sh, CIShardWorkers, match.Options{})
		}
	})
	gauge("match_sharded_speedup", frozen, sharded)
	info("match_sharded_ms", sharded)

	// The fast side of an algorithmic ratio can run in single-digit
	// milliseconds, where one descheduling on a busy runner dwarfs the
	// measurement; every such side below is single-threaded and
	// deterministic, so min-of-N (see minTime) recovers the true cost as
	// long as one rep runs clean — and gets extra reps to make that likely.
	incrReps := 4*cfg.Reps + 3

	// Adaptive intersection kernels vs the merge-only ablation on the
	// skewed-operand triangle: both sides enumerate the same matches
	// (checked below — a gate comparing different answers measures
	// nothing), single-threaded over the same snapshot, so the ratio is
	// machine-independent and its baseline floor enforces that the kernel
	// picker keeps beating the plain merge where the skew says it must.
	af, ap := AdaptiveWorkload(cfg.Seed)
	countTriangles := func(opts match.Options) int {
		return match.NewSearch(ap, af, opts).CountAll()
	}
	if a, m := countTriangles(match.Options{}), countTriangles(match.Options{MergeOnly: true}); a != m || a == 0 {
		return report, fmt.Errorf("adaptive workload broken: adaptive found %d matches, merge-only %d", a, m)
	}
	adaptiveT := minTime(incrReps, func() { countTriangles(match.Options{}) })
	mergeT := minTime(cfg.Reps, func() { countTriangles(match.Options{MergeOnly: true}) })
	gauge("match_adaptive_speedup", mergeT, adaptiveT)
	info("match_adaptive_ms", adaptiveT)
	info("match_merge_only_ms", mergeT)

	// Warm plan cache vs per-query planning on the repeated-query workload.
	// The warm loop includes the per-query cache probe — the cost a real
	// caller pays — against a cache warmed outside the timed region; the
	// warm-up run doubles as the equal-results sanity check.
	pf, pps, err := PlanWorkload(cfg.Seed)
	if err != nil {
		return report, fmt.Errorf("cannot build the plan workload: %v", err)
	}
	planCache := match.NewPlanCache()
	if warm, cold := PlanQueries(pf, pps, planCache), PlanQueries(pf, pps, nil); warm != cold {
		return report, fmt.Errorf("plan workload broken: planned queries found %d matches, planless %d", warm, cold)
	}
	coldT := minTime(cfg.Reps, func() { PlanQueries(pf, pps, nil) })
	warmT := minTime(incrReps, func() { PlanQueries(pf, pps, planCache) })
	gauge("plan_cache_speedup", coldT, warmT)
	info("plan_cold_ms", coldT)
	info("plan_warm_ms", warmT)

	// Work-stealing vs central-queue executor on the shared parallel
	// reasoning workload, same conservative-floor rationale.
	set, popt := ParWorkload(cfg.Seed)
	copt := popt
	copt.Stealing = false
	stealT := medianTime(cfg.Reps, func() { core.ParSat(set, popt) })
	centralT := medianTime(cfg.Reps, func() { core.ParSat(set, copt) })
	gauge("parsat_steal_speedup", centralT, stealT)
	info("parsat_steal_ms", stealT)
	info("parsat_central_ms", centralT)

	// Cooperative-cancellation latency on the same workload: cancel a run
	// ~2ms in and measure cancel-to-return. Informational only — it is a
	// scheduling measurement, not a machine-independent ratio — but it
	// keeps the cancellation bound visible in every report. Reps where the
	// run finishes before the cancel lands measure nothing and are skipped.
	var cancelLats []time.Duration
	for i := 0; i < cfg.Reps; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		xopt := popt
		xopt.Ctx = ctx
		at := make(chan time.Time, 1)
		go func() {
			time.Sleep(2 * time.Millisecond)
			at <- time.Now()
			cancel()
		}()
		res := core.ParSat(set, xopt)
		ret := time.Now()
		canceledAt := <-at
		cancel()
		if res.Err != nil {
			cancelLats = append(cancelLats, ret.Sub(canceledAt))
		}
	}
	if len(cancelLats) > 0 {
		sort.Slice(cancelLats, func(i, j int) bool { return cancelLats[i] < cancelLats[j] })
		info("parsat_cancel_latency_ms", cancelLats[len(cancelLats)/2])
	}

	// Incremental re-freeze vs from-scratch rebuild of the same final state
	// on the 100k-edge ingest base with a 1% delta. Each rep gets its own
	// pre-built delta with an Overlay already taken — the lifecycle position
	// Refreeze actually runs in: the overlay served reads while updates
	// accumulated (materializing the merged rows as it went), and the
	// refreeze merges those rows into the next CSR. The ratio is
	// machine-independent (two single-threaded code paths over the same
	// data), so its baseline floor enforces the ≥5x acceptance claim
	// directly.
	base, mkDelta, ffrom, fto, flab := RefreezeWorkload(cfg.Seed)
	deltas := make([]*graph.Delta, incrReps)
	for i := range deltas {
		deltas[i] = mkDelta()
		deltas[i].Overlay()
	}
	rebuildT := minTime(cfg.Reps, func() { IngestFrozen(ffrom, fto, flab) })
	rep := 0
	var refrozen *graph.Frozen
	refreezeT := minTime(incrReps, func() {
		refrozen = base.Refreeze(deltas[rep])
		rep++
	})
	if want := IngestFrozen(ffrom, fto, flab); refrozen.NumEdges() != want.NumEdges() {
		return report, fmt.Errorf("refreeze produced %d edges, rebuild %d: workload is broken",
			refrozen.NumEdges(), want.NumEdges())
	}
	gauge("refreeze_speedup", rebuildT, refreezeT)
	info("refreeze_ms", refreezeT)
	info("rebuild_ms", rebuildT)

	// Incremental revalidation vs full re-validation after a small delta,
	// both sequential over the same overlay — again a machine-independent
	// algorithmic ratio.
	vset, vbase, vdelta, err := ValidateWorkload(cfg.Seed)
	if err != nil {
		return report, fmt.Errorf("cannot measure revalidation metrics: %v", err)
	}
	prev := core.Violations(vbase, vset)
	overlay := vdelta.Overlay()
	fullValT := minTime(cfg.Reps, func() { core.Violations(overlay, vset) })
	incrValT := minTime(incrReps, func() {
		core.RevalidateDelta(vset, vdelta, prev, core.RevalidateOptions{})
	})
	gauge("incr_validate_speedup", fullValT, incrValT)
	info("incr_validate_ms", incrValT)
	info("full_validate_ms", fullValT)

	// Shared multi-GFD evaluation vs the per-GFD ablation: ~8 GFDs per
	// pattern structure, so the grouped path enumerates each pattern once
	// where the ablation enumerates it eight times. Both sides are
	// single-threaded and deterministic over the same snapshot, making the
	// ratio machine-independent; the equal-results check proves the two
	// paths agree violation for violation before anything is timed.
	mset, mg, err := MultiGFDWorkload(cfg.Seed)
	if err != nil {
		return report, fmt.Errorf("cannot build the multi-GFD workload: %v", err)
	}
	bg := context.Background()
	grouped, gst, gerr := core.ViolationsOpts(bg, mg, mset, core.VerifyOptions{})
	ablation, _, aerr := core.ViolationsOpts(bg, mg, mset, core.VerifyOptions{PerGFD: true})
	if gerr != nil || aerr != nil {
		return report, fmt.Errorf("multi-GFD workload failed: grouped %v, per-GFD %v", gerr, aerr)
	}
	if !sameViolations(grouped, ablation) {
		return report, fmt.Errorf("multi-GFD workload broken: grouped found %d violations, per-GFD %d — paths disagree", len(grouped), len(ablation))
	}
	if gst.SharedGFDs == 0 {
		return report, fmt.Errorf("multi-GFD workload vacuous: no GFD shared a pattern group (%d groups over %d GFDs)", gst.Groups, mset.Len())
	}
	perGFDT := minTime(cfg.Reps, func() {
		core.ViolationsOpts(bg, mg, mset, core.VerifyOptions{PerGFD: true})
	})
	groupedT := minTime(incrReps, func() {
		core.ViolationsOpts(bg, mg, mset, core.VerifyOptions{})
	})
	gauge("multi_gfd_speedup", perGFDT, groupedT)
	info("multi_gfd_grouped_ms", groupedT)
	info("multi_gfd_pergfd_ms", perGFDT)
	infoAllocs("multi_gfd_grouped_allocs", allocsPerOp(cfg.Reps, func() {
		core.ViolationsOpts(bg, mg, mset, core.VerifyOptions{})
	}))
	infoAllocs("multi_gfd_pergfd_allocs", allocsPerOp(cfg.Reps, func() {
		core.ViolationsOpts(bg, mg, mset, core.VerifyOptions{PerGFD: true})
	}))

	// Snapshot load vs the same rebuild-from-edges the freeze metric timed:
	// both produce the base snapshot, one by sorting raw edges, one by
	// decoding the binary image. Single-threaded and deterministic, so the
	// ratio is machine-independent and min-of-N applies.
	img, err := SnapshotImage(base)
	if err != nil {
		return report, fmt.Errorf("cannot serialize the snapshot workload: %v", err)
	}
	saveT := minTime(cfg.Reps, func() {
		if _, serr := SnapshotImage(base); serr != nil {
			panic(serr)
		}
	})
	var loadErr error
	loadT := minTime(incrReps, func() {
		if _, loadErr = graph.ReadSnapshot(bytes.NewReader(img)); loadErr != nil {
			panic(loadErr)
		}
	})
	gauge("snapshot_load_speedup", freeze, loadT)
	info("snapshot_save_ms", saveT)
	info("snapshot_load_ms", loadT)

	// Refreeze of identical churn against a 30%-dead base vs its compacted
	// equivalent: the compaction win on the V-proportional refreeze work.
	// Same machine-independence rationale as refreeze_speedup.
	deadBase, compacted, _, mkDead, mkCompact, err := CompactWorkload(cfg.Seed)
	if err != nil {
		return report, fmt.Errorf("cannot build the compaction workload: %v", err)
	}
	dDead, dComp := mkDead(), mkCompact()
	dDead.Overlay()
	dComp.Overlay()
	compactT := minTime(cfg.Reps, func() { deadBase.Compact() })
	deadT := minTime(incrReps, func() { deadBase.Refreeze(dDead) })
	compT := minTime(incrReps, func() { compacted.Refreeze(dComp) })
	gauge("compact_refreeze_speedup", deadT, compT)
	info("compact_ms", compactT)
	info("refreeze_dead_ms", deadT)
	info("refreeze_compacted_ms", compT)

	// WAL recovery over the sampled update stream: informational only (an
	// absolute time), recorded so recovery-cost trends stay visible in the
	// artifact.
	wbase, apply := WALWorkload(cfg.Seed)
	var log bytes.Buffer
	w := graph.NewWAL(&log, graph.NewDelta(wbase))
	apply(w)
	if err := w.Close(); err != nil {
		return report, fmt.Errorf("cannot build the WAL workload: %v", err)
	}
	recT := minTime(cfg.Reps, func() {
		if _, _, rerr := graph.Recover(wbase, bytes.NewReader(log.Bytes())); rerr != nil {
			panic(rerr)
		}
	})
	info("wal_recover_ms", recT)

	return report, nil
}

// Format renders the report as an aligned text table for logs.
func (r *CIReport) Format() string {
	rep := &Report{
		Name:   "CI",
		Title:  "benchmark-regression metric suite",
		Header: []string{"metric", "value", "unit", "gating"},
	}
	for _, m := range r.Metrics {
		gate := "yes"
		if m.Informational {
			gate = "info-only"
		}
		rep.Rows = append(rep.Rows, []string{m.Name, fmt.Sprintf("%.2f", m.Value), m.Unit, gate})
	}
	return rep.Format()
}

// WriteCIReport writes the report as indented JSON.
func WriteCIReport(path string, r *CIReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCIReport parses a report written by WriteCIReport.
func ReadCIReport(path string) (*CIReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r CIReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

// CompareCI returns one violation message per gating metric of the
// baseline that the current report regresses by more than tol (a fraction:
// 0.25 allows a 25% slide). Gating metrics missing from the current report
// are violations; metrics the baseline does not know are ignored, so the
// suite can grow without invalidating old baselines.
func CompareCI(baseline, current *CIReport, tol float64) []string {
	var violations []string
	for _, base := range baseline.Metrics {
		if base.Informational {
			continue
		}
		cur, ok := current.Get(base.Name)
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from current report (baseline %.2f)", base.Name, base.Value))
			continue
		}
		if base.HigherIsBetter {
			if floor := base.Value * (1 - tol); cur.Value < floor {
				violations = append(violations,
					fmt.Sprintf("%s: %.2f regressed below %.2f (baseline %.2f, tolerance %.0f%%)",
						base.Name, cur.Value, floor, base.Value, tol*100))
			}
		} else {
			if ceil := base.Value * (1 + tol); cur.Value > ceil {
				violations = append(violations,
					fmt.Sprintf("%s: %.2f regressed above %.2f (baseline %.2f, tolerance %.0f%%)",
						base.Name, cur.Value, ceil, base.Value, tol*100))
			}
		}
	}
	return violations
}

// ViolationError folds every CompareCI violation into one error, so a CI
// failure reports the complete set of regressed metrics at once rather
// than the first one per re-run. Nil when there are no violations.
func ViolationError(baseline string, violations []string) error {
	if len(violations) == 0 {
		return nil
	}
	return fmt.Errorf("benchmark regression against %s (%d metric(s)):\n  %s",
		baseline, len(violations), strings.Join(violations, "\n  "))
}
