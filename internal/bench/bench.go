// Package bench is the experiment harness of Section VII: one runner per
// table and figure of the paper's evaluation, each regenerating the same
// rows/series the paper reports (workload generation, parameter sweep,
// baselines, timing).
//
// Scale: the paper ran 20 machines with up to 10000 GFDs; runners accept a
// Scale factor mapping the paper's workload sizes onto a single process
// (default 1/40th). Absolute times are not comparable — the reproduction
// target is the *shape*: who wins, by roughly what factor, and where the
// optima fall. EXPERIMENTS.md records paper-vs-measured per experiment.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/rdfchase"
)

// Config controls the harness.
type Config struct {
	// Scale multiplies the paper's workload sizes (GFD counts). 1.0 means
	// paper scale; the default 0.025 finishes a full run on a laptop.
	Scale float64
	// Reps is how many times each cell is measured; the median is reported.
	Reps int
	// Seed makes workloads reproducible.
	Seed int64
}

// DefaultConfig returns laptop-scale settings.
func DefaultConfig() Config { return Config{Scale: 0.025, Reps: 3, Seed: 1} }

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.025
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scaled maps a paper-scale count through the configured factor with a
// floor so tiny scales still exercise the machinery.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 20 {
		v = 20
	}
	return v
}

// Report is a formatted experiment result.
type Report struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the report as an aligned text table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.Name, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// medianTime runs f reps times and returns the median duration.
func medianTime(reps int, f func()) time.Duration {
	ds := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		ds = append(ds, time.Since(t0))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// minTime runs f reps times and returns the fastest duration — the robust
// estimator for short (single-digit-millisecond), single-threaded,
// deterministic measurements, where scheduler noise only ever adds time: a
// single cleanly-scheduled rep recovers the true cost, while a median needs
// a majority of clean reps. Parallel measurements keep using medianTime
// (their variance is part of what they measure).
func minTime(reps int, f func()) time.Duration {
	var best time.Duration
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); i == 0 || d < best {
			best = d
		}
	}
	return best
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// datasetSet generates the mined-GFD stand-in for a dataset profile at the
// configured scale (satisfiable, so runs measure the full fixpoint rather
// than an instant early exit).
func datasetSet(cfg Config, p *dataset.Profile) *gfd.Set {
	g := gen.New(gen.Config{
		N:            cfg.scaled(p.GFDCount),
		K:            6,
		L:            5,
		Profile:      p,
		WildcardRate: 0.3,
		Seed:         cfg.Seed,
	})
	return g.Set()
}

// datasetImpInstance generates Σ plus a non-implied target whose decision
// requires propagating an embedded dependency chain (the costly case: the
// fixpoint must complete before answering false).
func datasetImpInstance(cfg Config, p *dataset.Profile) (*gfd.Set, *gfd.GFD) {
	g := gen.New(gen.Config{
		N: cfg.scaled(p.GFDCount),
		K: 6,
		L: 5,
		// Wildcard-rich patterns make matching into the small canonical
		// graph G^X_Q combinatorial, as the paper's mined patterns are.
		WildcardRate: 0.4,
		Profile:      p,
		Seed:         cfg.Seed,
	})
	return g.ImpInstance(6)
}

// parOpt builds the standard parallel options used across experiments
// (TTL fixed "2 seconds" in the paper; scaled here).
func parOpt(workers int) core.ParOptions {
	opt := core.DefaultParOptions(workers)
	opt.TTL = 20 * time.Millisecond
	return opt
}

// Fig5 reproduces the sequential-running-time table: SeqSat, SeqImp and
// ParImpRDF on the three datasets' GFDs.
func Fig5(cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Name:   "Fig5",
		Title:  "Sequential running time on real-life GFDs (ms)",
		Header: []string{"algorithm", "DBpedia", "YAGO2", "Pokec"},
	}
	rows := map[string][]string{"SeqSat": {"SeqSat"}, "SeqImp": {"SeqImp"}, "ParImpRDF": {"ParImpRDF"}}
	for _, p := range dataset.All() {
		set := datasetSet(cfg, p)
		impSet, phi := datasetImpInstance(cfg, p)
		rows["SeqSat"] = append(rows["SeqSat"], ms(medianTime(cfg.Reps, func() { core.SeqSat(set) })))
		rows["SeqImp"] = append(rows["SeqImp"], ms(medianTime(cfg.Reps, func() { core.SeqImp(impSet, phi) })))
		rows["ParImpRDF"] = append(rows["ParImpRDF"], ms(medianTime(cfg.Reps, func() { rdfchase.Implies(impSet, phi) })))
	}
	r.Rows = [][]string{rows["SeqSat"], rows["SeqImp"], rows["ParImpRDF"]}
	r.Notes = append(r.Notes,
		fmt.Sprintf("|Σ| = %d/%d/%d (paper: 8000/6000/10000, scale %.3f)",
			cfg.scaled(8000), cfg.scaled(6000), cfg.scaled(10000), cfg.Scale),
		"paper shape: SeqImp beats ParImpRDF by ~1.4-1.5x on all datasets")
	return r
}

// workersSweep is the p axis of Exp-1 (Figures 6(a)-(d)).
var workersSweep = []int{4, 8, 12, 16, 20}

// varyPSat reproduces Fig 6(a)/(b): ParSat and its np/nb ablations vs p.
// The vary-p figures double the workload scale: parallel speedup needs
// enough matching work per worker to amortize coordination.
func varyPSat(cfg Config, name string, prof *dataset.Profile) *Report {
	cfg = cfg.withDefaults()
	cfg.Scale *= 2
	set := datasetSet(cfg, prof)
	r := &Report{
		Name:   name,
		Title:  fmt.Sprintf("Varying p, satisfiability, %s GFDs (ms)", prof.Name),
		Header: []string{"p", "ParSat", "ParSat_np", "ParSat_nb"},
	}
	for _, p := range workersSweep {
		full := parOpt(p)
		np := full
		np.Pipeline = false
		nb := full
		nb.Splitting = false
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(p),
			ms(medianTime(cfg.Reps, func() { core.ParSat(set, full) })),
			ms(medianTime(cfg.Reps, func() { core.ParSat(set, np) })),
			ms(medianTime(cfg.Reps, func() { core.ParSat(set, nb) })),
		})
	}
	r.Notes = append(r.Notes, "paper shape: ParSat ~3.2-3.7x faster from p=4 to 20; full beats np and nb")
	return r
}

// Fig6a is ParSat vs p on DBpedia GFDs.
func Fig6a(cfg Config) *Report { return varyPSat(cfg, "Fig6a", dataset.DBpedia()) }

// Fig6b is ParSat vs p on YAGO2 GFDs.
func Fig6b(cfg Config) *Report { return varyPSat(cfg, "Fig6b", dataset.YAGO2()) }

// varyPImp reproduces Fig 6(c)/(d): ParImp and ablations vs p.
func varyPImp(cfg Config, name string, prof *dataset.Profile) *Report {
	cfg = cfg.withDefaults()
	// Implication runs on the small canonical graph G^X_Q, so matching
	// work per GFD is modest; a larger |Σ| gives the workers enough to do.
	cfg.Scale *= 6
	set, phi := datasetImpInstance(cfg, prof)
	r := &Report{
		Name:   name,
		Title:  fmt.Sprintf("Varying p, implication, %s GFDs (ms)", prof.Name),
		Header: []string{"p", "ParImp", "ParImp_np", "ParImp_nb"},
	}
	for _, p := range workersSweep {
		full := parOpt(p)
		np := full
		np.Pipeline = false
		nb := full
		nb.Splitting = false
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(p),
			ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, full) })),
			ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, np) })),
			ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, nb) })),
		})
	}
	r.Notes = append(r.Notes, "paper shape: ParImp ~3-3.1x faster from p=4 to 20")
	return r
}

// Fig6c is ParImp vs p on DBpedia GFDs.
func Fig6c(cfg Config) *Report { return varyPImp(cfg, "Fig6c", dataset.DBpedia()) }

// Fig6d is ParImp vs p on YAGO2 GFDs.
func Fig6d(cfg Config) *Report { return varyPImp(cfg, "Fig6d", dataset.YAGO2()) }

// sigmaSweep is the |Σ| axis of Exp-2 at paper scale.
var sigmaSweep = []int{2000, 4000, 6000, 8000, 10000}

// Fig6e reproduces Exp-2 satisfiability: synthetic GFDs, k=6, l=5, p=4,
// |Σ| from 2000 to 10000 (scaled).
func Fig6e(cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Name:   "Fig6e",
		Title:  "Varying |Σ|, satisfiability, synthetic GFDs (ms)",
		Header: []string{"|Σ|", "SeqSat", "ParSat", "ParSat_np", "ParSat_nb"},
	}
	for _, n := range sigmaSweep {
		g := gen.New(gen.Config{N: cfg.scaled(n), K: 6, L: 5, Seed: cfg.Seed})
		set := g.Set()
		full := parOpt(4)
		np := full
		np.Pipeline = false
		nb := full
		nb.Splitting = false
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(cfg.scaled(n)),
			ms(medianTime(cfg.Reps, func() { core.SeqSat(set) })),
			ms(medianTime(cfg.Reps, func() { core.ParSat(set, full) })),
			ms(medianTime(cfg.Reps, func() { core.ParSat(set, np) })),
			ms(medianTime(cfg.Reps, func() { core.ParSat(set, nb) })),
		})
	}
	r.Notes = append(r.Notes, "paper shape: all grow with |Σ|; ParSat ~3.1x faster than SeqSat at p=4")
	return r
}

// Fig6f reproduces Exp-2 implication, including the ParImpRDF baseline.
func Fig6f(cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Name:   "Fig6f",
		Title:  "Varying |Σ|, implication, synthetic GFDs (ms)",
		Header: []string{"|Σ|", "SeqImp", "ParImp", "ParImp_np", "ParImp_nb", "ParImpRDF"},
	}
	for _, n := range sigmaSweep {
		g := gen.New(gen.Config{N: cfg.scaled(n), K: 6, L: 5, WildcardRate: 0.4, Seed: cfg.Seed})
		set, phi := g.ImpInstance(6)
		full := parOpt(4)
		np := full
		np.Pipeline = false
		nb := full
		nb.Splitting = false
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(cfg.scaled(n)),
			ms(medianTime(cfg.Reps, func() { core.SeqImp(set, phi) })),
			ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, full) })),
			ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, np) })),
			ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, nb) })),
			ms(medianTime(cfg.Reps, func() { rdfchase.Implies(set, phi) })),
		})
	}
	r.Notes = append(r.Notes, "paper shape: ParImp ~3.1x faster than SeqImp and ~4.8x than ParImpRDF")
	return r
}

// kSweep is the pattern-size axis of Exp-3.
var kSweep = []int{2, 4, 6, 8, 10}

// varyK runs Exp-3(1) for satisfiability or implication.
func varyK(cfg Config, name string, imp bool) *Report {
	cfg = cfg.withDefaults()
	mode := "satisfiability"
	if imp {
		mode = "implication"
	}
	r := &Report{
		Name:   name,
		Title:  fmt.Sprintf("Varying k (pattern size), %s, DBpedia seeds (ms)", mode),
		Header: []string{"k", "Seq", "Par", "Par_np", "Par_nb"},
	}
	n := cfg.scaled(5000)
	for _, k := range kSweep {
		g := gen.New(gen.Config{N: n, K: k, L: 3, Profile: dataset.DBpedia(), Seed: cfg.Seed})
		var (
			set *gfd.Set
			phi *gfd.GFD
		)
		if imp {
			set, phi = g.ImpInstance(6)
		} else {
			set = g.Set()
		}
		full := parOpt(4)
		np := full
		np.Pipeline = false
		nb := full
		nb.Splitting = false
		row := []string{fmt.Sprint(k)}
		if imp {
			row = append(row,
				ms(medianTime(cfg.Reps, func() { core.SeqImp(set, phi) })),
				ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, full) })),
				ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, np) })),
				ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, nb) })))
		} else {
			row = append(row,
				ms(medianTime(cfg.Reps, func() { core.SeqSat(set) })),
				ms(medianTime(cfg.Reps, func() { core.ParSat(set, full) })),
				ms(medianTime(cfg.Reps, func() { core.ParSat(set, np) })),
				ms(medianTime(cfg.Reps, func() { core.ParSat(set, nb) })))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes, "paper shape: cost grows with k; optimizations matter more at large k")
	return r
}

// Fig6g is Exp-3 varying k for satisfiability.
func Fig6g(cfg Config) *Report { return varyK(cfg, "Fig6g", false) }

// Fig6i is Exp-3 varying k for implication.
func Fig6i(cfg Config) *Report { return varyK(cfg, "Fig6i", true) }

// lSweep is the literal-count axis of Exp-3.
var lSweep = []int{1, 2, 3, 4, 5}

// varyL runs Exp-3(2).
func varyL(cfg Config, name string, imp bool) *Report {
	cfg = cfg.withDefaults()
	mode := "satisfiability"
	if imp {
		mode = "implication"
	}
	r := &Report{
		Name:   name,
		Title:  fmt.Sprintf("Varying l (literals), %s, DBpedia seeds (ms)", mode),
		Header: []string{"l", "Seq", "Par", "Par_np", "Par_nb"},
	}
	n := cfg.scaled(5000)
	for _, l := range lSweep {
		g := gen.New(gen.Config{N: n, K: 5, L: l, Profile: dataset.DBpedia(), Seed: cfg.Seed})
		var (
			set *gfd.Set
			phi *gfd.GFD
		)
		if imp {
			set, phi = g.ImpInstance(6)
		} else {
			set = g.Set()
		}
		full := parOpt(4)
		np := full
		np.Pipeline = false
		nb := full
		nb.Splitting = false
		row := []string{fmt.Sprint(l)}
		if imp {
			row = append(row,
				ms(medianTime(cfg.Reps, func() { core.SeqImp(set, phi) })),
				ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, full) })),
				ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, np) })),
				ms(medianTime(cfg.Reps, func() { core.ParImp(set, phi, nb) })))
		} else {
			row = append(row,
				ms(medianTime(cfg.Reps, func() { core.SeqSat(set) })),
				ms(medianTime(cfg.Reps, func() { core.ParSat(set, full) })),
				ms(medianTime(cfg.Reps, func() { core.ParSat(set, np) })),
				ms(medianTime(cfg.Reps, func() { core.ParSat(set, nb) })))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes, "paper shape: roughly flat in l (more literals cost more but also terminate earlier)")
	return r
}

// Fig6h is Exp-3 varying l for satisfiability.
func Fig6h(cfg Config) *Report { return varyL(cfg, "Fig6h", false) }

// Fig6j is Exp-3 varying l for implication.
func Fig6j(cfg Config) *Report { return varyL(cfg, "Fig6j", true) }

// ttlSweep maps the paper's 0.1s–8s TTL axis onto scaled microseconds:
// the paper's work units take seconds on billion-edge graphs, ours take
// microseconds on canonical graphs, so the interesting splitting regime
// sits three orders of magnitude lower.
var ttlSweep = []time.Duration{
	50 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	4 * time.Millisecond,
}

// varyTTL runs Exp-4.
func varyTTL(cfg Config, name string, imp bool) *Report {
	cfg = cfg.withDefaults()
	mode := "satisfiability"
	if imp {
		mode = "implication"
	}
	r := &Report{
		Name:   name,
		Title:  fmt.Sprintf("Varying TTL, %s, DBpedia GFDs (ms)", mode),
		Header: []string{"TTL(ms)", "Par", "Par_np", "splits"},
	}
	g := gen.New(gen.Config{N: cfg.scaled(5000), K: 6, L: 3, Profile: dataset.DBpedia(), Seed: cfg.Seed})
	var (
		set *gfd.Set
		phi *gfd.GFD
	)
	if imp {
		set, phi = g.ImpInstance(6)
	} else {
		set = g.Set()
	}
	for _, ttl := range ttlSweep {
		full := parOpt(4)
		full.TTL = ttl
		np := full
		np.Pipeline = false
		var splits int
		var tFull, tNp time.Duration
		if imp {
			tFull = medianTime(cfg.Reps, func() { splits = core.ParImp(set, phi, full).Stats.UnitsSplit })
			tNp = medianTime(cfg.Reps, func() { core.ParImp(set, phi, np) })
		} else {
			tFull = medianTime(cfg.Reps, func() { splits = core.ParSat(set, full).Stats.UnitsSplit })
			tNp = medianTime(cfg.Reps, func() { core.ParSat(set, np) })
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.2f", float64(ttl.Microseconds())/1000),
			ms(tFull), ms(tNp), fmt.Sprint(splits),
		})
	}
	r.Notes = append(r.Notes,
		"paper axis 0.1s-8s mapped to 0.05ms-4ms (unit costs scale with workload)",
		"paper shape: interior optimum (TTL=2s); too small splits too much, too large leaves stragglers")
	return r
}

// Fig6k is Exp-4 varying TTL for satisfiability.
func Fig6k(cfg Config) *Report { return varyTTL(cfg, "Fig6k", false) }

// Fig6l is Exp-4 varying TTL for implication.
func Fig6l(cfg Config) *Report { return varyTTL(cfg, "Fig6l", true) }

// MatchIndex measures the matching hot path across the three modes —
// frozen CSR snapshot, mutable indexed graph, and the pre-index scan mode
// (match.Options.Scan) — across edge densities: DenseGraph data graphs
// plus the generator-schema triangle patterns whose closing edge rejects
// most partial assignments. This is the repo's own experiment (not a paper
// figure) validating the two-representation storage layer; the root
// BenchmarkMatchIndexed/Frozen/Scan triple measures the same workload
// under `go test -bench`.
func MatchIndex(cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Name:   "MatchIndex",
		Title:  "Frozen vs indexed vs scan-mode pattern matching, label-dense graphs (ms)",
		Header: []string{"degree", "frozen", "indexed", "scan", "scan/idx", "idx/frz"},
	}
	for _, deg := range []int{16, 32, 64} {
		gr := gen.New(gen.Config{N: 40, K: 6, L: 2, Profile: dataset.DBpedia(), WildcardRate: 0.2, Seed: cfg.Seed})
		g := gr.DenseGraph(cfg.scaled(40000), deg)
		f := g.Frozen()
		ps := gen.SchemaTriangles(gr.Schema(), 12)
		if len(ps) == 0 {
			// A schema without triangles (possible for unusual seeds) would
			// time empty loops and report a vacuous speedup; say so instead.
			r.Rows = append(r.Rows, []string{fmt.Sprint(deg), "-", "-", "-", "-", "no triangles"})
			continue
		}
		run := func(data graph.Reader, scan bool) time.Duration {
			return medianTime(cfg.Reps, func() {
				for _, p := range ps {
					s := match.NewSearch(p, data, match.Options{Scan: scan})
					s.CountAll()
				}
			})
		}
		frozen, indexed, scan := run(f, false), run(g, false), run(g, true)
		ratio := func(a, b time.Duration) string {
			if b == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1fx", float64(a)/float64(b))
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(deg), ms(frozen), ms(indexed), ms(scan),
			ratio(scan, indexed), ratio(indexed, frozen),
		})
	}
	r.Notes = append(r.Notes,
		"scan = pre-index path: raw Out/In filtering, linear HasEdge, no signature pruning",
		"frozen = the same search on the CSR snapshot (Builder.Freeze of the same graph)",
		"full enumeration (no cap): all modes explore the identical search tree")
	return r
}

// Sharded is the repo's own sharded-execution experiment (not a paper
// figure): the per-shard match fan-out against the flat single-threaded
// enumeration across shard counts on the label-dense workload, and the
// work-stealing executor against the central-queue coordinator across
// worker counts on the shared parallel-reasoning workload. On a single
// core the ratios hover around 1 (the gate's conservative floors assume as
// much); on a multi-core box they report the parallel speedup.
func Sharded(cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Name:   "Sharded",
		Title:  "Sharded fan-out matching and work-stealing execution",
		Header: []string{"axis", "flat/central", "sharded/steal", "speedup", "stolen"},
	}
	ratio := func(a, b time.Duration) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(a)/float64(b))
	}
	g, ps, err := MatchWorkload(cfg.Seed)
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("match workload unavailable: %v", err))
	} else {
		f := g.Frozen()
		flat := medianTime(cfg.Reps, func() {
			for _, p := range ps {
				match.NewSearch(p, f, match.Options{}).CountAll()
			}
		})
		for _, k := range []int{2, 4, 8, 16} {
			sh := f.Sharded(k)
			fan := medianTime(cfg.Reps, func() {
				for _, p := range ps {
					match.CountSharded(p, sh, k, match.Options{})
				}
			})
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("match K=%d", k), ms(flat), ms(fan), ratio(flat, fan), "-",
			})
		}
	}
	set, popt := ParWorkload(cfg.Seed)
	for _, p := range []int{4, 8, 16} {
		steal := popt
		steal.Workers = p
		central := steal
		central.Stealing = false
		// The scheduling ablation is only interpretable next to how much
		// stealing actually happened: capture the last run's unit stats so
		// the steal rate prints beside the timing.
		var stats core.Stats
		tSteal := medianTime(cfg.Reps, func() { stats = core.ParSat(set, steal).Stats })
		tCentral := medianTime(cfg.Reps, func() { core.ParSat(set, central) })
		stolen := "-"
		if stats.UnitsRun > 0 {
			stolen = fmt.Sprintf("%d/%d (%.0f%%)", stats.UnitsStolen, stats.UnitsRun,
				100*float64(stats.UnitsStolen)/float64(stats.UnitsRun))
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("parsat p=%d", p), ms(tCentral), ms(tSteal), ratio(tCentral, tSteal), stolen,
		})
	}
	r.Notes = append(r.Notes,
		"match rows: flat = single-threaded frozen enumeration; sharded = per-shard root fan-out, workers=K",
		"parsat rows: central = single-global-queue coordinator; steal = per-worker deques + work stealing",
		"stolen: units taken from a peer deque / units run, from the last stealing rep")
	return r
}

// Incremental is the repo's own snapshot-lifecycle experiment (not a paper
// figure): Frozen.Refreeze against a from-scratch rebuild across delta
// sizes on the 100k-edge ingest base, and incremental revalidation against
// full re-validation across update-stream sizes on the triangle validation
// workload. The 1%-delta refreeze row and the revalidation row are the
// same workloads the CI gate's refreeze_speedup / incr_validate_speedup
// ratios are measured on.
func Incremental(cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Name:   "Incremental",
		Title:  "Delta refreeze vs rebuild, incremental vs full revalidation",
		Header: []string{"axis", "full", "incremental", "speedup", "scope"},
	}
	ratio := func(a, b time.Duration) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(a)/float64(b))
	}
	base, mkDelta, ffrom, fto, flab := RefreezeWorkload(cfg.Seed)
	rebuild := medianTime(cfg.Reps, func() { IngestFrozen(ffrom, fto, flab) })
	d := mkDelta()
	d.Overlay()
	refreeze := medianTime(cfg.Reps, func() { base.Refreeze(d) })
	r.Rows = append(r.Rows, []string{
		fmt.Sprintf("refreeze %dk edges, 1%% delta", IngestEdges/1000),
		ms(rebuild), ms(refreeze), ratio(rebuild, refreeze),
		fmt.Sprintf("%d touched", len(d.TouchedNodes())),
	})

	set, vbase, vdelta, err := ValidateWorkload(cfg.Seed)
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("validation workload unavailable: %v", err))
		return r
	}
	prev := core.Violations(vbase, set)
	overlay := vdelta.Overlay()
	full := medianTime(cfg.Reps, func() { core.Violations(overlay, set) })
	var stats core.RevalidateStats
	incr := medianTime(cfg.Reps, func() {
		_, stats, _ = core.RevalidateDelta(set, vdelta, prev, core.RevalidateOptions{})
	})
	incrPar := medianTime(cfg.Reps, func() {
		core.RevalidateDelta(set, vdelta, prev, core.RevalidateOptions{Workers: CIShardWorkers})
	})
	r.Rows = append(r.Rows, []string{
		"revalidate (sequential)", ms(full), ms(incr), ratio(full, incr),
		fmt.Sprintf("%d re-enum, %d kept", stats.Reenumerated, stats.Kept),
	})
	r.Rows = append(r.Rows, []string{
		fmt.Sprintf("revalidate (p=%d steal)", CIShardWorkers), ms(full), ms(incrPar), ratio(full, incrPar), "-",
	})
	r.Notes = append(r.Notes,
		"refreeze row: rebuild = Builder.Freeze of the final state from raw arrays; incremental = Frozen.Refreeze of the delta",
		"revalidate rows: full = core.Violations over the overlay; incremental = core.Revalidate scoped to the delta's touched neighborhood")
	return r
}

// Adaptive reports the two comparisons the adaptive matching layer claims,
// at report scale: the kernel picker (gallop/bitset/merge per frame) against
// the merge-only ablation on the skewed hub triangle, and the warm
// compiled-plan cache against per-query planning on the repeated-query
// workload. The CI gate tracks the same two ratios (match_adaptive_speedup,
// plan_cache_speedup) on the same workloads.
func Adaptive(cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Name:   "Adaptive",
		Title:  "adaptive intersection kernels and compiled plan cache",
		Header: []string{"comparison", "baseline ms", "adaptive ms", "speedup", "matches"},
	}
	ratio := func(a, b time.Duration) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(a)/float64(b))
	}
	reps := 4*cfg.Reps + 3

	af, ap := AdaptiveWorkload(cfg.Seed)
	count := match.NewSearch(ap, af, match.Options{}).CountAll()
	adaptiveT := minTime(reps, func() { match.NewSearch(ap, af, match.Options{}).CountAll() })
	mergeT := minTime(cfg.Reps, func() { match.NewSearch(ap, af, match.Options{MergeOnly: true}).CountAll() })
	r.Rows = append(r.Rows, []string{
		"kernels (merge-only vs adaptive)", ms(mergeT), ms(adaptiveT), ratio(mergeT, adaptiveT),
		fmt.Sprintf("%d", count),
	})

	pf, pps, err := PlanWorkload(cfg.Seed)
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("plan row skipped: %v", err))
		return r
	}
	cache := match.NewPlanCache()
	planCount := PlanQueries(pf, pps, cache) // warms the cache
	coldT := minTime(cfg.Reps, func() { PlanQueries(pf, pps, nil) })
	warmT := minTime(reps, func() { PlanQueries(pf, pps, cache) })
	r.Rows = append(r.Rows, []string{
		fmt.Sprintf("plans (cold vs warm cache, %d queries)", len(pps)), ms(coldT), ms(warmT), ratio(coldT, warmT),
		fmt.Sprintf("%d", planCount),
	})
	r.Notes = append(r.Notes,
		"kernels row: same triangle enumeration with the gallop/bitset paths disabled vs the per-frame picker",
		"plans row: per-query planning vs PlanCache.Get per query against a warm cache (probe cost included)")
	return r
}

// MultiGFD is the repo's own shared-evaluation experiment (not a paper
// figure): grouped multi-GFD validation — each distinct pattern structure
// enumerated once, literal checks fanned out per member through the
// compiled evaluator — against the per-GFD ablation, on the shared
// validation workload (~8 GFDs per schema triangle, half of them rebuilt
// structurally equal pattern values). Times ride with allocation counts:
// the grouped path's steady state interns attribute keys into scratch
// slots instead of re-walking attribute maps per GFD. The CI gate tracks
// the same ratio (multi_gfd_speedup) on the same workload.
func MultiGFD(cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Name:   "MultiGFD",
		Title:  "shared multi-GFD evaluation vs the per-GFD ablation",
		Header: []string{"comparison", "per-GFD", "grouped", "speedup", "sharing"},
	}
	ratio := func(a, b time.Duration) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(a)/float64(b))
	}
	set, f, err := MultiGFDWorkload(cfg.Seed)
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("workload unavailable: %v", err))
		return r
	}
	bg := context.Background()
	_, st, verr := core.ViolationsOpts(bg, f, set, core.VerifyOptions{})
	if verr != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("validation failed: %v", verr))
		return r
	}
	reps := 4*cfg.Reps + 3
	perT := minTime(cfg.Reps, func() { core.ViolationsOpts(bg, f, set, core.VerifyOptions{PerGFD: true}) })
	grpT := minTime(reps, func() { core.ViolationsOpts(bg, f, set, core.VerifyOptions{}) })
	r.Rows = append(r.Rows, []string{
		fmt.Sprintf("violations (%d GFDs)", set.Len()), ms(perT), ms(grpT), ratio(perT, grpT),
		fmt.Sprintf("%d groups, %d shared, %d reused", st.Groups, st.SharedGFDs, st.MatchesReused),
	})
	perA := allocsPerOp(cfg.Reps, func() { core.ViolationsOpts(bg, f, set, core.VerifyOptions{PerGFD: true}) })
	grpA := allocsPerOp(cfg.Reps, func() { core.ViolationsOpts(bg, f, set, core.VerifyOptions{}) })
	r.Rows = append(r.Rows, []string{
		"allocs/op", fmt.Sprintf("%.0f", perA), fmt.Sprintf("%.0f", grpA),
		func() string {
			if grpA == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1fx", perA/grpA)
		}(), "-",
	})
	r.Notes = append(r.Notes,
		"grouped = ViolationsOpts default: one enumeration per pattern structure, compiled literal fan-out",
		"per-GFD = VerifyOptions.PerGFD ablation: every GFD enumerated independently",
		"both paths return identical violation lists (checked by the CI gate and the equivalence tests)")
	return r
}

// All runs every experiment in paper order, then the repo's own index,
// sharding, adaptive-kernel, incremental and persistence experiments.
func All(cfg Config) []*Report {
	return []*Report{
		Fig5(cfg),
		Fig6a(cfg), Fig6b(cfg), Fig6c(cfg), Fig6d(cfg),
		Fig6e(cfg), Fig6f(cfg),
		Fig6g(cfg), Fig6h(cfg), Fig6i(cfg), Fig6j(cfg),
		Fig6k(cfg), Fig6l(cfg),
		MatchIndex(cfg),
		Sharded(cfg),
		Adaptive(cfg),
		MultiGFD(cfg),
		Incremental(cfg),
		Persist(cfg),
	}
}

// experiments is the runner registry; ByName lookups and the Names listing
// that cmd/benchall prints for an unknown -only value both read it.
var experiments = map[string]func(Config) *Report{
	"fig5": Fig5, "fig6a": Fig6a, "fig6b": Fig6b, "fig6c": Fig6c,
	"fig6d": Fig6d, "fig6e": Fig6e, "fig6f": Fig6f, "fig6g": Fig6g,
	"fig6h": Fig6h, "fig6i": Fig6i, "fig6j": Fig6j, "fig6k": Fig6k,
	"fig6l": Fig6l, "matchindex": MatchIndex, "sharded": Sharded,
	"adaptive": Adaptive, "multigfd": MultiGFD, "incremental": Incremental,
	"persist": Persist,
}

// ByName returns the named experiment runner (case-insensitive), or nil.
func ByName(name string) func(Config) *Report {
	return experiments[strings.ToLower(name)]
}

// Names returns every registered experiment name, sorted, for -only
// validation messages and usage text.
func Names() []string {
	out := make([]string, 0, len(experiments))
	for n := range experiments {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
