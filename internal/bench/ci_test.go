package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func ciReport(vals map[string]float64) *CIReport {
	r := &CIReport{}
	for name, v := range vals {
		r.Metrics = append(r.Metrics, Metric{Name: name, Value: v, HigherIsBetter: true})
	}
	return r
}

func TestCompareCIWithinTolerance(t *testing.T) {
	base := ciReport(map[string]float64{"speedup": 4.0})
	cur := ciReport(map[string]float64{"speedup": 3.2}) // exactly at the 20% floor for tol=0.2
	if vs := CompareCI(base, cur, 0.2); len(vs) != 0 {
		t.Fatalf("value at the floor should pass, got %v", vs)
	}
	cur = ciReport(map[string]float64{"speedup": 3.19})
	if vs := CompareCI(base, cur, 0.2); len(vs) != 1 {
		t.Fatalf("value below the floor should fail, got %v", vs)
	}
}

// TestCompareCIReportsAllRegressions pins the full-picture contract: a run
// that regresses several gating metrics must surface every one of them in
// a single failure (no bailing on the first), so one CI run shows the
// whole damage.
func TestCompareCIReportsAllRegressions(t *testing.T) {
	base := ciReport(map[string]float64{"r1": 4.0, "r2": 2.0, "r3": 1.5})
	cur := ciReport(map[string]float64{"r1": 1.0, "r2": 0.5, "r3": 1.45}) // r1, r2 regress; r3 within tolerance
	vs := CompareCI(base, cur, 0.25)
	if len(vs) != 2 {
		t.Fatalf("want both regressions reported, got %v", vs)
	}
	err := ViolationError("BENCH_baseline.json", vs)
	if err == nil {
		t.Fatal("ViolationError must be non-nil for violations")
	}
	for _, name := range []string{"r1", "r2"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("aggregated failure message misses %s: %q", name, err)
		}
	}
	if strings.Contains(err.Error(), "r3") {
		t.Errorf("aggregated failure message flags the non-regressed r3: %q", err)
	}
	if ViolationError("b", nil) != nil {
		t.Fatal("ViolationError of no violations must be nil")
	}
}

func TestCompareCIDirections(t *testing.T) {
	base := &CIReport{Metrics: []Metric{
		{Name: "ratio", Value: 2.0, HigherIsBetter: true},
		{Name: "latency", Value: 100, HigherIsBetter: false},
	}}
	cur := &CIReport{Metrics: []Metric{
		{Name: "ratio", Value: 2.5},   // improved
		{Name: "latency", Value: 130}, // 30% slower
	}}
	vs := CompareCI(base, cur, 0.25)
	if len(vs) != 1 || !strings.Contains(vs[0], "latency") {
		t.Fatalf("only the latency regression should fire, got %v", vs)
	}
}

func TestCompareCIMissingAndExtra(t *testing.T) {
	base := &CIReport{Metrics: []Metric{
		{Name: "gone", Value: 1, HigherIsBetter: true},
		{Name: "note", Value: 9, Informational: true},
	}}
	cur := &CIReport{Metrics: []Metric{
		{Name: "brand-new", Value: 7, HigherIsBetter: true},
	}}
	vs := CompareCI(base, cur, 0.25)
	if len(vs) != 1 || !strings.Contains(vs[0], "gone") {
		t.Fatalf("want exactly the missing gating metric, got %v", vs)
	}
}

func TestCIReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ci.json")
	want := &CIReport{Metrics: []Metric{
		{Name: "a", Value: 1.25, Unit: "x", HigherIsBetter: true},
		{Name: "b_ms", Value: 17.5, Unit: "ms", Informational: true},
	}}
	if err := WriteCIReport(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCIReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Metrics) != len(want.Metrics) {
		t.Fatalf("round trip lost metrics: %+v", got)
	}
	for i, m := range want.Metrics {
		if got.Metrics[i] != m {
			t.Fatalf("metric %d round-tripped as %+v, want %+v", i, got.Metrics[i], m)
		}
	}
	// A fresh report compared against itself is never a regression.
	if vs := CompareCI(got, got, 0); len(vs) != 0 {
		t.Fatalf("self-comparison flagged %v", vs)
	}
}

// TestRunCISmoke runs the real metric suite at a single rep and checks the
// invariants the CI gate depends on: all gating metrics present and
// positive.
func TestRunCISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite in -short mode")
	}
	r, err := RunCI(Config{Reps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"freeze_ingest_speedup", "match_indexed_speedup", "match_frozen_gain",
		"match_sharded_speedup", "match_adaptive_speedup", "plan_cache_speedup",
		"parsat_steal_speedup",
		"refreeze_speedup", "incr_validate_speedup",
	} {
		m, ok := r.Get(name)
		if !ok {
			t.Fatalf("gating metric %s missing", name)
		}
		if m.Informational || !m.HigherIsBetter {
			t.Fatalf("gating metric %s mis-declared: %+v", name, m)
		}
		if m.Value <= 0 {
			t.Fatalf("gating metric %s not positive: %v", name, m.Value)
		}
	}
	if out := r.Format(); !strings.Contains(out, "freeze_ingest_speedup") {
		t.Fatalf("Format omits metrics:\n%s", out)
	}
}
