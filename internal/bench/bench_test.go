package bench

import (
	"strings"
	"testing"
)

func micro() Config { return Config{Scale: 0.003, Reps: 1, Seed: 2} }

func TestReportFormatAligned(t *testing.T) {
	r := &Report{
		Name:   "X",
		Title:  "t",
		Header: []string{"a", "longcol"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := r.Format()
	for _, want := range []string{"== X: t ==", "longcol", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 2 rows + note
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fig5", "Fig6a", "FIG6L", "adaptive"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("fig7") != nil {
		t.Error("unknown name resolved")
	}
}

// TestNames pins the contract the benchall -only error message relies on:
// every registered name is listed, sorted, and resolvable back through
// ByName.
func TestNames(t *testing.T) {
	names := Names()
	if len(names) != len(experiments) {
		t.Fatalf("Names() lists %d experiments, registry has %d", len(names), len(experiments))
	}
	for i, n := range names {
		if ByName(n) == nil {
			t.Errorf("Names() entry %q does not resolve", n)
		}
		if i > 0 && names[i-1] >= n {
			t.Errorf("Names() not sorted: %q before %q", names[i-1], n)
		}
	}
}

// TestAdaptiveReportAtMicroScale smoke-runs the adaptive experiment: both
// comparison rows present, nonzero match counts on the kernels row.
func TestAdaptiveReportAtMicroScale(t *testing.T) {
	r := Adaptive(micro())
	if len(r.Rows) != 2 {
		t.Fatalf("Adaptive rows = %d, want kernels + plans:\n%s", len(r.Rows), r.Format())
	}
	if r.Rows[0][4] == "0" {
		t.Fatalf("kernels row found no matches:\n%s", r.Format())
	}
}

func TestFig5RunsAtMicroScale(t *testing.T) {
	r := Fig5(micro())
	if len(r.Rows) != 3 {
		t.Fatalf("Fig5 rows = %d, want 3 algorithms", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != 4 {
			t.Fatalf("row %v should have algorithm + 3 datasets", row)
		}
	}
}

func TestTTLSweepRunsAtMicroScale(t *testing.T) {
	r := Fig6k(micro())
	if len(r.Rows) != len(ttlSweep) {
		t.Fatalf("Fig6k rows = %d, want %d", len(r.Rows), len(ttlSweep))
	}
}

func TestScaledFloor(t *testing.T) {
	c := Config{Scale: 0.0001}.withDefaults()
	if got := c.scaled(8000); got != 20 {
		t.Errorf("scaled floor = %d, want 20", got)
	}
}
