// Persistence benchmarks: snapshot save/load against rebuild-from-edges,
// WAL append/recover throughput, and the compaction win on tombstone-heavy
// bases. Shared — same workloads, same measurement shape — by the Persist
// report (benchall -only persist), the CI gate's persist metrics, and the
// root BenchmarkSnapshot*/BenchmarkCompact* functions.
package bench

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// CompactDeadFraction is the tombstone share of the canonical compaction
// workload: well past the default refreeze threshold, matching the
// "30%-dead base" the compact_refreeze_speedup gate is defined on.
const CompactDeadFraction = 0.3

// SnapshotImage serializes a snapshot to memory, the save half of the
// snapshot metrics.
func SnapshotImage(f *graph.Frozen) ([]byte, error) {
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// edgeChurn is one prepared update batch: removals of existing edges and
// additions of absent ones, expressed against a specific base's IDs.
type edgeChurn struct {
	remFrom, remTo []graph.NodeID
	remLab         []string
	addFrom, addTo []graph.NodeID
	addLab         []string
}

func (c *edgeChurn) apply(d *graph.Delta) {
	for i := range c.remFrom {
		d.RemoveEdge(c.remFrom[i], c.remTo[i], c.remLab[i])
	}
	for i := range c.addFrom {
		d.AddEdge(c.addFrom[i], c.addTo[i], c.addLab[i])
	}
}

// remapped translates the batch through a compaction remap.
func (c *edgeChurn) remapped(m graph.Remap) *edgeChurn {
	r := &edgeChurn{
		remFrom: make([]graph.NodeID, len(c.remFrom)),
		remTo:   make([]graph.NodeID, len(c.remTo)),
		remLab:  c.remLab,
		addFrom: make([]graph.NodeID, len(c.addFrom)),
		addTo:   make([]graph.NodeID, len(c.addTo)),
		addLab:  c.addLab,
	}
	for i := range c.remFrom {
		r.remFrom[i], r.remTo[i] = m.Of(c.remFrom[i]), m.Of(c.remTo[i])
	}
	for i := range c.addFrom {
		r.addFrom[i], r.addTo[i] = m.Of(c.addFrom[i]), m.Of(c.addTo[i])
	}
	return r
}

// CompactWorkload derives the canonical compaction comparison from the
// hub-heavy ingest base: the base refrozen with CompactDeadFraction of its
// nodes tombstoned, its compacted equivalent with the remap, and matching
// delta-makers producing the same 1%-scale edge churn against each (the
// compacted side translated through the remap), so Refreeze on the two
// bases merges identical updates and the timing difference isolates the
// tombstone tax.
func CompactWorkload(seed int64) (deadBase, compacted *graph.Frozen, remap graph.Remap, mkDead, mkCompact func() *graph.Delta, err error) {
	from, to, lab := HubHeavyIngest(seed)
	base := IngestFrozen(from, to, lab)
	rng := rand.New(rand.NewSource(seed + 2))

	kill := make(map[graph.NodeID]bool, IngestNodes*3/10)
	for len(kill) < int(float64(IngestNodes)*CompactDeadFraction) {
		kill[graph.NodeID(rng.Intn(IngestNodes))] = true
	}
	d := graph.NewDelta(base)
	for v := range kill {
		d.RemoveNode(v)
	}
	deadBase = base.Refreeze(d)
	if got := deadBase.DeadFraction(); got < CompactDeadFraction*0.99 {
		return nil, nil, nil, nil, nil, fmt.Errorf("dead base carries %.0f%% tombstones, want %.0f%%", got*100, CompactDeadFraction*100)
	}
	compacted, remap = deadBase.Compact()

	var live []graph.NodeID
	for v := 0; v < deadBase.NumNodes(); v++ {
		if deadBase.Alive(graph.NodeID(v)) {
			live = append(live, graph.NodeID(v))
		}
	}
	churn := &edgeChurn{}
	for tries := 0; len(churn.remFrom) < RefreezeOps/2 && tries < RefreezeOps*64; tries++ {
		v := live[rng.Intn(len(live))]
		es := deadBase.Out(v)
		if len(es) == 0 {
			continue
		}
		e := es[rng.Intn(len(es))]
		churn.remFrom = append(churn.remFrom, e.From)
		churn.remTo = append(churn.remTo, e.To)
		churn.remLab = append(churn.remLab, e.Label)
	}
	for len(churn.addFrom) < RefreezeOps-RefreezeOps/2 {
		u, v := live[rng.Intn(len(live))], live[rng.Intn(len(live))]
		l := lab[rng.Intn(len(lab))]
		if deadBase.HasEdge(u, v, l) {
			continue
		}
		churn.addFrom = append(churn.addFrom, u)
		churn.addTo = append(churn.addTo, v)
		churn.addLab = append(churn.addLab, l)
	}
	churnC := churn.remapped(remap)
	mkDead = func() *graph.Delta {
		nd := graph.NewDelta(deadBase)
		churn.apply(nd)
		return nd
	}
	mkCompact = func() *graph.Delta {
		nd := graph.NewDelta(compacted)
		churnC.apply(nd)
		return nd
	}
	return deadBase, compacted, remap, mkDead, mkCompact, nil
}

// WALWorkloadOps is the op count of the canonical WAL stream.
const WALWorkloadOps = 2000

// WALWorkload builds the canonical durable-ingest stream: a DBpedia-profiled
// snapshot as the base and an apply function that drives the same
// WALWorkloadOps-op sampled update stream into any graph.Mutator — a bare
// Delta for the in-memory baseline, a WAL for the append measurement (the
// persisted-fixture path dataset.SampleDeltaInto exists for).
func WALWorkload(seed int64) (base *graph.Frozen, apply func(graph.Mutator)) {
	prof := dataset.DBpedia()
	base = prof.SampleFrozen(dataset.GraphConfig{Nodes: 5000, EdgesPerNode: 4, Seed: seed})
	apply = func(m graph.Mutator) { prof.SampleDeltaInto(m, WALWorkloadOps, seed+1) }
	return base, apply
}

// Persist is the repo's persistence experiment (not a paper figure):
// snapshot save/load against the from-edges rebuild, WAL append and
// recovery over the sampled update stream, and the compaction win — both
// the one-off Compact cost and Refreeze on a 30%-dead base against its
// compacted equivalent. The load and compact-refreeze rows measure the same
// workloads the CI gate's snapshot_load_speedup / compact_refreeze_speedup
// ratios are pinned on.
func Persist(cfg Config) *Report {
	cfg = cfg.withDefaults()
	// The persistence paths run in single-digit milliseconds where one
	// descheduling dwarfs the measurement; all are single-threaded and
	// deterministic, so widen the min-of-N window (same rationale and width
	// as the CI gate's incremental metrics).
	shortReps := 4*cfg.Reps + 3
	r := &Report{
		Name:   "Persist",
		Title:  "Snapshot save/load, WAL recovery, tombstone compaction",
		Header: []string{"axis", "baseline", "persist", "speedup", "scope"},
	}
	ratio := func(a, b int64) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(a)/float64(b))
	}

	from, to, lab := HubHeavyIngest(cfg.Seed)
	base := IngestFrozen(from, to, lab)
	img, err := SnapshotImage(base)
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("snapshot workload unavailable: %v", err))
		return r
	}
	rebuild := minTime(cfg.Reps, func() { IngestFrozen(from, to, lab) })
	save := minTime(cfg.Reps, func() {
		if _, err := SnapshotImage(base); err != nil {
			panic(err)
		}
	})
	load := minTime(shortReps, func() {
		if _, err := graph.ReadSnapshot(bytes.NewReader(img)); err != nil {
			panic(err)
		}
	})
	r.Rows = append(r.Rows, []string{
		fmt.Sprintf("snapshot load %dk edges", IngestEdges/1000),
		ms(rebuild), ms(load), ratio(int64(rebuild), int64(load)),
		fmt.Sprintf("%.1f MB image", float64(len(img))/(1<<20)),
	})
	r.Rows = append(r.Rows, []string{"snapshot save", ms(rebuild), ms(save), ratio(int64(rebuild), int64(save)), "vs rebuild"})

	wbase, apply := WALWorkload(cfg.Seed)
	var log bytes.Buffer
	memT := minTime(cfg.Reps, func() { apply(graph.NewDelta(wbase)) })
	walT := minTime(cfg.Reps, func() {
		log.Reset()
		w := graph.NewWAL(&log, graph.NewDelta(wbase))
		apply(w)
		if err := w.Close(); err != nil {
			panic(err)
		}
	})
	var recovered int
	recT := minTime(shortReps, func() {
		_, stats, rerr := graph.Recover(wbase, bytes.NewReader(log.Bytes()))
		if rerr != nil {
			panic(rerr)
		}
		recovered = stats.Records
	})
	r.Rows = append(r.Rows, []string{
		fmt.Sprintf("wal append %d ops", WALWorkloadOps),
		ms(memT), ms(walT), ratio(int64(memT), int64(walT)),
		fmt.Sprintf("%d KB log", log.Len()/1024),
	})
	r.Rows = append(r.Rows, []string{
		"wal recover", ms(memT), ms(recT), ratio(int64(memT), int64(recT)),
		fmt.Sprintf("%d records", recovered),
	})

	deadBase, compacted, _, mkDead, mkCompact, err := CompactWorkload(cfg.Seed)
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("compaction workload unavailable: %v", err))
		return r
	}
	compactT := minTime(shortReps, func() { deadBase.Compact() })
	dDead, dComp := mkDead(), mkCompact()
	dDead.Overlay()
	dComp.Overlay()
	deadT := minTime(shortReps, func() { deadBase.Refreeze(dDead) })
	compT := minTime(shortReps, func() { compacted.Refreeze(dComp) })
	r.Rows = append(r.Rows, []string{
		fmt.Sprintf("compact %.0f%%-dead base", CompactDeadFraction*100),
		"-", ms(compactT), "-",
		fmt.Sprintf("%d slots dropped", deadBase.NumNodes()-compacted.NumNodes()),
	})
	r.Rows = append(r.Rows, []string{
		"refreeze on compacted base", ms(deadT), ms(compT), ratio(int64(deadT), int64(compT)),
		fmt.Sprintf("V %d vs %d", deadBase.NumNodes(), compacted.NumNodes()),
	})
	r.Notes = append(r.Notes,
		"snapshot rows: baseline = Builder.Freeze from the raw edge arrays; persist = WriteSnapshot/ReadSnapshot of the binary image",
		"wal rows: baseline = the same op stream into a bare in-memory Delta; append = through graph.WAL (buffered, no fsync on a bytes.Buffer); recover = replay from the log",
		"compact rows: identical 1%-scale churn refrozen against the 30%-dead base and its compacted equivalent (IDs translated by the remap)")
	return r
}
