package cluster

import (
	"sync"
	"testing"

	"repro/internal/eq"
	"repro/internal/graph"
)

func tm(n int, a string) eq.Term { return eq.Term{Node: graph.NodeID(n), Attr: a} }

func TestLogAppendRead(t *testing.T) {
	l := NewLog()
	if l.Len() != 0 || l.Appends() != 0 {
		t.Fatal("fresh log not empty")
	}
	l.Append(eq.Delta{{Kind: eq.OpAssign, T: tm(0, "A"), C: "1"}})
	l.Append(nil) // empty deltas are not broadcasts
	l.Append(eq.Delta{{Kind: eq.OpMerge, T: tm(0, "A"), U: tm(1, "B")}})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if l.Appends() != 2 {
		t.Fatalf("Appends = %d, want 2", l.Appends())
	}
	tail, cur := l.ReadFrom(0)
	if len(tail) != 2 || cur != 2 {
		t.Fatalf("ReadFrom(0) = %d ops, cursor %d", len(tail), cur)
	}
	tail, cur = l.ReadFrom(2)
	if tail != nil || cur != 2 {
		t.Fatal("ReadFrom at end should be empty")
	}
	// Partial read.
	tail, _ = l.ReadFrom(1)
	if len(tail) != 1 || tail[0].Kind != eq.OpMerge {
		t.Fatalf("partial read wrong: %+v", tail)
	}
}

func TestLogConcurrentAppendersConverge(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Append(eq.Delta{{Kind: eq.OpAssign, T: tm(w, "A"), C: "1"}})
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Fatalf("lost appends: %d", l.Len())
	}
	// Two replicas reading the full log agree.
	a, b := eq.New(), eq.New()
	tail, _ := l.ReadFrom(0)
	a.Apply(tail)
	b.Apply(tail)
	if a.Classes() != b.Classes() {
		t.Fatal("replicas diverged on identical log")
	}
}

func TestQueueOrdering(t *testing.T) {
	q := NewQueue[string]()
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	q.Push(1, "a2") // equal rank: stable after "a"
	var got []string
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []string{"a", "a2", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestQueuePushFront(t *testing.T) {
	q := NewQueue[string]()
	q.Push(1, "normal")
	q.PushFront("s1", "s2")
	q.PushFront("s3")
	// s3 was pushed front most recently → before s1, s2; all before normal.
	var got []string
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 4 || got[0] != "s3" || got[3] != "normal" {
		t.Fatalf("front ordering wrong: %v", got)
	}
	// s1 before s2 (same PushFront call preserves order).
	if got[1] != "s1" || got[2] != "s2" {
		t.Fatalf("intra-batch order wrong: %v", got)
	}
}

func TestQueueEmptyPop(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if q.Len() != 0 {
		t.Fatal("empty queue has nonzero length")
	}
}

func TestDequeEnds(t *testing.T) {
	d := NewDeque[int]()
	if _, ok := d.PopFront(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
	if _, ok := d.PopBack(); ok {
		t.Fatal("pop back from empty deque succeeded")
	}
	d.PushBack(1)
	d.PushBack(2)
	d.PushFront(0)
	// Front: 0 1 2. Owner pops lowest, thief steals highest.
	if v, _ := d.PopFront(); v != 0 {
		t.Fatalf("PopFront = %d, want 0", v)
	}
	if v, _ := d.PopBack(); v != 2 {
		t.Fatalf("PopBack = %d, want 2", v)
	}
	if v, _ := d.PopFront(); v != 1 {
		t.Fatalf("PopFront = %d, want 1", v)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
}

// TestDequePushFrontBatchOrder pins the split-batch contract: a batch
// pushed to the front pops in batch order, ahead of older work.
func TestDequePushFrontBatchOrder(t *testing.T) {
	d := NewDeque[string]()
	d.PushBack("old")
	d.PushFront("s1", "s2", "s3")
	var got []string
	for {
		v, ok := d.PopFront()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []string{"s1", "s2", "s3", "old"}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
}

// TestDequeGrowth forces several ring-buffer growth cycles with interleaved
// pops at both ends, then checks no element was lost or reordered.
func TestDequeGrowth(t *testing.T) {
	d := NewDeque[int]()
	next, popped := 0, 0
	var front, back []int
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			d.PushBack(next)
			next++
		}
		if v, ok := d.PopFront(); ok {
			front = append(front, v)
			popped++
		}
		if v, ok := d.PopBack(); ok {
			back = append(back, v)
			popped++
		}
	}
	if d.Len() != next-popped {
		t.Fatalf("Len = %d, want %d", d.Len(), next-popped)
	}
	for i := 1; i < len(front); i++ {
		if front[i] <= front[i-1] {
			t.Fatalf("front pops not ascending: %v", front)
		}
	}
	seen := make(map[int]bool)
	for _, v := range append(front, back...) {
		if seen[v] {
			t.Fatalf("element %d popped twice", v)
		}
		seen[v] = true
	}
	for {
		v, ok := d.PopFront()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("element %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != next {
		t.Fatalf("lost elements: saw %d of %d", len(seen), next)
	}
}

// TestDequeConcurrentSteal hammers one owner (front) and several thieves
// (back) and checks conservation: every pushed element is popped exactly
// once across all consumers.
func TestDequeConcurrentSteal(t *testing.T) {
	d := NewDeque[int]()
	const n = 2000
	var mu sync.Mutex
	seen := make(map[int]bool, n)
	record := func(v int) {
		mu.Lock()
		if seen[v] {
			t.Errorf("element %d popped twice", v)
		}
		seen[v] = true
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // owner: pushes and pops at the front
		defer wg.Done()
		for i := 0; i < n; i++ {
			d.PushFront(i)
			if i%3 == 0 {
				if v, ok := d.PopFront(); ok {
					record(v)
				}
			}
		}
	}()
	for th := 0; th < 3; th++ {
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if v, ok := d.PopBack(); ok {
					record(v)
				}
			}
		}()
	}
	wg.Wait()
	for {
		v, ok := d.PopFront()
		if !ok {
			break
		}
		record(v)
	}
	if len(seen) != n {
		t.Fatalf("conservation broken: popped %d of %d", len(seen), n)
	}
}
