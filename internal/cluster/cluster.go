// Package cluster provides the simulated distributed runtime underneath
// ParSat and ParImp (Section V-B): a coordinator with a priority queue of
// work units, p workers, and an asynchronous reliable broadcast of monotone
// Eq deltas.
//
// Substitution note (see DESIGN.md): the paper deploys on a 20-machine
// cluster; here workers are goroutines and the broadcast is a shared
// append-only operation log that every worker applies from its own cursor.
// This preserves the coordination structure the paper evaluates — dynamic
// workload assignment, straggler splitting, early-termination flags, and
// asynchronous monotone state exchange — while remaining a single process.
package cluster

import (
	"sync"
	"sync/atomic"

	"repro/internal/eq"
)

// Log is the asynchronous broadcast channel: an append-only, totally
// ordered log of Eq operations. A worker broadcasts by appending its local
// delta; every other worker applies the log tail from its own cursor at its
// own pace. Because Eq is monotone and ops are ground, applying any prefix
// interleaved with local work converges (see eq's confluence property).
type Log struct {
	mu  sync.Mutex
	ops []eq.Op
	// length mirrors len(ops) so workers can poll for news without taking
	// the mutex (they poll once per match — the hot path).
	length atomic.Int64
	// appends counts Append calls (broadcast messages), reported by the
	// harness as a communication stat.
	appends int
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append publishes a delta; empty deltas are ignored. It returns the new
// log length.
func (l *Log) Append(d eq.Delta) int {
	if len(d) == 0 {
		return l.Len()
	}
	l.mu.Lock()
	l.ops = append(l.ops, d...)
	l.appends++
	n := len(l.ops)
	l.length.Store(int64(n))
	l.mu.Unlock()
	return n
}

// Len returns the current log length without locking. Workers poll this on
// every match to decide whether to catch up.
func (l *Log) Len() int { return int(l.length.Load()) }

// ReadFrom returns the ops in [cursor, len) and the new cursor.
func (l *Log) ReadFrom(cursor int) (eq.Delta, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor >= len(l.ops) {
		return nil, cursor
	}
	tail := append(eq.Delta{}, l.ops[cursor:]...)
	return tail, len(l.ops)
}

// Appends returns the number of broadcast messages published.
func (l *Log) Appends() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Queue is the coordinator's priority queue of work units: a binary
// min-heap on (rank, insertion sequence) — stable FIFO within a rank —
// with PushFront used for split sub-units ("add Li to the front of W").
// It is used only by the coordinator goroutine, so it is not synchronized.
type Queue[T any] struct {
	items []queueItem[T]
	seq   uint64
	// frontRank decreases on every PushFront call so later split batches
	// land before earlier ones, and all land before normally ranked units.
	frontRank int
}

type queueItem[T any] struct {
	rank int
	seq  uint64
	v    T
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

func (q *Queue[T]) less(i, j int) bool {
	if q.items[i].rank != q.items[j].rank {
		return q.items[i].rank < q.items[j].rank
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

// Push inserts an item with the given rank (FIFO for equal ranks).
func (q *Queue[T]) Push(rank int, v T) {
	q.items = append(q.items, queueItem[T]{rank: rank, seq: q.seq, v: v})
	q.seq++
	q.up(len(q.items) - 1)
}

// PushFront inserts items ahead of everything currently queued, preserving
// their order within the batch.
func (q *Queue[T]) PushFront(vs ...T) {
	q.frontRank--
	for _, v := range vs {
		q.Push(q.frontRank, v)
	}
}

// Pop removes and returns the lowest-ranked item.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0].v
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = queueItem[T]{} // release references
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Deque is a synchronized double-ended work queue, one per worker in the
// work-stealing executor. The owning worker pushes split sub-units to the
// front and pops from the front (depth-first locality: a split branch reuses
// the caches its parent just warmed), while idle workers steal from the
// back, taking the work the owner would reach last. A mutex per deque is
// deliberate: work units cost well over a microsecond each, so lock-free
// Chase–Lev buys nothing here while costing memory-model subtlety.
type Deque[T any] struct {
	mu    sync.Mutex
	buf   []T
	head  int // index of the front item
	count int
}

// NewDeque returns an empty deque.
func NewDeque[T any]() *Deque[T] { return &Deque[T]{} }

// grow doubles the ring buffer; callers hold mu.
func (d *Deque[T]) grow() {
	n := len(d.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]T, n)
	for i := 0; i < d.count; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

// PushFront inserts items at the front, preserving their order within the
// batch (vs[0] is popped first).
func (d *Deque[T]) PushFront(vs ...T) {
	d.mu.Lock()
	for i := len(vs) - 1; i >= 0; i-- {
		if d.count == len(d.buf) {
			d.grow()
		}
		d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
		d.buf[d.head] = vs[i]
		d.count++
	}
	d.mu.Unlock()
}

// PushBack appends an item at the back.
func (d *Deque[T]) PushBack(v T) {
	d.mu.Lock()
	if d.count == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.count)%len(d.buf)] = v
	d.count++
	d.mu.Unlock()
}

// PopFront removes and returns the front item (the owner's end).
func (d *Deque[T]) PopFront() (T, bool) {
	var zero T
	d.mu.Lock()
	if d.count == 0 {
		d.mu.Unlock()
		return zero, false
	}
	v := d.buf[d.head]
	d.buf[d.head] = zero // release references
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	d.mu.Unlock()
	return v, true
}

// PopBack removes and returns the back item (the thieves' end).
func (d *Deque[T]) PopBack() (T, bool) {
	var zero T
	d.mu.Lock()
	if d.count == 0 {
		d.mu.Unlock()
		return zero, false
	}
	i := (d.head + d.count - 1) % len(d.buf)
	v := d.buf[i]
	d.buf[i] = zero
	d.count--
	d.mu.Unlock()
	return v, true
}

// Len returns the number of queued items.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	n := d.count
	d.mu.Unlock()
	return n
}
