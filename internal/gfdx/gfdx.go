// Package gfdx implements the extension the paper's Section IX names as
// ongoing work: reasoning about GFDs whose literals carry built-in
// predicates (=, ≠, <, ≤, >, ≥) rather than equality only. These are the
// GED-style extended dependencies of Fan & Lu (PODS 2017) restricted to
// non-disjunctive consequents.
//
// Extended satisfiability keeps the small model property's structure: GFDs
// are enforced on matches of their patterns in the canonical graph G_Σ, but
// the per-class state generalizes from "one constant" to
//
//   - a numeric interval with open/closed bounds (from <,≤,>,≥,= bounds),
//   - a set of excluded values (from ≠ constants),
//   - order edges between classes (from x.A < y.B style literals).
//
// A class conflicts when its interval empties, collapses onto an excluded
// point, or an order cycle with a strict edge appears; non-strict order
// cycles merge the classes involved (x ≤ y ≤ x ⇒ x = y). Bounds propagate
// along order edges to a fixpoint.
//
// Scope: constants compare numerically when both sides parse as numbers;
// non-numeric constants support = and ≠ only (a literal ordering two
// non-numeric constants is rejected at construction). Disjunction — the
// other half of the paper's planned extension — is out of scope here.
package gfdx

import (
	"fmt"
	"strconv"

	"repro/internal/canon"
	"repro/internal/eq"
	"repro/internal/gfd"
	"repro/internal/match"
	"repro/internal/pattern"
)

// Pred is a built-in comparison predicate.
type Pred int

// Predicates.
const (
	EQ Pred = iota
	NE
	LT
	LE
	GT
	GE
)

func (p Pred) String() string {
	switch p {
	case EQ:
		return "="
	case NE:
		return "≠"
	case LT:
		return "<"
	case LE:
		return "≤"
	case GT:
		return ">"
	case GE:
		return "≥"
	}
	return "?"
}

// Literal is an extended literal x.A ⊙ c or x.A ⊙ y.B.
type Literal struct {
	Pred Pred
	X    pattern.Var
	A    string
	// Constant form:
	Const string
	IsVar bool
	// Variable form:
	Y pattern.Var
	B string
}

// Const builds x.A ⊙ c.
func Const(x pattern.Var, a string, p Pred, c string) Literal {
	return Literal{Pred: p, X: x, A: a, Const: c}
}

// Vars builds x.A ⊙ y.B.
func Vars(x pattern.Var, a string, p Pred, y pattern.Var, b string) Literal {
	return Literal{Pred: p, X: x, A: a, IsVar: true, Y: y, B: b}
}

// GFD is an extended dependency Q[x̄](X → Y).
type GFD struct {
	Name    string
	Pattern *pattern.Pattern
	X, Y    []Literal
}

// New validates and constructs an extended GFD: ordering predicates on
// non-numeric constants are rejected.
func New(name string, p *pattern.Pattern, x, y []Literal) (*GFD, error) {
	for _, l := range append(append([]Literal{}, x...), y...) {
		if int(l.X) >= p.NumVars() || (l.IsVar && int(l.Y) >= p.NumVars()) {
			return nil, fmt.Errorf("gfdx %s: literal references undeclared variable", name)
		}
		if !l.IsVar && l.Pred != EQ && l.Pred != NE {
			if _, err := strconv.ParseFloat(l.Const, 64); err != nil {
				return nil, fmt.Errorf("gfdx %s: ordering predicate on non-numeric constant %q", name, l.Const)
			}
		}
	}
	p.Freeze()
	return &GFD{Name: name, Pattern: p, X: x, Y: y}, nil
}

// Set is an ordered set of extended GFDs.
type Set struct {
	GFDs []*GFD
}

// NewSet builds a set.
func NewSet(gs ...*GFD) *Set { return &Set{GFDs: gs} }

// AsPlain lowers the set to plain GFDs when every literal is an equality;
// it returns nil if any literal uses another predicate (or a lowered GFD
// fails plain validation, which New here already rules out). Used to
// cross-check the extended checker against core.SeqSat on the shared
// fragment.
func (s *Set) AsPlain() *gfd.Set {
	out := gfd.NewSet()
	for _, g := range s.GFDs {
		var xs, ys []gfd.Literal
		for _, l := range g.X {
			pl, ok := plainLiteral(l)
			if !ok {
				return nil
			}
			xs = append(xs, pl)
		}
		for _, l := range g.Y {
			pl, ok := plainLiteral(l)
			if !ok {
				return nil
			}
			ys = append(ys, pl)
		}
		pg, err := gfd.New(g.Name, g.Pattern, xs, ys)
		if err != nil {
			return nil
		}
		out.Add(pg)
	}
	return out
}

func plainLiteral(l Literal) (gfd.Literal, bool) {
	if l.Pred != EQ {
		return gfd.Literal{}, false
	}
	if l.IsVar {
		return gfd.Vars(l.X, l.A, l.Y, l.B), true
	}
	return gfd.Const(l.X, l.A, l.Const), true
}

// plainPattern converts the extended set to a plain set with empty literal
// sets, reusing canon.BuildSigma for the canonical graph.
func (s *Set) patternSet() *gfd.Set {
	out := gfd.NewSet()
	for _, g := range s.GFDs {
		pg, err := gfd.New(g.Name, g.Pattern, nil, nil)
		if err != nil {
			continue // unreachable: with no literals there is nothing to validate
		}
		out.Add(pg)
	}
	return out
}

// Result reports extended satisfiability.
type Result struct {
	Satisfiable bool
	// Reason describes the first conflict (empty when satisfiable).
	Reason string
	Stats  Stats
}

// Stats counts the extended checker's work.
type Stats struct {
	Matches      int
	Enforcements int
	Rechecks     int
	Propagations int
}

// SeqSatX checks the satisfiability of an extended set: it returns
// Satisfiable=false only when the constraint state derived from necessary
// enforcements is inconsistent. On the equality-only fragment it coincides
// with core.SeqSat (cross-checked in tests).
func SeqSatX(s *Set) *Result {
	if len(s.GFDs) == 0 {
		return &Result{Satisfiable: true}
	}
	cs := canon.BuildSigma(s.patternSet())
	st := newState()

	type pend struct {
		g    *GFD
		h    match.Assignment
		off  int
		done bool
	}
	pending := make(map[eq.Term][]*pend)
	var queue []eq.Term

	enforce := func(g *GFD, h match.Assignment) bool {
		st.stats.Enforcements++
		for _, l := range g.Y {
			changed, ok := st.assert(term(h, l.X, l.A), l, h)
			if !ok {
				return false
			}
			queue = append(queue, changed...)
		}
		return true
	}

	var offer func(g *GFD, h match.Assignment) bool
	offer = func(g *GFD, h match.Assignment) bool {
		st.stats.Matches++
		switch st.checkX(g, h) {
		case xHolds:
			return enforce(g, h)
		case xImpossible:
			return true
		default:
			p := &pend{g: g, h: h}
			for _, l := range g.X {
				pending[term(h, l.X, l.A)] = append(pending[term(h, l.X, l.A)], p)
				if l.IsVar {
					pending[term(h, l.Y, l.B)] = append(pending[term(h, l.Y, l.B)], p)
				}
			}
			return true
		}
	}

	drain := func() bool {
		for len(queue) > 0 {
			t := queue[0]
			queue = queue[1:]
			list := pending[t]
			if len(list) == 0 {
				continue
			}
			keep := list[:0]
			for _, p := range list {
				if p.done {
					continue
				}
				st.stats.Rechecks++
				switch st.checkX(p.g, p.h) {
				case xHolds:
					p.done = true
					if !enforce(p.g, p.h) {
						return false
					}
				case xImpossible:
					p.done = true
				default:
					keep = append(keep, p)
				}
			}
			pending[t] = keep
		}
		return true
	}

	for _, g := range s.GFDs {
		srch := match.NewSearch(g.Pattern, cs.Graph, match.Options{})
		for {
			h, ok := srch.Next()
			if !ok {
				break
			}
			// Matches are found per GFD into the shared canonical graph;
			// node IDs in h are already global.
			if !offer(g, h) || !drain() {
				return &Result{Satisfiable: false, Reason: st.reason, Stats: st.stats}
			}
			if changed, ok := st.propagate(); !ok {
				return &Result{Satisfiable: false, Reason: st.reason, Stats: st.stats}
			} else {
				queue = append(queue, changed...)
				if !drain() {
					return &Result{Satisfiable: false, Reason: st.reason, Stats: st.stats}
				}
			}
		}
	}
	if changed, ok := st.propagate(); !ok {
		return &Result{Satisfiable: false, Reason: st.reason, Stats: st.stats}
	} else {
		queue = append(queue, changed...)
		if !drain() {
			return &Result{Satisfiable: false, Reason: st.reason, Stats: st.stats}
		}
	}
	return &Result{Satisfiable: true, Stats: st.stats}
}

func term(h match.Assignment, x pattern.Var, a string) eq.Term {
	return eq.Term{Node: h[x], Attr: a}
}
