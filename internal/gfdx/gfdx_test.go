package gfdx

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pattern"
)

// MustNew is the test-only panic-on-error constructor (library code routes
// through New and handles the error).
func MustNew(name string, p *pattern.Pattern, x, y []Literal) *GFD {
	g, err := New(name, p, x, y)
	if err != nil {
		panic(err)
	}
	return g
}

func oneVar(label string) *pattern.Pattern {
	p := pattern.New()
	p.AddVar("x", label)
	return p
}

func TestOrderingOnNonNumericRejected(t *testing.T) {
	if _, err := New("bad", oneVar("a"), nil, []Literal{Const(0, "A", LT, "hello")}); err == nil {
		t.Fatal("LT on non-numeric constant accepted")
	}
	if _, err := New("ok", oneVar("a"), nil, []Literal{Const(0, "A", NE, "hello")}); err != nil {
		t.Fatalf("NE on non-numeric rejected: %v", err)
	}
}

func TestIntervalConflict(t *testing.T) {
	// x.A < 5 and x.A > 7 on the same always-firing pattern: empty interval.
	phi1 := MustNew("lt5", oneVar("a"), nil, []Literal{Const(0, "A", LT, "5")})
	phi2 := MustNew("gt7", oneVar("a"), nil, []Literal{Const(0, "A", GT, "7")})
	res := SeqSatX(NewSet(phi1, phi2))
	if res.Satisfiable {
		t.Fatal("x.A<5 ∧ x.A>7 reported satisfiable")
	}
	// x.A < 5 and x.A > 3 is fine.
	phi3 := MustNew("gt3", oneVar("a"), nil, []Literal{Const(0, "A", GT, "3")})
	if !SeqSatX(NewSet(phi1, phi3)).Satisfiable {
		t.Fatal("x.A<5 ∧ x.A>3 reported unsatisfiable")
	}
}

func TestOpenPointConflict(t *testing.T) {
	// x.A ≥ 5 and x.A < 5: empty. x.A ≥ 5 and x.A ≤ 5: exactly 5, fine —
	// unless 5 is excluded.
	ge := MustNew("ge", oneVar("a"), nil, []Literal{Const(0, "A", GE, "5")})
	lt := MustNew("lt", oneVar("a"), nil, []Literal{Const(0, "A", LT, "5")})
	le := MustNew("le", oneVar("a"), nil, []Literal{Const(0, "A", LE, "5")})
	ne := MustNew("ne", oneVar("a"), nil, []Literal{Const(0, "A", NE, "5")})
	if SeqSatX(NewSet(ge, lt)).Satisfiable {
		t.Fatal("[5,5) reported satisfiable")
	}
	if !SeqSatX(NewSet(ge, le)).Satisfiable {
		t.Fatal("point interval [5,5] reported unsatisfiable")
	}
	if SeqSatX(NewSet(ge, le, ne)).Satisfiable {
		t.Fatal("point interval with the point excluded reported satisfiable")
	}
}

func TestPinVersusInterval(t *testing.T) {
	eqv := MustNew("eq", oneVar("a"), nil, []Literal{Const(0, "A", EQ, "10")})
	lt := MustNew("lt", oneVar("a"), nil, []Literal{Const(0, "A", LT, "10")})
	if SeqSatX(NewSet(eqv, lt)).Satisfiable {
		t.Fatal("x.A=10 ∧ x.A<10 reported satisfiable")
	}
	le := MustNew("le", oneVar("a"), nil, []Literal{Const(0, "A", LE, "10")})
	if !SeqSatX(NewSet(eqv, le)).Satisfiable {
		t.Fatal("x.A=10 ∧ x.A≤10 reported unsatisfiable")
	}
}

func TestNeConflict(t *testing.T) {
	eqv := MustNew("eq", oneVar("a"), nil, []Literal{Const(0, "A", EQ, "v")})
	ne := MustNew("ne", oneVar("a"), nil, []Literal{Const(0, "A", NE, "v")})
	if SeqSatX(NewSet(eqv, ne)).Satisfiable {
		t.Fatal("x.A=v ∧ x.A≠v reported satisfiable")
	}
}

func twoVarEdge() *pattern.Pattern {
	p := pattern.New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "a")
	p.AddEdge(x, y, "e")
	return p
}

func TestStrictOrderCycle(t *testing.T) {
	// x.A < y.A on x-e->y: in the canonical graph the pattern matches only
	// its own copy (x→x, y→y), so just one constraint — satisfiable. With a
	// self-loop pattern the homomorphism maps x and y to one node: x.A <
	// x.A is a strict cycle — unsatisfiable.
	acyc := MustNew("acyc", twoVarEdge(), nil, []Literal{Vars(0, "A", LT, 1, "A")})
	if !SeqSatX(NewSet(acyc)).Satisfiable {
		t.Fatal("acyclic strict order reported unsatisfiable")
	}
	loop := pattern.New()
	x := loop.AddVar("x", "a")
	y := loop.AddVar("y", "a")
	loop.AddEdge(x, y, "e")
	loop.AddEdge(y, x, "e") // 2-cycle: homomorphism can fold x,y together? no —
	// folding requires self-loop; build an explicit self-loop instead.
	self := pattern.New()
	sx := self.AddVar("x", "a")
	self.AddEdge(sx, sx, "e")
	// ψ over a single self-loop node; φ demands x.A < y.A for the 2-cycle
	// pattern, which matches the self-loop node with x=y.
	anchor := MustNew("anchor", self, nil, []Literal{Const(0, "B", EQ, "1")})
	cyc := MustNew("cyc", loop, nil, []Literal{Vars(0, "A", LT, 1, "A")})
	res := SeqSatX(NewSet(anchor, cyc))
	if res.Satisfiable {
		t.Fatal("strict cycle through folded match reported satisfiable")
	}
}

func TestLeCycleMergesAndAgrees(t *testing.T) {
	// x.A ≤ y.A and y.A ≤ x.A force equality; combined with x.A = 1 and
	// y.A = 2 on the same nodes → conflict.
	p1 := twoVarEdge()
	le1 := MustNew("le1", p1, nil, []Literal{Vars(0, "A", LE, 1, "A"), Vars(1, "A", LE, 0, "A")})
	p2 := twoVarEdge()
	pin := MustNew("pin", p2, nil, []Literal{Const(0, "A", EQ, "1"), Const(1, "A", EQ, "2")})
	res := SeqSatX(NewSet(le1, pin))
	if res.Satisfiable {
		t.Fatal("≤-cycle with clashing pins reported satisfiable")
	}
	// Without the clash it is satisfiable.
	p3 := twoVarEdge()
	pinOK := MustNew("pinok", p3, nil, []Literal{Const(0, "A", EQ, "1"), Const(1, "A", EQ, "1")})
	if !SeqSatX(NewSet(le1, pinOK)).Satisfiable {
		t.Fatal("consistent ≤-cycle reported unsatisfiable")
	}
}

func TestBoundPropagationThroughChain(t *testing.T) {
	// x.A < y.A, y.A < 5, x.A > 4.5 … integers leave room (4.5,5)→ x<y<5
	// with x>4.5: satisfiable. x.A > 5 instead: conflict through the chain.
	p1 := twoVarEdge()
	ord := MustNew("ord", p1, nil, []Literal{Vars(0, "A", LT, 1, "A")})
	p2 := twoVarEdge()
	capY := MustNew("capY", p2, nil, []Literal{Const(1, "A", LT, "5")})
	p3 := twoVarEdge()
	floorOK := MustNew("floorOK", p3, nil, []Literal{Const(0, "A", GT, "4.5")})
	if !SeqSatX(NewSet(ord, capY, floorOK)).Satisfiable {
		t.Fatal("x∈(4.5,5) beneath y<5 reported unsatisfiable")
	}
	p4 := twoVarEdge()
	floorBad := MustNew("floorBad", p4, nil, []Literal{Const(0, "A", GE, "5")})
	if SeqSatX(NewSet(ord, capY, floorBad)).Satisfiable {
		t.Fatal("x≥5 ∧ x<y ∧ y<5 reported satisfiable")
	}
}

func TestAntecedentEntailment(t *testing.T) {
	// ψ1: ∅ → x.A = 3. ψ2: x.A ≤ 5 → x.B = 1. ψ3: x.B = 2 when x.A ≥ 2.
	// x.A=3 entails both antecedents → x.B forced to 1 and 2 → conflict.
	psi1 := MustNew("p1", oneVar("a"), nil, []Literal{Const(0, "A", EQ, "3")})
	psi2 := MustNew("p2", oneVar("a"),
		[]Literal{Const(0, "A", LE, "5")},
		[]Literal{Const(0, "B", EQ, "1")})
	psi3 := MustNew("p3", oneVar("a"),
		[]Literal{Const(0, "A", GE, "2")},
		[]Literal{Const(0, "B", EQ, "2")})
	res := SeqSatX(NewSet(psi1, psi2, psi3))
	if res.Satisfiable {
		t.Fatal("entailed comparison antecedents did not fire")
	}
	// With x.A = 7 only ψ3 fires: satisfiable.
	psi1b := MustNew("p1b", oneVar("a"), nil, []Literal{Const(0, "A", EQ, "7")})
	if !SeqSatX(NewSet(psi1b, psi2, psi3)).Satisfiable {
		t.Fatal("x.A=7 should leave ψ2 unfired")
	}
}

func TestImpossibleAntecedentDropped(t *testing.T) {
	// x.A = 3 forced; an antecedent x.A > 10 can never hold.
	psi1 := MustNew("p1", oneVar("a"), nil, []Literal{Const(0, "A", EQ, "3")})
	psi2 := MustNew("p2", oneVar("a"),
		[]Literal{Const(0, "A", GT, "10")},
		[]Literal{Const(0, "A", EQ, "999")}) // would conflict if fired
	if !SeqSatX(NewSet(psi1, psi2)).Satisfiable {
		t.Fatal("impossible antecedent fired")
	}
}

// TestEqualityFragmentAgreesWithCore cross-checks SeqSatX against
// core.SeqSat on randomly generated equality-only sets (where both must
// agree exactly).
func TestEqualityFragmentAgreesWithCore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	agree := 0
	for trial := 0; trial < 30; trial++ {
		set := NewSet()
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			p := pattern.New()
			nv := 1 + rng.Intn(2)
			for v := 0; v < nv; v++ {
				p.AddVar(fmt.Sprintf("x%d", v), []string{"a", "b"}[rng.Intn(2)])
			}
			for e := 0; e < nv; e++ {
				p.AddEdge(pattern.Var(rng.Intn(nv)), pattern.Var(rng.Intn(nv)), "e")
			}
			var xs, ys []Literal
			mk := func() Literal {
				x := pattern.Var(rng.Intn(nv))
				if rng.Intn(3) == 0 && nv > 1 {
					return Vars(x, "A", EQ, pattern.Var(rng.Intn(nv)), "B")
				}
				return Const(x, "A", EQ, []string{"0", "1"}[rng.Intn(2)])
			}
			for j := 0; j < rng.Intn(2); j++ {
				xs = append(xs, mk())
			}
			ys = append(ys, mk())
			set.GFDs = append(set.GFDs, MustNew(fmt.Sprintf("g%d", i), p, xs, ys))
		}
		plain := set.AsPlain()
		if plain == nil {
			t.Fatal("equality-only set failed to lower")
		}
		want := core.SeqSat(plain).Satisfiable
		got := SeqSatX(set).Satisfiable
		if got != want {
			t.Errorf("trial %d: SeqSatX=%v core.SeqSat=%v", trial, got, want)
		} else {
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("no trials ran")
	}
}
