package gfdx

import (
	"fmt"
	"strconv"

	"repro/internal/eq"
	"repro/internal/match"
)

// bound is one side of a numeric interval.
type bound struct {
	set    bool
	v      float64
	strict bool // true: open (< or >), false: closed (≤ or ≥)
}

// class is the constraint state of one equivalence class of attribute
// terms: the generalization of eq's "one constant per class".
type class struct {
	members []eq.Term
	pin     string // exact value, "" = unset (use pinned to test)
	pinned  bool
	numeric bool    // pin parses as a number
	pinNum  float64 // numeric pin value
	lo, hi  bound
	excl    map[string]bool
	// order/neq edges are kept in the state, keyed by roots.
}

type xState int

const (
	xHolds xState = iota
	xBlocked
	xImpossible
)

// state is the extended constraint store.
type state struct {
	parent  map[eq.Term]eq.Term
	classes map[eq.Term]*class
	// lt[a][b] true: a < b (strict); le[a][b]: a ≤ b. Keys are roots but are
	// re-canonicalized lazily after merges.
	lt, le map[eq.Term]map[eq.Term]bool
	neq    map[eq.Term]map[eq.Term]bool
	reason string
	stats  Stats
}

func newState() *state {
	return &state{
		parent:  make(map[eq.Term]eq.Term),
		classes: make(map[eq.Term]*class),
		lt:      make(map[eq.Term]map[eq.Term]bool),
		le:      make(map[eq.Term]map[eq.Term]bool),
		neq:     make(map[eq.Term]map[eq.Term]bool),
	}
}

func (s *state) find(t eq.Term) eq.Term {
	p, ok := s.parent[t]
	if !ok {
		s.parent[t] = t
		s.classes[t] = &class{members: []eq.Term{t}, excl: map[string]bool{}}
		return t
	}
	if p == t {
		return t
	}
	root := s.find(p)
	s.parent[t] = root
	return root
}

func (s *state) classOf(t eq.Term) *class { return s.classes[s.find(t)] }

func (s *state) fail(format string, args ...any) bool {
	if s.reason == "" {
		s.reason = fmt.Sprintf(format, args...)
	}
	return false
}

// tightenLo/tightenHi intersect the interval; they report false on an empty
// interval.
func (c *class) tightenLo(v float64, strict bool) (changed, ok bool) {
	if !c.lo.set || v > c.lo.v || (v == c.lo.v && strict && !c.lo.strict) {
		c.lo = bound{set: true, v: v, strict: strict}
		changed = true
	}
	return changed, c.consistent()
}

func (c *class) tightenHi(v float64, strict bool) (changed, ok bool) {
	if !c.hi.set || v < c.hi.v || (v == c.hi.v && strict && !c.hi.strict) {
		c.hi = bound{set: true, v: v, strict: strict}
		changed = true
	}
	return changed, c.consistent()
}

// consistent checks interval emptiness and pin/interval/exclusion clashes.
func (c *class) consistent() bool {
	if c.lo.set && c.hi.set {
		if c.lo.v > c.hi.v {
			return false
		}
		if c.lo.v == c.hi.v && (c.lo.strict || c.hi.strict) {
			return false
		}
		// A point interval whose only value is excluded is empty.
		if c.lo.v == c.hi.v && c.excl[formatNum(c.lo.v)] {
			return false
		}
	}
	if c.pinned {
		if c.excl[c.pin] {
			return false
		}
		if c.numeric {
			if c.lo.set && (c.pinNum < c.lo.v || (c.pinNum == c.lo.v && c.lo.strict)) {
				return false
			}
			if c.hi.set && (c.pinNum > c.hi.v || (c.pinNum == c.hi.v && c.hi.strict)) {
				return false
			}
		} else if c.lo.set || c.hi.set {
			// Ordered constraints on a class pinned to a non-number.
			return false
		}
	}
	return true
}

func formatNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// pinTo pins the class to an exact value.
func (c *class) pinTo(val string) (changed, ok bool) {
	if c.pinned {
		return false, c.pin == val
	}
	c.pinned = true
	c.pin = val
	if n, err := strconv.ParseFloat(val, 64); err == nil {
		c.numeric = true
		c.pinNum = n
	}
	return true, c.consistent()
}

// assert applies a consequent literal at a match; it returns the terms
// whose class state changed and ok=false on conflict.
func (s *state) assert(t eq.Term, l Literal, h match.Assignment) ([]eq.Term, bool) {
	if l.IsVar {
		u := eq.Term{Node: h[l.Y], Attr: l.B}
		return s.assertVar(t, l.Pred, u)
	}
	c := s.classOf(t)
	var changed, ok bool
	switch l.Pred {
	case EQ:
		changed, ok = c.pinTo(l.Const)
		if ok && c.numeric {
			ch2, ok2 := c.tightenLo(c.pinNum, false)
			ch3, ok3 := c.tightenHi(c.pinNum, false)
			changed, ok = changed || ch2 || ch3, ok2 && ok3
		}
	case NE:
		if !c.excl[l.Const] {
			c.excl[l.Const] = true
			changed = true
		}
		ok = !c.pinned || c.pin != l.Const
		if ok {
			ok = c.consistent()
		}
	default:
		v, _ := strconv.ParseFloat(l.Const, 64)
		switch l.Pred {
		case LT:
			changed, ok = c.tightenHi(v, true)
		case LE:
			changed, ok = c.tightenHi(v, false)
		case GT:
			changed, ok = c.tightenLo(v, true)
		case GE:
			changed, ok = c.tightenLo(v, false)
		}
	}
	if !ok {
		return c.members, s.fail("class %v inconsistent after %s %s", t, l.Pred, l.Const)
	}
	if changed {
		return c.members, true
	}
	return nil, true
}

func (s *state) assertVar(t eq.Term, p Pred, u eq.Term) ([]eq.Term, bool) {
	rt, ru := s.find(t), s.find(u)
	switch p {
	case EQ:
		return s.merge(rt, ru)
	case NE:
		if rt == ru {
			return nil, s.fail("x≠y asserted on merged class %v", t)
		}
		addEdge(s.neq, rt, ru)
		addEdge(s.neq, ru, rt)
		ct, cu := s.classes[rt], s.classes[ru]
		if ct.pinned && cu.pinned && ct.pin == cu.pin {
			return ct.members, s.fail("≠ between classes pinned to %q", ct.pin)
		}
		return nil, true
	case LT:
		if rt == ru {
			return nil, s.fail("x<x asserted at %v", t)
		}
		addEdge(s.lt, rt, ru)
		return s.propagate()
	case LE:
		addEdge(s.le, rt, ru)
		return s.propagate()
	case GT:
		if rt == ru {
			return nil, s.fail("x>x asserted at %v", t)
		}
		addEdge(s.lt, ru, rt)
		return s.propagate()
	case GE:
		addEdge(s.le, ru, rt)
		return s.propagate()
	}
	return nil, true
}

func addEdge(m map[eq.Term]map[eq.Term]bool, a, b eq.Term) {
	if m[a] == nil {
		m[a] = make(map[eq.Term]bool)
	}
	m[a][b] = true
}

// merge joins two classes: members concatenate, pins must agree, intervals
// intersect, exclusions union, edges re-point to the survivor.
func (s *state) merge(a, b eq.Term) ([]eq.Term, bool) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return nil, true
	}
	if s.neq[ra][rb] {
		return s.classes[ra].members, s.fail("merge of classes recorded ≠: %v, %v", ra, rb)
	}
	ca, cb := s.classes[ra], s.classes[rb]
	changed := append(append([]eq.Term{}, ca.members...), cb.members...)
	// Fold b into a.
	s.parent[rb] = ra
	ca.members = append(ca.members, cb.members...)
	if cb.pinned {
		if _, ok := ca.pinTo(cb.pin); !ok {
			return changed, s.fail("merge pins clash: %q vs %q", ca.pin, cb.pin)
		}
	}
	if cb.lo.set {
		if _, ok := ca.tightenLo(cb.lo.v, cb.lo.strict); !ok {
			return changed, s.fail("merge empties interval at %v", ra)
		}
	}
	if cb.hi.set {
		if _, ok := ca.tightenHi(cb.hi.v, cb.hi.strict); !ok {
			return changed, s.fail("merge empties interval at %v", ra)
		}
	}
	for v := range cb.excl {
		ca.excl[v] = true
	}
	if !ca.consistent() {
		return changed, s.fail("merged class inconsistent at %v", ra)
	}
	delete(s.classes, rb)
	// Re-point edges.
	for _, m := range []map[eq.Term]map[eq.Term]bool{s.lt, s.le, s.neq} {
		if es := m[rb]; es != nil {
			for to := range es {
				addEdge(m, ra, to)
			}
			delete(m, rb)
		}
		for from, es := range m {
			if es[rb] {
				delete(es, rb)
				es[ra] = true
			}
			_ = from
		}
	}
	if s.lt[ra][ra] {
		return changed, s.fail("strict order cycle at %v after merge", ra)
	}
	delete(s.le[ra], ra)
	if s.neq[ra][ra] {
		return changed, s.fail("≠ self-loop at %v after merge", ra)
	}
	return changed, true
}

// propagate runs bound propagation along order edges and order-cycle
// analysis to a fixpoint. It returns changed terms and ok=false on
// conflict. Bounds only ever move to values derived from input constants,
// so the fixpoint is reached in finitely many rounds.
func (s *state) propagate() ([]eq.Term, bool) {
	var changed []eq.Term
	for round := 0; ; round++ {
		if round > len(s.parent)+8 {
			break // safety net; monotone bounds should have converged
		}
		any := false
		apply := func(from, to eq.Term, strict bool) bool {
			cf, ct := s.classes[s.find(from)], s.classes[s.find(to)]
			if cf == nil || ct == nil {
				return true
			}
			s.stats.Propagations++
			// from < to (or ≤): to's lower bound inherits from's; from's
			// upper bound inherits to's.
			if cf.lo.set {
				ch, ok := ct.tightenLo(cf.lo.v, cf.lo.strict || strict)
				if ch {
					any = true
					changed = append(changed, ct.members...)
				}
				if !ok {
					return s.fail("propagation empties interval (lo) into %v", s.find(to))
				}
			}
			if ct.hi.set {
				ch, ok := cf.tightenHi(ct.hi.v, ct.hi.strict || strict)
				if ch {
					any = true
					changed = append(changed, cf.members...)
				}
				if !ok {
					return s.fail("propagation empties interval (hi) into %v", s.find(from))
				}
			}
			// Strict edge between point-equal classes is a conflict.
			if strict && cf.pinned && ct.pinned && cf.numeric && ct.numeric && cf.pinNum >= ct.pinNum {
				return s.fail("strict order violated by pins %v ≥ %v", cf.pinNum, ct.pinNum)
			}
			return true
		}
		for from, es := range s.lt {
			for to := range es {
				if s.find(from) == s.find(to) {
					return changed, s.fail("strict order cycle at %v", s.find(from))
				}
				if !apply(from, to, true) {
					return changed, false
				}
			}
		}
		for from, es := range s.le {
			for to := range es {
				if !apply(from, to, false) {
					return changed, false
				}
			}
		}
		// Non-strict cycles (a ≤ b and b ≤ a) merge the classes.
		for from, es := range s.le {
			for to := range es {
				rf, rt := s.find(from), s.find(to)
				if rf != rt && s.le[rt] != nil && reaches(s, rt, rf) {
					ch, ok := s.merge(rf, rt)
					changed = append(changed, ch...)
					if !ok {
						return changed, false
					}
					any = true
				}
			}
		}
		if !any {
			break
		}
	}
	return changed, true
}

// reaches reports whether b reaches a through ≤ edges (one-step suffices
// for the common a≤b≤a pattern; longer non-strict cycles collapse over
// successive propagate calls).
func reaches(s *state, from, to eq.Term) bool {
	for t := range s.le[from] {
		if s.find(t) == to {
			return true
		}
	}
	return false
}

// checkX classifies an extended antecedent at a match: xHolds iff every
// literal is entailed by the current state (it then holds in every
// population consistent with the necessary enforcements), xImpossible iff
// some literal contradicts the state permanently, else xBlocked.
func (s *state) checkX(g *GFD, h match.Assignment) xState {
	res := xHolds
	for _, l := range g.X {
		t := eq.Term{Node: h[l.X], Attr: l.A}
		var st xState
		if l.IsVar {
			st = s.checkVarLiteral(t, l.Pred, eq.Term{Node: h[l.Y], Attr: l.B})
		} else {
			st = s.checkConstLiteral(t, l.Pred, l.Const)
		}
		if st == xImpossible {
			return xImpossible
		}
		if st == xBlocked {
			res = xBlocked
		}
	}
	return res
}

func (s *state) checkConstLiteral(t eq.Term, p Pred, cst string) xState {
	c := s.classOf(t)
	num, isNum := 0.0, false
	if n, err := strconv.ParseFloat(cst, 64); err == nil {
		num, isNum = n, true
	}
	switch p {
	case EQ:
		if c.pinned {
			if c.pin == cst {
				return xHolds
			}
			return xImpossible
		}
		if c.excl[cst] {
			return xImpossible
		}
		if isNum && !valueFits(c, num) {
			return xImpossible
		}
		return xBlocked
	case NE:
		if c.pinned {
			if c.pin != cst {
				return xHolds
			}
			return xImpossible
		}
		if c.excl[cst] {
			return xHolds
		}
		if isNum && !valueFits(c, num) {
			return xHolds // the class can never take this value
		}
		return xBlocked
	case LT, LE, GT, GE:
		if !isNum {
			return xBlocked
		}
		lo, hi := effectiveBounds(c)
		switch p {
		case LT:
			if hi.set && (hi.v < num || (hi.v == num && true)) && (hi.v < num || hi.strict) {
				return xHolds
			}
			if lo.set && lo.v >= num {
				return xImpossible
			}
		case LE:
			if hi.set && hi.v <= num {
				return xHolds
			}
			if lo.set && (lo.v > num || (lo.v == num && lo.strict)) {
				return xImpossible
			}
		case GT:
			if lo.set && (lo.v > num || (lo.v == num && lo.strict)) {
				return xHolds
			}
			if hi.set && hi.v <= num {
				return xImpossible
			}
		case GE:
			if lo.set && lo.v >= num {
				return xHolds
			}
			if hi.set && (hi.v < num || (hi.v == num && hi.strict)) {
				return xImpossible
			}
		}
		return xBlocked
	}
	return xBlocked
}

func valueFits(c *class, v float64) bool {
	if c.lo.set && (v < c.lo.v || (v == c.lo.v && c.lo.strict)) {
		return false
	}
	if c.hi.set && (v > c.hi.v || (v == c.hi.v && c.hi.strict)) {
		return false
	}
	return true
}

// effectiveBounds folds a numeric pin into the interval view.
func effectiveBounds(c *class) (bound, bound) {
	lo, hi := c.lo, c.hi
	if c.pinned && c.numeric {
		lo = bound{set: true, v: c.pinNum}
		hi = bound{set: true, v: c.pinNum}
	}
	return lo, hi
}

func (s *state) checkVarLiteral(t eq.Term, p Pred, u eq.Term) xState {
	rt, ru := s.find(t), s.find(u)
	ct, cu := s.classes[rt], s.classes[ru]
	switch p {
	case EQ:
		if rt == ru {
			return xHolds
		}
		if ct.pinned && cu.pinned {
			if ct.pin == cu.pin {
				return xHolds
			}
			return xImpossible
		}
		if s.neq[rt][ru] {
			return xImpossible
		}
		return xBlocked
	case NE:
		if rt == ru {
			return xImpossible
		}
		if s.neq[rt][ru] {
			return xHolds
		}
		if ct.pinned && cu.pinned {
			if ct.pin != cu.pin {
				return xHolds
			}
			return xImpossible
		}
		return xBlocked
	case LT, LE, GT, GE:
		// Normalize to t ⊙ u with ⊙ ∈ {<, ≤}.
		a, b, strict := rt, ru, p == LT
		if p == GT || p == GE {
			a, b, strict = ru, rt, p == GT
		}
		ca, cb := s.classes[a], s.classes[b]
		loA, hiA := effectiveBounds(ca)
		loB, hiB := effectiveBounds(cb)
		if a == b {
			if strict {
				return xImpossible
			}
			return xHolds
		}
		// Entailed: every value of a is below every value of b.
		if hiA.set && loB.set {
			if hiA.v < loB.v || (hiA.v == loB.v && (hiA.strict || loB.strict || !strict)) {
				if hiA.v < loB.v || hiA.strict || loB.strict || !strict {
					return xHolds
				}
			}
		}
		// Impossible: every value of a is at or above every value of b.
		if loA.set && hiB.set {
			if loA.v > hiB.v || (loA.v == hiB.v && (strict || loA.strict || hiB.strict)) {
				return xImpossible
			}
		}
		return xBlocked
	}
	return xBlocked
}
