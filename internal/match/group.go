// Grouped enumeration with prefix-shared search. A set of pattern groups
// (one enumeration consumer per structurally distinct pattern) is evaluated
// in one pass: each group's matches are enumerated exactly once, and groups
// whose compiled match orders begin with identical frames form a family
// that shares the common prefix of the backtracking search — a small plan
// trie whose root is the shared prefix pattern and whose branches are the
// members' seeded continuations, so the search forks at the first diverging
// frame instead of restarting from the root for every group.
package match

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// PatternGroup is one enumeration consumer of EnumerateGrouped: a pattern
// plus an optional precompiled plan (must be valid for the reader, as with
// Options.Plan).
type PatternGroup struct {
	Pattern *pattern.Pattern
	Plan    *Plan
}

// GroupStats reports how much work EnumerateGrouped shared.
type GroupStats struct {
	// Families counts prefix families: sets of ≥2 groups whose match orders
	// agree on ≥2 leading frames and therefore shared a prefix search.
	Families int
	// SharedDepth sums the shared prefix lengths over all families.
	SharedDepth int
	// PrefixMatches counts matches of the shared prefix patterns — each one
	// seeded every family member's continuation instead of being re-derived
	// per member from the root.
	PrefixMatches int
}

// groupRun is one group's enumeration state within EnumerateGrouped.
type groupRun struct {
	gi     int
	order  []pattern.Var
	frames []pattern.FrameSig
}

// frameKey serializes a frame signature for family bucketing.
func frameKey(f pattern.FrameSig) string {
	var b strings.Builder
	b.WriteString(f.Label)
	for _, e := range f.Edges {
		fmt.Fprintf(&b, "|%t,%d,%s", e.Out, e.Pos, e.Label)
	}
	return b.String()
}

// EnumerateGrouped enumerates every group's full match set, calling
// emit(groupIndex, match) for each match. Per group, matches arrive in
// exactly the order a standalone NewSearch with the group's default order
// would produce them (emissions of different groups may interleave).
// Returning false from emit stops the whole enumeration. The returned error
// is the context error when ctx fired mid-enumeration.
//
// Sharing: groups whose default orders open with two or more identical
// frames (same labels, same edges back into the prefix — see
// pattern.OrderFrames) form a family. The family's common prefix is
// enumerated once as its own pattern, and each prefix match seeds every
// member's continuation search. This preserves per-group enumeration order:
// the prefix search runs in ascending (lexicographic) candidate order over
// the order-projected prefix tuple, each seeded continuation enumerates its
// completions in the member's own order, and the concatenation is exactly
// the member's standalone lexicographic enumeration. It also preserves the
// match set: the prefix pattern carries every edge among the first L order
// variables, so its match set is a superset of the members' prefix
// projections (its signature pruning is weaker), and the seeded
// continuation re-validates seeds and enumerates only genuine full matches
// — spurious prefix matches simply complete to nothing.
func EnumerateGrouped(ctx context.Context, g graph.Reader, groups []PatternGroup, emit func(int, Assignment) bool) (GroupStats, error) {
	var st GroupStats

	// Bucket groups into candidate families by their first two frames.
	var keys []string
	families := make(map[string][]groupRun)
	var solo []groupRun
	for gi, pg := range groups {
		run := groupRun{gi: gi}
		if pg.Plan != nil {
			run.order = pg.Plan.DefaultOrder()
		} else {
			run.order = DefaultOrder(pg.Pattern)
		}
		if len(run.order) < 2 {
			solo = append(solo, run)
			continue
		}
		run.frames = pg.Pattern.OrderFrames(run.order)
		key := frameKey(run.frames[0]) + "\x00" + frameKey(run.frames[1])
		if _, seen := families[key]; !seen {
			keys = append(keys, key)
		}
		families[key] = append(families[key], run)
	}

	for _, key := range keys {
		fam := families[key]
		if len(fam) < 2 {
			solo = append(solo, fam...)
			continue
		}
		stop, err := enumerateFamily(ctx, g, groups, fam, emit, &st)
		if stop || err != nil {
			return st, err
		}
	}
	for _, run := range solo {
		pg := groups[run.gi]
		s := NewSearch(pg.Pattern, g, Options{Plan: pg.Plan, Ctx: ctx})
		for {
			h, ok := s.Next()
			if !ok {
				break
			}
			if !emit(run.gi, h) {
				return st, nil
			}
		}
		if err := s.Err(); err != nil {
			return st, err
		}
	}
	return st, nil
}

// enumerateFamily runs one prefix family: the shared prefix pattern is
// enumerated once, and each prefix match seeds every member's continuation.
func enumerateFamily(ctx context.Context, g graph.Reader, groups []PatternGroup, fam []groupRun, emit func(int, Assignment) bool, st *GroupStats) (stopped bool, err error) {
	l := len(fam[0].frames)
	for _, m := range fam[1:] {
		if n := pattern.FramePrefixLen(fam[0].frames, m.frames); n < l {
			l = n
		}
	}
	// The bucket key guarantees l ≥ 2.
	st.Families++
	st.SharedDepth += l

	// Materialize the shared prefix as a pattern of its own: variable i is
	// order position i, so the identity order enumerates prefix tuples in
	// the same lexicographic order every member's standalone search uses.
	prefix := pattern.New()
	prefixOrder := make([]pattern.Var, l)
	for i := 0; i < l; i++ {
		prefixOrder[i] = prefix.AddVar(fmt.Sprintf("p%d", i), fam[0].frames[i].Label)
	}
	for i, f := range fam[0].frames[:l] {
		for _, fe := range f.Edges {
			if fe.Out {
				prefix.AddEdge(pattern.Var(i), pattern.Var(fe.Pos), fe.Label)
			} else {
				prefix.AddEdge(pattern.Var(fe.Pos), pattern.Var(i), fe.Label)
			}
		}
	}

	ps := NewSearch(prefix, g, Options{Order: prefixOrder, Ctx: ctx})
	for {
		ph, ok := ps.Next()
		if !ok {
			break
		}
		st.PrefixMatches++
		for _, m := range fam {
			pg := groups[m.gi]
			seed := NewAssignment(pg.Pattern.NumVars())
			for i := 0; i < l; i++ {
				seed[m.order[i]] = ph[i]
			}
			s := NewSearch(pg.Pattern, g, Options{Order: m.order, Seed: seed, Plan: pg.Plan, Ctx: ctx})
			for {
				h, ok := s.Next()
				if !ok {
					break
				}
				if !emit(m.gi, h) {
					return true, nil
				}
			}
			if err := s.Err(); err != nil {
				return false, err
			}
		}
	}
	return false, ps.Err()
}
