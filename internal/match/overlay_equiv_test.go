package match_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// applyMirroredOps drives one random update stream into both the mutable
// graph and the delta: adds (nodes, edges), removals (edges, nodes) and
// attribute rewrites, with identical arguments on both sides.
func applyMirroredOps(rng *rand.Rand, mirror *graph.Graph, d *graph.Delta, ops int, nodeLabels, edgeLabels []string) {
	alive := func() (graph.NodeID, bool) {
		for try := 0; try < 20; try++ {
			v := graph.NodeID(rng.Intn(mirror.NumNodes()))
			if mirror.Alive(v) {
				return v, true
			}
		}
		return 0, false
	}
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 15:
			l := nodeLabels[rng.Intn(len(nodeLabels))]
			mirror.AddNode(l)
			d.AddNode(l)
		case r < 50:
			from, ok1 := alive()
			to, ok2 := alive()
			if !ok1 || !ok2 {
				continue
			}
			l := edgeLabels[rng.Intn(len(edgeLabels))]
			mirror.AddEdge(from, to, l)
			d.AddEdge(from, to, l)
		case r < 70:
			v, ok := alive()
			if !ok {
				continue
			}
			es := mirror.Out(v)
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			mirror.RemoveEdge(e.From, e.To, e.Label)
			d.RemoveEdge(e.From, e.To, e.Label)
		case r < 88:
			v, ok := alive()
			if !ok {
				continue
			}
			a, val := fmt.Sprintf("a%d", rng.Intn(3)), fmt.Sprintf("u%d", rng.Intn(4))
			mirror.SetAttr(v, a, val)
			d.SetAttr(v, a, val)
		default:
			v, ok := alive()
			if !ok {
				continue
			}
			mirror.RemoveNode(v)
			d.RemoveNode(v)
		}
	}
}

// randomPattern draws a small connected-ish multigraph pattern, the same
// shape family the frozen equivalence tests use.
func randomPattern(rng *rand.Rand, nodeLabels, edgeLabels []string) *pattern.Pattern {
	p := pattern.New()
	k := 2 + rng.Intn(3)
	for v := 0; v < k; v++ {
		p.AddVar(fmt.Sprintf("x%d", v), nodeLabels[rng.Intn(len(nodeLabels))])
	}
	for v := 1; v < k; v++ {
		p.AddEdge(pattern.Var(rng.Intn(v)), pattern.Var(v), edgeLabels[rng.Intn(len(edgeLabels))])
	}
	for e := 0; e < rng.Intn(3); e++ {
		p.AddEdge(pattern.Var(rng.Intn(k)), pattern.Var(rng.Intn(k)), edgeLabels[rng.Intn(len(edgeLabels))])
	}
	return p
}

// TestOverlayMatchEquivalence is the update-stream half of the
// overlay-equivalence property at the matching layer: after any random
// update stream, FindAll over the Overlay — and over the Refreeze output —
// enumerates exactly the match set of a mutable graph that applied the same
// stream. Tombstoned nodes, extended ID spaces and delta-new labels all ride
// through the same Reader code paths the engines use.
func TestOverlayMatchEquivalence(t *testing.T) {
	nodeLabels := []string{"a", "b", graph.Wildcard}
	edgeLabels := []string{"e", "f", graph.Wildcard}
	total, nonEmpty := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mirror := graph.New()
		const n = 12
		for i := 0; i < n; i++ {
			mirror.AddNode(nodeLabels[rng.Intn(len(nodeLabels))])
		}
		for i := 0; i < 3*n; i++ {
			mirror.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), edgeLabels[rng.Intn(len(edgeLabels))])
		}
		base := mirror.Frozen()
		d := graph.NewDelta(base)
		applyMirroredOps(rng, mirror, d, 2+rng.Intn(2*n), nodeLabels, edgeLabels)
		refrozen := base.Refreeze(d)
		// Derived after the Refreeze: snapshot readers die at the epoch
		// boundary, and the delta itself is untouched by the merge.
		overlay := d.Overlay()
		for i := 0; i < 8; i++ {
			p := randomPattern(rng, nodeLabels, edgeLabels)
			ctx := fmt.Sprintf("seed=%d pattern#%d %s", seed, i, p)
			mut := matchSet(p, mirror, match.Options{})
			diffSets(t, ctx+" (overlay vs mutable)", matchSet(p, overlay, match.Options{}), mut)
			diffSets(t, ctx+" (refrozen vs mutable)", matchSet(p, refrozen, match.Options{}), mut)
			total++
			if len(mut) > 0 {
				nonEmpty++
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatalf("all %d random instances had empty match sets; workload too sparse to be meaningful", total)
	}
}

// TestScopedRootCandidates pins the delta-scoping primitive: running the
// search with RootCandidates restricted to a neighborhood enumerates
// exactly the full matches whose root lies inside it.
func TestScopedRootCandidates(t *testing.T) {
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"e", "f"}
	checked := 0
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 40))
		g := graph.New()
		const n = 25
		for i := 0; i < n; i++ {
			g.AddNode(nodeLabels[rng.Intn(len(nodeLabels))])
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), edgeLabels[rng.Intn(len(edgeLabels))])
		}
		f := g.Frozen()
		for i := 0; i < 5; i++ {
			p := randomPattern(rng, nodeLabels, edgeLabels)
			seeds := []graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
			hood := match.MultiSourceNeighborhood(f, seeds, 1+rng.Intn(2))
			order := match.DefaultOrder(p)
			cands := match.ScopedRootCandidates(p, f, order, hood)
			scoped := match.FindAllOpts(p, f, match.Options{RootCandidates: cands})
			var want []match.Assignment
			for _, h := range match.FindAll(p, f) {
				if hood[h[order[0]]] {
					want = append(want, h)
				}
			}
			if len(scoped) != len(want) {
				t.Fatalf("seed=%d pattern#%d: scoped found %d matches, want %d", seed, i, len(scoped), len(want))
			}
			for j := range want {
				for v := range want[j] {
					if scoped[j][v] != want[j][v] {
						t.Fatalf("seed=%d pattern#%d: match %d diverges", seed, i, j)
					}
				}
			}
			checked += len(want)
		}
	}
	if checked == 0 {
		t.Fatal("no scoped matches compared; test is vacuous")
	}
}
