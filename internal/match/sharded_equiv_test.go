package match_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// TestShardedMatchEquivalenceGen asserts, property-style, that the per-shard
// root-candidate fan-out enumerates exactly the same homomorphisms as the
// flat frozen search, in the same order, on random gen workloads — across
// shard and worker counts.
func TestShardedMatchEquivalenceGen(t *testing.T) {
	profiles := dataset.All()
	total, nonEmpty := 0, 0
	for seed := int64(1); seed <= 4; seed++ {
		prof := profiles[int(seed)%len(profiles)]
		gr := gen.New(gen.Config{N: 10, K: 4, L: 2, Profile: prof, WildcardRate: 0.3, Seed: seed})
		g := gr.ConsistentGraph(40)
		f := g.Frozen()
		for _, k := range []int{1, 3, 8} {
			s := f.Sharded(k)
			for i := 0; i < 6; i++ {
				p := gr.Pattern()
				ctx := fmt.Sprintf("seed=%d k=%d pattern#%d %s", seed, k, i, p)
				flat := match.FindAll(p, f)
				for _, workers := range []int{1, 4} {
					fanned := match.FindAllSharded(p, s, workers, match.Options{})
					if len(fanned) != len(flat) {
						t.Fatalf("%s workers=%d: %d matches, want %d", ctx, workers, len(fanned), len(flat))
					}
					for j := range flat {
						for v := range flat[j] {
							if fanned[j][v] != flat[j][v] {
								t.Fatalf("%s workers=%d: match %d diverges: %v vs %v", ctx, workers, j, fanned[j], flat[j])
							}
						}
					}
					if c := match.CountSharded(p, s, workers, match.Options{}); c != len(flat) {
						t.Fatalf("%s workers=%d: CountSharded=%d, want %d", ctx, workers, c, len(flat))
					}
				}
				total++
				if len(flat) > 0 {
					nonEmpty++
				}
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatalf("all %d random instances had empty match sets; workload too sparse to be meaningful", total)
	}
}

// TestShardedMatchEquivalenceUniform repeats the property on uniformly
// random dense multigraphs (parallel edges, self-loops, literal wildcard
// labels), with a simulation filter layered on to check composition.
func TestShardedMatchEquivalenceUniform(t *testing.T) {
	nodeLabels := []string{"a", "b", graph.Wildcard}
	edgeLabels := []string{"e", "f", graph.Wildcard}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		const n = 12
		for i := 0; i < n; i++ {
			g.AddNode(nodeLabels[rng.Intn(len(nodeLabels))])
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), edgeLabels[rng.Intn(len(edgeLabels))])
		}
		f := g.Frozen()
		s := f.Sharded(4)
		for i := 0; i < 6; i++ {
			p := pattern.New()
			k := 2 + rng.Intn(3)
			for v := 0; v < k; v++ {
				p.AddVar(fmt.Sprintf("x%d", v), nodeLabels[rng.Intn(len(nodeLabels))])
			}
			for v := 1; v < k; v++ {
				p.AddEdge(pattern.Var(rng.Intn(v)), pattern.Var(v), edgeLabels[rng.Intn(len(edgeLabels))])
			}
			for e := 0; e < rng.Intn(3); e++ {
				p.AddEdge(pattern.Var(rng.Intn(k)), pattern.Var(rng.Intn(k)), edgeLabels[rng.Intn(len(edgeLabels))])
			}
			ctx := fmt.Sprintf("seed=%d pattern#%d %s", seed, i, p)
			diffSets(t, ctx, matchSetOf(match.FindAllSharded(p, s, 3, match.Options{})), matchSet(p, f, match.Options{}))

			// With the simulation pre-filter layered on, as ParSat uses it.
			if sim := match.Simulate(p, f); sim != nil {
				opts := match.Options{Filter: sim.Has}
				diffSets(t, ctx+" (filtered)",
					matchSetOf(match.FindAllSharded(p, s, 3, opts)), matchSet(p, f, opts))
			}
		}
	}
}

// TestRootCandidatesPartition pins the Options.RootCandidates contract
// directly: searches over any partition of the root candidate list
// enumerate the full match set exactly once, and an empty part yields
// nothing.
func TestRootCandidatesPartition(t *testing.T) {
	gr := gen.New(gen.Config{N: 10, K: 4, L: 2, WildcardRate: 0.2, Seed: 9})
	g := gr.ConsistentGraph(30)
	f := g.Frozen()
	p := gr.Pattern()
	order := match.DefaultOrder(p)
	if len(order) == 0 {
		t.Skip("degenerate pattern")
	}
	all := f.CandidateNodes(p.Label(order[0]))
	flat := matchSet(p, f, match.Options{})
	var union []match.Assignment
	// Split candidates into three uneven parts (some possibly empty).
	for i := 0; i < 3; i++ {
		lo, hi := i*len(all)/3, (i+1)*len(all)/3
		part := all[lo:hi]
		union = append(union, match.FindAllOpts(p, f, match.Options{RootCandidates: part})...)
	}
	diffSets(t, "3-way root partition", matchSetOf(union), flat)
	if got := match.FindAllOpts(p, f, match.Options{RootCandidates: []graph.NodeID{}}); len(got) != 0 {
		t.Fatalf("empty root part produced %d matches", len(got))
	}
}

// TestShardedFanOutWithSeedFallsBack pins the Seed guard: the fan-out
// cannot partition a seeded search (the root frame generates from the
// seeded neighbor, not the label index), so it must degrade to one
// sequential search — never duplicate the match set per shard part.
func TestShardedFanOutWithSeedFallsBack(t *testing.T) {
	gr := gen.New(gen.Config{N: 10, K: 4, L: 2, WildcardRate: 0.2, Seed: 9})
	g := gr.ConsistentGraph(30)
	f := g.Frozen()
	s := f.Sharded(4)
	checked := 0
	for i := 0; i < 8; i++ {
		p := gr.Pattern()
		pivots := p.Pivot(f)
		pv := pivots[0]
		for _, z := range f.CandidateNodes(p.Label(pv)) {
			seed := match.NewAssignment(p.NumVars())
			seed[pv] = z
			opts := match.Options{Order: match.PivotedOrder(p, pivots), Seed: seed}
			flat := match.FindAllOpts(p, f, opts)
			fanned := match.FindAllSharded(p, s, 3, opts)
			if len(fanned) != len(flat) {
				t.Fatalf("pattern#%d pivot=%d: seeded fan-out found %d matches, flat %d", i, z, len(fanned), len(flat))
			}
			if c := match.CountSharded(p, s, 3, opts); c != len(flat) {
				t.Fatalf("pattern#%d pivot=%d: seeded CountSharded=%d, want %d", i, z, c, len(flat))
			}
			if len(flat) > 0 {
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no seeded instance had matches; test is vacuous")
	}
}

// matchSetOf canonicalizes an already-enumerated assignment list the way
// matchSet does.
func matchSetOf(hs []match.Assignment) []string {
	out := make([]string, 0, len(hs))
	for _, h := range hs {
		out = append(out, fmt.Sprint(h))
	}
	sort.Strings(out)
	return out
}
