// Parallel candidate enumeration over sharded snapshots. The root variable
// of a search partitions the match set: every homomorphism assigns the root
// to exactly one candidate, so splitting the root candidate list and running
// one independent Search per part enumerates each match exactly once. A
// sharded snapshot provides the natural parts — each shard's slice of the
// label index — and, because shards are ascending ID ranges, concatenating
// the per-shard results in shard order reproduces the sequential
// enumeration order exactly (pinned by the sharded equivalence tests).
package match

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// shardParts slices the root variable's candidate set per shard. Shards
// owning no candidates contribute no part. A nil result means the fan-out
// does not apply and the caller must run a single sequential search: the
// pattern has no variables, no candidates exist, or a Seed is present —
// a seeded search generates the root frame from the seeded neighbor's
// adjacency, so partitioning the label candidates would enumerate the full
// seeded match set once per part.
func shardParts(p *pattern.Pattern, sv graph.ShardedView, opts Options) [][]graph.NodeID {
	if opts.Seed != nil {
		return nil
	}
	order := opts.Order
	if order == nil {
		order = DefaultOrder(p)
	}
	if len(order) == 0 {
		return nil
	}
	label := p.Label(order[0])
	s, ok := sv.(*graph.Sharded)
	if !ok {
		// Unknown ShardedView implementation: one part per shard is not
		// recoverable, fall back to a single global part.
		return [][]graph.NodeID{sv.CandidateNodes(label)}
	}
	// One exact-size buffer backs every part: per-shard LabelFrequency is
	// an exact owned-live count, so the full-capacity sub-slices cannot
	// grow into a neighbouring part and the per-shard copies collapse into
	// a single allocation.
	total := 0
	for i := 0; i < s.ShardCount(); i++ {
		total += s.Shard(i).LabelFrequency(label)
	}
	if total == 0 {
		return nil
	}
	buf := make([]graph.NodeID, 0, total)
	var parts [][]graph.NodeID
	for i := 0; i < s.ShardCount(); i++ {
		start := len(buf)
		buf = s.Shard(i).AppendCandidates(buf, label)
		if len(buf) > start {
			parts = append(parts, buf[start:len(buf):len(buf)])
		}
	}
	return parts
}

// forEachPart runs body(i) for every part index across up to workers
// goroutines.
func forEachPart(parts [][]graph.NodeID, workers int, body func(int)) {
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int, len(parts))
	for i := range parts {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Panic isolation: capture the first worker panic and re-raise
			// it on the caller's goroutine after the join, so the engine's
			// recover guard (or the test binary) sees it instead of the
			// process dying on an unattended goroutine.
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for i := range jobs {
				body(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// FindAllSharded enumerates every homomorphism of p into the sharded
// snapshot with up to workers goroutines, one search per shard's slice of
// the root candidate set. The result equals FindAll on the flat snapshot,
// in the same order. Option combinations the fan-out cannot partition
// (e.g. a Seed) degrade to a single sequential search, never to wrong
// results.
func FindAllSharded(p *pattern.Pattern, sv graph.ShardedView, workers int, opts Options) []Assignment {
	parts := shardParts(p, sv, opts)
	if len(parts) == 0 {
		return FindAllOpts(p, sv, opts)
	}
	results := make([][]Assignment, len(parts))
	forEachPart(parts, workers, func(i int) {
		po := opts
		po.RootCandidates = parts[i]
		results[i] = FindAllOpts(p, sv, po)
	})
	var out []Assignment
	for _, part := range results {
		out = append(out, part...)
	}
	return out
}

// CountSharded is FindAllSharded without materializing matches.
func CountSharded(p *pattern.Pattern, sv graph.ShardedView, workers int, opts Options) int {
	parts := shardParts(p, sv, opts)
	if len(parts) == 0 {
		return NewSearch(p, sv, opts).CountAll()
	}
	counts := make([]int, len(parts))
	forEachPart(parts, workers, func(i int) {
		po := opts
		po.RootCandidates = parts[i]
		counts[i] = NewSearch(p, sv, po).CountAll()
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// FindAllOpts is FindAll with options (FindAll predates Options-carrying
// call sites and keeps its one-argument shape for the tests that use it).
func FindAllOpts(p *pattern.Pattern, g graph.Reader, opts Options) []Assignment {
	s := NewSearch(p, g, opts)
	var out []Assignment
	for {
		h, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, h)
	}
}
