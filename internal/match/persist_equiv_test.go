package match_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/match"
)

// TestPersistMatchEquivalence is the persistence property at the matching
// layer: a snapshot reloaded from its binary image enumerates exactly the
// match sets of the original, and a compacted snapshot enumerates exactly
// the original's match sets with every node ID translated through the remap.
func TestPersistMatchEquivalence(t *testing.T) {
	nodeLabels := []string{"a", "b", graph.Wildcard}
	edgeLabels := []string{"e", "f", graph.Wildcard}
	total, nonEmpty := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 70))
		mirror := graph.New()
		const n = 14
		for i := 0; i < n; i++ {
			mirror.AddNode(nodeLabels[rng.Intn(len(nodeLabels))])
		}
		for i := 0; i < 3*n; i++ {
			mirror.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), edgeLabels[rng.Intn(len(edgeLabels))])
		}
		base := mirror.Frozen()
		d := graph.NewDelta(base)
		applyMirroredOps(rng, mirror, d, 2+rng.Intn(2*n), nodeLabels, edgeLabels)
		for i := 0; i < 2; i++ { // guarantee tombstones for the compaction half
			v := graph.NodeID(rng.Intn(mirror.NumNodes()))
			if mirror.Alive(v) {
				mirror.RemoveNode(v)
				d.RemoveNode(v)
			}
		}
		f := base.Refreeze(d)

		var buf bytes.Buffer
		if err := f.WriteSnapshot(&buf); err != nil {
			t.Fatalf("seed=%d: WriteSnapshot: %v", seed, err)
		}
		loaded, err := graph.ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed=%d: ReadSnapshot: %v", seed, err)
		}
		compacted, remap := f.Compact()

		for i := 0; i < 8; i++ {
			p := randomPattern(rng, nodeLabels, edgeLabels)
			ctx := fmt.Sprintf("seed=%d pattern#%d %s", seed, i, p)
			want := matchSet(p, f, match.Options{})
			diffSets(t, ctx+" (loaded vs original)", matchSet(p, loaded, match.Options{}), want)

			var remapped []string
			for _, h := range match.FindAll(p, f) {
				hr := make(match.Assignment, len(h))
				for j, v := range h {
					if hr[j] = remap.Of(v); hr[j] == graph.InvalidNode {
						t.Fatalf("%s: match %v binds dead node %d", ctx, h, v)
					}
				}
				remapped = append(remapped, fmt.Sprint(hr))
			}
			sort.Strings(remapped)
			diffSets(t, ctx+" (compacted vs remapped original)", matchSet(p, compacted, match.Options{}), remapped)

			total++
			if len(want) > 0 {
				nonEmpty++
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatalf("all %d random instances had empty match sets; workload too sparse to be meaningful", total)
	}
}
