package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// triangleData: v0 -e-> v1 -e-> v2 -e-> v0, all labeled "n".
func triangleData() *graph.Graph {
	g := graph.New()
	a := g.AddNode("n")
	b := g.AddNode("n")
	c := g.AddNode("n")
	g.AddEdge(a, b, "e")
	g.AddEdge(b, c, "e")
	g.AddEdge(c, a, "e")
	return g
}

func edgePattern(fromLabel, toLabel, edgeLabel string) *pattern.Pattern {
	p := pattern.New()
	x := p.AddVar("x", fromLabel)
	y := p.AddVar("y", toLabel)
	p.AddEdge(x, y, edgeLabel)
	return p
}

func TestFindAllSimpleEdge(t *testing.T) {
	g := triangleData()
	p := edgePattern("n", "n", "e")
	ms := FindAll(p, g)
	if len(ms) != 3 {
		t.Fatalf("edge pattern in triangle: %d matches, want 3", len(ms))
	}
	for _, h := range ms {
		if !g.HasEdge(h[0], h[1], "e") {
			t.Errorf("reported match %v has no edge", h)
		}
	}
}

func TestHomomorphismAllowsNonInjective(t *testing.T) {
	// Data: single node with a self-loop. Pattern: x -e-> y (two vars).
	// Under homomorphism x and y may both map to the node.
	g := graph.New()
	a := g.AddNode("n")
	g.AddEdge(a, a, "e")
	p := edgePattern("n", "n", "e")
	ms := FindAll(p, g)
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1 (x,y both to the loop node)", len(ms))
	}
	if ms[0][0] != a || ms[0][1] != a {
		t.Errorf("match = %v", ms[0])
	}
}

func TestWildcardSemantics(t *testing.T) {
	g := graph.New()
	a := g.AddNode("car")
	b := g.AddNode(graph.Wildcard) // a wildcard node in a canonical graph
	g.AddEdge(a, b, "has")

	// Wildcard pattern node matches both labels.
	p := pattern.New()
	x := p.AddVar("x", graph.Wildcard)
	_ = x
	if got := len(FindAll(p, g)); got != 2 {
		t.Errorf("wildcard var matches = %d, want 2", got)
	}
	// Concrete pattern label does not match the '_' data node.
	q := pattern.New()
	q.AddVar("x", "car")
	if got := len(FindAll(q, g)); got != 1 {
		t.Errorf("car matches = %d, want 1", got)
	}
	// Wildcard edge label matches any edge.
	r := pattern.New()
	rx := r.AddVar("x", "car")
	ry := r.AddVar("y", graph.Wildcard)
	r.AddEdge(rx, ry, graph.Wildcard)
	if got := len(FindAll(r, g)); got != 1 {
		t.Errorf("wildcard edge matches = %d, want 1", got)
	}
}

func TestEdgeLabelRespected(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("n"), g.AddNode("n")
	g.AddEdge(a, b, "likes")
	p := edgePattern("n", "n", "hates")
	if got := len(FindAll(p, g)); got != 0 {
		t.Errorf("wrong-label matches = %d, want 0", got)
	}
}

func TestDirectionRespected(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b, "e")
	p := edgePattern("b", "a", "e") // asks for b -> a, which does not exist
	if got := len(FindAll(p, g)); got != 0 {
		t.Errorf("reversed matches = %d, want 0", got)
	}
}

func TestCyclicPattern(t *testing.T) {
	// Paper Q1: x -locatedIn-> y, y -partOf-> x (a 2-cycle).
	g := graph.New()
	ap := g.AddNode("place")
	bp := g.AddNode("place")
	cp := g.AddNode("place")
	g.AddEdge(ap, bp, "locatedIn")
	g.AddEdge(bp, ap, "partOf")
	g.AddEdge(bp, cp, "locatedIn") // no back-edge: not part of a cycle match
	p := pattern.New()
	x := p.AddVar("x", "place")
	y := p.AddVar("y", "place")
	p.AddEdge(x, y, "locatedIn")
	p.AddEdge(y, x, "partOf")
	ms := FindAll(p, g)
	if len(ms) != 1 {
		t.Fatalf("cyclic matches = %d, want 1", len(ms))
	}
	if ms[0][x] != ap || ms[0][y] != bp {
		t.Errorf("match = %v", ms[0])
	}
}

func TestSeededSearch(t *testing.T) {
	g := triangleData()
	p := edgePattern("n", "n", "e")
	seed := NewAssignment(2)
	seed[0] = 1 // pin x to node 1
	s := NewSearch(p, g, Options{Seed: seed, Order: []pattern.Var{0, 1}})
	var got []Assignment
	for {
		h, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, h)
	}
	if len(got) != 1 || got[0][0] != 1 || got[0][1] != 2 {
		t.Fatalf("seeded matches = %v, want [[1 2]]", got)
	}
}

func TestSeedViolatingLabelYieldsNothing(t *testing.T) {
	g := graph.New()
	g.AddNode("a")
	g.AddNode("b")
	p := pattern.New()
	p.AddVar("x", "a")
	seed := NewAssignment(1)
	seed[0] = 1 // node 1 has label b
	s := NewSearch(p, g, Options{Seed: seed})
	if _, ok := s.Next(); ok {
		t.Fatal("label-violating seed produced a match")
	}
}

func TestDisconnectedPatternCrossProduct(t *testing.T) {
	g := graph.New()
	g.AddNode("a")
	g.AddNode("a")
	g.AddNode("b")
	g.AddNode("b")
	g.AddNode("b")
	p := pattern.New()
	p.AddVar("x", "a")
	p.AddVar("y", "b")
	if got := len(FindAll(p, g)); got != 6 {
		t.Errorf("cross product matches = %d, want 6", got)
	}
}

func TestPivotRestrictionConfinesMatches(t *testing.T) {
	// Two disjoint triangles; pivoting in one must not match the other.
	g := triangleData()
	off := g.DisjointUnion(triangleData())
	p := edgePattern("n", "n", "e")
	restrict := PivotRestriction(p, g, 0, off) // pivot x at second triangle's node
	seed := NewAssignment(2)
	seed[0] = off
	s := NewSearch(p, g, Options{Seed: seed, Order: []pattern.Var{0, 1}, Restrict: restrict})
	n := 0
	for {
		h, ok := s.Next()
		if !ok {
			break
		}
		if h[1] < off {
			t.Errorf("match escaped the pivot neighborhood: %v", h)
		}
		n++
	}
	if n != 1 {
		t.Errorf("pivoted matches = %d, want 1", n)
	}
}

func TestSplitPreservesMatchSet(t *testing.T) {
	// A star graph: center "c" with many leaves; pattern c->leaf gives many
	// branches at depth 1, good for splitting.
	g := graph.New()
	c := g.AddNode("c")
	for i := 0; i < 8; i++ {
		l := g.AddNode("l")
		g.AddEdge(c, l, "e")
	}
	p := edgePattern("c", "l", "e")

	baseline := len(FindAll(p, g))
	if baseline != 8 {
		t.Fatalf("baseline = %d, want 8", baseline)
	}

	s := NewSearch(p, g, Options{})
	// Pull two matches, then split.
	var collected []Assignment
	for i := 0; i < 2; i++ {
		h, ok := s.Next()
		if !ok {
			t.Fatal("premature exhaustion")
		}
		collected = append(collected, h)
	}
	seeds := s.Split()
	if len(seeds) == 0 {
		t.Fatal("nothing split")
	}
	// Finish the truncated original search.
	for {
		h, ok := s.Next()
		if !ok {
			break
		}
		collected = append(collected, h)
	}
	// Run each split-off branch as its own search.
	for _, seed := range seeds {
		sub := NewSearch(p, g, Options{Seed: seed})
		for {
			h, ok := sub.Next()
			if !ok {
				break
			}
			collected = append(collected, h)
		}
	}
	if len(collected) != baseline {
		t.Fatalf("split lost/duplicated matches: got %d, want %d", len(collected), baseline)
	}
	seen := map[graph.NodeID]bool{}
	for _, h := range collected {
		if seen[h[1]] {
			t.Fatalf("duplicate match for leaf %d", h[1])
		}
		seen[h[1]] = true
	}
}

func TestSplitOnFreshSearch(t *testing.T) {
	g := triangleData()
	p := edgePattern("n", "n", "e")
	s := NewSearch(p, g, Options{})
	if seeds := s.Split(); seeds != nil {
		t.Fatalf("split before Next returned %d seeds; stack not built yet", len(seeds))
	}
	// After one Next, splitting and resuming must still cover everything.
	if _, ok := s.Next(); !ok {
		t.Fatal("no first match")
	}
	seeds := s.Split()
	total := 1
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		total++
	}
	for _, seed := range seeds {
		sub := NewSearch(p, g, Options{Seed: seed})
		total += sub.CountAll()
	}
	if total != 3 {
		t.Fatalf("total after split = %d, want 3", total)
	}
}

// Property: on random graphs, splitting at a random point preserves the
// exact multiset of matches of a 2-variable pattern.
func TestQuickSplitEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 3 + rng.Intn(8)
		for i := 0; i < n; i++ {
			g.AddNode("n")
		}
		for i := 0; i < n*2; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "e")
		}
		p := pattern.New()
		x := p.AddVar("x", "n")
		y := p.AddVar("y", "n")
		z := p.AddVar("z", "n")
		p.AddEdge(x, y, "e")
		p.AddEdge(y, z, "e")

		want := len(FindAll(p, g))
		s := NewSearch(p, g, Options{})
		got := 0
		pulls := rng.Intn(4)
		for i := 0; i < pulls; i++ {
			if _, ok := s.Next(); !ok {
				break
			}
			got++
		}
		var queue []Assignment
		queue = append(queue, s.Split()...)
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			got++
		}
		for len(queue) > 0 {
			sd := queue[0]
			queue = queue[1:]
			sub := NewSearch(p, g, Options{Seed: sd})
			got += sub.CountAll()
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimulatePrefilter(t *testing.T) {
	g := triangleData()
	p := edgePattern("n", "n", "e")
	sim := Simulate(p, g)
	if sim == nil {
		t.Fatal("simulation empty though homomorphism exists")
	}
	for v := 0; v < p.NumVars(); v++ {
		if got := sim.Count(pattern.Var(v)); got != 3 {
			t.Errorf("sim(%d) = %d nodes, want 3", v, got)
		}
	}
	// A pattern demanding a missing edge label cannot simulate.
	q := edgePattern("n", "n", "missing")
	if Simulate(q, g) != nil {
		t.Error("simulation nonempty though no homomorphism exists")
	}
}

func TestSimulateSoundness(t *testing.T) {
	// Every homomorphism image must lie inside the simulation sets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 3 + rng.Intn(6)
		labels := []string{"a", "b"}
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(2)])
		}
		for i := 0; i < n*2; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "e")
		}
		p := pattern.New()
		x := p.AddVar("x", labels[rng.Intn(2)])
		y := p.AddVar("y", labels[rng.Intn(2)])
		p.AddEdge(x, y, "e")
		sim := Simulate(p, g)
		for _, h := range FindAll(p, g) {
			if sim == nil {
				return false
			}
			if !sim.Has(x, h[x]) || !sim.Has(y, h[y]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
