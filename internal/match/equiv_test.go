package match_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// matchSet enumerates every homomorphism under the given options and
// canonicalizes the result as a sorted list of assignment strings, so two
// enumerations can be compared independent of discovery order.
func matchSet(p *pattern.Pattern, g graph.Reader, opts match.Options) []string {
	s := match.NewSearch(p, g, opts)
	var out []string
	for {
		h, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, fmt.Sprint(h))
	}
	sort.Strings(out)
	return out
}

func diffSets(t *testing.T, ctx string, indexed, scan []string) {
	t.Helper()
	if len(indexed) != len(scan) {
		t.Errorf("%s: indexed found %d matches, scan found %d", ctx, len(indexed), len(scan))
		return
	}
	for i := range indexed {
		if indexed[i] != scan[i] {
			t.Errorf("%s: match set diverges at %d: indexed %s, scan %s", ctx, i, indexed[i], scan[i])
			return
		}
	}
}

// TestIndexedScanEquivalenceGen asserts, property-style, that the indexed
// search enumerates exactly the same homomorphism set as the pre-index scan
// path on random gen workloads (dataset-profiled patterns with wildcards
// matched into consistent data graphs).
func TestIndexedScanEquivalenceGen(t *testing.T) {
	profiles := dataset.All()
	total, nonEmpty := 0, 0
	for seed := int64(1); seed <= 6; seed++ {
		prof := profiles[int(seed)%len(profiles)]
		gr := gen.New(gen.Config{N: 10, K: 4, L: 2, Profile: prof, WildcardRate: 0.3, Seed: seed})
		g := gr.ConsistentGraph(40)
		for i := 0; i < 12; i++ {
			p := gr.Pattern()
			ctx := fmt.Sprintf("seed=%d pattern#%d %s", seed, i, p)
			indexed := matchSet(p, g, match.Options{})
			scan := matchSet(p, g, match.Options{Scan: true})
			diffSets(t, ctx, indexed, scan)
			total++
			if len(indexed) > 0 {
				nonEmpty++
			}
		}
	}
	// Guard against the property passing vacuously on all-empty match sets.
	if nonEmpty == 0 {
		t.Fatalf("all %d random instances had empty match sets; workload too sparse to be meaningful", total)
	}
}

// TestIndexedScanEquivalenceUniform repeats the property on uniformly random
// dense multigraphs (small label alphabets force parallel edges, self-loops
// and heavy wildcard overlap — the cases the index must get right).
func TestIndexedScanEquivalenceUniform(t *testing.T) {
	nodeLabels := []string{"a", "b", graph.Wildcard}
	edgeLabels := []string{"e", "f", graph.Wildcard}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		const n = 14
		for i := 0; i < n; i++ {
			g.AddNode(nodeLabels[rng.Intn(len(nodeLabels))])
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), edgeLabels[rng.Intn(len(edgeLabels))])
		}
		for i := 0; i < 8; i++ {
			p := pattern.New()
			k := 2 + rng.Intn(3)
			for v := 0; v < k; v++ {
				p.AddVar(fmt.Sprintf("x%d", v), nodeLabels[rng.Intn(len(nodeLabels))])
			}
			// Connected chain plus random extra edges (possibly loops).
			for v := 1; v < k; v++ {
				p.AddEdge(pattern.Var(rng.Intn(v)), pattern.Var(v), edgeLabels[rng.Intn(len(edgeLabels))])
			}
			for e := 0; e < rng.Intn(3); e++ {
				p.AddEdge(pattern.Var(rng.Intn(k)), pattern.Var(rng.Intn(k)), edgeLabels[rng.Intn(len(edgeLabels))])
			}
			ctx := fmt.Sprintf("seed=%d pattern#%d %s", seed, i, p)
			diffSets(t, ctx, matchSet(p, g, match.Options{}), matchSet(p, g, match.Options{Scan: true}))
		}
	}
}

// TestIndexedScanEquivalenceSeededRestricted covers the reasoning engines'
// actual usage: pivoted units (seeded pivot variable, pivot-neighborhood
// restriction) must enumerate identically with and without the index.
func TestIndexedScanEquivalenceSeededRestricted(t *testing.T) {
	gr := gen.New(gen.Config{N: 10, K: 4, L: 2, WildcardRate: 0.2, Seed: 7})
	g := gr.ConsistentGraph(30)
	checked := 0
	for i := 0; i < 10; i++ {
		p := gr.Pattern()
		pivots := p.Pivot(g)
		pv := pivots[0]
		order := match.PivotedOrder(p, pivots)
		for _, z := range g.CandidateNodes(p.Label(pv)) {
			seed := match.NewAssignment(p.NumVars())
			seed[pv] = z
			restrict := match.PivotRestriction(p, g, pv, z)
			mk := func(scan bool) []string {
				return matchSet(p, g, match.Options{Order: order, Seed: seed.Clone(), Restrict: restrict, Scan: scan})
			}
			diffSets(t, fmt.Sprintf("pattern#%d pivot=%d %s", i, z, p), mk(false), mk(true))
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no pivoted units generated; test is vacuous")
	}
}
