// Compiled literal programs for group evaluation. When several GFDs share
// one pattern, a grouped search enumerates the pattern's matches once and
// evaluates each member's X → Y literals per match; the naive walk fetches
// g.Attr(h[x], "A") again for every literal that mentions x.A. A
// LiteralEval interns every distinct (variable, attribute) pair across the
// whole group into a slot fetched at most once per match, and compiles each
// member's literal sets into slot-index comparisons, so per-match literal
// cost is one attribute lookup per distinct pair actually touched — not one
// per literal occurrence per member.
package match

import (
	"repro/internal/graph"
	"repro/internal/pattern"
)

// LiteralSpec is a pattern-attribute literal in match-level form: x.A = c
// when IsConst, x.A = y.B otherwise. It mirrors the gfd literal without
// importing it — match sits below gfd in the dependency order; core
// translates.
type LiteralSpec struct {
	IsConst bool
	V1      pattern.Var
	A1      string
	Const   string      // IsConst only
	V2      pattern.Var // !IsConst only
	A2      string
}

// MemberLiterals is one group member's antecedent and consequent over the
// shared pattern.
type MemberLiterals struct {
	X []LiteralSpec
	Y []LiteralSpec
}

// litRef is one compiled literal: a slot comparison.
type litRef struct {
	slot1   int
	isConst bool
	constV  string
	slot2   int
}

type memberProg struct {
	x, y []litRef
}

// LiteralEval is the compiled literal program of one pattern group. It is
// immutable after CompileLiterals and safe to share across goroutines; the
// mutable per-match state lives in a LiteralScratch.
type LiteralEval struct {
	slotVar  []pattern.Var
	slotAttr []string
	members  []memberProg
}

// slotKey identifies one interned (variable, attribute) pair.
type slotKey struct {
	v    pattern.Var
	attr string
}

// CompileLiterals interns the distinct (variable, attribute) pairs across
// all members' literals and compiles each member's X → Y sets into slot
// references.
func CompileLiterals(members []MemberLiterals) *LiteralEval {
	e := &LiteralEval{members: make([]memberProg, len(members))}
	slots := make(map[slotKey]int)
	for mi, m := range members {
		prog := &e.members[mi]
		for _, l := range m.X {
			prog.x = append(prog.x, e.compileLit(slots, l))
		}
		for _, l := range m.Y {
			prog.y = append(prog.y, e.compileLit(slots, l))
		}
	}
	return e
}

func (e *LiteralEval) internSlot(slots map[slotKey]int, v pattern.Var, attr string) int {
	key := slotKey{v: v, attr: attr}
	if i, ok := slots[key]; ok {
		return i
	}
	i := len(e.slotVar)
	slots[key] = i
	e.slotVar = append(e.slotVar, v)
	e.slotAttr = append(e.slotAttr, attr)
	return i
}

func (e *LiteralEval) compileLit(slots map[slotKey]int, l LiteralSpec) litRef {
	r := litRef{slot1: e.internSlot(slots, l.V1, l.A1), isConst: l.IsConst}
	if l.IsConst {
		r.constV = l.Const
	} else {
		r.slot2 = e.internSlot(slots, l.V2, l.A2)
	}
	return r
}

// Slots returns the number of interned (variable, attribute) pairs.
func (e *LiteralEval) Slots() int { return len(e.slotVar) }

// LiteralScratch caches slot values for the current match. Not safe for
// concurrent use — each worker keeps its own. Loads are lazy and memoized
// per match via generation stamps, so short-circuited members never pay for
// slots they do not read and Begin costs O(1).
type LiteralScratch struct {
	vals  []string
	ok    []bool
	stamp []uint32
	gen   uint32
}

// NewScratch returns a scratch sized for the program.
func (e *LiteralEval) NewScratch() *LiteralScratch {
	n := len(e.slotVar)
	return &LiteralScratch{
		vals:  make([]string, n),
		ok:    make([]bool, n),
		stamp: make([]uint32, n),
		gen:   1,
	}
}

// Begin starts a new match: previously loaded slot values are forgotten.
func (s *LiteralScratch) Begin() {
	s.gen++
	if s.gen == 0 { // wrapped: stamps may alias, reset them
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
}

// load fetches slot i for the current match, at most once per Begin.
func (s *LiteralScratch) load(e *LiteralEval, g graph.Reader, h Assignment, i int) (string, bool) {
	if s.stamp[i] != s.gen {
		s.vals[i], s.ok[i] = g.Attr(h[e.slotVar[i]], e.slotAttr[i])
		s.stamp[i] = s.gen
	}
	return s.vals[i], s.ok[i]
}

// holds evaluates one compiled literal set with the standard semantics:
// x.A = c holds iff the attribute exists with value c; x.A = y.B iff both
// exist and are equal. Short-circuits on the first failing literal.
func (e *LiteralEval) holds(refs []litRef, g graph.Reader, h Assignment, s *LiteralScratch) bool {
	for _, r := range refs {
		v1, ok1 := s.load(e, g, h, r.slot1)
		if !ok1 {
			return false
		}
		if r.isConst {
			if v1 != r.constV {
				return false
			}
			continue
		}
		v2, ok2 := s.load(e, g, h, r.slot2)
		if !ok2 || v1 != v2 {
			return false
		}
	}
	return true
}

// Violates reports whether member m violates the dependency at match h:
// the antecedent holds and the consequent does not. The caller must bracket
// each new match with scratch.Begin().
func (e *LiteralEval) Violates(m int, g graph.Reader, h Assignment, s *LiteralScratch) bool {
	prog := &e.members[m]
	return e.holds(prog.x, g, h, s) && !e.holds(prog.y, g, h, s)
}

// Literals returns the literal program memoized on the plan under key,
// compiling it with build on first use (or when the key changes — keys are
// compared with ==, so callers pass something stable like the group's first
// GFD). This keeps the compiled program as long-lived as the plan: service
// workloads fetching plans through a PlanCache re-run groups against fresh
// snapshots without recompiling their literal programs.
func (pl *Plan) Literals(key any, build func() *LiteralEval) *LiteralEval {
	pl.litMu.Lock()
	defer pl.litMu.Unlock()
	if pl.litProg == nil || pl.litKey != key {
		pl.litProg = build()
		pl.litKey = key
	}
	return pl.litProg
}
