// Delta-scoped candidate generation. When a graph changes by a small delta,
// the only matches that can appear, vanish, or change their literal
// evaluation are those whose image intersects the touched nodes: a match's
// edges and attributes all live at its image, so an image disjoint from the
// touched set is bitwise-identical in both versions of the graph. Because a
// pattern edge always maps onto a data edge, the image of any match touching
// a node t keeps its root variable within Radius(root) hops of t — so
// restricting the root frame's candidates to the touched set's
// radius-neighborhood (via Options.RootCandidates, the same hook the sharded
// fan-out partitions with) re-enumerates exactly the matches that could have
// changed. core.Revalidate builds incremental GFD revalidation on top.
package match

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// MultiSourceNeighborhood returns the set of nodes within d undirected hops
// of any seed (each seed included), one BFS expanding all seeds together —
// the frontier of the union, not one BFS per seed. Seeds outside the
// graph's ID space are ignored, so a touched set containing nodes added by
// a delta can be probed against the pre-delta graph directly.
func MultiSourceNeighborhood(g graph.Reader, seeds []graph.NodeID, d int) map[graph.NodeID]bool {
	seen := make(map[graph.NodeID]bool, len(seeds))
	frontier := make([]graph.NodeID, 0, len(seeds))
	n := g.NumNodes()
	for _, s := range seeds {
		if s >= 0 && int(s) < n && !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, w := range g.OutByLabelID(u, graph.AnyLabel) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
			for _, w := range g.InByLabelID(u, graph.AnyLabel) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return seen
}

// scopedBitsetRatio is the frequency-to-neighborhood skew beyond which the
// bitset path of ScopedRootCandidates wins: probing |hood| bits plus
// sorting the (≤ |hood|) survivors must undercut walking the label's full
// candidate run with a map lookup per element.
const scopedBitsetRatio = 4

// ScopedRootCandidates returns the candidate list for the first variable of
// order (the root frame) restricted to hood, ascending — ready to pass as
// Options.RootCandidates together with the same Order. The restriction is
// label-consistent by construction: it filters the root label's own
// candidate set. When the snapshot serves a candidate bitset for the root
// label and the neighborhood is much smaller than the label's frequency,
// the filter flips direction — probe each hood member against the bitset
// and sort the survivors, O(|hood|·(1+log|hood|)) instead of O(freq) —
// which is the common shape in revalidation: a small touched set against a
// high-frequency root label.
func ScopedRootCandidates(p *pattern.Pattern, g graph.Reader, order []pattern.Var, hood map[graph.NodeID]bool) []graph.NodeID {
	if len(order) == 0 {
		return nil
	}
	label := p.Label(order[0])
	if bp, ok := g.(graph.BitsetProvider); ok && len(hood)*scopedBitsetRatio < g.LabelFrequency(label) {
		if bs := bp.CandidateBitset(label); bs != nil {
			out := make([]graph.NodeID, 0, len(hood))
			for v := range hood {
				if bs.Test(v) {
					out = append(out, v)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
	}
	cands := g.AppendCandidates(nil, label)
	kept := cands[:0]
	for _, v := range cands {
		if hood[v] {
			kept = append(kept, v)
		}
	}
	return kept
}
