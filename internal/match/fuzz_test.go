package match

import (
	"testing"

	"repro/internal/graph"
)

// operandFromBytes decodes fuzz bytes into an ascending NodeID slice:
// each byte is a non-negative increment (mod 8) on a running value, so
// arbitrary inputs always yield a valid sorted operand and a zero
// increment yields the duplicates the kernel contract must preserve.
func operandFromBytes(b []byte) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(b))
	v := graph.NodeID(0)
	for _, x := range b {
		v += graph.NodeID(x % 8)
		out = append(out, v)
	}
	return out
}

func cloneIDs(ids []graph.NodeID) []graph.NodeID {
	return append([]graph.NodeID(nil), ids...)
}

func idsEqual(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzIntersect pins the kernel contract of intersect.go: merge, both
// gallop directions, the adaptive picker, and the bitset kernel all
// compute base filtered to the values present in list — same elements,
// same order, same multiplicity — on arbitrary sorted operand pairs.
// CI replays the seed corpus deterministically (see ci.yml); run with
// -fuzz=FuzzIntersect to explore.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{})
	f.Add([]byte{}, []byte{1, 1, 2})
	f.Add([]byte{1, 1, 1}, []byte{3})
	f.Add([]byte{5, 0, 0, 2}, []byte{5, 0, 2, 0})
	f.Add([]byte{1}, []byte{0, 1, 1, 2, 3, 4, 5, 6, 7, 1, 1, 1, 2, 3, 0, 0})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 1, 1, 1, 2, 3, 0, 0}, []byte{2, 2})
	f.Add([]byte{7, 7, 7, 7}, []byte{1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, rawBase, rawList []byte) {
		base := operandFromBytes(rawBase)
		list := operandFromBytes(rawList)

		want := intersectSorted(cloneIDs(base), list)

		if got := intersectGallopList(cloneIDs(base), list); !idsEqual(got, want) {
			t.Fatalf("gallop(list) diverges from merge:\nbase %v\nlist %v\nmerge  %v\ngallop %v", base, list, want, got)
		}
		if got := intersectGallopBase(cloneIDs(base), list); !idsEqual(got, want) {
			t.Fatalf("gallop(base) diverges from merge:\nbase %v\nlist %v\nmerge  %v\ngallop %v", base, list, want, got)
		}
		if got := intersectAdaptive(cloneIDs(base), list); !idsEqual(got, want) {
			t.Fatalf("adaptive picker diverges from merge:\nbase %v\nlist %v\nmerge    %v\nadaptive %v", base, list, want, got)
		}

		// Bitset kernel: membership-set semantics — build the set from
		// list, then filter base through it.
		max := graph.NodeID(0)
		for _, n := range list {
			if n > max {
				max = n
			}
		}
		bs := make(graph.Bitset, (int(max)+64)/64)
		for _, n := range list {
			bs[uint(n)>>6] |= 1 << (uint(n) & 63)
		}
		if got := intersectBitset(cloneIDs(base), bs); !idsEqual(got, want) {
			t.Fatalf("bitset kernel diverges from merge:\nbase %v\nlist %v\nmerge  %v\nbitset %v", base, list, want, got)
		}
	})
}
