package match_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// rebuildPattern returns a structurally identical pattern value with fresh
// variable names.
func rebuildPattern(p *pattern.Pattern) *pattern.Pattern {
	q := pattern.New()
	for v := 0; v < p.NumVars(); v++ {
		q.AddVar(fmt.Sprintf("rb%d", v), p.Label(pattern.Var(v)))
	}
	for _, e := range p.Edges() {
		q.AddEdge(e.From, e.To, e.Label)
	}
	q.Freeze()
	return q
}

// orderedMatches enumerates a pattern standalone under its default order,
// keeping enumeration order.
func orderedMatches(p *pattern.Pattern, g graph.Reader) []string {
	s := match.NewSearch(p, g, match.Options{})
	var out []string
	for {
		h, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, fmt.Sprint(h))
	}
	return out
}

// prefixChainPatterns builds a family: patterns sharing a two-frame prefix
// (a -e-> b) that diverge at the third frame.
func prefixChainPatterns() []*pattern.Pattern {
	mk := func(thirdLabel, edgeLabel string) *pattern.Pattern {
		p := pattern.New()
		x := p.AddVar("x", "a")
		y := p.AddVar("y", "b")
		z := p.AddVar("z", thirdLabel)
		p.AddEdge(x, y, "e")
		p.AddEdge(y, z, edgeLabel)
		p.Freeze()
		return p
	}
	return []*pattern.Pattern{mk("c", "f"), mk("d", "f"), mk("c", "g")}
}

// familyGraph holds matches for all three chain patterns.
func familyGraph() *graph.Graph {
	g := graph.New()
	var as, bs, cs, ds []graph.NodeID
	for i := 0; i < 3; i++ {
		as = append(as, g.AddNode("a"))
		bs = append(bs, g.AddNode("b"))
		cs = append(cs, g.AddNode("c"))
		ds = append(ds, g.AddNode("d"))
	}
	for i := 0; i < 3; i++ {
		g.AddEdge(as[i], bs[i], "e")
		g.AddEdge(bs[i], cs[i], "f")
		g.AddEdge(bs[i], ds[(i+1)%3], "f")
		g.AddEdge(bs[i], cs[(i+2)%3], "g")
	}
	return g
}

// TestEnumerateGroupedFamily pins the prefix-family path: distinct patterns
// sharing two leading frames enumerate through one shared prefix search and
// still produce exactly their standalone match sequences, in order.
func TestEnumerateGroupedFamily(t *testing.T) {
	pats := prefixChainPatterns()
	g := familyGraph()
	f := g.Frozen()
	readers := map[string]graph.Reader{"mutable": g, "frozen": f, "sharded": f.Sharded(3)}
	for name, r := range readers {
		groups := make([]match.PatternGroup, len(pats))
		for i, p := range pats {
			groups[i] = match.PatternGroup{Pattern: p}
		}
		got := make([][]string, len(pats))
		st, err := match.EnumerateGrouped(context.Background(), r, groups, func(gi int, h match.Assignment) bool {
			got[gi] = append(got[gi], fmt.Sprint(h))
			return true
		})
		if err != nil {
			t.Fatalf("%s: EnumerateGrouped: %v", name, err)
		}
		if st.Families != 1 {
			t.Fatalf("%s: expected one prefix family, stats %+v", name, st)
		}
		if st.PrefixMatches == 0 {
			t.Fatalf("%s: prefix search found nothing; family sharing was vacuous", name)
		}
		nonEmpty := 0
		for i, p := range pats {
			want := orderedMatches(p, r)
			if len(want) > 0 {
				nonEmpty++
			}
			if fmt.Sprint(got[i]) != fmt.Sprint(want) {
				t.Fatalf("%s pattern#%d: grouped %v, standalone %v", name, i, got[i], want)
			}
		}
		if nonEmpty == 0 {
			t.Fatalf("%s: all patterns empty; test is vacuous", name)
		}
	}
}

// TestEnumerateGroupedGen is the randomized property: on generated pattern
// sets (some rebuilt copies, some genuinely distinct), grouped enumeration
// equals standalone enumeration per group, in order, on every reader tier.
func TestEnumerateGroupedGen(t *testing.T) {
	nonEmpty := 0
	for seed := int64(1); seed <= 5; seed++ {
		gr := gen.New(gen.Config{N: 12, K: 4, L: 2, WildcardRate: 0.2, Seed: seed})
		g := gr.ConsistentGraph(50)
		f := g.Frozen()
		d := graph.NewDelta(f)
		d.AddEdge(0, 1, f.Label(0))
		readers := map[string]graph.Reader{
			"mutable": g, "frozen": f, "sharded": f.Sharded(3), "overlay": d.Overlay(),
		}
		var pats []*pattern.Pattern
		for i := 0; i < 6; i++ {
			p := gr.Pattern()
			pats = append(pats, p, rebuildPattern(p))
		}
		for name, r := range readers {
			groups := make([]match.PatternGroup, len(pats))
			for i, p := range pats {
				groups[i] = match.PatternGroup{Pattern: p}
			}
			got := make([][]string, len(pats))
			_, err := match.EnumerateGrouped(context.Background(), r, groups, func(gi int, h match.Assignment) bool {
				got[gi] = append(got[gi], fmt.Sprint(h))
				return true
			})
			if err != nil {
				t.Fatalf("seed=%d %s: EnumerateGrouped: %v", seed, name, err)
			}
			for i, p := range pats {
				want := orderedMatches(p, r)
				if len(want) > 0 {
					nonEmpty++
				}
				if fmt.Sprint(got[i]) != fmt.Sprint(want) {
					t.Fatalf("seed=%d %s pattern#%d %s: grouped %v, standalone %v",
						seed, name, i, p, got[i], want)
				}
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every generated pattern had an empty match set; property is vacuous")
	}
}

// TestEnumerateGroupedCancel checks cooperative cancellation propagates out
// of both the prefix search and the seeded continuations.
func TestEnumerateGroupedCancel(t *testing.T) {
	pats := prefixChainPatterns()
	g := familyGraph().Frozen()
	ctx, cancel := context.WithCancel(context.Background())
	groups := make([]match.PatternGroup, len(pats))
	for i, p := range pats {
		groups[i] = match.PatternGroup{Pattern: p}
	}
	calls := 0
	_, err := match.EnumerateGrouped(ctx, g, groups, func(int, match.Assignment) bool {
		calls++
		cancel()
		return true
	})
	// The cancellation may land between frame-expansion polls, so either the
	// enumeration finished (tiny graph) or it surfaced the context error;
	// what it must not do is return an error while never having been called.
	if err != nil && calls == 0 {
		t.Fatalf("error %v before any emission", err)
	}
	if err != nil && err != context.Canceled {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestLiteralEval pins the compiled literal program against the naive
// walk semantics: missing attributes fail the literal, constants compare
// by value, variable literals need both sides present and equal — and
// slots are interned (one per distinct pair, not one per occurrence).
func TestLiteralEval(t *testing.T) {
	g := graph.New()
	n0 := g.AddNode("a")
	n1 := g.AddNode("b")
	g.SetAttr(n0, "k", "v")
	g.SetAttr(n1, "k", "v")
	g.SetAttr(n1, "m", "w")

	members := []match.MemberLiterals{
		{ // X: x.k = "v" → Y: y.m = "w"  (holds, no violation)
			X: []match.LiteralSpec{{IsConst: true, V1: 0, A1: "k", Const: "v"}},
			Y: []match.LiteralSpec{{IsConst: true, V1: 1, A1: "m", Const: "w"}},
		},
		{ // X: x.k = y.k → Y: x.m = y.m  (x.m missing → violation)
			X: []match.LiteralSpec{{V1: 0, A1: "k", V2: 1, A2: "k"}},
			Y: []match.LiteralSpec{{V1: 0, A1: "m", V2: 1, A2: "m"}},
		},
		{ // X: x.missing = "q" → Y: anything  (X fails → no violation)
			X: []match.LiteralSpec{{IsConst: true, V1: 0, A1: "missing", Const: "q"}},
			Y: []match.LiteralSpec{{IsConst: true, V1: 0, A1: "k", Const: "other"}},
		},
	}
	e := match.CompileLiterals(members)
	// Distinct pairs: (0,k), (1,m), (1,k), (0,m), (0,missing) = 5.
	if e.Slots() != 5 {
		t.Fatalf("interned %d slots, want 5", e.Slots())
	}
	s := e.NewScratch()
	h := match.Assignment{n0, n1}
	s.Begin()
	want := []bool{false, true, false}
	for m, w := range want {
		if got := e.Violates(m, g, h, s); got != w {
			t.Fatalf("member %d: Violates=%t, want %t", m, got, w)
		}
	}
	// Second match with different bindings must not see stale slots.
	h2 := match.Assignment{n1, n0}
	s.Begin()
	// member 1: X: n1.k = n0.k holds; Y: n1.m = n0.m → n0.m missing → violation.
	if !e.Violates(1, g, h2, s) {
		t.Fatal("stale scratch: member 1 should violate under swapped bindings")
	}
	// member 0: X: n1.k="v" holds; Y: n0.m="w" → missing → violation.
	if !e.Violates(0, g, h2, s) {
		t.Fatal("stale scratch: member 0 should violate under swapped bindings")
	}
}

// TestPlanCacheStructuralHit is the satellite contract: two structurally
// equal but distinct pattern values hit one cached plan, and the shared
// plan serves searches for both values.
func TestPlanCacheStructuralHit(t *testing.T) {
	gr := gen.New(gen.Config{N: 8, K: 3, L: 2, Seed: 7})
	g := gr.ConsistentGraph(30)
	f := g.Frozen()
	p := gr.Pattern()
	q := rebuildPattern(p)
	if p == q || !pattern.StructuralEqual(p, q) {
		t.Fatal("fixture broken: need distinct, structurally equal values")
	}

	cache := match.NewPlanCache()
	pl := cache.Get(p, f)
	if pl2 := cache.Get(q, f); pl2 != pl {
		t.Fatal("structurally equal pattern missed the cached plan")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d plans for one structure, want 1", cache.Len())
	}
	// The shared plan must serve searches for both pattern values, and both
	// must enumerate the same match set.
	a := matchSet(p, f, match.Options{Plan: pl})
	b := matchSet(q, f, match.Options{Plan: pl})
	diffSets(t, "shared plan across equal patterns", a, b)

	// The stale-epoch contract is unchanged by fingerprint keying.
	d := graph.NewDelta(f)
	d.AddEdge(0, 1, f.Label(0))
	nf := f.Refreeze(d)
	expectStalePanic(t, "refreeze via structural key", func() {
		match.NewSearch(q, nf, match.Options{Plan: pl})
	})
	if npl := cache.Get(q, nf); npl == pl {
		t.Fatal("cache served a stale plan across Refreeze")
	}
	if cache.Len() != 1 {
		t.Fatalf("Refreeze grew the cache to %d entries, want in-place replace", cache.Len())
	}
}
