package match_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// TestFrozenMatchEquivalenceGen asserts, property-style, that the indexed
// search enumerates exactly the same homomorphism set on the frozen CSR
// snapshot as on the mutable graph (and as the pre-index scan path), on
// random gen workloads — mirroring equiv_test.go with the representation as
// the axis under test.
func TestFrozenMatchEquivalenceGen(t *testing.T) {
	profiles := dataset.All()
	total, nonEmpty := 0, 0
	for seed := int64(1); seed <= 4; seed++ {
		prof := profiles[int(seed)%len(profiles)]
		gr := gen.New(gen.Config{N: 10, K: 4, L: 2, Profile: prof, WildcardRate: 0.3, Seed: seed})
		g := gr.ConsistentGraph(40)
		f := g.Frozen()
		for i := 0; i < 10; i++ {
			p := gr.Pattern()
			ctx := fmt.Sprintf("seed=%d pattern#%d %s", seed, i, p)
			mutable := matchSet(p, g, match.Options{})
			frozen := matchSet(p, f, match.Options{})
			scan := matchSet(p, g, match.Options{Scan: true})
			diffSets(t, ctx+" (frozen vs mutable)", frozen, mutable)
			diffSets(t, ctx+" (frozen vs scan)", frozen, scan)
			total++
			if len(frozen) > 0 {
				nonEmpty++
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatalf("all %d random instances had empty match sets; workload too sparse to be meaningful", total)
	}
}

// TestFrozenMatchEquivalenceUniform repeats the property on uniformly
// random dense multigraphs (parallel edges, self-loops, literal wildcard
// labels), including the seeded/pivoted usage the reasoning engines rely
// on.
func TestFrozenMatchEquivalenceUniform(t *testing.T) {
	nodeLabels := []string{"a", "b", graph.Wildcard}
	edgeLabels := []string{"e", "f", graph.Wildcard}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		const n = 12
		for i := 0; i < n; i++ {
			g.AddNode(nodeLabels[rng.Intn(len(nodeLabels))])
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), edgeLabels[rng.Intn(len(edgeLabels))])
		}
		f := g.Frozen()
		for i := 0; i < 6; i++ {
			p := pattern.New()
			k := 2 + rng.Intn(3)
			for v := 0; v < k; v++ {
				p.AddVar(fmt.Sprintf("x%d", v), nodeLabels[rng.Intn(len(nodeLabels))])
			}
			for v := 1; v < k; v++ {
				p.AddEdge(pattern.Var(rng.Intn(v)), pattern.Var(v), edgeLabels[rng.Intn(len(edgeLabels))])
			}
			for e := 0; e < rng.Intn(3); e++ {
				p.AddEdge(pattern.Var(rng.Intn(k)), pattern.Var(rng.Intn(k)), edgeLabels[rng.Intn(len(edgeLabels))])
			}
			ctx := fmt.Sprintf("seed=%d pattern#%d %s", seed, i, p)
			diffSets(t, ctx, matchSet(p, f, match.Options{}), matchSet(p, g, match.Options{}))

			// Pivoted units: seeded pivot + neighborhood restriction
			// computed on the frozen snapshot must enumerate identically.
			pivots := p.Pivot(f)
			pv := pivots[0]
			order := match.PivotedOrder(p, pivots)
			cands := f.CandidateNodes(p.Label(pv))
			if len(cands) > 3 {
				cands = cands[:3]
			}
			for _, z := range cands {
				seed := match.NewAssignment(p.NumVars())
				seed[pv] = z
				restrict := match.PivotRestriction(p, f, pv, z)
				fr := matchSet(p, f, match.Options{Order: order, Seed: seed.Clone(), Restrict: restrict})
				mu := matchSet(p, g, match.Options{Order: order, Seed: seed.Clone(), Restrict: restrict})
				diffSets(t, fmt.Sprintf("%s pivot=%d", ctx, z), fr, mu)
			}
		}
	}
}

// TestFrozenSimulationEquivalence checks that the simulation pre-filter
// computes the same relation on both representations.
func TestFrozenSimulationEquivalence(t *testing.T) {
	gr := gen.New(gen.Config{N: 10, K: 4, L: 2, WildcardRate: 0.2, Seed: 11})
	g := gr.ConsistentGraph(30)
	f := g.Frozen()
	checked := 0
	for i := 0; i < 10; i++ {
		p := gr.Pattern()
		sm := match.Simulate(p, g)
		sf := match.Simulate(p, f)
		if (sm == nil) != (sf == nil) {
			t.Fatalf("pattern#%d %s: simulation existence diverges: mutable=%v frozen=%v", i, p, sm != nil, sf != nil)
		}
		if sm == nil {
			continue
		}
		for v := 0; v < p.NumVars(); v++ {
			u := pattern.Var(v)
			if sm.Count(u) != sf.Count(u) {
				t.Fatalf("pattern#%d %s var %d: |sim| diverges: %d vs %d", i, p, v, sm.Count(u), sf.Count(u))
			}
			nm, nf := sm.Nodes(u), sf.Nodes(u)
			for j := range nm {
				if nm[j] != nf[j] {
					t.Fatalf("pattern#%d %s var %d: sim sets diverge at %d", i, p, v, j)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no simulation relations compared; test is vacuous")
	}
}
