package match

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// TestSearchCanceledBeforeStart pins the entry check: a search handed an
// already-canceled context yields nothing and reports the context's error.
func TestSearchCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSearch(edgePattern("n", "n", "e"), triangleData(), Options{Ctx: ctx})
	if _, ok := s.Next(); ok {
		t.Fatal("canceled search produced a match")
	}
	if err := s.Err(); err != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	// Once fired, the search is permanently exhausted.
	if _, ok := s.Next(); ok {
		t.Fatal("canceled search resumed")
	}
}

// TestSearchCancelBetweenMatches cancels after the first match: the next
// Next call observes the context at entry and ends the enumeration.
func TestSearchCancelBetweenMatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSearch(edgePattern("n", "n", "e"), triangleData(), Options{Ctx: ctx})
	if _, ok := s.Next(); !ok {
		t.Fatal("triangle has matches; first Next came up empty")
	}
	cancel()
	if _, ok := s.Next(); ok {
		t.Fatal("Next after cancel produced a match")
	}
	if s.Err() == nil {
		t.Fatal("Err not set after cancel")
	}
}

// countdownCtx is a context whose Err starts firing after a fixed number of
// polls, making the in-loop cancellation check deterministic to hit: the
// entry check passes, then a long candidate scan crosses the poll budget.
type countdownCtx struct {
	context.Context
	polls int
}

func (c *countdownCtx) Err() error {
	if c.polls--; c.polls < 0 {
		return context.Canceled
	}
	return nil
}

// TestSearchCancelMidScan pins the budgeted in-loop check: a single Next
// call scanning far more than ctxCheckEvery candidates must notice a cancel
// that fires mid-scan, without waiting for the scan to end.
func TestSearchCancelMidScan(t *testing.T) {
	// ~3x ctxCheckEvery isolated candidates and no edges: one Next call
	// scans them all and would return ok=false with no error — unless the
	// in-loop check fires first. Scan mode keeps the doomed candidates in
	// the frame (the indexed path's signature pruning would drop them all
	// before the loop ever ran).
	g := graph.New()
	for i := 0; i < 3*ctxCheckEvery; i++ {
		g.AddNode("n")
	}
	ctx := &countdownCtx{Context: context.Background(), polls: 1}
	s := NewSearch(edgePattern("n", "n", "e"), g, Options{Ctx: ctx, Scan: true})
	if _, ok := s.Next(); ok {
		t.Fatal("edgeless graph produced a match")
	}
	if err := s.Err(); err != context.Canceled {
		t.Fatalf("Err = %v, want the mid-scan cancel", err)
	}
}

// TestSearchNilCtx pins that a context-free search is unchanged: full
// enumeration, no error.
func TestSearchNilCtx(t *testing.T) {
	s := NewSearch(edgePattern("n", "n", "e"), triangleData(), Options{})
	n := 0
	for _, ok := s.Next(); ok; _, ok = s.Next() {
		n++
	}
	if n != 3 {
		t.Fatalf("enumerated %d matches, want 3", n)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err = %v on an uncanceled search", err)
	}
}
