package match_test

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// expectStalePanic runs fn and fails unless it panics with the stale-plan
// message NewSearch raises for a plan compiled against another epoch.
func expectStalePanic(t *testing.T, ctx string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected stale-plan panic, got none", ctx)
		}
	}()
	fn()
}

// TestPlanSearchEquivalence checks that a plan-driven search enumerates
// exactly what a planless one does, on every reader a plan can be compiled
// for, including the seeded form the parallel engines use.
func TestPlanSearchEquivalence(t *testing.T) {
	gr := gen.New(gen.Config{N: 10, K: 4, L: 2, WildcardRate: 0.3, Seed: 3})
	g := gr.ConsistentGraph(40)
	f := g.Frozen()
	d := graph.NewDelta(f)
	d.AddEdge(0, 1, f.Label(0))
	readers := map[string]graph.Reader{
		"mutable": g,
		"frozen":  f,
		"sharded": f.Sharded(3),
		"overlay": d.Overlay(),
	}
	nonEmpty := 0
	for i := 0; i < 10; i++ {
		p := gr.Pattern()
		for name, r := range readers {
			plan := match.CompilePlan(p, r)
			ctx := fmt.Sprintf("pattern#%d %s on %s", i, p, name)
			planned := matchSet(p, r, match.Options{Plan: plan})
			planless := matchSet(p, r, match.Options{})
			diffSets(t, ctx, planned, planless)
			if len(planned) > 0 {
				nonEmpty++
			}

			// Pivoted, seeded searches are the engines' shape: the plan
			// carries the per-pivot order.
			for _, pv := range plan.Pivots() {
				order := plan.OrderFor(pv)
				cands := r.CandidateNodes(p.Label(pv))
				if len(cands) > 2 {
					cands = cands[:2]
				}
				for _, z := range cands {
					seed := match.NewAssignment(p.NumVars())
					seed[pv] = z
					a := matchSet(p, r, match.Options{Order: order, Seed: seed.Clone(), Plan: plan})
					b := matchSet(p, r, match.Options{Order: order, Seed: seed.Clone()})
					diffSets(t, fmt.Sprintf("%s pivot=%d seeded", ctx, z), a, b)
				}
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("all plan-equivalence instances had empty match sets; property is vacuous")
	}
}

// TestPlanCacheReuse checks the cache contract on epoch-carrying readers:
// same pattern + same snapshot → the identical *Plan; a different snapshot
// (Refreeze) → a recompiled one; a mutable graph → never cached.
func TestPlanCacheReuse(t *testing.T) {
	gr := gen.New(gen.Config{N: 8, K: 3, L: 2, Seed: 5})
	g := gr.ConsistentGraph(30)
	f := g.Frozen()
	p := gr.Pattern()
	cache := match.NewPlanCache()

	pl := cache.Get(p, f)
	if pl2 := cache.Get(p, f); pl2 != pl {
		t.Fatal("cache recompiled for an unchanged snapshot epoch")
	}
	if pl2 := cache.Get(p, f.Sharded(3)); pl2 != pl {
		t.Fatal("sharded view of the same snapshot must hit the same plan")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries for one pattern, want 1", cache.Len())
	}

	d := graph.NewDelta(f)
	d.AddEdge(0, 1, f.Label(0))
	nf := f.Refreeze(d)
	npl := cache.Get(p, nf)
	if npl == pl {
		t.Fatal("cache served a stale plan across Refreeze")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache grew to %d entries across Refreeze, want entry replaced in place", cache.Len())
	}

	// Mutable graphs carry no epoch: Get compiles fresh, uncached.
	m1 := cache.Get(p, g)
	m2 := cache.Get(p, g)
	if m1 == m2 {
		t.Fatal("plans for a mutable graph must not be cached")
	}
	if cache.Len() != 1 {
		t.Fatalf("mutable-graph Get leaked into the cache (len=%d)", cache.Len())
	}
}

// TestPlanStaleness checks that every snapshot transition that can change
// match results makes previously compiled plans unusable: Refreeze, a
// compacting Compact, a fresh Overlay, and any mutation of a mutable
// graph. A no-op Compact keeps the snapshot — and its plans — alive.
func TestPlanStaleness(t *testing.T) {
	gr := gen.New(gen.Config{N: 8, K: 3, L: 2, Seed: 9})
	g := gr.ConsistentGraph(30)
	f := g.Frozen()
	p := gr.Pattern()

	pl := match.CompilePlan(p, f)

	// No-op Compact: same snapshot comes back, plan stays valid.
	same, _ := f.Compact()
	if same != f {
		t.Fatal("Compact of a tombstone-free snapshot should return it unchanged")
	}
	match.NewSearch(p, same, match.Options{Plan: pl})

	// Refreeze: new epoch, old plan must panic.
	d := graph.NewDelta(f)
	d.AddEdge(0, 1, f.Label(0))
	nf := f.Refreeze(d)
	expectStalePanic(t, "refreeze", func() {
		match.NewSearch(p, nf, match.Options{Plan: pl})
	})

	// Compacting Compact: tombstones force a rebuild and a new epoch.
	d2 := graph.NewDelta(nf)
	d2.RemoveNode(graph.NodeID(nf.NumNodes() - 1))
	withDead := nf.Refreeze(d2)
	plDead := match.CompilePlan(p, withDead)
	compacted, _ := withDead.Compact()
	if compacted == withDead {
		t.Fatal("Compact did not rebuild despite tombstones")
	}
	expectStalePanic(t, "compact", func() {
		match.NewSearch(p, compacted, match.Options{Plan: plDead})
	})

	// Every Overlay call is its own epoch: a plan compiled on one overlay
	// of a delta must not serve another.
	d3 := graph.NewDelta(f)
	d3.AddEdge(1, 0, f.Label(1))
	o1 := d3.Overlay()
	plO := match.CompilePlan(p, o1)
	match.NewSearch(p, o1, match.Options{Plan: plO})
	expectStalePanic(t, "second overlay", func() {
		match.NewSearch(p, d3.Overlay(), match.Options{Plan: plO})
	})

	// Mutable graph: plan is pinned to (graph pointer, version); any
	// mutation — here one added edge — invalidates it.
	plG := match.CompilePlan(p, g)
	match.NewSearch(p, g, match.Options{Plan: plG})
	g.AddEdge(0, 1, g.Label(0))
	expectStalePanic(t, "mutated graph", func() {
		match.NewSearch(p, g, match.Options{Plan: plG})
	})

	// A plan never crosses patterns, stale or not.
	other := pattern.New()
	other.AddVar("x", graph.Wildcard)
	expectStalePanic(t, "wrong pattern", func() {
		match.NewSearch(other, f, match.Options{Plan: pl})
	})
}
