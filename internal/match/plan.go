// Compiled query plans. Planning a search — resolving every pattern label
// against the graph's interned tables, deriving the default order, picking
// pivots, pulling and signature-pruning the root candidate frame — costs
// more than executing a short selective query, and the service workloads
// repeat the same patterns against the same snapshot. A Plan captures all
// of it once; a PlanCache keys plans by pattern structure and revalidates
// them against the reader's snapshot epoch on every fetch, so a Refreeze
// or Compact (which mint new epochs) makes cached plans unreachable with
// no invalidation hooks: the stale plan simply never matches again and is
// recompiled on first use.
package match

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// Plan is the reusable planning artifact for one (pattern, graph-contents)
// pair: resolved label IDs and frequencies per variable, the default and
// per-pivot variable orders, and the lazily materialized, signature-pruned
// root candidate frame. Plans are immutable after CompilePlan and safe to
// share across concurrent searches. A Plan is bound to the contents it was
// compiled against: NewSearch re-checks that binding and panics on a
// stale plan (see validFor).
type Plan struct {
	pat *pattern.Pattern
	// g is the reader the plan was compiled against. For EpochView readers
	// the binding is the epoch (any reader serving that epoch may use the
	// plan — e.g. a Frozen and its Sharded view); for a mutable *Graph it
	// is the pointer plus its mutation counter.
	g        graph.Reader
	epoch    uint64
	gVersion uint64

	vars         []varIndex
	defaultOrder []pattern.Var
	pivots       []pattern.Var
	pivotOrders  [][]pattern.Var // aligned with pivots

	// rootOnce materializes rootCands on first use: the label pull plus
	// signature pruning for defaultOrder's first variable. Lazy because
	// engine workloads seed every search and never open a root frame.
	rootOnce  sync.Once
	rootCands []graph.NodeID

	// litMu/litKey/litProg memoize one compiled literal program on the plan
	// (see Literals): group evaluation hoists the per-match literal walk into
	// an attr-key-interned evaluator, and caching it here makes the
	// compilation as reusable as the plan itself.
	litMu   sync.Mutex
	litKey  any
	litProg *LiteralEval
}

// CompilePlan resolves p against g and returns the plan. The caller must
// not mutate g while using the plan (NewSearch enforces this for mutable
// graphs via the version check).
func CompilePlan(p *pattern.Pattern, g graph.Reader) *Plan {
	pl := &Plan{pat: p, g: g}
	if ev, ok := g.(graph.EpochView); ok {
		pl.epoch = ev.Epoch()
	} else if mg, ok := g.(*graph.Graph); ok {
		pl.gVersion = mg.Version()
	}
	pl.vars = resolveVars(p, g)
	pl.defaultOrder = DefaultOrder(p)
	pl.pivots = p.Pivot(g)
	pl.pivotOrders = make([][]pattern.Var, len(pl.pivots))
	for i, pv := range pl.pivots {
		pl.pivotOrders[i] = p.PivotOrder(pv)
	}
	return pl
}

// validFor reports whether the plan may serve g: an EpochView reader must
// carry the compiled epoch; the mutable graph must be the same instance at
// the same mutation count. Any other reader (or an epoch reader plan asked
// to serve a mutable graph, and vice versa) is a mismatch.
func (pl *Plan) validFor(g graph.Reader) bool {
	if ev, ok := g.(graph.EpochView); ok {
		return pl.epoch != 0 && pl.epoch == ev.Epoch()
	}
	if mg, ok := g.(*graph.Graph); ok {
		return pl.epoch == 0 && pl.g == graph.Reader(mg) && pl.gVersion == mg.Version()
	}
	return false
}

// Pattern returns the pattern the plan was compiled for.
func (pl *Plan) Pattern() *pattern.Pattern { return pl.pat }

// Epoch returns the snapshot epoch the plan is bound to (0 when compiled
// against a mutable graph).
func (pl *Plan) Epoch() uint64 { return pl.epoch }

// DefaultOrder returns the plan's precomputed default variable order.
// Callers must not mutate the slice.
func (pl *Plan) DefaultOrder() []pattern.Var { return pl.defaultOrder }

// Pivots returns the precomputed pivot per connected component (the result
// of pattern.Pivot against the plan's graph). Callers must not mutate the
// slice.
func (pl *Plan) Pivots() []pattern.Var { return pl.pivots }

// OrderFor returns the precomputed engine order for a unit pivoted at pv
// (pv's component first, then the remaining components — pattern.PivotOrder).
// A pv outside the plan's pivot set is computed on the fly.
func (pl *Plan) OrderFor(pv pattern.Var) []pattern.Var {
	for i, cand := range pl.pivots {
		if cand == pv {
			return pl.pivotOrders[i]
		}
	}
	return pl.pat.PivotOrder(pv)
}

// root returns the signature-pruned candidate list for the default order's
// root variable, materialized once. nil when the pattern has no variables
// or the root label has no candidates (callers fall back to the normal
// pull, which finds the same nothing).
func (pl *Plan) root() []graph.NodeID {
	pl.rootOnce.Do(func() {
		if len(pl.defaultOrder) == 0 {
			return
		}
		v := pl.defaultOrder[0]
		cands := pl.g.AppendCandidates(nil, pl.pat.Label(v))
		vx := &pl.vars[v]
		if len(vx.sigOut) > 0 || len(vx.sigIn) > 0 {
			kept := cands[:0]
			for _, n := range cands {
				if pl.g.CoversIDs(n, vx.sigOut, vx.sigIn) {
					kept = append(kept, n)
				}
			}
			cands = kept
		}
		pl.rootCands = cands
	})
	return pl.rootCands
}

// PlanCache memoizes one Plan per pattern structure, revalidated against
// the reader's epoch on every Get. The map is keyed by pattern fingerprint
// with the full structural-equality check behind the hash (see
// pattern.StructuralEqual), so two structurally identical pattern values —
// e.g. the same rule shape parsed from different GFDs — share one compiled
// plan, and a 64-bit hash collision can never serve a plan across patterns
// that differ. The cache stays bounded at one entry per live pattern
// structure; a new snapshot epoch overwrites in place rather than
// accumulating. Safe for concurrent use.
type PlanCache struct {
	mu    sync.RWMutex
	plans map[uint64][]*Plan // fingerprint → structurally distinct plans
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: make(map[uint64][]*Plan)}
}

// lookup scans a fingerprint bucket for p's structural entry. Callers hold
// the lock.
func (c *PlanCache) lookup(fp uint64, p *pattern.Pattern) (int, *Plan) {
	for i, pl := range c.plans[fp] {
		if pl.pat == p || pattern.StructuralEqual(pl.pat, p) {
			return i, pl
		}
	}
	return -1, nil
}

// Get returns a plan for (p, g), reusing the cached one when its epoch
// matches g's and recompiling (and replacing the entry) otherwise — the
// automatic invalidation path for Refreeze/Compact, whose snapshots carry
// fresh epochs. Mutable (non-EpochView) readers have no stable content
// identity to key on, so Get compiles a fresh uncached plan for them; the
// win there is sharing one plan across a run's work units, which the
// caller does by passing the same Plan to every NewSearch.
func (c *PlanCache) Get(p *pattern.Pattern, g graph.Reader) *Plan {
	if _, ok := g.(graph.EpochView); !ok {
		return CompilePlan(p, g)
	}
	fp := p.Fingerprint()
	c.mu.RLock()
	_, pl := c.lookup(fp, p)
	c.mu.RUnlock()
	if pl != nil && pl.validFor(g) {
		return pl
	}
	pl = CompilePlan(p, g)
	c.mu.Lock()
	if i, _ := c.lookup(fp, p); i >= 0 {
		c.plans[fp][i] = pl
	} else {
		c.plans[fp] = append(c.plans[fp], pl)
	}
	c.mu.Unlock()
	return pl
}

// Len returns the number of cached plans (one per pattern structure).
func (c *PlanCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, bucket := range c.plans {
		n += len(bucket)
	}
	return n
}
