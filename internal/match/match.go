// Package match implements homomorphism-based graph pattern matching
// (Section IV-C of the paper): VF2-style backtracking search, except
// enforcing homomorphism rather than isomorphism (two pattern variables may
// map to the same data node, and data nodes may be reused across matches).
//
// The search is exposed as a resumable iterator so the parallel algorithms
// can (a) pipeline match generation with attribute checking and (b) split a
// straggling work unit into sub-units carved from untried branches of the
// search tree (Section V-B, "unit splitting").
package match

import (
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Assignment maps pattern variables (by index) to data nodes; InvalidNode
// marks unassigned variables. A full match assigns every variable.
type Assignment []graph.NodeID

// NewAssignment returns an all-unassigned assignment for n variables.
func NewAssignment(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = graph.InvalidNode
	}
	return a
}

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment { return append(Assignment{}, a...) }

// Complete reports whether every variable is assigned.
func (a Assignment) Complete() bool {
	for _, v := range a {
		if v == graph.InvalidNode {
			return false
		}
	}
	return true
}

// Search is a resumable backtracking enumeration of the homomorphisms of a
// pattern into a graph, following a fixed variable order. The zero value is
// not usable; construct with NewSearch.
type Search struct {
	p     *pattern.Pattern
	g     *graph.Graph
	order []pattern.Var
	// restrict, when non-nil for a variable, limits its candidates to the
	// given node set (the d_Q-neighborhood of the unit's pivot).
	restrict map[pattern.Var]map[graph.NodeID]bool
	filter   func(pattern.Var, graph.NodeID) bool

	assign Assignment
	seeded []bool // variables fixed by the seed (never backtracked)
	stack  []frame
	done   bool
}

type frame struct {
	v     pattern.Var
	cands []graph.NodeID
	idx   int // next candidate to try
}

// Options configures a Search.
type Options struct {
	// Order is the variable order; defaults to the concatenation of
	// pattern.MatchOrder over all components.
	Order []pattern.Var
	// Seed pre-assigns variables (e.g. the pivot, or a partial match from a
	// split unit). Seeded variables must form a prefix of Order.
	Seed Assignment
	// Restrict limits candidates per variable.
	Restrict map[pattern.Var]map[graph.NodeID]bool
	// Filter, when non-nil, limits candidates further (e.g. to a simulation
	// relation) without allocating per-search sets.
	Filter func(pattern.Var, graph.NodeID) bool
}

// DefaultOrder returns a connectivity-respecting order over all components.
func DefaultOrder(p *pattern.Pattern) []pattern.Var {
	var order []pattern.Var
	for _, comp := range p.Components() {
		order = append(order, p.MatchOrder(comp[0])...)
	}
	return order
}

// PivotedOrder returns an order that starts each component at its pivot.
// pivots must contain one variable per component, in component order.
func PivotedOrder(p *pattern.Pattern, pivots []pattern.Var) []pattern.Var {
	var order []pattern.Var
	for _, pv := range pivots {
		order = append(order, p.MatchOrder(pv)...)
	}
	return order
}

// NewSearch builds a search. Seeded variables are validated against labels
// and seeded-edge consistency lazily (the first Next call rejects a bad
// seed by returning no matches for that branch).
func NewSearch(p *pattern.Pattern, g *graph.Graph, opts Options) *Search {
	order := opts.Order
	if order == nil {
		order = DefaultOrder(p)
	}
	s := &Search{
		p:        p,
		g:        g,
		order:    order,
		restrict: opts.Restrict,
		filter:   opts.Filter,
		assign:   NewAssignment(p.NumVars()),
		seeded:   make([]bool, p.NumVars()),
	}
	if opts.Seed != nil {
		for v, n := range opts.Seed {
			if n != graph.InvalidNode {
				s.assign[v] = n
				s.seeded[v] = true
			}
		}
	}
	// Validate the seed immediately: labels and edges among seeded vars.
	for v := range s.seeded {
		if !s.seeded[v] {
			continue
		}
		if !s.consistent(pattern.Var(v), s.assign[v]) {
			s.done = true
			break
		}
	}
	return s
}

// depthOf returns the search depth of the first non-seeded variable.
func (s *Search) firstOpenDepth() int {
	for i, v := range s.order {
		if !s.seeded[v] {
			return i
		}
	}
	return len(s.order)
}

// Next returns the next full match, or ok=false when the enumeration is
// exhausted. The returned assignment is a copy owned by the caller.
func (s *Search) Next() (Assignment, bool) {
	if s.done {
		return nil, false
	}
	if s.stack == nil {
		// First call: if everything is seeded, the seed itself is the only
		// match (already validated in NewSearch).
		if s.firstOpenDepth() == len(s.order) {
			s.done = true
			if s.assign.Complete() {
				return s.assign.Clone(), true
			}
			return nil, false
		}
		s.push()
	} else {
		// Resume: retract the deepest frame's current assignment and
		// advance.
		s.retractTop()
	}
	for len(s.stack) > 0 {
		top := &s.stack[len(s.stack)-1]
		if top.idx >= len(top.cands) {
			s.pop()
			if len(s.stack) == 0 {
				break
			}
			s.retractTop()
			continue
		}
		cand := top.cands[top.idx]
		top.idx++
		if !s.consistent(top.v, cand) {
			continue
		}
		s.assign[top.v] = cand
		if len(s.stack) == s.depthLimit() {
			return s.assign.Clone(), true
		}
		s.push()
	}
	s.done = true
	return nil, false
}

// depthLimit is the number of open (non-seeded) variables.
func (s *Search) depthLimit() int {
	n := 0
	for _, v := range s.order {
		if !s.seeded[v] {
			n++
		}
	}
	return n
}

// push opens a frame for the next unassigned variable in order.
func (s *Search) push() {
	var v pattern.Var = pattern.InvalidVar
	for _, u := range s.order {
		if s.assign[u] == graph.InvalidNode {
			v = u
			break
		}
	}
	if v == pattern.InvalidVar {
		panic("match: push with complete assignment")
	}
	s.stack = append(s.stack, frame{v: v, cands: s.candidates(v)})
}

func (s *Search) retractTop() {
	top := &s.stack[len(s.stack)-1]
	s.assign[top.v] = graph.InvalidNode
}

func (s *Search) pop() {
	s.stack = s.stack[:len(s.stack)-1]
}

// candidates computes the candidate nodes for v given the current partial
// assignment: generated from an assigned pattern-neighbor's adjacency when
// one exists (cheap), else from the label index; filtered by restriction.
func (s *Search) candidates(v pattern.Var) []graph.NodeID {
	label := s.p.Label(v)
	var base []graph.NodeID
	// Prefer generating from an assigned neighbor to keep candidate sets
	// small; edge-label and direction constraints are applied here, and
	// consistent() re-checks all edges anyway.
	gen := false
	for _, e := range s.p.In(v) {
		if u := s.assign[e.From]; u != graph.InvalidNode {
			for _, ge := range s.g.Out(u) {
				if (e.Label == graph.Wildcard || ge.Label == e.Label) && pattern.LabelMatches(label, s.g.Label(ge.To)) {
					base = append(base, ge.To)
				}
			}
			gen = true
			break
		}
	}
	if !gen {
		for _, e := range s.p.Out(v) {
			if u := s.assign[e.To]; u != graph.InvalidNode {
				for _, ge := range s.g.In(u) {
					if (e.Label == graph.Wildcard || ge.Label == e.Label) && pattern.LabelMatches(label, s.g.Label(ge.From)) {
						base = append(base, ge.From)
					}
				}
				gen = true
				break
			}
		}
	}
	if !gen {
		// Copy: CandidateNodes may return the graph's internal label index,
		// and the filter below compacts base in place.
		base = append([]graph.NodeID(nil), s.g.CandidateNodes(label)...)
	}
	if s.filter != nil {
		kept := base[:0]
		for _, n := range base {
			if s.filter(v, n) {
				kept = append(kept, n)
			}
		}
		base = kept
	}
	if s.restrict == nil || s.restrict[v] == nil {
		return dedup(base)
	}
	allowed := s.restrict[v]
	var out []graph.NodeID
	for _, n := range base {
		if allowed[n] {
			out = append(out, n)
		}
	}
	return dedup(out)
}

func dedup(ids []graph.NodeID) []graph.NodeID {
	if len(ids) <= 1 {
		return ids
	}
	seen := make(map[graph.NodeID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// consistent checks that mapping v→n preserves v's label and every pattern
// edge between v and an already-assigned variable (including self-loops and
// edges to seeded variables).
func (s *Search) consistent(v pattern.Var, n graph.NodeID) bool {
	if !pattern.LabelMatches(s.p.Label(v), s.g.Label(n)) {
		return false
	}
	for _, e := range s.p.Out(v) {
		to := e.To
		var target graph.NodeID
		if to == v {
			target = n
		} else {
			target = s.assign[to]
			if target == graph.InvalidNode {
				continue
			}
		}
		if !s.g.HasEdge(n, target, e.Label) {
			return false
		}
	}
	for _, e := range s.p.In(v) {
		from := e.From
		if from == v {
			continue // self-loop handled above
		}
		src := s.assign[from]
		if src == graph.InvalidNode {
			continue
		}
		if !s.g.HasEdge(src, n, e.Label) {
			return false
		}
	}
	return true
}

// Split carves untried branches off the shallowest open frame that still
// has at least two candidates remaining, returning them as seed assignments
// (the frames' prefix assignments plus one remaining candidate each). The
// branches are removed from this search, which continues with its current
// branch only. It returns nil when there is nothing to split.
//
// This implements the paper's straggler handling: a unit exceeding its TTL
// ships Split() seeds to the coordinator as new work units and finishes only
// its current subtree.
func (s *Search) Split() []Assignment {
	if s.done {
		return nil
	}
	for d := 0; d < len(s.stack); d++ {
		f := &s.stack[d]
		remaining := len(f.cands) - f.idx
		// Keep at least the current in-flight candidate; split the rest.
		if remaining < 1 {
			continue
		}
		// Prefix assignment: seeded vars plus frames above d (their current
		// choices), excluding frame d's untried candidates.
		prefix := NewAssignment(len(s.assign))
		for v := range s.seeded {
			if s.seeded[v] {
				prefix[v] = s.assign[v]
			}
		}
		for i := 0; i < d; i++ {
			fr := s.stack[i]
			prefix[fr.v] = s.assign[fr.v]
		}
		var seeds []Assignment
		for i := f.idx; i < len(f.cands); i++ {
			seed := prefix.Clone()
			seed[f.v] = f.cands[i]
			seeds = append(seeds, seed)
		}
		f.cands = f.cands[:f.idx]
		if len(seeds) > 0 {
			return seeds
		}
	}
	return nil
}

// CountAll exhausts the search and returns the number of matches. Intended
// for tests.
func (s *Search) CountAll() int {
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
	}
}

// FindAll enumerates every homomorphism of p into g. Intended for small
// patterns (tests, sequential reasoning on canonical graphs).
func FindAll(p *pattern.Pattern, g *graph.Graph) []Assignment {
	s := NewSearch(p, g, Options{})
	var out []Assignment
	for {
		h, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, h)
	}
}

// PivotRestriction builds the candidate restriction for a unit pivoted at
// node z matching variable pv: every variable of pv's component is confined
// to the d_Q-neighborhood of z, where d_Q is the pattern radius at pv. Other
// components are unrestricted.
func PivotRestriction(p *pattern.Pattern, g *graph.Graph, pv pattern.Var, z graph.NodeID) map[pattern.Var]map[graph.NodeID]bool {
	hood := g.Neighborhood(z, p.Radius(pv))
	restrict := make(map[pattern.Var]map[graph.NodeID]bool)
	for _, comp := range p.Components() {
		has := false
		for _, v := range comp {
			if v == pv {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		for _, v := range comp {
			restrict[v] = hood
		}
	}
	return restrict
}
