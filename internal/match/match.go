// Package match implements homomorphism-based graph pattern matching
// (Section IV-C of the paper): VF2-style backtracking search, except
// enforcing homomorphism rather than isomorphism (two pattern variables may
// map to the same data node, and data nodes may be reused across matches).
//
// The search is exposed as a resumable iterator so the parallel algorithms
// can (a) pipeline match generation with attribute checking and (b) split a
// straggling work unit into sub-units carved from untried branches of the
// search tree (Section V-B, "unit splitting").
package match

import (
	"context"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// Assignment maps pattern variables (by index) to data nodes; InvalidNode
// marks unassigned variables. A full match assigns every variable.
type Assignment []graph.NodeID

// NewAssignment returns an all-unassigned assignment for n variables.
func NewAssignment(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = graph.InvalidNode
	}
	return a
}

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment { return append(Assignment{}, a...) }

// Complete reports whether every variable is assigned.
func (a Assignment) Complete() bool {
	for _, v := range a {
		if v == graph.InvalidNode {
			return false
		}
	}
	return true
}

// Search is a resumable backtracking enumeration of the homomorphisms of a
// pattern into a graph, following a fixed variable order. The zero value is
// not usable; construct with NewSearch.
type Search struct {
	p     *pattern.Pattern
	g     graph.Reader
	order []pattern.Var
	// restrict, when non-nil for a variable, limits its candidates to the
	// given node set (the d_Q-neighborhood of the unit's pivot).
	restrict map[pattern.Var]map[graph.NodeID]bool
	filter   func(pattern.Var, graph.NodeID) bool
	// rootCands, when non-nil, replaces the label-index candidate pull for
	// the first open variable (the root frame): the shard fan-out partitions
	// the root candidate set this way. All downstream pruning still applies.
	rootCands []graph.NodeID
	// rootPruned marks rootCands as already signature-pruned (a Plan's
	// precomputed root frame), so candidates() skips re-pruning it.
	rootPruned bool
	scan       bool
	mergeOnly  bool
	// vars holds per-variable pre-resolved label IDs so the inner loops
	// never hash a string: pattern edge labels aligned with p.Out/p.In, and
	// the variable's pruning signature.
	vars []varIndex

	assign Assignment
	seeded []bool // variables fixed by the seed (never backtracked)
	stack  []frame
	done   bool
	// ctx is Options.Ctx; ctxLeft counts frame expansions down to the next
	// poll, and err records the context error that ended the enumeration.
	ctx     context.Context
	ctxLeft int
	err     error
	// scratch recycles one candidate buffer per search depth: a popped
	// frame's cands backing array is reused by the next push at that depth,
	// so steady-state backtracking allocates nothing.
	scratch [][]graph.NodeID
	// openDepth caches depthLimit(): the number of non-seeded variables.
	openDepth int
}

type frame struct {
	v     pattern.Var
	cands []graph.NodeID
	idx   int // next candidate to try
	// verified marks a frame whose candidates were already filtered against
	// the variable's label and every pattern edge bound at push time (the
	// bound set cannot change while the frame iterates, so the per-frame
	// filter is exhaustive and Next skips per-candidate consistency). Scan
	// mode never verifies, reproducing the pre-index per-candidate checks.
	verified bool
}

// varIndex is one pattern variable's label IDs resolved against the data
// graph, computed once per Search — or once per Plan, which shares one
// resolved set across every search compiled from it.
type varIndex struct {
	labelID graph.LabelID   // the variable's node label (AnyLabel for '_')
	outIDs  []graph.LabelID // aligned with p.Out(v)
	inIDs   []graph.LabelID // aligned with p.In(v)
	sigOut  []graph.LabelID // resolved Signature.Out
	sigIn   []graph.LabelID // resolved Signature.In
	// freq and cand feed the adaptive kernel picker: the variable's label
	// frequency (candidate count) decides when galloping the label run
	// through a long adjacency beats scanning it, and cand — non-nil only
	// for high-frequency labels on bitset-serving snapshots — answers the
	// label test in one word probe.
	freq int
	cand graph.Bitset
}

// resolveVars computes the per-variable index against g: the shared body
// of NewSearch and CompilePlan. The result is read-only once built, so a
// Plan can hand one copy to many concurrent searches.
func resolveVars(p *pattern.Pattern, g graph.Reader) []varIndex {
	bp, _ := g.(graph.BitsetProvider)
	vars := make([]varIndex, p.NumVars())
	for v := range vars {
		u := pattern.Var(v)
		sig := p.Signature(u)
		vx := &vars[v]
		vx.labelID = g.NodeLabelID(p.Label(u))
		vx.outIDs = resolveEdgeLabels(g, p.Out(u))
		vx.inIDs = resolveEdgeLabels(g, p.In(u))
		vx.sigOut = g.ResolveLabels(sig.Out)
		vx.sigIn = g.ResolveLabels(sig.In)
		vx.freq = g.LabelFrequency(p.Label(u))
		if bp != nil {
			vx.cand = bp.CandidateBitset(p.Label(u))
		}
	}
	return vars
}

// Options configures a Search.
type Options struct {
	// Order is the variable order; defaults to the concatenation of
	// pattern.MatchOrder over all components.
	Order []pattern.Var
	// Seed pre-assigns variables (e.g. the pivot, or a partial match from a
	// split unit). Seeded variables must form a prefix of Order.
	Seed Assignment
	// Restrict limits candidates per variable.
	Restrict map[pattern.Var]map[graph.NodeID]bool
	// RootCandidates, when non-nil, is the base candidate list for the first
	// open variable in Order, replacing the graph's label index for that one
	// frame. The list must be ascending and label-consistent with the
	// variable (e.g. one shard's slice of the label index); signature
	// pruning, Filter and Restrict still apply on top. Running one search
	// per part of a partition of the root candidate set enumerates exactly
	// the full match set, partitioned — the basis of the sharded fan-out.
	// Ignored when a Seed is present: a seeded search generates its first
	// open frame from the seeded neighbors' adjacency, so a root partition
	// would not partition the match set.
	RootCandidates []graph.NodeID
	// Filter, when non-nil, limits candidates further (e.g. to a simulation
	// relation) without allocating per-search sets.
	Filter func(pattern.Var, graph.NodeID) bool
	// Scan disables the graph's label-keyed adjacency index and signature
	// pruning, generating candidates by filtering raw Out/In edge slices and
	// testing edges by linear scan — the pre-index code path. It exists for
	// the indexed-vs-scan equivalence tests and benchmarks; production
	// callers leave it false.
	Scan bool
	// Plan, when non-nil, supplies the precompiled planning artifacts
	// (resolved label IDs, default order, pre-pruned root candidates) from
	// CompilePlan/PlanCache.Get, skipping per-search planning. The plan
	// must have been compiled for this pattern against a reader serving the
	// same contents; NewSearch panics on a mismatch (see Plan.validFor) —
	// a stale plan must never silently serve a new snapshot epoch.
	Plan *Plan
	// MergeOnly pins every intersection to the linear merge and disables
	// the gallop/bitset candidate paths: the ablation baseline for the
	// adaptive-kernel equivalence tests and the match_adaptive_speedup CI
	// ratio. Production callers leave it false.
	MergeOnly bool
	// Ctx, when non-nil, makes the enumeration cooperatively cancelable:
	// Next polls the context once every ctxCheckEvery frame expansions —
	// cheap enough to be left on in the engines, frequent enough that even
	// a single combinatorial unit stops within a bounded number of frames —
	// and once it fires the search is permanently exhausted (Next reports
	// ok=false) with Err returning the cause. A nil Ctx is never polled.
	Ctx context.Context
}

// ctxCheckEvery is the frame-expansion period between context polls: the
// bound on extra work a cancelled enumeration performs before returning.
const ctxCheckEvery = 256

// DefaultOrder returns a connectivity-respecting order over all components.
func DefaultOrder(p *pattern.Pattern) []pattern.Var {
	var order []pattern.Var
	for _, comp := range p.Components() {
		order = append(order, p.MatchOrder(comp[0])...)
	}
	return order
}

// PivotedOrder returns an order that starts each component at its pivot.
// pivots must contain one variable per component, in component order.
func PivotedOrder(p *pattern.Pattern, pivots []pattern.Var) []pattern.Var {
	var order []pattern.Var
	for _, pv := range pivots {
		order = append(order, p.MatchOrder(pv)...)
	}
	return order
}

// NewSearch builds a search over any graph representation (mutable Graph
// or frozen CSR snapshot — both implement graph.Reader). Seeded variables
// are validated against labels and seeded-edge consistency lazily (the
// first Next call rejects a bad seed by returning no matches for that
// branch).
func NewSearch(p *pattern.Pattern, g graph.Reader, opts Options) *Search {
	pl := opts.Plan
	if pl != nil {
		// Structurally equal patterns share plans (PlanCache keys by
		// fingerprint): every planning artifact — resolved labels, orders,
		// root frame — is positional, so it serves any StructuralEqual value.
		if pl.pat != p && !pattern.StructuralEqual(pl.pat, p) {
			panic("match: Options.Plan was compiled for a different pattern")
		}
		if !pl.validFor(g) {
			panic("match: stale Options.Plan: the graph changed since CompilePlan (recompile, or fetch through PlanCache.Get)")
		}
	}
	order := opts.Order
	if order == nil {
		if pl != nil {
			order = pl.defaultOrder
		} else {
			order = DefaultOrder(p)
		}
	}
	s := &Search{
		p:         p,
		g:         g,
		order:     order,
		restrict:  opts.Restrict,
		filter:    opts.Filter,
		rootCands: opts.RootCandidates,
		scan:      opts.Scan,
		mergeOnly: opts.MergeOnly,
		ctx:       opts.Ctx,
		ctxLeft:   ctxCheckEvery,
		assign:    NewAssignment(p.NumVars()),
		seeded:    make([]bool, p.NumVars()),
	}
	if pl != nil {
		s.vars = pl.vars
	} else {
		s.vars = resolveVars(p, g)
	}
	// An unseeded, unpartitioned search following the plan's default order
	// can reuse the plan's precomputed root frame: the label pull plus
	// signature pruning that otherwise dominates a short query. Scan mode
	// is excluded (it deliberately skips signature pruning).
	if pl != nil && !opts.Scan && opts.Seed == nil && s.rootCands == nil &&
		len(order) > 0 && len(pl.defaultOrder) > 0 && order[0] == pl.defaultOrder[0] {
		if root := pl.root(); root != nil {
			s.rootCands = root
			s.rootPruned = true
		}
	}
	if opts.Seed != nil {
		// See Options.RootCandidates: a root partition is meaningless once
		// variables are pre-assigned.
		s.rootCands = nil
		for v, n := range opts.Seed {
			if n != graph.InvalidNode {
				s.assign[v] = n
				s.seeded[v] = true
			}
		}
	}
	// Validate the seed immediately: labels and edges among seeded vars.
	for v := range s.seeded {
		if !s.seeded[v] {
			continue
		}
		if !s.consistent(pattern.Var(v), s.assign[v]) {
			s.done = true
			break
		}
	}
	s.openDepth = s.depthLimit()
	s.scratch = make([][]graph.NodeID, s.openDepth)
	return s
}

// depthOf returns the search depth of the first non-seeded variable.
func (s *Search) firstOpenDepth() int {
	for i, v := range s.order {
		if !s.seeded[v] {
			return i
		}
	}
	return len(s.order)
}

// Next returns the next full match, or ok=false when the enumeration is
// exhausted. The returned assignment is a copy owned by the caller.
func (s *Search) Next() (Assignment, bool) {
	if s.done {
		return nil, false
	}
	if s.canceled() {
		return nil, false
	}
	if s.stack == nil {
		// First call: if everything is seeded, the seed itself is the only
		// match (already validated in NewSearch).
		if s.firstOpenDepth() == len(s.order) {
			s.done = true
			if s.assign.Complete() {
				return s.assign.Clone(), true
			}
			return nil, false
		}
		s.push()
	} else {
		// Resume: retract the deepest frame's current assignment and
		// advance.
		s.retractTop()
	}
	for len(s.stack) > 0 {
		if s.ctxLeft--; s.ctxLeft <= 0 && s.canceled() {
			return nil, false
		}
		top := &s.stack[len(s.stack)-1]
		if top.idx >= len(top.cands) {
			s.pop()
			if len(s.stack) == 0 {
				break
			}
			s.retractTop()
			continue
		}
		cand := top.cands[top.idx]
		top.idx++
		if !top.verified && !s.consistent(top.v, cand) {
			continue
		}
		s.assign[top.v] = cand
		if len(s.stack) == s.openDepth {
			return s.assign.Clone(), true
		}
		s.push()
	}
	s.done = true
	return nil, false
}

// canceled polls Options.Ctx (resetting the poll countdown) and, when the
// context has fired, latches the search exhausted with the cause in Err.
func (s *Search) canceled() bool {
	s.ctxLeft = ctxCheckEvery
	if s.ctx == nil {
		return false
	}
	if err := s.ctx.Err(); err != nil {
		s.done = true
		s.err = err
		return true
	}
	return false
}

// Err returns the context error that ended the enumeration, or nil for a
// search that ran (or is still running) to natural exhaustion.
func (s *Search) Err() error { return s.err }

// depthLimit is the number of open (non-seeded) variables.
func (s *Search) depthLimit() int {
	n := 0
	for _, v := range s.order {
		if !s.seeded[v] {
			n++
		}
	}
	return n
}

// push opens a frame for the next unassigned variable in order.
func (s *Search) push() {
	var v pattern.Var = pattern.InvalidVar
	for _, u := range s.order {
		if s.assign[u] == graph.InvalidNode {
			v = u
			break
		}
	}
	if v == pattern.InvalidVar {
		panic("match: push with complete assignment")
	}
	d := len(s.stack)
	var buf []graph.NodeID
	if d < len(s.scratch) {
		buf = s.scratch[d][:0]
	}
	cands, verified := s.candidates(v, buf)
	s.stack = append(s.stack, frame{v: v, cands: cands, verified: verified})
}

func (s *Search) retractTop() {
	top := &s.stack[len(s.stack)-1]
	s.assign[top.v] = graph.InvalidNode
}

func (s *Search) pop() {
	d := len(s.stack) - 1
	if d < len(s.scratch) {
		// Hand the (possibly grown) backing array back for the next push at
		// this depth.
		s.scratch[d] = s.stack[d].cands[:0]
	}
	s.stack = s.stack[:d]
}

// candidates computes the candidate nodes for v given the current partial
// assignment: generated from an assigned pattern-neighbor's indexed
// adjacency when one exists (cheap — only edges carrying the pattern edge's
// label are visited), else from the label index; pruned by the variable's
// degree/label signature; filtered by restriction. All filtering compacts
// buf in place, so steady-state backtracking reuses the per-depth scratch
// buffer without allocating. With Options.Scan the neighbor expansion
// filters the raw edge slices instead and the signature pruning is skipped,
// reproducing the pre-index path.
func (s *Search) candidates(v pattern.Var, buf []graph.NodeID) (cands []graph.NodeID, verified bool) {
	label := s.p.Label(v)
	base := buf
	// genIn/genEi record the pattern edge the candidates are generated
	// from; that edge needs no re-check. Prefer generating from an assigned
	// neighbor to keep candidate sets small.
	//
	// needDedup: an exact-label adjacency list has unique endpoints (AddEdge
	// is idempotent per (from,label,to)), so duplicates only arise when the
	// generating pattern edge is the wildcard, whose candidate list spans
	// every edge label.
	gen, needDedup, genIn, genEi := false, false, false, -1
	for ei, e := range s.p.In(v) {
		if u := s.assign[e.From]; u != graph.InvalidNode {
			needDedup = e.Label == graph.Wildcard
			if s.scan {
				for _, ge := range s.g.Out(u) {
					if (e.Label == graph.Wildcard || ge.Label == e.Label) && pattern.LabelMatches(label, s.g.Label(ge.To)) {
						base = append(base, ge.To)
					}
				}
			} else {
				base = s.expandFrom(v, base, s.g.OutByLabelID(u, s.vars[v].inIDs[ei]))
				genIn, genEi = true, ei
			}
			gen = true
			break
		}
	}
	if !gen {
		for ei, e := range s.p.Out(v) {
			if u := s.assign[e.To]; u != graph.InvalidNode {
				needDedup = e.Label == graph.Wildcard
				if s.scan {
					for _, ge := range s.g.In(u) {
						if (e.Label == graph.Wildcard || ge.Label == e.Label) && pattern.LabelMatches(label, s.g.Label(ge.From)) {
							base = append(base, ge.From)
						}
					}
				} else {
					base = s.expandFrom(v, base, s.g.InByLabelID(u, s.vars[v].outIDs[ei]))
					genIn, genEi = false, ei
				}
				gen = true
				break
			}
		}
	}
	if !gen {
		// Fill from the label index via the appending accessor, so the
		// per-depth scratch buffer is the only storage touched. The root
		// frame (depth 0) draws from the caller-provided partition slice
		// instead when one was configured.
		prePruned := false
		if s.rootCands != nil && len(s.stack) == 0 {
			base = append(base, s.rootCands...)
			prePruned = s.rootPruned
		} else {
			base = s.g.AppendCandidates(base, label)
		}
		if !s.scan && !prePruned && (len(s.vars[v].sigOut) > 0 || len(s.vars[v].sigIn) > 0) {
			// Signature pruning: drop nodes whose out/in edge labels cannot
			// cover v's pattern edges. Sound (never drops a real match) and
			// applied only to unconstrained label-index sets — neighbor
			// -generated candidates are already edge-constrained, so the
			// extra probes rarely prune anything there.
			kept := base[:0]
			for _, n := range base {
				if s.covers(v, n) {
					kept = append(kept, n)
				}
			}
			base = kept
		}
	}
	if !s.scan {
		// Filter by every remaining pattern edge whose other endpoint is
		// bound. The bound set is frozen while this frame iterates (deeper
		// frames pop before this frame advances), so doing it here —
		// list-at-a-time, with the neighbor's label-filtered adjacency
		// resolved once instead of per candidate — makes the frame fully
		// verified: Next skips per-candidate consistency entirely.
		base = s.filterBoundEdges(v, base, genIn, genEi)
		verified = true
	}
	if s.filter != nil {
		kept := base[:0]
		for _, n := range base {
			if s.filter(v, n) {
				kept = append(kept, n)
			}
		}
		base = kept
	}
	if s.restrict != nil && s.restrict[v] != nil {
		allowed := s.restrict[v]
		kept := base[:0]
		for _, n := range base {
			if allowed[n] {
				kept = append(kept, n)
			}
		}
		base = kept
	}
	if !needDedup {
		// Label-index candidates and exact-label adjacency lists are unique
		// by construction, and the filters above only remove elements; only
		// wildcard-edge expansion can introduce duplicates.
		return base, verified
	}
	if !s.scan {
		// Indexed candidate lists are ascending (sorted adjacency, filters
		// preserve order), so duplicates are adjacent.
		return dedupSorted(base), verified
	}
	return dedup(base), verified
}

// dedupSorted compacts an ascending slice in place, O(n) and
// allocation-free.
func dedupSorted(ids []graph.NodeID) []graph.NodeID {
	out := ids[:0]
	last := graph.InvalidNode // never a real candidate
	for _, id := range ids {
		if id != last {
			out = append(out, id)
			last = id
		}
	}
	return out
}

// intersectSorted compacts base to the elements present in list. Both
// slices are ascending (the index keeps adjacency sorted; base is generated
// from one sorted list or the ascending label index and only ever
// compacted), so one linear merge replaces per-candidate membership probes.
func intersectSorted(base, list []graph.NodeID) []graph.NodeID {
	kept := base[:0]
	j := 0
	for _, n := range base {
		for j < len(list) && list[j] < n {
			j++
		}
		if j < len(list) && list[j] == n {
			kept = append(kept, n)
		}
	}
	return kept
}

// filterBoundEdges drops candidates violating a pattern edge between v and
// an already-assigned variable (or a self-loop at v), excluding the
// generating edge genEi. Each edge's constraint is one sorted-list
// intersection with the bound neighbor's label-filtered adjacency —
// resolved once per edge, with the kernel (merge or gallop) picked from
// the operand lengths by s.intersect.
func (s *Search) filterBoundEdges(v pattern.Var, base []graph.NodeID, genIn bool, genEi int) []graph.NodeID {
	for ei, e := range s.p.Out(v) {
		if (genEi == ei && !genIn) || len(base) == 0 {
			continue
		}
		id := s.vars[v].outIDs[ei]
		if e.To == v {
			// Self-loop: candidate must carry the edge onto itself.
			kept := base[:0]
			for _, n := range base {
				if s.g.HasEdgeID(n, n, id) {
					kept = append(kept, n)
				}
			}
			base = kept
			continue
		}
		u := s.assign[e.To]
		if u == graph.InvalidNode {
			continue
		}
		base = s.intersect(base, s.g.InByLabelID(u, id))
	}
	for ei, e := range s.p.In(v) {
		if (genEi == ei && genIn) || len(base) == 0 {
			continue
		}
		if e.From == v {
			continue // self-loop handled in the out pass
		}
		u := s.assign[e.From]
		if u == graph.InvalidNode {
			continue
		}
		base = s.intersect(base, s.g.OutByLabelID(u, s.vars[v].inIDs[ei]))
	}
	return base
}

// dedupScanMax is the slice length up to which dedup uses a quadratic scan
// instead of allocating a map: candidate sets in the innermost expansion
// loop are usually small, and the scan keeps them allocation-free (a map
// costs an allocation plus a hash per element, which the cache-resident
// quadratic scan undercuts well past a dozen entries).
const dedupScanMax = 32

func dedup(ids []graph.NodeID) []graph.NodeID {
	if len(ids) <= 1 {
		return ids
	}
	if len(ids) <= dedupScanMax {
		out := ids[:0]
		for _, id := range ids {
			dup := false
			for _, kept := range out {
				if kept == id {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, id)
			}
		}
		return out
	}
	seen := make(map[graph.NodeID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// resolveEdgeLabels maps pattern edges to their data-graph label IDs,
// aligned by index.
func resolveEdgeLabels(g graph.Reader, edges []pattern.Edge) []graph.LabelID {
	if len(edges) == 0 {
		return nil
	}
	ids := make([]graph.LabelID, len(edges))
	for i, e := range edges {
		ids[i] = g.EdgeLabelID(e.Label)
	}
	return ids
}

// covers reports whether n's adjacency covers v's pre-resolved signature.
func (s *Search) covers(v pattern.Var, n graph.NodeID) bool {
	return s.g.CoversIDs(n, s.vars[v].sigOut, s.vars[v].sigIn)
}

// hasEdgeListMax is the label-filtered adjacency length up to which the
// indexed edge test scans the list (sequential integer compares, no
// hashing) instead of probing the O(1) edge set. Scanning a cache-resident
// int slice beats hashing a 20-byte struct key well past a few dozen
// entries; the hash set remains the asymptotic guarantee for hub nodes.
const hasEdgeListMax = 64

// hasEdge tests a data edge. The indexed path scans the (short)
// label-filtered adjacency list, falling back to the integer-keyed hash set
// for fat lists; scan mode walks the raw out-edge slice like the pre-index
// implementation did.
func (s *Search) hasEdge(from, to graph.NodeID, label string, id graph.LabelID) bool {
	if !s.scan {
		list := s.g.OutByLabelID(from, id)
		if len(list) <= hasEdgeListMax {
			for _, t := range list {
				if t == to {
					return true
				}
			}
			return false
		}
		return s.g.HasEdgeID(from, to, id)
	}
	for _, e := range s.g.Out(from) {
		if e.To == to && (label == graph.Wildcard || e.Label == label) {
			return true
		}
	}
	return false
}

// consistent checks that mapping v→n preserves v's label and every pattern
// edge between v and an already-assigned variable (including self-loops and
// edges to seeded variables). It is the per-candidate path for scan mode
// and seed validation; indexed frames are pre-verified by candidates().
func (s *Search) consistent(v pattern.Var, n graph.NodeID) bool {
	if s.scan {
		if !pattern.LabelMatches(s.p.Label(v), s.g.Label(n)) {
			return false
		}
	} else if want := s.vars[v].labelID; want != graph.AnyLabel && want != s.g.LabelIDOf(n) {
		return false
	}
	for ei, e := range s.p.Out(v) {
		to := e.To
		var target graph.NodeID
		if to == v {
			target = n
		} else {
			target = s.assign[to]
			if target == graph.InvalidNode {
				continue
			}
		}
		if !s.hasEdge(n, target, e.Label, s.vars[v].outIDs[ei]) {
			return false
		}
	}
	for ei, e := range s.p.In(v) {
		from := e.From
		if from == v {
			continue // self-loop handled above
		}
		src := s.assign[from]
		if src == graph.InvalidNode {
			continue
		}
		if !s.hasEdge(src, n, e.Label, s.vars[v].inIDs[ei]) {
			return false
		}
	}
	return true
}

// Split carves untried branches off the shallowest open frame that still
// has at least two candidates remaining, returning them as seed assignments
// (the frames' prefix assignments plus one remaining candidate each). The
// branches are removed from this search, which continues with its current
// branch only. It returns nil when there is nothing to split.
//
// This implements the paper's straggler handling: a unit exceeding its TTL
// ships Split() seeds to the coordinator as new work units and finishes only
// its current subtree.
func (s *Search) Split() []Assignment {
	if s.done {
		return nil
	}
	for d := 0; d < len(s.stack); d++ {
		f := &s.stack[d]
		remaining := len(f.cands) - f.idx
		// Keep at least the current in-flight candidate; split the rest.
		if remaining < 1 {
			continue
		}
		// Prefix assignment: seeded vars plus frames above d (their current
		// choices), excluding frame d's untried candidates.
		prefix := NewAssignment(len(s.assign))
		for v := range s.seeded {
			if s.seeded[v] {
				prefix[v] = s.assign[v]
			}
		}
		for i := 0; i < d; i++ {
			fr := s.stack[i]
			prefix[fr.v] = s.assign[fr.v]
		}
		var seeds []Assignment
		for i := f.idx; i < len(f.cands); i++ {
			seed := prefix.Clone()
			seed[f.v] = f.cands[i]
			seeds = append(seeds, seed)
		}
		f.cands = f.cands[:f.idx]
		if len(seeds) > 0 {
			return seeds
		}
	}
	return nil
}

// CountAll exhausts the search and returns the number of matches. Intended
// for tests.
func (s *Search) CountAll() int {
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
	}
}

// FindAll enumerates every homomorphism of p into g. Intended for small
// patterns (tests, sequential reasoning on canonical graphs).
func FindAll(p *pattern.Pattern, g graph.Reader) []Assignment {
	s := NewSearch(p, g, Options{})
	var out []Assignment
	for {
		h, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, h)
	}
}

// PivotRestriction builds the candidate restriction for a unit pivoted at
// node z matching variable pv: every variable of pv's component is confined
// to the d_Q-neighborhood of z, where d_Q is the pattern radius at pv. Other
// components are unrestricted.
func PivotRestriction(p *pattern.Pattern, g graph.Reader, pv pattern.Var, z graph.NodeID) map[pattern.Var]map[graph.NodeID]bool {
	hood := g.Neighborhood(z, p.Radius(pv))
	restrict := make(map[pattern.Var]map[graph.NodeID]bool)
	for _, comp := range p.Components() {
		has := false
		for _, v := range comp {
			if v == pv {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		for _, v := range comp {
			restrict[v] = hood
		}
	}
	return restrict
}
