package match

import (
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Sim is a graph-simulation relation of a pattern into a graph: for each
// pattern variable, the set of data nodes that can simulate it. It is
// stored as dense bitsets so computing and probing it stays off the map
// hashing path (the reasoning algorithms compute one per GFD per run).
type Sim struct {
	p    *pattern.Pattern
	n    int
	bits [][]bool // per var, indexed by node id
	cnt  []int
}

// Has reports whether node n can simulate variable v.
func (s *Sim) Has(v pattern.Var, n graph.NodeID) bool {
	return s.bits[v][n]
}

// Count returns |sim(v)|.
func (s *Sim) Count(v pattern.Var) int { return s.cnt[v] }

// Nodes returns sim(v) in ascending node order.
func (s *Sim) Nodes(v pattern.Var) []graph.NodeID {
	out := make([]graph.NodeID, 0, s.cnt[v])
	for n, ok := range s.bits[v] {
		if ok {
			out = append(out, graph.NodeID(n))
		}
	}
	return out
}

// Simulate computes the graph simulation relation of pattern p into graph g
// (Henzinger–Henzinger–Kopke style refinement): sim(u) is the set of data
// nodes with a matching label whose out/in edges can cover u's pattern
// edges. It returns nil if some variable simulates no node.
//
// Simulation is a necessary condition for homomorphism: if Simulate returns
// nil there is no match of p in g, and any homomorphism maps u into sim(u).
// The parallel algorithms use it as a cheap O(|Q|·|G|) pre-filter before
// backtracking search (Section V-B, multi-query optimization).
func Simulate(p *pattern.Pattern, g *graph.Graph) *Sim {
	p.Freeze()
	nv := p.NumVars()
	s := &Sim{p: p, n: g.NumNodes(), bits: make([][]bool, nv), cnt: make([]int, nv)}
	for v := 0; v < nv; v++ {
		bits := make([]bool, s.n)
		cnt := 0
		for _, n := range g.CandidateNodes(p.Label(pattern.Var(v))) {
			if !bits[n] {
				bits[n] = true
				cnt++
			}
		}
		if cnt == 0 {
			return nil
		}
		s.bits[v] = bits
		s.cnt[v] = cnt
	}
	// Refine to a fixpoint: drop n from sim(u) if some pattern edge at u
	// cannot be realized within the current sim sets.
	changed := true
	for changed {
		changed = false
		for v := 0; v < nv; v++ {
			u := pattern.Var(v)
			bits := s.bits[u]
			for n := range bits {
				if !bits[n] {
					continue
				}
				if !edgesRealizable(p, g, s, u, graph.NodeID(n)) {
					bits[n] = false
					s.cnt[u]--
					changed = true
				}
			}
			if s.cnt[u] == 0 {
				return nil
			}
		}
	}
	return s
}

func edgesRealizable(p *pattern.Pattern, g *graph.Graph, s *Sim, u pattern.Var, n graph.NodeID) bool {
	for _, e := range p.Out(u) {
		ok := false
		for _, ge := range g.Out(n) {
			if (e.Label == graph.Wildcard || ge.Label == e.Label) && s.bits[e.To][ge.To] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, e := range p.In(u) {
		ok := false
		for _, ge := range g.In(n) {
			if (e.Label == graph.Wildcard || ge.Label == e.Label) && s.bits[e.From][ge.From] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
