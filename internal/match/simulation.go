package match

import (
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Sim is a graph-simulation relation of a pattern into a graph: for each
// pattern variable, the set of data nodes that can simulate it. It is
// stored as dense bitsets so computing and probing it stays off the map
// hashing path (the reasoning algorithms compute one per GFD per run).
type Sim struct {
	p    *pattern.Pattern
	n    int
	bits [][]bool // per var, indexed by node id
	cnt  []int
}

// Has reports whether node n can simulate variable v.
func (s *Sim) Has(v pattern.Var, n graph.NodeID) bool {
	return s.bits[v][n]
}

// Count returns |sim(v)|.
func (s *Sim) Count(v pattern.Var) int { return s.cnt[v] }

// Nodes returns sim(v) in ascending node order.
func (s *Sim) Nodes(v pattern.Var) []graph.NodeID {
	out := make([]graph.NodeID, 0, s.cnt[v])
	for n, ok := range s.bits[v] {
		if ok {
			out = append(out, graph.NodeID(n))
		}
	}
	return out
}

// Simulate computes the graph simulation relation of pattern p into graph g
// (Henzinger–Henzinger–Kopke style refinement): sim(u) is the set of data
// nodes with a matching label whose out/in edges can cover u's pattern
// edges. It returns nil if some variable simulates no node.
//
// Simulation is a necessary condition for homomorphism: if Simulate returns
// nil there is no match of p in g, and any homomorphism maps u into sim(u).
// The parallel algorithms use it as a cheap O(|Q|·|G|) pre-filter before
// backtracking search (Section V-B, multi-query optimization).
func Simulate(p *pattern.Pattern, g graph.Reader) *Sim {
	p.Freeze()
	nv := p.NumVars()
	s := &Sim{p: p, n: g.NumNodes(), bits: make([][]bool, nv), cnt: make([]int, nv)}
	var cands []graph.NodeID // recycled across variables
	for v := 0; v < nv; v++ {
		bits := make([]bool, s.n)
		cnt := 0
		// Seed with the label candidates, pre-filtered by the variable's
		// degree/label signature: a node whose adjacency cannot cover the
		// variable's pattern edges would be refined away anyway, so dropping
		// it here shrinks the fixpoint's working set for free. The signature
		// is resolved to label IDs once so the per-node probes are
		// integer-only, and the candidates land in a recycled buffer via the
		// appending accessor (NodesByLabel would copy per variable).
		sig := p.Signature(pattern.Var(v))
		sigOut := g.ResolveLabels(sig.Out)
		sigIn := g.ResolveLabels(sig.In)
		cands = g.AppendCandidates(cands[:0], p.Label(pattern.Var(v)))
		for _, n := range cands {
			if g.CoversIDs(n, sigOut, sigIn) {
				bits[n] = true
				cnt++
			}
		}
		if cnt == 0 {
			return nil
		}
		s.bits[v] = bits
		s.cnt[v] = cnt
	}
	// Pre-resolve every pattern edge's label ID so the fixpoint loop probes
	// the adjacency index with integers only.
	outIDs := make([][]graph.LabelID, nv)
	inIDs := make([][]graph.LabelID, nv)
	for v := 0; v < nv; v++ {
		outIDs[v] = resolveEdgeLabels(g, p.Out(pattern.Var(v)))
		inIDs[v] = resolveEdgeLabels(g, p.In(pattern.Var(v)))
	}
	// Refine to a fixpoint: drop n from sim(u) if some pattern edge at u
	// cannot be realized within the current sim sets.
	changed := true
	for changed {
		changed = false
		for v := 0; v < nv; v++ {
			u := pattern.Var(v)
			bits := s.bits[u]
			for n := range bits {
				if !bits[n] {
					continue
				}
				if !edgesRealizable(p, g, s, u, graph.NodeID(n), outIDs[v], inIDs[v]) {
					bits[n] = false
					s.cnt[u]--
					changed = true
				}
			}
			if s.cnt[u] == 0 {
				return nil
			}
		}
	}
	return s
}

func edgesRealizable(p *pattern.Pattern, g graph.Reader, s *Sim, u pattern.Var, n graph.NodeID, outIDs, inIDs []graph.LabelID) bool {
	// The label-keyed adjacency index hands back exactly the edges carrying
	// the pattern edge's label (all edges for wildcard), so the inner loops
	// touch no mismatched edges.
	for ei, e := range p.Out(u) {
		ok := false
		for _, t := range g.OutByLabelID(n, outIDs[ei]) {
			if s.bits[e.To][t] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for ei, e := range p.In(u) {
		ok := false
		for _, f := range g.InByLabelID(n, inIDs[ei]) {
			if s.bits[e.From][f] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
