package match_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// TestAdaptiveMergeEquivalenceGen asserts, property-style, that the
// adaptive kernels (gallop + bitset + picker) enumerate exactly the same
// homomorphism set as the merge-only ablation on random gen workloads,
// across every reader representation: mutable, Frozen, Sharded, Overlay.
func TestAdaptiveMergeEquivalenceGen(t *testing.T) {
	profiles := dataset.All()
	total, nonEmpty := 0, 0
	for seed := int64(1); seed <= 4; seed++ {
		prof := profiles[int(seed)%len(profiles)]
		gr := gen.New(gen.Config{N: 10, K: 4, L: 2, Profile: prof, WildcardRate: 0.3, Seed: seed})
		g := gr.ConsistentGraph(40)
		f := g.Frozen()
		d := graph.NewDelta(f)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 8; i++ {
			from := graph.NodeID(rng.Intn(f.NumNodes()))
			to := graph.NodeID(rng.Intn(f.NumNodes()))
			d.AddEdge(from, to, f.Label(from))
		}
		d.RemoveNode(graph.NodeID(rng.Intn(f.NumNodes())))
		readers := map[string]graph.Reader{
			"mutable": g,
			"frozen":  f,
			"sharded": f.Sharded(3),
			"overlay": d.Overlay(),
		}
		for i := 0; i < 10; i++ {
			p := gr.Pattern()
			for name, r := range readers {
				ctx := fmt.Sprintf("seed=%d pattern#%d %s on %s", seed, i, p, name)
				adaptive := matchSet(p, r, match.Options{})
				merge := matchSet(p, r, match.Options{MergeOnly: true})
				diffSets(t, ctx, adaptive, merge)
				total++
				if len(adaptive) > 0 {
					nonEmpty++
				}
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatalf("all %d random instances had empty match sets; workload too sparse to be meaningful", total)
	}
}

// skewedGraph builds the workload shape the adaptive kernels exist for: a
// center node whose single adjacency run mixes a rare label (forcing the
// gallop candidate path: freq·8 « |run|) with a very frequent one (forcing
// the snapshot bitset path: freq ≥ 256, dense enough for a bitset). It
// returns the graph plus the two labels' frequencies so callers can assert
// the fast-path preconditions actually hold.
func skewedGraph(seed int64) (*graph.Graph, int, int) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	c := g.AddNode("c")
	var rare, common []graph.NodeID
	for i := 0; i < 20; i++ {
		rare = append(rare, g.AddNode("r"))
	}
	for i := 0; i < 600; i++ {
		common = append(common, g.AddNode("t"))
	}
	// One long mixed run out of the center; back-edges from a sample of
	// both populations give the triangle patterns below something to close.
	for _, v := range rare {
		g.AddEdge(c, v, "e")
	}
	for _, v := range common {
		g.AddEdge(c, v, "e")
	}
	for i := 0; i < 40; i++ {
		g.AddEdge(common[rng.Intn(len(common))], c, "back")
		g.AddEdge(common[rng.Intn(len(common))], rare[rng.Intn(len(rare))], "link")
	}
	return g, len(rare), len(common)
}

// TestAdaptiveMergeEquivalenceSkewed repeats the equivalence property on a
// graph engineered to actually take the gallop and bitset branches —
// preconditions asserted, not assumed — so a divergence in either fast
// path cannot hide behind workloads that never leave the merge.
func TestAdaptiveMergeEquivalenceSkewed(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g, rareFreq, commonFreq := skewedGraph(seed)
		f := g.Frozen()
		run := len(f.Out(0)) // center's full out-run
		if rareFreq*8 >= run {
			t.Fatalf("workload broken: rare freq %d does not trigger gallop against run %d", rareFreq, run)
		}
		if commonFreq < 256 || commonFreq < f.NumNodes()/64 {
			t.Fatalf("workload broken: common freq %d does not qualify for a bitset (n=%d)", commonFreq, f.NumNodes())
		}
		if f.CandidateBitset("t") == nil {
			t.Fatal("workload broken: no candidate bitset built for the frequent label")
		}

		d := graph.NewDelta(f)
		rng := rand.New(rand.NewSource(seed + 100))
		for i := 0; i < 10; i++ {
			d.AddEdge(graph.NodeID(1+rng.Intn(f.NumNodes()-1)), 0, "back")
		}
		nv := d.AddNode("t")
		d.AddEdge(0, nv, "e")
		readers := map[string]graph.Reader{
			"frozen":  f,
			"sharded": f.Sharded(3),
			"overlay": d.Overlay(),
		}

		// Gallop shape: y's rare label is pulled and galloped through the
		// center's run. Bitset shape: y's frequent label is probed per run
		// element. The triangle variants exercise the same kernels under
		// bound-edge verification too.
		pats := make([]*pattern.Pattern, 0, 4)
		for _, lab := range []string{"r", "t"} {
			p := pattern.New()
			x := p.AddVar("x", "c")
			y := p.AddVar("y", lab)
			p.AddEdge(x, y, "e")
			pats = append(pats, p)

			tri := pattern.New()
			a := tri.AddVar("x", "c")
			b := tri.AddVar("y", "t")
			z := tri.AddVar("z", lab)
			tri.AddEdge(a, b, "e")
			tri.AddEdge(b, z, "link")
			tri.AddEdge(b, a, "back")
			pats = append(pats, tri)
		}
		nonEmpty := 0
		for i, p := range pats {
			for name, r := range readers {
				ctx := fmt.Sprintf("seed=%d pattern#%d %s on %s", seed, i, p, name)
				adaptive := matchSet(p, r, match.Options{})
				merge := matchSet(p, r, match.Options{MergeOnly: true})
				diffSets(t, ctx, adaptive, merge)
				if len(adaptive) > 0 {
					nonEmpty++
				}
			}
		}
		if nonEmpty == 0 {
			t.Fatal("all skewed instances had empty match sets; property is vacuous")
		}
	}
}

// TestScopedRootCandidatesBitsetEquivalence pins the scoped-revalidation
// fast path: when the hood is much smaller than the root label's frequency
// the bitset probe must select exactly the nodes the full
// candidate-pull-and-filter path selects, in the same ascending order. The
// mutable graph (no BitsetProvider) serves as the reference.
func TestScopedRootCandidatesBitsetEquivalence(t *testing.T) {
	g, _, commonFreq := skewedGraph(7)
	f := g.Frozen()
	p := pattern.New()
	y := p.AddVar("y", "t")
	x := p.AddVar("x", "c")
	p.AddEdge(x, y, "e")
	order := []pattern.Var{y, x}

	rng := rand.New(rand.NewSource(7))
	hood := make(map[graph.NodeID]bool)
	for i := 0; i < 12; i++ {
		hood[graph.NodeID(rng.Intn(f.NumNodes()))] = true
	}
	if len(hood)*4 >= commonFreq {
		t.Fatalf("hood of %d does not trigger the bitset probe against freq %d", len(hood), commonFreq)
	}
	got := match.ScopedRootCandidates(p, f, order, hood)
	want := match.ScopedRootCandidates(p, g, order, hood)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scoped root candidates diverge:\nbitset %v\nfilter %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("scoped bitset probe selected nothing; property is vacuous")
	}
}
