// Adaptive intersection kernels. Frame verification and candidate
// generation reduce to one primitive: compact a sorted candidate list to
// the elements present in a second sorted list (or set). The linear merge
// in match.go is optimal when the operands are comparably sized, but the
// hot workloads are skewed — a handful of generated candidates intersected
// with a hub's ten-thousand-entry adjacency run — and there a galloping
// (exponential-probe) search pays O(short·log(long)) instead of O(long).
// The picker chooses per call from the operand cardinalities; a snapshot
// candidate bitset (graph.BitsetProvider) serves the third shape, where
// membership in a high-frequency label's candidate set is tested per
// element in O(1).
//
// Every kernel computes the same function — base filtered, in place, to
// the elements contained in list, preserving base's order and multiplicity
// — so they are interchangeable per call site. FuzzIntersect and the
// adaptive-equivalence property tests pin that contract.
package match

import (
	"repro/internal/graph"
	"repro/internal/pattern"
)

// gallopRatio is the length skew beyond which galloping beats the linear
// merge: iterating the short side with exponential probes into the long
// side costs ~short·(log₂(long/short)+2) compares against the merge's
// short+long, so the crossover sits near long/short ≈ 8 once the gallop's
// branchier inner loop is priced in.
const gallopRatio = 8

// intersectAdaptive is the strategy picker: merge for comparable operand
// lengths, gallop from the shorter side for skewed ones.
func intersectAdaptive(base, list []graph.NodeID) []graph.NodeID {
	switch {
	case len(base) == 0 || len(list) == 0:
		return base[:0]
	case len(list) >= gallopRatio*len(base):
		return intersectGallopList(base, list)
	case len(base) >= gallopRatio*len(list):
		return intersectGallopBase(base, list)
	}
	return intersectSorted(base, list)
}

// gallopSearch returns the first index i ≥ lo with list[i] ≥ x: an
// exponential probe from lo (1, 2, 4, … steps) brackets x, then a binary
// search pins it. Cost is O(log d) where d is the distance from lo, so a
// pass of ascending lookups that advances lo as it goes totals
// O(short·log(long/short)) — each lookup pays for the distance it moved,
// not for the whole list.
func gallopSearch(list []graph.NodeID, lo int, x graph.NodeID) int {
	if lo >= len(list) || list[lo] >= x {
		return lo
	}
	step := 1
	i := lo
	for i+step < len(list) && list[i+step] < x {
		i += step
		step <<= 1
	}
	hi := i + step
	if hi > len(list) {
		hi = len(list)
	}
	i++
	for i < hi {
		m := int(uint(i+hi) >> 1)
		if list[m] < x {
			i = m + 1
		} else {
			hi = m
		}
	}
	return i
}

// intersectGallopList iterates base (the short side) and gallops a cursor
// through list. On a match the cursor stays put, so duplicate base
// elements re-test the same list slot and keep their multiplicity exactly
// as the merge does. In-place compaction is safe: the write index never
// passes the read index.
func intersectGallopList(base, list []graph.NodeID) []graph.NodeID {
	kept := base[:0]
	lo := 0
	for _, n := range base {
		lo = gallopSearch(list, lo, n)
		if lo >= len(list) {
			break
		}
		if list[lo] == n {
			kept = append(kept, n)
		}
	}
	return kept
}

// intersectGallopBase iterates list (the short side) and gallops through
// base, keeping every base occurrence of each matched value. In-place
// compaction is safe for the same reason as above: after k appends the
// read cursor is at least k, so writes trail reads.
func intersectGallopBase(base, list []graph.NodeID) []graph.NodeID {
	kept := base[:0]
	lo := 0
	for _, n := range list {
		lo = gallopSearch(base, lo, n)
		if lo >= len(base) {
			break
		}
		for lo < len(base) && base[lo] == n {
			kept = append(kept, n)
			lo++
		}
	}
	return kept
}

// intersectBitset compacts base to the elements the bitset contains: the
// O(1)-membership kernel for operands served as a snapshot candidate
// bitset.
func intersectBitset(base []graph.NodeID, bs graph.Bitset) []graph.NodeID {
	kept := base[:0]
	for _, n := range base {
		if bs.Test(n) {
			kept = append(kept, n)
		}
	}
	return kept
}

// intersect is the frame-verification entry point: the adaptive picker,
// unless the search was pinned to the plain merge (Options.MergeOnly, the
// ablation baseline the CI speedup ratio measures against).
func (s *Search) intersect(base, list []graph.NodeID) []graph.NodeID {
	if s.mergeOnly {
		return intersectSorted(base, list)
	}
	return intersectAdaptive(base, list)
}

// expandFrom appends to base the members of run (an assigned neighbor's
// label-filtered adjacency) that can match v, i.e. run filtered by v's
// node label. The kernel is picked from the operand cardinalities:
//
//   - v's label is the wildcard: no filter, append run whole;
//   - v's label run is much shorter than the adjacency run: pull the label
//     candidates and gallop them through run — O(freq·log|run|) instead of
//     scanning all of run;
//   - otherwise scan run, testing each element's label — through the
//     snapshot's candidate bitset when one exists (one word probe, no
//     label-table indirection), else the interned label ID.
//
// All three produce the same ascending candidate list (pinned by the
// adaptive-equivalence tests); a gallop result additionally never repeats
// an element, which only matters under a wildcard generating edge, where
// the caller dedups anyway.
func (s *Search) expandFrom(v pattern.Var, base, run []graph.NodeID) []graph.NodeID {
	want := s.vars[v].labelID
	if want == graph.AnyLabel {
		return append(base, run...)
	}
	if f := s.vars[v].freq; !s.mergeOnly && f*gallopRatio < len(run) {
		start := len(base)
		base = s.g.AppendCandidates(base, s.p.Label(v))
		kept := intersectGallopList(base[start:], run)
		return base[:start+len(kept)]
	}
	if bs := s.vars[v].cand; bs != nil && !s.mergeOnly {
		for _, n := range run {
			if bs.Test(n) {
				base = append(base, n)
			}
		}
		return base
	}
	for _, n := range run {
		if want == s.g.LabelIDOf(n) {
			base = append(base, n)
		}
	}
	return base
}
