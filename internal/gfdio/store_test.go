package gfdio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph/faultio"
)

// storeLitter returns the leftover .gfdsnap-* temp files in dir.
func storeLitter(t *testing.T, dir string) []string {
	t.Helper()
	litter, err := filepath.Glob(filepath.Join(dir, ".gfdsnap-*"))
	if err != nil {
		t.Fatal(err)
	}
	return litter
}

// TestWriteSnapshotAtomic pins the happy path: the image lands at the
// target, loads back, and leaves no temp file behind.
func TestWriteSnapshotAtomic(t *testing.T) {
	f, err := ReadFrozenGraph(strings.NewReader(sampleGraph))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snap")
	if err := WriteSnapshotAtomic(path, f); err != nil {
		t.Fatalf("WriteSnapshotAtomic: %v", err)
	}
	img, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer img.Close()
	loaded, err := ReadSnapshot(img)
	if err != nil {
		t.Fatalf("stored image does not load: %v", err)
	}
	if loaded.NumNodes() != f.NumNodes() || loaded.NumEdges() != f.NumEdges() {
		t.Fatalf("loaded %d/%d, want %d/%d", loaded.NumNodes(), loaded.NumEdges(), f.NumNodes(), f.NumEdges())
	}
	if litter := storeLitter(t, dir); len(litter) != 0 {
		t.Fatalf("temp files left behind: %v", litter)
	}
}

// TestWriteSnapshotAtomicFaultEveryOp is the store's crash/fault property:
// with a write or fsync failure injected at every op of the image stream
// (plus the torn half-write variant), the rewrite must fail with the
// injected error, the previous image at the path must survive byte-for-byte
// and still load, and no temp file may be left behind.
func TestWriteSnapshotAtomicFaultEveryOp(t *testing.T) {
	oldG, err := ReadFrozenGraph(strings.NewReader("node 0 only\n"))
	if err != nil {
		t.Fatal(err)
	}
	newG, err := ReadFrozenGraph(strings.NewReader(sampleGraph))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snap")
	if err := WriteSnapshotAtomic(path, oldG); err != nil {
		t.Fatalf("seeding the old store: %v", err)
	}
	oldBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	orig := storeDest
	defer func() { storeDest = orig }()

	// Count the destination ops of a clean rewrite.
	var counting *faultio.Writer
	storeDest = func(f *os.File) syncWriter {
		counting = &faultio.Writer{W: f, FailAt: -1}
		return counting
	}
	if err := WriteSnapshotAtomic(path, newG); err != nil {
		t.Fatalf("counting rewrite: %v", err)
	}
	if counting == nil || counting.Ops == 0 {
		t.Fatal("counting rewrite saw no destination ops; sweep is vacuous")
	}
	// Reseed the old image so every sweep iteration overwrites the same state.
	if err := WriteSnapshotAtomic(path, oldG); err != nil {
		t.Fatal(err)
	}

	for failAt := 0; failAt < counting.Ops; failAt++ {
		for _, short := range []bool{false, true} {
			storeDest = func(f *os.File) syncWriter {
				return &faultio.Writer{W: f, FailAt: failAt, Short: short}
			}
			err := WriteSnapshotAtomic(path, newG)
			if !errors.Is(err, faultio.ErrInjected) {
				t.Fatalf("failAt=%d short=%v: WriteSnapshotAtomic = %v, want injected fault", failAt, short, err)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("failAt=%d short=%v: old store unreadable: %v", failAt, short, rerr)
			}
			if string(got) != string(oldBytes) {
				t.Fatalf("failAt=%d short=%v: failed rewrite disturbed the old image (%d vs %d bytes)",
					failAt, short, len(got), len(oldBytes))
			}
			img, oerr := os.Open(path)
			if oerr != nil {
				t.Fatal(oerr)
			}
			loaded, lerr := ReadSnapshot(img)
			img.Close()
			if lerr != nil {
				t.Fatalf("failAt=%d short=%v: old store no longer loads: %v", failAt, short, lerr)
			}
			if loaded.NumNodes() != oldG.NumNodes() {
				t.Fatalf("failAt=%d short=%v: old store loads to the wrong graph", failAt, short)
			}
			if litter := storeLitter(t, dir); len(litter) != 0 {
				t.Fatalf("failAt=%d short=%v: temp files left behind: %v", failAt, short, litter)
			}
		}
	}

	// The seam restored, the rewrite goes through and the new image lands.
	storeDest = orig
	if err := WriteSnapshotAtomic(path, newG); err != nil {
		t.Fatalf("rewrite after the sweep: %v", err)
	}
	img, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer img.Close()
	loaded, err := ReadSnapshot(img)
	if err != nil {
		t.Fatalf("new store does not load: %v", err)
	}
	if loaded.NumNodes() != newG.NumNodes() || loaded.NumEdges() != newG.NumEdges() {
		t.Fatal("new store loads to the wrong graph")
	}
}
