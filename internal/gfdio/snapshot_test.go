package gfdio

import (
	"bytes"
	"strings"
	"testing"
)

// TestSnapshotRoundTrip pins the gfdio snapshot path: text → frozen →
// binary image → frozen agrees with the text parse on the queries the check
// pipeline runs.
func TestSnapshotRoundTrip(t *testing.T) {
	f, err := ReadFrozenGraph(strings.NewReader(sampleGraph))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, f); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != f.NumNodes() || loaded.NumEdges() != f.NumEdges() {
		t.Fatalf("loaded %d/%d, want %d/%d", loaded.NumNodes(), loaded.NumEdges(), f.NumNodes(), f.NumEdges())
	}
	if v, ok := loaded.Attr(0, "name"); !ok || v != "alice" {
		t.Errorf("attr lost through the image: %q %v", v, ok)
	}
	if !loaded.HasEdge(0, 1, "knows") || loaded.HasEdge(1, 0, "knows") {
		t.Error("edges diverge through the image")
	}
}

// TestReadAnyGraph pins the format sniffing: the same loader accepts the
// text format and the binary image, and text output of both agrees.
func TestReadAnyGraph(t *testing.T) {
	fromText, err := ReadAnyGraph(strings.NewReader(sampleGraph))
	if err != nil {
		t.Fatalf("text via ReadAnyGraph: %v", err)
	}
	var img bytes.Buffer
	if err := WriteSnapshot(&img, fromText); err != nil {
		t.Fatal(err)
	}
	fromImage, err := ReadAnyGraph(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatalf("image via ReadAnyGraph: %v", err)
	}
	var a, b bytes.Buffer
	if err := WriteGraph(&a, fromText); err != nil {
		t.Fatal(err)
	}
	if err := WriteGraph(&b, fromImage); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("text renderings diverge:\n%s\nvs\n%s", a.String(), b.String())
	}
	empty, err := ReadAnyGraph(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty input should parse as an empty text graph: %v", err)
	}
	if empty.NumNodes() != 0 {
		t.Error("empty input produced nodes")
	}
}
