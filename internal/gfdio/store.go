// The atomic snapshot store: WriteSnapshotAtomic is how tools persist a
// snapshot image to a path that may already hold the previous image. The
// protocol is the standard crash-safe rewrite — temp file in the target's
// directory, write, fsync, close, rename over the target, fsync the
// directory — so a crash or I/O failure at any step leaves either the old
// complete image or the new complete image at the path, never a torn one,
// and the rename itself is durable (a rename that only lives in the dirty
// directory cache can be undone by a crash).
package gfdio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// syncWriter is what the store writes the image through: the temp file, or
// a fault-injecting wrapper in the tests.
type syncWriter interface {
	io.Writer
	Sync() error
}

// storeDest wraps the temp file WriteSnapshotAtomic writes through. The
// fault-injection tests swap it to thread a failing writer underneath and
// sweep the fault across every write and sync of the store protocol.
var storeDest = func(f *os.File) syncWriter { return f }

// WriteSnapshotAtomic writes g's snapshot image to path, replacing any
// previous image atomically: on any error the target is untouched (still
// the old image, still loadable) and the temp file is removed. The returned
// error wraps the failing operation's error.
func WriteSnapshotAtomic(path string, g *graph.Frozen) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gfdsnap-*")
	if err != nil {
		return fmt.Errorf("gfdio: snapshot store: %w", err)
	}
	name := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(name)
		}
	}()
	dest := storeDest(tmp)
	if werr := WriteSnapshot(dest, g); werr != nil {
		return fmt.Errorf("gfdio: snapshot store: write %s: %w", path, werr)
	}
	// Sync before rename: the image's bytes must be durable before the
	// rename can expose them as the store.
	if serr := dest.Sync(); serr != nil {
		return fmt.Errorf("gfdio: snapshot store: sync %s: %w", path, serr)
	}
	if cerr := tmp.Close(); cerr != nil {
		return fmt.Errorf("gfdio: snapshot store: close %s: %w", path, cerr)
	}
	if rerr := os.Rename(name, path); rerr != nil {
		return fmt.Errorf("gfdio: snapshot store: %w", rerr)
	}
	if derr := syncDir(dir); derr != nil {
		return fmt.Errorf("gfdio: snapshot store: sync dir: %w", derr)
	}
	return nil
}

// syncDir fsyncs a directory, making a rename inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
