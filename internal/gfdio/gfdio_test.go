package gfdio

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/gfd"
	"repro/internal/graph"
)

const sampleGraph = `# a toy graph
node 0 person name=alice age=30
node 1 person name=bob
node 2 city name=paris
edge 0 1 knows
edge 0 2 lives
edge 1 2 lives
`

func TestReadGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader(sampleGraph))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if v, _ := g.Attr(0, "name"); v != "alice" {
		t.Errorf("attr lost: %q", v)
	}
	if !g.HasEdge(1, 2, "lives") {
		t.Error("edge lost")
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g, err := ReadGraph(strings.NewReader(sampleGraph))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteGraph(&b, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, b.String())
	}
	if g.String() != g2.String() {
		t.Fatalf("round trip changed graph:\n%s\nvs\n%s", g, g2)
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := []string{
		"node 1 person",        // non-dense id
		"node 0",               // missing label
		"edge 0 1 e",           // endpoints before nodes
		"node 0 p\nedge 0 5 e", // out of range
		"bogus 1 2 3",          // unknown statement
		"node 0 p broken",      // bad attr
	}
	for _, c := range cases {
		if _, err := ReadGraph(strings.NewReader(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

const sampleGFDs = `# paper's phi1 and phi3
gfd phi1
var x place
var y place
edge x y locatedIn
edge y x partOf
then false
end

gfd phi3
var x person
var y person
var z country
edge x z president
edge y z vice
when x.c = y.c
then x.nationality = y.nationality
end

gfd constRule
var x car
then x.wheels = "4"
end
`

func TestReadGFDs(t *testing.T) {
	set, err := ReadGFDs(strings.NewReader(sampleGFDs))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("parsed %d GFDs, want 3", set.Len())
	}
	phi1 := set.GFDs[0]
	if !phi1.IsFalsehood() {
		t.Error("phi1 should desugar to false")
	}
	phi3 := set.GFDs[1]
	if len(phi3.X) != 1 || phi3.X[0].Kind != gfd.VarLiteral {
		t.Errorf("phi3 antecedent parsed wrong: %+v", phi3.X)
	}
	if phi3.Pattern.NumVars() != 3 {
		t.Errorf("phi3 pattern vars = %d", phi3.Pattern.NumVars())
	}
	c := set.GFDs[2]
	if len(c.Y) != 1 || c.Y[0].Const != "4" {
		t.Errorf("constRule consequent parsed wrong: %+v", c.Y)
	}
}

func TestGFDRoundTrip(t *testing.T) {
	set, err := ReadGFDs(strings.NewReader(sampleGFDs))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteGFDs(&b, set); err != nil {
		t.Fatal(err)
	}
	set2, err := ReadGFDs(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, b.String())
	}
	if set.String() != set2.String() {
		t.Fatalf("round trip changed set:\n%s\nvs\n%s", set, set2)
	}
}

func TestGeneratedSetRoundTrip(t *testing.T) {
	g := gen.New(gen.Config{N: 50, K: 5, L: 4, Seed: 13, WildcardRate: 0.2})
	set := g.Set()
	var b strings.Builder
	if err := WriteGFDs(&b, set); err != nil {
		t.Fatal(err)
	}
	set2, err := ReadGFDs(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("generated set failed to re-parse: %v", err)
	}
	if set.String() != set2.String() {
		t.Fatal("generated set round trip mismatch")
	}
}

func TestReadGFDsErrors(t *testing.T) {
	cases := []string{
		"var x p",                                   // var outside block
		"gfd a\nvar x p\ngfd b",                     // nested block
		"gfd a\nvar x p\nwhen x.A 1\nend",           // missing =
		"gfd a\nvar x p\nwhen y.A = \"1\"\nend",     // undeclared var
		"gfd a\nvar x p\nedge x y e\nend",           // undeclared edge endpoint
		"gfd a\nvar x p",                            // unterminated
		"gfd a\nvar x p\nthen x.A = notquoted\nend", // bad rhs: neither quote nor term... actually a term "notquoted" lacks a dot
	}
	for _, c := range cases {
		if _, err := ReadGFDs(strings.NewReader(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestWildcardRoundTrip(t *testing.T) {
	in := "gfd w\nvar x _\nthen x.A = \"1\"\nend\n"
	set, err := ReadGFDs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if set.GFDs[0].Pattern.Label(0) != graph.Wildcard {
		t.Fatal("wildcard label lost")
	}
	var b strings.Builder
	if err := WriteGFDs(&b, set); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "var x _") {
		t.Fatalf("wildcard not serialized:\n%s", b.String())
	}
}
