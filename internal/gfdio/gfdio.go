// Package gfdio reads and writes the line-oriented text formats used by the
// command-line tools for graphs and GFD sets.
//
// Graph format (one statement per line, '#' comments):
//
//	node <id> <label> [attr=value ...]
//	edge <fromID> <toID> <label>
//
// Node IDs must be dense integers starting at 0, in order.
//
// GFD format:
//
//	gfd <name>
//	var <varname> <label>           # label may be _
//	edge <var> <var> <label>
//	when <var>.<attr> = "<const>"   # or: when <var>.<attr> = <var>.<attr>
//	then <var>.<attr> = "<const>"   # or variable form, or: then false
//	end
//
// A file may contain any number of gfd blocks.
package gfdio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// ReadGraph parses the graph format into a mutable graph.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	g := graph.New()
	if err := readGraphInto(r, g); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadFrozenGraph parses the graph format through the bulk-load path —
// O(1) edge appends into a graph.Builder, one sort at Freeze — and returns
// the immutable CSR snapshot. This is the fast ingest route for large
// read-only graphs (validation, discovery); ReadGraph stays the choice when
// the result must remain editable.
func ReadFrozenGraph(r io.Reader) (*graph.Frozen, error) {
	b := graph.NewBuilder(0)
	if err := readGraphInto(r, b); err != nil {
		return nil, err
	}
	return b.Freeze(), nil
}

// readGraphInto parses the graph format into any build target.
func readGraphInto(r io.Reader, g graph.Sink) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 3 {
				return fmt.Errorf("line %d: node needs id and label", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return fmt.Errorf("line %d: bad node id %q", lineNo, fields[1])
			}
			if id != g.NumNodes() {
				return fmt.Errorf("line %d: node ids must be dense and ordered; got %d, want %d", lineNo, id, g.NumNodes())
			}
			nid := g.AddNode(fields[2])
			for _, kv := range fields[3:] {
				eq := strings.IndexByte(kv, '=')
				if eq <= 0 {
					return fmt.Errorf("line %d: bad attribute %q", lineNo, kv)
				}
				g.SetAttr(nid, kv[:eq], kv[eq+1:])
			}
		case "edge":
			if len(fields) != 4 {
				return fmt.Errorf("line %d: edge needs from, to, label", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("line %d: bad edge endpoints", lineNo)
			}
			if from < 0 || from >= g.NumNodes() || to < 0 || to >= g.NumNodes() {
				return fmt.Errorf("line %d: edge endpoint out of range", lineNo)
			}
			g.AddEdge(graph.NodeID(from), graph.NodeID(to), fields[3])
		default:
			return fmt.Errorf("line %d: unknown statement %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return nil
}

// WriteGraph emits the graph format from either representation.
func WriteGraph(w io.Writer, g graph.Reader) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < g.NumNodes(); i++ {
		id := graph.NodeID(i)
		fmt.Fprintf(bw, "node %d %s", i, g.Label(id))
		attrs := g.Attrs(id)
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, " %s=%s", k, attrs[k])
		}
		bw.WriteByte('\n')
	}
	for i := 0; i < g.NumNodes(); i++ {
		for _, e := range g.Out(graph.NodeID(i)) {
			fmt.Fprintf(bw, "edge %d %d %s\n", e.From, e.To, e.Label)
		}
	}
	return bw.Flush()
}

// ReadGFDs parses a file of gfd blocks.
func ReadGFDs(r io.Reader) (*gfd.Set, error) {
	set := gfd.NewSet()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0

	var (
		name    string
		pat     *pattern.Pattern
		xs, ys  []gfd.Literal
		isFalse bool
		inBlock bool
	)
	reset := func() {
		name, pat, xs, ys, isFalse, inBlock = "", nil, nil, nil, false, false
	}
	reset()

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "gfd":
			if inBlock {
				return nil, fmt.Errorf("line %d: nested gfd block", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: gfd needs a name", lineNo)
			}
			name = fields[1]
			pat = pattern.New()
			inBlock = true
		case "var":
			if !inBlock || len(fields) != 3 {
				return nil, fmt.Errorf("line %d: bad var statement", lineNo)
			}
			pat.AddVar(fields[1], fields[2])
		case "edge":
			if !inBlock || len(fields) != 4 {
				return nil, fmt.Errorf("line %d: bad edge statement", lineNo)
			}
			from := pat.VarByName(fields[1])
			to := pat.VarByName(fields[2])
			if from == pattern.InvalidVar || to == pattern.InvalidVar {
				return nil, fmt.Errorf("line %d: edge references undeclared variable", lineNo)
			}
			pat.AddEdge(from, to, fields[3])
		case "when", "then":
			if !inBlock {
				return nil, fmt.Errorf("line %d: %s outside gfd block", lineNo, fields[0])
			}
			rest := strings.TrimSpace(line[len(fields[0]):])
			if fields[0] == "then" && rest == "false" {
				isFalse = true
				continue
			}
			lit, err := parseLiteral(pat, rest)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if fields[0] == "when" {
				xs = append(xs, lit)
			} else {
				ys = append(ys, lit)
			}
		case "end":
			if !inBlock {
				return nil, fmt.Errorf("line %d: end outside gfd block", lineNo)
			}
			var (
				phi *gfd.GFD
				err error
			)
			if isFalse {
				phi, err = gfd.NewFalse(name, pat, xs)
			} else {
				phi, err = gfd.New(name, pat, xs, ys)
			}
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			set.Add(phi)
			reset()
		default:
			return nil, fmt.Errorf("line %d: unknown statement %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if inBlock {
		return nil, fmt.Errorf("unterminated gfd block %q", name)
	}
	return set, nil
}

// parseLiteral parses `x.A = "c"` or `x.A = y.B`.
func parseLiteral(pat *pattern.Pattern, s string) (gfd.Literal, error) {
	eq := strings.Index(s, "=")
	if eq < 0 {
		return gfd.Literal{}, fmt.Errorf("literal missing '=': %q", s)
	}
	lhs := strings.TrimSpace(s[:eq])
	rhs := strings.TrimSpace(s[eq+1:])
	x, a, err := parseTerm(pat, lhs)
	if err != nil {
		return gfd.Literal{}, err
	}
	if strings.HasPrefix(rhs, "\"") {
		c, uerr := strconv.Unquote(rhs)
		if uerr != nil {
			return gfd.Literal{}, fmt.Errorf("bad constant %q: %v", rhs, uerr)
		}
		return gfd.Const(x, a, c), nil
	}
	y, b, err := parseTerm(pat, rhs)
	if err != nil {
		return gfd.Literal{}, err
	}
	return gfd.Vars(x, a, y, b), nil
}

func parseTerm(pat *pattern.Pattern, s string) (pattern.Var, string, error) {
	dot := strings.LastIndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return 0, "", fmt.Errorf("bad attribute term %q (want var.attr)", s)
	}
	v := pat.VarByName(s[:dot])
	if v == pattern.InvalidVar {
		return 0, "", fmt.Errorf("undeclared variable %q", s[:dot])
	}
	return v, s[dot+1:], nil
}

// WriteGFDs emits a set in the gfd block format.
func WriteGFDs(w io.Writer, set *gfd.Set) error {
	bw := bufio.NewWriter(w)
	for _, phi := range set.GFDs {
		fmt.Fprintf(bw, "gfd %s\n", phi.Name)
		p := phi.Pattern
		for i := 0; i < p.NumVars(); i++ {
			fmt.Fprintf(bw, "var %s %s\n", p.Name(pattern.Var(i)), p.Label(pattern.Var(i)))
		}
		for _, e := range p.Edges() {
			fmt.Fprintf(bw, "edge %s %s %s\n", p.Name(e.From), p.Name(e.To), e.Label)
		}
		for _, l := range phi.X {
			fmt.Fprintf(bw, "when %s\n", literalText(p, l))
		}
		if phi.IsFalsehood() {
			fmt.Fprintf(bw, "then false\n")
		} else {
			for _, l := range phi.Y {
				fmt.Fprintf(bw, "then %s\n", literalText(p, l))
			}
		}
		fmt.Fprintf(bw, "end\n")
	}
	return bw.Flush()
}

func literalText(p *pattern.Pattern, l gfd.Literal) string {
	if l.Kind == gfd.ConstLiteral {
		return fmt.Sprintf("%s.%s = %s", p.Name(l.X), l.A, strconv.Quote(l.Const))
	}
	return fmt.Sprintf("%s.%s = %s.%s", p.Name(l.X), l.A, p.Name(l.Y), l.B)
}
