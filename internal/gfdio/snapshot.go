// Binary snapshot I/O alongside the text graph format. The text format
// (ReadGraph/WriteGraph) stays the interchange and authoring format; the
// snapshot image (graph.WriteSnapshot) is the serving format — loading one
// skips parsing and the freeze sort entirely. ReadAnyGraph sniffs the magic
// bytes so tools accept either transparently.
package gfdio

import (
	"bufio"
	"io"

	"repro/internal/graph"
)

// WriteSnapshot serializes the frozen snapshot as a binary image; see
// graph.Frozen.WriteSnapshot for the format.
func WriteSnapshot(w io.Writer, f *graph.Frozen) error {
	return f.WriteSnapshot(w)
}

// ReadSnapshot loads a binary snapshot image.
func ReadSnapshot(r io.Reader) (*graph.Frozen, error) {
	return graph.ReadSnapshot(r)
}

// ReadAnyGraph loads a graph from either format, sniffing the snapshot
// magic: a binary image loads directly, anything else parses as the text
// format through the bulk-load path (ReadFrozenGraph). Either way the
// result is the immutable CSR snapshot the read-only pipelines consume.
func ReadAnyGraph(r io.Reader) (*graph.Frozen, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	prefix, err := br.Peek(8)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if graph.LooksLikeSnapshot(prefix) {
		return graph.ReadSnapshot(br)
	}
	return ReadFrozenGraph(br)
}
