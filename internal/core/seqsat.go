package core

import (
	"repro/internal/canon"
	"repro/internal/depgraph"
	"repro/internal/eq"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
)

// SatResult reports the outcome of a satisfiability check.
type SatResult struct {
	Satisfiable bool
	// Conflict explains unsatisfiability: the attribute term forced to two
	// distinct constants.
	Conflict *eq.Conflict
	// Model is a witness model (an Σ-bounded population of G_Σ) when
	// satisfiable; nil otherwise.
	Model *graph.Graph
	Stats Stats
	// Err is non-nil when a parallel run ended before reaching an answer:
	// ErrCanceled or the context's deadline error after ParOptions.Ctx
	// fired, or a *PanicError when a worker panicked. Satisfiable, Conflict
	// and Model are meaningless then; Stats covers the work completed.
	Err error
}

// SeqSat decides whether Σ is satisfiable (Section IV-C).
//
// By the small model property (Theorem 1), Σ is satisfiable iff some
// Σ-bounded population of the canonical graph G_Σ is a model. SeqSat builds
// G_Σ, enforces every GFD on every match of its pattern in G_Σ — expanding
// the equivalence relation Eq with Rules 1 and 2 and parking matches whose
// antecedents are not yet instantiated in an inverted index — and reports
// unsatisfiable exactly when a class is forced to two distinct constants.
// It terminates early on the first conflict.
func SeqSat(set *gfd.Set) *SatResult {
	if set.Len() == 0 {
		// The empty set is satisfied by any nonempty graph.
		m := graph.New()
		m.AddNode("v")
		return &SatResult{Satisfiable: true, Model: m}
	}
	cs := canon.BuildSigma(set)
	enf := newEnforcer(nil)

	// Process GFDs of the form Q[x̄](∅→Y) first, then follow the interaction
	// order; the pending index makes the result order-independent
	// (Church–Rosser), ordering just reduces re-checks.
	order := depgraph.OrderGFDs(set)
	for _, gi := range order {
		phi := set.GFDs[gi]
		s := match.NewSearch(phi.Pattern, cs.Graph, match.Options{})
		for {
			h, ok := s.Next()
			if !ok {
				break
			}
			if !enf.offer(phi, h) || !enf.drain() {
				return &SatResult{Satisfiable: false, Conflict: enf.conflict(), Stats: enf.stats}
			}
		}
	}
	if !enf.drain() {
		return &SatResult{Satisfiable: false, Conflict: enf.conflict(), Stats: enf.stats}
	}
	// No conflict: complete F^Σ_A by giving every uninstantiated class a
	// fresh distinct constant (Section IV-C(c)).
	model := CompleteModel(cs.Graph, enf.eq, set.Constants())
	return &SatResult{Satisfiable: true, Model: model, Stats: enf.stats}
}
