package core

import (
	"context"

	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
)

// Violation describes one failure of G |= φ: a match whose antecedent holds
// but whose consequent does not.
type Violation struct {
	GFD   *gfd.GFD
	Match match.Assignment
}

// Satisfies reports whether G |= Σ under the literal semantics of Section
// III (actual attribute values, not the deduced Eq semantics), returning
// the first violation found. It is the test oracle for the reasoning
// algorithms and the checker applications use for error detection.
func Satisfies(g graph.Reader, set *gfd.Set) (bool, *Violation) {
	for _, phi := range set.GFDs {
		s := match.NewSearch(phi.Pattern, g, match.Options{})
		for {
			h, ok := s.Next()
			if !ok {
				break
			}
			if holdsLiterals(g, h, phi.X) && !holdsLiterals(g, h, phi.Y) {
				return false, &Violation{GFD: phi, Match: h}
			}
		}
	}
	return true, nil
}

// Violations enumerates every violation of Σ in G (error detection /
// inconsistency catching, the paper's motivating application).
func Violations(g graph.Reader, set *gfd.Set) []Violation {
	// A background context never fires, so the error path is unreachable.
	out, _ := ViolationsCtx(context.Background(), g, set)
	return out
}

// ViolationsCtx is Violations under a deadline: the enumeration polls ctx
// every few hundred match-frame expansions, returning ErrCanceled or the
// context's deadline error (and whatever violations were already found)
// once it fires. The checker commands use it to bound validation over large
// graphs. Evaluation is shared across GFDs with equal pattern structures
// (see ViolationsOpts); the result is identical to checking each GFD
// independently, in the same order.
func ViolationsCtx(ctx context.Context, g graph.Reader, set *gfd.Set) ([]Violation, error) {
	out, _, err := ViolationsOpts(ctx, g, set, VerifyOptions{})
	return out, err
}

// holdsLiterals evaluates a literal set at a match against G's actual
// attribute values: x.A = c holds iff attribute A exists at h(x) with value
// c; x.A = y.B iff both attributes exist and are equal.
func holdsLiterals(g graph.Reader, h match.Assignment, ls []gfd.Literal) bool {
	for _, l := range ls {
		switch l.Kind {
		case gfd.ConstLiteral:
			v, ok := g.Attr(h[l.X], l.A)
			if !ok || v != l.Const {
				return false
			}
		case gfd.VarLiteral:
			v1, ok1 := g.Attr(h[l.X], l.A)
			v2, ok2 := g.Attr(h[l.Y], l.B)
			if !ok1 || !ok2 || v1 != v2 {
				return false
			}
		}
	}
	return true
}

// IsModel reports whether G is a model of Σ: G |= Σ, G is nonempty, and
// every pattern of Σ has at least one match in G (Section IV's definition).
func IsModel(g graph.Reader, set *gfd.Set) bool {
	if g.NumNodes() == 0 {
		return false
	}
	if ok, _ := Satisfies(g, set); !ok {
		return false
	}
	for _, phi := range set.GFDs {
		s := match.NewSearch(phi.Pattern, g, match.Options{})
		if _, ok := s.Next(); !ok {
			return false
		}
	}
	return true
}
