package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/gfd"
	"repro/internal/graph"
)

// satSet builds a known-satisfiable set with one unit of work per GFD: the
// consequences land on distinct attributes with a single value each, so no
// two rules can conflict and a canceled run can never be saved by an early
// legitimate UNSAT answer.
func satSet(n int) *gfd.Set {
	set := gfd.NewSet()
	for i := 0; i < n; i++ {
		set.Add(gfd.MustNew(fmt.Sprintf("c%d", i), q6(), nil,
			[]gfd.Literal{gfd.Const(0, fmt.Sprintf("k%d", i), "v")}))
	}
	return set
}

// assertGoroutineBaseline retries until the goroutine count settles back to
// the pre-run baseline: a canceled or panicked run must not strand workers,
// watchers, or pipelined producers.
func assertGoroutineBaseline(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParPreCanceled pins the entry check on both engines and executors: a
// context canceled before the call returns ErrCanceled without starting.
func TestParPreCanceled(t *testing.T) {
	before := runtime.NumGoroutine()
	set := satSet(4)
	target := gfd.MustNew("t", q6(), nil, []gfd.Literal{gfd.Const(0, "fresh", "x")})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, stealing := range []bool{false, true} {
		opt := DefaultParOptions(2)
		opt.Stealing = stealing
		opt.Ctx = ctx
		if res := ParSat(set, opt); !errors.Is(res.Err, ErrCanceled) {
			t.Fatalf("stealing=%v: ParSat.Err = %v, want ErrCanceled", stealing, res.Err)
		}
		if res := ParImp(set, target, opt); !errors.Is(res.Err, ErrCanceled) {
			t.Fatalf("stealing=%v: ParImp.Err = %v, want ErrCanceled", stealing, res.Err)
		}
	}
	assertGoroutineBaseline(t, before)
}

// TestParSatCancelMidFlight cancels from inside the first work unit, under
// every algorithm variant and both executors: the run must come back with
// ErrCanceled — abandoned units can never conclude as a SATISFIABLE answer
// — and leave no goroutine behind.
func TestParSatCancelMidFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	set := satSet(24)
	for vname, opt := range variantOptions(4) {
		ctx, cancel := context.WithCancel(context.Background())
		opt.Ctx = ctx
		opt.testHookUnitStart = func(int, graph.NodeID) { cancel() }
		res := ParSat(set, opt)
		cancel()
		if !errors.Is(res.Err, ErrCanceled) {
			t.Fatalf("%s: ParSat.Err = %v, want ErrCanceled", vname, res.Err)
		}
	}
	assertGoroutineBaseline(t, before)
}

// TestParImpCancelMidFlight is the implication twin, on a NOT-IMPLIED
// instance so the only legitimate conclusion is the full quiescence the
// cancel preempts.
func TestParImpCancelMidFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	set := satSet(8)
	target := gfd.MustNew("t", q6(), nil, []gfd.Literal{gfd.Const(0, "fresh", "x")})
	for vname, opt := range variantOptions(4) {
		ctx, cancel := context.WithCancel(context.Background())
		opt.Ctx = ctx
		opt.testHookUnitStart = func(int, graph.NodeID) { cancel() }
		res := ParImp(set, target, opt)
		cancel()
		if !errors.Is(res.Err, ErrCanceled) {
			t.Fatalf("%s: ParImp.Err = %v, want ErrCanceled", vname, res.Err)
		}
		if res.Implied {
			t.Fatalf("%s: canceled run claims IMPLIED", vname)
		}
	}
	assertGoroutineBaseline(t, before)
}

// TestParDeadlineExceeded pins the error mapping: a deadline firing
// surfaces as context.DeadlineExceeded, not as ErrCanceled.
func TestParDeadlineExceeded(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	opt := DefaultParOptions(2)
	opt.Ctx = ctx
	res := ParSat(satSet(8), opt)
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("ParSat.Err = %v, want context.DeadlineExceeded", res.Err)
	}
	assertGoroutineBaseline(t, before)
}

// TestParSatPanicIsolation injects a panic into a work unit under every
// variant: the run must fail with a *PanicError carrying the value and a
// stack — the process stays alive, siblings are canceled, nothing leaks.
func TestParSatPanicIsolation(t *testing.T) {
	before := runtime.NumGoroutine()
	set := satSet(24)
	for vname, opt := range variantOptions(4) {
		opt.testHookUnitStart = func(int, graph.NodeID) { panic("boom-42") }
		res := ParSat(set, opt)
		if res.Err == nil {
			t.Fatalf("%s: panicking unit produced no error", vname)
		}
		var pe *PanicError
		if !errors.As(res.Err, &pe) {
			t.Fatalf("%s: ParSat.Err = %v, want *PanicError", vname, res.Err)
		}
		if pe.Value != "boom-42" {
			t.Fatalf("%s: panic value %v, want boom-42", vname, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("%s: panic error carries no stack", vname)
		}
		if res.Satisfiable {
			t.Fatalf("%s: panicked run claims SATISFIABLE", vname)
		}
	}
	assertGoroutineBaseline(t, before)
}

// revalidateCancelFixture builds a revalidation workload with enough GFDs
// that a cancel or panic injected at the first task start preempts the run.
func revalidateCancelFixture() (*gfd.Set, *graph.Delta, []Violation) {
	gr := gen.New(gen.Config{N: 12, K: 4, L: 2, WildcardRate: 0.2, Seed: 3})
	set := gr.Set()
	g := gr.ConsistentGraph(80)
	base := g.Frozen()
	prev := Violations(base, set)
	d := gr.DenseDelta(base, 20)
	return set, d, prev
}

// TestRevalidateCancel covers the revalidation paths: pre-canceled and
// canceled-from-the-first-task contexts return ErrCanceled from both the
// sequential loop and the work-stealing pool.
func TestRevalidateCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	set, d, prev := revalidateCancelFixture()
	for _, workers := range []int{0, 4} {
		pre, cancelPre := context.WithCancel(context.Background())
		cancelPre()
		_, _, err := RevalidateDelta(set, d, prev, RevalidateOptions{Workers: workers, Ctx: pre})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: pre-canceled err = %v, want ErrCanceled", workers, err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		opt := RevalidateOptions{Workers: workers, Ctx: ctx}
		opt.testHookGFDStart = func(int) { cancel() }
		_, _, err = RevalidateDelta(set, d, prev, opt)
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: mid-flight err = %v, want ErrCanceled", workers, err)
		}
	}
	assertGoroutineBaseline(t, before)
}

// TestRevalidatePanicIsolation panics inside a revalidation task: the pool
// must convert it into a *PanicError and shut down cleanly.
func TestRevalidatePanicIsolation(t *testing.T) {
	before := runtime.NumGoroutine()
	set, d, prev := revalidateCancelFixture()
	opt := RevalidateOptions{Workers: 4}
	opt.testHookGFDStart = func(int) { panic("reval-boom") }
	_, _, err := RevalidateDelta(set, d, prev, opt)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "reval-boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic error incomplete: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
	assertGoroutineBaseline(t, before)
}

// TestViolationsCtx pins the validation entry point: a canceled context
// stops the GFD sweep with ErrCanceled, and a live one reproduces
// Violations exactly.
func TestViolationsCtx(t *testing.T) {
	gr := gen.New(gen.Config{N: 8, K: 4, L: 2, WildcardRate: 0.2, Seed: 9})
	set := gr.Set()
	g := gr.ConsistentGraph(60).Frozen()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ViolationsCtx(ctx, g, set); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ViolationsCtx err = %v, want ErrCanceled", err)
	}

	got, err := ViolationsCtx(context.Background(), g, set)
	if err != nil {
		t.Fatalf("live ViolationsCtx: %v", err)
	}
	if want := Violations(g, set); !violationsEqual(got, want) {
		t.Fatalf("ViolationsCtx diverges from Violations: %d vs %d", len(got), len(want))
	}
}
