package core

import (
	"repro/internal/canon"
	"repro/internal/gfd"
	"repro/internal/graph"
)

// ParSat decides the satisfiability of Σ with p parallel workers
// (Section V-B). It is parallel scalable relative to SeqSat: work units —
// one per (pattern, pivot candidate) — are assigned dynamically from a
// dependency-ordered priority queue, stragglers are split on a TTL, and
// workers exchange monotone Eq deltas asynchronously. The outcome equals
// SeqSat's on every input (Church–Rosser).
func ParSat(set *gfd.Set, opt ParOptions) *SatResult {
	if set.Len() == 0 {
		m := graph.New()
		m.AddNode("v")
		return &SatResult{Satisfiable: true, Model: m}
	}
	cs := canon.BuildSigma(set)
	eng := &parEngine{opt: opt, set: set, g: cs.Graph}
	eng.buildUnits()
	con, _, final, stats, err := eng.run()
	if err != nil {
		return &SatResult{Err: err, Stats: stats}
	}
	if con != nil {
		return &SatResult{Satisfiable: false, Conflict: con, Stats: stats}
	}
	// At quiescence every worker applied the whole broadcast log, so the
	// returned relation is the converged global Eq; complete it into a
	// witness model exactly as SeqSat does.
	var model *graph.Graph
	if final != nil {
		model = CompleteModel(cs.Graph, final, set.Constants())
	}
	return &SatResult{Satisfiable: true, Model: model, Stats: stats}
}
