package core

// Additional coverage: metamorphic properties of the analyses, witness
// model validation, ablation agreement, and stats sanity.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func TestMonotonicityOfUnsatisfiability(t *testing.T) {
	// Adding GFDs never makes an unsatisfiable set satisfiable.
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for trial := 0; trial < 30 && checked < 8; trial++ {
		set := randomSet(rng, 3)
		if SeqSat(set).Satisfiable {
			continue
		}
		checked++
		bigger := gfd.NewSet(append(append([]*gfd.GFD{}, set.GFDs...), randomSet(rng, 2).GFDs...)...)
		if SeqSat(bigger).Satisfiable {
			t.Fatalf("superset of unsatisfiable set reported satisfiable:\n%s", bigger)
		}
	}
	if checked == 0 {
		t.Skip("no unsatisfiable seeds found")
	}
}

func TestImplicationReflexivityAndWeakening(t *testing.T) {
	// Σ implies each of its members, and any weakening of a member.
	g := gen.New(gen.Config{N: 10, K: 4, L: 3, Seed: 5})
	set := g.Set()
	for i, phi := range set.GFDs[:4] {
		if !SeqImp(set, phi).Implied {
			t.Errorf("member %d not implied by its own set", i)
		}
		// Weakening: subset of Y with the same X.
		weak := gfd.MustNew(phi.Name+"-w", phi.Pattern, phi.X, phi.Y[:1])
		if !SeqImp(set, weak).Implied {
			t.Errorf("weakened member %d not implied", i)
		}
	}
}

func TestImplicationMonotoneInSigma(t *testing.T) {
	// If Σ ⊨ φ then Σ ∪ Σ' ⊨ φ.
	g := gen.New(gen.Config{N: 8, K: 3, L: 2, Seed: 6})
	set := g.Set()
	phi := g.ImpliedGFD(set)
	if !SeqImp(set, phi).Implied {
		t.Fatal("setup: not implied")
	}
	extra := gen.New(gen.Config{N: 4, K: 3, L: 2, Seed: 7}).Set()
	union := gfd.NewSet(append(append([]*gfd.GFD{}, set.GFDs...), extra.GFDs...)...)
	if !SeqImp(union, phi).Implied {
		t.Fatal("implication lost under Σ-extension")
	}
}

func TestWitnessModelIsSigmaBounded(t *testing.T) {
	// Theorem 1: the witness is a population of G_Σ, so |model| is bounded
	// by a small multiple of |Σ| (nodes+edges equal G_Σ's; attributes are
	// bounded by the enforcement).
	g := gen.New(gen.Config{N: 25, K: 4, L: 3, Seed: 8})
	set := g.Set()
	res := SeqSat(set)
	if !res.Satisfiable {
		t.Fatal("setup: unsat")
	}
	if res.Model.Size() > 20*set.Size() {
		t.Errorf("witness size %d not Σ-bounded (|Σ| = %d)", res.Model.Size(), set.Size())
	}
	if !IsModel(res.Model, set) {
		t.Fatal("witness is not a model")
	}
}

func TestAblationAgreement(t *testing.T) {
	// Every ablation combination returns the same answer on mixed
	// workloads (satisfiable and not).
	for seed := int64(0); seed < 3; seed++ {
		for _, conflicts := range []int{0, 1} {
			g := gen.New(gen.Config{N: 25, K: 4, L: 3, Seed: seed, Conflicts: conflicts})
			set := g.Set()
			want := SeqSat(set).Satisfiable
			for pipeline := 0; pipeline < 2; pipeline++ {
				for split := 0; split < 2; split++ {
					for dep := 0; dep < 2; dep++ {
						for sim := 0; sim < 2; sim++ {
							opt := ParOptions{
								Workers:    3,
								TTL:        time.Millisecond,
								Pipeline:   pipeline == 1,
								Splitting:  split == 1,
								DepOrder:   dep == 1,
								Simulation: sim == 1,
							}
							got := ParSat(set, opt)
							if got.Satisfiable != want {
								t.Fatalf("seed=%d conflicts=%d opts=%+v: ParSat=%v want %v",
									seed, conflicts, opt, got.Satisfiable, want)
							}
						}
					}
				}
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	g := gen.New(gen.Config{N: 20, K: 4, L: 3, Seed: 4})
	set := g.Set()
	seq := SeqSat(set)
	if seq.Stats.Matches == 0 || seq.Stats.Enforcements == 0 {
		t.Errorf("sequential stats empty: %+v", seq.Stats)
	}
	par := ParSat(set, DefaultParOptions(3))
	if par.Stats.UnitsRun == 0 {
		t.Errorf("no units recorded: %+v", par.Stats)
	}
	// The parallel run discovers exactly the same matches (units partition
	// the match space).
	if par.Stats.Matches != seq.Stats.Matches {
		t.Errorf("parallel matches %d != sequential %d", par.Stats.Matches, seq.Stats.Matches)
	}
	if par.Stats.DeltaOps == 0 || par.Stats.Broadcasts == 0 {
		t.Errorf("no communication recorded: %+v", par.Stats)
	}
}

func TestViolationsCountsAllMatches(t *testing.T) {
	// Two independent violations of a functional-property GFD.
	p := pattern.New()
	x := p.AddVar("x", "car")
	y := p.AddVar("y", "speed")
	z := p.AddVar("z", "speed")
	p.AddEdge(x, y, "s")
	p.AddEdge(x, z, "s")
	phi := gfd.MustNew("f", p, nil, []gfd.Literal{gfd.Vars(y, "v", z, "v")})
	g := graph.New()
	for i := 0; i < 2; i++ {
		c := g.AddNode("car")
		a := g.AddNodeWithAttrs("speed", map[string]string{"v": "1"})
		b := g.AddNodeWithAttrs("speed", map[string]string{"v": "2"})
		g.AddEdge(c, a, "s")
		g.AddEdge(c, b, "s")
	}
	vs := Violations(g, gfd.NewSet(phi))
	// Each car yields two violating matches (y,z and z,y).
	if len(vs) != 4 {
		t.Errorf("violations = %d, want 4", len(vs))
	}
}

func TestSatisfiesMissingAttributeSemantics(t *testing.T) {
	// A match whose X-attribute is missing trivially satisfies X→Y; a
	// match whose Y-attribute is missing violates it when X holds.
	p := pattern.New()
	p.AddVar("x", "n")
	phi := gfd.MustNew("g", p,
		[]gfd.Literal{gfd.Const(0, "a", "1")},
		[]gfd.Literal{gfd.Const(0, "b", "2")})
	g := graph.New()
	g.AddNode("n") // no attributes at all: X missing → satisfied
	if ok, _ := Satisfies(g, gfd.NewSet(phi)); !ok {
		t.Fatal("missing antecedent attribute should satisfy trivially")
	}
	g2 := graph.New()
	n := g2.AddNode("n")
	g2.SetAttr(n, "a", "1") // X holds, b missing → violated
	if ok, _ := Satisfies(g2, gfd.NewSet(phi)); ok {
		t.Fatal("missing consequent attribute should violate")
	}
}

func TestParSatDeterministicAnswerUnderRepeats(t *testing.T) {
	g := gen.New(gen.Config{N: 30, K: 4, L: 3, Seed: 12, Conflicts: 1})
	set := g.Set()
	opt := DefaultParOptions(4)
	opt.TTL = 100 * time.Microsecond
	for i := 0; i < 5; i++ {
		if ParSat(set, opt).Satisfiable {
			t.Fatalf("run %d: nondeterministic satisfiability answer", i)
		}
	}
}
