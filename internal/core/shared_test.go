package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestGroupedViolationsMatchPerGFD is the shared-evaluation equivalence
// property for validation: on generated sets with duplicated and
// prefix-overlapping patterns, grouped evaluation must reproduce the
// per-GFD ablation violation for violation, in order, on every storage
// tier. It also pins that sharing actually happened — a grouping that
// degenerates to singletons would pass equivalence vacuously.
func TestGroupedViolationsMatchPerGFD(t *testing.T) {
	ctx := context.Background()
	sharedGFDs, reused, total := 0, 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed * 7))
		gr := gen.New(gen.Config{N: 15, K: 5, L: 2, Profile: dataset.DBpedia(), WildcardRate: 0.2, Seed: seed})
		set := gr.SharedValidationSet(4, 6)
		if set.Len() == 0 {
			continue
		}
		g := gr.DenseGraph(900, 6)
		perturb(rng, g, 20)
		frozen := g.Frozen()
		d := gr.DenseDelta(frozen, 30)
		tiers := []struct {
			name string
			data graph.Reader
		}{
			{"mutable", g},
			{"frozen", frozen},
			{"sharded", frozen.Sharded(3)},
			{"overlay", d.Overlay()},
		}
		for _, tier := range tiers {
			per, _, err := ViolationsOpts(ctx, tier.data, set, VerifyOptions{PerGFD: true})
			if err != nil {
				t.Fatalf("seed=%d %s: per-GFD: %v", seed, tier.name, err)
			}
			grouped, gst, err := ViolationsOpts(ctx, tier.data, set, VerifyOptions{})
			if err != nil {
				t.Fatalf("seed=%d %s: grouped: %v", seed, tier.name, err)
			}
			if !violationsEqual(grouped, per) {
				t.Fatalf("seed=%d %s: grouped %d violations != per-GFD %d", seed, tier.name, len(grouped), len(per))
			}
			if gst.Groups >= set.Len() {
				t.Fatalf("seed=%d %s: %d groups for %d GFDs; no sharing", seed, tier.name, gst.Groups, set.Len())
			}
			sharedGFDs += gst.SharedGFDs
			reused += gst.MatchesReused
			total += len(grouped)
		}
	}
	if total == 0 {
		t.Fatal("no violations in any instance; equivalence test is vacuous")
	}
	if sharedGFDs == 0 || reused == 0 {
		t.Fatalf("sharing never fired: sharedGFDs=%d matchesReused=%d", sharedGFDs, reused)
	}
}

// TestGroupedSatImpMatchPerGFD pins that ParSat and ParImp return the same
// answers with shared group evaluation as with the per-GFD ablation, under
// both executors, on sets where every pattern shape carries several GFDs.
// The sequential algorithms are the oracle.
func TestGroupedSatImpMatchPerGFD(t *testing.T) {
	groupsShared := 0
	for seed := int64(0); seed < 3; seed++ {
		for _, conflicts := range []int{0, 1} {
			gr := gen.New(gen.Config{N: 10, K: 4, L: 3, Seed: seed, Conflicts: conflicts})
			set := gr.SharedSet(2)
			wantSat := SeqSat(set).Satisfiable
			phi := gr.ImpliedGFD(set)
			wantImp := SeqImp(set, phi).Implied
			for _, stealing := range []bool{false, true} {
				for _, perGFD := range []bool{false, true} {
					opt := DefaultParOptions(4)
					opt.Stealing = stealing
					opt.PerGFD = perGFD
					name := fmt.Sprintf("seed=%d conflicts=%d stealing=%v perGFD=%v", seed, conflicts, stealing, perGFD)
					sr := ParSat(set, opt)
					if sr.Err != nil {
						t.Fatalf("%s: ParSat: %v", name, sr.Err)
					}
					if sr.Satisfiable != wantSat {
						t.Fatalf("%s: ParSat=%v, SeqSat=%v", name, sr.Satisfiable, wantSat)
					}
					if !perGFD {
						groupsShared += sr.Stats.GroupsShared
					}
					ir := ParImp(set, phi, opt)
					if ir.Err != nil {
						t.Fatalf("%s: ParImp: %v", name, ir.Err)
					}
					if ir.Implied != wantImp {
						t.Fatalf("%s: ParImp=%v, SeqImp=%v", name, ir.Implied, wantImp)
					}
				}
			}
		}
	}
	if groupsShared == 0 {
		t.Fatal("no grouped ParSat run ever shared a pattern group; test is vacuous")
	}
}

// TestGroupedRevalidateMatchesPerGFD pins incremental revalidation: after a
// random update stream over a perturbed graph, grouped revalidation (one
// neighborhood and one scoped enumeration per pattern group, carry-over
// scattered per member) must equal the per-GFD ablation and the full
// recomputation exactly — sequentially and in parallel.
func TestGroupedRevalidateMatchesPerGFD(t *testing.T) {
	reused, total := 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed * 13))
		gr := gen.New(gen.Config{N: 20, K: 6, L: 2, Profile: dataset.DBpedia(), Seed: seed})
		set := gr.SharedValidationSet(4, 5)
		if set.Len() == 0 {
			continue
		}
		g := gr.DenseGraph(1000, 8)
		perturb(rng, g, 25)
		base := g.Frozen()
		prev := Violations(base, set)
		d := gr.DenseDelta(base, 40)
		want := Violations(d.Overlay(), set)
		per, _, err := RevalidateDelta(set, d, prev, RevalidateOptions{PerGFD: true})
		if err != nil {
			t.Fatalf("seed=%d: per-GFD revalidate: %v", seed, err)
		}
		if !violationsEqual(per, want) {
			t.Fatalf("seed=%d: per-GFD revalidate diverges from full recompute", seed)
		}
		grouped, gst, err := RevalidateDelta(set, d, prev, RevalidateOptions{})
		if err != nil {
			t.Fatalf("seed=%d: grouped revalidate: %v", seed, err)
		}
		if !violationsEqual(grouped, per) {
			t.Fatalf("seed=%d: grouped %d violations != per-GFD %d", seed, len(grouped), len(per))
		}
		if gst.Groups >= set.Len() {
			t.Fatalf("seed=%d: %d groups for %d GFDs; no sharing", seed, gst.Groups, set.Len())
		}
		groupedPar, _, err := RevalidateDelta(set, d, prev, RevalidateOptions{Workers: 4})
		if err != nil {
			t.Fatalf("seed=%d: grouped parallel revalidate: %v", seed, err)
		}
		if !violationsEqual(groupedPar, per) {
			t.Fatalf("seed=%d: grouped parallel revalidate diverges", seed)
		}
		reused += gst.MatchesReused
		total += len(want) + len(prev)
	}
	if total == 0 {
		t.Fatal("no violations in any instance; equivalence test is vacuous")
	}
	if reused == 0 {
		t.Fatal("grouped revalidation never reused a match; test is vacuous")
	}
}
