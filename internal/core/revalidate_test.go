package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// violationsEqual compares two violation lists exactly: same GFD identity,
// same match, same order.
func violationsEqual(a, b []Violation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].GFD != b[i].GFD || len(a[i].Match) != len(b[i].Match) {
			return false
		}
		for j := range a[i].Match {
			if a[i].Match[j] != b[i].Match[j] {
				return false
			}
		}
	}
	return true
}

// checkRevalidate asserts that every incremental path — sequential,
// parallel, and against the refrozen snapshot — reproduces the full
// recomputation exactly, and returns the full violation count plus the
// sequential stats for non-vacuity accounting.
func checkRevalidate(t *testing.T, ctx string, set *gfd.Set, base *graph.Frozen, d *graph.Delta, prev []Violation) (int, RevalidateStats) {
	t.Helper()
	overlay := d.Overlay()
	want := Violations(overlay, set)
	got, stats, err := RevalidateDelta(set, d, prev, RevalidateOptions{})
	if err != nil {
		t.Fatalf("%s: sequential revalidate: %v", ctx, err)
	}
	if !violationsEqual(got, want) {
		t.Fatalf("%s: sequential revalidate diverges: got %d violations, want %d", ctx, len(got), len(want))
	}
	gotPar, _, err := RevalidateDelta(set, d, prev, RevalidateOptions{Workers: 4})
	if err != nil {
		t.Fatalf("%s: parallel revalidate: %v", ctx, err)
	}
	if !violationsEqual(gotPar, want) {
		t.Fatalf("%s: parallel revalidate diverges: got %d violations, want %d", ctx, len(gotPar), len(want))
	}
	refrozen := base.Refreeze(d)
	wantF := Violations(refrozen, set)
	if !violationsEqual(wantF, want) {
		t.Fatalf("%s: refrozen full recompute diverges from overlay recompute", ctx)
	}
	gotF, _, err := Revalidate(set, base, refrozen, d.TouchedNodes(), prev, RevalidateOptions{})
	if err != nil {
		t.Fatalf("%s: revalidate against refrozen snapshot: %v", ctx, err)
	}
	if !violationsEqual(gotF, wantF) {
		t.Fatalf("%s: revalidate against refrozen snapshot diverges", ctx)
	}
	return len(want), stats
}

// perturb flips one attribute on a few random nodes so the pre-delta graph
// already carries violations (the carried-over half of the algorithm).
func perturb(rng *rand.Rand, g *graph.Graph, n int) {
	for i := 0; i < n; i++ {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		for a := range g.Attrs(v) {
			g.SetAttr(v, a, "perturbed")
			break
		}
	}
}

// TestRevalidateEquivalenceGen is the incremental-revalidation equivalence
// property on generated GFD sets: after a random update stream, Revalidate
// must equal the full Violations recomputation, violation for violation, in
// order — sequentially, in parallel, and on the refrozen snapshot.
func TestRevalidateEquivalenceGen(t *testing.T) {
	totalViolations := 0
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gr := gen.New(gen.Config{N: 10, K: 4, L: 2, WildcardRate: 0.2, Seed: seed})
		set := gr.Set()
		g := gr.ConsistentGraph(80)
		perturb(rng, g, 6)
		base := g.Frozen()
		prev := Violations(base, set)
		d := gr.DenseDelta(base, 25)
		ctx := fmt.Sprintf("seed=%d delta=%v", seed, d)
		nv, _ := checkRevalidate(t, ctx, set, base, d, prev)
		totalViolations += nv + len(prev)
	}
	if totalViolations == 0 {
		t.Fatal("no violations in any instance; equivalence test is vacuous")
	}
}

// TestRevalidateTriangles runs the property on the radius-1 validation
// workload the benchmarks use, where the hood genuinely localizes: it also
// pins that the scoped path fires and carries prior violations over
// unexamined (the paths a full recompute never takes).
func TestRevalidateTriangles(t *testing.T) {
	totalKept, totalViolations, totalScoped := 0, 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed * 11))
		gr := gen.New(gen.Config{N: 20, K: 6, L: 2, Profile: dataset.DBpedia(), Seed: seed})
		set := gr.ValidationSet(12)
		if set.Len() == 0 {
			continue
		}
		g := gr.DenseGraph(1200, 8)
		perturb(rng, g, 25)
		base := g.Frozen()
		prev := Violations(base, set)
		d := gr.DenseDelta(base, 40)
		ctx := fmt.Sprintf("seed=%d delta=%v", seed, d)
		nv, stats := checkRevalidate(t, ctx, set, base, d, prev)
		totalKept += stats.Kept
		totalViolations += nv
		totalScoped += stats.Scoped
	}
	if totalScoped == 0 {
		t.Fatal("no pattern took the scoped path; workload is vacuous")
	}
	if totalViolations == 0 {
		t.Fatal("no violations after any delta; workload is vacuous")
	}
	if totalKept == 0 {
		t.Fatal("no prior violation was carried over; the scoping never localized")
	}
}

// TestRevalidateDisconnected pins the fallback: a disconnected pattern
// re-enumerates in full (a component change invalidates cross products
// rooted arbitrarily far away) and still matches the full recomputation.
func TestRevalidateDisconnected(t *testing.T) {
	p := pattern.New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "b")
	p.AddEdge(x, y, "e")
	z := p.AddVar("z", "c") // second component
	phi := gfd.MustNew("dis", p, nil, []gfd.Literal{gfd.Const(z, "k", "v")})
	set := gfd.NewSet()
	set.Add(phi)

	g := graph.New()
	var as, bs, cs []graph.NodeID
	for i := 0; i < 4; i++ {
		as = append(as, g.AddNode("a"))
		bs = append(bs, g.AddNode("b"))
		cs = append(cs, g.AddNode("c"))
	}
	g.AddEdge(as[0], bs[0], "e")
	g.AddEdge(as[1], bs[1], "e")
	g.SetAttr(cs[0], "k", "v")
	base := g.Frozen()
	prev := Violations(base, set)
	if len(prev) == 0 {
		t.Fatal("fixture has no violations; test is vacuous")
	}

	// The delta touches only the x-y component; the violated cross products
	// involve far-away c nodes, which only the full fallback re-examines.
	d := graph.NewDelta(base)
	d.AddEdge(as[2], bs[2], "e")
	d.RemoveEdge(as[0], bs[0], "e")
	d.SetAttr(cs[1], "k", "v")

	want := Violations(d.Overlay(), set)
	got, stats, err := RevalidateDelta(set, d, prev, RevalidateOptions{})
	if err != nil {
		t.Fatalf("disconnected revalidate: %v", err)
	}
	if !violationsEqual(got, want) {
		t.Fatalf("disconnected revalidate diverges: got %d, want %d", len(got), len(want))
	}
	if stats.Full != 1 || stats.Scoped != 0 {
		t.Fatalf("expected the full fallback, got stats %+v", stats)
	}
}

// TestRevalidateStolenUnits exercises the work-stealing wiring: with more
// workers than evenly divided tasks, idle workers must steal, and the
// result must stay identical.
func TestRevalidateStolenUnits(t *testing.T) {
	gr := gen.New(gen.Config{N: 30, K: 5, L: 2, WildcardRate: 0.2, Seed: 5})
	set := gr.Set()
	g := gr.ConsistentGraph(120)
	perturb(rand.New(rand.NewSource(5)), g, 8)
	base := g.Frozen()
	prev := Violations(base, set)
	d := gr.DenseDelta(base, 30)
	want := Violations(d.Overlay(), set)
	stolen := 0
	for try := 0; try < 8; try++ {
		got, stats, err := RevalidateDelta(set, d, prev, RevalidateOptions{Workers: 8})
		if err != nil {
			t.Fatalf("try %d: parallel revalidate: %v", try, err)
		}
		if !violationsEqual(got, want) {
			t.Fatalf("try %d: parallel revalidate diverges", try)
		}
		stolen += stats.UnitsStolen
	}
	// Stealing is timing-dependent (on a single-core runner every worker may
	// drain its own stripe before idling), so the count is reported rather
	// than asserted; the equality checks above are the contract.
	t.Logf("units stolen across 8 contended runs: %d", stolen)
}
