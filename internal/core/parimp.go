package core

import (
	"repro/internal/canon"
	"repro/internal/eq"
	"repro/internal/gfd"
)

// ParImp decides Σ |= φ with p parallel workers (Section VI-C). Work units
// enforce GFDs of Σ on matches of their patterns in the canonical graph
// G^X_Q, expanding Eq_H replicas in parallel; a worker raises the early
// termination flag when its replica conflicts (antecedent inconsistent with
// Σ) or deduces Y. The outcome equals SeqImp's on every input.
func ParImp(set *gfd.Set, phi *gfd.GFD, opt ParOptions) *ImpResult {
	cp := canon.BuildPhi(phi)
	if cp.EqX.Conflicted() != nil {
		return &ImpResult{Implied: true, Reason: ImpliedTrivially}
	}
	if cp.YDeduced(cp.EqX) {
		return &ImpResult{Implied: true, Reason: ImpliedTrivially}
	}
	eng := &parEngine{
		opt:    opt,
		set:    set,
		g:      cp.Graph,
		baseEq: cp.EqX,
		goal:   func(e *eq.Eq) bool { return cp.YDeduced(e) },
	}
	// Highest unit priority for GFDs whose antecedent X_ψ is subsumed by
	// Eq_X — they fire immediately on G^X_Q (Section VI-C(a)).
	eng.high = func(gi int) bool { return xSubsumedByEqX(set.GFDs[gi], cp.EqX) }
	eng.buildUnits()
	con, goalHit, _, stats, err := eng.run()
	switch {
	case err != nil:
		return &ImpResult{Err: err, Stats: stats}
	case con != nil:
		return &ImpResult{Implied: true, Reason: ImpliedByConflict, Stats: stats}
	case goalHit:
		return &ImpResult{Implied: true, Reason: ImpliedByDeduction, Stats: stats}
	default:
		return &ImpResult{Implied: false, Reason: NotImplied, Stats: stats}
	}
}
