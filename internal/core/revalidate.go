// Incremental revalidation: maintaining Violations(G, Σ) across a graph
// delta without re-running full match enumeration. The soundness argument
// lives with the scoping primitive (see internal/match/incremental.go): a
// match whose image avoids the delta's touched nodes is bitwise-identical —
// same edges, same attributes — in both versions of the graph, so its
// violation status carries over unexamined; every match that could have
// appeared, vanished, or flipped keeps its root variable within the
// pattern's radius of a touched node in the version of the graph it exists
// in. Revalidate therefore re-enumerates only the root candidates inside
// that radius-neighborhood (computed on both the old and the updated graph,
// so removed edges cannot hide a dying match) and splices the result into
// the carried-over remainder.
package core

import (
	"context"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// RevalidateOptions configures Revalidate.
type RevalidateOptions struct {
	// Workers fans the per-GFD revalidation tasks out over the same
	// work-stealing executor the reasoning engines use (per-worker deques,
	// idle workers steal from peer backs); <= 1 runs sequentially.
	Workers int
	// Plans, when non-nil, resolves each GFD pattern through the compiled
	// plan cache (pivot/order/label resolution computed once per pattern
	// per snapshot epoch). Most effective when revalidating repeatedly
	// against the same epoch-carrying snapshot; a fresh Overlay per call
	// carries a fresh epoch and is planned per call.
	Plans *match.PlanCache
	// Ctx, when non-nil, cancels the revalidation cooperatively: checked
	// between groups, inside each group's re-enumeration (match.Options.Ctx),
	// and by condvar-blocked idle workers on the parallel path. A cancelled
	// call returns ErrCanceled (or the context's deadline error) with the
	// stats of the work it finished; the violations slice is meaningless
	// then. Nil runs without cancellation.
	Ctx context.Context
	// PerGFD disables shared multi-GFD evaluation: every GFD is revalidated
	// independently even when several share one pattern structure. Results
	// are identical either way (the equivalence tests pin it); this is the
	// ablation baseline.
	PerGFD bool
	// testHookGFDStart, when non-nil, runs as each revalidation task starts,
	// receiving the task's representative GFD index — the seam the
	// panic-isolation tests use to detonate inside a worker.
	testHookGFDStart func(gi int)
}

// RevalidateStats counts the work an incremental revalidation performed;
// compare Reenumerated against the graph's full match volume to see what
// the delta scoping saved.
type RevalidateStats struct {
	GFDs          int // GFDs revalidated
	Groups        int // pattern groups revalidated (== GFDs under PerGFD)
	Scoped        int // groups whose re-enumeration was hood-scoped
	Full          int // groups re-enumerated in full (disconnected patterns)
	Kept          int // prior violations carried over unexamined
	Reenumerated  int // matches re-enumerated inside the scope
	MatchesReused int // match deliveries beyond the first per re-enumerated match
	UnitsStolen   int // revalidation tasks taken from another worker's deque
}

func (s *RevalidateStats) add(other RevalidateStats) {
	s.GFDs += other.GFDs
	s.Groups += other.Groups
	s.Scoped += other.Scoped
	s.Full += other.Full
	s.Kept += other.Kept
	s.Reenumerated += other.Reenumerated
	s.MatchesReused += other.MatchesReused
	s.UnitsStolen += other.UnitsStolen
}

// Revalidate computes Violations(updated, Σ) from the complete violation
// set prev of the pre-delta graph old, re-enumerating only matches whose
// root falls inside the touched set's radius-neighborhood. touched is the
// delta's touched node set (graph.Delta.TouchedNodes); old and updated are
// the two versions of the graph — typically the delta's base and its
// Overlay (or the Refreeze output; any Reader pair whose difference is
// confined to touched works). The result equals Violations(updated, Σ),
// violation for violation in the same order, which the equivalence tests
// pin.
//
// A non-nil error means the call ended without a result: cancellation
// through Options.Ctx (ErrCanceled or the context's deadline error) or a
// panic inside a parallel worker (*PanicError). Stats still covers the work
// completed; the violations slice is nil.
func Revalidate(set *gfd.Set, old, updated graph.Reader, touched []graph.NodeID, prev []Violation, opt RevalidateOptions) ([]Violation, RevalidateStats, error) {
	var stats RevalidateStats
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Bucket Σ by pattern structure: one neighborhood lookup and one
	// (scoped) re-enumeration serve every GFD sharing the structure, with
	// per-member literal checks fanned out at each match.
	groups := grouping(set, opt.PerGFD)
	n := len(groups)
	stats.GFDs = set.Len()
	stats.Groups = n
	prevBy := make(map[*gfd.GFD][]Violation, set.Len())
	for _, v := range prev {
		prevBy[v.GFD] = append(prevBy[v.GFD], v)
	}
	// Neighborhoods are shared across groups with equal pattern radius and
	// computed up front, so the parallel workers read them without
	// synchronization. Removed edges exist only in old, added ones only in
	// updated; the union neighborhood covers matches dying in the former
	// and matches born in the latter.
	hoods := make(map[int]map[graph.NodeID]bool)
	for _, grp := range groups {
		if err := ctx.Err(); err != nil {
			return nil, stats, canceledErr(err)
		}
		p := grp.Pattern
		if !p.Connected() || p.NumVars() == 0 {
			continue
		}
		r := p.Radius(match.DefaultOrder(p)[0])
		if _, ok := hoods[r]; ok {
			continue
		}
		hood := match.MultiSourceNeighborhood(old, touched, r)
		for v := range match.MultiSourceNeighborhood(updated, touched, r) {
			hood[v] = true
		}
		hoods[r] = hood
	}

	results := make([][]Violation, set.Len())
	run := func(gi int, st *RevalidateStats) error {
		if h := opt.testHookGFDStart; h != nil {
			h(groups[gi].Members[0])
		}
		if err := ctx.Err(); err != nil {
			return canceledErr(err)
		}
		vs, err := revalidateGroup(set, groups[gi], updated, hoods, prevBy, opt.Plans, opt.Ctx, st)
		if err != nil {
			return err
		}
		for i, mi := range groups[gi].Members {
			results[mi] = vs[i]
		}
		return nil
	}
	workers := opt.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for gi := 0; gi < n; gi++ {
			if err := run(gi, &stats); err != nil {
				return nil, stats, err
			}
		}
	} else {
		st := newStealState[int](workers)
		st.pending.Store(int64(n))
		for gi := 0; gi < n; gi++ {
			st.deques[gi%workers].PushBack(gi)
		}
		perStats := make([]RevalidateStats, workers)
		// First failure wins: a worker that errors (or recovers a panic)
		// records it and wakes the condvar so idle peers observe stop
		// instead of sleeping on it.
		var failMu sync.Mutex
		var fail error
		setFail := func(err error) {
			failMu.Lock()
			if fail == nil {
				fail = err
			}
			failMu.Unlock()
			st.wake()
		}
		stop := func() bool {
			failMu.Lock()
			failed := fail != nil
			failMu.Unlock()
			return failed || ctx.Err() != nil
		}
		// Workers blocked in the condvar re-check stop only when woken;
		// propagate context cancellation into a wake.
		var watchStop chan struct{}
		if ctx.Done() != nil {
			watchStop = make(chan struct{})
			go func() {
				select {
				case <-ctx.Done():
					st.wake()
				case <-watchStop:
				}
			}()
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				// Panic isolation, mirroring the reasoning engines: a panic
				// in one revalidation task fails the call with the stack
				// instead of crashing the process.
				defer func() {
					if r := recover(); r != nil {
						setFail(&PanicError{Worker: id, Value: r, Stack: debug.Stack()})
					}
				}()
				for {
					gi, ok := st.take(id, stop, &perStats[id].UnitsStolen)
					if !ok {
						return
					}
					if err := run(gi, &perStats[id]); err != nil {
						setFail(err)
						return
					}
					st.finishUnit()
				}
			}(w)
		}
		wg.Wait()
		if watchStop != nil {
			close(watchStop)
		}
		for _, s := range perStats {
			stats.add(s)
		}
		failMu.Lock()
		err := fail
		failMu.Unlock()
		if err == nil && st.pending.Load() != 0 {
			// Tasks were abandoned; the only way take reports quiescence
			// with work outstanding is the stop predicate, i.e. the context.
			err = canceledErr(ctx.Err())
		}
		if err != nil {
			return nil, stats, err
		}
	}
	var out []Violation
	for _, vs := range results {
		out = append(out, vs...)
	}
	return out, stats, nil
}

// RevalidateDelta is Revalidate against a delta's own base, overlay and
// touched set — the one-call form for the Graph → Freeze → Delta lifecycle.
func RevalidateDelta(set *gfd.Set, d *graph.Delta, prev []Violation, opt RevalidateOptions) ([]Violation, RevalidateStats, error) {
	return Revalidate(set, d.Base(), d.Overlay(), d.TouchedNodes(), prev, opt)
}

// revalidateGroup revalidates one pattern group: carry over each member's
// prior violations rooted outside the hood, re-enumerate matches rooted
// inside it once for the whole group (fanning the compiled literal checks
// out per member at each match), and restore each member's sequential
// enumeration order. Disconnected patterns fall back to a full
// re-enumeration — a match of such a pattern is a cross product of
// independent component matches, so a change in any component invalidates
// combinations whose root component lies arbitrarily far from the delta.
// It returns one violation slice per group member, aligned with
// grp.Members.
func revalidateGroup(set *gfd.Set, grp gfd.Group, updated graph.Reader, hoods map[int]map[graph.NodeID]bool, prevBy map[*gfd.GFD][]Violation, plans *match.PlanCache, ctx context.Context, st *RevalidateStats) ([][]Violation, error) {
	p := grp.Pattern
	out := make([][]Violation, len(grp.Members))
	var plan *match.Plan
	order := match.DefaultOrder(p)
	if plans != nil {
		plan = plans.Get(p, updated)
		order = plan.DefaultOrder()
	}
	if len(order) == 0 {
		return out, nil
	}
	prog := compileGroupLiterals(set, grp, plan)
	scr := prog.NewScratch()
	emit := func(h match.Assignment) {
		st.Reenumerated++
		st.MatchesReused += len(grp.Members) - 1
		scr.Begin()
		for i, mi := range grp.Members {
			if prog.Violates(i, updated, h, scr) {
				out[i] = append(out[i], Violation{GFD: set.GFDs[mi], Match: h})
			}
		}
	}
	if !p.Connected() {
		st.Full++
		s := match.NewSearch(p, updated, match.Options{Plan: plan, Ctx: ctx})
		for {
			h, ok := s.Next()
			if !ok {
				if err := s.Err(); err != nil {
					return nil, canceledErr(err)
				}
				return out, nil
			}
			emit(h)
		}
	}
	st.Scoped++
	root := order[0]
	hood := hoods[p.Radius(root)]
	for i, mi := range grp.Members {
		for _, v := range prevBy[set.GFDs[mi]] {
			if !hood[v.Match[root]] {
				out[i] = append(out[i], v)
				st.Kept++
			}
		}
	}
	if cands := match.ScopedRootCandidates(p, updated, order, hood); len(cands) > 0 {
		s := match.NewSearch(p, updated, match.Options{RootCandidates: cands, Plan: plan, Ctx: ctx})
		for {
			h, ok := s.Next()
			if !ok {
				if err := s.Err(); err != nil {
					return nil, canceledErr(err)
				}
				break
			}
			emit(h)
		}
	}
	// The carried-over and re-enumerated halves partition each member's
	// violation set by root-in-hood; both are lexicographic in the variable
	// order, and the sequential enumeration is exactly that lexicographic
	// order (every search frame iterates an ascending candidate list), so
	// one sort per member restores full-Violations order.
	for i := range out {
		sortViolationsByOrder(out[i], order)
	}
	return out, nil
}

// sortViolationsByOrder sorts violations of one pattern lexicographically
// by the match projected through the variable order — the order a
// sequential enumeration emits them in.
func sortViolationsByOrder(vs []Violation, order []pattern.Var) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i].Match, vs[j].Match
		for _, v := range order {
			if a[v] != b[v] {
				return a[v] < b[v]
			}
		}
		return false
	})
}
