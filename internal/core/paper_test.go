package core

// Tests in this file reproduce the paper's worked examples verbatim:
// Example 2 (interacting GFDs without a model), Example 4 (SeqSat's conflict
// via the inverted index), and Examples 8/9 (implication by deduction and by
// inconsistency).

import (
	"testing"

	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// q5 is Fig. 2's Q5: a single wildcard node x.
func q5() *pattern.Pattern {
	p := pattern.New()
	p.AddVar("x", graph.Wildcard)
	return p
}

// q6 is Fig. 2's Q6: x(a) -p-> y(b), z(b), w(c).
func q6() *pattern.Pattern {
	p := pattern.New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "b")
	z := p.AddVar("z", "b")
	w := p.AddVar("w", "c")
	p.AddEdge(x, y, "p")
	p.AddEdge(x, z, "p")
	p.AddEdge(x, w, "p")
	return p
}

// q7 is Fig. 2's Q7: x(a) -p-> y(b), z(c), w(c).
func q7() *pattern.Pattern {
	p := pattern.New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "b")
	z := p.AddVar("z", "c")
	w := p.AddVar("w", "c")
	p.AddEdge(x, y, "p")
	p.AddEdge(x, z, "p")
	p.AddEdge(x, w, "p")
	return p
}

// q8 is Fig. 2's Q8: x(a) -p-> y(b).
func q8() *pattern.Pattern {
	p := pattern.New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "b")
	p.AddEdge(x, y, "p")
	return p
}

// q9 is Fig. 2's Q9: x(a) -p-> y(c).
func q9() *pattern.Pattern {
	p := pattern.New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "c")
	p.AddEdge(x, y, "p")
	return p
}

func TestExample2SameEmptyPatternConflict(t *testing.T) {
	// ϕ5 = Q5[x](∅ → x.A = 0), ϕ6 = Q5[x](∅ → x.A = 1): no nonempty graph
	// satisfies both.
	p5, p6 := q5(), q5()
	phi5 := gfd.MustNew("phi5", p5, nil, []gfd.Literal{gfd.Const(0, "A", "0")})
	phi6 := gfd.MustNew("phi6", p6, nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	res := SeqSat(gfd.NewSet(phi5, phi6))
	if res.Satisfiable {
		t.Fatal("ϕ5 ∧ ϕ6 reported satisfiable")
	}
	if res.Conflict == nil {
		t.Fatal("no conflict evidence returned")
	}
	// Each alone is satisfiable.
	for _, phi := range []*gfd.GFD{phi5, phi6} {
		one := SeqSat(gfd.NewSet(phi))
		if !one.Satisfiable {
			t.Fatalf("%s alone reported unsatisfiable", phi.Name)
		}
		if !IsModel(one.Model, gfd.NewSet(phi)) {
			t.Fatalf("witness for %s is not a model", phi.Name)
		}
	}
}

func TestExample2DistinctPatternsInteract(t *testing.T) {
	// ϕ7 = Q6(∅ → x.A=0 ∧ y.B=1), ϕ8 = Q7(y.B=1 → x.A=1). Each has a model;
	// together they do not.
	phi7 := gfd.MustNew("phi7", q6(), nil, []gfd.Literal{gfd.Const(0, "A", "0"), gfd.Const(1, "B", "1")})
	phi8 := gfd.MustNew("phi8", q7(), []gfd.Literal{gfd.Const(1, "B", "1")}, []gfd.Literal{gfd.Const(0, "A", "1")})

	if !SeqSat(gfd.NewSet(phi7)).Satisfiable {
		t.Fatal("ϕ7 alone unsatisfiable")
	}
	if !SeqSat(gfd.NewSet(phi8)).Satisfiable {
		t.Fatal("ϕ8 alone unsatisfiable")
	}
	res := SeqSat(gfd.NewSet(phi7, phi8))
	if res.Satisfiable {
		t.Fatal("{ϕ7, ϕ8} reported satisfiable; Example 2 proves it is not")
	}
}

func TestExample4InvertedIndexConflict(t *testing.T) {
	// Σ = {ϕ7, ϕ9, ϕ10}: ϕ9 = Q6(y.B=1 → w.C=1), ϕ10 = Q7(w.C=1 → x.A=1).
	// The conflict (x.A forced to 0 and 1) is only reachable through the
	// late instantiation of w.C, exercising the inverted index.
	phi7 := gfd.MustNew("phi7", q6(), nil, []gfd.Literal{gfd.Const(0, "A", "0"), gfd.Const(1, "B", "1")})
	phi9 := gfd.MustNew("phi9", q6(), []gfd.Literal{gfd.Const(1, "B", "1")}, []gfd.Literal{gfd.Const(3, "C", "1")})
	phi10 := gfd.MustNew("phi10", q7(), []gfd.Literal{gfd.Const(3, "C", "1")}, []gfd.Literal{gfd.Const(0, "A", "1")})
	res := SeqSat(gfd.NewSet(phi7, phi9, phi10))
	if res.Satisfiable {
		t.Fatal("Example 4's Σ reported satisfiable")
	}
	// Without ϕ7 the chain never fires: satisfiable.
	res2 := SeqSat(gfd.NewSet(phi9, phi10))
	if !res2.Satisfiable {
		t.Fatal("{ϕ9, ϕ10} should be satisfiable")
	}
	if !IsModel(res2.Model, gfd.NewSet(phi9, phi10)) {
		t.Fatal("witness is not a model")
	}
}

func impExample8Sigma() *gfd.Set {
	phi11 := gfd.MustNew("phi11", q8(), nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	phi12 := gfd.MustNew("phi12", q9(),
		[]gfd.Literal{gfd.Const(0, "A", "1"), gfd.Const(1, "B", "2")},
		[]gfd.Literal{gfd.Const(1, "C", "2")})
	return gfd.NewSet(phi11, phi12)
}

func TestExample8ImplicationByDeduction(t *testing.T) {
	// ϕ13 = Q7(z.B=2 → z.C=2); Σ |= ϕ13 via ϕ11 then ϕ12 (Example 9 traces
	// this run).
	sigma := impExample8Sigma()
	phi13 := gfd.MustNew("phi13", q7(), []gfd.Literal{gfd.Const(2, "B", "2")}, []gfd.Literal{gfd.Const(2, "C", "2")})
	res := SeqImp(sigma, phi13)
	if !res.Implied {
		t.Fatal("Σ |= ϕ13 not detected")
	}
	if res.Reason != ImpliedByDeduction {
		t.Fatalf("reason = %v, want consequent deduced", res.Reason)
	}
	// Neither ϕ11 nor ϕ12 alone implies ϕ13.
	if SeqImp(gfd.NewSet(sigma.GFDs[0]), phi13).Implied {
		t.Error("ϕ11 alone should not imply ϕ13")
	}
	if SeqImp(gfd.NewSet(sigma.GFDs[1]), phi13).Implied {
		t.Error("ϕ12 alone should not imply ϕ13")
	}
}

func TestExample8ImplicationByConflict(t *testing.T) {
	// ϕ14 = Q7(x.A=0 → z.C=2); Σ |= ϕ14 because ϕ11 forces x.A=1, so no
	// match of Q7 satisfies x.A=0 in a model of Σ.
	sigma := impExample8Sigma()
	phi14 := gfd.MustNew("phi14", q7(), []gfd.Literal{gfd.Const(0, "A", "0")}, []gfd.Literal{gfd.Const(2, "C", "2")})
	res := SeqImp(sigma, phi14)
	if !res.Implied {
		t.Fatal("Σ |= ϕ14 not detected")
	}
	if res.Reason != ImpliedByConflict {
		t.Fatalf("reason = %v, want antecedent inconsistent", res.Reason)
	}
}

func TestNonImplication(t *testing.T) {
	sigma := impExample8Sigma()
	// Q8(∅ → x.A=2) is not implied (ϕ11 forces 1, but 1 ≠ 2 means the
	// consequent is falsifiable... in fact forcing 1 CONFLICTS with 2 only
	// if enforced; here Y is just not deducible and x.A=2 fails in the
	// canonical model where x.A=1).
	notImp := gfd.MustNew("ni", q8(), nil, []gfd.Literal{gfd.Const(0, "A", "2")})
	if SeqImp(sigma, notImp).Implied {
		t.Fatal("Q8(∅→x.A=2) wrongly implied")
	}
	// Q8(∅ → x.A=1) IS implied: ϕ11 says exactly that.
	imp := gfd.MustNew("i", q8(), nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	if !SeqImp(sigma, imp).Implied {
		t.Fatal("Q8(∅→x.A=1) not implied though ϕ11 ∈ Σ")
	}
	// A GFD over an unrelated pattern is not implied.
	pz := pattern.New()
	pz.AddVar("x", "zzz")
	other := gfd.MustNew("o", pz, nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	if SeqImp(sigma, other).Implied {
		t.Fatal("unrelated GFD wrongly implied")
	}
}

func TestImplicationTrivialCases(t *testing.T) {
	sigma := impExample8Sigma()
	// Empty consequent: trivially implied.
	triv := gfd.MustNew("t", q8(), []gfd.Literal{gfd.Const(0, "A", "9")}, nil)
	res := SeqImp(sigma, triv)
	if !res.Implied || res.Reason != ImpliedTrivially {
		t.Fatalf("empty-Y: implied=%v reason=%v", res.Implied, res.Reason)
	}
	// Y ⊆ X: trivially implied.
	lit := gfd.Const(0, "A", "9")
	yx := gfd.MustNew("yx", q8(), []gfd.Literal{lit}, []gfd.Literal{lit})
	res = SeqImp(gfd.NewSet(), yx)
	if !res.Implied || res.Reason != ImpliedTrivially {
		t.Fatalf("Y⊆X: implied=%v reason=%v", res.Implied, res.Reason)
	}
	// Inconsistent X: trivially implied even by the empty Σ.
	incons := gfd.MustNew("ix", q8(),
		[]gfd.Literal{gfd.Const(0, "A", "1"), gfd.Const(0, "A", "2")},
		[]gfd.Literal{gfd.Const(1, "B", "1")})
	res = SeqImp(gfd.NewSet(), incons)
	if !res.Implied || res.Reason != ImpliedTrivially {
		t.Fatalf("inconsistent X: implied=%v reason=%v", res.Implied, res.Reason)
	}
}

func TestFalseConsequentGFDs(t *testing.T) {
	// ϕ1-style: Q1 = x -locatedIn-> y, y -partOf-> x, consequent false.
	p := pattern.New()
	x := p.AddVar("x", "place")
	y := p.AddVar("y", "place")
	p.AddEdge(x, y, "locatedIn")
	p.AddEdge(y, x, "partOf")
	phi1, err := gfd.NewFalse("phi1", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// ϕ1 alone is unsatisfiable as a model requirement: any model must
	// contain a match of Q1, and the match then requires false.
	res := SeqSat(gfd.NewSet(phi1))
	if res.Satisfiable {
		t.Fatal("Q(∅→false) must be unsatisfiable (a model must match Q)")
	}
	// But a graph without the cyclic pattern trivially satisfies ϕ1.
	g := graph.New()
	a := g.AddNode("place")
	b := g.AddNode("place")
	g.AddEdge(a, b, "locatedIn")
	if ok, _ := Satisfies(g, gfd.NewSet(phi1)); !ok {
		t.Fatal("acyclic graph should satisfy ϕ1")
	}
	// And DBpedia's Bamburi situation violates it.
	g.AddEdge(b, a, "partOf")
	ok, v := Satisfies(g, gfd.NewSet(phi1))
	if ok {
		t.Fatal("cyclic locatedIn/partOf not caught")
	}
	if v == nil || v.GFD != phi1 {
		t.Fatal("violation evidence missing")
	}
}

func TestSatisfiableSetProducesVerifiedModel(t *testing.T) {
	// A chain of variable literals across two GFDs; satisfiable, and the
	// completed model must verify under the literal semantics.
	p1 := q8()
	phiA := gfd.MustNew("a", p1, nil, []gfd.Literal{gfd.Vars(0, "n", 1, "m")})
	p2 := q8()
	phiB := gfd.MustNew("b", p2, []gfd.Literal{gfd.Vars(0, "n", 1, "m")}, []gfd.Literal{gfd.Const(0, "k", "5")})
	set := gfd.NewSet(phiA, phiB)
	res := SeqSat(set)
	if !res.Satisfiable {
		t.Fatal("chain set unsatisfiable")
	}
	if !IsModel(res.Model, set) {
		t.Fatalf("completed model is not a model:\n%s", res.Model)
	}
	if v, ok := res.Model.Attr(0, "k"); !ok || v != "5" {
		t.Errorf("x.k = %q, want 5 (forced through the chain)", v)
	}
}

func TestEmptySetSatisfiable(t *testing.T) {
	res := SeqSat(gfd.NewSet())
	if !res.Satisfiable || res.Model == nil || res.Model.NumNodes() == 0 {
		t.Fatal("empty Σ must be satisfiable with a nonempty model")
	}
}
