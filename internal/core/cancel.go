// Run-level failure types for the parallel engines: cooperative
// cancellation (ParOptions.Ctx / RevalidateOptions.Ctx) and worker panic
// isolation both surface here instead of as a crashed process. The
// cancellation protocol is cooperative — the context is checked at unit
// boundaries and every few hundred match-frame expansions — so a cancelled
// run returns promptly with the stats of the work it did finish, and the
// goroutine-leak tests pin that nothing it spawned outlives it.
package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel a parallel run returns when its context was
// canceled before the run reached an answer. A run stopped by a deadline
// returns context.DeadlineExceeded instead, so callers can distinguish "the
// caller gave up" from "the time budget ran out".
var ErrCanceled = errors.New("core: run canceled")

// PanicError is a panic raised inside one parallel worker (or its pipelined
// match producer), recovered at the goroutine boundary and converted into a
// run-level failure: the run's siblings are canceled, the run returns this
// error, and the process stays alive. Stack is the panicking goroutine's
// stack at recovery time.
type PanicError struct {
	Worker int    // id of the worker the panic was recovered on
	Value  any    // the value passed to panic
	Stack  []byte // runtime/debug.Stack() of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: worker %d panicked: %v\n%s", e.Worker, e.Value, e.Stack)
}

// canceledErr maps a non-nil context error onto the package's sentinel:
// plain cancellation becomes ErrCanceled, a deadline (or any custom cause)
// passes through unchanged.
func canceledErr(err error) error {
	if errors.Is(err, context.Canceled) {
		return ErrCanceled
	}
	return err
}
