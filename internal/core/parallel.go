package core

import (
	"context"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/depgraph"
	"repro/internal/eq"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// ParOptions configures ParSat and ParImp. The zero value is not useful;
// start from DefaultParOptions.
type ParOptions struct {
	// Workers is p, the number of parallel workers.
	Workers int
	// TTL is the straggler threshold: a unit whose matching exceeds TTL is
	// split and its untried branches returned to the coordinator
	// (Section V-B, unit splitting). Ignored when Splitting is false.
	TTL time.Duration
	// Pipeline runs match generation and attribute checking in separate
	// goroutines per unit (pipelined parallelism); when false, the worker
	// first enumerates all matches of the unit, then checks them — the
	// paper's ParSat_np / ParImp_np ablation.
	Pipeline bool
	// Splitting enables TTL-based work-unit splitting; false is the
	// ParSat_nb / ParImp_nb ablation.
	Splitting bool
	// DepOrder orders the work-unit queue topologically by the dependency
	// graph of Section V-B; false uses arrival order (an extra ablation
	// beyond the paper's variants).
	DepOrder bool
	// Stealing selects the shard-aware work-stealing executor: each worker
	// owns a double-ended queue seeded with a stripe of the rank-ordered
	// units, TTL-split straggler branches are pushed onto the owner's own
	// deque (depth-first, cache-warm) instead of round-tripping through the
	// coordinator, and idle workers first steal from the back of peer deques
	// and then block on a condition variable until work appears or the run
	// quiesces — no polling, no sleeps. False is the single-global-queue
	// coordinator (kept as the comparison baseline for the scheduling
	// benchmarks; both executors decide identically on every input).
	Stealing bool
	// Simulation enables the graph-simulation pre-filter on pattern
	// candidates (the paper's multi-query optimization device). The
	// relation is computed over graph's label-keyed adjacency index and
	// seeded through the per-node degree/label signature, so both the seq
	// and parallel variants pick the indexed path up transparently.
	Simulation bool
	// Plans, when non-nil, is the compiled-plan cache the run resolves each
	// GFD pattern through: pivot selection, variable orders and label
	// resolution are computed once per (pattern, snapshot epoch) and reused
	// across runs against the same snapshot. A nil cache still compiles one
	// plan per GFD per run (shared by all of that GFD's work units); the
	// cache only adds cross-run reuse, which requires an epoch-carrying
	// snapshot reader (mutable canonical graphs are planned per run either
	// way).
	Plans *match.PlanCache
	// Ctx, when non-nil, cancels the run cooperatively: workers check it at
	// unit boundaries, idle workers blocked on the steal condition variable
	// are woken, and in-flight match enumerations stop within a bounded
	// number of frame expansions (match.Options.Ctx). A cancelled run
	// returns the stats of the work it finished plus ErrCanceled (or
	// context.DeadlineExceeded when a deadline fired) in the result's Err
	// field; it never leaks a goroutine. Nil runs without cancellation.
	Ctx context.Context
	// PerGFD disables shared multi-GFD evaluation: every GFD gets its own
	// pattern group (and therefore its own work units and enumerations) even
	// when several GFDs share one pattern structure. The answer is identical
	// either way — the offered (rule, match) multiset is the same and the
	// fixpoint is order-independent — so this exists as the ablation baseline
	// for the multi_gfd_speedup benchmark and the equivalence tests.
	PerGFD bool
	// unitDepCap bounds the number of units for which the quadratic
	// unit-level dependency graph is built; beyond it the coarser GFD-level
	// topological order ranks units. 0 means the default.
	unitDepCap int
	// testHookUnitStart, when non-nil, runs at the top of every work unit —
	// the seam the panic-isolation tests use to detonate inside a worker.
	testHookUnitStart func(gfd int, pivot graph.NodeID)
}

// DefaultParOptions returns the configuration used by the experiments
// unless stated otherwise: all optimizations on.
func DefaultParOptions(workers int) ParOptions {
	return ParOptions{
		Workers:    workers,
		TTL:        100 * time.Millisecond,
		Pipeline:   true,
		Splitting:  true,
		DepOrder:   true,
		Stealing:   true,
		Simulation: true,
	}
}

const defaultUnitDepCap = 2500

// unit is a pivoted work unit (Q[z], group), optionally carrying a partial
// match seed when it was split off a straggler. Units are per pattern
// group, not per GFD: one enumeration of the group's pattern serves every
// member rule, with the per-GFD conclusions fanned out at enforcement time
// (handleMatch).
type unit struct {
	grp   int // index into parEngine.groups
	pivot graph.NodeID
	seed  match.Assignment
}

// outcome codes reported by workers to the coordinator.
type outcomeKind int

const (
	evDone outcomeKind = iota
	evConflict
	evGoal
	evSplit
	evFinalized
	// evCanceled is injected by the context watcher so a coordinator blocked
	// on the event channel observes cancellation promptly.
	evCanceled
	// evPanic is emitted after a worker (or producer) panic was recovered
	// and recorded; the coordinator fails the run with the recorded error.
	evPanic
)

type cevent struct {
	kind   outcomeKind
	worker int
	splits []unit
	// cursor is the worker's log position at finalize time.
	cursor int
}

type wmsgKind int

const (
	wmAssign wmsgKind = iota
	wmFinalize
	wmStop
)

type wmsg struct {
	kind  wmsgKind
	units []unit
}

// parEngine runs the coordinator/worker protocol shared by ParSat and
// ParImp. The canonical graph is replicated conceptually at each worker;
// being immutable it is shared read-only. Each worker owns an Eq replica and
// a pending index; deltas are exchanged through a cluster.Log.
type parEngine struct {
	opt    ParOptions
	set    *gfd.Set
	g      graph.Reader
	baseEq *eq.Eq            // nil for satisfiability; Eq_X for implication
	goal   func(*eq.Eq) bool // nil for satisfiability; Y ⊆ Eq_H for implication
	high   func(int) bool    // GFD indexes with the highest unit priority

	// groups buckets Σ by pattern structure (singletons under PerGFD); the
	// per-group arrays below are aligned with it. sharedGroups counts the
	// multi-member groups for Stats.GroupsShared.
	groups       []gfd.Group
	sharedGroups int

	sims     []*match.Sim
	pivotVar []pattern.Var
	orders   [][]pattern.Var
	plans    []*match.Plan
	units    []unit
	ranks    []int

	log     *cluster.Log
	steal   *stealState[unit] // non-nil on work-stealing runs
	stopped atomic.Bool

	// ctx is the run's context (never nil once run() starts; Background
	// when ParOptions.Ctx is nil). events is the coordinator's channel,
	// stored so recordPanic can reach the coordinator from any goroutine.
	ctx    context.Context
	events chan cevent
	// failMu guards fail, the first run-ending failure (a worker panic).
	failMu sync.Mutex
	fail   error
}

// recordPanic converts a recovered panic into the run's failure: first one
// wins, siblings are told to stop (flag + condvar wake), and the coordinator
// is notified. The event send can block only while the coordinator is still
// draining (finishRun drains until every worker has exited, and the sender's
// goroutine exit strictly follows this send), so it never deadlocks.
func (e *parEngine) recordPanic(worker int, v any) {
	e.setPanic(worker, v)
	e.events <- cevent{kind: evPanic, worker: worker}
}

// setPanic is the coordinator-free half of recordPanic: record the failure
// and stop the siblings without touching e.events. Goroutines that run
// before the coordinator exists (the buildUnits simulation pool) use it
// directly; run() checks failure() before spawning anything.
func (e *parEngine) setPanic(worker int, v any) {
	pe := &PanicError{Worker: worker, Value: v, Stack: debug.Stack()}
	e.failMu.Lock()
	if e.fail == nil {
		e.fail = pe
	}
	e.failMu.Unlock()
	e.stopped.Store(true)
	if st := e.steal; st != nil {
		st.wake()
	}
}

// failure returns the error the run must end with, if any: a recorded
// worker panic wins over plain context cancellation. Coordinators call it
// both on failure events and before concluding quiescent success, so a
// worker that abandoned units because stopped was set can never be
// mistaken for a worker that finished them.
func (e *parEngine) failure() error {
	e.failMu.Lock()
	f := e.fail
	e.failMu.Unlock()
	if f != nil {
		return f
	}
	if err := e.ctx.Err(); err != nil {
		return canceledErr(err)
	}
	return nil
}

// watchCancel spawns the goroutine that propagates context cancellation
// into the run: set the stop flag, wake condvar-blocked idle workers, and
// nudge the coordinator off its event-channel read. The returned stop
// function (always non-nil) releases the watcher; a context that can never
// fire needs no goroutine at all.
func (e *parEngine) watchCancel() func() {
	if e.ctx.Done() == nil {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-e.ctx.Done():
			e.stopped.Store(true)
			if st := e.steal; st != nil {
				st.wake()
			}
			select {
			case e.events <- cevent{kind: evCanceled}:
			case <-stop:
			}
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

// stealState is the scheduling state shared by the work-stealing executor's
// workers: one deque per worker, a count of units still queued or in
// flight, and a condition variable idle workers block on (with a push
// sequence number so a wakeup between a worker's empty scan and its wait
// is never lost). There is no busy-polling: a worker that finds every
// deque empty sleeps until a split pushes new work, the last unit
// completes, or the run is stopped. It is generic over the unit type so the
// same executor schedules both the reasoning engines (ParSat/ParImp units)
// and incremental revalidation (per-GFD rescope tasks, revalidate.go).
type stealState[T any] struct {
	deques  []*cluster.Deque[T]
	pending atomic.Int64
	mu      sync.Mutex
	cond    *sync.Cond
	seq     uint64 // bumped under mu by every wake
}

func newStealState[T any](p int) *stealState[T] {
	st := &stealState[T]{deques: make([]*cluster.Deque[T], p)}
	for i := range st.deques {
		st.deques[i] = cluster.NewDeque[T]()
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// wake bumps the sequence number and wakes every waiter.
func (st *stealState[T]) wake() {
	st.mu.Lock()
	st.seq++
	st.cond.Broadcast()
	st.mu.Unlock()
}

// addWork makes units available on the owner's deque front (depth-first:
// split branches run on the arrays their parent just warmed). pending is
// raised before the push so no thief can complete the new work and drive
// pending to zero while it is still being published.
func (st *stealState[T]) addWork(owner int, units []T) {
	st.pending.Add(int64(len(units)))
	st.deques[owner].PushFront(units...)
	st.wake()
}

// finishUnit retires one unit; the last one wakes the waiters so they can
// observe quiescence.
func (st *stealState[T]) finishUnit() {
	if st.pending.Add(-1) == 0 {
		st.wake()
	}
}

// grab returns a unit from worker id's own deque front, else from the back
// of the first non-empty peer deque (scanning from the next worker up, so
// victims spread); steals increment *stolen.
func (st *stealState[T]) grab(id int, stolen *int) (T, bool) {
	if u, ok := st.deques[id].PopFront(); ok {
		return u, true
	}
	p := len(st.deques)
	for i := 1; i < p; i++ {
		if u, ok := st.deques[(id+i)%p].PopBack(); ok {
			*stolen++
			return u, true
		}
	}
	var zero T
	return zero, false
}

// take returns the next unit for worker id, blocking while every deque is
// empty but units are still in flight (their splits may yet publish new
// work). It returns ok=false on global quiescence or when stopped reports
// true. The sequence-number handshake with wake closes the scan-then-sleep
// race: a push between the empty scan and the wait bumps seq, so the wait
// is skipped.
func (st *stealState[T]) take(id int, stopped func() bool, stolen *int) (T, bool) {
	var zero T
	for {
		if stopped() {
			return zero, false
		}
		if u, ok := st.grab(id, stolen); ok {
			return u, true
		}
		st.mu.Lock()
		seq := st.seq
		st.mu.Unlock()
		if u, ok := st.grab(id, stolen); ok {
			return u, true
		}
		if st.pending.Load() == 0 {
			return zero, false
		}
		st.mu.Lock()
		for st.seq == seq && st.pending.Load() > 0 && !stopped() {
			st.cond.Wait()
		}
		st.mu.Unlock()
	}
}

// buildUnits enumerates the work units of Σ on g: one per (pattern group,
// pivot candidate). GFDs with structurally equal patterns share one group —
// one simulation relation, one plan, one set of units — and their X → Y
// conclusions fan out per match in handleMatch. The pivot variable is the
// most selective pivot among the pattern's components; candidates come from
// the simulation pre-filter when enabled (a pattern that fails simulation
// has no matches and yields no units), else from the label index.
func (e *parEngine) buildUnits() {
	e.groups = grouping(e.set, e.opt.PerGFD)
	n := len(e.groups)
	for _, grp := range e.groups {
		if len(grp.Members) > 1 {
			e.sharedGroups++
		}
	}
	e.sims = make([]*match.Sim, n)
	e.pivotVar = make([]pattern.Var, n)
	e.orders = make([][]pattern.Var, n)
	e.plans = make([]*match.Plan, n)
	// The simulation pre-filter is per-group independent; computing it
	// serially would be a p-independent startup phase capping the speedup
	// (Amdahl), so it is spread over the same p workers.
	simFailed := make([]bool, n)
	if e.opt.Simulation {
		p := e.opt.Workers
		if p < 1 {
			p = 1
		}
		jobs := make(chan int, n)
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Panic isolation: this pool runs before the coordinator
				// and its event channel exist, so a panic in Simulate is
				// recorded directly and surfaces when run() checks
				// failure() — not as a process crash.
				defer func() {
					if r := recover(); r != nil {
						e.setPanic(w, r)
					}
				}()
				for i := range jobs {
					if sim := match.Simulate(e.groups[i].Pattern, e.g); sim != nil {
						e.sims[i] = sim
					} else {
						simFailed[i] = true
					}
				}
			}(w)
		}
		wg.Wait()
	}
	for i, grp := range e.groups {
		p := grp.Pattern
		if e.opt.Simulation && simFailed[i] {
			continue // no match anywhere: no units
		}
		// Plan the group once: pivots, per-pivot orders and resolved label IDs
		// are shared by every work unit (and, through an epoch-checked
		// Options.Plans cache, by later runs against the same snapshot).
		var plan *match.Plan
		if e.opt.Plans != nil {
			plan = e.opt.Plans.Get(p, e.g)
		} else {
			plan = match.CompilePlan(p, e.g)
		}
		e.plans[i] = plan
		pivots := plan.Pivots()
		best := pivots[0]
		bestSize := e.candCount(i, best)
		for _, pv := range pivots[1:] {
			if s := e.candCount(i, pv); s < bestSize {
				best, bestSize = pv, s
			}
		}
		e.pivotVar[i] = best
		// Variable order: the pivot's component first (starting at the
		// pivot), then remaining components (precomputed per pivot on the
		// plan).
		e.orders[i] = plan.OrderFor(best)

		for _, z := range e.candidatesFor(i, best) {
			e.units = append(e.units, unit{grp: i, pivot: z})
		}
	}
	e.rankUnits()
}

func (e *parEngine) candCount(i int, v pattern.Var) int {
	if e.sims[i] != nil {
		return e.sims[i].Count(v)
	}
	return e.g.LabelFrequency(e.groups[i].Pattern.Label(v))
}

func (e *parEngine) candidatesFor(i int, v pattern.Var) []graph.NodeID {
	if e.sims[i] != nil {
		return e.sims[i].Nodes(v) // already ascending
	}
	// CandidateNodes returns a fresh copy, so sorting in place is safe.
	out := e.g.CandidateNodes(e.groups[i].Pattern.Label(v))
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// rankUnits assigns queue priorities: topological order over the unit
// dependency graph when small enough (with high-priority units first),
// otherwise the GFD-level topological order.
func (e *parEngine) rankUnits() {
	e.ranks = make([]int, len(e.units))
	if !e.opt.DepOrder {
		for i := range e.ranks {
			e.ranks[i] = i
		}
		return
	}
	cap := e.opt.unitDepCap
	if cap == 0 {
		cap = defaultUnitDepCap
	}
	isHigh := func(gi int) bool {
		if e.high != nil {
			return e.high(gi)
		}
		return len(e.set.GFDs[gi].X) == 0
	}
	// The dependency graph speaks GFD indexes, so each group is represented
	// by its first member; a group ranks high when any member does (its unit
	// enforces every member's conclusion).
	rep := make([]int, len(e.groups))
	groupHigh := make(map[int]bool, len(e.groups)) // keyed by representative GFD
	for gi, grp := range e.groups {
		rep[gi] = grp.Members[0]
		hi := false
		for _, mi := range grp.Members {
			if isHigh(mi) {
				hi = true
				break
			}
		}
		groupHigh[rep[gi]] = hi
	}
	if len(e.units) <= cap {
		it := depgraph.NewInteraction(e.set)
		dunits := make([]depgraph.Unit, len(e.units))
		for i, u := range e.units {
			dunits[i] = depgraph.Unit{GFD: rep[u.grp], Pivot: u.pivot}
		}
		radii := make([]int, e.set.Len())
		for gi, grp := range e.groups {
			if e.orders[gi] != nil {
				radii[rep[gi]] = grp.Pattern.Radius(e.pivotVar[gi])
			}
		}
		adj := depgraph.UnitDeps(dunits, it, e.g, radii)
		e.ranks = depgraph.UnitPriorities(dunits, adj, e.set, func(u depgraph.Unit) bool { return groupHigh[u.GFD] })
		return
	}
	// Coarse ranking: position of the unit's representative GFD in the
	// GFD-level order, with high-priority GFDs first.
	order := depgraph.OrderGFDs(e.set)
	pos := make([]int, e.set.Len())
	rank := 0
	for _, gi := range order {
		if isHigh(gi) {
			pos[gi] = rank
			rank++
		}
	}
	for _, gi := range order {
		if !isHigh(gi) {
			pos[gi] = rank
			rank++
		}
	}
	for i, u := range e.units {
		e.ranks[i] = pos[rep[u.grp]]
	}
}

// run executes the protocol and returns the first conflict (satisfiability
// failure / implication success), whether the goal was reached (implication
// by deduction), the converged relation (quiescent runs only; nil after
// early termination), and aggregate stats. A non-nil error means the run
// ended without an answer — cancellation (ErrCanceled or the context's
// deadline error) or a worker panic (*PanicError) — with stats covering the
// work completed up to that point. The scheduling strategy is selected by
// Options.Stealing; both executors share the unit semantics, the broadcast
// log and the finalize protocol, and decide identically.
func (e *parEngine) run() (con *eq.Conflict, goalHit bool, final *eq.Eq, stats Stats, err error) {
	e.failMu.Lock()
	ferr := e.fail
	e.failMu.Unlock()
	if ferr != nil {
		// A buildUnits pool goroutine panicked before the coordinator
		// existed; fail the run with its PanicError instead of running on
		// partial units. (failure() is unusable here: e.ctx is not set yet.)
		return nil, false, nil, Stats{}, ferr
	}
	e.ctx = e.opt.Ctx
	if e.ctx == nil {
		e.ctx = context.Background()
	}
	if cerr := e.ctx.Err(); cerr != nil {
		return nil, false, nil, Stats{}, canceledErr(cerr)
	}
	if e.opt.Stealing {
		return e.runStealing()
	}
	return e.runCentral()
}

// spawnWorkers builds the shared worker/channel plumbing. entry is each
// worker goroutine's body.
func (e *parEngine) spawnWorkers(p int, entry func(*parWorker)) (events chan cevent, assign []chan wmsg, workers []*parWorker, wg *sync.WaitGroup) {
	events = make(chan cevent, 16*p+len(e.units)+16)
	assign = make([]chan wmsg, p)
	workers = make([]*parWorker, p)
	wg = &sync.WaitGroup{}
	e.events = events
	for i := 0; i < p; i++ {
		assign[i] = make(chan wmsg, 8)
		workers[i] = newParWorker(i, e, events, assign[i])
		wg.Add(1)
		go func(w *parWorker) {
			defer wg.Done()
			// Panic isolation: a panic anywhere in this worker's unit
			// execution (e.g. a stale-overlay read) is recovered here,
			// recorded as the run's *PanicError, and stops the siblings —
			// the run fails cleanly instead of crashing the process. The
			// recover runs before wg.Done (defers are LIFO), so finishRun
			// is still draining events when recordPanic sends.
			defer func() {
				if r := recover(); r != nil {
					e.recordPanic(w.id, r)
				}
			}()
			entry(w)
		}(workers[i])
	}
	return events, assign, workers, wg
}

// finishRun stops every worker, drains stray events so none blocks on its
// way out, and aggregates stats.
func (e *parEngine) finishRun(events chan cevent, assign []chan wmsg, workers []*parWorker, wg *sync.WaitGroup,
	c *eq.Conflict, goal bool, fin *eq.Eq, err error) (*eq.Conflict, bool, *eq.Eq, Stats, error) {
	e.stopped.Store(true)
	if e.steal != nil {
		e.steal.wake()
	}
	for i := range assign {
		assign[i] <- wmsg{kind: wmStop}
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-events:
			continue
		case <-done:
		}
		break
	}
	var st Stats
	for _, w := range workers {
		st.Add(w.enf.stats)
	}
	st.Broadcasts = e.log.Appends()
	st.DeltaOps = e.log.Len()
	st.GroupsShared = e.sharedGroups
	return c, goal, fin, st, err
}

// runCentral is the single-global-queue executor: the coordinator owns a
// priority queue of every unit, feeds idle workers in small batches, and
// receives split sub-units back over the event channel. Kept as the
// scheduling baseline the work-stealing executor is benchmarked against.
func (e *parEngine) runCentral() (con *eq.Conflict, goalHit bool, final *eq.Eq, stats Stats, err error) {
	p := e.opt.Workers
	if p < 1 {
		p = 1
	}
	e.log = cluster.NewLog()
	events, assign, workers, wg := e.spawnWorkers(p, func(w *parWorker) { w.loop() })
	defer e.watchCancel()()

	// Coordinator.
	queue := cluster.NewQueue[unit]()
	for i, u := range e.units {
		queue.Push(e.ranks[i], u)
	}
	idle := make([]bool, p)
	for i := range idle {
		idle[i] = true
	}
	// Batch size: units are assigned in small batches (Section V-B) so the
	// coordinator round-trip is paid once per batch, not once per unit.
	batch := len(e.units) / (8 * p)
	if batch < 1 {
		batch = 1
	}
	if batch > 64 {
		batch = 64
	}
	feed := func() {
		for i := 0; i < p; i++ {
			if !idle[i] {
				continue
			}
			var us []unit
			for len(us) < batch {
				u, ok := queue.Pop()
				if !ok {
					break
				}
				us = append(us, u)
			}
			if len(us) == 0 {
				return
			}
			idle[i] = false
			assign[i] <- wmsg{kind: wmAssign, units: us}
		}
	}
	allIdle := func() bool {
		for _, b := range idle {
			if !b {
				return false
			}
		}
		return true
	}
	finish := func(c *eq.Conflict, goal bool, fin *eq.Eq) (*eq.Conflict, bool, *eq.Eq, Stats, error) {
		return e.finishRun(events, assign, workers, wg, c, goal, fin, nil)
	}
	fail := func(err error) (*eq.Conflict, bool, *eq.Eq, Stats, error) {
		return e.finishRun(events, assign, workers, wg, nil, false, nil, err)
	}

	feed()
	// Main loop: dispatch until the queue drains and every worker idles,
	// then run finalize rounds until the broadcast log is quiescent. Every
	// quiescence conclusion re-checks failure() first: once stopped is set a
	// worker abandons its remaining units, so an apparently idle fleet may
	// hold an incomplete run that must surface as an error, never as an
	// answer.
	finalizing := false
	finalizeReplies := 0
	finalizeBase := 0
	for {
		if !finalizing && queue.Len() == 0 && allIdle() {
			if err := e.failure(); err != nil {
				return fail(err)
			}
			finalizing = true
			finalizeReplies = 0
			finalizeBase = e.log.Len()
			for i := 0; i < p; i++ {
				assign[i] <- wmsg{kind: wmFinalize}
			}
		}
		ev := <-events
		switch ev.kind {
		case evCanceled, evPanic:
			return fail(e.failure())
		case evConflict:
			return finish(workers[ev.worker].enf.conflict(), false, nil)
		case evGoal:
			return finish(nil, true, nil)
		case evSplit:
			queue.PushFront(ev.splits...)
			if finalizing {
				// A split during finalize cannot happen (no units running),
				// but guard anyway.
				finalizing = false
			}
			feed()
		case evDone:
			idle[ev.worker] = true
			feed()
		case evFinalized:
			finalizeReplies++
			if finalizeReplies == p {
				if e.log.Len() == finalizeBase && queue.Len() == 0 {
					// Quiescent: no conflict, goal not reached. Every worker
					// has applied the whole log, so worker 0's relation is
					// the converged global Eq.
					return finish(nil, false, workers[0].enf.eq)
				}
				// New ops appeared during the round (drains fired): repeat.
				finalizing = false
			}
		}
	}
}

// runStealing is the shard-aware work-stealing executor. The rank-ordered
// units are striped round-robin across per-worker deques; each worker pops
// its own front, steals from peers' backs when dry, and blocks on the
// condition variable otherwise. TTL-split straggler branches go onto the
// splitter's own deque front — local, immediately runnable, and stealable
// by an idle peer — instead of round-tripping through a coordinator. The
// run()-side goroutine only handles lifecycle: early termination and the
// finalize rounds once every unit has retired.
func (e *parEngine) runStealing() (con *eq.Conflict, goalHit bool, final *eq.Eq, stats Stats, err error) {
	p := e.opt.Workers
	if p < 1 {
		p = 1
	}
	e.log = cluster.NewLog()
	st := newStealState[unit](p)
	e.steal = st

	// Seed: stripe units across deques in global rank order, so every
	// worker's deque front holds its highest-priority share and the blended
	// execution order approximates the central queue's.
	idx := make([]int, len(e.units))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return e.ranks[idx[a]] < e.ranks[idx[b]] })
	st.pending.Store(int64(len(e.units)))
	for j, i := range idx {
		st.deques[j%p].PushBack(e.units[i])
	}

	events, assign, workers, wg := e.spawnWorkers(p, func(w *parWorker) {
		w.workPhase()
		w.events <- cevent{kind: evDone, worker: w.id}
		w.loop()
	})
	defer e.watchCancel()()
	finish := func(c *eq.Conflict, goal bool, fin *eq.Eq) (*eq.Conflict, bool, *eq.Eq, Stats, error) {
		return e.finishRun(events, assign, workers, wg, c, goal, fin, nil)
	}
	fail := func(err error) (*eq.Conflict, bool, *eq.Eq, Stats, error) {
		return e.finishRun(events, assign, workers, wg, nil, false, nil, err)
	}

	beginFinalize := func() int {
		base := e.log.Len()
		for i := range assign {
			assign[i] <- wmsg{kind: wmFinalize}
		}
		return base
	}
	phaseDone := 0
	finalizeReplies := 0
	finalizeBase := 0
	for {
		ev := <-events
		switch ev.kind {
		case evCanceled, evPanic:
			return fail(e.failure())
		case evConflict:
			return finish(workers[ev.worker].enf.conflict(), false, nil)
		case evGoal:
			return finish(nil, true, nil)
		case evDone:
			phaseDone++
			if phaseDone == p {
				// Every worker left the work phase — either every unit retired
				// (splits included: a split raises pending before its parent's
				// retirement can lower it) or the run was stopped and units
				// were abandoned. Only the former may proceed to finalize; the
				// latter must surface as the run's failure.
				if err := e.failure(); err != nil {
					return fail(err)
				}
				finalizeReplies = 0
				finalizeBase = beginFinalize()
			}
		case evFinalized:
			finalizeReplies++
			if finalizeReplies == p {
				if e.log.Len() == finalizeBase {
					return finish(nil, false, workers[0].enf.eq)
				}
				finalizeReplies = 0
				finalizeBase = beginFinalize()
			}
		}
	}
}

// workPhase consumes units until global quiescence or stop.
func (w *parWorker) workPhase() {
	for {
		u, ok := w.take()
		if !ok {
			return
		}
		w.runUnit(u)
		w.eng.steal.finishUnit()
	}
}

// take returns the next unit to run via the shared work-stealing state,
// charging steals to the worker's stats.
func (w *parWorker) take() (unit, bool) {
	return w.eng.steal.take(w.id, w.eng.stopped.Load, &w.enf.stats.UnitsStolen)
}

// parWorker is one worker P_i: an Eq replica, a pending index, and a cursor
// into the broadcast log.
type parWorker struct {
	id     int
	eng    *parEngine
	enf    *enforcer
	cursor int
	events chan<- cevent
	inbox  <-chan wmsg
}

func newParWorker(id int, eng *parEngine, events chan<- cevent, inbox <-chan wmsg) *parWorker {
	var base *eq.Eq
	if eng.baseEq != nil {
		base = eng.baseEq.Clone()
	}
	return &parWorker{id: id, eng: eng, enf: newEnforcer(base), events: events, inbox: inbox}
}

func (w *parWorker) loop() {
	for msg := range w.inbox {
		switch msg.kind {
		case wmStop:
			return
		case wmFinalize:
			if !w.finalize() {
				// Conflict or goal already reported; keep consuming until
				// stop arrives.
				continue
			}
			w.events <- cevent{kind: evFinalized, worker: w.id, cursor: w.cursor}
		case wmAssign:
			for _, u := range msg.units {
				if w.eng.stopped.Load() {
					break
				}
				w.runUnit(u)
			}
			if w.eng.stopped.Load() {
				continue
			}
			w.events <- cevent{kind: evDone, worker: w.id}
		}
	}
}

// catchUp applies the broadcast log tail and drains re-checks; it reports
// false when a conflict or the goal emerged (and emits the event).
func (w *parWorker) catchUp() bool {
	if w.eng.log.Len() <= w.cursor {
		return true
	}
	tail, cur := w.eng.log.ReadFrom(w.cursor)
	w.cursor = cur
	if !w.enf.applyRemote(tail) {
		w.events <- cevent{kind: evConflict, worker: w.id}
		return false
	}
	return w.checkGoal()
}

// broadcast publishes the local delta, if any.
func (w *parWorker) broadcast() {
	d := w.enf.eq.TakeDelta()
	if len(d) > 0 {
		w.eng.log.Append(d)
	}
}

func (w *parWorker) checkGoal() bool {
	if w.eng.goal != nil && w.eng.goal(w.enf.eq) {
		w.broadcast()
		w.events <- cevent{kind: evGoal, worker: w.id}
		return false
	}
	return true
}

// finalize applies the whole log and drains until locally stable,
// broadcasting anything new that fires.
func (w *parWorker) finalize() bool {
	for {
		before := w.cursor
		if !w.catchUp() {
			return false
		}
		w.broadcast()
		if w.cursor == before && w.eng.log.Len() <= w.cursor {
			return true
		}
	}
}

// runUnit executes one work unit: pivoted (optionally pipelined) matching
// with TTL splitting, enforcing every member GFD of the unit's pattern
// group at each match.
func (w *parWorker) runUnit(u unit) {
	w.enf.stats.UnitsRun++
	eng := w.eng
	grp := eng.groups[u.grp]
	if h := eng.opt.testHookUnitStart; h != nil {
		// The hook's GFD index is the group's representative member, so
		// existing per-GFD test hooks keep firing on meaningful indexes.
		h(grp.Members[0], u.pivot)
	}
	if !w.catchUp() {
		return
	}
	p := grp.Pattern
	pv := eng.pivotVar[u.grp]

	seed := u.seed
	if seed == nil {
		seed = match.NewAssignment(p.NumVars())
		seed[pv] = u.pivot
	}
	// No explicit d_Q-neighborhood restriction is needed: the match order
	// grows the pivot's component outward from the seeded pivot, so every
	// candidate is generated from an assigned neighbor's adjacency and the
	// search never leaves the neighborhood. The (shared, read-only)
	// simulation relation prunes candidates further without per-unit
	// allocation.
	var filter func(pattern.Var, graph.NodeID) bool
	if sim := eng.sims[u.grp]; sim != nil {
		filter = sim.Has
	}
	// The run's context rides into the enumeration so even one huge unit
	// stops within a bounded number of frame expansions after cancellation.
	s := match.NewSearch(p, eng.g, match.Options{Order: eng.orders[u.grp], Seed: seed, Filter: filter, Plan: eng.plans[u.grp], Ctx: eng.opt.Ctx})

	if eng.opt.Pipeline {
		w.runPipelined(u, s)
	} else {
		w.runPhased(u, s)
	}
}

// handleMatch offers h to every member GFD of pattern group grp — this is
// where shared enumeration fans out into per-rule conclusions — then drains
// once and performs the broadcast/catch-up cycle. The fixpoint is
// order-independent (Church–Rosser), so offering the members back-to-back
// instead of in separate per-GFD runs changes nothing about the answer.
// It reports false when the run must stop (conflict or goal).
func (w *parWorker) handleMatch(grp int, h match.Assignment) bool {
	members := w.eng.groups[grp].Members
	for _, mi := range members {
		if !w.enf.offer(w.eng.set.GFDs[mi], h) {
			w.events <- cevent{kind: evConflict, worker: w.id}
			return false
		}
	}
	if !w.enf.drain() {
		w.events <- cevent{kind: evConflict, worker: w.id}
		return false
	}
	w.enf.stats.MatchesReused += len(members) - 1
	w.broadcast()
	if !w.checkGoal() {
		return false
	}
	return w.catchUp()
}

// runPipelined streams matches from a producer goroutine into the checking
// loop (HomMatch ∥ CheckAttr of Fig. 3). The producer owns the search and
// performs TTL splitting; split seeds flow to the coordinator immediately.
//
// Units that yield only a couple of matches are handled inline: the
// producer goroutine is spawned lazily once the unit proves non-trivial, so
// pipelining's per-unit cost is only paid where overlapping generation and
// checking can actually help.
func (w *parWorker) runPipelined(u unit, s *match.Search) {
	const inlineBudget = 2
	start := time.Now()
	for i := 0; i < inlineBudget; i++ {
		if w.eng.stopped.Load() {
			return
		}
		h, ok := s.Next()
		if !ok {
			return
		}
		if !w.handleMatch(u.grp, h) {
			return
		}
	}

	matches := make(chan match.Assignment, 64)
	// prodStop releases a producer blocked on a send if the consumer loop
	// below exits abnormally (a panic unwinding through this frame): without
	// it the producer goroutine would block forever once the channel buffer
	// fills with no reader left. The normal path drains matches to the close,
	// so closing prodStop afterwards is a no-op.
	prodStop := make(chan struct{})
	defer close(prodStop)
	var stop atomic.Bool
	var split []match.Assignment
	go func() {
		defer close(matches)
		// The producer is its own goroutine, outside the worker's recover
		// guard: a panic inside the search (s.Next) must be recorded here or
		// it would crash the process.
		defer func() {
			if r := recover(); r != nil {
				w.eng.recordPanic(w.id, r)
			}
		}()
		for {
			if stop.Load() || w.eng.stopped.Load() {
				return
			}
			if w.eng.opt.Splitting && w.eng.opt.TTL > 0 && time.Since(start) > w.eng.opt.TTL {
				if seeds := s.Split(); len(seeds) > 0 {
					split = append(split, seeds...)
				}
				start = time.Now()
			}
			h, ok := s.Next()
			if !ok {
				return
			}
			select {
			case matches <- h:
			case <-prodStop:
				return
			}
		}
	}()
	ok := true
	for h := range matches {
		if ok {
			if !w.handleMatch(u.grp, h) {
				ok = false
				stop.Store(true)
				// Keep draining so the producer can exit.
			}
		}
	}
	w.emitSplits(u, split)
}

// runPhased is the np ablation: enumerate every match of the unit first,
// then check them one by one. TTL splitting still applies during the
// enumeration phase (the two optimizations are independent).
func (w *parWorker) runPhased(u unit, s *match.Search) {
	var all []match.Assignment
	var split []match.Assignment
	start := time.Now()
	for {
		if w.eng.stopped.Load() {
			return
		}
		if w.eng.opt.Splitting && w.eng.opt.TTL > 0 && time.Since(start) > w.eng.opt.TTL {
			if seeds := s.Split(); len(seeds) > 0 {
				split = append(split, seeds...)
			}
			start = time.Now()
		}
		h, ok := s.Next()
		if !ok {
			break
		}
		all = append(all, h)
	}
	for _, h := range all {
		if w.eng.stopped.Load() {
			return
		}
		if !w.handleMatch(u.grp, h) {
			return
		}
	}
	w.emitSplits(u, split)
}

func (w *parWorker) emitSplits(u unit, seeds []match.Assignment) {
	if len(seeds) == 0 || w.eng.stopped.Load() {
		return
	}
	units := make([]unit, len(seeds))
	for i, sd := range seeds {
		units[i] = unit{grp: u.grp, pivot: u.pivot, seed: sd}
	}
	w.enf.stats.UnitsSplit += len(units)
	if st := w.eng.steal; st != nil {
		// Work stealing: split branches stay on the splitter's own deque,
		// runnable immediately and stealable by idle peers — no coordinator
		// round-trip.
		st.addWork(w.id, units)
		return
	}
	w.events <- cevent{kind: evSplit, worker: w.id, splits: units}
}
