package core

import (
	"repro/internal/canon"
	"repro/internal/depgraph"
	"repro/internal/eq"
	"repro/internal/gfd"
	"repro/internal/match"
)

// ImpResult reports the outcome of an implication check Σ |= φ.
type ImpResult struct {
	Implied bool
	// Reason distinguishes how implication was established.
	Reason ImpReason
	Stats  Stats
	// Err is non-nil when a parallel run ended before reaching an answer:
	// ErrCanceled or the context's deadline error after ParOptions.Ctx
	// fired, or a *PanicError when a worker panicked. Implied and Reason
	// are meaningless then; Stats covers the work completed.
	Err error
}

// ImpReason says why Σ |= φ holds (or doesn't).
type ImpReason int

const (
	// NotImplied: the enforcement fixpoint neither conflicted nor deduced Y.
	NotImplied ImpReason = iota
	// ImpliedByDeduction: Y ⊆ Eq_H was deduced (Example 8's ϕ13 case).
	ImpliedByDeduction
	// ImpliedByConflict: Q, X and Σ are inconsistent together, so no match
	// of Q can satisfy X in any model of Σ (Example 8's ϕ14 case).
	ImpliedByConflict
	// ImpliedTrivially: Y is empty or already deducible from X alone, or X
	// itself is inconsistent.
	ImpliedTrivially
)

func (r ImpReason) String() string {
	switch r {
	case ImpliedByDeduction:
		return "consequent deduced"
	case ImpliedByConflict:
		return "antecedent inconsistent with Σ"
	case ImpliedTrivially:
		return "trivially implied"
	default:
		return "not implied"
	}
}

// SeqImp decides whether Σ |= φ (Section VI-B).
//
// By Corollary 4 it suffices to enforce GFDs of Σ on matches of their
// patterns in the canonical graph G^X_Q of φ, starting from Eq_X, and report
// implication iff the expansion Eq_H conflicts or deduces Y.
func SeqImp(set *gfd.Set, phi *gfd.GFD) *ImpResult {
	cp := canon.BuildPhi(phi)
	// X inconsistent on its own: no match ever satisfies X.
	if cp.EqX.Conflicted() != nil {
		return &ImpResult{Implied: true, Reason: ImpliedTrivially}
	}
	// Y already deducible from X (includes empty Y).
	if cp.YDeduced(cp.EqX) {
		return &ImpResult{Implied: true, Reason: ImpliedTrivially}
	}
	enf := newEnforcer(cp.EqX)

	check := func() (done bool, res *ImpResult) {
		if enf.conflict() != nil {
			return true, &ImpResult{Implied: true, Reason: ImpliedByConflict, Stats: enf.stats}
		}
		if cp.YDeduced(enf.eq) {
			return true, &ImpResult{Implied: true, Reason: ImpliedByDeduction, Stats: enf.stats}
		}
		return false, nil
	}

	order := orderForImplication(set, cp)
	for _, gi := range order {
		psi := set.GFDs[gi]
		s := match.NewSearch(psi.Pattern, cp.Graph, match.Options{})
		for {
			h, ok := s.Next()
			if !ok {
				break
			}
			// offer/drain only fail on conflict; YDeduced is polled after.
			if !enf.offer(psi, h) || !enf.drain() {
				return &ImpResult{Implied: true, Reason: ImpliedByConflict, Stats: enf.stats}
			}
			if done, res := check(); done {
				return res
			}
		}
	}
	if !enf.drain() {
		return &ImpResult{Implied: true, Reason: ImpliedByConflict, Stats: enf.stats}
	}
	if done, res := check(); done {
		return res
	}
	return &ImpResult{Implied: false, Reason: NotImplied, Stats: enf.stats}
}

// orderForImplication orders Σ like OrderGFDs but gives the highest priority
// to GFDs whose antecedent is subsumed by Eq_X — they fire immediately on
// G^X_Q (Section VI-C(a)). GFDs with empty antecedents qualify trivially.
func orderForImplication(set *gfd.Set, cp *canon.Phi) []int {
	base := depgraph.OrderGFDs(set)
	subsumed := make(map[int]bool)
	for i, psi := range set.GFDs {
		if xSubsumedByEqX(psi, cp.EqX) {
			subsumed[i] = true
		}
	}
	var front, back []int
	for _, i := range base {
		if subsumed[i] {
			front = append(front, i)
		} else {
			back = append(back, i)
		}
	}
	return append(front, back...)
}

// xSubsumedByEqX approximates "X subsumes X_ψ": every antecedent literal of
// ψ is deducible from Eq_X under some assignment — tested attribute-wise
// (a constant literal needs some Eq_X class with that constant on the same
// attribute; a variable literal needs a class containing both attributes or
// an empty requirement). This is a priority heuristic only; correctness does
// not depend on it.
func xSubsumedByEqX(psi *gfd.GFD, ex *eq.Eq) bool {
	if len(psi.X) == 0 {
		return true
	}
	terms := ex.AllTerms()
	for _, l := range psi.X {
		ok := false
		switch l.Kind {
		case gfd.ConstLiteral:
			for _, t := range terms {
				if t.Attr != l.A {
					continue
				}
				if c, has := ex.Const(t); has && c == l.Const {
					ok = true
					break
				}
			}
		case gfd.VarLiteral:
			for _, t := range terms {
				if t.Attr != l.A {
					continue
				}
				for _, u := range ex.Members(t) {
					if u.Attr == l.B && !(u == t) {
						ok = true
						break
					}
				}
				if ok {
					break
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
