// Shared multi-GFD evaluation. Rule sets are redundant: many GFDs carry
// one pattern (same Q, different X → Y literals) or patterns overlapping on
// a match-order prefix. The validation entry points route through
// gfd.Set.Groups — GFDs bucketed by pattern fingerprint with a structural
// equality guard — so each distinct pattern structure is enumerated once
// and only the literal checks fan out per member, through the compiled
// attr-key-interned evaluator (match.LiteralEval) instead of the per-call
// attribute walk.
package core

import (
	"context"

	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
)

// VerifyOptions configures ViolationsOpts.
type VerifyOptions struct {
	// PerGFD disables shared multi-GFD evaluation and checks every GFD
	// independently: the ablation baseline for the multi_gfd_speedup
	// benchmark and the grouped-equivalence tests. Results are identical
	// either way; only the work layout changes.
	PerGFD bool
	// Plans, when non-nil, resolves each group's pattern through the
	// compiled-plan cache, sharing planning work across calls on the same
	// snapshot epoch.
	Plans *match.PlanCache
}

// VerifyStats reports how much enumeration work the grouped evaluation
// shared (all zero when PerGFD is set).
type VerifyStats struct {
	// Groups is the number of structurally distinct patterns in Σ.
	Groups int
	// SharedGFDs counts GFDs that rode along in a multi-member group —
	// their patterns were never enumerated separately.
	SharedGFDs int
	// MatchesReused counts match deliveries beyond the first per enumerated
	// match: for a match shared by an m-member group, m−1 re-enumerations
	// that never happened.
	MatchesReused int
	// PrefixFamilies counts sets of distinct patterns that additionally
	// shared a common search prefix (see match.EnumerateGrouped).
	PrefixFamilies int
}

// grouping buckets Σ by pattern structure — or into per-GFD singletons
// under a PerGFD ablation flag.
func grouping(set *gfd.Set, perGFD bool) []gfd.Group {
	if perGFD {
		gs := make([]gfd.Group, set.Len())
		for i, phi := range set.GFDs {
			gs[i] = gfd.Group{Pattern: phi.Pattern, Members: []int{i}}
		}
		return gs
	}
	return set.Groups()
}

// literalSpecs translates gfd literals into the match-level form the
// compiled evaluator consumes.
func literalSpecs(ls []gfd.Literal) []match.LiteralSpec {
	if len(ls) == 0 {
		return nil
	}
	out := make([]match.LiteralSpec, len(ls))
	for i, l := range ls {
		if l.Kind == gfd.ConstLiteral {
			out[i] = match.LiteralSpec{IsConst: true, V1: l.X, A1: l.A, Const: l.Const}
		} else {
			out[i] = match.LiteralSpec{V1: l.X, A1: l.A, V2: l.Y, A2: l.B}
		}
	}
	return out
}

// compileGroupLiterals builds (or fetches off the plan) the group's literal
// program: one slot per distinct (variable, attribute) pair across all
// members.
func compileGroupLiterals(set *gfd.Set, grp gfd.Group, pl *match.Plan) *match.LiteralEval {
	build := func() *match.LiteralEval {
		members := make([]match.MemberLiterals, len(grp.Members))
		for i, mi := range grp.Members {
			phi := set.GFDs[mi]
			members[i] = match.MemberLiterals{X: literalSpecs(phi.X), Y: literalSpecs(phi.Y)}
		}
		return match.CompileLiterals(members)
	}
	if pl == nil {
		return build()
	}
	// The first member is a stable identity for the group's literal content:
	// Σ is immutable while in use, so (plan, first GFD) → same program.
	return pl.Literals(set.GFDs[grp.Members[0]], build)
}

// ViolationsOpts is ViolationsCtx with explicit evaluation options and
// sharing statistics. The violation list is identical to the per-GFD
// evaluation, violation for violation, in Σ-then-enumeration order.
func ViolationsOpts(ctx context.Context, g graph.Reader, set *gfd.Set, opt VerifyOptions) ([]Violation, VerifyStats, error) {
	if opt.PerGFD {
		out, err := violationsPerGFD(ctx, g, set, opt.Plans)
		return out, VerifyStats{}, err
	}
	groups := set.Groups()
	st := VerifyStats{Groups: len(groups)}

	pgs := make([]match.PatternGroup, len(groups))
	progs := make([]*match.LiteralEval, len(groups))
	scratch := make([]*match.LiteralScratch, len(groups))
	for gi, grp := range groups {
		var pl *match.Plan
		if opt.Plans != nil {
			pl = opt.Plans.Get(grp.Pattern, g)
		}
		pgs[gi] = match.PatternGroup{Pattern: grp.Pattern, Plan: pl}
		progs[gi] = compileGroupLiterals(set, grp, pl)
		scratch[gi] = progs[gi].NewScratch()
		if len(grp.Members) > 1 {
			st.SharedGFDs += len(grp.Members)
		}
	}

	perGFD := make([][]Violation, set.Len())
	enumSt, err := match.EnumerateGrouped(ctx, g, pgs, func(gi int, h match.Assignment) bool {
		grp := groups[gi]
		prog, scr := progs[gi], scratch[gi]
		scr.Begin()
		for i, mi := range grp.Members {
			if prog.Violates(i, g, h, scr) {
				perGFD[mi] = append(perGFD[mi], Violation{GFD: set.GFDs[mi], Match: h})
			}
		}
		st.MatchesReused += len(grp.Members) - 1
		return true
	})
	st.PrefixFamilies = enumSt.Families

	// Assemble in Σ order; within a GFD the grouped enumeration already
	// delivered matches in the standalone enumeration order.
	var out []Violation
	for i := range perGFD {
		out = append(out, perGFD[i]...)
	}
	if err != nil {
		return out, st, canceledErr(err)
	}
	return out, st, nil
}

// violationsPerGFD is the ungrouped ablation: every GFD enumerated and
// checked independently (the pre-sharing code path).
func violationsPerGFD(ctx context.Context, g graph.Reader, set *gfd.Set, plans *match.PlanCache) ([]Violation, error) {
	var out []Violation
	for _, phi := range set.GFDs {
		if err := ctx.Err(); err != nil {
			return out, canceledErr(err)
		}
		var pl *match.Plan
		if plans != nil {
			pl = plans.Get(phi.Pattern, g)
		}
		s := match.NewSearch(phi.Pattern, g, match.Options{Plan: pl, Ctx: ctx})
		for {
			h, ok := s.Next()
			if !ok {
				if err := s.Err(); err != nil {
					return out, canceledErr(err)
				}
				break
			}
			if holdsLiterals(g, h, phi.X) && !holdsLiterals(g, h, phi.Y) {
				out = append(out, Violation{GFD: phi, Match: h})
			}
		}
	}
	return out, nil
}
