package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gfd"
	"repro/internal/pattern"
)

// variantOptions enumerates the paper's algorithm variants: full ParSat/
// ParImp, the np (no pipelining) and nb (no splitting) ablations, plus the
// no-dependency-order ablation, across worker counts — each under both the
// central-queue and the work-stealing executor.
func variantOptions(workers int) map[string]ParOptions {
	mk := func(pipeline, split, dep bool) ParOptions {
		return ParOptions{
			Workers:    workers,
			TTL:        5 * time.Millisecond,
			Pipeline:   pipeline,
			Splitting:  split,
			DepOrder:   dep,
			Simulation: true,
		}
	}
	out := map[string]ParOptions{
		"full":    mk(true, true, true),
		"np":      mk(false, true, true),
		"nb":      mk(true, false, true),
		"noorder": mk(true, true, false),
	}
	// Snapshot the base names first: inserting while ranging over the map
	// may (per spec) produce or skip the new entries.
	for _, name := range []string{"full", "np", "nb", "noorder"} {
		opt := out[name]
		opt.Stealing = true
		out["steal-"+name] = opt
	}
	return out
}

func TestParSatAgreesOnPaperExamples(t *testing.T) {
	phi5 := gfd.MustNew("phi5", q5(), nil, []gfd.Literal{gfd.Const(0, "A", "0")})
	phi6 := gfd.MustNew("phi6", q5(), nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	phi7 := gfd.MustNew("phi7", q6(), nil, []gfd.Literal{gfd.Const(0, "A", "0"), gfd.Const(1, "B", "1")})
	phi8 := gfd.MustNew("phi8", q7(), []gfd.Literal{gfd.Const(1, "B", "1")}, []gfd.Literal{gfd.Const(0, "A", "1")})
	phi9 := gfd.MustNew("phi9", q6(), []gfd.Literal{gfd.Const(1, "B", "1")}, []gfd.Literal{gfd.Const(3, "C", "1")})
	phi10 := gfd.MustNew("phi10", q7(), []gfd.Literal{gfd.Const(3, "C", "1")}, []gfd.Literal{gfd.Const(0, "A", "1")})

	sets := map[string]*gfd.Set{
		"ex2-same-pattern":  gfd.NewSet(phi5, phi6),
		"ex2-distinct":      gfd.NewSet(phi7, phi8),
		"ex4-chain":         gfd.NewSet(phi7, phi9, phi10),
		"sat-single":        gfd.NewSet(phi7),
		"sat-chain-no-seed": gfd.NewSet(phi9, phi10),
	}
	for name, set := range sets {
		want := SeqSat(set).Satisfiable
		for p := 1; p <= 4; p += 3 {
			for vname, opt := range variantOptions(p) {
				got := ParSat(set, opt)
				if got.Satisfiable != want {
					t.Errorf("%s/%s/p=%d: ParSat=%v, SeqSat=%v", name, vname, p, got.Satisfiable, want)
				}
				if got.Satisfiable && got.Model != nil && !IsModel(got.Model, set) {
					t.Errorf("%s/%s/p=%d: ParSat witness is not a model", name, vname, p)
				}
			}
		}
	}
}

func TestParImpAgreesOnPaperExamples(t *testing.T) {
	sigma := impExample8Sigma()
	phi13 := gfd.MustNew("phi13", q7(), []gfd.Literal{gfd.Const(2, "B", "2")}, []gfd.Literal{gfd.Const(2, "C", "2")})
	phi14 := gfd.MustNew("phi14", q7(), []gfd.Literal{gfd.Const(0, "A", "0")}, []gfd.Literal{gfd.Const(2, "C", "2")})
	notImp := gfd.MustNew("ni", q8(), nil, []gfd.Literal{gfd.Const(0, "A", "2")})

	cases := []struct {
		name string
		phi  *gfd.GFD
	}{
		{"phi13-deduction", phi13},
		{"phi14-conflict", phi14},
		{"not-implied", notImp},
	}
	for _, c := range cases {
		want := SeqImp(sigma, c.phi).Implied
		for p := 1; p <= 4; p += 3 {
			for vname, opt := range variantOptions(p) {
				got := ParImp(sigma, c.phi, opt)
				if got.Implied != want {
					t.Errorf("%s/%s/p=%d: ParImp=%v, SeqImp=%v", c.name, vname, p, got.Implied, want)
				}
			}
		}
	}
}

// randomSet builds a random GFD set over a small label/attribute universe,
// biased to produce both satisfiable and unsatisfiable instances.
func randomSet(rng *rand.Rand, n int) *gfd.Set {
	labels := []string{"a", "b", "c"}
	attrs := []string{"A", "B"}
	consts := []string{"0", "1"}
	set := gfd.NewSet()
	for i := 0; i < n; i++ {
		p := pattern.New()
		nv := 1 + rng.Intn(3)
		for v := 0; v < nv; v++ {
			p.AddVar(fmt.Sprintf("x%d", v), labels[rng.Intn(len(labels))])
		}
		for e := 0; e < nv; e++ {
			from := pattern.Var(rng.Intn(nv))
			to := pattern.Var(rng.Intn(nv))
			p.AddEdge(from, to, "e")
		}
		mkLit := func() gfd.Literal {
			x := pattern.Var(rng.Intn(nv))
			if rng.Intn(3) == 0 && nv > 1 {
				y := pattern.Var(rng.Intn(nv))
				return gfd.Vars(x, attrs[rng.Intn(2)], y, attrs[rng.Intn(2)])
			}
			return gfd.Const(x, attrs[rng.Intn(2)], consts[rng.Intn(2)])
		}
		var xs, ys []gfd.Literal
		for j := 0; j < rng.Intn(2); j++ {
			xs = append(xs, mkLit())
		}
		for j := 0; j < 1+rng.Intn(2); j++ {
			ys = append(ys, mkLit())
		}
		set.Add(gfd.MustNew(fmt.Sprintf("g%d", i), p, xs, ys))
	}
	return set
}

func TestParSatAgreesOnRandomSets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	satSeen, unsatSeen := 0, 0
	for trial := 0; trial < 40; trial++ {
		set := randomSet(rng, 2+rng.Intn(4))
		want := SeqSat(set)
		if want.Satisfiable {
			satSeen++
			if want.Model == nil || !IsModel(want.Model, set) {
				t.Fatalf("trial %d: SeqSat model invalid", trial)
			}
		} else {
			unsatSeen++
		}
		for _, stealing := range []bool{true, false} {
			opt := DefaultParOptions(3)
			opt.TTL = 2 * time.Millisecond
			opt.Stealing = stealing
			got := ParSat(set, opt)
			if got.Satisfiable != want.Satisfiable {
				t.Errorf("trial %d (stealing=%v): ParSat=%v SeqSat=%v\n%s", trial, stealing, got.Satisfiable, want.Satisfiable, set)
			}
		}
	}
	if satSeen == 0 || unsatSeen == 0 {
		t.Fatalf("random generator degenerate: sat=%d unsat=%d", satSeen, unsatSeen)
	}
}

func TestParImpAgreesOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	impSeen, notSeen := 0, 0
	for trial := 0; trial < 40; trial++ {
		set := randomSet(rng, 1+rng.Intn(3))
		phiSet := randomSet(rng, 1)
		phi := phiSet.GFDs[0]
		want := SeqImp(set, phi)
		if want.Implied {
			impSeen++
		} else {
			notSeen++
		}
		for _, stealing := range []bool{true, false} {
			opt := DefaultParOptions(3)
			opt.TTL = 2 * time.Millisecond
			opt.Stealing = stealing
			got := ParImp(set, phi, opt)
			if got.Implied != want.Implied {
				t.Errorf("trial %d (stealing=%v): ParImp=%v SeqImp=%v\nΣ:\n%sφ: %s", trial, stealing, got.Implied, want.Implied, set, phi)
			}
		}
	}
	if impSeen == 0 || notSeen == 0 {
		t.Fatalf("random generator degenerate: implied=%d not=%d", impSeen, notSeen)
	}
}

// TestParSatManyWorkersSmallWork exercises the degenerate case of more
// workers than units.
func TestParSatManyWorkersSmallWork(t *testing.T) {
	phi := gfd.MustNew("phi", q8(), nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	set := gfd.NewSet(phi)
	opt := DefaultParOptions(16)
	res := ParSat(set, opt)
	if !res.Satisfiable {
		t.Fatal("single satisfiable GFD reported unsat with 16 workers")
	}
}

// TestParSatZeroWorkersClamped: Workers<1 is clamped to 1.
func TestParSatZeroWorkersClamped(t *testing.T) {
	phi := gfd.MustNew("phi", q8(), nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	opt := DefaultParOptions(0)
	if !ParSat(gfd.NewSet(phi), opt).Satisfiable {
		t.Fatal("clamped worker count broke ParSat")
	}
}

// TestSplittingProducesSubUnits forces tiny TTL on a workload with a large
// fan-out pattern so unit splitting actually triggers, then checks the
// answer is still right.
func TestSplittingProducesSubUnits(t *testing.T) {
	// Pattern: hub(a) -p-> s1..s3 (all wildcard), over a set with several
	// wide patterns; matching fans out combinatorially.
	mkWide := func(name string, val string) *gfd.GFD {
		p := pattern.New()
		h := p.AddVar("h", "a")
		for i := 0; i < 3; i++ {
			s := p.AddVar(fmt.Sprintf("s%d", i), "b")
			p.AddEdge(h, s, "p")
		}
		return gfd.MustNew(name, p, nil, []gfd.Literal{gfd.Const(h, "A", val)})
	}
	set := gfd.NewSet()
	for i := 0; i < 6; i++ {
		set.Add(mkWide(fmt.Sprintf("w%d", i), "1"))
	}
	opt := DefaultParOptions(4)
	opt.TTL = 1 * time.Nanosecond // split at every opportunity
	res := ParSat(set, opt)
	if !res.Satisfiable {
		t.Fatal("wide satisfiable set reported unsat under aggressive splitting")
	}
	if res.Stats.UnitsSplit == 0 {
		t.Error("TTL=1ns produced no splits; splitting path untested")
	}
	// And an unsatisfiable variant still conflicts.
	set.Add(mkWide("conflict", "2"))
	res = ParSat(set, opt)
	if res.Satisfiable {
		t.Fatal("conflicting wide set reported satisfiable under splitting")
	}
}

// TestStragglerSplitBranchesRequeued is the TTL straggler-splitting
// contract, checked on both executors: with a tiny TTL every unit splits,
// the carved-off branches must be re-enqueued and run (a quiescent run
// executes the original units plus every split branch, so UnitsRun exceeds
// UnitsSplit), and the verdict must equal SeqSat's with a witness that is
// still a model.
func TestStragglerSplitBranchesRequeued(t *testing.T) {
	mkWide := func(name string, val string) *gfd.GFD {
		p := pattern.New()
		h := p.AddVar("h", "a")
		for i := 0; i < 3; i++ {
			s := p.AddVar(fmt.Sprintf("s%d", i), "b")
			p.AddEdge(h, s, "p")
		}
		return gfd.MustNew(name, p, nil, []gfd.Literal{gfd.Const(h, "A", val)})
	}
	set := gfd.NewSet()
	for i := 0; i < 6; i++ {
		set.Add(mkWide(fmt.Sprintf("w%d", i), "1"))
	}
	want := SeqSat(set)
	for _, stealing := range []bool{true, false} {
		name := map[bool]string{true: "stealing", false: "central"}[stealing]
		for _, workers := range []int{1, 4} {
			opt := DefaultParOptions(workers)
			opt.Stealing = stealing
			opt.TTL = 1 * time.Nanosecond // force a split at every check
			res := ParSat(set, opt)
			ctx := fmt.Sprintf("%s/p=%d", name, workers)
			if res.Satisfiable != want.Satisfiable {
				t.Fatalf("%s: ParSat=%v, SeqSat=%v", ctx, res.Satisfiable, want.Satisfiable)
			}
			if res.Model == nil || !IsModel(res.Model, set) {
				t.Fatalf("%s: witness under aggressive splitting is not a model", ctx)
			}
			if res.Stats.UnitsSplit == 0 {
				t.Fatalf("%s: TTL=1ns produced no splits; the splitting path went untested", ctx)
			}
			// Quiescence means every re-enqueued branch ran: total executions
			// are the original units plus each split branch exactly once.
			if res.Stats.UnitsRun <= res.Stats.UnitsSplit {
				t.Fatalf("%s: UnitsRun=%d not above UnitsSplit=%d; split branches were dropped",
					ctx, res.Stats.UnitsRun, res.Stats.UnitsSplit)
			}
		}
	}
}

// TestStealingMatchesCentralStats sanity-checks the stealing executor's
// bookkeeping on a quiescent run: both executors enforce the same matches
// (Church–Rosser: identical converged relation), and the stealing run's
// per-unit accounting is self-consistent.
func TestStealingMatchesCentralStats(t *testing.T) {
	phi5 := gfd.MustNew("phi5", q5(), nil, []gfd.Literal{gfd.Const(0, "A", "0")})
	phi7 := gfd.MustNew("phi7", q6(), nil, []gfd.Literal{gfd.Const(0, "A", "0"), gfd.Const(1, "B", "1")})
	set := gfd.NewSet(phi5, phi7)
	central := DefaultParOptions(4)
	central.Stealing = false
	stealing := DefaultParOptions(4)
	rc := ParSat(set, central)
	rs := ParSat(set, stealing)
	if rc.Satisfiable != rs.Satisfiable {
		t.Fatalf("executors disagree: central=%v stealing=%v", rc.Satisfiable, rs.Satisfiable)
	}
	if rc.Stats.Enforcements != rs.Stats.Enforcements {
		t.Fatalf("enforcement counts diverge on a quiescent run: central=%d stealing=%d",
			rc.Stats.Enforcements, rs.Stats.Enforcements)
	}
	if rs.Stats.UnitsStolen < 0 || rs.Stats.UnitsStolen > rs.Stats.UnitsRun {
		t.Fatalf("stolen units %d out of range (run %d)", rs.Stats.UnitsStolen, rs.Stats.UnitsRun)
	}
	if rc.Stats.UnitsStolen != 0 {
		t.Fatalf("central executor reported %d stolen units", rc.Stats.UnitsStolen)
	}
}
