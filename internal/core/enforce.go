// Package core implements the paper's primary contribution: sequential and
// parallel algorithms for the satisfiability (SeqSat/ParSat, Sections IV–V)
// and implication (SeqImp/ParImp, Section VI) analyses of graph functional
// dependencies.
package core

import (
	"repro/internal/eq"
	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
)

// Stats counts the work performed by a reasoning run; the benchmark harness
// reports these alongside wall-clock times.
type Stats struct {
	Matches      int // matches enumerated
	Enforcements int // matches whose antecedent held and consequent was enforced
	Rechecks     int // pending matches re-examined after Eq changes
	Pending      int // matches parked in the inverted index
	Dropped      int // matches whose antecedent became permanently false
	UnitsRun     int // work units executed (parallel runs)
	UnitsSplit   int // sub-units produced by straggler splitting
	UnitsStolen  int // units taken from another worker's deque (stealing runs)
	Broadcasts   int // delta broadcasts between workers
	DeltaOps     int // total Eq operations shipped in broadcasts
	// GroupsShared counts pattern groups with ≥2 member GFDs: patterns that
	// were enumerated once on behalf of several rules (shared multi-GFD
	// evaluation; 0 under ParOptions.PerGFD).
	GroupsShared int
	// MatchesReused counts match deliveries beyond the first per enumerated
	// match: each enumerated match of an m-member group enforces m rules,
	// m−1 of which would have required their own enumeration per-GFD.
	MatchesReused int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Matches += other.Matches
	s.Enforcements += other.Enforcements
	s.Rechecks += other.Rechecks
	s.Pending += other.Pending
	s.Dropped += other.Dropped
	s.UnitsRun += other.UnitsRun
	s.UnitsSplit += other.UnitsSplit
	s.UnitsStolen += other.UnitsStolen
	s.Broadcasts += other.Broadcasts
	s.DeltaOps += other.DeltaOps
	s.GroupsShared += other.GroupsShared
	s.MatchesReused += other.MatchesReused
}

// xState classifies a match's antecedent under the current Eq.
type xState int

const (
	xHolds      xState = iota // every literal deduced
	xBlocked                  // not deduced yet, but Eq growth may deduce it
	xImpossible               // a constant literal contradicts a fixed constant
)

// pendingMatch is a match whose antecedent was blocked when first seen; it
// sits in the inverted index until a relevant Eq class changes (Section
// IV-C(b)).
type pendingMatch struct {
	phi  *gfd.GFD
	h    match.Assignment
	done bool
}

// enforcer owns one replica of the reasoning state: the equivalence
// relation Eq plus the inverted pending index. The sequential algorithms use
// a single enforcer; each parallel worker owns one and exchanges eq.Deltas.
type enforcer struct {
	eq      *eq.Eq
	pending map[eq.Term][]*pendingMatch
	stats   Stats
	// recheckQueue holds terms whose classes changed and whose pending
	// matches have not been revisited yet.
	recheckQueue []eq.Term
}

func newEnforcer(base *eq.Eq) *enforcer {
	if base == nil {
		base = eq.New()
	}
	return &enforcer{eq: base, pending: make(map[eq.Term][]*pendingMatch)}
}

// termOf converts a literal side to an Eq term under match h.
func termOf(h match.Assignment, x gfd.Literal) (eq.Term, eq.Term) {
	t := eq.Term{Node: h[x.X], Attr: x.A}
	if x.Kind == gfd.VarLiteral {
		return t, eq.Term{Node: h[x.Y], Attr: x.B}
	}
	return t, eq.Term{}
}

// checkX classifies h |= X under the deduced-satisfaction semantics: a
// constant literal holds iff its class carries exactly that constant; a
// variable literal holds iff the two classes are merged. A constant literal
// whose class carries a different constant can never hold (constants are
// permanent), so the match is dropped.
func (e *enforcer) checkX(phi *gfd.GFD, h match.Assignment) xState {
	state := xHolds
	for _, l := range phi.X {
		switch l.Kind {
		case gfd.ConstLiteral:
			t, _ := termOf(h, l)
			c, ok := e.eq.Const(t)
			switch {
			case !ok:
				state = maxState(state, xBlocked)
			case c != l.Const:
				return xImpossible
			}
		case gfd.VarLiteral:
			t, u := termOf(h, l)
			if !e.eq.Same(t, u) {
				// Two classes carrying the same constant are forced equal in
				// every population even without a merge; distinct constants
				// can never become equal.
				ct, okT := e.eq.Const(t)
				cu, okU := e.eq.Const(u)
				switch {
				case okT && okU && ct != cu:
					return xImpossible
				case okT && okU: // equal constants: literal holds
				default:
					state = maxState(state, xBlocked)
				}
			}
		}
	}
	return state
}

func maxState(a, b xState) xState {
	if b > a {
		return b
	}
	return a
}

// enforceY applies Rules 1 and 2 for every consequent literal at h,
// queueing changed terms for pending re-checks. It returns false as soon as
// Eq conflicts.
func (e *enforcer) enforceY(phi *gfd.GFD, h match.Assignment) bool {
	e.stats.Enforcements++
	for _, l := range phi.Y {
		var changed []eq.Term
		switch l.Kind {
		case gfd.ConstLiteral:
			t, _ := termOf(h, l)
			changed = e.eq.AssignConst(t, l.Const)
		case gfd.VarLiteral:
			t, u := termOf(h, l)
			changed = e.eq.Merge(t, u)
		}
		e.recheckQueue = append(e.recheckQueue, changed...)
		if e.eq.Conflicted() != nil {
			return false
		}
	}
	return true
}

// offer processes a freshly enumerated match: fire it, park it, or drop it.
// It returns false on conflict.
func (e *enforcer) offer(phi *gfd.GFD, h match.Assignment) bool {
	e.stats.Matches++
	switch e.checkX(phi, h) {
	case xHolds:
		return e.enforceY(phi, h)
	case xImpossible:
		e.stats.Dropped++
		return true
	default:
		e.park(phi, h)
		return true
	}
}

// park registers a blocked match in the inverted index under every term its
// antecedent mentions, so any relevant class change triggers a re-check.
func (e *enforcer) park(phi *gfd.GFD, h match.Assignment) {
	pm := &pendingMatch{phi: phi, h: h}
	e.stats.Pending++
	for _, l := range phi.X {
		t, u := termOf(h, l)
		e.pending[t] = append(e.pending[t], pm)
		if l.Kind == gfd.VarLiteral {
			e.pending[u] = append(e.pending[u], pm)
		}
	}
}

// drain re-checks pending matches for every queued changed term until the
// queue empties or a conflict arises. Firing a pending match can change more
// classes, which re-queues more terms — the inflationary fixpoint loop.
// It returns false on conflict.
func (e *enforcer) drain() bool {
	for len(e.recheckQueue) > 0 {
		t := e.recheckQueue[0]
		e.recheckQueue = e.recheckQueue[1:]
		list := e.pending[t]
		if len(list) == 0 {
			continue
		}
		keep := list[:0]
		for _, pm := range list {
			if pm.done {
				continue
			}
			e.stats.Rechecks++
			switch e.checkX(pm.phi, pm.h) {
			case xHolds:
				pm.done = true
				if !e.enforceY(pm.phi, pm.h) {
					return false
				}
			case xImpossible:
				pm.done = true
				e.stats.Dropped++
			default:
				keep = append(keep, pm)
			}
		}
		e.pending[t] = keep
	}
	return true
}

// applyRemote replays a delta from another worker and drains the pending
// re-checks it triggers. It returns false on conflict.
func (e *enforcer) applyRemote(d eq.Delta) bool {
	changed := e.eq.Apply(d)
	e.recheckQueue = append(e.recheckQueue, changed...)
	if e.eq.Conflicted() != nil {
		return false
	}
	return e.drain()
}

// conflict returns the recorded conflict, if any.
func (e *enforcer) conflict() *eq.Conflict { return e.eq.Conflicted() }

// CompleteModel materializes a model from a canonical graph and a
// conflict-free Eq (Theorem 1's construction): every class with a constant
// assigns it to all member terms; every class without one receives a fresh
// constant distinct from all others — and from the reserved constants of Σ —
// so no extra equalities or antecedents are accidentally triggered.
func CompleteModel(g *graph.Graph, e *eq.Eq, reserved []string) *graph.Graph {
	m := g.Clone()
	fresh := 0
	assigned := make(map[eq.Term]bool)
	seen := make(map[string]bool)
	for _, c := range e.AllConsts() {
		seen[c] = true
	}
	for _, c := range reserved {
		seen[c] = true
	}
	for _, t := range e.AllTerms() {
		if assigned[t] {
			continue
		}
		mem := e.Members(t)
		c, ok := e.Const(t)
		if !ok {
			// Bounded by construction: seen is finite, fresh only grows.
			for seen[freshConst(fresh)] {
				fresh++
			}
			c = freshConst(fresh)
			fresh++
		}
		seen[c] = true
		for _, u := range mem {
			assigned[u] = true
			m.SetAttr(u.Node, u.Attr, c)
		}
	}
	return m
}

func freshConst(i int) string {
	return "⊤" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
