// Package rdfchase implements the comparison baseline ParImpRDF of the
// paper's experiments (Section VII): a chase-based sequential implication
// checker in the style of Hellings et al. [5], which studied implication of
// functional and constant constraints over RDF via the chase.
//
// Like SeqImp, the baseline works on the canonical graph G^X_Q (triple
// patterns of [5] generalize to our patterns-as-graphs). Unlike SeqImp it is
// a *naive* chase:
//
//   - no dependency-graph ordering of rules — GFDs are applied in given
//     order, round-robin;
//   - no inverted pending index — every chase round re-enumerates every
//     match of every pattern from scratch and re-evaluates antecedents;
//   - termination is only checked between rounds (no early exit inside a
//     round).
//
// These are exactly the differences the paper credits for SeqImp's ~1.4–1.5×
// advantage, so the baseline preserves the comparison's shape.
package rdfchase

import (
	"repro/internal/canon"
	"repro/internal/eq"
	"repro/internal/gfd"
	"repro/internal/match"
)

// Stats counts the chase's work for the harness.
type Stats struct {
	Rounds       int
	Matches      int
	Enforcements int
}

// Result is the outcome of an implication check.
type Result struct {
	Implied bool
	Stats   Stats
}

// Implies decides Σ |= φ by chasing G^X_Q to a fixpoint.
func Implies(set *gfd.Set, phi *gfd.GFD) *Result {
	cp := canon.BuildPhi(phi)
	e := cp.EqX
	st := Stats{}
	if e.Conflicted() != nil || cp.YDeduced(e) {
		return &Result{Implied: true, Stats: st}
	}
	for {
		st.Rounds++
		changed := false
		for _, psi := range set.GFDs {
			s := match.NewSearch(psi.Pattern, cp.Graph, match.Options{})
			for {
				h, ok := s.Next()
				if !ok {
					break
				}
				st.Matches++
				if !xHolds(e, psi, h) {
					continue
				}
				if enforce(e, psi, h) {
					st.Enforcements++
					changed = true
				}
			}
		}
		if e.Conflicted() != nil || cp.YDeduced(e) {
			return &Result{Implied: true, Stats: st}
		}
		if !changed {
			return &Result{Implied: false, Stats: st}
		}
	}
}

// xHolds evaluates the antecedent under the deduced semantics (shared with
// the main algorithms; duplicated here so the baseline stays self-contained
// and unoptimized).
func xHolds(e *eq.Eq, psi *gfd.GFD, h match.Assignment) bool {
	for _, l := range psi.X {
		t := eq.Term{Node: h[l.X], Attr: l.A}
		switch l.Kind {
		case gfd.ConstLiteral:
			c, ok := e.Const(t)
			if !ok || c != l.Const {
				return false
			}
		case gfd.VarLiteral:
			u := eq.Term{Node: h[l.Y], Attr: l.B}
			if e.Same(t, u) {
				continue
			}
			ct, okT := e.Const(t)
			cu, okU := e.Const(u)
			if !(okT && okU && ct == cu) {
				return false
			}
		}
	}
	return true
}

// enforce applies the consequent and reports whether Eq changed.
func enforce(e *eq.Eq, psi *gfd.GFD, h match.Assignment) bool {
	changed := false
	for _, l := range psi.Y {
		t := eq.Term{Node: h[l.X], Attr: l.A}
		switch l.Kind {
		case gfd.ConstLiteral:
			if len(e.AssignConst(t, l.Const)) > 0 {
				changed = true
			}
		case gfd.VarLiteral:
			u := eq.Term{Node: h[l.Y], Attr: l.B}
			if len(e.Merge(t, u)) > 0 {
				changed = true
			}
		}
		if e.Conflicted() != nil {
			return true
		}
	}
	return changed
}
