package rdfchase

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gfd"
	"repro/internal/pattern"
)

func edgeP(a, b, el string) *pattern.Pattern {
	p := pattern.New()
	x := p.AddVar("x", a)
	y := p.AddVar("y", b)
	p.AddEdge(x, y, el)
	return p
}

func TestChaseAgreesWithSeqImpOnPaperExample(t *testing.T) {
	// Example 8: ϕ11, ϕ12 imply ϕ13 (deduction) and ϕ14 (conflict).
	phi11 := gfd.MustNew("phi11", edgeP("a", "b", "p"), nil, []gfd.Literal{gfd.Const(0, "A", "1")})
	phi12 := gfd.MustNew("phi12", edgeP("a", "c", "p"),
		[]gfd.Literal{gfd.Const(0, "A", "1"), gfd.Const(1, "B", "2")},
		[]gfd.Literal{gfd.Const(1, "C", "2")})
	sigma := gfd.NewSet(phi11, phi12)

	q7 := pattern.New()
	x := q7.AddVar("x", "a")
	y := q7.AddVar("y", "b")
	z := q7.AddVar("z", "c")
	w := q7.AddVar("w", "c")
	q7.AddEdge(x, y, "p")
	q7.AddEdge(x, z, "p")
	q7.AddEdge(x, w, "p")
	phi13 := gfd.MustNew("phi13", q7, []gfd.Literal{gfd.Const(z, "B", "2")}, []gfd.Literal{gfd.Const(z, "C", "2")})
	phi14 := gfd.MustNew("phi14", q7, []gfd.Literal{gfd.Const(x, "A", "0")}, []gfd.Literal{gfd.Const(z, "C", "2")})
	notImp := gfd.MustNew("ni", edgeP("a", "b", "p"), nil, []gfd.Literal{gfd.Const(0, "A", "2")})

	for _, c := range []struct {
		name string
		phi  *gfd.GFD
	}{{"phi13", phi13}, {"phi14", phi14}, {"notimp", notImp}} {
		want := core.SeqImp(sigma, c.phi).Implied
		got := Implies(sigma, c.phi).Implied
		if got != want {
			t.Errorf("%s: chase=%v SeqImp=%v", c.name, got, want)
		}
	}
}

func TestChaseAgreesOnGeneratedInstances(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.New(gen.Config{N: 12, K: 3, L: 3, Seed: seed})
		set := g.Set()
		implied := g.ImpliedGFD(set)
		notImplied := g.NonImpliedGFD()
		if !Implies(set, implied).Implied {
			t.Errorf("seed %d: chase missed an implied GFD", seed)
		}
		if Implies(set, notImplied).Implied {
			t.Errorf("seed %d: chase claimed a non-implied GFD", seed)
		}
	}
}

func TestChaseRoundsGrowWithChains(t *testing.T) {
	// A dependency chain A→B→C→D needs multiple chase rounds without
	// ordering; SeqImp with dependency ordering fires in one pass. This is
	// the structural difference behind the paper's 1.4–1.5× gap.
	mkStep := func(name, from, to string) *gfd.GFD {
		return gfd.MustNew(name, edgeP("a", "b", "p"),
			[]gfd.Literal{gfd.Const(0, from, "1")},
			[]gfd.Literal{gfd.Const(0, to, "1")})
	}
	// Deliberately listed in reverse so round-robin needs several rounds.
	sigma := gfd.NewSet(
		mkStep("s3", "C", "D"),
		mkStep("s2", "B", "C"),
		mkStep("s1", "A", "B"),
	)
	phi := gfd.MustNew("phi", edgeP("a", "b", "p"),
		[]gfd.Literal{gfd.Const(0, "A", "1")},
		[]gfd.Literal{gfd.Const(0, "D", "1")})
	res := Implies(sigma, phi)
	if !res.Implied {
		t.Fatal("chain implication missed")
	}
	if res.Stats.Rounds < 2 {
		t.Errorf("rounds = %d; reversed chain should need multiple rounds", res.Stats.Rounds)
	}
	if !core.SeqImp(sigma, phi).Implied {
		t.Fatal("SeqImp disagrees on chain")
	}
}

func TestChaseTrivialCases(t *testing.T) {
	p := edgeP("a", "b", "p")
	// Inconsistent X.
	incons := gfd.MustNew("ix", p,
		[]gfd.Literal{gfd.Const(0, "A", "1"), gfd.Const(0, "A", "2")},
		[]gfd.Literal{gfd.Const(1, "B", "1")})
	if !Implies(gfd.NewSet(), incons).Implied {
		t.Error("inconsistent X not trivially implied")
	}
	// Y ⊆ X.
	lit := gfd.Const(0, "A", "9")
	yx := gfd.MustNew("yx", edgeP("a", "b", "p"), []gfd.Literal{lit}, []gfd.Literal{lit})
	if !Implies(gfd.NewSet(), yx).Implied {
		t.Error("Y⊆X not trivially implied")
	}
}
