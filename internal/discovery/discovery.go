// Package discovery is a frequent-GFD miner: the substrate standing in for
// the (unpublished) discovery algorithm of the paper's reference [23], which
// produced the real-life GFD sets the experiments reason about.
//
// The miner is deliberately modest but honest: it finds frequent edge
// triples, grows them into connected patterns up to k nodes, enumerates
// (capped) match sets, and induces attribute dependencies that hold on every
// match — constant rules (∅ → x.A = c), equality rules (x.A = y.B), and
// CFD-style conditional rules (x.A = c → y.B = d) where the antecedent
// value functionally determines the consequent value. Every emitted GFD is
// validated against the input graph, so mined sets are satisfiable (the
// graph is a model when every pattern matches, which holds by construction).
package discovery

import (
	"fmt"
	"sort"

	"repro/internal/gfd"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/pattern"
)

// Config bounds the mining process.
type Config struct {
	// MinSupport is the minimum number of occurrences for a frequent edge
	// triple and the minimum number of matches for a rule.
	MinSupport int
	// MaxK bounds pattern size in nodes (the paper's k, up to 6).
	MaxK int
	// MaxPatterns bounds how many patterns are grown.
	MaxPatterns int
	// MaxMatches caps match enumeration per pattern.
	MaxMatches int
	// MaxRules caps the total number of mined GFDs.
	MaxRules int
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 3
	}
	if c.MaxK <= 0 {
		c.MaxK = 4
	}
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 40
	}
	if c.MaxMatches <= 0 {
		c.MaxMatches = 2000
	}
	if c.MaxRules <= 0 {
		c.MaxRules = 200
	}
	return c
}

type triple struct {
	src, label, dst string
}

// Mine discovers a set of GFDs that hold on g.
func Mine(g graph.Reader, cfg Config) *gfd.Set {
	cfg = cfg.withDefaults()
	freq := frequentTriples(g, cfg.MinSupport)
	patterns := growPatterns(freq, cfg)
	set := gfd.NewSet()
	ruleID := 0
	for _, p := range patterns {
		if set.Len() >= cfg.MaxRules {
			break
		}
		ms := sampleMatches(p, g, cfg.MaxMatches)
		if len(ms) < cfg.MinSupport {
			continue
		}
		for _, r := range induceRules(p, g, ms, cfg) {
			if set.Len() >= cfg.MaxRules {
				break
			}
			r.Name = fmt.Sprintf("mined%d", ruleID)
			ruleID++
			set.Add(r)
		}
	}
	return set
}

// frequentTriples counts (srcLabel, edgeLabel, dstLabel) occurrences and
// returns those meeting the support threshold, most frequent first.
func frequentTriples(g graph.Reader, minSupport int) []triple {
	counts := make(map[triple]int)
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			t := triple{src: g.Label(e.From), label: e.Label, dst: g.Label(e.To)}
			counts[t]++
		}
	}
	var out []triple
	for t, c := range counts {
		if c >= minSupport {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return lessTriple(out[i], out[j])
	})
	return out
}

func lessTriple(a, b triple) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	if a.label != b.label {
		return a.label < b.label
	}
	return a.dst < b.dst
}

// growPatterns turns frequent triples into connected patterns: each seed
// triple is one 2-node pattern; larger patterns extend a seed along further
// frequent triples up to MaxK nodes.
func growPatterns(freq []triple, cfg Config) []*pattern.Pattern {
	var out []*pattern.Pattern
	for _, t := range freq {
		if len(out) >= cfg.MaxPatterns {
			break
		}
		p := pattern.New()
		x := p.AddVar("x0", t.src)
		y := p.AddVar("x1", t.dst)
		p.AddEdge(x, y, t.label)
		out = append(out, p)
	}
	// One extension round: attach a third/fourth node to each 2-node seed.
	if cfg.MaxK >= 3 {
		var grown []*pattern.Pattern
		for _, p := range out {
			if len(out)+len(grown) >= cfg.MaxPatterns {
				break
			}
			lastLabel := p.Label(1)
			for _, t := range freq {
				if t.src != lastLabel {
					continue
				}
				q := pattern.New()
				x := q.AddVar("x0", p.Label(0))
				y := q.AddVar("x1", p.Label(1))
				z := q.AddVar("x2", t.dst)
				q.AddEdge(x, y, p.Edges()[0].Label)
				q.AddEdge(y, z, t.label)
				grown = append(grown, q)
				break
			}
		}
		out = append(out, grown...)
	}
	return out
}

// sampleMatches enumerates up to limit matches of p in g.
func sampleMatches(p *pattern.Pattern, g graph.Reader, limit int) []match.Assignment {
	s := match.NewSearch(p, g, match.Options{})
	var out []match.Assignment
	for len(out) < limit {
		h, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, h)
	}
	return out
}

// induceRules derives dependencies that hold on every sampled match and
// validates them on the full graph.
func induceRules(p *pattern.Pattern, g graph.Reader, ms []match.Assignment, cfg Config) []*gfd.GFD {
	var rules []*gfd.GFD
	attrsOf := func(v pattern.Var) []string {
		// Attributes present at every match image of v.
		counts := make(map[string]int)
		for _, h := range ms {
			for a := range g.Attrs(h[v]) {
				counts[a]++
			}
		}
		var out []string
		for a, c := range counts {
			if c == len(ms) {
				out = append(out, a)
			}
		}
		sort.Strings(out)
		return out
	}
	validate := func(r *gfd.GFD) bool {
		ok, _ := satisfies(g, r)
		return ok
	}

	for v := 0; v < p.NumVars(); v++ {
		x := pattern.Var(v)
		for _, a := range attrsOf(x) {
			// Constant rule: x.A = c across all matches.
			val, constant := "", true
			for i, h := range ms {
				got, _ := g.Attr(h[x], a)
				if i == 0 {
					val = got
				} else if got != val {
					constant = false
					break
				}
			}
			if constant {
				r, err := gfd.New("", clonePattern(p), nil, []gfd.Literal{gfd.Const(x, a, val)})
				if err == nil && validate(r) {
					rules = append(rules, r)
				}
				continue
			}
			// Conditional and equality rules against other variables.
			for w := 0; w < p.NumVars(); w++ {
				y := pattern.Var(w)
				for _, b := range attrsOf(y) {
					if x == y && a == b {
						continue
					}
					rules = append(rules, mineDependency(p, g, ms, x, a, y, b, cfg, validate)...)
				}
			}
		}
	}
	return rules
}

// mineDependency looks at the value pairs of (x.A, y.B) across matches and
// emits an equality rule when always equal, or conditional rules when x.A's
// value functionally determines y.B's.
func mineDependency(p *pattern.Pattern, g graph.Reader, ms []match.Assignment, x pattern.Var, a string, y pattern.Var, b string, cfg Config, validate func(*gfd.GFD) bool) []*gfd.GFD {
	equal := true
	determines := true
	image := make(map[string]string)
	for _, h := range ms {
		va, _ := g.Attr(h[x], a)
		vb, _ := g.Attr(h[y], b)
		if va != vb {
			equal = false
		}
		if prev, seen := image[va]; seen && prev != vb {
			determines = false
			break
		}
		image[va] = vb
	}
	var out []*gfd.GFD
	if equal {
		r, err := gfd.New("", clonePattern(p), nil, []gfd.Literal{gfd.Vars(x, a, y, b)})
		if err == nil && validate(r) {
			out = append(out, r)
		}
		return out
	}
	if determines && len(image) > 1 && len(image) <= 4 {
		keys := make([]string, 0, len(image))
		for c := range image {
			keys = append(keys, c)
		}
		sort.Strings(keys)
		for _, c := range keys {
			r, err := gfd.New("", clonePattern(p),
				[]gfd.Literal{gfd.Const(x, a, c)},
				[]gfd.Literal{gfd.Const(y, b, image[c])})
			if err == nil && validate(r) {
				out = append(out, r)
			}
		}
	}
	return out
}

// clonePattern copies p so each rule owns its pattern (Σ construction
// assumes renaming-apart, which canonical graphs do by node offsets).
func clonePattern(p *pattern.Pattern) *pattern.Pattern {
	q := pattern.New()
	for i := 0; i < p.NumVars(); i++ {
		q.AddVar(p.Name(pattern.Var(i)), p.Label(pattern.Var(i)))
	}
	for _, e := range p.Edges() {
		q.AddEdge(e.From, e.To, e.Label)
	}
	return q
}

// satisfies is a local copy of the model-check oracle to avoid importing
// core (which would invert the dependency layering).
func satisfies(g graph.Reader, phi *gfd.GFD) (bool, match.Assignment) {
	s := match.NewSearch(phi.Pattern, g, match.Options{})
	for {
		h, ok := s.Next()
		if !ok {
			return true, nil
		}
		if holds(g, h, phi.X) && !holds(g, h, phi.Y) {
			return false, h
		}
	}
}

func holds(g graph.Reader, h match.Assignment, ls []gfd.Literal) bool {
	for _, l := range ls {
		switch l.Kind {
		case gfd.ConstLiteral:
			v, ok := g.Attr(h[l.X], l.A)
			if !ok || v != l.Const {
				return false
			}
		case gfd.VarLiteral:
			v1, ok1 := g.Attr(h[l.X], l.A)
			v2, ok2 := g.Attr(h[l.Y], l.B)
			if !ok1 || !ok2 || v1 != v2 {
				return false
			}
		}
	}
	return true
}
