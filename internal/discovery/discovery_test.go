package discovery

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gfd"
	"repro/internal/graph"
)

// planted builds a graph with a deliberate functional dependency: every
// "person" -works-> "org" pair where the person's dept value determines the
// org's floor value, plus a constant property on orgs.
func planted() *graph.Graph {
	g := graph.New()
	depts := []string{"eng", "eng", "ops", "ops", "eng", "ops"}
	floors := map[string]string{"eng": "3", "ops": "1"}
	for i, d := range depts {
		p := g.AddNode("person")
		g.SetAttr(p, "dept", d)
		o := g.AddNode("org")
		g.SetAttr(o, "floor", floors[d])
		g.SetAttr(o, "country", "uk")
		g.AddEdge(p, o, "works")
		_ = i
	}
	return g
}

func TestMineFindsPlantedRules(t *testing.T) {
	g := planted()
	set := Mine(g, Config{MinSupport: 2, MaxK: 2})
	if set.Len() == 0 {
		t.Fatal("no rules mined from planted graph")
	}
	// Every mined rule must hold on the graph (the miner validates, but
	// verify independently with the core oracle).
	if ok, v := core.Satisfies(g, set); !ok {
		t.Fatalf("mined rule violated on its own graph: %v", v.GFD)
	}
	var haveConst, haveCond bool
	for _, r := range set.GFDs {
		if len(r.X) == 0 && len(r.Y) == 1 && r.Y[0].Kind == gfd.ConstLiteral && r.Y[0].Const == "uk" {
			haveConst = true
		}
		if len(r.X) == 1 && r.X[0].Kind == gfd.ConstLiteral {
			haveCond = true
		}
	}
	if !haveConst {
		t.Error("constant rule (org.country=uk) not mined")
	}
	if !haveCond {
		t.Error("conditional rule (dept=...→floor=...) not mined")
	}
}

func TestMinedSetsAreSatisfiable(t *testing.T) {
	// The mined set must be satisfiable: the source graph is close to a
	// model, and SeqSat must agree.
	g := planted()
	set := Mine(g, Config{MinSupport: 2, MaxK: 3})
	if set.Len() == 0 {
		t.Skip("nothing mined")
	}
	if !core.SeqSat(set).Satisfiable {
		t.Fatal("mined set unsatisfiable though a model-like graph exists")
	}
}

func TestMineOnProfileGraph(t *testing.T) {
	prof := dataset.YAGO2()
	g := prof.SampleGraph(dataset.GraphConfig{Nodes: 300, Seed: 4})
	set := Mine(g, Config{MinSupport: 5, MaxK: 3, MaxRules: 80})
	if set.Len() == 0 {
		t.Fatal("no rules mined from profile graph (label-determined attrs exist by construction)")
	}
	if ok, v := core.Satisfies(g, set); !ok {
		t.Fatalf("mined rule violated: %v", v.GFD)
	}
}

func TestSupportThresholdFiltersRareTriples(t *testing.T) {
	g := graph.New()
	a := g.AddNode("rare")
	b := g.AddNode("rare2")
	g.AddEdge(a, b, "once")
	set := Mine(g, Config{MinSupport: 2, MaxK: 2})
	if set.Len() != 0 {
		t.Fatalf("mined %d rules from below-support graph", set.Len())
	}
}

func TestRuleCap(t *testing.T) {
	prof := dataset.DBpedia()
	g := prof.SampleGraph(dataset.GraphConfig{Nodes: 400, Seed: 8})
	set := Mine(g, Config{MinSupport: 3, MaxK: 3, MaxRules: 10})
	if set.Len() > 10 {
		t.Fatalf("MaxRules=10 exceeded: %d", set.Len())
	}
}
