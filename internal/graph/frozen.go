// Freeze-time CSR snapshots. The mutable Graph keeps its label-keyed
// adjacency sorted incrementally, which costs an O(deg) shift per AddEdge at
// hub nodes — fine for small or incremental workloads, a bottleneck for bulk
// ingest of large graphs. Builder+Frozen trade a build phase for dense array
// scans: the Builder appends edges unsorted in O(1) each, and Freeze sorts
// once per node (O(E log deg) total) into compressed sparse rows, yielding
// an immutable snapshot that serves the whole Reader API from a handful of
// flat arrays.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Builder accumulates nodes and edges for a Frozen snapshot. Unlike
// Graph.AddEdge, Builder.AddEdge is O(1): no index maintenance, no
// duplicate suppression (duplicates are collapsed at Freeze, preserving
// AddEdge's idempotence per (from, label, to)). The zero value is not
// usable; construct with NewBuilder.
type Builder struct {
	nodes          []Node
	nodeLabelIDs   map[string]LabelID
	nodeLabelNames []string
	nodeLabelOf    []LabelID
	labelIDs       map[string]LabelID
	labelNames     []string
	from, to       []NodeID
	lab            []LabelID
	frozen         bool
}

// NewBuilder returns an empty builder, optionally pre-sizing its edge
// arrays for the expected edge count (0 is fine).
func NewBuilder(edgeHint int) *Builder {
	b := &Builder{
		nodeLabelIDs: make(map[string]LabelID),
		labelIDs:     make(map[string]LabelID),
	}
	if edgeHint > 0 {
		b.from = make([]NodeID, 0, edgeHint)
		b.to = make([]NodeID, 0, edgeHint)
		b.lab = make([]LabelID, 0, edgeHint)
	}
	return b
}

// AddNode appends a node with the given label and returns its ID.
func (b *Builder) AddNode(label string) NodeID {
	if b.frozen {
		panic("graph: Builder.AddNode after Freeze")
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Label: label})
	lid, ok := b.nodeLabelIDs[label]
	if !ok {
		lid = LabelID(len(b.nodeLabelNames))
		b.nodeLabelIDs[label] = lid
		b.nodeLabelNames = append(b.nodeLabelNames, label)
	}
	b.nodeLabelOf = append(b.nodeLabelOf, lid)
	return id
}

// AddNodeWithAttrs appends a node carrying the given attribute tuple.
// The map is copied.
func (b *Builder) AddNodeWithAttrs(label string, attrs map[string]string) NodeID {
	id := b.AddNode(label)
	for k, v := range attrs {
		b.SetAttr(id, k, v)
	}
	return id
}

// SetAttr sets attribute A of node v to constant value c.
func (b *Builder) SetAttr(v NodeID, attr, value string) {
	if b.frozen {
		panic("graph: Builder.SetAttr after Freeze")
	}
	if v < 0 || int(v) >= len(b.nodes) {
		panic(fmt.Sprintf("graph: Builder.SetAttr on invalid node %d", v))
	}
	n := &b.nodes[v]
	if n.Attrs == nil {
		n.Attrs = make(map[string]string)
	}
	n.Attrs[attr] = value
}

// AddEdge appends a directed labeled edge in O(1). Duplicate
// (from, label, to) triples are tolerated and collapsed at Freeze.
func (b *Builder) AddEdge(from, to NodeID, label string) {
	if b.frozen {
		panic("graph: Builder.AddEdge after Freeze")
	}
	if from < 0 || int(from) >= len(b.nodes) || to < 0 || int(to) >= len(b.nodes) {
		panic(fmt.Sprintf("graph: Builder.AddEdge with invalid endpoint %d->%d", from, to))
	}
	id, ok := b.labelIDs[label]
	if !ok {
		id = LabelID(len(b.labelNames))
		b.labelIDs[label] = id
		b.labelNames = append(b.labelNames, label)
	}
	b.from = append(b.from, from)
	b.to = append(b.to, to)
	b.lab = append(b.lab, id)
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodes) }

// NumEdges returns the number of AddEdge calls so far. Duplicates are not
// yet collapsed; the Frozen snapshot's NumEdges counts distinct edges.
func (b *Builder) NumEdges() int { return len(b.from) }

// Graph materializes the builder's contents as a mutable *Graph by
// replaying the nodes and edges through the incremental ingest path. Use it
// when the result must stay editable; use Freeze for read-only workloads.
func (b *Builder) Graph() *Graph {
	g := New()
	for i := range b.nodes {
		n := &b.nodes[i]
		id := g.AddNode(n.Label)
		for k, v := range n.Attrs {
			g.SetAttr(id, k, v)
		}
	}
	for i := range b.from {
		g.AddEdge(b.from[i], b.to[i], b.labelNames[b.lab[i]])
	}
	return g
}

// Freeze sorts the accumulated edges into an immutable CSR snapshot and
// returns it. The builder is consumed: the snapshot shares the builder's
// node and label storage, and further Add/Set calls panic. Total cost is
// O(V + E log deg): one counting pass, one scatter, and one sort per
// node's adjacency run.
func (b *Builder) Freeze() *Frozen {
	if b.frozen {
		panic("graph: Builder.Freeze called twice")
	}
	b.frozen = true
	f := &Frozen{
		epoch:          nextEpoch(),
		nodes:          b.nodes,
		nodeLabelIDs:   b.nodeLabelIDs,
		nodeLabelNames: b.nodeLabelNames,
		nodeLabelOf:    b.nodeLabelOf,
		labelIDs:       b.labelIDs,
		labelNames:     b.labelNames,
	}
	f.out = buildCSR(len(b.nodes), b.from, b.to, b.lab)
	f.in = buildCSR(len(b.nodes), b.to, b.from, b.lab)
	f.edges = len(f.out.targets)

	// Nodes-by-label CSR: node IDs ascend within each label because nodes
	// are scattered in ID order.
	nl := len(b.nodeLabelNames)
	f.byLabelOff = make([]int32, nl+1)
	for _, lid := range b.nodeLabelOf {
		f.byLabelOff[lid+1]++
	}
	for i := 0; i < nl; i++ {
		f.byLabelOff[i+1] += f.byLabelOff[i]
	}
	f.byLabelNodes = make([]NodeID, len(b.nodes))
	next := make([]int32, nl)
	copy(next, f.byLabelOff[:nl])
	for v, lid := range b.nodeLabelOf {
		f.byLabelNodes[next[lid]] = NodeID(v)
		next[lid]++
	}
	return f
}

// csrKey packs (label, target) into one comparable integer so a node's
// adjacency run sorts with a single flat-array sort. This bounds Frozen
// graphs at 2^32 nodes and 2^32 edge labels — far beyond NodeID's dense-int
// practical range.
func csrKey(lab LabelID, to NodeID) uint64 {
	return uint64(uint32(lab))<<32 | uint64(uint32(to))
}

// buildCSR lays one direction of adjacency out as compressed sparse rows:
// counting sort by source node, then per-node sort by (label, target) with
// adjacent-duplicate collapse, a per-node directory of distinct-label runs,
// plus the target-sorted "all" view wildcard queries read.
func buildCSR(n int, src, dst []NodeID, lab []LabelID) csrDir {
	off := make([]int32, n+1)
	for _, s := range src {
		off[s+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	keys := make([]uint64, len(src))
	next := make([]int32, n)
	copy(next, off[:n])
	for i, s := range src {
		keys[next[s]] = csrKey(lab[i], dst[i])
		next[s]++
	}

	d := csrDir{
		off:     make([]int32, n+1),
		dirOff:  make([]int32, n+1),
		targets: make([]NodeID, 0, len(src)),
		all:     make([]NodeID, 0, len(src)),
	}
	for v := 0; v < n; v++ {
		run := keys[off[v]:off[v+1]]
		slices.Sort(run)
		start := len(d.targets)
		for i, k := range run {
			if i > 0 && k == run[i-1] {
				continue // duplicate (from, label, to): AddEdge idempotence
			}
			l := LabelID(uint32(k >> 32))
			if nd := len(d.dirLabels); nd == int(d.dirOff[v]) || d.dirLabels[nd-1] != l {
				d.dirLabels = append(d.dirLabels, l)
				d.dirStart = append(d.dirStart, int32(len(d.targets)))
			}
			d.targets = append(d.targets, NodeID(uint32(k)))
		}
		d.all = append(d.all, d.targets[start:]...)
		slices.Sort(d.all[start:])
		d.off[v+1] = int32(len(d.targets))
		d.dirOff[v+1] = int32(len(d.dirLabels))
	}
	return d
}

// csrDir is one direction of frozen adjacency. For node v, the half-open
// run [off[v], off[v+1]) of targets holds the endpoints sorted by
// (label, target) — each label's endpoints are a contiguous ascending
// sub-run — and the same span of all holds them sorted by target only, the
// wildcard-query view (a target repeats when parallel edges differ only in
// label, mirroring the mutable index). The directory run
// [dirOff[v], dirOff[v+1]) lists v's distinct labels with each sub-run's
// start offset into targets, so a label query is the same short linear
// scan over distinct labels the mutable index does — a node's distinct
// incident labels are few.
type csrDir struct {
	off     []int32
	targets []NodeID
	all     []NodeID

	dirOff    []int32
	dirLabels []LabelID
	dirStart  []int32
}

// byLabel returns the ascending endpoint run for one label query.
func (d *csrDir) byLabel(v NodeID, id LabelID) []NodeID {
	switch id {
	case AnyLabel:
		return d.all[d.off[v]:d.off[v+1]]
	case NoLabel:
		return nil
	}
	dlo, dhi := int(d.dirOff[v]), int(d.dirOff[v+1])
	for i := dlo; i < dhi; i++ {
		if d.dirLabels[i] == id {
			end := d.off[v+1]
			if i+1 < dhi {
				end = d.dirStart[i+1]
			}
			return d.targets[d.dirStart[i]:end]
		}
	}
	return nil
}

// forEachRun walks node v's directory runs in ascending label order, handing
// each (label, endpoints) pair to fn. The endpoint slices alias the CSR.
func (d *csrDir) forEachRun(v NodeID, fn func(LabelID, []NodeID)) {
	dlo, dhi := int(d.dirOff[v]), int(d.dirOff[v+1])
	for i := dlo; i < dhi; i++ {
		end := d.off[v+1]
		if i+1 < dhi {
			end = d.dirStart[i+1]
		}
		fn(d.dirLabels[i], d.targets[d.dirStart[i]:end])
	}
}

// has reports whether the run for id contains target t: one directory scan
// plus a binary search, O(log deg), no hashing.
func (d *csrDir) has(v, t NodeID, id LabelID) bool {
	list := d.byLabel(v, id)
	i, j := 0, len(list)
	for i < j {
		m := int(uint(i+j) >> 1)
		if list[m] < t {
			i = m + 1
		} else {
			j = m
		}
	}
	return i < len(list) && list[i] == t
}

// Frozen is an immutable CSR snapshot of a graph, produced by
// Builder.Freeze (or Graph.Frozen). It serves the full Reader API —
// label-partitioned adjacency, O(log deg) edge probes, signature covers,
// node-label candidates — from flat arrays with no per-query allocation
// (except the documented copying accessors). Being immutable it is safe for
// concurrent readers.
type Frozen struct {
	nodes          []Node
	nodeLabelIDs   map[string]LabelID
	nodeLabelNames []string
	nodeLabelOf    []LabelID
	labelIDs       map[string]LabelID
	labelNames     []string
	edges          int

	out csrDir
	in  csrDir

	byLabelOff   []int32
	byLabelNodes []NodeID

	// dead marks tombstoned node slots (see Graph.RemoveNode and
	// Frozen.Refreeze): the ID stays in the dense node space but the node is
	// excluded from candidate enumeration and owns no edges or attributes.
	// nil for snapshots without removals — the common case pays nothing.
	dead      []bool
	deadCount int

	// epoch is the construction token (see epoch.go); bitsets the lazy
	// candidate-bitset cache (see bitset.go). Both are identity/cache
	// state, not graph content: they are never persisted, and the cache
	// mutex means a Frozen must not be copied by value.
	epoch   uint64
	bitsets bitsetCache
}

// Frozen returns an immutable CSR snapshot of g's current contents, built
// by replaying g through a Builder. The snapshot is independent of g except
// for attribute value strings.
func (g *Graph) Frozen() *Frozen {
	b := NewBuilder(g.NumEdges())
	for i := range g.nodes {
		n := &g.nodes[i]
		id := b.AddNode(n.Label)
		for k, v := range n.Attrs {
			b.SetAttr(id, k, v)
		}
	}
	for v := range g.out {
		for _, e := range g.out[v] {
			b.AddEdge(e.From, e.To, e.Label)
		}
	}
	f := b.Freeze()
	if g.dead != nil {
		f.tombstone(g.dead)
	}
	return f
}

// tombstone marks the given node slots dead and drops them from the
// nodes-by-label index. Their adjacency rows must already be empty (the
// callers — Graph.Frozen replaying a graph whose RemoveNode dropped the
// incident edges, and Refreeze after the delta recorded them as removed —
// guarantee it).
func (f *Frozen) tombstone(dead []bool) {
	n := 0
	for _, d := range dead {
		if d {
			n++
		}
	}
	if n == 0 {
		return
	}
	f.dead = append([]bool(nil), dead...)
	f.deadCount = n
	// Compact the nodes-by-label CSR to live nodes only.
	nodes := f.byLabelNodes[:0]
	off := make([]int32, len(f.byLabelOff))
	for l := 0; l < len(f.byLabelOff)-1; l++ {
		for _, v := range f.byLabelNodes[f.byLabelOff[l]:f.byLabelOff[l+1]] {
			if !dead[v] {
				nodes = append(nodes, v)
			}
		}
		off[l+1] = int32(len(nodes))
	}
	f.byLabelNodes = nodes
	f.byLabelOff = off
}

// Alive reports whether v is a valid, non-tombstoned node.
func (f *Frozen) Alive(v NodeID) bool {
	return f.valid(v) && (f.dead == nil || !f.dead[v])
}

// LiveNodes returns the number of non-tombstoned nodes (NumNodes counts the
// dense ID space, which retains removed slots).
func (f *Frozen) LiveNodes() int { return len(f.nodes) - f.deadCount }

func (f *Frozen) valid(v NodeID) bool { return v >= 0 && int(v) < len(f.nodes) }

// NumNodes returns |V|.
func (f *Frozen) NumNodes() int { return len(f.nodes) }

// NumEdges returns |E| (distinct (from, label, to) triples).
func (f *Frozen) NumEdges() int { return f.edges }

// Label returns the label of node v.
func (f *Frozen) Label(v NodeID) string { return f.nodes[v].Label }

// Attr reports the value of attribute A at node v and whether it exists.
func (f *Frozen) Attr(v NodeID, attr string) (string, bool) {
	if !f.valid(v) {
		return "", false
	}
	val, ok := f.nodes[v].Attrs[attr]
	return val, ok
}

// Attrs returns the attribute tuple of v (nil if none). The returned map is
// the snapshot's own storage; callers must not mutate it.
func (f *Frozen) Attrs(v NodeID) map[string]string {
	if !f.valid(v) {
		return nil
	}
	return f.nodes[v].Attrs
}

// Size returns |G| counting live nodes, edges, attributes and their values.
func (f *Frozen) Size() int {
	s := len(f.nodes) - f.deadCount + f.edges
	for i := range f.nodes {
		s += len(f.nodes[i].Attrs)
	}
	return s
}

// Out returns the outgoing edges of v. The slice is synthesized per call
// (labels re-materialized as strings); hot paths use OutByLabelID.
func (f *Frozen) Out(v NodeID) []Edge {
	if !f.valid(v) {
		return nil
	}
	es := make([]Edge, 0, f.out.off[v+1]-f.out.off[v])
	f.synthesize(&f.out, v, func(l string, t NodeID) {
		es = append(es, Edge{From: v, To: t, Label: l})
	})
	return es
}

// In returns the incoming edges of v, synthesized per call like Out.
func (f *Frozen) In(v NodeID) []Edge {
	if !f.valid(v) {
		return nil
	}
	es := make([]Edge, 0, f.in.off[v+1]-f.in.off[v])
	f.synthesize(&f.in, v, func(l string, t NodeID) {
		es = append(es, Edge{From: t, To: v, Label: l})
	})
	return es
}

// synthesize walks one node's directory runs, handing each (label string,
// endpoint) pair to emit.
func (f *Frozen) synthesize(d *csrDir, v NodeID, emit func(string, NodeID)) {
	d.forEachRun(v, func(id LabelID, targets []NodeID) {
		name := f.labelNames[id]
		for _, t := range targets {
			emit(name, t)
		}
	})
}

// EdgeLabelID resolves an edge label to its interned ID: AnyLabel for the
// Wildcard, NoLabel for labels absent from the graph.
func (f *Frozen) EdgeLabelID(label string) LabelID {
	if label == Wildcard {
		return AnyLabel
	}
	if id, ok := f.labelIDs[label]; ok {
		return id
	}
	return NoLabel
}

// NodeLabelID resolves a node label to its interned ID, with the same
// wildcard semantics as Graph.NodeLabelID.
func (f *Frozen) NodeLabelID(label string) LabelID {
	if label == Wildcard {
		return AnyLabel
	}
	if id, ok := f.nodeLabelIDs[label]; ok {
		return id
	}
	return NoLabel
}

// LabelIDOf returns the interned ID of node v's label.
func (f *Frozen) LabelIDOf(v NodeID) LabelID { return f.nodeLabelOf[v] }

// ResolveLabels maps a label list through EdgeLabelID.
func (f *Frozen) ResolveLabels(labels []string) []LabelID {
	if len(labels) == 0 {
		return nil
	}
	ids := make([]LabelID, len(labels))
	for i, l := range labels {
		ids[i] = f.EdgeLabelID(l)
	}
	return ids
}

// Labels returns the distinct node labels in deterministic order.
func (f *Frozen) Labels() []string {
	ls := append([]string(nil), f.nodeLabelNames...)
	sort.Strings(ls)
	return ls
}

// HasEdge reports whether edge (from,to) with the given label exists, with
// Wildcard matching any label.
func (f *Frozen) HasEdge(from, to NodeID, label string) bool {
	return f.HasEdgeID(from, to, f.EdgeLabelID(label))
}

// HasEdgeID is HasEdge with a pre-resolved label ID: binary search within
// from's label run, O(log deg), no hashing.
func (f *Frozen) HasEdgeID(from, to NodeID, id LabelID) bool {
	if !f.valid(from) || id == NoLabel {
		return false
	}
	return f.out.has(from, to, id)
}

// OutByLabel returns the targets of v's outgoing edges carrying the given
// label, in ascending NodeID order, with Graph.OutByLabel's wildcard and
// aliasing semantics.
func (f *Frozen) OutByLabel(v NodeID, label string) []NodeID {
	return f.OutByLabelID(v, f.EdgeLabelID(label))
}

// OutByLabelID is OutByLabel with a pre-resolved label ID.
func (f *Frozen) OutByLabelID(v NodeID, id LabelID) []NodeID {
	if !f.valid(v) {
		return nil
	}
	return f.out.byLabel(v, id)
}

// InByLabel returns the sources of v's incoming edges carrying the given
// label, with the same semantics as OutByLabel.
func (f *Frozen) InByLabel(v NodeID, label string) []NodeID {
	return f.InByLabelID(v, f.EdgeLabelID(label))
}

// InByLabelID is InByLabel with a pre-resolved label ID.
func (f *Frozen) InByLabelID(v NodeID, id LabelID) []NodeID {
	if !f.valid(v) {
		return nil
	}
	return f.in.byLabel(v, id)
}

// nodesWithLabel returns the internal ascending run of nodes carrying
// exactly the given label.
func (f *Frozen) nodesWithLabel(label string) []NodeID {
	id, ok := f.nodeLabelIDs[label]
	if !ok {
		return nil
	}
	return f.byLabelNodes[f.byLabelOff[id]:f.byLabelOff[id+1]]
}

// NodesByLabel returns the IDs of nodes carrying exactly the given label,
// as a fresh copy owned by the caller (see Reader's contract). It does not
// apply wildcard semantics; see CandidateNodes.
func (f *Frozen) NodesByLabel(label string) []NodeID {
	run := f.nodesWithLabel(label)
	if run == nil {
		return nil
	}
	return append([]NodeID(nil), run...)
}

// CandidateNodes returns the nodes a pattern node with the given label may
// match, as a fresh copy owned by the caller: all nodes for the wildcard,
// else the nodes with that exact label.
func (f *Frozen) CandidateNodes(label string) []NodeID {
	return f.AppendCandidates(nil, label)
}

// AppendCandidates appends CandidateNodes(label) into dst without any other
// allocation.
func (f *Frozen) AppendCandidates(dst []NodeID, label string) []NodeID {
	if label == Wildcard {
		for i := range f.nodes {
			if f.dead != nil && f.dead[i] {
				continue
			}
			dst = append(dst, NodeID(i))
		}
		return dst
	}
	return append(dst, f.nodesWithLabel(label)...)
}

// LabelFrequency returns the number of nodes carrying the label, with
// wildcard counting every live node.
func (f *Frozen) LabelFrequency(label string) int {
	if label == Wildcard {
		return len(f.nodes) - f.deadCount
	}
	return len(f.nodesWithLabel(label))
}

// Covers reports whether node v's adjacency covers the signature; see
// Graph.Covers.
func (f *Frozen) Covers(v NodeID, sig Signature) bool {
	return f.CoversIDs(v, f.ResolveLabels(sig.Out), f.ResolveLabels(sig.In))
}

// CoversIDs is Covers with pre-resolved label IDs. Each probe is a binary
// search over v's label directory, O(|sig| log deg) total.
func (f *Frozen) CoversIDs(v NodeID, outIDs, inIDs []LabelID) bool {
	if !f.valid(v) {
		return false
	}
	for _, id := range outIDs {
		if len(f.out.byLabel(v, id)) == 0 {
			return false
		}
	}
	for _, id := range inIDs {
		if len(f.in.byLabel(v, id)) == 0 {
			return false
		}
	}
	return true
}

// Neighborhood returns the set of nodes within d hops of v, treating edges
// as undirected; see Graph.Neighborhood.
func (f *Frozen) Neighborhood(v NodeID, d int) map[NodeID]bool {
	return neighborhood(f, v, d)
}

// UndirectedDistance returns the number of hops between u and v ignoring
// edge direction, or -1 if disconnected; see Graph.UndirectedDistance.
func (f *Frozen) UndirectedDistance(u, v NodeID) int {
	return undirectedDistance(f, u, v)
}
