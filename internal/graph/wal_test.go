package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// walFixtureBase is a small base snapshot with labeled nodes and edges for
// the WAL tests.
func walFixtureBase() *Frozen {
	b := NewBuilder(0)
	for i := 0; i < 6; i++ {
		b.AddNode([]string{"a", "b"}[i%2])
	}
	b.SetAttr(0, "k", "v0")
	for i := 0; i < 5; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1), "e")
	}
	b.AddEdge(0, 3, "f")
	return b.Freeze()
}

// walFixtureOps is a deterministic op stream covering every record kind,
// including ops that are no-ops or cancellations at the delta layer.
func walFixtureOps() []func(m Mutator) {
	return []func(m Mutator){
		func(m Mutator) { m.AddNode("c") },
		func(m Mutator) { m.SetAttr(6, "k", "v6") },
		func(m Mutator) { m.AddEdge(6, 0, "e") },
		func(m Mutator) { m.AddNodeWithAttrs("a", map[string]string{"x": "1", "y": "2"}) },
		func(m Mutator) { m.AddEdge(1, 7, "f") },
		func(m Mutator) { m.RemoveEdge(0, 1, "e") },
		func(m Mutator) { m.RemoveEdge(0, 1, "e") }, // no-op repeat
		func(m Mutator) { m.AddEdge(0, 1, "e") },    // cancels the removal
		func(m Mutator) { m.SetAttr(0, "k", "v0'") },
		func(m Mutator) { m.RemoveNode(4) },
		func(m Mutator) { m.RemoveEdge(2, 3, "absent") }, // unknown label no-op
		func(m Mutator) { m.AddEdge(7, 2, "g") },
		func(m Mutator) { m.RemoveNode(6) },
	}
}

// logOps drives the fixture ops through a WAL over an in-memory buffer and
// returns the log bytes plus the resulting delta.
func logOps(t *testing.T, base *Frozen, ops []func(Mutator)) ([]byte, *Delta) {
	t.Helper()
	var buf bytes.Buffer
	d := NewDelta(base)
	w := NewWAL(&buf, d)
	w.SyncEvery = 3 // exercise the batch boundary mid-stream
	for _, op := range ops {
		op(w)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}
	return buf.Bytes(), d
}

// replayPrefix applies the first k fixture ops to a fresh delta directly.
func replayPrefix(base *Frozen, ops []func(Mutator), k int) *Delta {
	d := NewDelta(base)
	for _, op := range ops[:k] {
		op(d)
	}
	return d
}

// recordBoundaries parses the log's record framing, returning the byte
// offset after each record (and the op count each prefix holds).
func recordBoundaries(t *testing.T, log []byte) []int {
	t.Helper()
	bounds := []int{0}
	pos := 0
	for pos < len(log) {
		if pos+8 > len(log) {
			t.Fatalf("log framing broken at %d", pos)
		}
		n := int(binary.LittleEndian.Uint32(log[pos:]))
		pos += 8 + n
		bounds = append(bounds, pos)
	}
	if pos != len(log) {
		t.Fatalf("log framing overruns: %d vs %d", pos, len(log))
	}
	return bounds
}

// opsForRecords returns a delta holding the ops whose records make up the
// given record-count prefix, or nil when that boundary falls inside a
// multi-record op (AddNodeWithAttrs logs 1 + one SetAttr per attribute). It
// re-runs the stream through a scratch WAL, counting frames after each op.
func opsForRecords(t *testing.T, base *Frozen, ops []func(Mutator), records int) *Delta {
	t.Helper()
	if records == 0 {
		return NewDelta(base)
	}
	var buf bytes.Buffer
	w := NewWAL(&buf, NewDelta(base))
	for k, op := range ops {
		op(w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		switch n := len(recordBoundaries(t, buf.Bytes())) - 1; {
		case n == records:
			return replayPrefix(base, ops, k+1)
		case n > records:
			return nil // boundary inside a multi-record op
		}
	}
	t.Fatalf("asked for %d records, stream has fewer", records)
	return nil
}

// TestWALRoundTrip recovers a complete log and checks the rebuilt delta is
// query-identical to the one the WAL fronted.
func TestWALRoundTrip(t *testing.T) {
	base := walFixtureBase()
	ops := walFixtureOps()
	log, want := logOps(t, base, ops)

	got, stats, err := Recover(base, bytes.NewReader(log))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Truncated {
		t.Fatal("clean log reported as truncated")
	}
	if stats.Bytes != int64(len(log)) {
		t.Fatalf("valid prefix %d, want %d", stats.Bytes, len(log))
	}
	checkReaderEquivalence(t, "recovered", want.Overlay(), got.Overlay(),
		[]string{"a", "b", "c"}, []string{"e", "f", "g"})
	if want.Len() != got.Len() || want.String() != got.String() {
		t.Fatalf("delta shape diverges: %v vs %v", want, got)
	}
}

// TestWALTornTailEveryOffset is the crash-injection property: the log cut at
// every byte offset recovers the longest valid record prefix — no error, no
// data loss before the tear, Truncated set exactly when the cut is not a
// record boundary.
func TestWALTornTailEveryOffset(t *testing.T) {
	base := walFixtureBase()
	ops := walFixtureOps()
	log, _ := logOps(t, base, ops)
	bounds := recordBoundaries(t, log)

	recordsBefore := func(cut int) int {
		n := 0
		for n+1 < len(bounds) && bounds[n+1] <= cut {
			n++
		}
		return n
	}
	for cut := 0; cut <= len(log); cut++ {
		d, stats, err := Recover(base, bytes.NewReader(log[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: Recover: %v", cut, err)
		}
		wantRecords := recordsBefore(cut)
		if stats.Records != wantRecords {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, stats.Records, wantRecords)
		}
		if stats.Bytes != int64(bounds[wantRecords]) {
			t.Fatalf("cut=%d: valid prefix %d, want %d", cut, stats.Bytes, bounds[wantRecords])
		}
		atBoundary := cut == bounds[wantRecords]
		if stats.Truncated == atBoundary {
			t.Fatalf("cut=%d: Truncated=%v at boundary=%v", cut, stats.Truncated, atBoundary)
		}
		// Replaying the same prefix through Recover a second time must agree
		// with the first (prefix recovery is deterministic).
		d2, _, err := Recover(base, bytes.NewReader(log[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: second prefix recovery failed: %v", cut, err)
		}
		if d.String() != d2.String() || d.Len() != d2.Len() {
			t.Fatalf("cut=%d: prefix recovery not deterministic", cut)
		}
	}
	// And full-prefix cuts at record boundaries equal a direct replay of the
	// records' ops (checked exactly where the boundary maps to a whole op).
	for rec := 0; rec+1 < len(bounds); rec++ {
		want := opsForRecords(t, base, ops, rec)
		if want == nil {
			continue
		}
		got, _, err := Recover(base, bytes.NewReader(log[:bounds[rec]]))
		if err != nil {
			t.Fatalf("records=%d: %v", rec, err)
		}
		if got.String() != want.String() {
			t.Fatalf("records=%d: recovered %v, want %v", rec, got, want)
		}
	}
}

// TestWALCorruptRecord flips one byte in a middle record: recovery stops at
// the corrupt record (longest valid prefix), without error.
func TestWALCorruptRecord(t *testing.T) {
	base := walFixtureBase()
	log, _ := logOps(t, base, walFixtureOps())
	bounds := recordBoundaries(t, log)
	mid := len(bounds) / 2
	bad := append([]byte(nil), log...)
	bad[bounds[mid]+8] ^= 0xff // first payload byte of record mid

	_, stats, err := Recover(base, bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !stats.Truncated || stats.Records != mid || stats.Bytes != int64(bounds[mid]) {
		t.Fatalf("corrupt record %d: got records=%d bytes=%d truncated=%v",
			mid, stats.Records, stats.Bytes, stats.Truncated)
	}
}

// TestWALWrongBase replays a log over a base it cannot belong to: a
// checksummed record referencing an unknown node must error, not panic.
func TestWALWrongBase(t *testing.T) {
	base := walFixtureBase()
	log, _ := logOps(t, base, walFixtureOps())
	tiny := NewBuilder(0)
	tiny.AddNode("a")
	if _, _, err := Recover(tiny.Freeze(), bytes.NewReader(log)); err == nil {
		t.Fatal("recovery over a mismatched base succeeded")
	}
}

// TestWALFileLifecycle runs the durable flow end to end: OpenWAL, crash with
// a torn tail, RecoverFile truncating the tear, append more, recover again.
func TestWALFileLifecycle(t *testing.T) {
	base := walFixtureBase()
	path := filepath.Join(t.TempDir(), "updates.wal")

	d0, stats, err := RecoverFile(base, path)
	if err != nil || stats.Records != 0 || d0.Len() != 0 {
		t.Fatalf("recover of missing log: %v %+v", err, stats)
	}

	w, err := OpenWAL(path, NewDelta(base))
	if err != nil {
		t.Fatal(err)
	}
	w.SyncEvery = 1
	id := w.AddNode("c")
	w.AddEdge(id, 0, "e")
	w.SetAttr(id, "k", "v")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash injection: a torn half-record lands at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2})
	f.Close()

	d1, stats, err := RecoverFile(base, path)
	if err != nil {
		t.Fatalf("RecoverFile: %v", err)
	}
	if !stats.Truncated || stats.Records != 3 {
		t.Fatalf("post-crash recovery: %+v", stats)
	}
	if fi, _ := os.Stat(path); fi.Size() != stats.Bytes {
		t.Fatalf("torn tail not truncated: file %d bytes, valid prefix %d", fi.Size(), stats.Bytes)
	}
	if !d1.Alive(id) {
		t.Fatal("recovered delta lost the added node")
	}

	// The truncated log accepts appends and the union recovers.
	w2, err := OpenWAL(path, d1)
	if err != nil {
		t.Fatal(err)
	}
	w2.RemoveNode(1)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	d2, stats, err := RecoverFile(base, path)
	if err != nil || stats.Truncated {
		t.Fatalf("second recovery: %v %+v", err, stats)
	}
	if stats.Records != 4 || d2.Alive(1) || !d2.Alive(id) {
		t.Fatalf("second recovery state wrong: %+v alive(1)=%v", stats, d2.Alive(1))
	}
	if v, ok := d2.Overlay().Attr(id, "k"); !ok || v != "v" {
		t.Fatalf("recovered attr = %q,%v", v, ok)
	}
}

// FuzzWALRecover feeds arbitrary bytes to Recover: it must never panic, and
// any (delta, stats) it returns must satisfy the prefix contract
// (stats.Bytes <= input length, records consistent with Bytes > 0). The seed
// corpus covers a valid log, every-offset truncations of its tail record,
// and single-byte corruptions; CI replays the corpus on every run.
func FuzzWALRecover(f *testing.F) {
	base := walFixtureBase()
	log, _ := func() ([]byte, *Delta) {
		var buf bytes.Buffer
		d := NewDelta(base)
		w := NewWAL(&buf, d)
		for _, op := range walFixtureOps() {
			op(w)
		}
		if err := w.Close(); err != nil {
			f.Fatalf("building seed log: %v", err)
		}
		return buf.Bytes(), d
	}()
	f.Add(log)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	last := 0
	for pos := 0; pos+8 <= len(log); {
		n := int(binary.LittleEndian.Uint32(log[pos:]))
		last = pos
		pos += 8 + n
	}
	for cut := last; cut <= len(log); cut++ { // every offset of the final record
		f.Add(append([]byte(nil), log[:cut]...))
	}
	for i := 0; i < len(log); i += 13 {
		bad := append([]byte(nil), log...)
		bad[i] ^= 0x20
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, stats, err := Recover(base, bytes.NewReader(data))
		if err != nil {
			return // mismatched-base rejections are fine; panics are not
		}
		if stats.Bytes > int64(len(data)) || stats.Bytes < 0 {
			t.Fatalf("valid prefix %d outside input of %d bytes", stats.Bytes, len(data))
		}
		if (stats.Records > 0) != (stats.Bytes > 0) {
			t.Fatalf("records %d inconsistent with prefix bytes %d", stats.Records, stats.Bytes)
		}
		if d == nil {
			t.Fatal("nil delta without error")
		}
		_ = fmt.Sprintf("%v", d) // delta must be in a coherent state
	})
}
