package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestShardedEquivalence is the sharding-equivalence property: on random
// multigraphs, the Sharded snapshot must answer every Reader query exactly
// like the Frozen snapshot it was carved from, at every shard count.
func TestShardedEquivalence(t *testing.T) {
	nodeLabels := []string{"a", "b", "c", Wildcard}
	edgeLabels := []string{"e", "f", "g", Wildcard}
	queryEdgeLabels := append(edgeLabels, "absent")
	for seed := int64(0); seed < 6; seed++ {
		n := 5 + rand.New(rand.NewSource(seed)).Intn(20)
		_, f := buildBoth(seed, n, 4*n, nodeLabels, edgeLabels)
		for _, k := range []int{1, 2, 3, 7, n, n + 5} {
			s := f.Sharded(k)
			ctx := fmt.Sprintf("seed=%d n=%d k=%d", seed, n, k)
			if s.NumNodes() != f.NumNodes() || s.NumEdges() != f.NumEdges() || s.Size() != f.Size() {
				t.Fatalf("%s: cardinalities diverge", ctx)
			}
			for v := 0; v < n; v++ {
				id := NodeID(v)
				for _, l := range queryEdgeLabels {
					if !idsEqual(s.OutByLabel(id, l), f.OutByLabel(id, l)) {
						t.Fatalf("%s: OutByLabel(%d,%q) diverges", ctx, v, l)
					}
					if !idsEqual(s.InByLabel(id, l), f.InByLabel(id, l)) {
						t.Fatalf("%s: InByLabel(%d,%q) diverges", ctx, v, l)
					}
					for u := 0; u < n; u++ {
						if s.HasEdge(id, NodeID(u), l) != f.HasEdge(id, NodeID(u), l) {
							t.Fatalf("%s: HasEdge(%d,%d,%q) diverges", ctx, v, u, l)
						}
					}
				}
			}
			for _, l := range append(f.Labels(), "absent", Wildcard) {
				if !idsEqual(s.CandidateNodes(l), f.CandidateNodes(l)) {
					t.Fatalf("%s: CandidateNodes(%q) diverges", ctx, l)
				}
				if s.LabelFrequency(l) != f.LabelFrequency(l) {
					t.Fatalf("%s: LabelFrequency(%q) diverges", ctx, l)
				}
			}
		}
	}
}

// TestShardPartition pins the routing layer: every node is owned by exactly
// one shard, ShardOf agrees with ShardBounds, per-shard candidate lists
// concatenated in shard order reproduce the global ascending candidate
// list, and per-shard edge counts sum to |E|.
func TestShardPartition(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 10 + rand.New(rand.NewSource(seed)).Intn(30)
		_, f := buildBoth(seed, n, 5*n, []string{"a", "b", "c"}, []string{"e", "f"})
		for _, k := range []int{1, 2, 4, 9} {
			s := f.Sharded(k)
			ctx := fmt.Sprintf("seed=%d n=%d k=%d", seed, n, k)
			if s.ShardCount() < 1 || s.ShardCount() > k {
				t.Fatalf("%s: ShardCount=%d out of range", ctx, s.ShardCount())
			}
			owned := make([]int, n)
			edges := 0
			for i := 0; i < s.ShardCount(); i++ {
				sh := s.Shard(i)
				lo, hi := s.ShardBounds(i)
				if sh.Lo() != lo || sh.Hi() != hi {
					t.Fatalf("%s: shard %d bounds mismatch", ctx, i)
				}
				for v := lo; v < hi; v++ {
					owned[v]++
					if s.ShardOf(v) != i {
						t.Fatalf("%s: ShardOf(%d)=%d, owner is %d", ctx, v, s.ShardOf(v), i)
					}
				}
				edges += sh.NumEdges()
			}
			for v, c := range owned {
				if c != 1 {
					t.Fatalf("%s: node %d owned by %d shards", ctx, v, c)
				}
			}
			if edges != f.NumEdges() {
				t.Fatalf("%s: shard edges sum to %d, want %d", ctx, edges, f.NumEdges())
			}
			for _, l := range append(f.Labels(), Wildcard, "absent") {
				var concat []NodeID
				for i := 0; i < s.ShardCount(); i++ {
					concat = s.Shard(i).AppendCandidates(concat, l)
				}
				if !idsEqual(concat, f.CandidateNodes(l)) {
					t.Fatalf("%s: per-shard candidates for %q concat to %v, want %v",
						ctx, l, concat, f.CandidateNodes(l))
				}
			}
		}
	}
}

// TestShardFrontierCounts pins the frontier accounting against a brute
// count over the raw edges.
func TestShardFrontierCounts(t *testing.T) {
	g, f := buildBoth(3, 25, 120, []string{"a", "b"}, []string{"e", "f"})
	for _, k := range []int{2, 3, 5} {
		s := f.Sharded(k)
		for i := 0; i < s.ShardCount(); i++ {
			lo, hi := s.ShardBounds(i)
			wantOut, wantIn := 0, 0
			for v := 0; v < g.NumNodes(); v++ {
				for _, e := range f.Out(NodeID(v)) {
					if e.From >= lo && e.From < hi && (e.To < lo || e.To >= hi) {
						wantOut++
					}
					if e.To >= lo && e.To < hi && (e.From < lo || e.From >= hi) {
						wantIn++
					}
				}
			}
			gotOut, gotIn := s.FrontierEdges(i)
			if gotOut != wantOut || gotIn != wantIn {
				t.Fatalf("k=%d shard %d: frontier (%d,%d), want (%d,%d)", k, i, gotOut, gotIn, wantOut, wantIn)
			}
		}
	}
}

// TestShardReaderRestriction pins the Shard Reader semantics: owned nodes
// answer exactly like the flat snapshot, unowned nodes read as edge-less,
// and candidate enumeration stays within the owned range.
func TestShardReaderRestriction(t *testing.T) {
	_, f := buildBoth(11, 30, 150, []string{"a", "b", "c"}, []string{"e", "f"})
	s := f.Sharded(3)
	for i := 0; i < s.ShardCount(); i++ {
		sh := s.Shard(i)
		lo, hi := sh.Lo(), sh.Hi()
		for v := NodeID(0); v < NodeID(f.NumNodes()); v++ {
			for _, l := range []string{"e", "f", Wildcard} {
				got := sh.OutByLabel(v, l)
				if v >= lo && v < hi {
					if !idsEqual(got, f.OutByLabel(v, l)) {
						t.Fatalf("shard %d: owned OutByLabel(%d,%q) diverges", i, v, l)
					}
				} else if len(got) != 0 {
					t.Fatalf("shard %d: unowned node %d has adjacency %v", i, v, got)
				}
			}
			// Node metadata stays globally readable.
			if sh.Label(v) != f.Label(v) {
				t.Fatalf("shard %d: Label(%d) diverges", i, v)
			}
		}
		for _, l := range []string{"a", "b", "c", Wildcard} {
			for _, v := range sh.CandidateNodes(l) {
				if v < lo || v >= hi {
					t.Fatalf("shard %d: candidate %d outside [%d,%d)", i, v, lo, hi)
				}
			}
			if sh.LabelFrequency(l) != len(sh.CandidateNodes(l)) {
				t.Fatalf("shard %d: LabelFrequency(%q) disagrees with CandidateNodes", i, l)
			}
		}
	}
}

// TestShardedDensestShard pins the placement probe the pivot heuristic
// uses: it must return the shard whose owned candidate count is maximal.
func TestShardedDensestShard(t *testing.T) {
	b := NewBuilder(0)
	// 8 nodes: shard 0 gets 3 "a", shard 1 gets 1 "a" and 3 "b".
	for _, l := range []string{"a", "a", "a", "c", "a", "b", "b", "b"} {
		b.AddNode(l)
	}
	s := b.FreezeSharded(2)
	if sh, c := s.DensestShard("a"); sh != 0 || c != 3 {
		t.Fatalf(`DensestShard("a") = (%d,%d), want (0,3)`, sh, c)
	}
	if sh, c := s.DensestShard("b"); sh != 1 || c != 3 {
		t.Fatalf(`DensestShard("b") = (%d,%d), want (1,3)`, sh, c)
	}
	if _, c := s.DensestShard("absent"); c != 0 {
		t.Fatalf(`DensestShard("absent") count = %d, want 0`, c)
	}
	if sh, c := s.DensestShard(Wildcard); sh != 0 || c != 4 {
		t.Fatalf("DensestShard(wildcard) = (%d,%d), want (0,4)", sh, c)
	}
}

// TestShardedClamping pins the degenerate shapes: k below 1, k above the
// node count, and the empty graph.
func TestShardedClamping(t *testing.T) {
	_, f := buildBoth(5, 7, 20, []string{"a"}, []string{"e"})
	if got := f.Sharded(0).ShardCount(); got != 1 {
		t.Fatalf("k=0 clamped to %d shards, want 1", got)
	}
	if got := f.Sharded(100).ShardCount(); got != 7 {
		t.Fatalf("k=100 on 7 nodes gave %d shards, want 7", got)
	}
	empty := NewBuilder(0).FreezeSharded(4)
	if empty.ShardCount() != 1 || empty.NumNodes() != 0 {
		t.Fatalf("empty graph sharded oddly: K=%d V=%d", empty.ShardCount(), empty.NumNodes())
	}
	if DefaultShardCount(0) != 1 {
		t.Fatal("DefaultShardCount(0) must be 1")
	}
	if DefaultShardCount(1<<20) < 1 {
		t.Fatal("DefaultShardCount must be positive")
	}
}
