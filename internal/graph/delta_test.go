package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// applyRandomOps drives the same random update stream into the mutable
// mirror and the delta: node adds, edge adds/removes, attribute rewrites and
// node removals, weighted so every op kind fires. Both sides see identical
// arguments, so afterwards mirror and overlay must agree on every query.
func applyRandomOps(rng *rand.Rand, mirror *Graph, d *Delta, ops int, nodeLabels, edgeLabels []string) {
	alive := func() (NodeID, bool) {
		for try := 0; try < 20; try++ {
			v := NodeID(rng.Intn(mirror.NumNodes()))
			if mirror.Alive(v) {
				return v, true
			}
		}
		return 0, false
	}
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 15:
			l := nodeLabels[rng.Intn(len(nodeLabels))]
			mv := mirror.AddNode(l)
			dv := d.AddNode(l)
			if mv != dv {
				panic(fmt.Sprintf("ID drift: mirror %d vs delta %d", mv, dv))
			}
		case r < 50:
			from, ok1 := alive()
			to, ok2 := alive()
			if !ok1 || !ok2 {
				continue
			}
			l := edgeLabels[rng.Intn(len(edgeLabels))]
			mirror.AddEdge(from, to, l)
			d.AddEdge(from, to, l)
		case r < 70:
			v, ok := alive()
			if !ok {
				continue
			}
			es := mirror.Out(v)
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			mirror.RemoveEdge(e.From, e.To, e.Label)
			d.RemoveEdge(e.From, e.To, e.Label)
		case r < 85:
			v, ok := alive()
			if !ok {
				continue
			}
			a, val := fmt.Sprintf("a%d", rng.Intn(3)), fmt.Sprintf("u%d", rng.Intn(4))
			mirror.SetAttr(v, a, val)
			d.SetAttr(v, a, val)
		default:
			v, ok := alive()
			if !ok {
				continue
			}
			mirror.RemoveNode(v)
			d.RemoveNode(v)
		}
	}
}

// sortedEdges canonicalizes an edge slice for multiset comparison.
func sortedEdges(es []Edge) []Edge {
	out := append([]Edge(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	return out
}

func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkReaderEquivalence compares got against want on every Reader query,
// by label *name* (interned IDs deliberately do not transfer across
// representations).
func checkReaderEquivalence(t *testing.T, ctx string, want, got Reader, nodeLabels, edgeLabels []string) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() || got.Size() != want.Size() {
		t.Fatalf("%s: cardinalities diverge: V=%d/%d E=%d/%d |G|=%d/%d", ctx,
			got.NumNodes(), want.NumNodes(), got.NumEdges(), want.NumEdges(), got.Size(), want.Size())
	}
	n := want.NumNodes()
	queryEdgeLabels := append(append([]string(nil), edgeLabels...), Wildcard, "absent")
	for v := 0; v < n; v++ {
		id := NodeID(v)
		if got.Label(id) != want.Label(id) {
			t.Fatalf("%s: Label(%d) = %q, want %q", ctx, v, got.Label(id), want.Label(id))
		}
		wa, ga := want.Attrs(id), got.Attrs(id)
		if len(wa) != len(ga) {
			t.Fatalf("%s: Attrs(%d) = %v, want %v", ctx, v, ga, wa)
		}
		for k, val := range wa {
			if gv, ok := got.Attr(id, k); !ok || gv != val {
				t.Fatalf("%s: Attr(%d,%q) = %q,%v want %q", ctx, v, k, gv, ok, val)
			}
		}
		if !edgesEqual(sortedEdges(got.Out(id)), sortedEdges(want.Out(id))) {
			t.Fatalf("%s: Out(%d) diverges:\n got %v\nwant %v", ctx, v, sortedEdges(got.Out(id)), sortedEdges(want.Out(id)))
		}
		if !edgesEqual(sortedEdges(got.In(id)), sortedEdges(want.In(id))) {
			t.Fatalf("%s: In(%d) diverges", ctx, v)
		}
		for _, l := range queryEdgeLabels {
			if !idsEqual(got.OutByLabel(id, l), want.OutByLabel(id, l)) {
				t.Fatalf("%s: OutByLabel(%d,%q) = %v, want %v", ctx, v, l, got.OutByLabel(id, l), want.OutByLabel(id, l))
			}
			if !idsEqual(got.InByLabel(id, l), want.InByLabel(id, l)) {
				t.Fatalf("%s: InByLabel(%d,%q) = %v, want %v", ctx, v, l, got.InByLabel(id, l), want.InByLabel(id, l))
			}
			for u := 0; u < n; u++ {
				if got.HasEdge(id, NodeID(u), l) != want.HasEdge(id, NodeID(u), l) {
					t.Fatalf("%s: HasEdge(%d,%d,%q) = %v, want %v", ctx, v, u, l,
						got.HasEdge(id, NodeID(u), l), want.HasEdge(id, NodeID(u), l))
				}
			}
		}
		for d := 1; d <= 2; d++ {
			wn, gn := want.Neighborhood(id, d), got.Neighborhood(id, d)
			if len(wn) != len(gn) {
				t.Fatalf("%s: Neighborhood(%d,%d) sizes %d vs %d", ctx, v, d, len(gn), len(wn))
			}
			for u := range wn {
				if !gn[u] {
					t.Fatalf("%s: Neighborhood(%d,%d) missing %d", ctx, v, d, u)
				}
			}
		}
	}
	for _, l := range append(append([]string(nil), nodeLabels...), Wildcard, "absent") {
		if !idsEqual(got.CandidateNodes(l), want.CandidateNodes(l)) {
			t.Fatalf("%s: CandidateNodes(%q) = %v, want %v", ctx, l, got.CandidateNodes(l), want.CandidateNodes(l))
		}
		if got.LabelFrequency(l) != want.LabelFrequency(l) {
			t.Fatalf("%s: LabelFrequency(%q) = %d, want %d", ctx, l, got.LabelFrequency(l), want.LabelFrequency(l))
		}
		if l != Wildcard && !idsEqual(got.NodesByLabel(l), want.NodesByLabel(l)) {
			t.Fatalf("%s: NodesByLabel(%q) diverges", ctx, l)
		}
	}
	for _, sig := range []Signature{{}, {Out: []string{edgeLabels[0]}}, {In: []string{edgeLabels[0], Wildcard}}, {Out: []string{"absent"}}} {
		for v := 0; v < n; v++ {
			if got.Covers(NodeID(v), sig) != want.Covers(NodeID(v), sig) {
				t.Fatalf("%s: Covers(%d,%v) diverges", ctx, v, sig)
			}
		}
	}
}

// TestOverlayEquivalenceRandom is the overlay-equivalence property: after
// any update stream, the Overlay over (base Frozen + Delta) answers every
// Reader query exactly like a mutable Graph that applied the same stream,
// and Refreeze produces a snapshot equal to a from-scratch Freeze of the
// final state. A second round re-runs the property with the refrozen
// snapshot as the base, covering tombstoned and extended bases.
func TestOverlayEquivalenceRandom(t *testing.T) {
	nodeLabels := []string{"a", "b", "c", Wildcard}
	edgeLabels := []string{"e", "f", "g", Wildcard}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(15)
		mirror, base := buildBoth(seed*31+7, n, 4*n, nodeLabels, edgeLabels)
		d := NewDelta(base)
		applyRandomOps(rng, mirror, d, 2+rng.Intn(3*n), nodeLabels, edgeLabels)

		ctx := fmt.Sprintf("seed=%d n=%d delta=%v", seed, n, d)
		overlay := d.Overlay()
		checkReaderEquivalence(t, ctx+" overlay", mirror, overlay, nodeLabels, edgeLabels)

		refrozen := base.Refreeze(d)
		checkReaderEquivalence(t, ctx+" refrozen", mirror, refrozen, nodeLabels, edgeLabels)
		scratch := mirror.Frozen()
		checkReaderEquivalence(t, ctx+" refrozen-vs-scratch", scratch, refrozen, nodeLabels, edgeLabels)

		// Round two: the refrozen snapshot (tombstones, extended ID space)
		// becomes the base of a fresh delta.
		d2 := NewDelta(refrozen)
		applyRandomOps(rng, mirror, d2, 2+rng.Intn(2*n), nodeLabels, edgeLabels)
		ctx2 := fmt.Sprintf("%s round2 delta=%v", ctx, d2)
		checkReaderEquivalence(t, ctx2+" overlay", mirror, d2.Overlay(), nodeLabels, edgeLabels)
		checkReaderEquivalence(t, ctx2+" refrozen", mirror, refrozen.Refreeze(d2), nodeLabels, edgeLabels)
	}
}

// TestShardedRefreeze pins the dirty-shard path: Sharded.Refreeze must
// produce the same partition accounting as carving the refrozen snapshot
// from scratch at the same bounds, while answering whole-graph queries like
// the refrozen flat snapshot.
func TestShardedRefreeze(t *testing.T) {
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"e", "f"}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		n := 12 + rng.Intn(20)
		mirror, base := buildBoth(seed*17+3, n, 5*n, nodeLabels, edgeLabels)
		for _, k := range []int{1, 3, 5} {
			s := base.Sharded(k)
			d := NewDelta(base)
			applyRandomOps(rng, mirror.Clone(), d, 1+rng.Intn(n), nodeLabels, edgeLabels)
			ns := s.Refreeze(d)
			nf := base.Refreeze(d)
			ctx := fmt.Sprintf("seed=%d n=%d k=%d delta=%v", seed, n, k, d)
			if ns.Frozen().NumEdges() != nf.NumEdges() || ns.NumNodes() != nf.NumNodes() {
				t.Fatalf("%s: refrozen sharded cardinalities diverge", ctx)
			}
			edges := 0
			for i := 0; i < ns.ShardCount(); i++ {
				lo, hi := ns.ShardBounds(i)
				want := carveShard(nf, lo, hi)
				got := ns.shards[i]
				if got.edges != want.edges || got.frontierOut != want.frontierOut ||
					got.frontierIn != want.frontierIn || got.dead != want.dead {
					t.Fatalf("%s: shard %d accounting (%d,%d,%d,%d), want (%d,%d,%d,%d)", ctx, i,
						got.edges, got.frontierOut, got.frontierIn, got.dead,
						want.edges, want.frontierOut, want.frontierIn, want.dead)
				}
				edges += got.edges
			}
			if edges != nf.NumEdges() {
				t.Fatalf("%s: shard edges sum to %d, want %d", ctx, edges, nf.NumEdges())
			}
			for _, l := range append(append([]string(nil), nodeLabels...), Wildcard) {
				if !idsEqual(ns.CandidateNodes(l), nf.CandidateNodes(l)) {
					t.Fatalf("%s: CandidateNodes(%q) diverges", ctx, l)
				}
				var concat []NodeID
				for i := 0; i < ns.ShardCount(); i++ {
					concat = ns.Shard(i).AppendCandidates(concat, l)
				}
				if !idsEqual(concat, nf.CandidateNodes(l)) {
					t.Fatalf("%s: per-shard candidates for %q diverge", ctx, l)
				}
			}
		}
	}
}

// TestDeltaSemantics pins the final-state op algebra and the guard rails.
func TestDeltaSemantics(t *testing.T) {
	b := NewBuilder(0)
	x := b.AddNode("a")
	y := b.AddNode("b")
	z := b.AddNode("a")
	b.AddEdge(x, y, "e")
	b.AddEdge(y, z, "f")
	b.SetAttr(x, "k", "v")
	f := b.Freeze()

	d := NewDelta(f)
	// Idempotent add of an existing base edge is invisible.
	d.AddEdge(x, y, "e")
	if d.Len() != 0 {
		t.Fatalf("re-adding a base edge recorded %d ops", d.Len())
	}
	// Remove then re-add cancels.
	d.RemoveEdge(x, y, "e")
	d.AddEdge(x, y, "e")
	if d.Len() != 0 {
		t.Fatalf("remove+re-add left %d ops", d.Len())
	}
	// Add then remove cancels (new edge, new label).
	d.AddEdge(z, x, "new")
	d.RemoveEdge(z, x, "new")
	if len(d.addedSet) != 0 || len(d.removedSet) != 0 {
		t.Fatal("add+remove of a fresh edge did not cancel")
	}
	// RemoveNode cascades to incident base edges and blocks further use.
	d.RemoveNode(y)
	o := d.Overlay()
	if o.Alive(y) || o.NumEdges() != 0 {
		t.Fatalf("RemoveNode left alive=%v E=%d", o.Alive(y), o.NumEdges())
	}
	if got := o.CandidateNodes("b"); len(got) != 0 {
		t.Fatalf("dead node still a candidate: %v", got)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("AddEdge to dead node", func() { d.AddEdge(x, y, "e") })
	mustPanic("SetAttr on dead node", func() { d.SetAttr(y, "k", "v") })
	// The mutable Graph enforces the same tombstone invariant: a removed
	// node never regains edges or attributes.
	mg := New()
	ga := mg.AddNode("a")
	gb := mg.AddNode("b")
	mg.RemoveNode(gb)
	mustPanic("Graph.AddEdge to dead node", func() { mg.AddEdge(ga, gb, "e") })
	mustPanic("Graph.SetAttr on dead node", func() { mg.SetAttr(gb, "k", "v") })
	mustPanic("stale overlay", func() {
		o2 := d.Overlay()
		d.AddNode("a")
		//gfdlint:allow overlaystale -- this read exercises the staleness panic on purpose
		o2.OutByLabel(x, "e")
	})
	mustPanic("foreign base", func() { NewBuilder(0).Freeze().Refreeze(d) })

	// TouchedNodes covers edge endpoints, attr updates, dead and added nodes.
	d2 := NewDelta(f)
	w := d2.AddNode("c")
	d2.AddEdge(w, x, "e")
	d2.SetAttr(z, "k", "v2")
	got := d2.TouchedNodes()
	want := []NodeID{x, z, w}
	if !idsEqual(got, want) {
		t.Fatalf("TouchedNodes = %v, want %v", got, want)
	}
}

// TestShardedEmptyTailCollapse is the regression test for the degenerate
// shard-count clamp: a non-dividing K used to leave trailing shards owning
// zero nodes; now the tail collapses and every shard owns at least one node.
func TestShardedEmptyTailCollapse(t *testing.T) {
	b := NewBuilder(0)
	for i := 0; i < 10; i++ {
		b.AddNode("a")
	}
	f := b.Freeze()
	for _, k := range []int{-3, 0, 1, 3, 7, 9, 10, 25} {
		s := f.Sharded(k)
		if s.ShardCount() < 1 {
			t.Fatalf("k=%d: no shards", k)
		}
		for i := 0; i < s.ShardCount(); i++ {
			if lo, hi := s.ShardBounds(i); hi <= lo {
				t.Fatalf("k=%d: shard %d is empty [%d,%d)", k, i, lo, hi)
			}
		}
		owned := 0
		for i := 0; i < s.ShardCount(); i++ {
			lo, hi := s.ShardBounds(i)
			owned += int(hi - lo)
			for v := lo; v < hi; v++ {
				if s.ShardOf(v) != i {
					t.Fatalf("k=%d: ShardOf(%d)=%d, owner %d", k, v, s.ShardOf(v), i)
				}
			}
		}
		if owned != 10 {
			t.Fatalf("k=%d: shards own %d nodes, want 10", k, owned)
		}
	}
	// k=9 over 10 nodes is the historical repro: stride 2 covers the space
	// in 5 shards; the 4 trailing empties must be gone.
	if got := f.Sharded(9).ShardCount(); got != 5 {
		t.Fatalf("k=9 over 10 nodes gave %d shards, want 5", got)
	}
}
