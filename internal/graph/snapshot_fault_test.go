package graph

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/graph/faultio"
)

// TestSnapshotWriteFaultEveryOp fails every op of WriteSnapshot's destination
// stream (header write, payload write, with and without a torn half-delivered
// write): the error must surface, and whatever bytes made it out must never
// load as a snapshot — a torn image is detected, not silently accepted.
func TestSnapshotWriteFaultEveryOp(t *testing.T) {
	f := walFixtureBase()

	counting := &faultio.Writer{W: io.Discard, FailAt: -1}
	if err := f.WriteSnapshot(counting); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	if counting.Ops == 0 {
		t.Fatal("counting run saw no destination ops; sweep is vacuous")
	}

	for failAt := 0; failAt < counting.Ops; failAt++ {
		for _, short := range []bool{false, true} {
			var buf bytes.Buffer
			fw := &faultio.Writer{W: &buf, FailAt: failAt, Short: short}
			err := f.WriteSnapshot(fw)
			if !errors.Is(err, faultio.ErrInjected) {
				t.Fatalf("failAt=%d short=%v: WriteSnapshot = %v, want injected fault", failAt, short, err)
			}
			if _, rerr := ReadSnapshot(bytes.NewReader(buf.Bytes())); rerr == nil {
				t.Fatalf("failAt=%d short=%v: torn %d-byte image loaded as a valid snapshot", failAt, short, buf.Len())
			}
		}
	}
}

// TestSnapshotReadFaultEveryByte fails the snapshot read at every byte
// offset of a valid image: ReadSnapshot must return an error wrapping the
// injected fault — never a panic, never a partially-loaded graph.
func TestSnapshotReadFaultEveryByte(t *testing.T) {
	f := walFixtureBase()
	var img bytes.Buffer
	if err := f.WriteSnapshot(&img); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	for limit := 0; limit < img.Len(); limit++ {
		g, err := ReadSnapshot(&faultio.Reader{R: bytes.NewReader(img.Bytes()), Limit: int64(limit)})
		if err == nil {
			t.Fatalf("limit=%d: a mid-image read fault must be an error", limit)
		}
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("limit=%d: error %v does not wrap the injected fault", limit, err)
		}
		if g != nil {
			t.Fatalf("limit=%d: failed load returned a graph", limit)
		}
	}

	// The unfaulted image still round-trips.
	g, err := ReadSnapshot(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatalf("clean load: %v", err)
	}
	checkReaderEquivalence(t, "snapshot after fault sweep", f, g,
		[]string{"a", "b"}, []string{"e", "f"})
}
