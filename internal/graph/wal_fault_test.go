package graph

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph/faultio"
)

// walRecordsAfterOp counts, for each op-stream prefix, how many records the
// log holds (AddNodeWithAttrs logs several), by re-running the stream through
// a scratch WAL with a flush after every op.
func walRecordsAfterOp(t *testing.T, base *Frozen, ops []func(Mutator)) []int {
	t.Helper()
	recAfter := make([]int, len(ops)+1)
	var buf bytes.Buffer
	w := NewWAL(&buf, NewDelta(base))
	for k, op := range ops {
		op(w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		recAfter[k+1] = len(recordBoundaries(t, buf.Bytes())) - 1
	}
	return recAfter
}

// TestWALWriteFaultEveryOp is the write-side crash/fault property: a
// persistent write or fsync failure injected at every op index of the WAL's
// destination stream (bufio flushes and fsyncs, with and without a torn
// half-delivered write) must surface from Close, stay sticky — later ops
// append nothing — and leave a log that recovers a valid record prefix
// covering at least every op a successful Sync acknowledged as durable.
func TestWALWriteFaultEveryOp(t *testing.T) {
	base := walFixtureBase()
	ops := walFixtureOps()
	recAfter := walRecordsAfterOp(t, base, ops)
	totalRecords := recAfter[len(ops)]

	// Count the destination op stream with a never-failing writer.
	counting := &faultio.Writer{W: io.Discard, FailAt: -1}
	cw := NewWAL(counting, NewDelta(base))
	cw.SyncEvery = 3
	for _, op := range ops {
		op(cw)
	}
	if err := cw.Close(); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	if counting.Ops == 0 {
		t.Fatal("counting run saw no destination ops; sweep is vacuous")
	}

	for failAt := 0; failAt < counting.Ops; failAt++ {
		for _, short := range []bool{false, true} {
			var buf bytes.Buffer
			fw := &faultio.Writer{W: &buf, FailAt: failAt, Short: short}
			w := NewWAL(fw, NewDelta(base))
			w.SyncEvery = 3

			// Track the durability floor: after any op acknowledged without
			// error, every batch the SyncEvery=3 policy has fsynced so far
			// (records at multiples of 3) is promised to survive.
			maxDurable := 0
			for k, op := range ops {
				op(w)
				if w.Err() == nil {
					maxDurable = 3 * (recAfter[k+1] / 3)
				}
			}

			errClose := w.Close()
			if !errors.Is(errClose, faultio.ErrInjected) {
				t.Fatalf("failAt=%d short=%v: Close = %v, want injected fault", failAt, short, errClose)
			}
			if !fw.Failed {
				t.Fatalf("failAt=%d short=%v: fault never fired", failAt, short)
			}

			// Sticky: the first error is the error, and nothing written after
			// it may reach the destination.
			if w.Err() == nil {
				t.Fatalf("failAt=%d short=%v: Err nil after failed Close", failAt, short)
			}
			first := w.Err()
			lenAfter, opsAfter := buf.Len(), fw.Ops
			ops[0](w) // mutates only the in-memory delta; the log must not move
			if err := w.Flush(); err != first {
				t.Fatalf("failAt=%d short=%v: Flush after fault = %v, want sticky %v", failAt, short, err, first)
			}
			if err := w.Sync(); err != first {
				t.Fatalf("failAt=%d short=%v: Sync after fault = %v, want sticky %v", failAt, short, err, first)
			}
			if buf.Len() != lenAfter || fw.Ops != opsAfter {
				t.Fatalf("failAt=%d short=%v: ops after the fault reached the destination (%d->%d bytes, %d->%d ops)",
					failAt, short, lenAfter, buf.Len(), opsAfter, fw.Ops)
			}

			// The surviving bytes recover without error to a record prefix at
			// least as long as the acknowledged-durable floor.
			rec, rstats, rerr := Recover(base, bytes.NewReader(buf.Bytes()))
			if rerr != nil {
				t.Fatalf("failAt=%d short=%v: recover after fault: %v", failAt, short, rerr)
			}
			if rstats.Records > totalRecords {
				t.Fatalf("failAt=%d short=%v: recovered %d records, stream has %d", failAt, short, rstats.Records, totalRecords)
			}
			if rstats.Records < maxDurable {
				t.Fatalf("failAt=%d short=%v: recovered %d records, durability floor is %d", failAt, short, rstats.Records, maxDurable)
			}
			if want := opsForRecords(t, base, ops, rstats.Records); want != nil {
				if rec.String() != want.String() || rec.Len() != want.Len() {
					t.Fatalf("failAt=%d short=%v: recovered delta %v, want op prefix %v", failAt, short, rec, want)
				}
			}
		}
	}
}

// TestWALStickyAfterFailedFsync pins the exact failed-fsync sequence end to
// end: the first flush delivers its batch, the fsync behind it fails, the
// error sticks to every later call, no later op reaches the destination, and
// the delivered batch still recovers.
func TestWALStickyAfterFailedFsync(t *testing.T) {
	base := walFixtureBase()
	ops := walFixtureOps()
	var buf bytes.Buffer
	// Destination op 0 is the first batch flush, op 1 its fsync.
	fw := &faultio.Writer{W: &buf, FailAt: 1}
	w := NewWAL(fw, NewDelta(base))
	w.SyncEvery = 3
	for _, op := range ops {
		op(w)
	}
	first := w.Err()
	if !errors.Is(first, faultio.ErrInjected) {
		t.Fatalf("Err after the failed fsync = %v, want injected fault", first)
	}
	if err := w.Close(); err != first {
		t.Fatalf("Close = %v, want the sticky fsync error %v", err, first)
	}
	if err := w.Sync(); err != first {
		t.Fatalf("Sync after Close = %v, want the sticky fsync error %v", err, first)
	}

	// The flushed-but-unacknowledged batch is all that reached the disk, and
	// it recovers cleanly: ops 0..2 each log one record.
	got, stats, err := Recover(base, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Records != 3 || stats.Truncated {
		t.Fatalf("recovered %d records (truncated=%v), want the 3-record first batch", stats.Records, stats.Truncated)
	}
	want := replayPrefix(base, ops, 3)
	if got.String() != want.String() {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

// TestWALRecoverReadFaultEveryByte is the read-side property: an EIO-style
// reader failure at every byte offset of the log must surface as an error —
// not a panic, and not a silent truncation — after replaying exactly the
// records that were fully delivered, with no partially-read record applied.
func TestWALRecoverReadFaultEveryByte(t *testing.T) {
	base := walFixtureBase()
	ops := walFixtureOps()
	log, _ := logOps(t, base, ops)
	bounds := recordBoundaries(t, log)

	recordsBefore := func(cut int) int {
		n := 0
		for n+1 < len(bounds) && bounds[n+1] <= cut {
			n++
		}
		return n
	}
	for limit := 0; limit < len(log); limit++ {
		d, stats, err := Recover(base, &faultio.Reader{R: bytes.NewReader(log), Limit: int64(limit)})
		if err == nil {
			t.Fatalf("limit=%d: a mid-log read fault must be an error, not a truncation", limit)
		}
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("limit=%d: error %v does not wrap the injected fault", limit, err)
		}
		wantRecords := recordsBefore(limit)
		if stats.Records != wantRecords {
			t.Fatalf("limit=%d: replayed %d records before failing, want %d", limit, stats.Records, wantRecords)
		}
		if stats.Bytes != int64(bounds[wantRecords]) {
			t.Fatalf("limit=%d: valid prefix %d, want %d", limit, stats.Bytes, bounds[wantRecords])
		}
		if want := opsForRecords(t, base, ops, wantRecords); want != nil {
			if d.String() != want.String() || d.Len() != want.Len() {
				t.Fatalf("limit=%d: partial record leaked into the delta: %v vs %v", limit, d, want)
			}
		}
	}
}

// faultyLogFile adapts a budgeted faultio.Reader over an opened log file to
// the io.ReadCloser RecoverFile expects from its open seam.
type faultyLogFile struct {
	*faultio.Reader
	f *os.File
}

func (l *faultyLogFile) Close() error { return l.f.Close() }

// TestRecoverFileReadFault swaps RecoverFile's open seam for one that fails
// mid-read at every offset: the error must propagate (no delta returned) and
// the log file must keep its full length — a read fault is not a torn tail,
// so the truncating repair must not fire.
func TestRecoverFileReadFault(t *testing.T) {
	base := walFixtureBase()
	ops := walFixtureOps()
	log, want := logOps(t, base, ops)
	path := filepath.Join(t.TempDir(), "delta.wal")
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Fatal(err)
	}

	orig := walOpenForRecover
	defer func() { walOpenForRecover = orig }()
	var limit int64
	walOpenForRecover = func(p string) (io.ReadCloser, error) {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		return &faultyLogFile{Reader: &faultio.Reader{R: f, Limit: limit}, f: f}, nil
	}

	for limit = 0; limit < int64(len(log)); limit++ {
		d, _, err := RecoverFile(base, path)
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("limit=%d: RecoverFile = %v, want injected fault", limit, err)
		}
		if d != nil {
			t.Fatalf("limit=%d: failed recovery returned a delta", limit)
		}
		fi, serr := os.Stat(path)
		if serr != nil {
			t.Fatal(serr)
		}
		if fi.Size() != int64(len(log)) {
			t.Fatalf("limit=%d: read fault truncated the log to %d of %d bytes", limit, fi.Size(), len(log))
		}
	}

	// With the real opener back, the untouched file recovers in full.
	walOpenForRecover = orig
	got, stats, err := RecoverFile(base, path)
	if err != nil {
		t.Fatalf("recovery after restoring the opener: %v", err)
	}
	if stats.Truncated || stats.Bytes != int64(len(log)) {
		t.Fatalf("full recovery stats %+v, want the whole %d-byte log", stats, len(log))
	}
	if got.String() != want.String() {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}
