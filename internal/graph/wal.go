// Write-ahead delta log. A WAL fronts a Delta with the same update API
// (graph.Mutator) and appends one record per applied op, so the in-memory
// overlay and the on-disk log advance together: snapshot the base once
// (snapshot.go), stream updates through the WAL, and after a crash Recover
// replays the log over the reloaded base to rebuild the exact Delta. Records
// are length-prefixed and CRC-checked; recovery replays the longest valid
// prefix and treats a torn tail record — the normal residue of a crash
// mid-append — as truncation, not an error. Appends are buffered and
// fsync-batched: every SyncEvery records the buffer is flushed and, when the
// destination supports it, fsynced, bounding the ops a crash can lose
// without paying a sync per op.
//
// Record layout (little-endian):
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//	payload := op byte, then the op's fields (uvarint node IDs,
//	           uvarint-length-prefixed strings)
package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Mutator is the update API shared by *Delta and *WAL: the Sink build calls
// plus removals and the liveness/label probes update generators steer by.
// Code written against Mutator (gen.MutateDelta, dataset.SampleDeltaInto)
// can populate a bare in-memory delta or a WAL-backed durable one without
// knowing which it has.
type Mutator interface {
	Sink
	RemoveEdge(from, to NodeID, label string)
	RemoveNode(v NodeID)
	Alive(v NodeID) bool
	Label(v NodeID) string
	// Base returns the snapshot the update batch is bound to.
	Base() *Frozen
}

var (
	_ Mutator = (*Delta)(nil)
	_ Mutator = (*WAL)(nil)
)

// WAL op codes. Values are part of the on-disk format; append only.
const (
	walAddNode    = 1
	walSetAttr    = 2
	walAddEdge    = 3
	walRemoveEdge = 4
	walRemoveNode = 5
)

// DefaultSyncEvery is the fsync batch size: at most this many acknowledged
// ops are lost by a crash between syncs.
const DefaultSyncEvery = 64

// maxWALRecord bounds a record payload. No op encodes anywhere near this;
// a longer length prefix in a log marks the tail as torn during recovery
// and is rejected at append time.
const maxWALRecord = 1 << 24

// WAL is a write-ahead log bound to a Delta: every mutator call applies to
// the delta first (invalid ops panic there, before anything is logged), then
// appends a record. Like the Delta it fronts, a WAL is not safe for
// concurrent use. I/O errors are sticky: the first one is kept, later
// appends stop writing, and Err/Sync/Close report it — callers running
// durable ingest check one of those at their commit points.
type WAL struct {
	d       *Delta
	bw      *bufio.Writer
	f       interface{ Sync() error } // non-nil when the destination can fsync
	closer  io.Closer                 // non-nil when Close should close the destination
	err     error
	pending int
	scratch []byte

	// SyncEvery is the number of records between fsync batches (default
	// DefaultSyncEvery; 1 syncs every record). Changing it mid-stream is
	// allowed and takes effect at the next append.
	SyncEvery int
}

// NewWAL returns a log over an arbitrary writer appending ops applied to d.
// When w implements `Sync() error` (an *os.File does), the fsync batching is
// active; otherwise batches only flush the buffer.
func NewWAL(w io.Writer, d *Delta) *WAL {
	l := &WAL{d: d, bw: bufio.NewWriter(w), SyncEvery: DefaultSyncEvery}
	if s, ok := w.(interface{ Sync() error }); ok {
		l.f = s
	}
	return l
}

// OpenWAL opens (creating if absent) the log file in append mode and binds
// it to d. Appending to a recovered log is valid only after the torn tail,
// if any, has been dropped — RecoverFile does that — since records after a
// corrupt one are unreachable to every future recovery.
func OpenWAL(path string, d *Delta) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("graph: wal: %w", err)
	}
	l := NewWAL(f, d)
	l.closer = f
	return l, nil
}

// Delta returns the delta the log fronts.
func (l *WAL) Delta() *Delta { return l.d }

// Base returns the snapshot the fronted delta is bound to.
func (l *WAL) Base() *Frozen { return l.d.Base() }

// Err returns the first I/O error the log hit, if any.
func (l *WAL) Err() error { return l.err }

// record appends one op record and runs the fsync batch policy.
func (l *WAL) record(payload []byte) {
	if l.err != nil {
		return
	}
	if len(payload) > maxWALRecord {
		l.err = fmt.Errorf("graph: wal: op record of %d bytes exceeds limit", len(payload))
		return
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.bw.Write(hdr[:]); err != nil {
		l.err = fmt.Errorf("graph: wal: append: %w", err)
		return
	}
	if _, err := l.bw.Write(payload); err != nil {
		l.err = fmt.Errorf("graph: wal: append: %w", err)
		return
	}
	l.pending++
	every := l.SyncEvery
	if every <= 0 {
		every = DefaultSyncEvery
	}
	if l.pending >= every {
		l.err = l.Sync()
	}
}

// op encodes a record payload into the scratch buffer: the op byte, then
// uvarint node IDs, then uvarint-length-prefixed strings.
func (l *WAL) op(code byte, ids []NodeID, strs ...string) []byte {
	b := append(l.scratch[:0], code)
	for _, id := range ids {
		b = binary.AppendUvarint(b, uint64(id))
	}
	for _, s := range strs {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	l.scratch = b
	return b
}

// AddNode appends a node to the delta and logs it; see Delta.AddNode.
func (l *WAL) AddNode(label string) NodeID {
	id := l.d.AddNode(label)
	l.record(l.op(walAddNode, nil, label))
	return id
}

// AddNodeWithAttrs appends a node carrying the given attribute tuple. It
// logs as an AddNode plus one SetAttr per attribute, in sorted key order so
// identical tuples produce identical logs.
func (l *WAL) AddNodeWithAttrs(label string, attrs map[string]string) NodeID {
	id := l.AddNode(label)
	for _, k := range sortedKeys(attrs) {
		l.SetAttr(id, k, attrs[k])
	}
	return id
}

// SetAttr sets an attribute on the delta and logs it; see Delta.SetAttr.
func (l *WAL) SetAttr(v NodeID, attr, value string) {
	l.d.SetAttr(v, attr, value)
	l.record(l.op(walSetAttr, []NodeID{v}, attr, value))
}

// AddEdge inserts an edge into the delta and logs it; see Delta.AddEdge.
func (l *WAL) AddEdge(from, to NodeID, label string) {
	l.d.AddEdge(from, to, label)
	l.record(l.op(walAddEdge, []NodeID{from, to}, label))
}

// RemoveEdge removes an edge from the delta and logs it; see
// Delta.RemoveEdge. No-op removals are logged too — replay reproduces the
// same no-op, and skipping them would make the log's length diverge from the
// op stream the caller saw acknowledged.
func (l *WAL) RemoveEdge(from, to NodeID, label string) {
	l.d.RemoveEdge(from, to, label)
	l.record(l.op(walRemoveEdge, []NodeID{from, to}, label))
}

// RemoveNode tombstones a node in the delta and logs it; see
// Delta.RemoveNode. One record covers the whole cascade (incident-edge
// removal is deterministic from the base plus the log prefix).
func (l *WAL) RemoveNode(v NodeID) {
	l.d.RemoveNode(v)
	l.record(l.op(walRemoveNode, []NodeID{v}))
}

// NumNodes returns the fronted delta's ID-space size.
func (l *WAL) NumNodes() int { return l.d.NumNodes() }

// Alive reports liveness in the fronted delta.
func (l *WAL) Alive(v NodeID) bool { return l.d.Alive(v) }

// Label returns node v's label in the fronted delta.
func (l *WAL) Label(v NodeID) string { return l.d.Label(v) }

// Flush pushes buffered records to the destination without fsyncing.
func (l *WAL) Flush() error {
	if l.err != nil {
		return l.err
	}
	if err := l.bw.Flush(); err != nil {
		l.err = fmt.Errorf("graph: wal: flush: %w", err)
	}
	return l.err
}

// Sync flushes buffered records and fsyncs the destination when it can,
// making every acknowledged op durable.
func (l *WAL) Sync() error {
	if err := l.Flush(); err != nil {
		return err
	}
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("graph: wal: fsync: %w", err)
			return l.err
		}
	}
	l.pending = 0
	return nil
}

// Close syncs and, for OpenWAL logs, closes the file. It returns the first
// error the log hit.
func (l *WAL) Close() error {
	err := l.Sync()
	if l.closer != nil {
		if cerr := l.closer.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("graph: wal: close: %w", cerr)
			l.err = err
		}
		l.closer = nil
	}
	return err
}

// RecoverStats describes what Recover replayed.
type RecoverStats struct {
	// Records is the number of ops replayed.
	Records int
	// Bytes is the length of the valid log prefix; everything after it is
	// torn or corrupt and should be truncated before appending resumes.
	Bytes int64
	// Truncated reports whether anything followed the valid prefix.
	Truncated bool
}

// Recover replays a delta log over its base snapshot, rebuilding the
// in-memory Delta. It applies the longest valid prefix: a torn tail record —
// short header, short payload, or checksum mismatch — ends the replay with
// Truncated set rather than an error, because that is exactly the state a
// crash mid-append leaves behind. An error is returned only when the log
// cannot belong to this base (a checksummed record references nodes the
// replayed state does not have) or the reader itself fails.
func Recover(base *Frozen, r io.Reader) (*Delta, RecoverStats, error) {
	d := NewDelta(base)
	stats, err := replay(d, r)
	return d, stats, err
}

func replay(d *Delta, r io.Reader) (RecoverStats, error) {
	var stats RecoverStats
	br := bufio.NewReader(r)
	var payload []byte
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return stats, nil // clean end on a record boundary
			}
			if err == io.ErrUnexpectedEOF {
				stats.Truncated = true
				return stats, nil // torn header
			}
			return stats, fmt.Errorf("graph: wal: read: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n > maxWALRecord {
			stats.Truncated = true // length prefix is garbage: corrupt tail
			return stats, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				stats.Truncated = true // torn payload
				return stats, nil
			}
			return stats, fmt.Errorf("graph: wal: read: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
			stats.Truncated = true // corrupt record: prefix ends here
			return stats, nil
		}
		if err := applyRecord(d, payload, stats.Records); err != nil {
			return stats, err
		}
		stats.Records++
		stats.Bytes += int64(len(hdr)) + int64(n)
	}
}

// walDec decodes one record payload.
type walDec struct {
	b  []byte
	ok bool
}

func (d *walDec) id() NodeID {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.ok = false
		return 0
	}
	d.b = d.b[n:]
	return NodeID(v)
}

func (d *walDec) str() string {
	n, w := binary.Uvarint(d.b)
	if w <= 0 || n > uint64(len(d.b)-w) {
		d.ok = false
		return ""
	}
	s := string(d.b[w : w+int(n)])
	d.b = d.b[w+int(n):]
	return s
}

// applyRecord replays one checksummed record. The validity probes mirror the
// Delta mutators' panic conditions exactly, so a log replayed over the wrong
// base fails with a diagnostic instead of a panic.
func applyRecord(d *Delta, payload []byte, idx int) error {
	bad := func(why string) error {
		return fmt.Errorf("graph: wal: record %d: %s (log does not match this base?)", idx, why)
	}
	if len(payload) == 0 {
		return bad("empty record")
	}
	dec := &walDec{b: payload[1:], ok: true}
	switch payload[0] {
	case walAddNode:
		label := dec.str()
		if !dec.ok {
			return bad("malformed AddNode")
		}
		d.AddNode(label)
	case walSetAttr:
		v := dec.id()
		attr, value := dec.str(), dec.str()
		if !dec.ok {
			return bad("malformed SetAttr")
		}
		if !d.Alive(v) {
			return bad(fmt.Sprintf("SetAttr on invalid or removed node %d", v))
		}
		d.SetAttr(v, attr, value)
	case walAddEdge:
		from, to := dec.id(), dec.id()
		label := dec.str()
		if !dec.ok {
			return bad("malformed AddEdge")
		}
		if !d.Alive(from) || !d.Alive(to) {
			return bad(fmt.Sprintf("AddEdge with invalid or removed endpoint %d->%d", from, to))
		}
		d.AddEdge(from, to, label)
	case walRemoveEdge:
		from, to := dec.id(), dec.id()
		label := dec.str()
		if !dec.ok {
			return bad("malformed RemoveEdge")
		}
		if !d.valid(from) || !d.valid(to) {
			return bad(fmt.Sprintf("RemoveEdge with invalid endpoint %d->%d", from, to))
		}
		d.RemoveEdge(from, to, label)
	case walRemoveNode:
		v := dec.id()
		if !dec.ok {
			return bad("malformed RemoveNode")
		}
		if !d.valid(v) {
			return bad(fmt.Sprintf("RemoveNode on invalid node %d", v))
		}
		d.RemoveNode(v)
	default:
		return bad(fmt.Sprintf("unknown op %d", payload[0]))
	}
	if len(dec.b) != 0 {
		return bad("trailing bytes in record")
	}
	return nil
}

// walOpenForRecover is RecoverFile's file-open seam. Production code opens
// the log with os.Open; the fault-injection tests swap it for a wrapper
// that injects read errors (EIO mid-record), proving such a failure
// surfaces as an error — never as a panic, and never as a truncating
// "repair" that would cut records a healthy retry could still read.
var walOpenForRecover = func(path string) (io.ReadCloser, error) { return os.Open(path) }

// RecoverFile replays the log file over the base and, when the log carries a
// torn or corrupt tail, truncates the file to the valid prefix so a new WAL
// can append after it. A missing file recovers to an empty delta (nothing
// was ever logged).
func RecoverFile(base *Frozen, path string) (*Delta, RecoverStats, error) {
	f, err := walOpenForRecover(path)
	if os.IsNotExist(err) {
		return NewDelta(base), RecoverStats{}, nil
	}
	if err != nil {
		return nil, RecoverStats{}, fmt.Errorf("graph: wal: %w", err)
	}
	d, stats, rerr := Recover(base, f)
	f.Close()
	if rerr != nil {
		return nil, stats, rerr
	}
	if stats.Truncated {
		if err := os.Truncate(path, stats.Bytes); err != nil {
			return nil, stats, fmt.Errorf("graph: wal: truncate torn tail: %w", err)
		}
	}
	return d, stats, nil
}
