package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"
)

// snapshotFixture builds a snapshot that exercises every serialized section:
// attrs, parallel edge labels, an update round with removals so the loaded
// image carries tombstones and an extended ID space, plus the mutable mirror
// of the same state.
func snapshotFixture(t *testing.T, seed int64) (*Graph, *Frozen) {
	t.Helper()
	nodeLabels := []string{"a", "b", "c", Wildcard}
	edgeLabels := []string{"e", "f", "g", Wildcard}
	rng := rand.New(rand.NewSource(seed))
	n := 8 + rng.Intn(15)
	mirror, base := buildBoth(seed*31+7, n, 4*n, nodeLabels, edgeLabels)
	d := NewDelta(base)
	applyRandomOps(rng, mirror, d, 2+rng.Intn(3*n), nodeLabels, edgeLabels)
	return mirror, base.Refreeze(d)
}

// TestSnapshotRoundTripRandom is the persistence property: for random
// snapshots (dead slots and attrs included), ReadSnapshot(WriteSnapshot(f))
// answers every Reader query exactly like f, agrees on the tombstone view,
// and behaves identically under a subsequent Refreeze.
func TestSnapshotRoundTripRandom(t *testing.T) {
	nodeLabels := []string{"a", "b", "c", Wildcard}
	edgeLabels := []string{"e", "f", "g", Wildcard}
	for seed := int64(0); seed < 8; seed++ {
		mirror, f := snapshotFixture(t, seed)
		var buf bytes.Buffer
		if err := f.WriteSnapshot(&buf); err != nil {
			t.Fatalf("seed=%d: WriteSnapshot: %v", seed, err)
		}
		loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed=%d: ReadSnapshot: %v", seed, err)
		}
		ctx := fmt.Sprintf("seed=%d", seed)
		checkReaderEquivalence(t, ctx+" loaded", f, loaded, nodeLabels, edgeLabels)
		if loaded.LiveNodes() != f.LiveNodes() || loaded.DeadFraction() != f.DeadFraction() {
			t.Fatalf("%s: tombstone accounting diverges: live %d/%d", ctx, loaded.LiveNodes(), f.LiveNodes())
		}
		for v := 0; v < f.NumNodes(); v++ {
			if loaded.Alive(NodeID(v)) != f.Alive(NodeID(v)) {
				t.Fatalf("%s: Alive(%d) diverges", ctx, v)
			}
		}

		// The loaded copy must be a full peer: drive the identical update
		// stream into a delta over each and compare the refrozen results.
		rngA := rand.New(rand.NewSource(seed + 500))
		rngB := rand.New(rand.NewSource(seed + 500))
		dOrig, dLoaded := NewDelta(f), NewDelta(loaded)
		mirrorB := mirror.Clone() // identical streams need identical mirrors
		applyRandomOps(rngA, mirror, dOrig, 10, nodeLabels, edgeLabels)
		applyRandomOps(rngB, mirrorB, dLoaded, 10, nodeLabels, edgeLabels)
		checkReaderEquivalence(t, ctx+" refrozen-loaded",
			f.Refreeze(dOrig), loaded.Refreeze(dLoaded), nodeLabels, edgeLabels)
	}
}

// TestSnapshotDeterministic pins the image bytes: the same snapshot always
// serializes identically (attribute keys are sorted), so fixtures and
// checksums are stable.
func TestSnapshotDeterministic(t *testing.T) {
	_, f := snapshotFixture(t, 3)
	var a, b bytes.Buffer
	if err := f.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same snapshot produced different images")
	}
	if !LooksLikeSnapshot(a.Bytes()) {
		t.Fatal("LooksLikeSnapshot rejects a valid image")
	}
	if LooksLikeSnapshot([]byte("node 0 a\n")) {
		t.Fatal("LooksLikeSnapshot accepts the text format")
	}
}

// TestSnapshotCorruption flips every header byte and a sample of payload
// bytes: each corruption must surface as an error, never a panic or a
// silently wrong graph.
func TestSnapshotCorruption(t *testing.T) {
	_, f := snapshotFixture(t, 5)
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for i := 0; i < 28; i++ { // every header byte
		bad := append([]byte(nil), img...)
		bad[i] ^= 0x40
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatalf("header byte %d corrupted, ReadSnapshot succeeded", i)
		}
	}
	for i := 28; i < len(img); i += 37 { // payload sample
		bad := append([]byte(nil), img...)
		bad[i] ^= 0x01
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatalf("payload byte %d corrupted, ReadSnapshot succeeded", i)
		}
	}
	for cut := 0; cut < len(img); cut += 11 { // truncation
		if _, err := ReadSnapshot(bytes.NewReader(img[:cut])); err == nil {
			t.Fatalf("truncated at %d of %d, ReadSnapshot succeeded", cut, len(img))
		}
	}
}

// TestSnapshotStructuralValidation forges checksum-valid but inconsistent
// images (the CRCs only catch accidental corruption): every byte of the
// payload is flipped in turn with both checksums recomputed, and ReadSnapshot
// must either load a graph or fail with an error — never panic. Flipping can
// hit every decoded field (string lengths, node IDs, offsets, label refs),
// so this sweeps the structural validation paths a buggy or hostile writer
// would reach.
func TestSnapshotStructuralValidation(t *testing.T) {
	_, f := snapshotFixture(t, 7)
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	reseal := func(b []byte) {
		binary.LittleEndian.PutUint32(b[20:], crc32.ChecksumIEEE(b[28:]))
		binary.LittleEndian.PutUint32(b[24:], crc32.ChecksumIEEE(b[:24]))
	}
	loaded := 0
	for i := 28; i < len(img); i++ {
		for _, mask := range []byte{0x01, 0x80} {
			bad := append([]byte(nil), img...)
			bad[i] ^= mask
			reseal(bad)
			g, err := ReadSnapshot(bytes.NewReader(bad)) // must not panic
			if err == nil {
				// A flip that survives validation (e.g. inside a string) must
				// still yield a usable graph: poke the hot queries.
				for v := 0; v < g.NumNodes(); v++ {
					g.Label(NodeID(v))
					g.OutByLabelID(NodeID(v), AnyLabel)
					g.InByLabelID(NodeID(v), AnyLabel)
				}
				g.CandidateNodes(Wildcard)
				loaded++
			}
		}
	}
	t.Logf("%d byte-flips loaded cleanly, %d rejected", loaded, 2*(len(img)-28)-loaded)
}

// TestSnapshotEmptyAndTiny covers the degenerate shapes: the empty graph and
// a single attribute-less node.
func TestSnapshotEmptyAndTiny(t *testing.T) {
	for name, f := range map[string]*Frozen{
		"empty": NewBuilder(0).Freeze(),
		"one": func() *Frozen {
			b := NewBuilder(0)
			b.AddNode("a")
			return b.Freeze()
		}(),
	} {
		var buf bytes.Buffer
		if err := f.WriteSnapshot(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if loaded.NumNodes() != f.NumNodes() || loaded.NumEdges() != f.NumEdges() {
			t.Fatalf("%s: cardinalities diverge", name)
		}
		if got := loaded.CandidateNodes(Wildcard); len(got) != f.NumNodes() {
			t.Fatalf("%s: wildcard candidates %v", name, got)
		}
	}
}
