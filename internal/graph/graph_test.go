package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildDiamond(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	g := New()
	a := g.AddNode("person")
	b := g.AddNode("blog")
	c := g.AddNode("blog")
	d := g.AddNode("topic")
	g.AddEdge(a, b, "post")
	g.AddEdge(a, c, "post")
	g.AddEdge(b, d, "about")
	g.AddEdge(c, d, "about")
	return g, []NodeID{a, b, c, d}
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		if got := g.AddNode("x"); got != NodeID(i) {
			t.Fatalf("AddNode #%d = %d, want %d", i, got, i)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New()
	a, b := g.AddNode("x"), g.AddNode("y")
	g.AddEdge(a, b, "e")
	g.AddEdge(a, b, "e")
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge inserted: NumEdges = %d", g.NumEdges())
	}
	g.AddEdge(a, b, "f") // distinct label: a real multi-edge
	if g.NumEdges() != 2 {
		t.Fatalf("multi-edge with distinct label rejected: NumEdges = %d", g.NumEdges())
	}
}

func TestHasEdgeWildcard(t *testing.T) {
	g := New()
	a, b := g.AddNode("x"), g.AddNode("y")
	g.AddEdge(a, b, "knows")
	if !g.HasEdge(a, b, "knows") {
		t.Error("HasEdge exact label = false")
	}
	if !g.HasEdge(a, b, Wildcard) {
		t.Error("HasEdge wildcard = false")
	}
	if g.HasEdge(a, b, "other") {
		t.Error("HasEdge wrong label = true")
	}
	if g.HasEdge(b, a, "knows") {
		t.Error("HasEdge is ignoring direction")
	}
}

func TestAttrs(t *testing.T) {
	g := New()
	a := g.AddNode("person")
	if _, ok := g.Attr(a, "name"); ok {
		t.Error("attribute exists before SetAttr")
	}
	g.SetAttr(a, "name", "alice")
	if v, ok := g.Attr(a, "name"); !ok || v != "alice" {
		t.Errorf("Attr = %q,%v; want alice,true", v, ok)
	}
	g.SetAttr(a, "name", "bob") // overwrite
	if v, _ := g.Attr(a, "name"); v != "bob" {
		t.Errorf("overwrite failed: %q", v)
	}
}

func TestCandidateNodes(t *testing.T) {
	g, _ := buildDiamond(t)
	if got := len(g.CandidateNodes("blog")); got != 2 {
		t.Errorf("blog candidates = %d, want 2", got)
	}
	if got := len(g.CandidateNodes(Wildcard)); got != 4 {
		t.Errorf("wildcard candidates = %d, want 4", got)
	}
	if got := len(g.CandidateNodes("missing")); got != 0 {
		t.Errorf("missing label candidates = %d, want 0", got)
	}
}

func TestNeighborhood(t *testing.T) {
	g, ids := buildDiamond(t)
	a, d := ids[0], ids[3]
	h0 := g.Neighborhood(a, 0)
	if len(h0) != 1 || !h0[a] {
		t.Errorf("0-hop neighborhood = %v", h0)
	}
	h1 := g.Neighborhood(a, 1)
	if len(h1) != 3 {
		t.Errorf("1-hop neighborhood size = %d, want 3 (a,b,c)", len(h1))
	}
	if h1[d] {
		t.Error("topic is 2 hops away but in 1-hop neighborhood")
	}
	h2 := g.Neighborhood(a, 2)
	if len(h2) != 4 {
		t.Errorf("2-hop neighborhood size = %d, want 4", len(h2))
	}
	// Neighborhood is undirected: from d, 1 hop reaches b and c.
	hd := g.Neighborhood(d, 1)
	if len(hd) != 3 {
		t.Errorf("reverse 1-hop neighborhood size = %d, want 3", len(hd))
	}
}

func TestUndirectedDistance(t *testing.T) {
	g, ids := buildDiamond(t)
	a, b, d := ids[0], ids[1], ids[3]
	cases := []struct {
		u, v NodeID
		want int
	}{
		{a, a, 0}, {a, b, 1}, {a, d, 2}, {d, a, 2}, {b, ids[2], 2},
	}
	for _, c := range cases {
		if got := g.UndirectedDistance(c.u, c.v); got != c.want {
			t.Errorf("dist(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
	iso := g.AddNode("island")
	if got := g.UndirectedDistance(a, iso); got != -1 {
		t.Errorf("dist to disconnected node = %d, want -1", got)
	}
}

func TestSubgraph(t *testing.T) {
	g, ids := buildDiamond(t)
	g.SetAttr(ids[1], "title", "t1")
	sub, remap := g.Subgraph(map[NodeID]bool{ids[0]: true, ids[1]: true, ids[3]: true})
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3", sub.NumNodes())
	}
	// Edge a->b survives, b->d survives; a->c and c->d dropped.
	if sub.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2", sub.NumEdges())
	}
	if v, ok := sub.Attr(remap[ids[1]], "title"); !ok || v != "t1" {
		t.Error("attributes not carried into subgraph")
	}
}

func TestDisjointUnion(t *testing.T) {
	g1, _ := buildDiamond(t)
	g2 := New()
	x := g2.AddNode("extra")
	g2.SetAttr(x, "k", "v")
	g2.AddEdge(x, x, "self")
	off := g1.DisjointUnion(g2)
	if off != 4 {
		t.Fatalf("offset = %d, want 4", off)
	}
	if g1.NumNodes() != 5 || g1.NumEdges() != 5 {
		t.Fatalf("union has %d nodes %d edges; want 5,5", g1.NumNodes(), g1.NumEdges())
	}
	if !g1.HasEdge(off+x, off+x, "self") {
		t.Error("self-loop not remapped")
	}
	if v, _ := g1.Attr(off+x, "k"); v != "v" {
		t.Error("attrs not copied by union")
	}
}

func TestCloneIndependence(t *testing.T) {
	g, ids := buildDiamond(t)
	g.SetAttr(ids[0], "name", "alice")
	c := g.Clone()
	c.SetAttr(ids[0], "name", "eve")
	c.AddNode("new")
	if v, _ := g.Attr(ids[0], "name"); v != "alice" {
		t.Error("clone mutation leaked into original attrs")
	}
	if g.NumNodes() != 4 {
		t.Error("clone mutation leaked into original nodes")
	}
}

func TestSizeCountsAttrs(t *testing.T) {
	g, ids := buildDiamond(t)
	base := g.Size()
	g.SetAttr(ids[0], "a", "1")
	g.SetAttr(ids[0], "b", "2")
	if g.Size() != base+2 {
		t.Errorf("Size after 2 attrs = %d, want %d", g.Size(), base+2)
	}
}

// Property: Neighborhood(v, d) of a random graph always contains v, grows
// monotonically with d, and every member is within distance d.
func TestNeighborhoodPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			g.AddNode("x")
		}
		for i := 0; i < n*2; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), "e")
		}
		v := NodeID(rng.Intn(n))
		prev := 0
		for d := 0; d <= 4; d++ {
			h := g.Neighborhood(v, d)
			if !h[v] {
				return false
			}
			if len(h) < prev {
				return false
			}
			prev = len(h)
			for u := range h {
				dist := g.UndirectedDistance(v, u)
				if dist < 0 || dist > d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
