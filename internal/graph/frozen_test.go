package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildBoth replays the same construction script into a mutable Graph and a
// Builder, returning the mutable graph and the frozen snapshot. The script
// is random: n nodes over the label alphabet, e edges (with deliberate
// duplicates) over the edge-label alphabet, plus attributes on a few nodes.
func buildBoth(seed int64, n, e int, nodeLabels, edgeLabels []string) (*Graph, *Frozen) {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	b := NewBuilder(e)
	for i := 0; i < n; i++ {
		l := nodeLabels[rng.Intn(len(nodeLabels))]
		g.AddNode(l)
		b.AddNode(l)
		if rng.Intn(3) == 0 {
			a, v := fmt.Sprintf("a%d", rng.Intn(3)), fmt.Sprintf("v%d", rng.Intn(2))
			g.SetAttr(NodeID(i), a, v)
			b.SetAttr(NodeID(i), a, v)
		}
	}
	for i := 0; i < e; i++ {
		from, to := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		l := edgeLabels[rng.Intn(len(edgeLabels))]
		g.AddEdge(from, to, l)
		b.AddEdge(from, to, l)
		if rng.Intn(4) == 0 {
			// Exact duplicate: idempotent on both paths.
			g.AddEdge(from, to, l)
			b.AddEdge(from, to, l)
		}
	}
	return g, b.Freeze()
}

// TestFrozenEquivalence is the freeze-equivalence property: on random
// multigraphs (parallel edges, self-loops, literal-wildcard labels,
// duplicate inserts), the Frozen snapshot must answer every Reader query
// exactly like the mutable Graph it was built from.
func TestFrozenEquivalence(t *testing.T) {
	nodeLabels := []string{"a", "b", "c", Wildcard}
	edgeLabels := []string{"e", "f", "g", Wildcard}
	queryEdgeLabels := append(edgeLabels, "absent")
	for seed := int64(0); seed < 10; seed++ {
		n := 5 + rand.New(rand.NewSource(seed)).Intn(20)
		g, f := buildBoth(seed, n, 4*n, nodeLabels, edgeLabels)
		ctx := fmt.Sprintf("seed=%d n=%d", seed, n)

		if g.NumNodes() != f.NumNodes() || g.NumEdges() != f.NumEdges() || g.Size() != f.Size() {
			t.Fatalf("%s: cardinalities diverge: mutable (%d,%d,%d) frozen (%d,%d,%d)", ctx,
				g.NumNodes(), g.NumEdges(), g.Size(), f.NumNodes(), f.NumEdges(), f.Size())
		}
		if fmt.Sprint(g.Labels()) != fmt.Sprint(f.Labels()) {
			t.Fatalf("%s: Labels diverge: %v vs %v", ctx, g.Labels(), f.Labels())
		}

		// Per-label adjacency, raw adjacency, edge probes, per node pair.
		for v := 0; v < n; v++ {
			id := NodeID(v)
			if g.Label(id) != f.Label(id) {
				t.Fatalf("%s: Label(%d) diverges", ctx, v)
			}
			if fmt.Sprint(g.Attrs(id)) != fmt.Sprint(f.Attrs(id)) {
				t.Fatalf("%s: Attrs(%d) diverge: %v vs %v", ctx, v, g.Attrs(id), f.Attrs(id))
			}
			if got, want := edgeMultiset(f.Out(id)), edgeMultiset(g.Out(id)); got != want {
				t.Fatalf("%s: Out(%d) diverges: %v vs %v", ctx, v, got, want)
			}
			if got, want := edgeMultiset(f.In(id)), edgeMultiset(g.In(id)); got != want {
				t.Fatalf("%s: In(%d) diverges: %v vs %v", ctx, v, got, want)
			}
			for _, l := range queryEdgeLabels {
				gl := g.OutByLabelID(id, g.EdgeLabelID(l))
				fl := f.OutByLabelID(id, f.EdgeLabelID(l))
				if !idsEqual(gl, fl) {
					t.Fatalf("%s: OutByLabel(%d,%q) diverges: %v vs %v", ctx, v, l, gl, fl)
				}
				gl = g.InByLabelID(id, g.EdgeLabelID(l))
				fl = f.InByLabelID(id, f.EdgeLabelID(l))
				if !idsEqual(gl, fl) {
					t.Fatalf("%s: InByLabel(%d,%q) diverges: %v vs %v", ctx, v, l, gl, fl)
				}
				for u := 0; u < n; u++ {
					if g.HasEdge(id, NodeID(u), l) != f.HasEdge(id, NodeID(u), l) {
						t.Fatalf("%s: HasEdge(%d,%d,%q) diverges", ctx, v, u, l)
					}
				}
			}
		}

		// Node-label index and candidate generation.
		for _, l := range append(g.Labels(), "absent", Wildcard) {
			if !idsEqual(sortedIDs(g.NodesByLabel(l)), sortedIDs(f.NodesByLabel(l))) {
				t.Fatalf("%s: NodesByLabel(%q) diverges", ctx, l)
			}
			if !idsEqual(g.CandidateNodes(l), f.CandidateNodes(l)) {
				t.Fatalf("%s: CandidateNodes(%q) diverges", ctx, l)
			}
			if g.LabelFrequency(l) != f.LabelFrequency(l) {
				t.Fatalf("%s: LabelFrequency(%q) diverges", ctx, l)
			}
		}

		// Signature covers over random label subsets.
		rng := rand.New(rand.NewSource(seed + 1000))
		for trial := 0; trial < 20; trial++ {
			sig := Signature{}
			for _, l := range queryEdgeLabels {
				if rng.Intn(3) == 0 {
					sig.Out = append(sig.Out, l)
				}
				if rng.Intn(3) == 0 {
					sig.In = append(sig.In, l)
				}
			}
			for v := 0; v < n; v++ {
				if g.Covers(NodeID(v), sig) != f.Covers(NodeID(v), sig) {
					t.Fatalf("%s: Covers(%d, %+v) diverges", ctx, v, sig)
				}
			}
		}

		// Traversal.
		for v := 0; v < n; v++ {
			for d := 0; d <= 3; d++ {
				gh, fh := g.Neighborhood(NodeID(v), d), f.Neighborhood(NodeID(v), d)
				if len(gh) != len(fh) {
					t.Fatalf("%s: Neighborhood(%d,%d) sizes diverge: %d vs %d", ctx, v, d, len(gh), len(fh))
				}
				for u := range gh {
					if !fh[u] {
						t.Fatalf("%s: Neighborhood(%d,%d) misses %d in frozen", ctx, v, d, u)
					}
				}
			}
			for u := 0; u < n; u++ {
				if g.UndirectedDistance(NodeID(v), NodeID(u)) != f.UndirectedDistance(NodeID(v), NodeID(u)) {
					t.Fatalf("%s: UndirectedDistance(%d,%d) diverges", ctx, v, u)
				}
			}
		}
	}
}

// edgeMultiset canonicalizes an edge slice independent of order.
func edgeMultiset(es []Edge) string {
	counts := make(map[Edge]int, len(es))
	for _, e := range es {
		counts[e]++
	}
	return fmt.Sprint(counts)
}

// TestFrozenSortedAdjacency pins the Reader ordering contract the matching
// merge-intersections rely on: per-label endpoint lists and wildcard lists
// are ascending.
func TestFrozenSortedAdjacency(t *testing.T) {
	_, f := buildBoth(42, 30, 150, []string{"a", "b"}, []string{"e", "f", "g"})
	check := func(list []NodeID, ctx string) {
		for i := 1; i < len(list); i++ {
			if list[i] < list[i-1] {
				t.Fatalf("%s not ascending: %v", ctx, list)
			}
		}
	}
	for v := 0; v < f.NumNodes(); v++ {
		id := NodeID(v)
		check(f.OutByLabelID(id, AnyLabel), fmt.Sprintf("out wildcard @%d", v))
		check(f.InByLabelID(id, AnyLabel), fmt.Sprintf("in wildcard @%d", v))
		for _, l := range []string{"e", "f", "g"} {
			check(f.OutByLabel(id, l), fmt.Sprintf("out %q @%d", l, v))
			check(f.InByLabel(id, l), fmt.Sprintf("in %q @%d", l, v))
		}
	}
}

// TestFrozenCopySemantics pins the Reader copy contract on the frozen side:
// NodesByLabel and CandidateNodes hand out slices the caller may mutate.
func TestFrozenCopySemantics(t *testing.T) {
	_, f := buildBoth(7, 10, 30, []string{"a", "b"}, []string{"e"})
	for _, l := range []string{"a", "b", Wildcard} {
		c1 := f.CandidateNodes(l)
		for i := range c1 {
			c1[i] = -1
		}
		for _, v := range f.CandidateNodes(l) {
			if v == -1 {
				t.Fatalf("CandidateNodes(%q) aliases internal storage", l)
			}
		}
	}
	n1 := f.NodesByLabel("a")
	if len(n1) == 0 {
		t.Skip("no nodes labeled a for this seed")
	}
	n1[0] = -1
	if f.NodesByLabel("a")[0] == -1 {
		t.Fatal("NodesByLabel aliases internal storage")
	}
}

// TestGraphNodesByLabelCopySemantics pins the same contract on the mutable
// side (it used to alias the label index).
func TestGraphNodesByLabelCopySemantics(t *testing.T) {
	g := New()
	g.AddNode("a")
	g.AddNode("a")
	ids := g.NodesByLabel("a")
	ids[0] = 99
	if got := g.NodesByLabel("a"); got[0] != 0 {
		t.Fatalf("NodesByLabel aliases the internal index: %v", got)
	}
	if g.NodesByLabel("missing") != nil {
		t.Fatal("NodesByLabel of an absent label should stay nil")
	}
}

// TestBuilderPanics pins the freeze lifecycle: a consumed builder rejects
// further mutation.
func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(0)
	b.AddNode("a")
	b.Freeze()
	for name, fn := range map[string]func(){
		"AddNode": func() { b.AddNode("b") },
		"AddEdge": func() { b.AddEdge(0, 0, "e") },
		"SetAttr": func() { b.SetAttr(0, "a", "v") },
		"Freeze":  func() { b.Freeze() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after Freeze did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestGraphFrozenRoundTrip checks the Graph.Frozen convenience snapshot on
// the shared index fixture.
func TestGraphFrozenRoundTrip(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		g.AddNode("person")
	}
	g.AddEdge(0, 1, "knows")
	g.AddEdge(1, 2, "knows")
	g.AddEdge(0, 1, "likes")
	g.AddEdge(1, 1, "likes")
	g.AddEdge(2, 0, Wildcard)
	f := g.Frozen()
	if f.NumNodes() != 3 || f.NumEdges() != 5 {
		t.Fatalf("snapshot cardinalities: got (%d,%d), want (3,5)", f.NumNodes(), f.NumEdges())
	}
	if !f.HasEdge(1, 1, "likes") || f.HasEdge(1, 0, "knows") {
		t.Fatal("snapshot edge probes diverge from source graph")
	}
	// The literal '_' data edge is an ordinary label: the wildcard query
	// sees it, the literal query matches only itself.
	if got := f.OutByLabel(2, Wildcard); !idsEqual(got, []NodeID{0}) {
		t.Fatalf("wildcard query at 2: %v", got)
	}
}

// TestBuilderGraphReplay pins Builder.Graph: a builder loaded with a
// mutable graph's contents replays into an identical mutable graph
// (String covers nodes, attributes and edges in deterministic order).
func TestBuilderGraphReplay(t *testing.T) {
	g, _ := buildBoth(13, 15, 60, []string{"a", "b"}, []string{"e", "f"})
	b := NewBuilder(0)
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNodeWithAttrs(g.Label(NodeID(i)), g.Attrs(NodeID(i)))
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(NodeID(v)) {
			b.AddEdge(e.From, e.To, e.Label)
		}
	}
	if got, want := b.Graph().String(), g.String(); got != want {
		t.Fatalf("Builder.Graph replay diverges:\n got: %s\nwant: %s", got, want)
	}
}
