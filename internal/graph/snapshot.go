// On-disk CSR snapshots. WriteSnapshot serializes a Frozen — label tables,
// node attributes, both CSR directions, the nodes-by-label index and the
// tombstone bitmap — into a versioned binary image; ReadSnapshot loads one
// back such that the result is query-identical to the source across the
// whole Reader API (pinned by the snapshot round-trip property tests). The
// format exists so a bulk-ingested graph is paid for once: loading an image
// is a checksum pass plus flat array decodes, an order of magnitude cheaper
// than re-sorting the edges from text (gated by the snapshot_load_speedup CI
// metric). Pair with the WAL (wal.go) for crash-consistent ingest: snapshot
// the base, log the deltas, Recover on restart.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte "GFDSNAP1"
//	u32     format version (currently 1)
//	u64     payload length in bytes
//	u32     CRC-32 (IEEE) of the payload
//	u32     CRC-32 (IEEE) of the 24 header bytes above
//	payload
//
// The header checksum rejects a torn or corrupted header before any
// payload-sized allocation; the payload checksum guards the body. The
// payload is the Frozen's sections in fixed order: node-label and edge-label
// tables, per-node label IDs and attribute tuples, the out and in CSR
// directions (offsets, targets, wildcard view, label directory), the
// nodes-by-label index, and the optional tombstone bitmap.
package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// sortedKeys returns a map's keys in ascending order, so attribute tuples
// serialize deterministically (byte-identical images for identical graphs).
func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

var snapshotMagic = [8]byte{'G', 'F', 'D', 'S', 'N', 'A', 'P', '1'}

// snapshotVersion is bumped when the payload layout changes; readers reject
// images from other versions rather than guessing.
const snapshotVersion = 1

// maxSnapshotPayload bounds the payload allocation a header can demand, so a
// corrupted length field that slips past the header checksum cannot OOM the
// loader.
const maxSnapshotPayload = 1 << 36

// LooksLikeSnapshot reports whether the byte prefix begins a binary snapshot
// image (callers sniff at least 8 bytes to dispatch between the text format
// and ReadSnapshot).
func LooksLikeSnapshot(prefix []byte) bool {
	return len(prefix) >= len(snapshotMagic) && bytes.Equal(prefix[:len(snapshotMagic)], snapshotMagic[:])
}

// snapEnc accumulates the payload. Bulk integer slices are staged through
// scratch so each section lands in the buffer with one Write.
type snapEnc struct {
	buf     bytes.Buffer
	scratch []byte
	err     error
}

func (e *snapEnc) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}

func (e *snapEnc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

func (e *snapEnc) str(s string) {
	if len(s) > math.MaxUint32 {
		e.fail("string of %d bytes exceeds the format limit", len(s))
		return
	}
	e.u32(uint32(len(s)))
	e.buf.WriteString(s)
}

func (e *snapEnc) strs(ss []string) {
	e.u32(uint32(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (e *snapEnc) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("graph: snapshot: "+format, args...)
	}
}

// ints writes an integer slice as length-prefixed u32 elements. Every value
// the Frozen stores in these slices is a non-negative dense index bounded by
// the CSR's own 2^32 limit (see csrKey); a value outside that range means
// the snapshot is not expressible in the format.
func snapInts[T ~int | ~int32](e *snapEnc, xs []T) {
	e.u64(uint64(len(xs)))
	need := 4 * len(xs)
	if cap(e.scratch) < need {
		e.scratch = make([]byte, need)
	}
	s := e.scratch[:need]
	for i, x := range xs {
		if int64(x) < 0 || int64(x) > math.MaxUint32 {
			e.fail("value %d outside the format's u32 range", int64(x))
			return
		}
		binary.LittleEndian.PutUint32(s[4*i:], uint32(x))
	}
	e.buf.Write(s)
}

func (e *snapEnc) dir(d *csrDir) {
	snapInts(e, d.off)
	snapInts(e, d.targets)
	snapInts(e, d.all)
	snapInts(e, d.dirOff)
	snapInts(e, d.dirLabels)
	snapInts(e, d.dirStart)
}

// WriteSnapshot serializes the snapshot into the versioned binary image
// described in the package comment for snapshot.go. The write is buffered in
// memory (the header carries the payload checksum), so w receives either the
// complete image or, on error, nothing beyond what it already consumed.
func (f *Frozen) WriteSnapshot(w io.Writer) error {
	e := &snapEnc{}
	e.strs(f.nodeLabelNames)
	e.strs(f.labelNames)
	e.u32(uint32(len(f.nodes)))
	snapInts(e, f.nodeLabelOf)
	for i := range f.nodes {
		attrs := f.nodes[i].Attrs
		e.u32(uint32(len(attrs)))
		for _, k := range sortedKeys(attrs) {
			e.str(k)
			e.str(attrs[k])
		}
	}
	e.u64(uint64(f.edges))
	e.dir(&f.out)
	e.dir(&f.in)
	snapInts(e, f.byLabelOff)
	snapInts(e, f.byLabelNodes)
	if f.dead == nil {
		e.u32(0)
	} else {
		e.u32(1)
		packed := make([]byte, (len(f.dead)+7)/8)
		for v, dd := range f.dead {
			if dd {
				packed[v/8] |= 1 << (v % 8)
			}
		}
		e.buf.Write(packed)
	}
	if e.err != nil {
		return e.err
	}

	payload := e.buf.Bytes()
	var header [28]byte
	copy(header[:8], snapshotMagic[:])
	binary.LittleEndian.PutUint32(header[8:], snapshotVersion)
	binary.LittleEndian.PutUint64(header[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(header[20:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(header[24:], crc32.ChecksumIEEE(header[:24]))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("graph: snapshot: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("graph: snapshot: write payload: %w", err)
	}
	return nil
}

// snapDec walks the payload; every accessor bounds-checks before slicing so
// a malformed image fails with an error instead of a panic.
type snapDec struct {
	b   []byte
	pos int
	err error
}

func (d *snapDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("graph: snapshot: "+format, args...)
	}
}

func (d *snapDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.b) {
		d.fail("truncated payload (need %d bytes at offset %d of %d)", n, d.pos, len(d.b))
		return nil
	}
	s := d.b[d.pos : d.pos+n]
	d.pos += n
	return s
}

func (d *snapDec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *snapDec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *snapDec) str() string {
	n := d.u32()
	return string(d.take(int(n)))
}

func (d *snapDec) strs() []string {
	n := int(d.u32())
	if d.err != nil || n == 0 {
		return nil
	}
	// Each string needs at least its 4-byte length prefix: a count that
	// cannot fit in the remaining payload is corrupt, and must fail before
	// it sizes an allocation.
	if n < 0 || n > (len(d.b)-d.pos)/4 {
		d.fail("string table of %d entries exceeds remaining payload", n)
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = d.str()
	}
	return ss
}

// count reads a slice length and sanity-checks it against the bytes that
// remain, so a corrupt length cannot demand an absurd allocation.
func (d *snapDec) count(elem int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.pos)/uint64(elem) {
		d.fail("slice length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func snapIntsOut[T ~int | ~int32](d *snapDec) []T {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	s := d.take(4 * n)
	if s == nil {
		return nil
	}
	xs := make([]T, n)
	for i := range xs {
		xs[i] = T(binary.LittleEndian.Uint32(s[4*i:]))
	}
	return xs
}

// monotone reports whether offsets start at 0 and never decrease —
// required before they are used as slice bounds (a u32 value past 2^31
// also fails here, having wrapped negative in the int32 decode).
func monotone(off []int32) bool {
	if len(off) > 0 && off[0] != 0 {
		return false
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return false
		}
	}
	return true
}

// idsInRange reports whether every decoded node ID lies in [0, n).
func idsInRange(ids []NodeID, n int) bool {
	for _, v := range ids {
		if v < 0 || int(v) >= n {
			return false
		}
	}
	return true
}

// dir decodes one CSR direction with full structural validation: the CRCs
// only catch accidental corruption, so a checksum-valid but inconsistent
// image (crafted, or from a buggy writer) must fail here with an error —
// never load and then panic inside a query.
func (d *snapDec) dir(n, nLabels int) csrDir {
	c := csrDir{
		off:       snapIntsOut[int32](d),
		targets:   snapIntsOut[NodeID](d),
		all:       snapIntsOut[NodeID](d),
		dirOff:    snapIntsOut[int32](d),
		dirLabels: snapIntsOut[LabelID](d),
		dirStart:  snapIntsOut[int32](d),
	}
	if d.err != nil {
		return c
	}
	switch {
	case len(c.off) != n+1 || len(c.dirOff) != n+1:
		d.fail("CSR offset arrays sized %d/%d, want %d", len(c.off), len(c.dirOff), n+1)
	case len(c.all) != len(c.targets):
		d.fail("wildcard view sized %d, want %d", len(c.all), len(c.targets))
	case len(c.dirStart) != len(c.dirLabels):
		d.fail("label directory arrays sized %d/%d", len(c.dirStart), len(c.dirLabels))
	case n > 0 && (int(c.off[n]) != len(c.targets) || int(c.dirOff[n]) != len(c.dirLabels)):
		d.fail("CSR offsets do not cover the arrays")
	case n == 0 && len(c.targets) > 0:
		d.fail("edge rows without nodes")
	case !monotone(c.off) || !monotone(c.dirOff):
		d.fail("CSR offsets are not monotone")
	case !idsInRange(c.targets, n) || !idsInRange(c.all, n):
		d.fail("edge endpoint outside the node space")
	}
	if d.err == nil {
		for _, l := range c.dirLabels {
			if l < 0 || int(l) >= nLabels {
				d.fail("directory references label %d of %d", l, nLabels)
				break
			}
		}
	}
	if d.err == nil {
		// Per-row directory bounds: byLabel/forEachRun slice
		// targets[dirStart[i]:dirStart[i+1]] (or :off[v+1] for the last
		// label), so every start must sit inside its own row and ascend —
		// individually-in-range values like [5, 2] would otherwise load fine
		// and panic on the first labeled query.
	rows:
		for v := 0; v+1 < len(c.off); v++ {
			prev := c.off[v]
			for i := c.dirOff[v]; i < c.dirOff[v+1]; i++ {
				s := c.dirStart[i]
				if s < prev || s > c.off[v+1] {
					d.fail("node %d label directory start %d outside its row [%d,%d)", v, s, c.off[v], c.off[v+1])
					break rows
				}
				prev = s
			}
		}
	}
	if c.off == nil {
		// An empty graph round-trips to nil slices; the CSR accessors index
		// off[v+1], so restore the canonical one-element arrays.
		c.off = make([]int32, n+1)
		c.dirOff = make([]int32, n+1)
	}
	return c
}

// internTable rebuilds the name→ID map a Frozen keeps beside a name table.
func internTable(names []string) map[string]LabelID {
	m := make(map[string]LabelID, len(names))
	for i, s := range names {
		m[s] = LabelID(i)
	}
	return m
}

// ReadSnapshot loads a snapshot written by WriteSnapshot. The header's magic,
// version and checksums are verified before the payload is decoded; the
// returned Frozen is query-identical to the one serialized.
func ReadSnapshot(r io.Reader) (*Frozen, error) {
	var header [28]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("graph: snapshot: read header: %w", err)
	}
	if !bytes.Equal(header[:8], snapshotMagic[:]) {
		return nil, fmt.Errorf("graph: snapshot: bad magic (not a snapshot image)")
	}
	if crc := crc32.ChecksumIEEE(header[:24]); crc != binary.LittleEndian.Uint32(header[24:]) {
		return nil, fmt.Errorf("graph: snapshot: header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(header[8:]); v != snapshotVersion {
		return nil, fmt.Errorf("graph: snapshot: format version %d, want %d", v, snapshotVersion)
	}
	plen := binary.LittleEndian.Uint64(header[12:])
	if plen > maxSnapshotPayload {
		return nil, fmt.Errorf("graph: snapshot: payload length %d exceeds limit", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("graph: snapshot: read payload: %w", err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(header[20:]) {
		return nil, fmt.Errorf("graph: snapshot: payload checksum mismatch")
	}

	d := &snapDec{b: payload}
	f := &Frozen{epoch: nextEpoch()}
	f.nodeLabelNames = d.strs()
	f.labelNames = d.strs()
	n := int(d.u32())
	f.nodeLabelOf = snapIntsOut[LabelID](d)
	if d.err == nil && len(f.nodeLabelOf) != n {
		d.fail("node label array sized %d, want %d", len(f.nodeLabelOf), n)
	}
	if d.err == nil {
		f.nodes = make([]Node, n)
		for v := 0; v < n; v++ {
			lid := f.nodeLabelOf[v]
			if lid < 0 || int(lid) >= len(f.nodeLabelNames) {
				d.fail("node %d references label %d of %d", v, lid, len(f.nodeLabelNames))
				break
			}
			f.nodes[v] = Node{ID: NodeID(v), Label: f.nodeLabelNames[lid]}
			if na := int(d.u32()); na > 0 {
				// Each attribute needs at least two 4-byte length prefixes;
				// reject corrupt counts before sizing the map.
				if na > (len(d.b)-d.pos)/8 {
					d.fail("node %d claims %d attributes beyond remaining payload", v, na)
					break
				}
				attrs := make(map[string]string, na)
				for i := 0; i < na && d.err == nil; i++ {
					k := d.str()
					attrs[k] = d.str()
				}
				f.nodes[v].Attrs = attrs
			}
			if d.err != nil {
				break
			}
		}
	}
	f.edges = int(d.u64())
	f.out = d.dir(n, len(f.labelNames))
	f.in = d.dir(n, len(f.labelNames))
	if d.err == nil && (f.edges != len(f.out.targets) || len(f.in.targets) != len(f.out.targets)) {
		// WriteSnapshot derives edges from the out CSR; an image where the
		// recorded count disagrees (or the directions disagree with each
		// other) would serve a silently wrong NumEdges.
		d.fail("edge count %d disagrees with CSR rows (%d out, %d in)",
			f.edges, len(f.out.targets), len(f.in.targets))
	}
	f.byLabelOff = snapIntsOut[int32](d)
	f.byLabelNodes = snapIntsOut[NodeID](d)
	if d.err == nil {
		nl := len(f.nodeLabelNames)
		switch {
		case len(f.byLabelOff) != nl+1 && !(nl == 0 && f.byLabelOff == nil):
			d.fail("nodes-by-label offsets sized %d, want %d", len(f.byLabelOff), nl+1)
		case !monotone(f.byLabelOff):
			d.fail("nodes-by-label offsets are not monotone")
		case nl > 0 && int(f.byLabelOff[nl]) != len(f.byLabelNodes):
			d.fail("nodes-by-label offsets do not cover the array")
		case !idsInRange(f.byLabelNodes, n):
			d.fail("nodes-by-label entry outside the node space")
		}
	}
	if f.byLabelOff == nil {
		f.byLabelOff = make([]int32, len(f.nodeLabelNames)+1)
	}
	if d.u32() != 0 {
		packed := d.take((n + 7) / 8)
		if d.err == nil {
			f.dead = make([]bool, n)
			for v := range f.dead {
				if packed[v/8]&(1<<(v%8)) != 0 {
					f.dead[v] = true
					f.deadCount++
				}
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.b) {
		return nil, fmt.Errorf("graph: snapshot: %d trailing bytes after payload", len(d.b)-d.pos)
	}
	f.nodeLabelIDs = internTable(f.nodeLabelNames)
	f.labelIDs = internTable(f.labelNames)
	return f, nil
}
