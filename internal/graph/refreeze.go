// Incremental re-freeze: merging a Delta into a fresh CSR snapshot without
// paying the full O(E log deg) rebuild. Only the rows of touched nodes are
// re-materialized and re-sorted; every untouched node's row — targets,
// wildcard view, label directory — is copied verbatim in bulk, with a
// constant per-span offset shift for the directory starts. Total cost is
// O(E_touched·log deg + V) plus the unavoidable memcpy of the clean rows,
// which is what makes refreezing a ≤1% delta into a 100k-edge snapshot ~an
// order of magnitude cheaper than Builder.Freeze from scratch (gated by the
// refreeze_speedup CI metric).
package graph

import "slices"

// Refreeze merges the delta into a new immutable snapshot. The receiver must
// be the delta's base; the receiver, the delta and any Overlay taken from it
// remain valid and unchanged. Node IDs are stable: added nodes keep the IDs
// the delta assigned, removed nodes stay as tombstoned slots (see
// Frozen.Alive), so matches and external references survive the re-freeze.
func (f *Frozen) Refreeze(d *Delta) *Frozen {
	if d.base != f {
		panic("graph: Refreeze with a delta bound to a different base")
	}
	outRows, inRows := d.rows()
	baseN := len(f.nodes)
	n2 := baseN + len(d.nodes)

	nf := &Frozen{epoch: nextEpoch()}
	nf.nodes = make([]Node, n2)
	copy(nf.nodes, f.nodes)
	for i := range d.nodes {
		nf.nodes[baseN+i] = d.nodes[i]
		nf.nodes[baseN+i].Attrs = copyAttrs(d.nodes[i].Attrs)
	}
	for v, m := range d.attrs {
		nf.nodes[v].Attrs = copyAttrs(m)
	}
	for v := range d.dead {
		nf.nodes[v].Attrs = nil
	}

	// Label tables: shared with the base when the delta introduced no new
	// labels (Frozen tables are never mutated after construction), extended
	// copies otherwise.
	if len(d.labelNames) == 0 {
		nf.labelIDs, nf.labelNames = f.labelIDs, f.labelNames
	} else {
		nf.labelIDs = make(map[string]LabelID, len(f.labelIDs)+len(d.labelIDs))
		for k, id := range f.labelIDs {
			nf.labelIDs[k] = id
		}
		for k, id := range d.labelIDs {
			nf.labelIDs[k] = id
		}
		nf.labelNames = append(append([]string(nil), f.labelNames...), d.labelNames...)
	}
	if len(d.nodeLabelNames) == 0 {
		nf.nodeLabelIDs, nf.nodeLabelNames = f.nodeLabelIDs, f.nodeLabelNames
	} else {
		nf.nodeLabelIDs = make(map[string]LabelID, len(f.nodeLabelIDs)+len(d.nodeLabelIDs))
		for k, id := range f.nodeLabelIDs {
			nf.nodeLabelIDs[k] = id
		}
		for k, id := range d.nodeLabelIDs {
			nf.nodeLabelIDs[k] = id
		}
		nf.nodeLabelNames = append(append([]string(nil), f.nodeLabelNames...), d.nodeLabelNames...)
	}
	nf.nodeLabelOf = make([]LabelID, n2)
	copy(nf.nodeLabelOf, f.nodeLabelOf)
	copy(nf.nodeLabelOf[baseN:], d.nodeLabelOf)

	nf.out = refreezeDir(&f.out, outRows, baseN, n2)
	nf.in = refreezeDir(&f.in, inRows, baseN, n2)
	nf.edges = len(nf.out.targets)

	// Tombstones: the base's plus the delta's. deadCount is recounted from
	// the merged flags rather than summed (f.deadCount + len(d.dead) assumes
	// the two sets never overlap); the count must equal the number of set
	// flags exactly, because the nodes-by-label fill below and Compact's
	// remap both size arrays from it — an overcount leaves phantom zero
	// entries in label runs, an undercount panics the fill.
	if f.dead != nil || len(d.dead) > 0 {
		dead := make([]bool, n2)
		copy(dead, f.dead)
		for v := range d.dead {
			dead[v] = true
		}
		count := 0
		for _, dd := range dead {
			if dd {
				count++
			}
		}
		nf.dead = dead
		nf.deadCount = count
	}

	// Nodes-by-label CSR over live nodes: one O(V) counting pass.
	nl := len(nf.nodeLabelNames)
	nf.byLabelOff = make([]int32, nl+1)
	live := func(v int) bool { return nf.dead == nil || !nf.dead[v] }
	for v, lid := range nf.nodeLabelOf {
		if live(v) {
			nf.byLabelOff[lid+1]++
		}
	}
	for i := 0; i < nl; i++ {
		nf.byLabelOff[i+1] += nf.byLabelOff[i]
	}
	nf.byLabelNodes = make([]NodeID, n2-nf.deadCount)
	next := make([]int32, nl)
	copy(next, nf.byLabelOff[:nl])
	for v, lid := range nf.nodeLabelOf {
		if live(v) {
			nf.byLabelNodes[next[lid]] = NodeID(v)
			next[lid]++
		}
	}
	return nf
}

func copyAttrs(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// refreezeDir merges one direction's delta rows into a new csrDir. Clean
// base spans between touched nodes are copied verbatim; only the touched
// rows (pre-sorted by Delta.rows) are written element-wise.
func refreezeDir(base *csrDir, rows map[NodeID]*row, baseN, n2 int) csrDir {
	dirty := make([]NodeID, 0, len(rows))
	for v := range rows {
		dirty = append(dirty, v)
	}
	slices.Sort(dirty)

	totalT := len(base.targets)
	totalD := len(base.dirLabels)
	for _, v := range dirty {
		r := rows[v]
		totalT += r.total
		totalD += len(r.labels)
		if int(v) < baseN {
			totalT -= int(base.off[v+1] - base.off[v])
			totalD -= int(base.dirOff[v+1] - base.dirOff[v])
		}
	}
	d := csrDir{
		off:       make([]int32, n2+1),
		dirOff:    make([]int32, n2+1),
		targets:   make([]NodeID, 0, totalT),
		all:       make([]NodeID, 0, totalT),
		dirLabels: make([]LabelID, 0, totalD),
		dirStart:  make([]int32, 0, totalD),
	}
	// clean copies the untouched nodes [lo, hi): base rows verbatim (bulk
	// copies plus a constant shift), added-but-untouched nodes as empty rows.
	clean := func(lo, hi int) {
		bhi := hi
		if bhi > baseN {
			bhi = baseN
		}
		if lo < bhi {
			tShift := int32(len(d.targets)) - base.off[lo]
			dShift := int32(len(d.dirLabels)) - base.dirOff[lo]
			d.targets = append(d.targets, base.targets[base.off[lo]:base.off[bhi]]...)
			d.all = append(d.all, base.all[base.off[lo]:base.off[bhi]]...)
			d.dirLabels = append(d.dirLabels, base.dirLabels[base.dirOff[lo]:base.dirOff[bhi]]...)
			for _, s := range base.dirStart[base.dirOff[lo]:base.dirOff[bhi]] {
				d.dirStart = append(d.dirStart, s+tShift)
			}
			for v := lo; v < bhi; v++ {
				d.off[v+1] = base.off[v+1] + tShift
				d.dirOff[v+1] = base.dirOff[v+1] + dShift
			}
			lo = bhi
		}
		for v := lo; v < hi; v++ {
			d.off[v+1] = int32(len(d.targets))
			d.dirOff[v+1] = int32(len(d.dirLabels))
		}
	}
	cursor := 0
	for _, dv := range dirty {
		clean(cursor, int(dv))
		r := rows[dv]
		for i, id := range r.labels {
			d.dirLabels = append(d.dirLabels, id)
			d.dirStart = append(d.dirStart, int32(len(d.targets)))
			d.targets = append(d.targets, r.lists[i]...)
		}
		d.all = append(d.all, r.all...)
		d.off[dv+1] = int32(len(d.targets))
		d.dirOff[dv+1] = int32(len(d.dirLabels))
		cursor = int(dv) + 1
	}
	clean(cursor, n2)
	return d
}

// Refreeze merges the delta into a new sharded snapshot with the same
// stride: shard boundaries are preserved (the node space only ever grows, so
// extra shards appear at the tail when added nodes spill past the last
// boundary), and only shards owning a touched node re-run the O(E_shard)
// frontier accounting — clean shards reuse their counts, re-pointed at the
// refrozen snapshot.
func (s *Sharded) Refreeze(d *Delta) *Sharded {
	if d.base != s.f {
		panic("graph: Sharded.Refreeze with a delta bound to a different base")
	}
	nf := s.f.Refreeze(d)
	n2 := len(nf.nodes)
	stride := s.stride
	k := 1
	if n2 > 0 {
		k = (n2 + stride - 1) / stride
	}
	ns := &Sharded{f: nf, stride: stride}
	ns.starts = make([]NodeID, k+1)
	for i := 1; i <= k; i++ {
		hi := i * stride
		if hi > n2 {
			hi = n2
		}
		ns.starts[i] = NodeID(hi)
	}
	dirtyShard := make([]bool, k)
	mark := func(v NodeID) {
		i := int(v) / stride
		if i >= k {
			i = k - 1
		}
		dirtyShard[i] = true
	}
	outRows, inRows := d.rows()
	for v := range outRows {
		mark(v)
	}
	for v := range inRows {
		mark(v)
	}
	for v := range d.dead {
		mark(v)
	}
	ns.shards = make([]Shard, k)
	for i := range ns.shards {
		lo, hi := ns.starts[i], ns.starts[i+1]
		if !dirtyShard[i] && i < len(s.shards) && s.shards[i].lo == lo && s.shards[i].hi == hi {
			sh := s.shards[i]
			sh.f = nf
			ns.shards[i] = sh
			continue
		}
		ns.shards[i] = carveShard(nf, lo, hi)
	}
	return ns
}
