package graph

import (
	"sort"
	"testing"
)

// sortedIDs returns a sorted copy so order-insensitive comparisons read
// clearly in table tests.
func sortedIDs(ids []NodeID) []NodeID {
	out := append([]NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func idsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildIndexed constructs the fixture shared by the index tables:
//
//	0:person -knows-> 1:person -knows-> 2:person
//	0 -likes-> 1, 1 -likes-> 1 (self-loop), 2 -_-> 0 (literal wildcard label)
func buildIndexed(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < 3; i++ {
		g.AddNode("person")
	}
	g.AddEdge(0, 1, "knows")
	g.AddEdge(1, 2, "knows")
	g.AddEdge(0, 1, "likes")
	g.AddEdge(1, 1, "likes")
	g.AddEdge(2, 0, Wildcard)
	return g
}

func TestOutByLabelTable(t *testing.T) {
	g := buildIndexed(t)
	tests := []struct {
		name  string
		v     NodeID
		label string
		want  []NodeID
	}{
		{"exact label", 0, "knows", []NodeID{1}},
		{"parallel edge second label", 0, "likes", []NodeID{1}},
		{"absent label", 0, "hates", nil},
		{"wildcard returns all targets with duplicates", 0, Wildcard, []NodeID{1, 1}},
		{"self-loop target", 1, "likes", []NodeID{1}},
		{"wildcard over loop and chain", 1, Wildcard, []NodeID{1, 2}},
		{"literal wildcard data edge", 2, Wildcard, []NodeID{0}},
		{"no outgoing edges of label", 2, "knows", nil},
		{"invalid node", 99, "knows", nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := sortedIDs(g.OutByLabel(tc.v, tc.label))
			if !idsEqual(got, sortedIDs(tc.want)) {
				t.Errorf("OutByLabel(%d, %q) = %v, want %v", tc.v, tc.label, got, tc.want)
			}
		})
	}
}

func TestInByLabelTable(t *testing.T) {
	g := buildIndexed(t)
	tests := []struct {
		name  string
		v     NodeID
		label string
		want  []NodeID
	}{
		{"exact label", 1, "knows", []NodeID{0}},
		{"self-loop source included", 1, "likes", []NodeID{0, 1}},
		{"wildcard collects every inbound edge", 1, Wildcard, []NodeID{0, 0, 1}},
		{"literal wildcard inbound", 0, Wildcard, []NodeID{2}},
		{"absent label", 2, "likes", nil},
		{"invalid node", -1, "knows", nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := sortedIDs(g.InByLabel(tc.v, tc.label))
			if !idsEqual(got, sortedIDs(tc.want)) {
				t.Errorf("InByLabel(%d, %q) = %v, want %v", tc.v, tc.label, got, tc.want)
			}
		})
	}
}

func TestHasEdgeIndexTable(t *testing.T) {
	g := buildIndexed(t)
	tests := []struct {
		name     string
		from, to NodeID
		label    string
		want     bool
	}{
		{"exact", 0, 1, "knows", true},
		{"wrong label", 0, 1, "hates", false},
		{"wrong direction", 1, 0, "knows", false},
		{"wildcard query", 0, 1, Wildcard, true},
		{"wildcard query absent pair", 0, 2, Wildcard, false},
		{"self-loop exact", 1, 1, "likes", true},
		{"self-loop wildcard", 1, 1, Wildcard, true},
		// An edge whose data label is the literal '_' is found by a
		// wildcard query (which matches any label).
		{"literal wildcard edge", 2, 0, Wildcard, true},
		{"invalid endpoint", 7, 0, "knows", false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := g.HasEdge(tc.from, tc.to, tc.label); got != tc.want {
				t.Errorf("HasEdge(%d, %d, %q) = %v, want %v", tc.from, tc.to, tc.label, got, tc.want)
			}
		})
	}
}

func TestCoversTable(t *testing.T) {
	g := buildIndexed(t)
	tests := []struct {
		name string
		v    NodeID
		sig  Signature
		want bool
	}{
		{"empty signature", 2, Signature{}, true},
		{"single out label", 0, Signature{Out: []string{"knows"}}, true},
		{"both out labels", 0, Signature{Out: []string{"knows", "likes"}}, true},
		{"missing out label", 2, Signature{Out: []string{"knows"}}, false},
		{"wildcard out needs any edge", 2, Signature{Out: []string{Wildcard}}, true},
		{"in label via self-loop", 1, Signature{In: []string{"likes"}}, true},
		{"in label absent", 2, Signature{In: []string{"likes"}}, false},
		{"combined out and in", 1, Signature{Out: []string{"knows"}, In: []string{"knows"}}, true},
		{"combined fails on one side", 0, Signature{Out: []string{"knows"}, In: []string{"knows"}}, false},
		{"wildcard in on node with only literal-wildcard inbound", 0, Signature{In: []string{Wildcard}}, true},
		{"invalid node", 42, Signature{}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := g.Covers(tc.v, tc.sig); got != tc.want {
				t.Errorf("Covers(%d, %+v) = %v, want %v", tc.v, tc.sig, got, tc.want)
			}
		})
	}
}

func TestCandidateNodesReturnsCopy(t *testing.T) {
	g := buildIndexed(t)
	cands := g.CandidateNodes("person")
	if len(cands) != 3 {
		t.Fatalf("CandidateNodes = %v, want 3 nodes", cands)
	}
	// Corrupting the returned slice must not corrupt the label index.
	for i := range cands {
		cands[i] = InvalidNode
	}
	again := g.CandidateNodes("person")
	if !idsEqual(sortedIDs(again), []NodeID{0, 1, 2}) {
		t.Fatalf("label index corrupted through CandidateNodes: %v", again)
	}
}

// checkIndexConsistency cross-validates the label-keyed index, the edge
// sets, and Covers against the raw Out/In adjacency slices.
func checkIndexConsistency(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		id := NodeID(v)
		// Every raw out edge must be visible through the index and HasEdge.
		labels := map[string]bool{Wildcard: true}
		for _, e := range g.Out(id) {
			labels[e.Label] = true
		}
		for _, e := range g.In(id) {
			labels[e.Label] = true
		}
		for l := range labels {
			wantOut := []NodeID{}
			for _, e := range g.Out(id) {
				if l == Wildcard || e.Label == l {
					wantOut = append(wantOut, e.To)
				}
			}
			if got := sortedIDs(g.OutByLabel(id, l)); !idsEqual(got, sortedIDs(wantOut)) {
				t.Errorf("node %d label %q: OutByLabel = %v, scan = %v", v, l, got, wantOut)
			}
			wantIn := []NodeID{}
			for _, e := range g.In(id) {
				if l == Wildcard || e.Label == l {
					wantIn = append(wantIn, e.From)
				}
			}
			if got := sortedIDs(g.InByLabel(id, l)); !idsEqual(got, sortedIDs(wantIn)) {
				t.Errorf("node %d label %q: InByLabel = %v, scan = %v", v, l, got, wantIn)
			}
		}
		for _, e := range g.Out(id) {
			if !g.HasEdge(e.From, e.To, e.Label) {
				t.Errorf("HasEdge misses raw edge %+v", e)
			}
			if !g.HasEdge(e.From, e.To, Wildcard) {
				t.Errorf("wildcard HasEdge misses raw edge %+v", e)
			}
			if !g.Covers(e.From, Signature{Out: []string{e.Label}}) {
				t.Errorf("Covers misses out label of raw edge %+v", e)
			}
			if !g.Covers(e.To, Signature{In: []string{e.Label}}) {
				t.Errorf("Covers misses in label of raw edge %+v", e)
			}
		}
	}
}

func TestIndexConsistencyAfterClone(t *testing.T) {
	g := buildIndexed(t)
	c := g.Clone()
	checkIndexConsistency(t, c)
	// Mutating the clone must not leak into the original's index.
	c.AddEdge(2, 1, "new")
	if g.HasEdge(2, 1, "new") {
		t.Error("clone mutation visible in original's edge set")
	}
	if len(g.OutByLabel(2, "new")) != 0 {
		t.Error("clone mutation visible in original's adjacency index")
	}
	checkIndexConsistency(t, g)
}

func TestIndexConsistencyAfterSubgraph(t *testing.T) {
	g := buildIndexed(t)
	sub, remap := g.Subgraph(map[NodeID]bool{0: true, 1: true})
	checkIndexConsistency(t, sub)
	if !sub.HasEdge(remap[0], remap[1], "knows") {
		t.Error("subgraph lost kept edge from index view")
	}
	if sub.HasEdge(remap[1], remap[1], "knows") {
		t.Error("subgraph index reports edge that was never added")
	}
	// The self-loop at 1 survives induction.
	if !sub.HasEdge(remap[1], remap[1], "likes") {
		t.Error("subgraph index lost induced self-loop")
	}
}

func TestIndexConsistencyAfterDisjointUnion(t *testing.T) {
	g := buildIndexed(t)
	other := buildIndexed(t)
	offset := g.DisjointUnion(other)
	checkIndexConsistency(t, g)
	if !g.HasEdge(0+offset, 1+offset, "knows") {
		t.Error("union index misses shifted edge")
	}
	if g.HasEdge(0, 1+offset, "knows") {
		t.Error("union index invents cross-component edge")
	}
	if !g.HasEdge(1+offset, 1+offset, "likes") {
		t.Error("union index misses shifted self-loop")
	}
}

func TestAddEdgeIdempotentViaIndex(t *testing.T) {
	g := New()
	a, b := g.AddNode("x"), g.AddNode("y")
	for i := 0; i < 3; i++ {
		g.AddEdge(a, b, "e")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if got := g.OutByLabel(a, "e"); len(got) != 1 {
		t.Fatalf("OutByLabel holds duplicates after idempotent insert: %v", got)
	}
	if got := g.InByLabel(b, Wildcard); len(got) != 1 {
		t.Fatalf("wildcard InByLabel holds duplicates after idempotent insert: %v", got)
	}
}
