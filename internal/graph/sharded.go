// Sharded CSR snapshots. A Frozen snapshot's dense offset arrays make node
// ranges the natural unit of partitioning: because node IDs are dense and
// the CSR rows are laid out in ID order, a contiguous ID range [lo, hi) owns
// a contiguous slice of every per-direction array. Sharded carves the node
// space into K such ranges. Each shard is an independent graph.Reader over
// its own slice of the offset/target/label arrays; a thin routing layer
// (node→shard is one integer division on the dense ID space) dispatches
// whole-graph queries to the owning shard. Cross-shard ("frontier") edges
// stay physically inside the owning endpoint's target arrays — an edge
// (u, v) lives in shard(u)'s out rows and shard(v)'s in rows even when
// shard(u) ≠ shard(v) — so HasEdgeID and CandidateNodes remain exact; the
// per-shard frontier counts are exposed for balance diagnostics and the
// pivot-placement heuristic.
//
// The layer exists for parallel execution: per-shard candidate enumeration
// lets match fan a root pivot's candidate set out across workers
// (match.FindAllSharded), the execution layer's work-stealing mode keeps
// split branches local to a worker, and a future distributed deployment
// would ship one Shard per machine — the fragmentation the paper runs on 20
// machines.
package graph

import (
	"fmt"
	"runtime"
	"sort"
)

// Sharded is an immutable CSR snapshot range-partitioned into K shards. It
// implements the full Reader API with the same results as the Frozen
// snapshot it was carved from (routing adds one bounds computation per
// query), plus the shard-level API the parallel execution layer fans out
// over. Like Frozen it is safe for concurrent readers.
type Sharded struct {
	f      *Frozen
	starts []NodeID // shard s owns [starts[s], starts[s+1]); len K+1
	stride int      // nodes per shard (last shard takes the remainder)
	shards []Shard
}

// Shard is one contiguous node range of a Sharded snapshot, itself a
// graph.Reader. Node-level lookups (labels, attributes, interning) answer
// over the whole node universe — a deployment replicates node metadata and
// partitions edges — while adjacency and candidate queries answer only for
// owned nodes: OutByLabelID/InByLabelID/HasEdgeID return empty outside
// [Lo, Hi), and NodesByLabel/CandidateNodes enumerate owned nodes only. A
// Shard is therefore not a drop-in substitute for the full snapshot in a
// whole-graph search; it is the per-worker view the fan-out APIs slice work
// with.
type Shard struct {
	f      *Frozen
	lo, hi NodeID
	// edges counts out-edges owned by the shard; frontierOut/frontierIn
	// count the owned edges whose other endpoint lies outside [lo, hi);
	// dead counts tombstoned slots in the range (see Frozen.Alive).
	edges       int
	frontierOut int
	frontierIn  int
	dead        int
}

// ShardedView is the optional interface a Reader implements when it is
// backed by a sharded snapshot. Consumers that can exploit placement — the
// pivot-selection heuristic, the parallel candidate fan-out — type-assert
// against it and fall back to the flat path otherwise.
type ShardedView interface {
	Reader
	ShardCount() int
	ShardOf(v NodeID) int
	DensestShard(label string) (shard, count int)
}

var (
	_ Reader      = (*Sharded)(nil)
	_ Reader      = (*Shard)(nil)
	_ ShardedView = (*Sharded)(nil)
)

// DefaultShardCount picks K for a graph of the given node count: one shard
// per available CPU, clamped so a shard never owns fewer than 256 nodes
// (finer sharding than that spends more on routing and fan-out bookkeeping
// than a shard's worth of work costs).
func DefaultShardCount(nodes int) int {
	k := runtime.GOMAXPROCS(0)
	if max := nodes / 256; k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Sharded carves the snapshot into k range-partitioned shards. The shards
// alias the snapshot's arrays (carving is one O(V+E) counting pass, no edge
// data is copied). Degenerate counts are clamped here, not left to callers:
// k is forced into [1, NumNodes], an empty graph gets one empty shard, and
// the all-empty trailing shards a non-dividing stride would otherwise
// produce (e.g. k=9 over 10 nodes: stride 2 covers the node space in 5
// shards, leaving 4 empty) are collapsed, so ShardCount never exceeds the
// number of shards that own at least one node.
func (f *Frozen) Sharded(k int) *Sharded {
	n := len(f.nodes)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	stride := 1
	if n > 0 {
		stride = (n + k - 1) / k
		k = (n + stride - 1) / stride // collapse the all-empty tail
	} else {
		k = 1 // empty graph: one empty shard
	}
	s := &Sharded{f: f, stride: stride}
	s.starts = make([]NodeID, k+1)
	for i := 1; i <= k; i++ {
		hi := i * stride
		if hi > n {
			hi = n
		}
		s.starts[i] = NodeID(hi)
	}
	s.shards = make([]Shard, k)
	for i := range s.shards {
		s.shards[i] = carveShard(f, s.starts[i], s.starts[i+1])
	}
	return s
}

// carveShard runs the per-shard accounting pass: owned edge count, frontier
// counts by direction, and tombstoned slots in range. Shared by Sharded and
// the dirty-shard path of Sharded.Refreeze.
func carveShard(f *Frozen, lo, hi NodeID) Shard {
	sh := Shard{f: f, lo: lo, hi: hi}
	sh.edges = int(f.out.off[hi] - f.out.off[lo])
	for _, t := range f.out.targets[f.out.off[lo]:f.out.off[hi]] {
		if t < lo || t >= hi {
			sh.frontierOut++
		}
	}
	for _, t := range f.in.targets[f.in.off[lo]:f.in.off[hi]] {
		if t < lo || t >= hi {
			sh.frontierIn++
		}
	}
	if f.dead != nil {
		for v := lo; v < hi; v++ {
			if f.dead[v] {
				sh.dead++
			}
		}
	}
	return sh
}

// FreezeSharded is Freeze followed by Sharded(k): it consumes the builder
// and returns the snapshot pre-partitioned for parallel consumers.
func (b *Builder) FreezeSharded(k int) *Sharded { return b.Freeze().Sharded(k) }

// Sharded returns a sharded immutable snapshot of g's current contents; see
// Graph.Frozen for the snapshot semantics.
func (g *Graph) Sharded(k int) *Sharded { return g.Frozen().Sharded(k) }

// Frozen returns the underlying un-sharded snapshot (shared storage).
func (s *Sharded) Frozen() *Frozen { return s.f }

// ShardCount returns K.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// ShardOf returns the shard owning node v: one division on the dense ID
// space, O(1).
func (s *Sharded) ShardOf(v NodeID) int {
	i := int(v) / s.stride
	if max := len(s.shards) - 1; i > max {
		i = max
	}
	return i
}

// Shard returns shard i as an independent Reader.
func (s *Sharded) Shard(i int) *Shard { return &s.shards[i] }

// ShardBounds returns the node range [lo, hi) shard i owns.
func (s *Sharded) ShardBounds(i int) (lo, hi NodeID) { return s.shards[i].lo, s.shards[i].hi }

// FrontierEdges returns how many of shard i's owned edges cross a shard
// boundary, split by direction. In a distributed deployment these are the
// edges whose resolution would touch a remote node's metadata; locally they
// quantify how cleanly the range partition cuts the graph.
func (s *Sharded) FrontierEdges(i int) (out, in int) {
	return s.shards[i].frontierOut, s.shards[i].frontierIn
}

// DensestShard returns the shard holding the most nodes with the given
// label, and that count (wildcard counts every node). Ties break toward the
// lower shard index, keeping the choice deterministic.
func (s *Sharded) DensestShard(label string) (shard, count int) {
	for i := range s.shards {
		if c := s.shards[i].LabelFrequency(label); c > count {
			shard, count = i, c
		}
	}
	return shard, count
}

// Reader delegation: a Sharded answers whole-graph queries from the carved
// snapshot's arrays. Because shards are contiguous ID ranges of the same
// dense layout, the owning shard's slice of each array is exactly the run
// the flat snapshot would consult, so delegation and routing agree by
// construction (pinned by the sharded equivalence tests).

// NumNodes returns |V|.
func (s *Sharded) NumNodes() int { return s.f.NumNodes() }

// NumEdges returns |E|.
func (s *Sharded) NumEdges() int { return s.f.NumEdges() }

// Label returns the label of node v.
func (s *Sharded) Label(v NodeID) string { return s.f.Label(v) }

// Attr reports the value of attribute A at node v and whether it exists.
func (s *Sharded) Attr(v NodeID, attr string) (string, bool) { return s.f.Attr(v, attr) }

// Attrs returns the attribute tuple of v; see Frozen.Attrs.
func (s *Sharded) Attrs(v NodeID) map[string]string { return s.f.Attrs(v) }

// Size returns |G|; see Frozen.Size.
func (s *Sharded) Size() int { return s.f.Size() }

// Out returns the outgoing edges of v, synthesized per call.
func (s *Sharded) Out(v NodeID) []Edge { return s.f.Out(v) }

// In returns the incoming edges of v, synthesized per call.
func (s *Sharded) In(v NodeID) []Edge { return s.f.In(v) }

// EdgeLabelID resolves an edge label to its interned ID.
func (s *Sharded) EdgeLabelID(label string) LabelID { return s.f.EdgeLabelID(label) }

// NodeLabelID resolves a node label to its interned ID.
func (s *Sharded) NodeLabelID(label string) LabelID { return s.f.NodeLabelID(label) }

// LabelIDOf returns the interned ID of node v's label.
func (s *Sharded) LabelIDOf(v NodeID) LabelID { return s.f.LabelIDOf(v) }

// ResolveLabels maps a label list through EdgeLabelID.
func (s *Sharded) ResolveLabels(labels []string) []LabelID { return s.f.ResolveLabels(labels) }

// Labels returns the distinct node labels in deterministic order.
func (s *Sharded) Labels() []string { return s.f.Labels() }

// HasEdge reports whether edge (from,to) with the given label exists.
func (s *Sharded) HasEdge(from, to NodeID, label string) bool { return s.f.HasEdge(from, to, label) }

// HasEdgeID is HasEdge with a pre-resolved label ID: the probe runs in
// shard(from)'s rows, where the edge lives even when to is remote.
func (s *Sharded) HasEdgeID(from, to NodeID, id LabelID) bool { return s.f.HasEdgeID(from, to, id) }

// OutByLabel returns the targets of v's outgoing edges carrying the label.
func (s *Sharded) OutByLabel(v NodeID, label string) []NodeID { return s.f.OutByLabel(v, label) }

// OutByLabelID is OutByLabel with a pre-resolved label ID.
func (s *Sharded) OutByLabelID(v NodeID, id LabelID) []NodeID { return s.f.OutByLabelID(v, id) }

// InByLabel returns the sources of v's incoming edges carrying the label.
func (s *Sharded) InByLabel(v NodeID, label string) []NodeID { return s.f.InByLabel(v, label) }

// InByLabelID is InByLabel with a pre-resolved label ID.
func (s *Sharded) InByLabelID(v NodeID, id LabelID) []NodeID { return s.f.InByLabelID(v, id) }

// NodesByLabel returns a fresh copy of the nodes carrying the label.
func (s *Sharded) NodesByLabel(label string) []NodeID { return s.f.NodesByLabel(label) }

// CandidateNodes returns a fresh copy of the candidates for the label.
func (s *Sharded) CandidateNodes(label string) []NodeID { return s.f.CandidateNodes(label) }

// AppendCandidates appends the label's candidates into dst. The global
// candidate list equals the per-shard lists concatenated in shard order:
// node IDs ascend within a label run and shards are ascending ID ranges.
func (s *Sharded) AppendCandidates(dst []NodeID, label string) []NodeID {
	return s.f.AppendCandidates(dst, label)
}

// LabelFrequency returns the number of nodes carrying the label.
func (s *Sharded) LabelFrequency(label string) int { return s.f.LabelFrequency(label) }

// Covers reports whether node v's adjacency covers the signature.
func (s *Sharded) Covers(v NodeID, sig Signature) bool { return s.f.Covers(v, sig) }

// CoversIDs is Covers with pre-resolved label IDs.
func (s *Sharded) CoversIDs(v NodeID, outIDs, inIDs []LabelID) bool {
	return s.f.CoversIDs(v, outIDs, inIDs)
}

// Neighborhood returns the nodes within d undirected hops of v.
func (s *Sharded) Neighborhood(v NodeID, d int) map[NodeID]bool { return s.f.Neighborhood(v, d) }

// UndirectedDistance returns the undirected hop distance between u and v.
func (s *Sharded) UndirectedDistance(u, v NodeID) int { return s.f.UndirectedDistance(u, v) }

// String summarizes the partition for logs.
func (s *Sharded) String() string {
	fo, fi := 0, 0
	for i := range s.shards {
		fo += s.shards[i].frontierOut
		fi += s.shards[i].frontierIn
	}
	return fmt.Sprintf("Sharded{K=%d, V=%d, E=%d, frontier out/in=%d/%d}",
		len(s.shards), s.NumNodes(), s.NumEdges(), fo, fi)
}

// --- Shard: the per-range Reader ---

// owns reports whether the shard's range contains v.
func (sh *Shard) owns(v NodeID) bool { return v >= sh.lo && v < sh.hi }

// Lo returns the first node ID the shard owns.
func (sh *Shard) Lo() NodeID { return sh.lo }

// Hi returns one past the last node ID the shard owns.
func (sh *Shard) Hi() NodeID { return sh.hi }

// NumNodes returns the number of nodes the shard owns.
func (sh *Shard) NumNodes() int { return int(sh.hi - sh.lo) }

// NumEdges returns the number of out-edges the shard owns (summing over all
// shards gives the graph's |E| exactly once).
func (sh *Shard) NumEdges() int { return sh.edges }

// FrontierEdges returns the shard's cross-shard edge counts by direction.
func (sh *Shard) FrontierEdges() (out, in int) { return sh.frontierOut, sh.frontierIn }

// Label returns the label of node v (any node: metadata is replicated).
func (sh *Shard) Label(v NodeID) string { return sh.f.Label(v) }

// Attr reports attribute A of node v (any node).
func (sh *Shard) Attr(v NodeID, attr string) (string, bool) { return sh.f.Attr(v, attr) }

// Attrs returns the attribute tuple of v (any node).
func (sh *Shard) Attrs(v NodeID) map[string]string { return sh.f.Attrs(v) }

// Size returns the owned share of |G|: owned live nodes, their out-edges
// and their attributes.
func (sh *Shard) Size() int {
	s := sh.NumNodes() - sh.dead + sh.edges
	for v := sh.lo; v < sh.hi; v++ {
		s += len(sh.f.nodes[v].Attrs)
	}
	return s
}

// Out returns the outgoing edges of v when the shard owns v.
func (sh *Shard) Out(v NodeID) []Edge {
	if !sh.owns(v) {
		return nil
	}
	return sh.f.Out(v)
}

// In returns the incoming edges of v when the shard owns v.
func (sh *Shard) In(v NodeID) []Edge {
	if !sh.owns(v) {
		return nil
	}
	return sh.f.In(v)
}

// EdgeLabelID resolves an edge label (interning is shared graph-wide).
func (sh *Shard) EdgeLabelID(label string) LabelID { return sh.f.EdgeLabelID(label) }

// NodeLabelID resolves a node label (interning is shared graph-wide).
func (sh *Shard) NodeLabelID(label string) LabelID { return sh.f.NodeLabelID(label) }

// LabelIDOf returns the interned ID of node v's label (any node).
func (sh *Shard) LabelIDOf(v NodeID) LabelID { return sh.f.LabelIDOf(v) }

// ResolveLabels maps a label list through EdgeLabelID.
func (sh *Shard) ResolveLabels(labels []string) []LabelID { return sh.f.ResolveLabels(labels) }

// Labels returns the graph's distinct node labels (shared label universe).
func (sh *Shard) Labels() []string { return sh.f.Labels() }

// HasEdge reports an owned edge; false when the shard does not own from.
func (sh *Shard) HasEdge(from, to NodeID, label string) bool {
	return sh.HasEdgeID(from, to, sh.f.EdgeLabelID(label))
}

// HasEdgeID is HasEdge with a pre-resolved label ID.
func (sh *Shard) HasEdgeID(from, to NodeID, id LabelID) bool {
	if !sh.owns(from) {
		return false
	}
	return sh.f.HasEdgeID(from, to, id)
}

// OutByLabel returns owned adjacency; empty when the shard does not own v.
func (sh *Shard) OutByLabel(v NodeID, label string) []NodeID {
	return sh.OutByLabelID(v, sh.f.EdgeLabelID(label))
}

// OutByLabelID is OutByLabel with a pre-resolved label ID.
func (sh *Shard) OutByLabelID(v NodeID, id LabelID) []NodeID {
	if !sh.owns(v) {
		return nil
	}
	return sh.f.OutByLabelID(v, id)
}

// InByLabel returns owned adjacency; empty when the shard does not own v.
func (sh *Shard) InByLabel(v NodeID, label string) []NodeID {
	return sh.InByLabelID(v, sh.f.EdgeLabelID(label))
}

// InByLabelID is InByLabel with a pre-resolved label ID.
func (sh *Shard) InByLabelID(v NodeID, id LabelID) []NodeID {
	if !sh.owns(v) {
		return nil
	}
	return sh.f.InByLabelID(v, id)
}

// ownedRun returns the shard's slice of the snapshot's ascending label run:
// two binary searches for the range boundaries, no copying.
func (sh *Shard) ownedRun(label string) []NodeID {
	run := sh.f.nodesWithLabel(label)
	if len(run) == 0 {
		return nil
	}
	lo := sort.Search(len(run), func(i int) bool { return run[i] >= sh.lo })
	hi := sort.Search(len(run), func(i int) bool { return run[i] >= sh.hi })
	return run[lo:hi]
}

// NodesByLabel returns a fresh copy of the owned nodes carrying the label.
func (sh *Shard) NodesByLabel(label string) []NodeID {
	run := sh.ownedRun(label)
	if run == nil {
		return nil
	}
	return append([]NodeID(nil), run...)
}

// CandidateNodes returns a fresh copy of the owned candidates for the
// label: every owned node for the wildcard, else the owned nodes with that
// exact label.
func (sh *Shard) CandidateNodes(label string) []NodeID {
	return sh.AppendCandidates(nil, label)
}

// AppendCandidates appends CandidateNodes(label) into dst without any other
// allocation.
func (sh *Shard) AppendCandidates(dst []NodeID, label string) []NodeID {
	if label == Wildcard {
		for v := sh.lo; v < sh.hi; v++ {
			if sh.f.dead != nil && sh.f.dead[v] {
				continue
			}
			dst = append(dst, v)
		}
		return dst
	}
	return append(dst, sh.ownedRun(label)...)
}

// LabelFrequency returns the number of owned live nodes carrying the label.
func (sh *Shard) LabelFrequency(label string) int {
	if label == Wildcard {
		return sh.NumNodes() - sh.dead
	}
	return len(sh.ownedRun(label))
}

// Covers reports whether an owned node's adjacency covers the signature.
func (sh *Shard) Covers(v NodeID, sig Signature) bool {
	return sh.CoversIDs(v, sh.f.ResolveLabels(sig.Out), sh.f.ResolveLabels(sig.In))
}

// CoversIDs is Covers with pre-resolved label IDs; false for unowned nodes.
func (sh *Shard) CoversIDs(v NodeID, outIDs, inIDs []LabelID) bool {
	if !sh.owns(v) {
		return false
	}
	return sh.f.CoversIDs(v, outIDs, inIDs)
}

// Neighborhood runs the shared BFS over the shard's owned adjacency: the
// frontier stops expanding at unowned nodes (their adjacency reads empty),
// matching what a worker machine could traverse without communication.
func (sh *Shard) Neighborhood(v NodeID, d int) map[NodeID]bool { return neighborhood(sh, v, d) }

// UndirectedDistance is the shared BFS over owned adjacency only.
func (sh *Shard) UndirectedDistance(u, v NodeID) int { return undirectedDistance(sh, u, v) }
