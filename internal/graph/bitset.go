// Per-snapshot candidate bitsets: O(1) membership for high-frequency label
// candidate sets. A sorted candidate run answers "is v a candidate for
// label l" only by binary search; when the probing side is small and the
// label's run is long (scoped revalidation roots, skewed frame
// intersections), a bitset over the node ID space turns each probe into one
// word read. Bitsets are built lazily on first request and cached on the
// snapshot — safe because snapshots are immutable, and bounded because only
// labels above a frequency and density floor get one (a sparse label's run
// is already cheap to search, and its bitset would be nearly all zeros).
package graph

import "sync"

// Bitset is a fixed-capacity bit vector over the dense NodeID space.
// The zero-length Bitset tests negative for every ID.
type Bitset []uint64

// newBitset returns a Bitset able to hold IDs in [0, n).
func newBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// set marks v. The caller guarantees v is within capacity.
func (b Bitset) set(v NodeID) { b[uint(v)>>6] |= 1 << (uint(v) & 63) }

// Test reports whether v is in the set. IDs beyond the bitset's capacity
// (or negative) test false, so probing with IDs from a larger ID space is
// safe.
func (b Bitset) Test(v NodeID) bool {
	if v < 0 {
		return false
	}
	w := uint(v) >> 6
	return w < uint(len(b)) && b[w]&(1<<(uint(v)&63)) != 0
}

// BitsetProvider is the optional Reader extension for snapshots that can
// serve candidate membership as a bitset. CandidateBitset returns nil when
// the label is below the build thresholds — callers must fall back to the
// sorted candidate run, never treat nil as "no candidates".
type BitsetProvider interface {
	Reader
	CandidateBitset(label string) Bitset
}

const (
	// bitsetMinFreq is the candidate-count floor below which no bitset is
	// built: a short sorted run beats a bitset probe's cache miss, and the
	// bitset's size is paid in the ID space, not the run length.
	bitsetMinFreq = 256
	// bitsetMaxSparsity caps how empty a built bitset may be: a label must
	// populate at least 1/bitsetMaxSparsity of the ID space, or the words
	// are mostly zero and the memory buys little.
	bitsetMaxSparsity = 64
)

// bitsetWorthwhile applies the build thresholds for a label with freq
// candidates in an ID space of n slots.
func bitsetWorthwhile(freq, n int) bool {
	return freq >= bitsetMinFreq && freq*bitsetMaxSparsity >= n
}

// bitsetCache is the lazily filled per-snapshot store, embedded in Frozen
// and Overlay. The mutex only guards the map; a returned Bitset is
// immutable from the moment it is published.
type bitsetCache struct {
	mu   sync.Mutex
	sets map[string]Bitset
}

// get returns the cached bitset for label, building it via fill on a miss.
// fill must append the label's candidate IDs; it runs under the cache lock,
// which is fine because builds are rare (once per hot label per snapshot).
func (c *bitsetCache) get(label string, n int, fill func(Bitset)) Bitset {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bs, ok := c.sets[label]; ok {
		return bs
	}
	bs := newBitset(n)
	fill(bs)
	if c.sets == nil {
		c.sets = make(map[string]Bitset)
	}
	c.sets[label] = bs
	return bs
}

// CandidateBitset returns a bitset over f's candidate set for label
// (wildcard = all live nodes), or nil when the label is below the build
// thresholds. The result is immutable and cached for the snapshot's
// lifetime; concurrent callers share one build.
func (f *Frozen) CandidateBitset(label string) Bitset {
	n := len(f.nodes)
	if !bitsetWorthwhile(f.LabelFrequency(label), n) {
		return nil
	}
	return f.bitsets.get(label, n, func(bs Bitset) {
		if label == Wildcard {
			for v := range f.nodes {
				if f.dead == nil || !f.dead[v] {
					bs.set(NodeID(v))
				}
			}
			return
		}
		for _, v := range f.nodesWithLabel(label) {
			bs.set(v)
		}
	})
}

// CandidateBitset delegates to the underlying snapshot: the sharded view's
// full-graph candidate set is the Frozen's. (Per-Shard candidate queries
// are owned-range-only and deliberately have no bitset — a full-graph
// bitset would widen a Shard's answers.)
func (s *Sharded) CandidateBitset(label string) Bitset {
	return s.f.CandidateBitset(label)
}

// CandidateBitset returns a bitset over the overlay's candidate set, or nil
// below the build thresholds. When the delta leaves the label's population
// untouched — no added node carries it and no base node died — the base
// snapshot's cached bitset is shared as-is; otherwise the overlay builds
// and caches its own over the overlaid ID space.
func (o *Overlay) CandidateBitset(label string) Bitset {
	o.check()
	if label == Wildcard {
		if len(o.d.nodes) == 0 && len(o.d.dead) == 0 {
			return o.base.CandidateBitset(label)
		}
	} else if len(o.d.addedByLabel[label]) == 0 && o.d.deadBase == 0 {
		return o.base.CandidateBitset(label)
	}
	n := o.NumNodes()
	if !bitsetWorthwhile(o.LabelFrequency(label), n) {
		return nil
	}
	return o.bitsets.get(label, n, func(bs Bitset) {
		for _, v := range o.AppendCandidates(nil, label) {
			bs.set(v)
		}
	})
}

var (
	_ BitsetProvider = (*Frozen)(nil)
	_ BitsetProvider = (*Sharded)(nil)
	_ BitsetProvider = (*Overlay)(nil)
)
