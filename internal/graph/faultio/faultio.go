// Package faultio provides fault-injecting io wrappers for the persistence
// layer's error-path tests: a Writer that fails (optionally short-writing)
// at the Nth write/sync op of its stream, and a Reader that returns an
// error once a byte budget is spent — the EIO-mid-record case. The wrappers
// are deterministic, so a property test can sweep the fault across every op
// index of a workload and assert the recovery contracts (longest-valid-
// prefix WAL replay, atomic snapshot store, sticky error state) at each.
//
// The package lives under internal/graph so the WAL and snapshot tests can
// reach it, but it has no dependency on graph itself — it wraps plain
// io.Writer/io.Reader and is usable anywhere a failing byte stream is
// needed (the gfdio atomic-store tests thread it under os.File writes).
package faultio

import (
	"errors"
	"io"
)

// ErrInjected is the error the wrappers fail with unless overridden. Tests
// assert errors.Is against it to prove the injected fault — not some
// unrelated failure — is what surfaced.
var ErrInjected = errors.New("faultio: injected fault")

// Writer wraps an io.Writer and injects a persistent fault into its op
// stream. Ops are counted across Write and Sync calls in program order; the
// op at index FailAt and every op after it fail — a dead disk does not
// heal, so a caller that keeps writing past the first error is leaking
// unacknowledged data, which the sticky-error tests catch as bytes that
// should not exist.
type Writer struct {
	W io.Writer
	// FailAt is the 0-based index of the first failing op; negative never
	// fails (pass -1 to count a workload's ops via Ops).
	FailAt int
	// Short makes the first failing op, when it is a Write, deliver half
	// its payload before reporting the error — the torn-write case. Later
	// failing ops deliver nothing.
	Short bool
	// Err overrides ErrInjected as the injected error.
	Err error

	// Ops counts the Write/Sync calls seen so far (including failed ones).
	Ops int
	// Failed reports whether the fault has fired at least once.
	Failed bool
}

func (w *Writer) fail() error {
	if w.Err != nil {
		return w.Err
	}
	return ErrInjected
}

func (w *Writer) failing() bool {
	return w.FailAt >= 0 && w.Ops > w.FailAt
}

// Write delivers p to the wrapped writer, or fails (wholly, or after half
// of p with Short on the first failing op) once the op stream reaches
// FailAt.
func (w *Writer) Write(p []byte) (int, error) {
	w.Ops++
	if !w.failing() {
		return w.W.Write(p)
	}
	first := !w.Failed
	w.Failed = true
	if first && w.Short && len(p) > 1 {
		n, err := w.W.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, w.fail()
	}
	return 0, w.fail()
}

// Sync counts as one op like Write does, fails at and after FailAt, and
// otherwise forwards to the wrapped writer's Sync when it has one. Writer
// always advertises Sync, so graph.NewWAL treats any faultio-wrapped
// destination as fsync-capable — exactly what the failed-fsync tests need
// over an in-memory buffer.
func (w *Writer) Sync() error {
	w.Ops++
	if w.failing() {
		w.Failed = true
		return w.fail()
	}
	if s, ok := w.W.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Reader wraps an io.Reader and fails once Limit bytes have been
// delivered: reads within the budget pass through (clamped to it), the
// first read past it returns the injected error, as does every read after
// — EIO on a bad sector, not EOF. A source that ends before the budget is
// spent passes its own error (e.g. io.EOF) through untouched.
type Reader struct {
	R io.Reader
	// Limit is the number of bytes delivered before the fault.
	Limit int64
	// Err overrides ErrInjected as the injected error.
	Err error
}

func (r *Reader) fail() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

func (r *Reader) Read(p []byte) (int, error) {
	if r.Limit <= 0 {
		return 0, r.fail()
	}
	if int64(len(p)) > r.Limit {
		p = p[:r.Limit]
	}
	n, err := r.R.Read(p)
	r.Limit -= int64(n)
	return n, err
}
