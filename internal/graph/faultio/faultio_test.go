package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestWriterFailAt(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAt: 1}
	if _, err := w.Write([]byte("ab")); err != nil {
		t.Fatalf("op 0 should pass: %v", err)
	}
	if _, err := w.Write([]byte("cd")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 1 should fail injected, got %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("ops after the fault must keep failing, got %v", err)
	}
	if got := buf.String(); got != "ab" {
		t.Fatalf("failed ops must deliver nothing: disk holds %q", got)
	}
	if w.Ops != 3 || !w.Failed {
		t.Fatalf("op accounting: Ops=%d Failed=%v", w.Ops, w.Failed)
	}
}

func TestWriterShort(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAt: 0, Short: true}
	if _, err := w.Write([]byte("abcd")); !errors.Is(err, ErrInjected) {
		t.Fatal("short write must still report the fault")
	}
	if got := buf.String(); got != "ab" {
		t.Fatalf("short write should deliver half, disk holds %q", got)
	}
	// Only the first failing op is short; later ones deliver nothing.
	if _, err := w.Write([]byte("efgh")); !errors.Is(err, ErrInjected) {
		t.Fatal("second failing op must fail")
	}
	if got := buf.String(); got != "ab" {
		t.Fatalf("second failing op must deliver nothing, disk holds %q", got)
	}
}

func TestWriterNeverFails(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAt: -1}
	if _, err := w.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Ops != 2 || w.Failed {
		t.Fatalf("counting run: Ops=%d Failed=%v", w.Ops, w.Failed)
	}
}

func TestReaderBudget(t *testing.T) {
	r := &Reader{R: strings.NewReader("abcdef"), Limit: 4}
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read past the budget must fail injected, got %v", err)
	}
	if string(got) != "abcd" {
		t.Fatalf("bytes within the budget must pass through, got %q", got)
	}
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatal("reads after the fault must keep failing")
	}
}

func TestReaderSourceEndsFirst(t *testing.T) {
	r := &Reader{R: strings.NewReader("ab"), Limit: 10}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "ab" {
		t.Fatalf("EOF inside the budget passes through: %q, %v", got, err)
	}
}
