// Tombstone compaction. RemoveNode retires ID slots instead of recycling
// them, so a long-lived snapshot that absorbs removal-heavy deltas accretes
// dead slots: every O(V) pass (wildcard candidates, refreeze's label
// re-count, the clean-row copies) keeps paying for nodes that no longer
// exist. Compact remaps the live slots onto a fresh dense ID space and drops
// the tombstones. Because dead nodes own no edges (the RemoveNode/Delta
// invariant), every CSR row of a dead node is empty, and because the live
// remap is monotone, every sorted run stays sorted — compaction is one
// O(V + E) copy with element-wise target remapping, no re-sorting. The cost
// is that node IDs change: Compact returns the Remap so callers holding IDs
// (sharded views, dataset samples, persisted match results) can translate.
package graph

import "fmt"

// Remap translates pre-compaction node IDs to post-compaction ones; index by
// old ID. Dead slots map to InvalidNode. A nil Remap means IDs were left
// unchanged (nothing was compacted); Of handles that case, so callers can
// thread a remap unconditionally.
type Remap []NodeID

// Of returns the post-compaction ID of v: v itself under a nil (identity)
// remap, InvalidNode for dropped or out-of-range slots.
func (m Remap) Of(v NodeID) NodeID {
	if m == nil {
		return v
	}
	if v < 0 || int(v) >= len(m) {
		return InvalidNode
	}
	return m[v]
}

// DeadFraction returns the tombstoned share of the dense ID space, the
// quantity the refreeze compaction policy thresholds on.
func (f *Frozen) DeadFraction() float64 {
	if len(f.nodes) == 0 {
		return 0
	}
	return float64(f.deadCount) / float64(len(f.nodes))
}

// Compact returns a snapshot with every tombstoned slot dropped and the live
// nodes renumbered onto a dense ID space, plus the old→new Remap. The
// relative order of live IDs is preserved (the remap is monotone), so
// adjacency runs and label runs stay sorted and no re-sorting happens. A
// snapshot with no tombstones is returned unchanged with a nil remap.
func (f *Frozen) Compact() (*Frozen, Remap) {
	if f.deadCount == 0 {
		return f, nil
	}
	n := len(f.nodes)
	live := n - f.deadCount
	remap := make(Remap, n)
	next := NodeID(0)
	for v := 0; v < n; v++ {
		if f.dead[v] {
			remap[v] = InvalidNode
		} else {
			remap[v] = next
			next++
		}
	}
	if int(next) != live {
		panic(fmt.Sprintf("graph: Compact: deadCount %d inconsistent with %d dead flags", f.deadCount, n-int(next)))
	}

	nf := &Frozen{
		epoch: nextEpoch(),
		// Label tables are immutable after construction: share them. A label
		// whose last node died keeps its (now empty) table entry.
		nodeLabelIDs:   f.nodeLabelIDs,
		nodeLabelNames: f.nodeLabelNames,
		labelIDs:       f.labelIDs,
		labelNames:     f.labelNames,
		edges:          f.edges,
	}
	nf.nodes = make([]Node, live)
	nf.nodeLabelOf = make([]LabelID, live)
	for v := 0; v < n; v++ {
		if j := remap[v]; j != InvalidNode {
			nf.nodes[j] = f.nodes[v]
			nf.nodes[j].ID = j
			nf.nodeLabelOf[j] = f.nodeLabelOf[v]
		}
	}
	nf.out = compactDir(&f.out, remap, live)
	nf.in = compactDir(&f.in, remap, live)

	// Nodes-by-label: the index already lists live nodes only, in ascending
	// ID order per label; a monotone remap preserves both, so the offsets
	// carry over verbatim and only the IDs translate.
	nf.byLabelOff = f.byLabelOff
	nf.byLabelNodes = make([]NodeID, len(f.byLabelNodes))
	for i, v := range f.byLabelNodes {
		nf.byLabelNodes[i] = remap[v]
	}
	return nf, remap
}

// compactDir drops dead rows from one CSR direction. Dead rows are empty, so
// the target/directory arrays keep their exact contents and internal offsets
// — only the per-node offset arrays lose the dead entries and the endpoint
// IDs translate through the remap.
func compactDir(d *csrDir, remap Remap, live int) csrDir {
	c := csrDir{
		off:       make([]int32, live+1),
		dirOff:    make([]int32, live+1),
		targets:   make([]NodeID, len(d.targets)),
		all:       make([]NodeID, len(d.all)),
		dirLabels: d.dirLabels,
		dirStart:  d.dirStart,
	}
	for v, j := 0, 0; v < len(d.off)-1; v++ {
		if remap[v] == InvalidNode {
			if d.off[v+1] != d.off[v] {
				panic(fmt.Sprintf("graph: Compact: tombstoned node %d still owns edges", v))
			}
			continue
		}
		c.off[j+1] = d.off[v+1]
		c.dirOff[j+1] = d.dirOff[v+1]
		j++
	}
	for i, t := range d.targets {
		c.targets[i] = remap[t]
	}
	for i, t := range d.all {
		c.all[i] = remap[t]
	}
	return c
}

// DefaultCompactThreshold is the dead-slot fraction beyond which
// RefreezeOpts compacts the refrozen snapshot instead of carrying the
// tombstones forward.
const DefaultCompactThreshold = 0.25

// RefreezeOptions configures RefreezeOpts.
type RefreezeOptions struct {
	// CompactThreshold is the DeadFraction at or above which the refrozen
	// snapshot is compacted. Zero means DefaultCompactThreshold; a negative
	// value disables compaction (always carry tombstones, i.e. plain
	// Refreeze).
	CompactThreshold float64
}

// RefreezeOpts is Refreeze with the compaction policy applied: the delta is
// merged as usual, and when the result's dead fraction reaches the
// threshold, the tombstones are dropped and the returned Remap translates
// the pre-compaction IDs (which the caller's delta, matches and external
// references still use). A nil Remap means IDs are unchanged.
func (f *Frozen) RefreezeOpts(d *Delta, opt RefreezeOptions) (*Frozen, Remap) {
	nf := f.Refreeze(d)
	thr := opt.CompactThreshold
	if thr == 0 {
		thr = DefaultCompactThreshold
	}
	if thr < 0 || nf.DeadFraction() < thr {
		return nf, nil
	}
	return nf.Compact()
}
