// Package graph implements directed labeled property graphs as defined in
// Section II of "Parallel Reasoning of Graph Functional Dependencies"
// (Fan, Liu, Cao; ICDE 2018).
//
// A graph G = (V, E, L, F_A) has a finite node set V, directed labeled edges
// E ⊆ V×V, a label L(v) ∈ Γ per node and L(e) per edge, and for each node a
// finite tuple F_A(v) of attribute/constant pairs carrying content, as in
// property graphs.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a Graph. IDs are dense indexes assigned in
// insertion order, which makes them usable as slice offsets throughout the
// reasoning code.
type NodeID int

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// Wildcard is the reserved label '_' that, in patterns, matches any label.
// In data graphs (including canonical graphs) it behaves as an ordinary
// label: only a wildcard pattern node can match a wildcard data node.
const Wildcard = "_"

// Edge is a directed labeled edge between two nodes.
type Edge struct {
	From  NodeID
	To    NodeID
	Label string
}

// Node is a labeled node with an attribute tuple. Attrs maps attribute names
// to constant values; absence of a key means the node does not carry that
// attribute (graphs are schemaless).
type Node struct {
	ID    NodeID
	Label string
	Attrs map[string]string
}

// LabelID is an edge label interned to a dense small integer. Interning
// keeps string hashing out of the matching hot path: every per-edge probe
// (HasEdgeID, OutByLabelID, InByLabelID) works on integers only. Resolve a
// string label once with EdgeLabelID, then probe by ID.
type LabelID int32

const (
	// AnyLabel is the LabelID of the Wildcard query: it matches every edge
	// label.
	AnyLabel LabelID = -1
	// NoLabel is returned by EdgeLabelID for labels no edge of the graph
	// carries; every probe with it finds nothing.
	NoLabel LabelID = -2
)

// labelAdj is one node's edge-label-keyed adjacency index: the neighbor
// endpoints grouped by interned edge label, plus the flat list of all
// endpoints for wildcard queries. A node's distinct incident labels are few,
// so the per-label lists are found by linear scan over an int slice — no
// hashing, no per-lookup allocation. Endpoints are kept in ascending NodeID
// order, so consumers can intersect two lists with a linear merge and test
// membership by binary search; `all` can hold the same neighbor more than
// once when parallel edges differ only in label.
type labelAdj struct {
	labels []LabelID
	lists  [][]NodeID
	all    []NodeID
}

func (a *labelAdj) add(id LabelID, n NodeID) {
	a.all = insertSorted(a.all, n)
	for i, l := range a.labels {
		if l == id {
			a.lists[i] = insertSorted(a.lists[i], n)
			return
		}
	}
	a.labels = append(a.labels, id)
	a.lists = append(a.lists, []NodeID{n})
}

// remove deletes one occurrence of n from the label's list and from the
// wildcard view. A label whose list empties keeps its (empty) slot; the
// per-node distinct-label count is small enough that compaction buys
// nothing.
func (a *labelAdj) remove(id LabelID, n NodeID) {
	a.all = removeSorted(a.all, n)
	for i, l := range a.labels {
		if l == id {
			a.lists[i] = removeSorted(a.lists[i], n)
			return
		}
	}
}

// removeSorted deletes one occurrence of n from an ascending list.
func removeSorted(list []NodeID, n NodeID) []NodeID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= n })
	if i == len(list) || list[i] != n {
		return list
	}
	copy(list[i:], list[i+1:])
	return list[:len(list)-1]
}

// containsSorted reports whether an ascending list contains n (binary
// search; lists with duplicates work too).
func containsSorted(list []NodeID, n NodeID) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= n })
	return i < len(list) && list[i] == n
}

// insertSorted inserts n into an ascending list (duplicates allowed). The
// tail fast path helps when endpoints arrive in ascending ID order (e.g.
// in-lists during a Clone replay); arbitrary-order ingest pays an O(len)
// shift, making index construction O(deg) per edge at a hub — acceptable
// for small or incremental workloads. Bulk loads use Builder/Freeze
// instead, which appends in O(1) and sorts once (see frozen.go and
// DESIGN.md's two-representation storage layer).
func insertSorted(list []NodeID, n NodeID) []NodeID {
	if len(list) == 0 || list[len(list)-1] <= n {
		return append(list, n)
	}
	i := sort.Search(len(list), func(i int) bool { return list[i] > n })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = n
	return list
}

// endpoints returns the indexed endpoints for a label query, with AnyLabel
// meaning "any edge label".
func (a *labelAdj) endpoints(id LabelID) []NodeID {
	if id == AnyLabel {
		return a.all
	}
	for i, l := range a.labels {
		if l == id {
			return a.lists[i]
		}
	}
	return nil
}

// edgeKey is the integer-only key of the exact-edge existence set.
type edgeKey struct {
	from, to NodeID
	label    LabelID
}

// pair keys the (from,to) edge-existence set backing wildcard HasEdge.
type pair struct{ from, to NodeID }

// Graph is a mutable directed labeled property graph. The zero value is not
// usable; construct with New.
type Graph struct {
	nodes []Node
	out   [][]Edge // adjacency by source
	in    [][]Edge // adjacency by target
	// outIdx/inIdx are the per-node label-keyed adjacency indexes behind
	// OutByLabel/InByLabel, maintained incrementally by AddEdge.
	outIdx []labelAdj
	inIdx  []labelAdj
	// labelIDs/labelNames intern edge labels to dense LabelIDs;
	// nodeLabelIDs/nodeLabelOf do the same for node labels (nodeLabelOf is
	// per-node, parallel to nodes).
	labelIDs     map[string]LabelID
	labelNames   []string
	nodeLabelIDs map[string]LabelID
	nodeLabelOf  []LabelID
	// edgeSet/pairSet answer HasEdge in O(1): exact (from,label,to)
	// membership and label-oblivious (from,to) membership respectively.
	edgeSet map[edgeKey]struct{}
	pairSet map[pair]struct{}
	// byLabel indexes node IDs by label for selectivity estimation and
	// candidate enumeration during matching.
	byLabel map[string][]NodeID
	edges   int
	// dead marks tombstoned nodes (see RemoveNode): the ID slot stays in the
	// dense node space, but the node is excluded from candidate enumeration
	// and carries no edges or attributes. nil until the first removal, so
	// graphs that never remove pay nothing.
	dead      []bool
	deadCount int
	// version counts mutating calls (see Version in epoch.go): derived
	// artifacts pin (pointer, version) to detect mutation underneath them.
	// Bumped at the top of each mutator, so a no-op mutation (duplicate
	// AddEdge, absent RemoveEdge) still advances it — conservative in the
	// safe direction.
	version uint64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		labelIDs:     make(map[string]LabelID),
		nodeLabelIDs: make(map[string]LabelID),
		edgeSet:      make(map[edgeKey]struct{}),
		pairSet:      make(map[pair]struct{}),
		byLabel:      make(map[string][]NodeID),
	}
}

// EdgeLabelID resolves an edge label to its interned ID: AnyLabel for the
// Wildcard, NoLabel for labels absent from the graph. Callers on a hot path
// resolve once and then probe with the ID-based accessors. IDs are assigned
// in first-insertion order and remain valid for the graph's lifetime, but
// do not transfer across graphs (Clone and Subgraph re-intern).
func (g *Graph) EdgeLabelID(label string) LabelID {
	if label == Wildcard {
		return AnyLabel
	}
	if id, ok := g.labelIDs[label]; ok {
		return id
	}
	return NoLabel
}

// internEdgeLabel returns the ID for a data edge label, allocating one on
// first use. Unlike EdgeLabelID it interns the literal Wildcard too: a data
// edge labeled '_' is an ordinary edge that happens to carry that label and
// is only ever *queried* through wildcard semantics.
func (g *Graph) internEdgeLabel(label string) LabelID {
	if id, ok := g.labelIDs[label]; ok {
		return id
	}
	id := LabelID(len(g.labelNames))
	g.labelIDs[label] = id
	g.labelNames = append(g.labelNames, label)
	return id
}

// AddNode inserts a node with the given label and returns its ID.
func (g *Graph) AddNode(label string) NodeID {
	g.version++
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Label: label})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.outIdx = append(g.outIdx, labelAdj{})
	g.inIdx = append(g.inIdx, labelAdj{})
	lid, ok := g.nodeLabelIDs[label]
	if !ok {
		lid = LabelID(len(g.nodeLabelIDs))
		g.nodeLabelIDs[label] = lid
	}
	g.nodeLabelOf = append(g.nodeLabelOf, lid)
	g.byLabel[label] = append(g.byLabel[label], id)
	if g.dead != nil {
		g.dead = append(g.dead, false)
	}
	return id
}

// NodeLabelID resolves a node label to its interned ID: AnyLabel for the
// Wildcard pattern label (which matches every node), NoLabel for labels no
// node carries. Pair with LabelIDOf for integer-only label tests on hot
// paths. IDs do not transfer across graphs.
func (g *Graph) NodeLabelID(label string) LabelID {
	if label == Wildcard {
		return AnyLabel
	}
	if id, ok := g.nodeLabelIDs[label]; ok {
		return id
	}
	return NoLabel
}

// LabelIDOf returns the interned ID of node v's label.
func (g *Graph) LabelIDOf(v NodeID) LabelID { return g.nodeLabelOf[v] }

// AddNodeWithAttrs inserts a node carrying the given attribute tuple.
// The map is copied.
func (g *Graph) AddNodeWithAttrs(label string, attrs map[string]string) NodeID {
	id := g.AddNode(label)
	for k, v := range attrs {
		g.SetAttr(id, k, v)
	}
	return id
}

// AddEdge inserts a directed labeled edge. Multi-edges with distinct labels
// are allowed; inserting the exact same (from,to,label) twice is idempotent.
// Tombstoned endpoints are rejected: a removed node never regains edges
// (matching Delta.AddEdge, and the invariant Frozen tombstones rely on).
func (g *Graph) AddEdge(from, to NodeID, label string) {
	if !g.Alive(from) || !g.Alive(to) {
		panic(fmt.Sprintf("graph: AddEdge with invalid or removed endpoint %d->%d", from, to))
	}
	g.version++
	id := g.internEdgeLabel(label)
	key := edgeKey{from: from, to: to, label: id}
	if _, dup := g.edgeSet[key]; dup {
		return
	}
	g.edgeSet[key] = struct{}{}
	g.pairSet[pair{from, to}] = struct{}{}
	e := Edge{From: from, To: to, Label: label}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.outIdx[from].add(id, to)
	g.inIdx[to].add(id, from)
	g.edges++
}

// RemoveEdge deletes the exact (from, label, to) triple if present. The
// label is taken literally (no wildcard semantics: removing '_' removes only
// an edge labeled '_'); absent edges are a no-op, mirroring AddEdge's
// idempotence.
func (g *Graph) RemoveEdge(from, to NodeID, label string) {
	if !g.valid(from) || !g.valid(to) {
		panic(fmt.Sprintf("graph: RemoveEdge with invalid endpoint %d->%d", from, to))
	}
	g.version++
	id, ok := g.labelIDs[label]
	if !ok {
		return
	}
	key := edgeKey{from: from, to: to, label: id}
	if _, exists := g.edgeSet[key]; !exists {
		return
	}
	delete(g.edgeSet, key)
	g.out[from] = removeEdgeSlice(g.out[from], from, to, label)
	g.in[to] = removeEdgeSlice(g.in[to], from, to, label)
	g.outIdx[from].remove(id, to)
	g.inIdx[to].remove(id, from)
	if !containsSorted(g.outIdx[from].all, to) {
		delete(g.pairSet, pair{from, to})
	}
	g.edges--
}

// removeEdgeSlice deletes the first matching edge, preserving order.
func removeEdgeSlice(es []Edge, from, to NodeID, label string) []Edge {
	for i, e := range es {
		if e.From == from && e.To == to && e.Label == label {
			copy(es[i:], es[i+1:])
			return es[:len(es)-1]
		}
	}
	return es
}

// RemoveNode tombstones node v: every incident edge is removed, its
// attributes are dropped, and it is excluded from all candidate and label
// queries. The ID slot itself is retired, not recycled — node IDs stay dense
// slice offsets, so NumNodes keeps reporting the ID-space size (live plus
// tombstoned) and existing IDs never shift. Removing an already-removed node
// is a no-op.
func (g *Graph) RemoveNode(v NodeID) {
	if !g.valid(v) {
		panic(fmt.Sprintf("graph: RemoveNode on invalid node %d", v))
	}
	g.version++
	if g.dead != nil && g.dead[v] {
		return
	}
	for _, e := range append([]Edge(nil), g.out[v]...) {
		g.RemoveEdge(e.From, e.To, e.Label)
	}
	for _, e := range append([]Edge(nil), g.in[v]...) {
		g.RemoveEdge(e.From, e.To, e.Label)
	}
	label := g.nodes[v].Label
	g.byLabel[label] = removeSorted(g.byLabel[label], v)
	g.nodes[v].Attrs = nil
	if g.dead == nil {
		g.dead = make([]bool, len(g.nodes))
	}
	g.dead[v] = true
	g.deadCount++
}

// Alive reports whether v is a valid, non-tombstoned node.
func (g *Graph) Alive(v NodeID) bool {
	return g.valid(v) && (g.dead == nil || !g.dead[v])
}

// LiveNodes returns the number of non-tombstoned nodes (NumNodes counts the
// dense ID space, which retains removed slots).
func (g *Graph) LiveNodes() int { return len(g.nodes) - g.deadCount }

// SetAttr sets attribute A of node v to constant value c. Tombstoned nodes
// are rejected: a removed node carries no attributes (matching
// Delta.SetAttr).
func (g *Graph) SetAttr(v NodeID, attr, value string) {
	if !g.Alive(v) {
		panic(fmt.Sprintf("graph: SetAttr on invalid or removed node %d", v))
	}
	g.version++
	n := &g.nodes[v]
	if n.Attrs == nil {
		n.Attrs = make(map[string]string)
	}
	n.Attrs[attr] = value
}

// Attr reports the value of attribute A at node v and whether it exists.
func (g *Graph) Attr(v NodeID, attr string) (string, bool) {
	if !g.valid(v) {
		return "", false
	}
	val, ok := g.nodes[v].Attrs[attr]
	return val, ok
}

// Attrs returns the attribute tuple of v (nil if none). The returned map is
// the graph's own storage; callers must not mutate it.
func (g *Graph) Attrs(v NodeID) map[string]string {
	if !g.valid(v) {
		return nil
	}
	return g.nodes[v].Attrs
}

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) string {
	return g.nodes[v].Label
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.edges }

// Out returns the outgoing edges of v. Callers must not mutate the slice.
func (g *Graph) Out(v NodeID) []Edge { return g.out[v] }

// In returns the incoming edges of v. Callers must not mutate the slice.
func (g *Graph) In(v NodeID) []Edge { return g.in[v] }

// HasEdge reports whether edge (from,to) with the given label exists.
// A Wildcard label argument matches any edge label. The test is a single
// hash probe (O(1)) against the edge set maintained by AddEdge.
func (g *Graph) HasEdge(from, to NodeID, label string) bool {
	return g.HasEdgeID(from, to, g.EdgeLabelID(label))
}

// HasEdgeID is HasEdge with a pre-resolved label ID: one integer-keyed hash
// probe, no string hashing.
func (g *Graph) HasEdgeID(from, to NodeID, id LabelID) bool {
	switch id {
	case AnyLabel:
		_, ok := g.pairSet[pair{from, to}]
		return ok
	case NoLabel:
		return false
	}
	_, ok := g.edgeSet[edgeKey{from: from, to: to, label: id}]
	return ok
}

// OutByLabel returns the targets of v's outgoing edges carrying the given
// label, in ascending NodeID order. A Wildcard label returns the targets of
// all outgoing edges; that list can repeat a target when parallel edges
// differ only in label, so callers that need a set must dedup. Callers must
// not mutate the slice.
func (g *Graph) OutByLabel(v NodeID, label string) []NodeID {
	return g.OutByLabelID(v, g.EdgeLabelID(label))
}

// OutByLabelID is OutByLabel with a pre-resolved label ID.
func (g *Graph) OutByLabelID(v NodeID, id LabelID) []NodeID {
	if !g.valid(v) {
		return nil
	}
	return g.outIdx[v].endpoints(id)
}

// InByLabel returns the sources of v's incoming edges carrying the given
// label, with the same Wildcard and aliasing semantics as OutByLabel.
func (g *Graph) InByLabel(v NodeID, label string) []NodeID {
	return g.InByLabelID(v, g.EdgeLabelID(label))
}

// InByLabelID is InByLabel with a pre-resolved label ID.
func (g *Graph) InByLabelID(v NodeID, id LabelID) []NodeID {
	if !g.valid(v) {
		return nil
	}
	return g.inIdx[v].endpoints(id)
}

// NodesByLabel returns the IDs of nodes carrying exactly the given label,
// in ascending order. Like CandidateNodes — and unlike earlier revisions,
// which aliased the internal label index — the returned slice is always a
// fresh copy owned by the caller, so callers may sort or compact it in
// place (the Reader contract). It does not apply wildcard semantics; see
// CandidateNodes. Allocation-sensitive paths use AppendCandidates instead.
func (g *Graph) NodesByLabel(label string) []NodeID {
	if g.byLabel[label] == nil {
		return nil
	}
	return append([]NodeID(nil), g.byLabel[label]...)
}

// CandidateNodes returns the nodes a pattern node with the given label may
// match: all nodes for the wildcard, else the nodes with that exact label.
// The returned slice is always a fresh copy owned by the caller, never the
// graph's internal label index, so callers may sort or compact it in place.
func (g *Graph) CandidateNodes(label string) []NodeID {
	return g.AppendCandidates(nil, label)
}

// AppendCandidates appends CandidateNodes(label) into dst without any other
// allocation: the hot-path variant for callers that recycle a buffer.
func (g *Graph) AppendCandidates(dst []NodeID, label string) []NodeID {
	if label == Wildcard {
		for i := range g.nodes {
			if g.dead != nil && g.dead[i] {
				continue
			}
			dst = append(dst, NodeID(i))
		}
		return dst
	}
	return append(dst, g.byLabel[label]...)
}

// LabelFrequency returns the number of nodes carrying the label, with
// wildcard counting every live node. Used for pivot selectivity.
func (g *Graph) LabelFrequency(label string) int {
	if label == Wildcard {
		return len(g.nodes) - g.deadCount
	}
	return len(g.byLabel[label])
}

// Signature is a degree/label requirement on a node's adjacency, used to
// prune match candidates: Out (resp. In) lists distinct edge labels of which
// the node must carry at least one outgoing (resp. incoming) edge each. A
// Wildcard entry requires an edge of any label. A pattern variable's
// signature is derived from its pattern edges (see pattern.Signature); a
// data node failing Covers cannot participate in any homomorphism at that
// variable, because homomorphisms may collapse same-labeled pattern edges
// onto one data edge but can never invent a missing edge label.
type Signature struct {
	Out []string
	In  []string
}

// Covers reports whether node v's adjacency covers the signature: for every
// label in sig.Out there is at least one outgoing edge with that label (any
// label for Wildcard), and symmetrically for sig.In. Each probe is one index
// lookup, so the whole check is O(|sig|). Hot paths resolve the signature
// once with ResolveLabels and call CoversIDs instead.
func (g *Graph) Covers(v NodeID, sig Signature) bool {
	return g.CoversIDs(v, g.ResolveLabels(sig.Out), g.ResolveLabels(sig.In))
}

// CoversIDs is Covers with pre-resolved label IDs: integer-only probes, no
// string hashing. It is the single implementation of the signature-cover
// rule; Covers and the match/simulation pruning paths all route here.
func (g *Graph) CoversIDs(v NodeID, outIDs, inIDs []LabelID) bool {
	if !g.valid(v) {
		return false
	}
	for _, id := range outIDs {
		if len(g.outIdx[v].endpoints(id)) == 0 {
			return false
		}
	}
	for _, id := range inIDs {
		if len(g.inIdx[v].endpoints(id)) == 0 {
			return false
		}
	}
	return true
}

// ResolveLabels maps a label list through EdgeLabelID. Hot paths resolve a
// signature or a pattern's edge labels once with this and then probe the
// ID-based accessors only.
func (g *Graph) ResolveLabels(labels []string) []LabelID {
	if len(labels) == 0 {
		return nil
	}
	ids := make([]LabelID, len(labels))
	for i, l := range labels {
		ids[i] = g.EdgeLabelID(l)
	}
	return ids
}

// Labels returns the distinct node labels in deterministic order.
func (g *Graph) Labels() []string {
	ls := make([]string, 0, len(g.byLabel))
	for l := range g.byLabel {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return ls
}

// Size returns |G| counting live nodes, edges, attributes and their values,
// the measure used by the Σ-bounded small model property.
func (g *Graph) Size() int {
	s := len(g.nodes) - g.deadCount + g.edges
	for i := range g.nodes {
		s += len(g.nodes[i].Attrs)
	}
	return s
}

// Clone returns a deep copy of g, tombstones included.
func (g *Graph) Clone() *Graph {
	c := New()
	for i := range g.nodes {
		n := &g.nodes[i]
		id := c.AddNode(n.Label)
		for k, v := range n.Attrs {
			c.SetAttr(id, k, v)
		}
	}
	for v := range g.out {
		for _, e := range g.out[v] {
			c.AddEdge(e.From, e.To, e.Label)
		}
	}
	if g.dead != nil {
		for v, d := range g.dead {
			if d {
				c.RemoveNode(NodeID(v))
			}
		}
	}
	return c
}

// Neighborhood returns the set of nodes within d hops of v, treating edges
// as undirected (the d_Q-neighborhood of Section V-B). The result includes v
// itself. Membership is returned as a map for O(1) containment tests.
func (g *Graph) Neighborhood(v NodeID, d int) map[NodeID]bool {
	return neighborhood(g, v, d)
}

// UndirectedDistance returns the number of hops between u and v ignoring
// edge direction, or -1 if disconnected. Used when building the work-unit
// dependency graph ("pivots within d_Q1 hops").
func (g *Graph) UndirectedDistance(u, v NodeID) int {
	return undirectedDistance(g, u, v)
}

// Subgraph returns the induced subgraph on the given node set, together with
// the mapping from old IDs to new IDs.
func (g *Graph) Subgraph(keep map[NodeID]bool) (*Graph, map[NodeID]NodeID) {
	sub := New()
	remap := make(map[NodeID]NodeID, len(keep))
	// Deterministic order: ascending old ID.
	ids := make([]NodeID, 0, len(keep))
	for id := range keep {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		nid := sub.AddNode(g.nodes[id].Label)
		for k, v := range g.nodes[id].Attrs {
			sub.SetAttr(nid, k, v)
		}
		remap[id] = nid
		if g.dead != nil && g.dead[id] {
			sub.RemoveNode(nid)
		}
	}
	for _, id := range ids {
		for _, e := range g.out[id] {
			if keep[e.To] {
				sub.AddEdge(remap[e.From], remap[e.To], e.Label)
			}
		}
	}
	return sub, remap
}

// DisjointUnion appends a copy of other into g and returns the offset that
// maps other's node IDs into g (new ID = old ID + offset). It is the building
// block of canonical graphs G_Σ.
func (g *Graph) DisjointUnion(other *Graph) NodeID {
	offset := NodeID(len(g.nodes))
	for i := range other.nodes {
		n := &other.nodes[i]
		id := g.AddNode(n.Label)
		for k, v := range n.Attrs {
			g.SetAttr(id, k, v)
		}
		if other.dead != nil && other.dead[i] {
			g.RemoveNode(id)
		}
	}
	for v := range other.out {
		for _, e := range other.out[v] {
			g.AddEdge(e.From+offset, e.To+offset, e.Label)
		}
	}
	return offset
}

// String renders the graph in a compact human-readable form, one node and
// one edge per line, in deterministic order.
func (g *Graph) String() string {
	var b strings.Builder
	for i := range g.nodes {
		n := &g.nodes[i]
		fmt.Fprintf(&b, "node %d %s", n.ID, n.Label)
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
			}
		}
		b.WriteByte('\n')
	}
	for v := range g.out {
		for _, e := range g.out[v] {
			fmt.Fprintf(&b, "edge %d %d %s\n", e.From, e.To, e.Label)
		}
	}
	return b.String()
}

func (g *Graph) valid(v NodeID) bool { return v >= 0 && int(v) < len(g.nodes) }
