// Package graph implements directed labeled property graphs as defined in
// Section II of "Parallel Reasoning of Graph Functional Dependencies"
// (Fan, Liu, Cao; ICDE 2018).
//
// A graph G = (V, E, L, F_A) has a finite node set V, directed labeled edges
// E ⊆ V×V, a label L(v) ∈ Γ per node and L(e) per edge, and for each node a
// finite tuple F_A(v) of attribute/constant pairs carrying content, as in
// property graphs.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a Graph. IDs are dense indexes assigned in
// insertion order, which makes them usable as slice offsets throughout the
// reasoning code.
type NodeID int

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// Wildcard is the reserved label '_' that, in patterns, matches any label.
// In data graphs (including canonical graphs) it behaves as an ordinary
// label: only a wildcard pattern node can match a wildcard data node.
const Wildcard = "_"

// Edge is a directed labeled edge between two nodes.
type Edge struct {
	From  NodeID
	To    NodeID
	Label string
}

// Node is a labeled node with an attribute tuple. Attrs maps attribute names
// to constant values; absence of a key means the node does not carry that
// attribute (graphs are schemaless).
type Node struct {
	ID    NodeID
	Label string
	Attrs map[string]string
}

// Graph is a mutable directed labeled property graph. The zero value is not
// usable; construct with New.
type Graph struct {
	nodes []Node
	out   [][]Edge // adjacency by source
	in    [][]Edge // adjacency by target
	// byLabel indexes node IDs by label for selectivity estimation and
	// candidate enumeration during matching.
	byLabel map[string][]NodeID
	edges   int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byLabel: make(map[string][]NodeID)}
}

// AddNode inserts a node with the given label and returns its ID.
func (g *Graph) AddNode(label string) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Label: label})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byLabel[label] = append(g.byLabel[label], id)
	return id
}

// AddNodeWithAttrs inserts a node carrying the given attribute tuple.
// The map is copied.
func (g *Graph) AddNodeWithAttrs(label string, attrs map[string]string) NodeID {
	id := g.AddNode(label)
	for k, v := range attrs {
		g.SetAttr(id, k, v)
	}
	return id
}

// AddEdge inserts a directed labeled edge. Multi-edges with distinct labels
// are allowed; inserting the exact same (from,to,label) twice is idempotent.
func (g *Graph) AddEdge(from, to NodeID, label string) {
	if !g.valid(from) || !g.valid(to) {
		panic(fmt.Sprintf("graph: AddEdge with invalid endpoint %d->%d", from, to))
	}
	for _, e := range g.out[from] {
		if e.To == to && e.Label == label {
			return
		}
	}
	e := Edge{From: from, To: to, Label: label}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.edges++
}

// SetAttr sets attribute A of node v to constant value c.
func (g *Graph) SetAttr(v NodeID, attr, value string) {
	if !g.valid(v) {
		panic(fmt.Sprintf("graph: SetAttr on invalid node %d", v))
	}
	n := &g.nodes[v]
	if n.Attrs == nil {
		n.Attrs = make(map[string]string)
	}
	n.Attrs[attr] = value
}

// Attr reports the value of attribute A at node v and whether it exists.
func (g *Graph) Attr(v NodeID, attr string) (string, bool) {
	if !g.valid(v) {
		return "", false
	}
	val, ok := g.nodes[v].Attrs[attr]
	return val, ok
}

// Attrs returns the attribute tuple of v (nil if none). The returned map is
// the graph's own storage; callers must not mutate it.
func (g *Graph) Attrs(v NodeID) map[string]string {
	if !g.valid(v) {
		return nil
	}
	return g.nodes[v].Attrs
}

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) string {
	return g.nodes[v].Label
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.edges }

// Out returns the outgoing edges of v. Callers must not mutate the slice.
func (g *Graph) Out(v NodeID) []Edge { return g.out[v] }

// In returns the incoming edges of v. Callers must not mutate the slice.
func (g *Graph) In(v NodeID) []Edge { return g.in[v] }

// HasEdge reports whether edge (from,to) with the given label exists.
// A Wildcard label argument matches any edge label.
func (g *Graph) HasEdge(from, to NodeID, label string) bool {
	if !g.valid(from) || !g.valid(to) {
		return false
	}
	for _, e := range g.out[from] {
		if e.To == to && (label == Wildcard || e.Label == label) {
			return true
		}
	}
	return false
}

// NodesByLabel returns the IDs of nodes carrying exactly the given label.
// It does not apply wildcard semantics; see CandidateNodes.
func (g *Graph) NodesByLabel(label string) []NodeID { return g.byLabel[label] }

// CandidateNodes returns the nodes a pattern node with the given label may
// match: all nodes for the wildcard, else the nodes with that exact label.
func (g *Graph) CandidateNodes(label string) []NodeID {
	if label == Wildcard {
		all := make([]NodeID, len(g.nodes))
		for i := range g.nodes {
			all[i] = NodeID(i)
		}
		return all
	}
	return g.byLabel[label]
}

// LabelFrequency returns the number of nodes carrying the label, with
// wildcard counting every node. Used for pivot selectivity.
func (g *Graph) LabelFrequency(label string) int {
	if label == Wildcard {
		return len(g.nodes)
	}
	return len(g.byLabel[label])
}

// Labels returns the distinct node labels in deterministic order.
func (g *Graph) Labels() []string {
	ls := make([]string, 0, len(g.byLabel))
	for l := range g.byLabel {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return ls
}

// Size returns |G| counting nodes, edges, attributes and their values, the
// measure used by the Σ-bounded small model property.
func (g *Graph) Size() int {
	s := len(g.nodes) + g.edges
	for i := range g.nodes {
		s += len(g.nodes[i].Attrs)
	}
	return s
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for i := range g.nodes {
		n := &g.nodes[i]
		id := c.AddNode(n.Label)
		for k, v := range n.Attrs {
			c.SetAttr(id, k, v)
		}
	}
	for v := range g.out {
		for _, e := range g.out[v] {
			c.AddEdge(e.From, e.To, e.Label)
		}
	}
	return c
}

// Neighborhood returns the set of nodes within d hops of v, treating edges
// as undirected (the d_Q-neighborhood of Section V-B). The result includes v
// itself. Membership is returned as a map for O(1) containment tests.
func (g *Graph) Neighborhood(v NodeID, d int) map[NodeID]bool {
	seen := map[NodeID]bool{v: true}
	frontier := []NodeID{v}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, u := range frontier {
			for _, e := range g.out[u] {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[u] {
				if !seen[e.From] {
					seen[e.From] = true
					next = append(next, e.From)
				}
			}
		}
		frontier = next
	}
	return seen
}

// UndirectedDistance returns the number of hops between u and v ignoring
// edge direction, or -1 if disconnected. Used when building the work-unit
// dependency graph ("pivots within d_Q1 hops").
func (g *Graph) UndirectedDistance(u, v NodeID) int {
	if u == v {
		return 0
	}
	dist := map[NodeID]int{u: 0}
	frontier := []NodeID{u}
	for len(frontier) > 0 {
		var next []NodeID
		for _, w := range frontier {
			dw := dist[w]
			for _, e := range g.out[w] {
				if _, ok := dist[e.To]; !ok {
					if e.To == v {
						return dw + 1
					}
					dist[e.To] = dw + 1
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[w] {
				if _, ok := dist[e.From]; !ok {
					if e.From == v {
						return dw + 1
					}
					dist[e.From] = dw + 1
					next = append(next, e.From)
				}
			}
		}
		frontier = next
	}
	return -1
}

// Subgraph returns the induced subgraph on the given node set, together with
// the mapping from old IDs to new IDs.
func (g *Graph) Subgraph(keep map[NodeID]bool) (*Graph, map[NodeID]NodeID) {
	sub := New()
	remap := make(map[NodeID]NodeID, len(keep))
	// Deterministic order: ascending old ID.
	ids := make([]NodeID, 0, len(keep))
	for id := range keep {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		nid := sub.AddNode(g.nodes[id].Label)
		for k, v := range g.nodes[id].Attrs {
			sub.SetAttr(nid, k, v)
		}
		remap[id] = nid
	}
	for _, id := range ids {
		for _, e := range g.out[id] {
			if keep[e.To] {
				sub.AddEdge(remap[e.From], remap[e.To], e.Label)
			}
		}
	}
	return sub, remap
}

// DisjointUnion appends a copy of other into g and returns the offset that
// maps other's node IDs into g (new ID = old ID + offset). It is the building
// block of canonical graphs G_Σ.
func (g *Graph) DisjointUnion(other *Graph) NodeID {
	offset := NodeID(len(g.nodes))
	for i := range other.nodes {
		n := &other.nodes[i]
		id := g.AddNode(n.Label)
		for k, v := range n.Attrs {
			g.SetAttr(id, k, v)
		}
		_ = id
	}
	for v := range other.out {
		for _, e := range other.out[v] {
			g.AddEdge(e.From+offset, e.To+offset, e.Label)
		}
	}
	return offset
}

// String renders the graph in a compact human-readable form, one node and
// one edge per line, in deterministic order.
func (g *Graph) String() string {
	var b strings.Builder
	for i := range g.nodes {
		n := &g.nodes[i]
		fmt.Fprintf(&b, "node %d %s", n.ID, n.Label)
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
			}
		}
		b.WriteByte('\n')
	}
	for v := range g.out {
		for _, e := range g.out[v] {
			fmt.Fprintf(&b, "edge %d %d %s\n", e.From, e.To, e.Label)
		}
	}
	return b.String()
}

func (g *Graph) valid(v NodeID) bool { return v >= 0 && int(v) < len(g.nodes) }
