package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCompactRandom is the compaction property: for random tombstone-heavy
// snapshots, Compact's result is query-identical to a from-scratch rebuild
// of the live subgraph under the same dense renumbering (Graph.Subgraph uses
// ascending-ID order, exactly the monotone order Compact's remap preserves),
// and the returned remap is total, monotone and dense.
func TestCompactRandom(t *testing.T) {
	nodeLabels := []string{"a", "b", "c", Wildcard}
	edgeLabels := []string{"e", "f", "g", Wildcard}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 40))
		n := 10 + rng.Intn(14)
		mirror, base := buildBoth(seed*13+5, n, 4*n, nodeLabels, edgeLabels)
		d := NewDelta(base)
		applyRandomOps(rng, mirror, d, 2+rng.Intn(3*n), nodeLabels, edgeLabels)
		// Force some removals so compaction has work even on gentle seeds.
		for i := 0; i < 3; i++ {
			v := NodeID(rng.Intn(mirror.NumNodes()))
			if mirror.Alive(v) {
				mirror.RemoveNode(v)
				d.RemoveNode(v)
			}
		}
		f := base.Refreeze(d)
		cf, remap := f.Compact()
		ctx := fmt.Sprintf("seed=%d n=%d dead=%d", seed, n, f.NumNodes()-f.LiveNodes())

		if cf.NumNodes() != f.LiveNodes() || cf.LiveNodes() != cf.NumNodes() || cf.DeadFraction() != 0 {
			t.Fatalf("%s: compacted cardinalities: V=%d live=%d", ctx, cf.NumNodes(), cf.LiveNodes())
		}
		if cf.NumEdges() != f.NumEdges() {
			t.Fatalf("%s: compaction changed |E|: %d vs %d", ctx, cf.NumEdges(), f.NumEdges())
		}
		next := NodeID(0)
		for v := 0; v < f.NumNodes(); v++ {
			if f.Alive(NodeID(v)) {
				if remap.Of(NodeID(v)) != next {
					t.Fatalf("%s: remap[%d] = %d, want %d (monotone dense)", ctx, v, remap.Of(NodeID(v)), next)
				}
				next++
			} else if remap.Of(NodeID(v)) != InvalidNode {
				t.Fatalf("%s: dead slot %d remaps to %d", ctx, v, remap.Of(NodeID(v)))
			}
		}
		if remap.Of(NodeID(f.NumNodes())) != InvalidNode || remap.Of(-1) != InvalidNode {
			t.Fatalf("%s: out-of-range remap not InvalidNode", ctx)
		}

		keep := make(map[NodeID]bool)
		for v := 0; v < mirror.NumNodes(); v++ {
			if mirror.Alive(NodeID(v)) {
				keep[NodeID(v)] = true
			}
		}
		sub, subRemap := mirror.Subgraph(keep)
		for old, want := range subRemap {
			if got := remap.Of(old); got != want {
				t.Fatalf("%s: remap[%d] = %d, Subgraph says %d", ctx, old, got, want)
			}
		}
		checkReaderEquivalence(t, ctx+" compacted", sub, cf, nodeLabels, edgeLabels)

		// Compacting a clean snapshot is the identity.
		same, nilRemap := cf.Compact()
		if same != cf || nilRemap != nil {
			t.Fatalf("%s: compaction of a clean snapshot is not the identity", ctx)
		}
	}
}

// TestRefreezeOptsPolicy pins the compaction policy hook: below the
// threshold tombstones are carried (nil remap, IDs stable), at or above it
// the result is compacted, and a negative threshold disables compaction.
func TestRefreezeOptsPolicy(t *testing.T) {
	b := NewBuilder(0)
	for i := 0; i < 10; i++ {
		b.AddNode("a")
	}
	for i := 0; i < 9; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1), "e")
	}
	base := b.Freeze()

	mk := func(removals int) *Delta {
		d := NewDelta(base)
		for i := 0; i < removals; i++ {
			d.RemoveNode(NodeID(i))
		}
		return d
	}

	// 2/10 dead < default 25%: carried.
	nf, remap := base.RefreezeOpts(mk(2), RefreezeOptions{})
	if remap != nil || nf.NumNodes() != 10 || nf.LiveNodes() != 8 {
		t.Fatalf("below threshold: remap=%v V=%d live=%d", remap, nf.NumNodes(), nf.LiveNodes())
	}
	// 3/10 dead >= 25%: compacted.
	nf, remap = base.RefreezeOpts(mk(3), RefreezeOptions{})
	if remap == nil || nf.NumNodes() != 7 || nf.LiveNodes() != 7 || nf.DeadFraction() != 0 {
		t.Fatalf("above threshold: remap=%v V=%d", remap, nf.NumNodes())
	}
	// Negative threshold: never compact.
	nf, remap = base.RefreezeOpts(mk(9), RefreezeOptions{CompactThreshold: -1})
	if remap != nil || nf.NumNodes() != 10 {
		t.Fatalf("disabled: remap=%v V=%d", remap, nf.NumNodes())
	}
	// Custom threshold.
	nf, remap = base.RefreezeOpts(mk(2), RefreezeOptions{CompactThreshold: 0.1})
	if remap == nil || nf.NumNodes() != 8 {
		t.Fatalf("custom threshold: remap=%v V=%d", remap, nf.NumNodes())
	}
}

// TestChainedRefreezeTombstoneAccounting is the regression test for the
// refreeze tombstone bookkeeping: two refreezes chained over removals (the
// second against an already tombstone-heavy base) must keep deadCount equal
// to the actual number of dead flags, and LiveNodes/Alive/NodesByLabel
// mutually consistent — Compact's remap sizes its arrays from deadCount, so
// any drift would corrupt the compacted snapshot.
func TestChainedRefreezeTombstoneAccounting(t *testing.T) {
	b := NewBuilder(0)
	for i := 0; i < 12; i++ {
		b.AddNode([]string{"a", "b", "c"}[i%3])
	}
	for i := 0; i < 11; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1), "e")
	}
	f := b.Freeze()

	check := func(stage string, f *Frozen) {
		t.Helper()
		count := 0
		for _, dd := range f.dead {
			if dd {
				count++
			}
		}
		if f.deadCount != count {
			t.Fatalf("%s: deadCount %d, but %d dead flags set", stage, f.deadCount, count)
		}
		if f.LiveNodes() != f.NumNodes()-count {
			t.Fatalf("%s: LiveNodes %d, want %d", stage, f.LiveNodes(), f.NumNodes()-count)
		}
		alive, inLabelRuns := 0, 0
		for v := 0; v < f.NumNodes(); v++ {
			if f.Alive(NodeID(v)) {
				alive++
			}
		}
		for _, l := range []string{"a", "b", "c"} {
			for _, v := range f.NodesByLabel(l) {
				if !f.Alive(v) {
					t.Fatalf("%s: NodesByLabel(%q) lists dead node %d", stage, l, v)
				}
				inLabelRuns++
			}
		}
		if alive != f.LiveNodes() || inLabelRuns != f.LiveNodes() {
			t.Fatalf("%s: Alive count %d, label runs %d, LiveNodes %d", stage, alive, inLabelRuns, f.LiveNodes())
		}
	}

	d1 := NewDelta(f)
	d1.RemoveNode(2)
	d1.RemoveNode(5)
	added := d1.AddNode("b")
	d1.RemoveNode(added) // added-then-removed in the same delta
	f1 := f.Refreeze(d1)
	check("first refreeze", f1)

	// Second round against the tombstone-heavy base: more removals, another
	// add, and a removal of a node the first delta added.
	d2 := NewDelta(f1)
	d2.RemoveNode(8)
	d2.RemoveNode(0)
	d2.AddNode("c")
	f2 := f1.Refreeze(d2)
	check("second refreeze", f2)
	if f2.deadCount != 5 {
		t.Fatalf("chained deadCount = %d, want 5", f2.deadCount)
	}

	// The invariant is exactly what Compact depends on: the chained snapshot
	// must compact cleanly.
	cf, remap := f2.Compact()
	check("compacted", cf)
	if cf.NumNodes() != f2.LiveNodes() || len(remap) != f2.NumNodes() {
		t.Fatalf("compaction after chain: V=%d remap=%d", cf.NumNodes(), len(remap))
	}
}

// TestCompactSharded pins the documented resharding path: compacting and
// re-carving yields shard accounting identical to carving the compacted
// snapshot directly, with candidates translated by the remap.
func TestCompactSharded(t *testing.T) {
	_, f := snapshotFixture(t, 11)
	if f.deadCount == 0 {
		t.Skip("fixture produced no tombstones at this seed")
	}
	cf, remap := f.Compact()
	s := cf.Sharded(3)
	if s.NumNodes() != cf.NumNodes() {
		t.Fatalf("resharded node count %d, want %d", s.NumNodes(), cf.NumNodes())
	}
	var want []NodeID
	for _, v := range f.CandidateNodes(Wildcard) {
		want = append(want, remap.Of(v))
	}
	if !idsEqual(s.CandidateNodes(Wildcard), want) {
		t.Fatalf("resharded candidates diverge from remapped originals")
	}
}
