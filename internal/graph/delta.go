// Delta overlays: the middle tier of the snapshot lifecycle. A Frozen
// snapshot is immutable, so before this layer any update forced a full
// O(E log deg) rebuild. Delta records a small batch of updates — added
// nodes, added/removed edges, attribute rewrites, node removals — against a
// base snapshot; Overlay serves the full Reader API over base+delta with
// exactly the flat snapshot's semantics (pinned by the overlay-equivalence
// property tests), and Frozen.Refreeze (refreeze.go) merges the delta into a
// fresh CSR by copying untouched rows verbatim. Cost tracks the delta, not
// the graph: a touched node's row is re-materialized, an untouched node's
// row is served (or copied) as-is.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Delta is a mutable batch of updates bound to one base snapshot. Added
// nodes extend the dense ID space at base.NumNodes(); edge adds/removes keep
// final-state semantics (removing an added edge cancels the add, re-adding a
// removed base edge cancels the remove); RemoveNode tombstones a node and
// records the removal of every incident edge. The zero value is not usable;
// construct with NewDelta. A Delta is not safe for concurrent use; the
// Overlay and Refrozen snapshots taken from it are.
type Delta struct {
	base    *Frozen
	version uint64 // bumped on every mutation; Overlay snapshots pin one

	// Added nodes occupy IDs [base.NumNodes(), base.NumNodes()+len(nodes)).
	nodes        []Node
	nodeLabelOf  []LabelID // parallel to nodes
	addedByLabel map[string][]NodeID

	// Extension interning: new labels get IDs continuing the base tables, so
	// base CSR probes with an extended ID simply miss (the base never stores
	// such an ID) and no re-interning is needed anywhere.
	nodeLabelIDs   map[string]LabelID
	nodeLabelNames []string
	labelIDs       map[string]LabelID
	labelNames     []string

	// Edge changes in final-state form. added/removed are disjoint, removed
	// holds base edges only, added holds non-base edges only.
	addedSet   map[edgeKey]struct{}
	removedSet map[edgeKey]struct{}
	addOut     map[NodeID]*labelAdj
	addIn      map[NodeID]*labelAdj
	delOut     map[NodeID]*labelAdj
	delIn      map[NodeID]*labelAdj

	// dead tombstones removed nodes (base or added); deadBase counts the
	// base ones. attrs holds merged attribute maps for updated base nodes.
	dead     map[NodeID]struct{}
	deadBase int
	attrs    map[NodeID]map[string]string

	// Materialized merged rows for every touched node, shared by Overlay and
	// Refreeze; rebuilt lazily when version moves.
	rowsVersion uint64
	outRows     map[NodeID]*row
	inRows      map[NodeID]*row
}

// NewDelta returns an empty delta over the base snapshot.
func NewDelta(base *Frozen) *Delta {
	return &Delta{
		base:         base,
		addedByLabel: make(map[string][]NodeID),
		nodeLabelIDs: make(map[string]LabelID),
		labelIDs:     make(map[string]LabelID),
		addedSet:     make(map[edgeKey]struct{}),
		removedSet:   make(map[edgeKey]struct{}),
		addOut:       make(map[NodeID]*labelAdj),
		addIn:        make(map[NodeID]*labelAdj),
		delOut:       make(map[NodeID]*labelAdj),
		delIn:        make(map[NodeID]*labelAdj),
		dead:         make(map[NodeID]struct{}),
		attrs:        make(map[NodeID]map[string]string),
	}
}

// Base returns the snapshot the delta is bound to.
func (d *Delta) Base() *Frozen { return d.base }

func (d *Delta) bump() { d.version++ }

// baseN returns the size of the base ID space.
func (d *Delta) baseN() int { return len(d.base.nodes) }

func (d *Delta) valid(v NodeID) bool { return v >= 0 && int(v) < d.baseN()+len(d.nodes) }

// alive reports whether v is valid and not tombstoned (in the base or here).
func (d *Delta) alive(v NodeID) bool {
	if !d.valid(v) {
		return false
	}
	if _, dd := d.dead[v]; dd {
		return false
	}
	return int(v) >= d.baseN() || d.base.Alive(v)
}

// internEdgeLabel resolves a data edge label to its ID, extending the base
// tables on first use. Like Graph.internEdgeLabel it interns the literal
// Wildcard too.
func (d *Delta) internEdgeLabel(label string) LabelID {
	if id, ok := d.base.labelIDs[label]; ok {
		return id
	}
	if id, ok := d.labelIDs[label]; ok {
		return id
	}
	id := LabelID(len(d.base.labelNames) + len(d.labelNames))
	d.labelIDs[label] = id
	d.labelNames = append(d.labelNames, label)
	return id
}

// edgeLabelID resolves a label literally (no wildcard semantics), without
// allocating: NoLabel when neither the base nor the delta knows it.
func (d *Delta) edgeLabelID(label string) LabelID {
	if id, ok := d.base.labelIDs[label]; ok {
		return id
	}
	if id, ok := d.labelIDs[label]; ok {
		return id
	}
	return NoLabel
}

// internNodeLabel is internEdgeLabel for node labels.
func (d *Delta) internNodeLabel(label string) LabelID {
	if id, ok := d.base.nodeLabelIDs[label]; ok {
		return id
	}
	if id, ok := d.nodeLabelIDs[label]; ok {
		return id
	}
	id := LabelID(len(d.base.nodeLabelNames) + len(d.nodeLabelNames))
	d.nodeLabelIDs[label] = id
	d.nodeLabelNames = append(d.nodeLabelNames, label)
	return id
}

// AddNode appends a node with the given label and returns its ID, which
// extends the base's dense ID space.
func (d *Delta) AddNode(label string) NodeID {
	id := NodeID(d.baseN() + len(d.nodes))
	d.nodes = append(d.nodes, Node{ID: id, Label: label})
	d.nodeLabelOf = append(d.nodeLabelOf, d.internNodeLabel(label))
	d.addedByLabel[label] = append(d.addedByLabel[label], id)
	d.bump()
	return id
}

// AddNodeWithAttrs appends a node carrying the given attribute tuple.
// The map is copied.
func (d *Delta) AddNodeWithAttrs(label string, attrs map[string]string) NodeID {
	id := d.AddNode(label)
	for k, v := range attrs {
		d.SetAttr(id, k, v)
	}
	return id
}

// NumNodes returns the overlaid ID-space size (base plus added slots,
// tombstones included), completing the Sink interface so generators can
// emit update streams straight into a delta.
func (d *Delta) NumNodes() int { return d.baseN() + len(d.nodes) }

// SetAttr sets attribute A of node v to constant value c, overriding the
// base value if one exists. For a base node the full attribute tuple is
// copied on first write, so the base snapshot stays untouched.
func (d *Delta) SetAttr(v NodeID, attr, value string) {
	if !d.alive(v) {
		panic(fmt.Sprintf("graph: Delta.SetAttr on invalid or removed node %d", v))
	}
	if int(v) >= d.baseN() {
		n := &d.nodes[int(v)-d.baseN()]
		if n.Attrs == nil {
			n.Attrs = make(map[string]string)
		}
		n.Attrs[attr] = value
		d.bump()
		return
	}
	m, ok := d.attrs[v]
	if !ok {
		base := d.base.Attrs(v)
		m = make(map[string]string, len(base)+1)
		for k, c := range base {
			m[k] = c
		}
		d.attrs[v] = m
	}
	m[attr] = value
	d.bump()
}

// adjOf returns the labelAdj for v in m, allocating on first use.
func adjOf(m map[NodeID]*labelAdj, v NodeID) *labelAdj {
	a := m[v]
	if a == nil {
		a = &labelAdj{}
		m[v] = a
	}
	return a
}

// AddEdge inserts a directed labeled edge. Like Graph.AddEdge it is
// idempotent per (from, label, to); re-adding an edge the delta removed
// cancels the removal.
func (d *Delta) AddEdge(from, to NodeID, label string) {
	if !d.alive(from) || !d.alive(to) {
		panic(fmt.Sprintf("graph: Delta.AddEdge with invalid or removed endpoint %d->%d", from, to))
	}
	id := d.internEdgeLabel(label)
	key := edgeKey{from: from, to: to, label: id}
	if _, ok := d.removedSet[key]; ok {
		delete(d.removedSet, key)
		d.delOut[from].remove(id, to)
		d.delIn[to].remove(id, from)
		d.bump()
		return
	}
	if _, ok := d.addedSet[key]; ok {
		return
	}
	if d.base.HasEdgeID(from, to, id) {
		return
	}
	d.addedSet[key] = struct{}{}
	adjOf(d.addOut, from).add(id, to)
	adjOf(d.addIn, to).add(id, from)
	d.bump()
}

// RemoveEdge deletes the exact (from, label, to) triple, whether it lives in
// the base or was added by the delta; absent edges are a no-op (the literal
// semantics of Graph.RemoveEdge).
func (d *Delta) RemoveEdge(from, to NodeID, label string) {
	if !d.valid(from) || !d.valid(to) {
		panic(fmt.Sprintf("graph: Delta.RemoveEdge with invalid endpoint %d->%d", from, to))
	}
	id := d.edgeLabelID(label)
	if id == NoLabel {
		return
	}
	d.removeEdgeID(from, to, id)
}

func (d *Delta) removeEdgeID(from, to NodeID, id LabelID) {
	key := edgeKey{from: from, to: to, label: id}
	if _, ok := d.addedSet[key]; ok {
		delete(d.addedSet, key)
		d.addOut[from].remove(id, to)
		d.addIn[to].remove(id, from)
		d.bump()
		return
	}
	if _, ok := d.removedSet[key]; ok {
		return
	}
	if !d.base.HasEdgeID(from, to, id) {
		return
	}
	d.removedSet[key] = struct{}{}
	adjOf(d.delOut, from).add(id, to)
	adjOf(d.delIn, to).add(id, from)
	d.bump()
}

// RemoveNode tombstones node v with Graph.RemoveNode's semantics: every
// incident edge (base or added) is removed, attributes are dropped, and the
// node leaves all candidate and label queries while its ID slot stays in the
// dense space. No-op when v is already dead.
func (d *Delta) RemoveNode(v NodeID) {
	if !d.valid(v) {
		panic(fmt.Sprintf("graph: Delta.RemoveNode on invalid node %d", v))
	}
	if !d.alive(v) {
		return
	}
	// Added edges touching v, both directions.
	dropAdded := func(own map[NodeID]*labelAdj, out bool) {
		a := own[v]
		if a == nil {
			return
		}
		type pe struct {
			id LabelID
			n  NodeID
		}
		var pairs []pe
		for i, l := range a.labels {
			for _, n := range a.lists[i] {
				pairs = append(pairs, pe{l, n})
			}
		}
		for _, p := range pairs {
			if out {
				d.removeEdgeID(v, p.n, p.id)
			} else {
				d.removeEdgeID(p.n, v, p.id)
			}
		}
	}
	dropAdded(d.addOut, true)
	dropAdded(d.addIn, false)
	// Base edges at v, both directions.
	if int(v) < d.baseN() {
		d.base.out.forEachRun(v, func(id LabelID, targets []NodeID) {
			for _, t := range targets {
				d.removeEdgeID(v, t, id)
			}
		})
		d.base.in.forEachRun(v, func(id LabelID, sources []NodeID) {
			for _, s := range sources {
				if s != v { // self-loops already removed in the out pass
					d.removeEdgeID(s, v, id)
				}
			}
		})
		d.deadBase++
		delete(d.attrs, v)
	} else {
		i := int(v) - d.baseN()
		d.addedByLabel[d.nodes[i].Label] = removeSorted(d.addedByLabel[d.nodes[i].Label], v)
		d.nodes[i].Attrs = nil
	}
	d.dead[v] = struct{}{}
	d.bump()
}

// Alive reports whether v is a valid node not tombstoned by the base or the
// delta.
func (d *Delta) Alive(v NodeID) bool { return d.alive(v) }

// Label returns the label of node v across base and added nodes
// (tombstoned nodes keep their label, like Graph.RemoveNode).
func (d *Delta) Label(v NodeID) string {
	if i := int(v) - d.baseN(); i >= 0 {
		return d.nodes[i].Label
	}
	return d.base.Label(v)
}

// TouchedNodes returns the ascending set of nodes the delta touches:
// endpoints of added and removed edges, attribute-updated nodes, tombstoned
// nodes, and added nodes. This is the seed set incremental revalidation
// scopes its re-enumeration to.
func (d *Delta) TouchedNodes() []NodeID {
	seen := make(map[NodeID]struct{})
	for v := range d.addOut {
		seen[v] = struct{}{}
	}
	for v := range d.addIn {
		seen[v] = struct{}{}
	}
	for v := range d.delOut {
		seen[v] = struct{}{}
	}
	for v := range d.delIn {
		seen[v] = struct{}{}
	}
	for v := range d.attrs {
		seen[v] = struct{}{}
	}
	for v := range d.dead {
		seen[v] = struct{}{}
	}
	for i := range d.nodes {
		seen[NodeID(d.baseN()+i)] = struct{}{}
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// Len returns the number of recorded update operations in final-state form:
// added nodes and edges, removed base edges and nodes, attribute overrides.
func (d *Delta) Len() int {
	return len(d.nodes) + len(d.addedSet) + len(d.removedSet) + len(d.dead) + len(d.attrs)
}

// String summarizes the delta for logs.
func (d *Delta) String() string {
	return fmt.Sprintf("Delta{+V=%d, -V=%d, +E=%d, -E=%d, attrs=%d}",
		len(d.nodes), len(d.dead), len(d.addedSet), len(d.removedSet), len(d.attrs))
}

// row is one touched node's merged adjacency in one direction: the base run
// minus removals, plus additions, in the CSR's (label, target) order.
type row struct {
	labels []LabelID  // ascending distinct
	lists  [][]NodeID // aligned with labels; each ascending, duplicate-free
	all    []NodeID   // ascending by target; repeats across parallel labels
	total  int
}

// endpoints mirrors labelAdj.endpoints/csrDir.byLabel.
func (r *row) endpoints(id LabelID) []NodeID {
	switch id {
	case AnyLabel:
		return r.all
	case NoLabel:
		return nil
	}
	for i, l := range r.labels {
		if l == id {
			return r.lists[i]
		}
	}
	return nil
}

// sortedLabels returns a labelAdj's label IDs in ascending order with their
// list indexes. Insertion sort: a node's distinct labels are few, and this
// runs once per touched row — a closure-based sort would dominate it.
func sortedLabels(a *labelAdj) []int {
	if a == nil {
		return nil
	}
	idx := make([]int, len(a.labels))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && a.labels[idx[j]] < a.labels[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// subtractSorted compacts ascending base to the elements not present in the
// ascending removal list (both duplicate-free), appending into dst.
func subtractSorted(dst, base, del []NodeID) []NodeID {
	j := 0
	for _, n := range base {
		for j < len(del) && del[j] < n {
			j++
		}
		if j < len(del) && del[j] == n {
			continue
		}
		dst = append(dst, n)
	}
	return dst
}

// mergeSorted merges two ascending duplicate-free lists into dst.
func mergeSorted(dst, a, b []NodeID) []NodeID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// mergeAll writes (baseAll minus delAll) merged with addAll into dst, all
// three ascending by target with multiset semantics: each removed edge
// cancels one occurrence of its target (occurrences of a target are
// value-identical, so which one is immaterial). One linear pass — no sort.
func mergeAll(dst, baseAll, delAll, addAll []NodeID) []NodeID {
	j, k := 0, 0
	for _, n := range baseAll {
		for j < len(delAll) && delAll[j] < n {
			j++
		}
		if j < len(delAll) && delAll[j] == n {
			j++
			continue
		}
		for k < len(addAll) && addAll[k] <= n {
			dst = append(dst, addAll[k])
			k++
		}
		dst = append(dst, n)
	}
	return append(dst, addAll[k:]...)
}

// buildRow materializes one touched node's merged adjacency. v may be an
// added node (no base run). Every input list is already sorted — base runs
// by (label, target), the delta's labelAdjs per label and by target — so
// the merge is linear per label and the wildcard view is a three-way linear
// merge, O(row) total with two allocations (the shared list backing and the
// wildcard view).
func buildRow(base *csrDir, v NodeID, baseValid bool, add, del *labelAdj) *row {
	r := &row{}
	addIdx := sortedLabels(add)
	baseLen, addLen := 0, 0
	var baseAll []NodeID
	if baseValid {
		baseLen = int(base.off[v+1] - base.off[v])
		baseAll = base.all[base.off[v]:base.off[v+1]]
	}
	if add != nil {
		addLen = len(add.all)
	}
	// One backing buffer for every per-label list: the merged total is
	// bounded by baseLen+addLen (removals only shrink), so the sub-slices
	// handed out below never move. The label directory is likewise bounded
	// by the base directory plus the added labels.
	maxLabels := len(addIdx)
	if baseValid {
		maxLabels += int(base.dirOff[v+1] - base.dirOff[v])
	}
	r.labels = make([]LabelID, 0, maxLabels)
	r.lists = make([][]NodeID, 0, maxLabels)
	buf := make([]NodeID, 0, baseLen+addLen)
	emit := func(id LabelID, list []NodeID) {
		if len(list) == 0 {
			return
		}
		r.labels = append(r.labels, id)
		r.lists = append(r.lists, list)
		r.total += len(list)
	}
	ai := 0
	emitAdded := func(idx int) {
		start := len(buf)
		buf = append(buf, add.lists[idx]...)
		emit(add.labels[idx], buf[start:len(buf):len(buf)])
	}
	if baseValid {
		base.forEachRun(v, func(id LabelID, targets []NodeID) {
			// Added labels strictly below the base label come first.
			for ai < len(addIdx) && add.labels[addIdx[ai]] < id {
				emitAdded(addIdx[ai])
				ai++
			}
			var delList []NodeID
			if del != nil {
				delList = del.endpoints(id)
			}
			if ai < len(addIdx) && add.labels[addIdx[ai]] == id {
				start := len(buf)
				if len(delList) == 0 {
					buf = mergeSorted(buf, targets, add.lists[addIdx[ai]])
				} else {
					buf = mergeAll(buf, targets, delList, add.lists[addIdx[ai]])
				}
				ai++
				emit(id, buf[start:len(buf):len(buf)])
			} else if len(delList) == 0 {
				// Label untouched inside a touched row: alias the immutable
				// base run instead of copying it.
				emit(id, targets)
			} else {
				start := len(buf)
				buf = subtractSorted(buf, targets, delList)
				emit(id, buf[start:len(buf):len(buf)])
			}
		})
	}
	for ; ai < len(addIdx); ai++ {
		emitAdded(addIdx[ai])
	}
	var delAll []NodeID
	if del != nil {
		delAll = del.all
	}
	var addAll []NodeID
	if add != nil {
		addAll = add.all
	}
	r.all = mergeAll(make([]NodeID, 0, r.total), baseAll, delAll, addAll)
	return r
}

// rows materializes the merged adjacency of every touched node in both
// directions, cached until the delta mutates again.
func (d *Delta) rows() (out, in map[NodeID]*row) {
	if d.outRows != nil && d.rowsVersion == d.version {
		return d.outRows, d.inRows
	}
	build := func(add, del map[NodeID]*labelAdj, base *csrDir) map[NodeID]*row {
		rows := make(map[NodeID]*row, len(add)+len(del))
		touch := func(v NodeID) {
			if _, ok := rows[v]; ok {
				return
			}
			rows[v] = buildRow(base, v, int(v) < d.baseN(), add[v], del[v])
		}
		for v := range add {
			touch(v)
		}
		for v := range del {
			touch(v)
		}
		return rows
	}
	d.outRows = build(d.addOut, d.delOut, &d.base.out)
	d.inRows = build(d.addIn, d.delIn, &d.base.in)
	d.rowsVersion = d.version
	return d.outRows, d.inRows
}

// Overlay returns a Reader over base+delta with exactly the flat snapshot's
// semantics. The overlay is a snapshot view: it materializes the merged
// adjacency of every touched node once (O(touched rows)), after which it is
// immutable and safe for concurrent readers. Mutating the delta afterwards
// invalidates it — take a new Overlay (cheap: only rows touched since are
// rebuilt); a stale overlay panics on its next adjacency query rather than
// serving silently wrong rows.
func (d *Delta) Overlay() *Overlay {
	out, in := d.rows()
	return &Overlay{d: d, base: d.base, version: d.version, epoch: nextEpoch(), out: out, in: in}
}

// Overlay is the composed Reader over a base snapshot and a delta; see
// Delta.Overlay. Untouched nodes are served straight from the base arrays;
// touched nodes from the materialized merged rows.
type Overlay struct {
	d       *Delta
	base    *Frozen
	version uint64
	out, in map[NodeID]*row

	// epoch/bitsets mirror Frozen's identity and cache state (epoch.go,
	// bitset.go): each Overlay construction is its own snapshot identity.
	epoch   uint64
	bitsets bitsetCache
}

// Delta returns the delta the overlay composes over its base.
func (o *Overlay) Delta() *Delta { return o.d }

// Base returns the underlying base snapshot.
func (o *Overlay) Base() *Frozen { return o.base }

func (o *Overlay) check() {
	if o.version != o.d.version {
		panic("graph: Overlay used after its Delta mutated; take a new Overlay")
	}
}

// NumNodes returns the overlaid ID-space size (tombstones included, like
// Graph.NumNodes after RemoveNode).
func (o *Overlay) NumNodes() int { return o.d.NumNodes() }

// LiveNodes returns the number of non-tombstoned nodes.
func (o *Overlay) LiveNodes() int {
	return o.base.LiveNodes() - o.d.deadBase + len(o.d.nodes) - (len(o.d.dead) - o.d.deadBase)
}

// NumEdges returns |E| of the composed graph.
func (o *Overlay) NumEdges() int {
	return o.base.edges + len(o.d.addedSet) - len(o.d.removedSet)
}

// Alive reports whether v is a valid, non-tombstoned node.
func (o *Overlay) Alive(v NodeID) bool { return o.d.alive(v) }

// Label returns the label of node v (tombstoned nodes keep their label,
// mirroring Graph.RemoveNode).
func (o *Overlay) Label(v NodeID) string {
	if i := int(v) - o.d.baseN(); i >= 0 {
		return o.d.nodes[i].Label
	}
	return o.base.Label(v)
}

// Attr reports the value of attribute A at node v and whether it exists.
func (o *Overlay) Attr(v NodeID, attr string) (string, bool) {
	m := o.Attrs(v)
	val, ok := m[attr]
	return val, ok
}

// Attrs returns the attribute tuple of v (nil if none). The returned map is
// the overlay's own storage; callers must not mutate it.
func (o *Overlay) Attrs(v NodeID) map[string]string {
	o.check()
	if !o.d.alive(v) {
		return nil
	}
	if i := int(v) - o.d.baseN(); i >= 0 {
		return o.d.nodes[i].Attrs
	}
	if m, ok := o.d.attrs[v]; ok {
		return m
	}
	return o.base.Attrs(v)
}

// Size returns |G| counting live nodes, edges, attributes and their values.
func (o *Overlay) Size() int {
	s := o.LiveNodes() + o.NumEdges()
	for v := 0; v < o.d.baseN(); v++ {
		if o.d.alive(NodeID(v)) {
			s += len(o.Attrs(NodeID(v)))
		}
	}
	for i := range o.d.nodes {
		s += len(o.d.nodes[i].Attrs)
	}
	return s
}

// edgeLabelName resolves an interned edge-label ID back to its name.
func (o *Overlay) edgeLabelName(id LabelID) string {
	if i := int(id) - len(o.base.labelNames); i >= 0 {
		return o.d.labelNames[i]
	}
	return o.base.labelNames[id]
}

// Out returns the outgoing edges of v, synthesized per call like
// Frozen.Out.
func (o *Overlay) Out(v NodeID) []Edge {
	o.check()
	r := o.out[v]
	if r == nil {
		return o.base.Out(v)
	}
	es := make([]Edge, 0, r.total)
	for i, id := range r.labels {
		name := o.edgeLabelName(id)
		for _, t := range r.lists[i] {
			es = append(es, Edge{From: v, To: t, Label: name})
		}
	}
	return es
}

// In returns the incoming edges of v, synthesized per call.
func (o *Overlay) In(v NodeID) []Edge {
	o.check()
	r := o.in[v]
	if r == nil {
		return o.base.In(v)
	}
	es := make([]Edge, 0, r.total)
	for i, id := range r.labels {
		name := o.edgeLabelName(id)
		for _, s := range r.lists[i] {
			es = append(es, Edge{From: s, To: v, Label: name})
		}
	}
	return es
}

// EdgeLabelID resolves an edge label to its interned ID across base and
// delta: AnyLabel for the Wildcard, NoLabel for unknown labels.
func (o *Overlay) EdgeLabelID(label string) LabelID {
	if label == Wildcard {
		return AnyLabel
	}
	return o.d.edgeLabelID(label)
}

// NodeLabelID resolves a node label to its interned ID across base and
// delta.
func (o *Overlay) NodeLabelID(label string) LabelID {
	if label == Wildcard {
		return AnyLabel
	}
	if id, ok := o.base.nodeLabelIDs[label]; ok {
		return id
	}
	if id, ok := o.d.nodeLabelIDs[label]; ok {
		return id
	}
	return NoLabel
}

// LabelIDOf returns the interned ID of node v's label.
func (o *Overlay) LabelIDOf(v NodeID) LabelID {
	if i := int(v) - o.d.baseN(); i >= 0 {
		return o.d.nodeLabelOf[i]
	}
	return o.base.nodeLabelOf[v]
}

// ResolveLabels maps a label list through EdgeLabelID.
func (o *Overlay) ResolveLabels(labels []string) []LabelID {
	if len(labels) == 0 {
		return nil
	}
	ids := make([]LabelID, len(labels))
	for i, l := range labels {
		ids[i] = o.EdgeLabelID(l)
	}
	return ids
}

// Labels returns the distinct node labels of base and delta in
// deterministic order.
func (o *Overlay) Labels() []string {
	ls := append([]string(nil), o.base.nodeLabelNames...)
	ls = append(ls, o.d.nodeLabelNames...)
	sort.Strings(ls)
	return ls
}

// HasEdge reports whether edge (from,to) with the given label exists, with
// Wildcard matching any label.
func (o *Overlay) HasEdge(from, to NodeID, label string) bool {
	return o.HasEdgeID(from, to, o.EdgeLabelID(label))
}

// HasEdgeID is HasEdge with a pre-resolved label ID: a binary search in the
// merged row for touched nodes, the base probe otherwise.
func (o *Overlay) HasEdgeID(from, to NodeID, id LabelID) bool {
	o.check()
	if id == NoLabel {
		return false
	}
	if r := o.out[from]; r != nil {
		return containsSorted(r.endpoints(id), to)
	}
	return o.base.HasEdgeID(from, to, id)
}

// OutByLabel returns the targets of v's outgoing edges carrying the given
// label, with the Reader contract's ordering and aliasing semantics.
func (o *Overlay) OutByLabel(v NodeID, label string) []NodeID {
	return o.OutByLabelID(v, o.EdgeLabelID(label))
}

// OutByLabelID is OutByLabel with a pre-resolved label ID.
func (o *Overlay) OutByLabelID(v NodeID, id LabelID) []NodeID {
	o.check()
	if r := o.out[v]; r != nil {
		return r.endpoints(id)
	}
	return o.base.OutByLabelID(v, id)
}

// InByLabel returns the sources of v's incoming edges carrying the label.
func (o *Overlay) InByLabel(v NodeID, label string) []NodeID {
	return o.InByLabelID(v, o.EdgeLabelID(label))
}

// InByLabelID is InByLabel with a pre-resolved label ID.
func (o *Overlay) InByLabelID(v NodeID, id LabelID) []NodeID {
	o.check()
	if r := o.in[v]; r != nil {
		return r.endpoints(id)
	}
	return o.base.InByLabelID(v, id)
}

// NodesByLabel returns a fresh copy of the nodes carrying exactly the given
// label: the base run minus tombstones, then the added nodes (whose IDs all
// exceed the base space, keeping the list ascending).
func (o *Overlay) NodesByLabel(label string) []NodeID {
	o.check()
	return o.appendLabelRun(nil, label)
}

// appendLabelRun appends the overlay's exact-label node run into dst.
func (o *Overlay) appendLabelRun(dst []NodeID, label string) []NodeID {
	run := o.base.nodesWithLabel(label)
	if o.d.deadBase == 0 {
		dst = append(dst, run...)
	} else {
		for _, v := range run {
			if _, dd := o.d.dead[v]; !dd {
				dst = append(dst, v)
			}
		}
	}
	return append(dst, o.d.addedByLabel[label]...)
}

// CandidateNodes returns the nodes a pattern node with the given label may
// match, as a fresh copy owned by the caller.
func (o *Overlay) CandidateNodes(label string) []NodeID {
	return o.AppendCandidates(nil, label)
}

// AppendCandidates appends CandidateNodes(label) into dst without any other
// allocation.
func (o *Overlay) AppendCandidates(dst []NodeID, label string) []NodeID {
	o.check()
	if label == Wildcard {
		n := o.d.NumNodes()
		for v := 0; v < n; v++ {
			if o.d.alive(NodeID(v)) {
				dst = append(dst, NodeID(v))
			}
		}
		return dst
	}
	return o.appendLabelRun(dst, label)
}

// LabelFrequency returns the number of live nodes carrying the label, with
// wildcard counting every live node.
func (o *Overlay) LabelFrequency(label string) int {
	o.check()
	if label == Wildcard {
		return o.LiveNodes()
	}
	n := len(o.base.nodesWithLabel(label)) + len(o.d.addedByLabel[label])
	if o.d.deadBase > 0 {
		for v := range o.d.dead {
			if int(v) < o.d.baseN() && o.base.Label(v) == label {
				n--
			}
		}
	}
	return n
}

// Covers reports whether node v's adjacency covers the signature; see
// Graph.Covers.
func (o *Overlay) Covers(v NodeID, sig Signature) bool {
	return o.CoversIDs(v, o.ResolveLabels(sig.Out), o.ResolveLabels(sig.In))
}

// CoversIDs is Covers with pre-resolved label IDs.
func (o *Overlay) CoversIDs(v NodeID, outIDs, inIDs []LabelID) bool {
	if !o.d.valid(v) {
		return false
	}
	for _, id := range outIDs {
		if len(o.OutByLabelID(v, id)) == 0 {
			return false
		}
	}
	for _, id := range inIDs {
		if len(o.InByLabelID(v, id)) == 0 {
			return false
		}
	}
	return true
}

// Neighborhood returns the nodes within d undirected hops of v.
func (o *Overlay) Neighborhood(v NodeID, d int) map[NodeID]bool {
	return neighborhood(o, v, d)
}

// UndirectedDistance returns the undirected hop distance between u and v.
func (o *Overlay) UndirectedDistance(u, v NodeID) int {
	return undirectedDistance(o, u, v)
}

// String summarizes the overlay for logs.
func (o *Overlay) String() string {
	return fmt.Sprintf("Overlay{V=%d, E=%d, %s}", o.NumNodes(), o.NumEdges(), o.d)
}
