package graph

// Reader is the read API shared by the graph representations: the mutable
// *Graph (incremental AddEdge, sorted-insert adjacency), the immutable
// *Frozen (bulk-loaded CSR snapshot, see Builder) with its *Sharded/*Shard
// partitioned views, and the *Overlay composing a *Delta of updates over a
// Frozen base (see delta.go). The matching, simulation, reasoning and
// discovery layers are written against Reader, so they run unmodified on
// any representation; mutation (AddNode, AddEdge, SetAttr, Clone, Subgraph,
// DisjointUnion, RemoveEdge, RemoveNode) stays on *Graph and *Delta.
//
// Contracts every implementation upholds:
//
//   - OutByLabelID/InByLabelID return endpoints in ascending NodeID order
//     (per label; AnyLabel lists are ascending too, with a target possibly
//     repeated when parallel edges differ only in label), so consumers may
//     intersect lists by linear merge and test membership by binary search.
//     The returned slices alias internal storage: read-only.
//   - NodesByLabel and CandidateNodes return a fresh copy owned by the
//     caller, never internal index storage, so callers may sort or compact
//     them in place. AppendCandidates is the allocation-conscious variant
//     for hot paths: it appends into a caller-owned buffer.
//   - Label/Node label IDs are interned per graph and do not transfer
//     across graphs (or across a Graph and its Frozen snapshot).
type Reader interface {
	// Cardinalities and node access.
	NumNodes() int
	NumEdges() int
	Label(v NodeID) string
	Attr(v NodeID, attr string) (string, bool)
	Attrs(v NodeID) map[string]string
	Size() int

	// Raw adjacency. On *Frozen these synthesize the []Edge slices per
	// call; hot paths use the ID-based accessors below.
	Out(v NodeID) []Edge
	In(v NodeID) []Edge

	// Label interning.
	EdgeLabelID(label string) LabelID
	NodeLabelID(label string) LabelID
	LabelIDOf(v NodeID) LabelID
	ResolveLabels(labels []string) []LabelID
	Labels() []string

	// Edge probes.
	HasEdge(from, to NodeID, label string) bool
	HasEdgeID(from, to NodeID, id LabelID) bool

	// Label-keyed adjacency.
	OutByLabel(v NodeID, label string) []NodeID
	OutByLabelID(v NodeID, id LabelID) []NodeID
	InByLabel(v NodeID, label string) []NodeID
	InByLabelID(v NodeID, id LabelID) []NodeID

	// Node-label index.
	NodesByLabel(label string) []NodeID
	CandidateNodes(label string) []NodeID
	AppendCandidates(dst []NodeID, label string) []NodeID
	LabelFrequency(label string) int

	// Signature pruning.
	Covers(v NodeID, sig Signature) bool
	CoversIDs(v NodeID, outIDs, inIDs []LabelID) bool

	// Traversal.
	Neighborhood(v NodeID, d int) map[NodeID]bool
	UndirectedDistance(u, v NodeID) int
}

// Sink is the build API shared by *Graph (incremental, indexed as it goes)
// and *Builder (O(1) appends, indexed at Freeze). Generators and parsers
// written against Sink can materialize either representation; the caller
// picks by what it passes in.
type Sink interface {
	AddNode(label string) NodeID
	AddNodeWithAttrs(label string, attrs map[string]string) NodeID
	SetAttr(v NodeID, attr, value string)
	AddEdge(from, to NodeID, label string)
	NumNodes() int
}

// Compile-time checks that every representation satisfies the interfaces.
var (
	_ Reader = (*Graph)(nil)
	_ Reader = (*Frozen)(nil)
	_ Reader = (*Overlay)(nil)
	_ Sink   = (*Graph)(nil)
	_ Sink   = (*Builder)(nil)
	_ Sink   = (*Delta)(nil)
)

// neighborhood is the shared BFS behind Graph.Neighborhood and
// Frozen.Neighborhood, written against the wildcard adjacency so both
// representations traverse identically by construction.
func neighborhood(r Reader, v NodeID, d int) map[NodeID]bool {
	seen := map[NodeID]bool{v: true}
	frontier := []NodeID{v}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, u := range frontier {
			for _, w := range r.OutByLabelID(u, AnyLabel) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
			for _, w := range r.InByLabelID(u, AnyLabel) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return seen
}

// undirectedDistance is the shared BFS behind Graph.UndirectedDistance and
// Frozen.UndirectedDistance.
func undirectedDistance(r Reader, u, v NodeID) int {
	if u == v {
		return 0
	}
	dist := map[NodeID]int{u: 0}
	frontier := []NodeID{u}
	for len(frontier) > 0 {
		var next []NodeID
		for _, w := range frontier {
			dw := dist[w]
			step := func(nb NodeID) bool {
				if _, ok := dist[nb]; ok {
					return false
				}
				if nb == v {
					return true
				}
				dist[nb] = dw + 1
				next = append(next, nb)
				return false
			}
			for _, nb := range r.OutByLabelID(w, AnyLabel) {
				if step(nb) {
					return dw + 1
				}
			}
			for _, nb := range r.InByLabelID(w, AnyLabel) {
				if step(nb) {
					return dw + 1
				}
			}
		}
		frontier = next
	}
	return -1
}
