// Snapshot epochs: a process-unique identity token for immutable readers.
// Every snapshot construction path (Freeze, Refreeze, Compact, ReadSnapshot,
// Delta.Overlay) draws a fresh value from one atomic counter, so two readers
// share an epoch exactly when they serve the same immutable contents — a
// Sharded view reports its underlying Frozen's epoch. Derived artifacts
// compiled against a snapshot (match plans, caches) carry the epoch they
// were built from and compare it to the reader they are asked to serve:
// a Refreeze or Compact mints a new epoch, so stale artifacts are
// mechanically unreachable without any registration or invalidation hooks.
// Epochs order construction within a process but are not persisted: a
// snapshot read back from disk is a new in-memory object and gets a new
// epoch.
package graph

import "sync/atomic"

// epochCounter backs nextEpoch. The zero value is never handed out, so 0
// can mean "no epoch" in consumers.
var epochCounter atomic.Uint64

// nextEpoch returns a process-unique, monotonically increasing epoch token.
func nextEpoch() uint64 { return epochCounter.Add(1) }

// EpochView is the optional Reader extension implemented by immutable
// snapshots: Epoch returns the reader's construction token. Two EpochView
// readers with equal epochs serve identical graph contents for the life of
// the process. The mutable *Graph deliberately does not implement it —
// its contents have no stable identity; consumers needing staleness checks
// there use Version instead.
type EpochView interface {
	Reader
	Epoch() uint64
}

// Epoch returns the snapshot's construction token (see EpochView).
func (f *Frozen) Epoch() uint64 { return f.epoch }

// Epoch returns the underlying Frozen's epoch: the sharded view is an
// access-path decoration, not a different snapshot.
func (s *Sharded) Epoch() uint64 { return s.f.epoch }

// Epoch returns the overlay's construction token. Each Delta.Overlay call
// mints a fresh epoch: the overlay's contents are pinned to the delta
// version it captured, and a later overlay of the same delta is a
// different (possibly diverged) snapshot.
func (o *Overlay) Epoch() uint64 { return o.epoch }

// Version returns g's mutation counter: it increases on every mutating
// call (AddNode, AddEdge, RemoveEdge, RemoveNode, SetAttr), so a consumer
// holding (pointer, version) can detect that a mutable graph changed under
// a derived artifact. Unlike epochs, versions are meaningful only relative
// to one *Graph instance.
func (g *Graph) Version() uint64 { return g.version }

var (
	_ EpochView = (*Frozen)(nil)
	_ EpochView = (*Sharded)(nil)
	_ EpochView = (*Overlay)(nil)
)
