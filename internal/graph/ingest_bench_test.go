package graph_test

import (
	"testing"

	"repro/internal/bench"
)

// The benchmarks share bench.HubHeavyIngest + bench.IngestIncremental /
// bench.IngestFrozen — the canonical hub-heavy bulk-ingest workload (80%
// of 100k edges piled onto 16 hubs, shuffled order) and its two load
// loops — with the CI regression gate (bench.RunCI), so the documented
// ingest numbers and the gated freeze_ingest_speedup metric always
// measure the same thing.

// BenchmarkIncrementalIngest measures bulk load through the mutable path:
// AddEdge maintains the sorted per-label adjacency incrementally, so hub
// nodes pay an O(deg) shift per insert.
func BenchmarkIncrementalIngest(b *testing.B) {
	from, to, lab := bench.HubHeavyIngest(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := bench.IngestIncremental(from, to, lab); g.NumEdges() == 0 {
			b.Fatal("ingest produced no edges")
		}
	}
}

// BenchmarkFreezeIngest measures the same bulk load through the Builder:
// O(1) appends, one sort per adjacency run at Freeze. Compare against
// BenchmarkIncrementalIngest for the bulk-load speedup.
func BenchmarkFreezeIngest(b *testing.B) {
	from, to, lab := bench.HubHeavyIngest(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := bench.IngestFrozen(from, to, lab); f.NumEdges() == 0 {
			b.Fatal("ingest produced no edges")
		}
	}
}
