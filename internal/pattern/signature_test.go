package pattern

import (
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestSignatureDerivation(t *testing.T) {
	p := New()
	x := p.AddVar("x", "person")
	y := p.AddVar("y", "blog")
	z := p.AddVar("z", graph.Wildcard)
	p.AddEdge(x, y, "post")
	p.AddEdge(x, y, "post") // duplicate label collapses to one entry
	p.AddEdge(x, z, "cite")
	p.AddEdge(z, x, graph.Wildcard)
	p.AddEdge(y, y, "self")

	tests := []struct {
		name            string
		v               Var
		wantOut, wantIn []string
	}{
		{"fan-out labels deduped and sorted", x, []string{"cite", "post"}, []string{graph.Wildcard}},
		{"self-loop contributes both sides", y, []string{"self"}, []string{"post", "self"}},
		{"wildcard edge kept as requirement", z, []string{graph.Wildcard}, []string{"cite"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			sig := p.Signature(tc.v)
			if !equalStrings(sig.Out, tc.wantOut) || !equalStrings(sig.In, tc.wantIn) {
				t.Errorf("Signature(%s) = %+v, want Out=%v In=%v", p.Name(tc.v), sig, tc.wantOut, tc.wantIn)
			}
		})
	}
}

func TestSignatureIsolatedVarIsEmpty(t *testing.T) {
	p := New()
	v := p.AddVar("x", "person")
	sig := p.Signature(v)
	if len(sig.Out) != 0 || len(sig.In) != 0 {
		t.Fatalf("isolated variable signature = %+v, want empty", sig)
	}
}

// TestSignatureSoundOnMatches asserts the pruning invariant the match layer
// relies on: every node participating in a homomorphism covers the
// signature of the variable it matches.
func TestSignatureSoundOnMatches(t *testing.T) {
	g := graph.New()
	a := g.AddNode("person")
	b := g.AddNode("blog")
	g.AddEdge(a, b, "post")
	g.AddEdge(b, b, "self")

	p := New()
	x := p.AddVar("x", "person")
	y := p.AddVar("y", "blog")
	p.AddEdge(x, y, "post")
	p.AddEdge(y, y, "self")

	if !g.Covers(a, p.Signature(x)) {
		t.Error("matching node a fails Covers for x")
	}
	if !g.Covers(b, p.Signature(y)) {
		t.Error("matching node b fails Covers for y")
	}
	// And the prune actually rejects an impossible candidate: a person with
	// no outgoing post edge can never match x.
	c := g.AddNode("person")
	if g.Covers(c, p.Signature(x)) {
		t.Error("edge-less node passes Covers for x; prune has no teeth")
	}
}

func equalStrings(a, b []string) bool {
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
