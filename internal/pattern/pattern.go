// Package pattern implements graph patterns Q[x̄] (Section II of the paper):
// small labeled graphs whose nodes are variables, with wildcard labels '_'
// permitted on nodes and edges. Patterns are matched into data graphs by
// homomorphism (label-preserving, with wildcard matching anything).
package pattern

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
)

// Var identifies a pattern variable (a node of Q). Vars are dense indexes in
// declaration order, so they double as slice offsets in match vectors h(x̄).
type Var int

// InvalidVar is returned by lookups that find no variable.
const InvalidVar Var = -1

// Edge is a directed labeled pattern edge between two variables.
type Edge struct {
	From  Var
	To    Var
	Label string // may be graph.Wildcard
}

// Pattern is a graph pattern Q[x̄]. Construct with New; patterns are
// immutable after Freeze (called implicitly by the functions that need
// derived data).
type Pattern struct {
	names  []string // variable names, e.g. "x", "y"
	labels []string // node labels, graph.Wildcard allowed
	edges  []Edge
	byName map[string]Var

	frozen     bool
	out        [][]Edge
	in         [][]Edge
	components [][]Var           // connected components (undirected), each sorted
	radius     []int             // eccentricity of each var within its component
	sigs       []graph.Signature // per-var adjacency requirement for pruning

	// fp caches Fingerprint (immutable once frozen; the Once makes the
	// lazy computation safe under concurrent first calls).
	fpOnce sync.Once
	fp     uint64
}

// New returns an empty pattern.
func New() *Pattern {
	return &Pattern{byName: make(map[string]Var)}
}

// AddVar declares a pattern variable with the given name and node label and
// returns it. Names must be unique within the pattern.
func (p *Pattern) AddVar(name, label string) Var {
	if p.frozen {
		panic("pattern: AddVar after freeze")
	}
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("pattern: duplicate variable %q", name))
	}
	v := Var(len(p.names))
	p.names = append(p.names, name)
	p.labels = append(p.labels, label)
	p.byName[name] = v
	return v
}

// AddEdge adds a directed pattern edge.
func (p *Pattern) AddEdge(from, to Var, label string) {
	if p.frozen {
		panic("pattern: AddEdge after freeze")
	}
	p.edges = append(p.edges, Edge{From: from, To: to, Label: label})
}

// VarByName returns the variable with the given name, or InvalidVar.
func (p *Pattern) VarByName(name string) Var {
	if v, ok := p.byName[name]; ok {
		return v
	}
	return InvalidVar
}

// Name returns the declared name of v.
func (p *Pattern) Name(v Var) string { return p.names[v] }

// Label returns the node label of v (possibly wildcard).
func (p *Pattern) Label(v Var) string { return p.labels[v] }

// NumVars returns |x̄|.
func (p *Pattern) NumVars() int { return len(p.names) }

// Edges returns the pattern edges. Callers must not mutate the slice.
func (p *Pattern) Edges() []Edge { return p.edges }

// Size returns |Q| = #vars + #edges.
func (p *Pattern) Size() int { return len(p.names) + len(p.edges) }

// Freeze computes the derived adjacency, component and radius data. It is
// idempotent and called implicitly by accessors that need it.
func (p *Pattern) Freeze() {
	if p.frozen {
		return
	}
	n := len(p.names)
	p.out = make([][]Edge, n)
	p.in = make([][]Edge, n)
	for _, e := range p.edges {
		p.out[e.From] = append(p.out[e.From], e)
		p.in[e.To] = append(p.in[e.To], e)
	}
	p.computeComponents()
	p.computeRadii()
	p.computeSignatures()
	p.frozen = true
}

// Out returns edges leaving v.
func (p *Pattern) Out(v Var) []Edge { p.Freeze(); return p.out[v] }

// In returns edges entering v.
func (p *Pattern) In(v Var) []Edge { p.Freeze(); return p.in[v] }

// Components returns the connected components of Q (edges taken as
// undirected), each a sorted list of variables. A pattern with no variables
// has no components.
func (p *Pattern) Components() [][]Var { p.Freeze(); return p.components }

// Connected reports whether Q is non-empty and has a single connected
// component.
func (p *Pattern) Connected() bool { p.Freeze(); return len(p.components) == 1 }

// Signature returns the adjacency requirement a data node must cover to
// match v: the distinct out/in edge labels of v's pattern edges (wildcard
// edges demand an edge of any label). The signatures are precomputed at
// Freeze, so probing one allocates nothing; candidate filters apply them via
// graph.Covers. The requirement is sound for homomorphisms: distinct labels
// cannot collapse onto one data edge, so a node missing a label matches
// nothing, while multiplicities are deliberately ignored (two same-labeled
// pattern edges may map to a single data edge when their endpoints unify).
func (p *Pattern) Signature(v Var) graph.Signature { p.Freeze(); return p.sigs[v] }

// Radius returns the eccentricity of v within its connected component: the
// longest undirected shortest-path distance from v to any variable of the
// component. This is d_Q at v (Section V-B); the d_Q-neighborhood of a data
// node matching v contains every possible match pivoted there.
func (p *Pattern) Radius(v Var) int { p.Freeze(); return p.radius[v] }

// LabelMatches reports whether a pattern label matches a data label under
// wildcard semantics: '_' in the pattern matches anything; otherwise the
// labels must be equal. (A '_' data label is matched only by '_'.)
func LabelMatches(patternLabel, dataLabel string) bool {
	return patternLabel == graph.Wildcard || patternLabel == dataLabel
}

// Pivot selects a pivot variable for each connected component of Q,
// preferring selective labels (fewest candidate nodes in g, wildcard = all).
// Ties break toward higher degree, then — on sharded snapshots — toward the
// label whose candidates concentrate most in a single shard (a pivot whose
// home shard is dense keeps more of the fan-out's work units on one worker's
// warm arrays), then lower variable index, keeping the choice deterministic.
func (p *Pattern) Pivot(g graph.Reader) []Var {
	p.Freeze()
	sv, _ := g.(graph.ShardedView)
	density := func(v Var) int {
		if sv == nil {
			return 0
		}
		_, count := sv.DensestShard(p.labels[v])
		return count
	}
	pivots := make([]Var, 0, len(p.components))
	for _, comp := range p.components {
		best := comp[0]
		bestFreq := g.LabelFrequency(p.labels[best])
		bestDeg := len(p.out[best]) + len(p.in[best])
		bestDen := density(best)
		for _, v := range comp[1:] {
			f := g.LabelFrequency(p.labels[v])
			d := len(p.out[v]) + len(p.in[v])
			switch {
			case f < bestFreq, f == bestFreq && d > bestDeg:
				best, bestFreq, bestDeg, bestDen = v, f, d, density(v)
			case sv != nil && f == bestFreq && d == bestDeg:
				if den := density(v); den > bestDen {
					best, bestFreq, bestDeg, bestDen = v, f, d, den
				}
			}
		}
		pivots = append(pivots, best)
	}
	return pivots
}

// AsGraph materializes the pattern as a data graph whose node labels are the
// pattern labels (wildcards kept as the literal '_' label) and whose node
// IDs equal the variable indexes. This is the building block of canonical
// graphs (Sections IV-B, VI-A).
func (p *Pattern) AsGraph() *graph.Graph {
	g := graph.New()
	for _, l := range p.labels {
		g.AddNode(l)
	}
	for _, e := range p.edges {
		g.AddEdge(graph.NodeID(e.From), graph.NodeID(e.To), e.Label)
	}
	return g
}

// MatchOrder returns a connectivity-respecting variable ordering for
// backtracking search within a component, starting at start: each subsequent
// variable is adjacent to an earlier one when possible (so candidate sets
// stay constrained). Variables outside start's component are excluded.
func (p *Pattern) MatchOrder(start Var) []Var {
	p.Freeze()
	comp := p.componentOf(start)
	inComp := make(map[Var]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	order := []Var{start}
	placed := map[Var]bool{start: true}
	for len(order) < len(comp) {
		// Pick the unplaced in-component variable with the most placed
		// neighbors (most constrained), ties toward lower index.
		best, bestScore := InvalidVar, -1
		for _, v := range comp {
			if placed[v] {
				continue
			}
			score := 0
			for _, e := range p.out[v] {
				if placed[e.To] {
					score++
				}
			}
			for _, e := range p.in[v] {
				if placed[e.From] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		order = append(order, best)
		placed[best] = true
	}
	return order
}

// PivotOrder returns the full variable ordering for a search pivoted at
// pv: pv's component first (starting at pv), then each remaining component
// in component order. This is the plan-extraction companion of Pivot —
// the parallel engines' work units and compiled match plans both order
// their searches with it.
func (p *Pattern) PivotOrder(pv Var) []Var {
	p.Freeze()
	order := p.MatchOrder(pv)
	seen := make(map[Var]bool, len(order))
	for _, v := range order {
		seen[v] = true
	}
	for _, comp := range p.components {
		if !seen[comp[0]] {
			order = append(order, p.MatchOrder(comp[0])...)
		}
	}
	return order
}

func (p *Pattern) componentOf(v Var) []Var {
	for _, comp := range p.components {
		for _, u := range comp {
			if u == v {
				return comp
			}
		}
	}
	return nil
}

func (p *Pattern) computeComponents() {
	n := len(p.names)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range p.edges {
		union(int(e.From), int(e.To))
	}
	groups := make(map[int][]Var)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], Var(i))
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	p.components = p.components[:0]
	for _, r := range roots {
		comp := groups[r]
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		p.components = append(p.components, comp)
	}
}

func (p *Pattern) computeRadii() {
	n := len(p.names)
	p.radius = make([]int, n)
	for v := 0; v < n; v++ {
		// BFS over undirected adjacency.
		dist := map[Var]int{Var(v): 0}
		frontier := []Var{Var(v)}
		max := 0
		for len(frontier) > 0 {
			var next []Var
			for _, u := range frontier {
				du := dist[u]
				step := func(w Var) {
					if _, ok := dist[w]; !ok {
						dist[w] = du + 1
						if du+1 > max {
							max = du + 1
						}
						next = append(next, w)
					}
				}
				for _, e := range p.out[u] {
					step(e.To)
				}
				for _, e := range p.in[u] {
					step(e.From)
				}
			}
			frontier = next
		}
		p.radius[v] = max
	}
}

func (p *Pattern) computeSignatures() {
	distinct := func(edges []Edge) []string {
		if len(edges) == 0 {
			return nil
		}
		var ls []string
		for _, e := range edges {
			dup := false
			for _, l := range ls {
				if l == e.Label {
					dup = true
					break
				}
			}
			if !dup {
				ls = append(ls, e.Label)
			}
		}
		sort.Strings(ls)
		return ls
	}
	p.sigs = make([]graph.Signature, len(p.names))
	for v := range p.sigs {
		p.sigs[v] = graph.Signature{Out: distinct(p.out[v]), In: distinct(p.in[v])}
	}
}

// String renders the pattern as "x:label" variable declarations followed by
// edges, deterministic.
func (p *Pattern) String() string {
	var b strings.Builder
	for i, name := range p.names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", name, p.labels[i])
	}
	for _, e := range p.edges {
		fmt.Fprintf(&b, "; %s-[%s]->%s", p.names[e.From], e.Label, p.names[e.To])
	}
	return b.String()
}
