package pattern

import (
	"testing"

	"repro/internal/graph"
)

// q3 builds the paper's Q3-like pattern: x,y (person) each -president_of->
// z (country), plus x,y -nationality-> w1/w2 — simplified to 4 vars here:
// x -p-> z, y -p-> z.
func vee() *Pattern {
	p := New()
	x := p.AddVar("x", "person")
	y := p.AddVar("y", "person")
	z := p.AddVar("z", "country")
	p.AddEdge(x, z, "president")
	p.AddEdge(y, z, "vice")
	return p
}

func TestAddVarAndLookup(t *testing.T) {
	p := vee()
	if p.NumVars() != 3 {
		t.Fatalf("NumVars = %d", p.NumVars())
	}
	if v := p.VarByName("y"); v == InvalidVar || p.Label(v) != "person" {
		t.Errorf("VarByName(y) broken: %v", v)
	}
	if p.VarByName("nope") != InvalidVar {
		t.Error("VarByName on missing name should be InvalidVar")
	}
}

func TestDuplicateVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddVar did not panic")
		}
	}()
	p := New()
	p.AddVar("x", "a")
	p.AddVar("x", "b")
}

func TestComponentsConnected(t *testing.T) {
	p := vee()
	if !p.Connected() {
		t.Error("vee pattern should be connected")
	}
	q := New()
	q.AddVar("a", "x")
	q.AddVar("b", "y")
	if q.Connected() {
		t.Error("two isolated vars reported connected")
	}
	if got := len(q.Components()); got != 2 {
		t.Errorf("components = %d, want 2", got)
	}
}

func TestRadius(t *testing.T) {
	// Chain x -> y -> z: radius at ends 2, at middle 1.
	p := New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "b")
	z := p.AddVar("z", "c")
	p.AddEdge(x, y, "e")
	p.AddEdge(y, z, "e")
	if p.Radius(x) != 2 || p.Radius(z) != 2 {
		t.Errorf("end radius = %d,%d; want 2,2", p.Radius(x), p.Radius(z))
	}
	if p.Radius(y) != 1 {
		t.Errorf("middle radius = %d, want 1", p.Radius(y))
	}
	// Radius ignores direction: reverse an edge, same radii.
	q := New()
	a := q.AddVar("a", "a")
	b := q.AddVar("b", "b")
	c := q.AddVar("c", "c")
	q.AddEdge(b, a, "e")
	q.AddEdge(b, c, "e")
	if q.Radius(a) != 2 {
		t.Errorf("undirected radius = %d, want 2", q.Radius(a))
	}
}

func TestLabelMatches(t *testing.T) {
	cases := []struct {
		pat, data string
		want      bool
	}{
		{"person", "person", true},
		{"person", "place", false},
		{graph.Wildcard, "anything", true},
		{graph.Wildcard, graph.Wildcard, true},
		{"person", graph.Wildcard, false}, // data '_' only matched by pattern '_'
	}
	for _, c := range cases {
		if got := LabelMatches(c.pat, c.data); got != c.want {
			t.Errorf("LabelMatches(%q,%q) = %v, want %v", c.pat, c.data, got, c.want)
		}
	}
}

func TestPivotPrefersSelectiveLabel(t *testing.T) {
	p := vee()
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.AddNode("person")
	}
	g.AddNode("country")
	pivots := p.Pivot(g)
	if len(pivots) != 1 {
		t.Fatalf("pivots = %v, want one per component", pivots)
	}
	if p.Label(pivots[0]) != "country" {
		t.Errorf("pivot label = %s, want the selective label country", p.Label(pivots[0]))
	}
}

// TestPivotPrefersDenseShard pins the shard-aware tiebreak: when two
// variables tie on label frequency and degree, a sharded snapshot breaks
// the tie toward the label whose candidates concentrate most in one shard;
// flat readers keep the lower-index choice.
func TestPivotPrefersDenseShard(t *testing.T) {
	p := New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "b")
	p.AddEdge(x, y, "e")

	// 12 nodes, 3 shards of 4: "b" fills shard 0 (densest run 4), "a" is
	// spread two-and-two over shards 1 and 2 (densest run 2). Frequencies
	// (4 each) and pattern degrees (1 each) tie.
	b := graph.NewBuilder(0)
	for _, l := range []string{"b", "b", "b", "b", "a", "a", "c", "c", "a", "a", "c", "c"} {
		b.AddNode(l)
	}
	s := b.FreezeSharded(3)
	if got := p.Pivot(s.Frozen()); got[0] != x {
		t.Fatalf("flat tie should keep the lower variable, got %v", got[0])
	}
	if got := p.Pivot(s); got[0] != y {
		t.Fatalf("sharded tie should prefer the shard-dense label b, got %v", got[0])
	}
}

func TestPivotOnePerComponent(t *testing.T) {
	p := New()
	a := p.AddVar("a", "x")
	b := p.AddVar("b", "y")
	p.AddEdge(a, a, "self")
	_ = b
	g := graph.New()
	g.AddNode("x")
	g.AddNode("y")
	if got := len(p.Pivot(g)); got != 2 {
		t.Errorf("pivots = %d, want 2 (one per component)", got)
	}
}

func TestMatchOrderConnectivity(t *testing.T) {
	p := vee()
	order := p.MatchOrder(p.VarByName("z"))
	if len(order) != 3 || order[0] != p.VarByName("z") {
		t.Fatalf("order = %v", order)
	}
	// Every subsequent var must touch an earlier one.
	placed := map[Var]bool{order[0]: true}
	for _, v := range order[1:] {
		touching := false
		for _, e := range p.Out(v) {
			if placed[e.To] {
				touching = true
			}
		}
		for _, e := range p.In(v) {
			if placed[e.From] {
				touching = true
			}
		}
		if !touching {
			t.Errorf("var %v placed without an assigned neighbor", v)
		}
		placed[v] = true
	}
}

func TestAsGraphPreservesStructure(t *testing.T) {
	p := vee()
	g := p.AsGraph()
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("AsGraph size %d,%d", g.NumNodes(), g.NumEdges())
	}
	if g.Label(graph.NodeID(p.VarByName("z"))) != "country" {
		t.Error("labels not preserved")
	}
	if !g.HasEdge(graph.NodeID(p.VarByName("x")), graph.NodeID(p.VarByName("z")), "president") {
		t.Error("edge not preserved")
	}
}

func TestWildcardKeptInAsGraph(t *testing.T) {
	p := New()
	p.AddVar("x", graph.Wildcard)
	g := p.AsGraph()
	if g.Label(0) != graph.Wildcard {
		t.Errorf("wildcard label = %q, want %q", g.Label(0), graph.Wildcard)
	}
}
