// Canonical structural fingerprints and match-order frame signatures: the
// foundations of shared multi-GFD evaluation. A rule set Σ is heavily
// redundant in practice — many GFDs carry one pattern (same Q, different
// X → Y) or patterns that agree on a prefix of their match orders — and the
// sharing layers (gfd.Set.Groups, match.EnumerateGrouped, the fingerprint-
// keyed PlanCache) all need a cheap structural identity that does not depend
// on pointer identity or variable names.
//
// Fingerprint hashes labels + topology under a canonical variable order
// derived by color refinement (1-WL), so structurally equal patterns always
// collide and most isomorphic re-numberings do too. The hash is only a
// bucket key: every consumer confirms candidates with StructuralEqual, the
// full positional check, so a 64-bit collision can never merge two patterns
// that differ.
package pattern

import "sort"

// fnv64 constants (FNV-1a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	// Terminate the string so "ab","c" and "a","bc" cannot alias.
	h ^= 0xff
	h *= fnvPrime64
	return h
}

func fnvUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Fingerprint returns the canonical structural hash of the pattern: node
// labels and edge topology under a canonical variable order, independent of
// variable names and declaration order for most patterns (color refinement
// cannot split every symmetry, so some isomorphic pairs land in different
// buckets — a missed sharing opportunity, never an error). Two structurally
// equal patterns (see StructuralEqual) always have equal fingerprints. The
// value is computed once and cached; Fingerprint freezes the pattern.
func (p *Pattern) Fingerprint() uint64 {
	p.fpOnce.Do(func() { p.fp = p.computeFingerprint() })
	return p.fp
}

func (p *Pattern) computeFingerprint() uint64 {
	p.Freeze()
	n := len(p.names)
	rank := p.canonicalRank()

	h := uint64(fnvOffset64)
	h = fnvUint(h, uint64(n))
	h = fnvUint(h, uint64(len(p.edges)))
	// Labels in canonical order.
	inv := make([]Var, n)
	for v, r := range rank {
		inv[r] = Var(v)
	}
	for _, v := range inv {
		h = fnvString(h, p.labels[v])
	}
	// Edges as a sorted multiset of canonical (from, to, label) triples.
	type cEdge struct {
		from, to int
		label    string
	}
	ces := make([]cEdge, len(p.edges))
	for i, e := range p.edges {
		ces[i] = cEdge{from: rank[e.From], to: rank[e.To], label: e.Label}
	}
	sort.Slice(ces, func(i, j int) bool {
		a, b := ces[i], ces[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.label < b.label
	})
	for _, e := range ces {
		h = fnvUint(h, uint64(e.from))
		h = fnvUint(h, uint64(e.to))
		h = fnvString(h, e.label)
	}
	return h
}

// canonicalRank computes a canonical position for every variable via color
// refinement: colors start as label hashes and are iteratively refined by
// the sorted multiset of (direction, edge label, neighbor color) signatures.
// The final ranking sorts by refined color with the declaration index as a
// deterministic tie-break, so identical structures rank identically while
// the tie-break keeps the result total.
func (p *Pattern) canonicalRank() []int {
	n := len(p.names)
	colors := make([]uint64, n)
	for v := 0; v < n; v++ {
		colors[v] = fnvString(fnvOffset64, p.labels[v])
	}
	next := make([]uint64, n)
	sigs := make([]uint64, 0, 8)
	// n rounds propagate information across the longest possible path.
	for round := 0; round < n; round++ {
		for v := 0; v < n; v++ {
			sigs = sigs[:0]
			for _, e := range p.out[v] {
				s := fnvUint(fnvOffset64, 1)
				s = fnvString(s, e.Label)
				s = fnvUint(s, colors[e.To])
				sigs = append(sigs, s)
			}
			for _, e := range p.in[v] {
				s := fnvUint(fnvOffset64, 2)
				s = fnvString(s, e.Label)
				s = fnvUint(s, colors[e.From])
				sigs = append(sigs, s)
			}
			sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
			h := fnvUint(fnvOffset64, colors[v])
			for _, s := range sigs {
				h = fnvUint(h, s)
			}
			next[v] = h
		}
		copy(colors, next)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if colors[a] != colors[b] {
			return colors[a] < colors[b]
		}
		return a < b
	})
	rank := make([]int, n)
	for r, v := range idx {
		rank[v] = r
	}
	return rank
}

// StructuralEqual reports whether two patterns are positionally identical:
// same variable count, same label at every index, and the same multiset of
// (from, to, label) edges. Variable names are ignored. This is the guard
// behind every fingerprint bucket — and the property the sharing layers
// actually rely on: a match of one pattern is, index for index, a match of
// any StructuralEqual pattern, and their derived orders, radii and
// signatures coincide.
func StructuralEqual(a, b *Pattern) bool {
	if a == b {
		return true
	}
	if len(a.names) != len(b.names) || len(a.edges) != len(b.edges) {
		return false
	}
	for i := range a.labels {
		if a.labels[i] != b.labels[i] {
			return false
		}
	}
	ae := sortedEdges(a.edges)
	be := sortedEdges(b.edges)
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

func sortedEdges(edges []Edge) []Edge {
	es := append([]Edge(nil), edges...)
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	return es
}

// FrameEdge is one pattern edge a match-order frame checks: an edge between
// order[i] and the variable at an earlier order position Pos (Pos == i for a
// self-loop). Out reports the edge's direction: true for order[i] → order[Pos].
type FrameEdge struct {
	Out   bool
	Pos   int
	Label string
}

// FrameSig is the structural constraint frame i of a match order adds: the
// variable's node label and every edge binding it to already-placed
// variables. Two orders whose frame sequences agree up to depth L search
// identical trees for their first L levels — the basis of prefix-shared
// search across distinct patterns (match.EnumerateGrouped).
type FrameSig struct {
	Label string
	Edges []FrameEdge // sorted by (Out, Pos, Label)
}

// Equal reports frame-signature equality.
func (f FrameSig) Equal(g FrameSig) bool {
	if f.Label != g.Label || len(f.Edges) != len(g.Edges) {
		return false
	}
	for i := range f.Edges {
		if f.Edges[i] != g.Edges[i] {
			return false
		}
	}
	return true
}

// OrderFrames computes the frame signature sequence of a match order: for
// each position i, the label of order[i] and the edges connecting it to
// order[0..i]. Every pattern edge appears in exactly one frame (the one of
// its later-ordered endpoint; self-loops count once, as an Out edge). order
// must cover the pattern's variables exactly once.
func (p *Pattern) OrderFrames(order []Var) []FrameSig {
	p.Freeze()
	pos := make([]int, len(p.names))
	for i := range pos {
		pos[i] = -1
	}
	frames := make([]FrameSig, len(order))
	for i, v := range order {
		pos[v] = i
		fs := FrameSig{Label: p.labels[v]}
		for _, e := range p.out[v] {
			if j := pos[e.To]; j >= 0 {
				fs.Edges = append(fs.Edges, FrameEdge{Out: true, Pos: j, Label: e.Label})
			}
		}
		for _, e := range p.in[v] {
			// Self-loops were counted by the out pass.
			if j := pos[e.From]; j >= 0 && e.From != v {
				fs.Edges = append(fs.Edges, FrameEdge{Out: false, Pos: j, Label: e.Label})
			}
		}
		sort.Slice(fs.Edges, func(a, b int) bool {
			x, y := fs.Edges[a], fs.Edges[b]
			if x.Out != y.Out {
				return x.Out && !y.Out
			}
			if x.Pos != y.Pos {
				return x.Pos < y.Pos
			}
			return x.Label < y.Label
		})
		frames[i] = fs
	}
	return frames
}

// FramePrefixLen returns the length of the longest common prefix of two
// frame sequences: the depth to which two match orders explore the same
// search tree.
func FramePrefixLen(a, b []FrameSig) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !a[i].Equal(b[i]) {
			return i
		}
	}
	return n
}
