package pattern_test

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/pattern"
)

// rebuild returns a structurally identical pattern value with fresh
// (different) variable names: the shape PlanCache and Set.Groups must unify.
func rebuild(p *pattern.Pattern) *pattern.Pattern {
	q := pattern.New()
	for v := 0; v < p.NumVars(); v++ {
		q.AddVar(fmt.Sprintf("rb%d", v), p.Label(pattern.Var(v)))
	}
	for _, e := range p.Edges() {
		q.AddEdge(e.From, e.To, e.Label)
	}
	q.Freeze()
	return q
}

// TestFingerprintStructuralEquality pins the contract the sharing layers
// rely on: a rebuilt copy (new value, new names) has the same fingerprint
// and is StructuralEqual, while any single-label or single-edge mutation
// breaks StructuralEqual.
func TestFingerprintStructuralEquality(t *testing.T) {
	p := pattern.New()
	x := p.AddVar("x", "person")
	y := p.AddVar("y", "city")
	z := p.AddVar("z", "person")
	p.AddEdge(x, y, "lives_in")
	p.AddEdge(z, y, "lives_in")
	p.AddEdge(x, z, "knows")
	p.AddEdge(x, x, "self")

	q := rebuild(p)
	if q == p {
		t.Fatal("rebuild returned the same value")
	}
	if !pattern.StructuralEqual(p, q) {
		t.Fatal("rebuilt copy not StructuralEqual")
	}
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatalf("structurally equal patterns fingerprint differently: %x vs %x",
			p.Fingerprint(), q.Fingerprint())
	}

	mutations := map[string]func(*pattern.Pattern){
		"label":      func(m *pattern.Pattern) { m.AddVar("extra", "person") },
		"edge label": func(m *pattern.Pattern) { m.AddEdge(0, 1, "works_in") },
		"edge":       func(m *pattern.Pattern) { m.AddEdge(1, 0, "lives_in") },
	}
	for name, mutate := range mutations {
		m := pattern.New()
		for v := 0; v < p.NumVars(); v++ {
			m.AddVar(fmt.Sprintf("m%d", v), p.Label(pattern.Var(v)))
		}
		for _, e := range p.Edges() {
			m.AddEdge(e.From, e.To, e.Label)
		}
		mutate(m)
		if pattern.StructuralEqual(p, m) {
			t.Errorf("%s mutation still StructuralEqual", name)
		}
	}
}

// TestFingerprintRenumberingInvariance checks the canonical order does its
// job on a simple asymmetric isomorphism: the same path declared in two
// different variable orders fingerprints identically.
func TestFingerprintRenumberingInvariance(t *testing.T) {
	a := pattern.New()
	a1 := a.AddVar("a1", "s")
	a2 := a.AddVar("a2", "t")
	a3 := a.AddVar("a3", "u")
	a.AddEdge(a1, a2, "e")
	a.AddEdge(a2, a3, "f")

	b := pattern.New()
	b3 := b.AddVar("b3", "u")
	b1 := b.AddVar("b1", "s")
	b2 := b.AddVar("b2", "t")
	b.AddEdge(b1, b2, "e")
	b.AddEdge(b2, b3, "f")

	if pattern.StructuralEqual(a, b) {
		t.Fatal("renumbered patterns should not be positionally equal")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("isomorphic renumbering changed the fingerprint: %x vs %x",
			a.Fingerprint(), b.Fingerprint())
	}
}

// TestFingerprintNoCollisions exercises the structural-equality guard on a
// randomized corpus: across many generated patterns, any two that share a
// fingerprint must be isomorphic-or-equal in the weak positional sense we
// can decide (StructuralEqual), or at minimum must never be conflated by the
// guard itself. The test asserts the contract consumers depend on — equal
// fingerprint + StructuralEqual == same bucket member — and flags hash
// collisions between patterns of visibly different shape (var/edge counts),
// which canonicalization can never merge.
func TestFingerprintNoCollisions(t *testing.T) {
	type entry struct {
		p  *pattern.Pattern
		fp uint64
	}
	var corpus []entry
	for seed := int64(1); seed <= 30; seed++ {
		gr := gen.New(gen.Config{N: 20, K: 5, L: 3, WildcardRate: 0.2, Seed: seed})
		for i := 0; i < 12; i++ {
			p := gr.Pattern()
			corpus = append(corpus, entry{p: p, fp: p.Fingerprint()})
		}
	}
	byFP := make(map[uint64][]*pattern.Pattern)
	for _, e := range corpus {
		byFP[e.fp] = append(byFP[e.fp], e.p)
	}
	distinctShapes := 0
	for fp, ps := range byFP {
		for i := 1; i < len(ps); i++ {
			if pattern.StructuralEqual(ps[0], ps[i]) {
				continue
			}
			// Same fingerprint but not positionally equal: tolerable only
			// for genuine isomorphisms; identical var/edge counts are a
			// necessary condition, so a count mismatch is a hard collision.
			if ps[0].NumVars() != ps[i].NumVars() || len(ps[0].Edges()) != len(ps[i].Edges()) {
				t.Fatalf("fingerprint %x collides across different shapes:\n  %s\n  %s",
					fp, ps[0], ps[i])
			}
		}
	}
	// The corpus must actually contain diversity for the test to mean much.
	for _, e := range corpus {
		if e.p.NumVars() != corpus[0].p.NumVars() || len(e.p.Edges()) != len(corpus[0].p.Edges()) {
			distinctShapes++
		}
	}
	if len(byFP) < 10 || distinctShapes == 0 {
		t.Fatalf("corpus too uniform to exercise collisions: %d buckets, %d off-shape patterns",
			len(byFP), distinctShapes)
	}
}

// TestOrderFrames pins the frame decomposition: every pattern edge appears
// in exactly one frame, at the position of its later-ordered endpoint, and
// FramePrefixLen detects exactly where two orders diverge.
func TestOrderFrames(t *testing.T) {
	p := pattern.New()
	x := p.AddVar("x", "a")
	y := p.AddVar("y", "b")
	z := p.AddVar("z", "c")
	p.AddEdge(x, y, "e")
	p.AddEdge(z, y, "f")
	p.AddEdge(x, x, "self")

	order := []pattern.Var{x, y, z}
	frames := p.OrderFrames(order)
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	total := 0
	for _, f := range frames {
		total += len(f.Edges)
	}
	if total != len(p.Edges()) {
		t.Fatalf("frames carry %d edges, pattern has %d", total, len(p.Edges()))
	}
	// Frame 0: x with its self-loop (counted once, as Out at Pos 0).
	if frames[0].Label != "a" || len(frames[0].Edges) != 1 ||
		frames[0].Edges[0] != (pattern.FrameEdge{Out: true, Pos: 0, Label: "self"}) {
		t.Fatalf("frame 0 wrong: %+v", frames[0])
	}
	// Frame 1: y receives x->y (In edge from pos 0).
	if frames[1].Label != "b" || len(frames[1].Edges) != 1 ||
		frames[1].Edges[0] != (pattern.FrameEdge{Out: false, Pos: 0, Label: "e"}) {
		t.Fatalf("frame 1 wrong: %+v", frames[1])
	}
	// Frame 2: z sends z->y (Out edge to pos 1).
	if frames[2].Label != "c" || len(frames[2].Edges) != 1 ||
		frames[2].Edges[0] != (pattern.FrameEdge{Out: true, Pos: 1, Label: "f"}) {
		t.Fatalf("frame 2 wrong: %+v", frames[2])
	}

	// A pattern agreeing on the first two frames but diverging at the third.
	q := pattern.New()
	qx := q.AddVar("qx", "a")
	qy := q.AddVar("qy", "b")
	qw := q.AddVar("qw", "d")
	q.AddEdge(qx, qy, "e")
	q.AddEdge(qw, qy, "f")
	q.AddEdge(qx, qx, "self")
	qframes := q.OrderFrames([]pattern.Var{qx, qy, qw})
	if got := pattern.FramePrefixLen(frames, qframes); got != 2 {
		t.Fatalf("FramePrefixLen = %d, want 2 (labels diverge at frame 2)", got)
	}
	if got := pattern.FramePrefixLen(frames, frames); got != 3 {
		t.Fatalf("self prefix = %d, want 3", got)
	}
}
