// Package eq implements the equivalence relation Eq of Section IV-C: a
// union-find over attribute terms x.A (node–attribute pairs of a canonical
// graph) where each class may carry at most one constant. Enforcing a GFD at
// a match expands Eq via:
//
//	Rule 1 (x.A = c):   create [x.A] if missing and add c; two distinct
//	                    constants in one class is a conflict.
//	Rule 2 (x.A = y.B): create missing classes and merge them; a merged
//	                    class with distinct constants is a conflict.
//
// Eq is monotone (classes only grow, constants are never retracted), so
// deltas taken from one replica can be replayed on another in any order and
// all replicas converge — the property the parallel algorithms rely on for
// asynchronous broadcast.
//
// Internally terms are interned to dense integer ids so the union-find runs
// on flat slices; this keeps delta replay (p workers × |log| ops in the
// parallel algorithms) off the string-hashing path.
package eq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Term is an attribute term x.A: attribute Attr at canonical-graph node Node.
type Term struct {
	Node graph.NodeID
	Attr string
}

func (t Term) String() string { return fmt.Sprintf("%d.%s", t.Node, t.Attr) }

// Conflict records the first contradiction found: a class required to equal
// two distinct constants.
type Conflict struct {
	Term   Term
	C1, C2 string
}

func (c *Conflict) Error() string {
	return fmt.Sprintf("eq: conflict at %s: %q vs %q", c.Term, c.C1, c.C2)
}

// OpKind tags delta operations.
type OpKind int

const (
	// OpAssign records "constant C was attached to the class of T".
	OpAssign OpKind = iota
	// OpMerge records "the classes of T and U were merged".
	OpMerge
)

// Op is one monotone mutation, replayable on another replica.
type Op struct {
	Kind OpKind
	T, U Term
	C    string
}

// Delta is an ordered batch of operations taken from a replica.
type Delta []Op

const noConst = -1

// Eq is the equivalence relation. The zero value is not usable; construct
// with New. Eq is not safe for concurrent use; each worker owns a replica.
type Eq struct {
	ids   map[Term]int32
	terms []Term

	parent []int32
	rank   []int8
	consts []int32   // per root: index into constVals, or noConst
	member [][]int32 // per root: member term ids

	constIDs  map[string]int32
	constVals []string

	con *Conflict
	log Delta // mutations since the last TakeDelta
	// replaying suppresses logging while Apply replays a remote delta, so
	// received ops are not re-broadcast by the receiving worker.
	replaying bool
}

// New returns an empty relation.
func New() *Eq {
	return &Eq{
		ids:      make(map[Term]int32),
		constIDs: make(map[string]int32),
	}
}

// Len returns the number of terms tracked.
func (e *Eq) Len() int { return len(e.terms) }

// Conflicted returns the first conflict found, or nil.
func (e *Eq) Conflicted() *Conflict { return e.con }

// Has reports whether the class [t] exists.
func (e *Eq) Has(t Term) bool {
	_, ok := e.ids[t]
	return ok
}

// intern returns the id of t, creating its singleton class if needed.
func (e *Eq) intern(t Term) (int32, bool) {
	if id, ok := e.ids[t]; ok {
		return id, false
	}
	id := int32(len(e.terms))
	e.ids[t] = id
	e.terms = append(e.terms, t)
	e.parent = append(e.parent, id)
	e.rank = append(e.rank, 0)
	e.consts = append(e.consts, noConst)
	e.member = append(e.member, []int32{id})
	return id, true
}

func (e *Eq) constID(c string) int32 {
	if id, ok := e.constIDs[c]; ok {
		return id
	}
	id := int32(len(e.constVals))
	e.constIDs[c] = id
	e.constVals = append(e.constVals, c)
	return id
}

// Ensure creates the singleton class [t] if missing and reports whether it
// was created.
func (e *Eq) Ensure(t Term) bool {
	_, created := e.intern(t)
	return created
}

func (e *Eq) find(id int32) int32 {
	root := id
	for e.parent[root] != root {
		root = e.parent[root]
	}
	for e.parent[id] != root {
		id, e.parent[id] = e.parent[id], root
	}
	return root
}

// Const returns the constant attached to [t], if any.
func (e *Eq) Const(t Term) (string, bool) {
	id, ok := e.ids[t]
	if !ok {
		return "", false
	}
	ci := e.consts[e.find(id)]
	if ci == noConst {
		return "", false
	}
	return e.constVals[ci], true
}

// Same reports whether t and u exist and are in the same class.
func (e *Eq) Same(t, u Term) bool {
	it, ok1 := e.ids[t]
	iu, ok2 := e.ids[u]
	if !ok1 || !ok2 {
		return false
	}
	return e.find(it) == e.find(iu)
}

// Members returns every term in the class of t (nil if absent). The slice
// is freshly allocated.
func (e *Eq) Members(t Term) []Term {
	id, ok := e.ids[t]
	if !ok {
		return nil
	}
	return e.toTerms(e.member[e.find(id)])
}

func (e *Eq) toTerms(ids []int32) []Term {
	out := make([]Term, len(ids))
	for i, id := range ids {
		out[i] = e.terms[id]
	}
	return out
}

// AssignConst enforces the literal t = c (Rule 1). It returns the terms
// whose class changed (for pending-match re-checking) — empty when c was
// already present. On contradiction it records a conflict and still returns
// the class members so callers can observe the change.
func (e *Eq) AssignConst(t Term, c string) []Term {
	id, _ := e.intern(t)
	root := e.find(id)
	ci := e.constID(c)
	switch old := e.consts[root]; {
	case old == noConst:
		e.consts[root] = ci
		e.logOp(Op{Kind: OpAssign, T: t, C: c})
		return e.toTerms(e.member[root])
	case old == ci:
		return nil
	default:
		if e.con == nil {
			e.con = &Conflict{Term: t, C1: e.constVals[old], C2: c}
		}
		e.logOp(Op{Kind: OpAssign, T: t, C: c})
		return e.toTerms(e.member[root])
	}
}

// Merge enforces the literal t = u (Rule 2). It returns the terms whose
// class changed (the members of the absorbed side plus, when a constant
// propagates, the whole merged class), or nil when t and u were already
// equivalent. A merge joining classes with distinct constants records a
// conflict.
func (e *Eq) Merge(t, u Term) []Term {
	it, _ := e.intern(t)
	iu, _ := e.intern(u)
	rt, ru := e.find(it), e.find(iu)
	if rt == ru {
		return nil
	}
	// Union by rank; keep rt as the surviving root.
	if e.rank[rt] < e.rank[ru] {
		rt, ru = ru, rt
	}
	if e.rank[rt] == e.rank[ru] {
		e.rank[rt]++
	}
	ct, cu := e.consts[rt], e.consts[ru]

	var changed []int32
	changed = append(changed, e.member[ru]...)
	if cu != noConst && ct == noConst {
		// The absorbed side's constant now constrains the survivor's members.
		changed = append(changed, e.member[rt]...)
	}

	e.parent[ru] = rt
	e.member[rt] = append(e.member[rt], e.member[ru]...)
	e.member[ru] = nil
	switch {
	case ct != noConst && cu != noConst && ct != cu:
		if e.con == nil {
			e.con = &Conflict{Term: t, C1: e.constVals[ct], C2: e.constVals[cu]}
		}
	case cu != noConst && ct == noConst:
		e.consts[rt] = cu
	}
	e.consts[ru] = noConst
	e.logOp(Op{Kind: OpMerge, T: t, U: u})
	return e.toTerms(changed)
}

// TakeDelta returns the mutations applied since the previous TakeDelta and
// resets the log. Replaying the delta on another replica reproduces the
// semantic content (classes and constants), independent of interleaving
// with that replica's own mutations.
func (e *Eq) TakeDelta() Delta {
	d := e.log
	e.log = nil
	return d
}

func (e *Eq) logOp(op Op) {
	if !e.replaying {
		e.log = append(e.log, op)
	}
}

// Apply replays a delta from another replica and returns the terms whose
// class changed. Conflicts discovered during replay are recorded exactly as
// for local mutations. Replayed ops are not re-logged, so a worker never
// re-broadcasts what it received.
func (e *Eq) Apply(d Delta) []Term {
	e.replaying = true
	defer func() { e.replaying = false }()
	var changed []Term
	for _, op := range d {
		switch op.Kind {
		case OpAssign:
			changed = append(changed, e.AssignConst(op.T, op.C)...)
		case OpMerge:
			changed = append(changed, e.Merge(op.T, op.U)...)
		}
	}
	return changed
}

// Clone returns an independent deep copy, including any pending log and
// conflict.
func (e *Eq) Clone() *Eq {
	c := &Eq{
		ids:       make(map[Term]int32, len(e.ids)),
		terms:     append([]Term{}, e.terms...),
		parent:    append([]int32{}, e.parent...),
		rank:      append([]int8{}, e.rank...),
		consts:    append([]int32{}, e.consts...),
		member:    make([][]int32, len(e.member)),
		constIDs:  make(map[string]int32, len(e.constIDs)),
		constVals: append([]string{}, e.constVals...),
		log:       append(Delta{}, e.log...),
	}
	for t, id := range e.ids {
		c.ids[t] = id
	}
	for i, m := range e.member {
		if m != nil {
			c.member[i] = append([]int32{}, m...)
		}
	}
	for s, id := range e.constIDs {
		c.constIDs[s] = id
	}
	if e.con != nil {
		cc := *e.con
		c.con = &cc
	}
	return c
}

// AllTerms returns every term the relation tracks, in no particular order.
// The slice is the relation's interning table; callers must not mutate it.
func (e *Eq) AllTerms() []Term { return e.terms }

// AllConsts returns every constant the relation has seen.
func (e *Eq) AllConsts() []string { return e.constVals }

// Classes returns a canonical rendering of the relation: each class as its
// sorted member list plus constant, classes sorted lexicographically. Two
// replicas with equal Classes() output are semantically identical — used by
// convergence tests.
func (e *Eq) Classes() string {
	var lines []string
	for i, m := range e.member {
		if m == nil || e.parent[int32(i)] != int32(i) {
			continue
		}
		names := make([]string, len(m))
		for j, id := range m {
			names[j] = e.terms[id].String()
		}
		sort.Strings(names)
		line := strings.Join(names, ",")
		if ci := e.consts[i]; ci != noConst {
			line += "=" + e.constVals[ci]
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
