package eq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func tm(n int, a string) Term { return Term{Node: graph.NodeID(n), Attr: a} }

func TestAssignConstRule1(t *testing.T) {
	e := New()
	changed := e.AssignConst(tm(0, "A"), "1")
	if len(changed) != 1 {
		t.Fatalf("first assign changed %d terms, want 1", len(changed))
	}
	if c, ok := e.Const(tm(0, "A")); !ok || c != "1" {
		t.Fatalf("Const = %q,%v", c, ok)
	}
	// Re-assigning the same constant is a no-op.
	if changed := e.AssignConst(tm(0, "A"), "1"); changed != nil {
		t.Error("idempotent assign reported a change")
	}
	if e.Conflicted() != nil {
		t.Fatal("spurious conflict")
	}
	// A distinct constant conflicts.
	e.AssignConst(tm(0, "A"), "2")
	con := e.Conflicted()
	if con == nil {
		t.Fatal("conflict not detected")
	}
	if (con.C1 != "1" || con.C2 != "2") && (con.C1 != "2" || con.C2 != "1") {
		t.Errorf("conflict constants = %q,%q", con.C1, con.C2)
	}
}

func TestMergeRule2(t *testing.T) {
	e := New()
	e.AssignConst(tm(0, "A"), "7")
	if e.Same(tm(0, "A"), tm(1, "B")) {
		t.Fatal("distinct singletons reported equal")
	}
	e.Merge(tm(0, "A"), tm(1, "B"))
	if !e.Same(tm(0, "A"), tm(1, "B")) {
		t.Fatal("merge did not join classes")
	}
	// The constant propagates to the merged class.
	if c, ok := e.Const(tm(1, "B")); !ok || c != "7" {
		t.Fatalf("merged const = %q,%v, want 7", c, ok)
	}
	// Merging the same pair again is a no-op.
	if changed := e.Merge(tm(0, "A"), tm(1, "B")); changed != nil {
		t.Error("idempotent merge reported change")
	}
}

func TestMergeConflictingConstants(t *testing.T) {
	e := New()
	e.AssignConst(tm(0, "A"), "1")
	e.AssignConst(tm(1, "B"), "2")
	e.Merge(tm(0, "A"), tm(1, "B"))
	if e.Conflicted() == nil {
		t.Fatal("merge of classes with distinct constants must conflict")
	}
}

func TestTransitivityViaMerges(t *testing.T) {
	e := New()
	e.Merge(tm(0, "A"), tm(1, "B"))
	e.Merge(tm(1, "B"), tm(2, "C"))
	if !e.Same(tm(0, "A"), tm(2, "C")) {
		t.Fatal("transitivity broken")
	}
	e.AssignConst(tm(2, "C"), "v")
	if c, _ := e.Const(tm(0, "A")); c != "v" {
		t.Fatal("constant not visible across transitive class")
	}
}

func TestChangedTermsOnConstPropagation(t *testing.T) {
	e := New()
	e.Merge(tm(0, "A"), tm(1, "B"))
	// Assigning to one member must report the whole class as changed so
	// pending matches keyed on either term get re-checked.
	changed := e.AssignConst(tm(1, "B"), "9")
	if len(changed) != 2 {
		t.Fatalf("changed = %v, want both class members", changed)
	}
	// Merging a constant-bearing class into a bare one reports the bare
	// side's members too (they just gained a constant).
	e2 := New()
	e2.AssignConst(tm(0, "A"), "1")
	e2.Ensure(tm(1, "B"))
	e2.Ensure(tm(2, "C"))
	e2.Merge(tm(1, "B"), tm(2, "C"))
	changed = e2.Merge(tm(0, "A"), tm(1, "B"))
	seen := map[Term]bool{}
	for _, c := range changed {
		seen[c] = true
	}
	if !seen[tm(1, "B")] || !seen[tm(2, "C")] {
		t.Errorf("constant propagation changed-set missing bare members: %v", changed)
	}
}

func TestDeltaReplayConverges(t *testing.T) {
	a, b := New(), New()
	a.AssignConst(tm(0, "A"), "1")
	a.Merge(tm(0, "A"), tm(1, "B"))
	d := a.TakeDelta()
	if len(d) != 2 {
		t.Fatalf("delta ops = %d, want 2", len(d))
	}
	b.Apply(d)
	if a.Classes() != b.Classes() {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", a.Classes(), b.Classes())
	}
	// Replays are idempotent and do not re-log.
	b.TakeDelta()
	b.Apply(d)
	if got := b.TakeDelta(); len(got) != 0 {
		t.Errorf("idempotent replay re-logged %d ops", len(got))
	}
}

func TestConcurrentDeltasCommute(t *testing.T) {
	// Two workers make disjoint-then-overlapping changes; applying each
	// other's deltas in opposite orders must converge (Church–Rosser).
	w1, w2 := New(), New()
	w1.AssignConst(tm(0, "A"), "1")
	w1.Merge(tm(0, "A"), tm(1, "B"))
	d1 := w1.TakeDelta()
	w2.Merge(tm(1, "B"), tm(2, "C"))
	w2.AssignConst(tm(3, "D"), "4")
	d2 := w2.TakeDelta()
	w1.Apply(d2)
	w2.Apply(d1)
	if w1.Classes() != w2.Classes() {
		t.Fatalf("asynchronous application diverged:\n%s\nvs\n%s", w1.Classes(), w2.Classes())
	}
	if c, _ := w1.Const(tm(2, "C")); c != "1" {
		t.Errorf("constant did not flow through cross-worker merge: %q", c)
	}
}

func TestConflictSurvivesReplay(t *testing.T) {
	a := New()
	a.AssignConst(tm(0, "A"), "1")
	a.AssignConst(tm(0, "A"), "2")
	if a.Conflicted() == nil {
		t.Fatal("no local conflict")
	}
	d := a.TakeDelta()
	b := New()
	b.Apply(d)
	if b.Conflicted() == nil {
		t.Fatal("conflict lost in replay")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := New()
	a.AssignConst(tm(0, "A"), "1")
	c := a.Clone()
	c.Merge(tm(0, "A"), tm(5, "Z"))
	if a.Same(tm(0, "A"), tm(5, "Z")) {
		t.Fatal("clone mutation leaked")
	}
	if c.Classes() == a.Classes() {
		t.Fatal("clone did not record its own mutation")
	}
}

// Property: for random operation sequences executed on one replica and
// replayed (possibly interleaved with local ops) on another, both replicas
// converge to identical classes — the monotone-confluence property the
// asynchronous broadcast relies on.
func TestQuickDeltaConfluence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		full := New()
		var ops []Op
		randTerm := func() Term { return tm(rng.Intn(6), string(rune('A'+rng.Intn(3)))) }
		for i := 0; i < 30; i++ {
			if rng.Intn(2) == 0 {
				op := Op{Kind: OpAssign, T: randTerm(), C: string(rune('0' + rng.Intn(3)))}
				ops = append(ops, op)
			} else {
				ops = append(ops, Op{Kind: OpMerge, T: randTerm(), U: randTerm()})
			}
		}
		// Replica A applies ops in order; replica B applies a shuffled copy.
		a, b := New(), New()
		a.Apply(ops)
		shuffled := append([]Op{}, ops...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b.Apply(shuffled)
		_ = full
		// Conflict status is order-independent (the final partition and the
		// constant sets per class are), so it must agree.
		if (a.Conflicted() == nil) != (b.Conflicted() == nil) {
			return false
		}
		if a.Conflicted() != nil {
			// Which constant a conflicted class retains is first-writer-wins
			// and hence order-dependent; the run terminates there anyway.
			return true
		}
		return a.Classes() == b.Classes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
