// Command gfdlint is the project's static-analysis gate: a multichecker of
// project-specific analyzers that mechanically enforce the Reader/Mutator/
// Overlay contracts DESIGN.md states in prose, plus bundled general-purpose
// passes (copylock-beyond-vet, shadow, nilness subsets). Stdlib-only by
// design — see go.mod — so it runs in hermetic environments:
//
//	go run ./tools/gfdlint ./...                    # lint the root module
//	go run ./tools/gfdlint repro/tools/gfdlint/...  # lint the linter
//	go run ./tools/gfdlint -fix ./...               # apply mechanical fixes
//
// Suppress a finding with a trailing or preceding comment:
//
//	//gfdlint:allow hotalloc -- each part is retained, the copy is the point
//
// Exit status: 0 clean, 1 findings remain, 2 usage/load failure.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/tools/gfdlint/internal/analyzers"
	"repro/tools/gfdlint/internal/lint"
	"repro/tools/gfdlint/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fix     = flag.Bool("fix", false, "apply mechanical suggested fixes to the source files")
		tests   = flag.Bool("tests", true, "also analyze _test.go files")
		disable = flag.String("disable", "", "comma-separated analyzer names to skip")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.StringVar(&analyzers.HotPkgs, "hotalloc.pkgs", analyzers.HotPkgs,
		"package path suffixes hotalloc applies to (\"*\" = all)")
	flag.Parse()

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	skip := map[string]bool{}
	for _, n := range strings.Split(*disable, ",") {
		if n = strings.TrimSpace(n); n != "" {
			skip[n] = true
		}
	}
	var enabled []*lint.Analyzer
	for _, a := range all {
		if !skip[a.Name] {
			enabled = append(enabled, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Config{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gfdlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "gfdlint: no packages matched")
		return 2
	}

	fset := pkgs[0].Fset
	var findings []lint.Finding
	for _, p := range pkgs {
		findings = append(findings, lint.RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, enabled)...)
	}
	if len(findings) == 0 {
		return 0
	}

	if *fix {
		var fixable, rest []lint.Finding
		for _, f := range findings {
			if len(f.Diag.SuggestedFixes) > 0 {
				fixable = append(fixable, f)
			} else {
				rest = append(rest, f)
			}
		}
		files, err := lint.ApplyFixes(fset, fixable, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gfdlint: -fix:", err)
			return 2
		}
		for name, content := range files {
			if err := os.WriteFile(name, content, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "gfdlint: -fix:", err)
				return 2
			}
			fmt.Printf("fixed: %s\n", name)
		}
		findings = rest
		if len(findings) == 0 {
			return 0
		}
	}

	printFindings(fset, findings)
	fmt.Fprintf(os.Stderr, "gfdlint: %d finding(s)\n", len(findings))
	return 1
}

func printFindings(fset *token.FileSet, findings []lint.Finding) {
	for _, f := range findings {
		fmt.Printf("%s: %s [%s]\n", f.Position(fset), f.Diag.Message, f.Analyzer.Name)
		for _, sf := range f.Diag.SuggestedFixes {
			fmt.Printf("\tsuggested fix (-fix applies it): %s", sf.Message)
			for _, e := range sf.Edits {
				fmt.Printf(" → %s", e.NewText)
			}
			fmt.Println()
		}
	}
}
