// Command gfdlint is the project's static-analysis gate: a multichecker of
// project-specific analyzers that mechanically enforce the Reader/Mutator/
// Overlay contracts DESIGN.md states in prose, plus bundled general-purpose
// passes (copylock-beyond-vet, shadow, nilness subsets). Stdlib-only by
// design — see go.mod — so it runs in hermetic environments:
//
//	go run ./tools/gfdlint ./...                    # lint the root module
//	go run ./tools/gfdlint repro/tools/gfdlint/...  # lint the linter
//	go run ./tools/gfdlint -fix ./...               # apply mechanical fixes
//
// Suppress a finding with a trailing or preceding comment:
//
//	//gfdlint:allow hotalloc -- each part is retained, the copy is the point
//
// Exit status: 0 clean, 1 findings remain, 2 usage/load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/tools/gfdlint/internal/analyzers"
	"repro/tools/gfdlint/internal/lint"
	"repro/tools/gfdlint/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fix     = flag.Bool("fix", false, "apply mechanical suggested fixes to the source files")
		tests   = flag.Bool("tests", true, "also analyze _test.go files")
		only    = flag.String("only", "", "comma-separated analyzer names to run exclusively")
		disable = flag.String("disable", "", "comma-separated analyzer names to skip")
		list    = flag.Bool("list", false, "list analyzers and exit")
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array on stdout")
	)
	flag.StringVar(&analyzers.HotPkgs, "hotalloc.pkgs", analyzers.HotPkgs,
		"package path suffixes hotalloc applies to (\"*\" = all)")
	flag.Parse()

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	enabled, err := selectAnalyzers(all, *only, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gfdlint:", err)
		return 2
	}
	if *only == "" && *disable == "" {
		// The unused-suppression audit only makes sense against the full
		// suite: a directive for a filtered-out analyzer would look dead.
		enabled = append(enabled, lint.AllowAudit)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Config{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gfdlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "gfdlint: no packages matched")
		return 2
	}

	fset := pkgs[0].Fset
	var findings []lint.Finding
	for _, p := range pkgs {
		findings = append(findings, lint.RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, enabled)...)
	}
	if len(findings) == 0 {
		return 0
	}

	if *fix {
		var fixable, rest []lint.Finding
		for _, f := range findings {
			if len(f.Diag.SuggestedFixes) > 0 {
				fixable = append(fixable, f)
			} else {
				rest = append(rest, f)
			}
		}
		files, err := lint.ApplyFixes(fset, fixable, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gfdlint: -fix:", err)
			return 2
		}
		for name, content := range files {
			if err := os.WriteFile(name, content, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "gfdlint: -fix:", err)
				return 2
			}
			fmt.Printf("fixed: %s\n", name)
		}
		findings = rest
		if len(findings) == 0 {
			return 0
		}
	}

	if *jsonOut {
		out, err := jsonFindings(fset, findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gfdlint: -json:", err)
			return 2
		}
		os.Stdout.Write(out)
	} else {
		printFindings(fset, findings)
	}
	fmt.Fprintf(os.Stderr, "gfdlint: %d finding(s)\n", len(findings))
	return 1
}

// selectAnalyzers applies the -only and -disable name lists to the full
// analyzer set, rejecting unknown names (a typo must not silently run — or
// silently skip — the wrong checks) and empty selections.
func selectAnalyzers(all []*lint.Analyzer, only, disable string) ([]*lint.Analyzer, error) {
	parse := func(flagName, csv string) (map[string]bool, error) {
		set := map[string]bool{}
		for _, n := range strings.Split(csv, ",") {
			if n = strings.TrimSpace(n); n != "" {
				set[n] = true
			}
		}
		for n := range set {
			known := false
			for _, a := range all {
				if a.Name == n {
					known = true
					break
				}
			}
			if !known {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (see -list)", flagName, n)
			}
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	disableSet, err := parse("disable", disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if disableSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selection leaves no analyzers enabled")
	}
	return out, nil
}

// jsonFinding is the machine-readable shape of one finding; the field names
// are stable output surface.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func jsonFindings(fset *token.FileSet, findings []lint.Finding) ([]byte, error) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		pos := f.Position(fset)
		out = append(out, jsonFinding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  f.Diag.Message,
			Analyzer: f.Analyzer.Name,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func printFindings(fset *token.FileSet, findings []lint.Finding) {
	for _, f := range findings {
		fmt.Printf("%s: %s [%s]\n", f.Position(fset), f.Diag.Message, f.Analyzer.Name)
		for _, sf := range f.Diag.SuggestedFixes {
			fmt.Printf("\tsuggested fix (-fix applies it): %s", sf.Message)
			for _, e := range sf.Edits {
				fmt.Printf(" → %s", e.NewText)
			}
			fmt.Println()
		}
	}
}
