package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"repro/tools/gfdlint/internal/analyzers"
	"repro/tools/gfdlint/internal/lint"
)

func names(as []*lint.Analyzer) string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return strings.Join(out, ",")
}

func TestSelectAnalyzers(t *testing.T) {
	all := analyzers.All()

	got, err := selectAnalyzers(all, "", "")
	if err != nil || len(got) != len(all) {
		t.Fatalf("empty selection = %d analyzers, %v; want all %d", len(got), err, len(all))
	}

	got, err = selectAnalyzers(all, "ctxpoll,epochflow", "")
	if err != nil || names(got) != "epochflow,ctxpoll" {
		t.Fatalf("-only = %q, %v; want epochflow,ctxpoll in suite order", names(got), err)
	}

	got, err = selectAnalyzers(all, "", "shadow")
	if err != nil || strings.Contains(names(got), "shadow") || len(got) != len(all)-1 {
		t.Fatalf("-disable shadow = %q, %v", names(got), err)
	}

	// -only and -disable compose: disable wins on the intersection.
	got, err = selectAnalyzers(all, "shadow,nilness", "shadow")
	if err != nil || names(got) != "nilness" {
		t.Fatalf("composed selection = %q, %v; want nilness", names(got), err)
	}

	if _, err := selectAnalyzers(all, "nosuch", ""); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("-only with a typo must error, got %v", err)
	}
	if _, err := selectAnalyzers(all, "", "nosuch"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("-disable with a typo must error, got %v", err)
	}
	if _, err := selectAnalyzers(all, "shadow", "shadow"); err == nil || !strings.Contains(err.Error(), "no analyzers") {
		t.Fatalf("an empty selection must error, got %v", err)
	}
}

func TestJSONFindings(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("a/b.go", -1, 100)
	f.AddLine(10)
	pos := f.Pos(15)
	findings := []lint.Finding{{
		Analyzer: analyzers.OverlayStale,
		Diag:     lint.Diagnostic{Pos: pos, Message: `stale "overlay"`},
	}}
	out, err := jsonFindings(fset, findings)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d findings, want 1", len(decoded))
	}
	d := decoded[0]
	if d["file"] != "a/b.go" || d["line"] != float64(2) || d["analyzer"] != "overlaystale" {
		t.Fatalf("unexpected JSON fields: %v", d)
	}
	if d["message"] != `stale "overlay"` {
		t.Fatalf("message not round-tripped: %q", d["message"])
	}

	// No findings still yields a valid (empty) array, not null.
	out, err = jsonFindings(fset, nil)
	if err != nil || strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("empty findings = %q, %v; want []", out, err)
	}
}
