// gfdlint is a nested module so its tooling dependencies never leak into
// the root module's go.mod: the library stays importable with zero deps.
//
// The suite is deliberately stdlib-only: the driver, loader and analyzers
// are built on go/ast + go/types + `go list -export` instead of
// golang.org/x/tools, so the linter builds and runs in hermetic
// (network-free) environments. If x/tools is ever vendored, each analyzer
// maps 1:1 onto a golang.org/x/tools/go/analysis.Analyzer — the Pass API
// in internal/lint mirrors it — and this go.mod is where the version gets
// pinned.
module repro/tools/gfdlint

go 1.22
