package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix in findings to the file contents
// they touch and returns the rewritten files keyed by filename. Sources are
// read through readFile (os.ReadFile when nil, overridable for tests).
// Overlapping edits are an error: mechanical fixes must not race each other.
func ApplyFixes(fset *token.FileSet, findings []Finding, readFile func(string) ([]byte, error)) (map[string][]byte, error) {
	if readFile == nil {
		readFile = os.ReadFile
	}
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, f := range findings {
		for _, fix := range f.Diag.SuggestedFixes {
			for _, e := range fix.Edits {
				start := fset.Position(e.Pos)
				end := fset.Position(e.End)
				if start.Filename != end.Filename {
					return nil, fmt.Errorf("%s: fix for %s spans files", start.Filename, f.Analyzer.Name)
				}
				perFile[start.Filename] = append(perFile[start.Filename], edit{start.Offset, end.Offset, e.NewText})
			}
		}
	}
	out := map[string][]byte{}
	for name, edits := range perFile {
		src, err := readFile(name)
		if err != nil {
			return nil, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		var buf []byte
		prev := 0
		for _, e := range edits {
			if e.start < prev {
				return nil, fmt.Errorf("%s: overlapping suggested fixes", name)
			}
			buf = append(buf, src[prev:e.start]...)
			buf = append(buf, e.text...)
			prev = e.end
		}
		buf = append(buf, src[prev:]...)
		out[name] = buf
	}
	return out, nil
}
