// Package lint is a minimal, dependency-free go/analysis look-alike: an
// Analyzer runs over one typechecked package (a Pass) and reports
// position-anchored Diagnostics, optionally carrying mechanical
// SuggestedFixes. The shapes mirror golang.org/x/tools/go/analysis on
// purpose — if that module is ever vendored, each Analyzer ports by
// renaming imports — but the implementation is stdlib-only so gfdlint
// builds in hermetic environments.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run is invoked once per analyzed package.
type Analyzer struct {
	Name string
	Doc  string

	// SkipTestFiles drops diagnostics whose position falls in a _test.go
	// file. Checks that guard performance contracts (hot-path allocation)
	// skip tests; checks that guard correctness contracts (dropped
	// durability errors, stale overlays, lock discipline) do not.
	SkipTestFiles bool

	Run func(*Pass)
}

// Pass carries one typechecked package through an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report reports a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos // optional
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is a mechanical rewrite the driver can apply under -fix.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Finding is a Diagnostic tagged with the Analyzer that produced it.
type Finding struct {
	Analyzer *Analyzer
	Diag     Diagnostic
}

// Position resolves the finding's primary position.
func (f Finding) Position(fset *token.FileSet) token.Position {
	return fset.Position(f.Diag.Pos)
}

// AllowAudit is a pseudo-analyzer: when included in a RunAnalyzers suite it
// reports //gfdlint:allow directives that suppressed no diagnostic of the
// same run (nolintlint-style: a dead suppression hides nothing and rots).
// It only makes sense alongside the full suite — a directive for an
// analyzer that did not run would look unused — so the CLI includes it on
// unfiltered runs only.
var AllowAudit = &Analyzer{
	Name: "allowaudit",
	Doc:  "reports //gfdlint:allow directives that no longer suppress any diagnostic",
	Run:  func(*Pass) {}, // handled by RunAnalyzers after the real analyzers
}

// RunAnalyzers runs every analyzer over the pass's package and returns the
// surviving findings: suppressed ones (see ParseAllowDirectives) and — for
// analyzers with SkipTestFiles — ones landing in _test.go files are
// filtered here so every driver (CLI, fixture tests) sees the same set.
// If the suite includes AllowAudit, a finding is added for every allow
// directive that suppressed nothing.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Finding {
	allow := ParseAllowDirectives(fset, files)
	var out []Finding
	audit := false
	for _, a := range analyzers {
		if a == AllowAudit {
			audit = true
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		pass.report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if a.SkipTestFiles && strings.HasSuffix(pos.Filename, "_test.go") {
				return
			}
			if allow.Allows(a.Name, pos) {
				return
			}
			out = append(out, Finding{Analyzer: a, Diag: d})
		}
		a.Run(pass)
	}
	if audit {
		for _, d := range allow.Unused() {
			names := strings.Join(d.Names, ", ")
			if names == "*" {
				names = "any"
			}
			out = append(out, Finding{Analyzer: AllowAudit, Diag: Diagnostic{
				Pos:     d.pos,
				Message: fmt.Sprintf("unused //gfdlint:allow directive: it suppresses no %s diagnostic in this run; remove it", names),
			}})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := out[i].Diag.Pos, out[j].Diag.Pos
		if pi != pj {
			return pi < pj
		}
		return out[i].Analyzer.Name < out[j].Analyzer.Name
	})
	return out
}

// AllowDirective is one parsed //gfdlint:allow comment.
type AllowDirective struct {
	Names []string // analyzer names it suppresses ("*" = all)
	pos   token.Pos
	used  bool
}

// AllowSet records //gfdlint:allow suppressions per file line, and tracks
// which directives actually suppressed something (for the unused audit).
type AllowSet struct {
	directives []*AllowDirective
	byLine     map[string]map[int][]*AllowDirective // filename -> line -> directives
}

// ParseAllowDirectives scans file comments for suppression directives of
// the form
//
//	//gfdlint:allow name1,name2 -- reason
//
// A directive suppresses matching diagnostics reported on its own line
// (trailing comment) or on the line directly below (standalone comment).
func ParseAllowDirectives(fset *token.FileSet, files []*ast.File) *AllowSet {
	set := &AllowSet{byLine: map[string]map[int][]*AllowDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//gfdlint:allow")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				if i := strings.Index(text, "--"); i >= 0 {
					text = strings.TrimSpace(text[:i])
				}
				names := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' })
				if len(names) == 0 {
					names = []string{"*"}
				}
				d := &AllowDirective{Names: names, pos: c.Pos()}
				set.directives = append(set.directives, d)
				pos := fset.Position(c.Pos())
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*AllowDirective{}
					set.byLine[pos.Filename] = lines
				}
				// Trailing directives cover their own line; standalone
				// directives cover the next line. Covering both is
				// harmless and keeps the parser position-free.
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return set
}

// Allows reports whether a diagnostic from the named analyzer at pos is
// suppressed, marking every directive that matched as used.
func (s *AllowSet) Allows(name string, pos token.Position) bool {
	hit := false
	for _, d := range s.byLine[pos.Filename][pos.Line] {
		for _, n := range d.Names {
			if n == "*" || n == name {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// Unused returns the directives that suppressed nothing, in source order.
func (s *AllowSet) Unused() []*AllowDirective {
	var out []*AllowDirective
	for _, d := range s.directives {
		if !d.used {
			out = append(out, d)
		}
	}
	return out
}

// WalkStack walks the AST rooted at n, invoking fn with each node and the
// stack of its ancestors (outermost first, not including the node itself).
// If fn returns false the node's children are skipped.
func WalkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		stack = append(stack, n)
		if !ok {
			// Children are skipped, so Inspect will not deliver the nil
			// pop for this node; pop it now.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}
