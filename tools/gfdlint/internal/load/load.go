// Package load typechecks Go packages without golang.org/x/tools: it shells
// out to `go list -deps -export -json` for the build graph, imports
// dependencies from their compiler export data (via go/importer's gc
// support, which understands build-cache export files), and typechecks only
// the target packages from source. With Tests set, `go list -test` variants
// are loaded so _test.go files are analyzed too: the in-package test
// variant replaces the plain package (its file set is a superset) and
// external _test packages are typechecked against the source-checked
// variant, so export_test.go helpers resolve.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one typechecked target package.
type Package struct {
	PkgPath string // clean import path (test variants report the plain path)
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	IsTest  bool // in-package test variant or external _test package
}

// Config controls a Load.
type Config struct {
	Dir   string   // directory to run `go list` in ("" = cwd)
	Env   []string // extra environment entries, e.g. "GOWORK=off"
	Tests bool     // load -test variants and analyze _test.go files
}

type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	ForTest      string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	ImportMap    map[string]string
	Error        *struct{ Err string }
}

type loader struct {
	cfg   Config
	fset  *token.FileSet
	index map[string]*listPkg
	gcImp types.ImporterFrom
	src   map[string]*types.Package // source-typechecked, by raw ImportPath
	memo  map[string]*Package
}

// Load lists patterns and returns the typechecked target packages.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-deps", "-export", "-json"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), cfg.Env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	ld := &loader{
		cfg:   cfg,
		fset:  token.NewFileSet(),
		index: map[string]*listPkg{},
		src:   map[string]*types.Package{},
		memo:  map[string]*Package{},
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var order []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		ld.index[lp.ImportPath] = lp
		order = append(order, lp)
	}
	ld.gcImp = importer.ForCompiler(ld.fset, "gc", ld.lookupExport).(types.ImporterFrom)

	// The in-package test variant "p [p.test]" subsumes the plain p; when
	// both are targets, analyze only the variant.
	covered := map[string]bool{}
	for _, lp := range order {
		if lp.ForTest != "" && !lp.DepOnly && lp.ImportPath == lp.ForTest+" ["+lp.ForTest+".test]" {
			covered[lp.ForTest] = true
		}
	}

	var pkgs []*Package
	for _, lp := range order {
		if lp.DepOnly || lp.Standard || strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if lp.ForTest == "" && covered[lp.ImportPath] {
			continue
		}
		p, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookupExport feeds the gc importer the export-data file `go list -export`
// recorded for the path.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	lp := ld.index[path]
	if lp == nil || lp.Export == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(lp.Export)
}

// check typechecks lp from source (memoized).
func (ld *loader) check(lp *listPkg) (*Package, error) {
	if p, ok := ld.memo[lp.ImportPath]; ok {
		return p, nil
	}
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkgPath := lp.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var softErrs []error
	conf := types.Config{
		Importer: &pkgImporter{ld: ld, lp: lp},
		Error:    func(err error) { softErrs = append(softErrs, err) },
	}
	tpkg, err := conf.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, joinErrs(softErrs, err))
	}
	ld.src[lp.ImportPath] = tpkg
	p := &Package{
		PkgPath: pkgPath,
		Fset:    ld.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		IsTest:  lp.ForTest != "",
	}
	ld.memo[lp.ImportPath] = p
	return p, nil
}

func joinErrs(soft []error, first error) error {
	if len(soft) <= 1 {
		return first
	}
	msgs := make([]string, len(soft))
	for i, e := range soft {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n\t"))
}

// pkgImporter resolves one package's imports: through its ImportMap (which
// remaps test-variant imports), then from already source-checked packages,
// then source-checking export-less variants, and finally from gc export
// data.
type pkgImporter struct {
	ld *loader
	lp *listPkg
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	actual := path
	if m, ok := pi.lp.ImportMap[path]; ok {
		actual = m
	}
	if p, ok := pi.ld.src[actual]; ok {
		return p, nil
	}
	// Test variants ("p [q.test]") must be typechecked from source even when
	// the build cache holds export data for them: their imports resolve
	// through their own ImportMap to the source-checked package-under-test
	// variant, while gc export data would rebind those imports to the plain
	// gc-imported package — a distinct types.Package, so every type that
	// flows through the variant (e.g. a generator returning *pattern.Pattern
	// inside pattern's external test) would fail identity checks.
	if lp := pi.ld.index[actual]; lp != nil && (lp.Export == "" || lp.ForTest != "") {
		p, err := pi.ld.check(lp)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return pi.ld.gcImp.Import(actual)
}
