package dataflow

import (
	"sort"
	"strings"
	"testing"

	"repro/tools/gfdlint/internal/cfg"
)

// handGraph builds a CFG by hand: n blocks (0 = entry, n-1 = exit) plus the
// given edges.
func handGraph(n int, edges [][2]int) *cfg.Graph {
	g := &cfg.Graph{}
	for i := 0; i < n; i++ {
		g.Blocks = append(g.Blocks, &cfg.Block{Index: i, Kind: "b"})
	}
	g.Entry, g.Exit = g.Blocks[0], g.Blocks[n-1]
	g.Entry.Kind, g.Exit.Kind = "entry", "exit"
	for _, e := range edges {
		from, to := g.Blocks[e[0]], g.Blocks[e[1]]
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
	}
	return g
}

// set facts: a sorted union lattice over strings.
type set map[string]bool

func (s set) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func union(a, b set) set {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(set, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func setEqual(a, b set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// genSpec is a reaching-definitions style problem: each block in gen adds
// its own token to the fact flowing through it.
func genSpec(gen map[int]string) Spec[set] {
	return Spec[set]{
		Dir:      Forward,
		Boundary: set{},
		Init:     set{},
		Join:     union,
		Transfer: func(b *cfg.Block, in set) set {
			tok, ok := gen[b.Index]
			if !ok {
				return in
			}
			out := union(in, set{tok: true})
			return out
		},
		Equal: setEqual,
	}
}

// TestSolveDiamondJoin: a fact generated in one arm of a diamond reaches
// the join and the exit, but not the other arm.
func TestSolveDiamondJoin(t *testing.T) {
	//      0
	//    /   \
	//   1     2
	//    \   /
	//      3 -> 4(exit)
	g := handGraph(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	res := Solve(g, genSpec(map[int]string{1: "a", 2: "b"}))
	if got := res.In[g.Blocks[3]].String(); got != "a,b" {
		t.Fatalf("join In = %q, want the union a,b", got)
	}
	if got := res.In[g.Blocks[2]].String(); got != "" {
		t.Fatalf("arm 2 In = %q, want empty (no cross-arm leakage)", got)
	}
	if got := res.In[g.Exit].String(); got != "a,b" {
		t.Fatalf("exit In = %q, want a,b", got)
	}
}

// TestSolveLoopFixpoint: a fact generated inside a loop body flows around
// the back edge and appears at the loop head's entry.
func TestSolveLoopFixpoint(t *testing.T) {
	// 0 -> 1(head) -> 2(body, gen x) -> 1; 1 -> 3(exit)
	g := handGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {1, 3}})
	res := Solve(g, genSpec(map[int]string{2: "x"}))
	if got := res.In[g.Blocks[1]].String(); got != "x" {
		t.Fatalf("loop head In = %q, want x via the back edge", got)
	}
	if got := res.In[g.Exit].String(); got != "x" {
		t.Fatalf("exit In = %q, want x", got)
	}
}

// TestSolveBoundaryFact: the boundary fact enters at the entry block and is
// re-joined on every visit (not lost when the entry is revisited).
func TestSolveBoundaryFact(t *testing.T) {
	// 0 -> 1 -> 0 (a pathological self-loop through the entry) ; 1 -> 2
	g := handGraph(3, [][2]int{{0, 1}, {1, 0}, {1, 2}})
	spec := genSpec(map[int]string{1: "g"})
	spec.Boundary = set{"param": true}
	res := Solve(g, spec)
	if got := res.In[g.Exit].String(); got != "g,param" {
		t.Fatalf("exit In = %q, want g,param (boundary fact survived revisits)", got)
	}
}

// TestSolveBackward: with Dir=Backward the same spec propagates from the
// exit toward the entry along Preds.
func TestSolveBackward(t *testing.T) {
	// 0 -> 1 -> 2(exit); a "use" generated at the exit must reach block 0's
	// In under the backward direction.
	g := handGraph(3, [][2]int{{0, 1}, {1, 2}})
	spec := genSpec(map[int]string{2: "use"})
	spec.Dir = Backward
	res := Solve(g, spec)
	if got := res.In[g.Blocks[0]].String(); got != "use" {
		t.Fatalf("entry In = %q, want use flowing backward", got)
	}
}

func TestReachesWithout(t *testing.T) {
	//      0
	//    /   \
	//   1     2
	//    \   /
	//      3 -> 4
	g := handGraph(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	b := g.Blocks
	to := map[*cfg.Block]bool{b[3]: true}
	blockedAt := func(idx ...int) func(*cfg.Block) bool {
		bad := map[int]bool{}
		for _, i := range idx {
			bad[i] = true
		}
		return func(blk *cfg.Block) bool { return bad[blk.Index] }
	}

	if !ReachesWithout(b[0], to, nil, blockedAt(1)) {
		t.Fatal("blocking one arm must leave the other open")
	}
	if ReachesWithout(b[0], to, nil, blockedAt(1, 2)) {
		t.Fatal("blocking both arms must cut every path")
	}
	if ReachesWithout(b[0], to, nil, blockedAt(0)) {
		t.Fatal("a blocked source reaches nothing")
	}
	if !ReachesWithout(b[3], to, nil, blockedAt(1, 2)) {
		t.Fatal("the empty path (from ∈ to) must count when from is unblocked")
	}
	// Region restriction: with block 2 outside the region and 1 blocked,
	// no path remains even though the full graph has one.
	within := map[*cfg.Block]bool{b[0]: true, b[1]: true, b[3]: true}
	if ReachesWithout(b[0], to, within, blockedAt(1)) {
		t.Fatal("paths must stay inside the region")
	}
}
