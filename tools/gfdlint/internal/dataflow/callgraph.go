package dataflow

import (
	"go/ast"
	"go/types"
)

// FuncNode is one function, method, or function literal declared in the
// analyzed package whose body is available from source.
type FuncNode struct {
	Obj  types.Object  // the *types.Func, nil for literals
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt
	Name string // display name ("funcName", "T.method", "func literal")
}

// CallGraph approximates the intra-package call structure of one
// typechecked package: every declared function plus every function literal,
// with call edges resolvable through types.Info. Calls whose callee cannot
// be resolved to an in-package body (cross-package functions, calls through
// function values, interface methods) are the analyzers' responsibility:
// each summary chooses a conservative default for them.
type CallGraph struct {
	Info  *types.Info
	nodes []*FuncNode
	byObj map[types.Object]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
}

// BuildCallGraph indexes every function declaration and literal in files.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	cg := &CallGraph{
		Info:  info,
		byObj: map[types.Object]*FuncNode{},
		byLit: map[*ast.FuncLit]*FuncNode{},
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				node := &FuncNode{Obj: info.Defs[n.Name], Decl: n, Body: n.Body, Name: n.Name.Name}
				if n.Recv != nil && len(n.Recv.List) == 1 {
					node.Name = recvTypeName(n.Recv.List[0].Type) + "." + n.Name.Name
				}
				cg.nodes = append(cg.nodes, node)
				if node.Obj != nil {
					cg.byObj[node.Obj] = node
				}
			case *ast.FuncLit:
				node := &FuncNode{Lit: n, Body: n.Body, Name: "func literal"}
				cg.nodes = append(cg.nodes, node)
				cg.byLit[n] = node
			}
			return true
		})
	}
	return cg
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

// Funcs returns every node (declarations and literals).
func (cg *CallGraph) Funcs() []*FuncNode { return cg.nodes }

// NodeForObj returns the in-package node declaring obj, nil for
// cross-package or unresolved callees.
func (cg *CallGraph) NodeForObj(obj types.Object) *FuncNode { return cg.byObj[obj] }

// NodeForLit returns the node of a function literal.
func (cg *CallGraph) NodeForLit(lit *ast.FuncLit) *FuncNode { return cg.byLit[lit] }

// ResolveCall resolves a call expression to the in-package FuncNode it
// invokes: a plain function or method call through its *types.Func, or a
// directly invoked function literal `func(){...}()`. Nil when the callee is
// cross-package, dynamic, or a conversion.
func (cg *CallGraph) ResolveCall(call *ast.CallExpr) *FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return cg.byLit[fun]
	case *ast.Ident:
		if fn, ok := cg.Info.Uses[fun].(*types.Func); ok {
			return cg.byObj[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := cg.Info.Uses[fun.Sel].(*types.Func); ok {
			return cg.byObj[fn]
		}
	}
	return nil
}

// BodyNodes walks the nodes of fn's body that execute as part of fn itself,
// skipping nested function literals (their effects belong to their own
// node and only transfer to fn where the literal is actually called).
func (fn *FuncNode) BodyNodes(visit func(n ast.Node) bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fn.Lit {
			return false
		}
		if n == nil {
			return true
		}
		return visit(n)
	})
}

// Mark computes the least fixpoint of a boolean per-function summary: a
// function is marked when seed reports true for any node executing in its
// own body, or when its body calls a marked in-package function or
// directly invoked literal. This is how "polls cancellation" and "can
// panic" summaries propagate one (or more) calls deep while staying inside
// the package whose source the loader has.
func (cg *CallGraph) Mark(seed func(fn *FuncNode, n ast.Node) bool) map[*FuncNode]bool {
	marked := map[*FuncNode]bool{}
	for _, fn := range cg.nodes {
		fn := fn
		fn.BodyNodes(func(n ast.Node) bool {
			if marked[fn] {
				return false
			}
			if seed(fn, n) {
				marked[fn] = true
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.nodes {
			if marked[fn] {
				continue
			}
			fn := fn
			fn.BodyNodes(func(n ast.Node) bool {
				if marked[fn] {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := cg.ResolveCall(call); callee != nil && marked[callee] {
						marked[fn] = true
						changed = true
						return false
					}
				}
				return true
			})
		}
	}
	return marked
}

// MutatedParams computes, per in-package function, the set of parameter
// indices through which the function (transitively, within the package)
// applies a mutation: seedMutation classifies a call as directly mutating
// one of its operand identifiers (e.g. a graph.Mutator method call on a
// receiver, or Refreeze taking the delta as an argument), and the fixpoint
// adds parameters that are passed onward into a mutated parameter of
// another in-package function. The receiver of a method counts as
// parameter -1.
func (cg *CallGraph) MutatedParams(seedMutation func(call *ast.CallExpr) []*ast.Ident) map[*FuncNode]map[int]bool {
	mut := map[*FuncNode]map[int]bool{}
	paramIndex := func(fn *FuncNode, obj types.Object) (int, bool) {
		if obj == nil || fn.Decl == nil {
			return 0, false
		}
		if fn.Decl.Recv != nil && len(fn.Decl.Recv.List) == 1 {
			for _, name := range fn.Decl.Recv.List[0].Names {
				if cg.Info.Defs[name] == obj {
					return -1, true
				}
			}
		}
		i := 0
		for _, field := range fn.Decl.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if cg.Info.Defs[name] == obj {
					return i, true
				}
				i++
			}
		}
		return 0, false
	}
	note := func(fn *FuncNode, idx int) bool {
		m := mut[fn]
		if m == nil {
			m = map[int]bool{}
			mut[fn] = m
		}
		if m[idx] {
			return false
		}
		m[idx] = true
		return true
	}
	identObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o := cg.Info.Uses[id]; o != nil {
			return o
		}
		return cg.Info.Defs[id]
	}

	for changed := true; changed; {
		changed = false
		for _, fn := range cg.nodes {
			if fn.Decl == nil {
				continue // literals: summaries attach to declared functions only
			}
			fn := fn
			fn.BodyNodes(func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, id := range seedMutation(call) {
					if idx, ok := paramIndex(fn, identObj(id)); ok {
						if note(fn, idx) {
							changed = true
						}
					}
				}
				// Propagate through in-package callees: an argument (or
				// receiver) forwarded into a mutated parameter.
				callee := cg.ResolveCall(call)
				if callee == nil || mut[callee] == nil {
					return true
				}
				for idx := range mut[callee] {
					var arg ast.Expr
					if idx == -1 {
						if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
							arg = sel.X
						}
					} else if idx < len(call.Args) {
						arg = call.Args[idx]
					}
					if arg == nil {
						continue
					}
					if pidx, ok := paramIndex(fn, identObj(arg)); ok {
						if note(fn, pidx) {
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	return mut
}
