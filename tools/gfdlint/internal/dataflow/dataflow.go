// Package dataflow provides the small analysis substrate gfdlint's
// flow-aware analyzers share: a generic forward/backward worklist solver
// over lattice facts attached to internal/cfg blocks, and a call-graph
// approximation over one typechecked package (callgraph.go) from which
// analyzers derive one-level interprocedural summaries — "this callee
// polls cancellation", "this callee can panic", "this callee mutates its
// i-th parameter" — so a contract violation cannot hide one call deep.
package dataflow

import (
	"repro/tools/gfdlint/internal/cfg"
)

// Direction selects forward (facts flow entry→exit along Succs) or
// backward (exit→entry along Preds) propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Spec describes one dataflow problem over fact type F. Transfer must be
// monotone and Join associative/commutative/idempotent, or the worklist
// iteration will not terminate.
type Spec[F any] struct {
	Dir      Direction
	Boundary F                          // fact entering the boundary block (Entry forward, Exit backward)
	Init     F                          // initial fact for every other block (the lattice bottom)
	Join     func(a, b F) F             // least upper bound of two facts
	Transfer func(b *cfg.Block, in F) F // fact leaving a block given the fact entering it
	Equal    func(a, b F) bool          // fixpoint test
}

// Result carries the solved facts: In[b] is the fact at b's entry, Out[b]
// at its exit (swapped roles under Backward: In is the fact flowing out of
// the block toward its predecessors).
type Result[F any] struct {
	In  map[*cfg.Block]F
	Out map[*cfg.Block]F
}

// Solve runs the worklist iteration to a fixpoint and returns the per-block
// facts.
func Solve[F any](g *cfg.Graph, s Spec[F]) *Result[F] {
	in := make(map[*cfg.Block]F, len(g.Blocks))
	out := make(map[*cfg.Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = s.Init
		out[b] = s.Transfer(b, s.Init)
	}
	boundary := g.Entry
	if s.Dir == Backward {
		boundary = g.Exit
	}
	in[boundary] = s.Boundary
	out[boundary] = s.Transfer(boundary, s.Boundary)

	// Deduplicating FIFO worklist seeded with every block (facts like
	// "gen at creation sites" can originate anywhere, not just at the
	// boundary).
	queue := make([]*cfg.Block, len(g.Blocks))
	copy(queue, g.Blocks)
	queued := make(map[*cfg.Block]bool, len(g.Blocks))
	for _, b := range queue {
		queued[b] = true
	}
	pop := func() *cfg.Block {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		return b
	}
	push := func(b *cfg.Block) {
		if !queued[b] {
			queued[b] = true
			queue = append(queue, b)
		}
	}
	preds := func(b *cfg.Block) []*cfg.Block { return b.Preds }
	succs := func(b *cfg.Block) []*cfg.Block { return b.Succs }
	if s.Dir == Backward {
		preds, succs = succs, preds
	}

	for len(queue) > 0 {
		b := pop()
		f := s.Init
		if b == boundary {
			f = s.Join(f, s.Boundary)
		}
		for _, p := range preds(b) {
			f = s.Join(f, out[p])
		}
		nf := s.Transfer(b, f)
		in[b] = f
		if !s.Equal(nf, out[b]) {
			out[b] = nf
			for _, n := range succs(b) {
				push(n)
			}
		}
	}
	return &Result[F]{In: in, Out: out}
}

// ReachesWithout reports whether any path from `from` to a block in `to`
// exists inside the `within` region (nil = whole graph) that never enters a
// block for which blocked returns true. The path may be empty (from ∈ to
// and from unblocked). Analyzers use it for "can a loop iteration complete
// without passing a cancellation poll" style queries.
func ReachesWithout(from *cfg.Block, to map[*cfg.Block]bool, within map[*cfg.Block]bool, blocked func(*cfg.Block) bool) bool {
	if blocked(from) {
		return false
	}
	seen := map[*cfg.Block]bool{from: true}
	stack := []*cfg.Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if to[b] {
			return true
		}
		for _, s := range b.Succs {
			if seen[s] || (within != nil && !within[s]) || blocked(s) {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return false
}
