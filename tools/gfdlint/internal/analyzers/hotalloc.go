package analyzers

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"

	"repro/tools/gfdlint/internal/lint"
)

// HotPkgs is the comma-separated list of package-path suffixes HotAlloc
// applies to ("*" = every package). The default covers the matching and
// reasoning hot paths named by the Reader contract; generators and tools
// may trade the allocation for clarity.
var HotPkgs = "internal/match,internal/core"

// HotAlloc enforces the hot-path half of the graph.Reader copy contract
// (reader.go): NodesByLabel and CandidateNodes return a fresh caller-owned
// copy per call, so calling them inside a loop body allocates once per
// iteration. Loops must hoist a buffer and use AppendCandidates(buf[:0],
// label) instead. Per-iteration copies that are retained (e.g. collected
// into a slice of slices) are legitimate; annotate them with
// //gfdlint:allow hotalloc -- <why the copy is needed>.
var HotAlloc = &lint.Analyzer{
	Name:          "hotalloc",
	Doc:           "flags per-iteration CandidateNodes/NodesByLabel copies in hot loops; use AppendCandidates",
	SkipTestFiles: true,
	Run:           runHotAlloc,
}

func runHotAlloc(pass *lint.Pass) {
	if !pkgEnabled(pass.Pkg.Path(), HotPkgs) {
		return
	}
	for _, f := range pass.Files {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !declPkgMatches(fn, "graph") {
				return true
			}
			name := fn.Name()
			if name != "CandidateNodes" && name != "NodesByLabel" {
				return true
			}
			if !insideLoopBody(stack) {
				return true
			}
			d := lint.Diagnostic{
				Pos: call.Pos(),
				End: call.End(),
				Message: name + " allocates a fresh copy every loop iteration (graph.Reader copy contract); " +
					"hoist a buffer outside the loop and use AppendCandidates(buf[:0], label)",
			}
			if fix, ok := reuseBufferFix(pass, stack, call); ok {
				d.SuggestedFixes = []lint.SuggestedFix{fix}
			}
			pass.Report(d)
			return true
		})
	}
}

// insideLoopBody reports whether the node whose ancestors are stack sits in
// the body of a for/range statement. Function literals do not reset the
// search: a closure defined inside a loop body runs per iteration.
func insideLoopBody(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var body *ast.BlockStmt
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			body = s.Body
		case *ast.RangeStmt:
			body = s.Body
		default:
			continue
		}
		// The node is in the loop body iff the next node down the ancestor
		// path is the body block (not the init/cond/post/range expression).
		if i+1 < len(stack) && stack[i+1] == body {
			return true
		}
	}
	return false
}

// reuseBufferFix emits the mechanical rewrite for the plain-assignment
// shape `v = r.CandidateNodes(label)`: reuse v itself as the append buffer,
// `v = r.AppendCandidates(v[:0], label)`. Safe under the Reader contract —
// the caller owns the copy — provided the previous contents of v are dead,
// which a plain reassignment states. The `:=` shape gets no auto-fix: the
// buffer must be hoisted out of the loop by hand.
func reuseBufferFix(pass *lint.Pass, stack []ast.Node, call *ast.CallExpr) (lint.SuggestedFix, bool) {
	if len(stack) == 0 {
		return lint.SuggestedFix{}, false
	}
	asg, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != call {
		return lint.SuggestedFix{}, false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name == "_" {
		return lint.SuggestedFix{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "CandidateNodes" || len(call.Args) != 1 {
		return lint.SuggestedFix{}, false
	}
	recv := exprText(pass, sel.X)
	arg := exprText(pass, call.Args[0])
	if recv == "" || arg == "" {
		return lint.SuggestedFix{}, false
	}
	return lint.SuggestedFix{
		Message: "reuse " + lhs.Name + " as the append buffer",
		Edits: []lint.TextEdit{{
			Pos:     call.Pos(),
			End:     call.End(),
			NewText: []byte(recv + ".AppendCandidates(" + lhs.Name + "[:0], " + arg + ")"),
		}},
	}, true
}

func exprText(pass *lint.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return ""
	}
	return buf.String()
}
