package analyzers

import (
	"go/ast"
	"go/types"

	"repro/tools/gfdlint/internal/lint"
)

// CopyLock extends vet's copylocks where vet stops: besides by-value
// parameters, results and receivers of lock-bearing types, it flags
// container and interface shapes that copy locks later even though the
// declaration site looks innocent — `chan T` and `map[K]T` with a
// lock-bearing element type (every send/load copies the lock), and boxing
// a lock-bearing value into an interface (fmt.Println(mu) copies it).
var CopyLock = &lint.Analyzer{
	Name: "copylock",
	Doc:  "flags lock-bearing values copied via parameters, results, channels, maps, or interface boxing",
	Run:  runCopyLock,
}

func runCopyLock(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, s.Recv, s.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, nil, s.Type)
			case *ast.ChanType:
				if path := lockPath(pass.Info.Types[s.Value].Type); path != "" {
					pass.Reportf(s.Pos(), "channel of %s copies %s on every send and receive; use a pointer element type",
						types.ExprString(s.Value), path)
				}
			case *ast.MapType:
				if path := lockPath(pass.Info.Types[s.Value].Type); path != "" {
					pass.Reportf(s.Pos(), "map with %s values copies %s on every load; use a pointer value type",
						types.ExprString(s.Value), path)
				}
			case *ast.CallExpr:
				checkBoxingArgs(pass, s)
			}
			return true
		})
	}
}

func checkFuncSig(pass *lint.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if path := lockPath(t); path != "" {
				pass.Reportf(field.Type.Pos(), "%s of type %s is passed by value and contains %s; use a pointer",
					what, types.TypeString(t, types.RelativeTo(pass.Pkg)), path)
			}
		}
	}
	report(recv, "receiver")
	report(ft.Params, "parameter")
	report(ft.Results, "result")
}

// checkBoxingArgs flags lock-bearing values passed where the parameter is
// an interface: the conversion copies the value, lock included.
func checkBoxingArgs(pass *lint.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		at := pass.Info.Types[arg].Type
		if at == nil {
			continue
		}
		path := lockPath(at)
		if path == "" {
			continue
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			pass.Reportf(arg.Pos(), "passing %s boxes it into an interface, copying %s; pass a pointer",
				types.TypeString(at, types.RelativeTo(pass.Pkg)), path)
		}
	}
}

// lockPath returns a human-readable path to a lock inside t ("" when t
// carries none). Pointers never carry their pointee's locks.
func lockPath(t types.Type) string {
	return lockPathSeen(t, map[types.Type]bool{})
}

func lockPathSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
		return lockPathSeen(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPathSeen(u.Field(i).Type(), seen); p != "" {
				return u.Field(i).Name() + "." + p
			}
		}
	case *types.Array:
		if p := lockPathSeen(u.Elem(), seen); p != "" {
			return "[...]" + p
		}
	}
	return ""
}
