package analyzers

import (
	"go/ast"
	"go/types"

	"repro/tools/gfdlint/internal/lint"
)

// MutatorErr enforces the graph persistence error discipline introduced
// with the WAL: errors returned by the graph and gfdio packages carry
// durability state — WAL.Close/Flush/Sync report the sticky I/O error,
// WriteSnapshot a torn image, Recover* a corrupt log — and silently
// dropping one voids the crash-safety story. The analyzer flags any call
// whose graph/gfdio error result is discarded: statement-position calls,
// `_ =` and `x, _ :=` blank assignments, and `go`/`defer` statements.
var MutatorErr = &lint.Analyzer{
	Name: "mutatorerr",
	Doc:  "flags dropped error returns from graph.Mutator/WAL/snapshot and gfdio APIs",
	Run:  runMutatorErr,
}

func runMutatorErr(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "is dropped")
				}
			case *ast.GoStmt:
				checkDroppedCall(pass, s.Call, "is dropped by the go statement")
			case *ast.DeferStmt:
				checkDroppedCall(pass, s.Call, "is dropped by the deferred call")
			case *ast.AssignStmt:
				checkBlankAssign(pass, s)
			}
			return true
		})
	}
}

// checkDroppedCall flags a statement-position call that returns an error
// from the guarded packages.
func checkDroppedCall(pass *lint.Pass, call *ast.CallExpr, how string) {
	fn := guardedErrFunc(pass, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s %s; graph/gfdio errors carry durability state and must be checked",
		fnDisplay(fn), how)
}

// checkBlankAssign flags `_ = call` and `a, _, _ := call` shapes where a
// blank identifier swallows a guarded error result.
func checkBlankAssign(pass *lint.Pass, asg *ast.AssignStmt) {
	if len(asg.Rhs) != 1 {
		// a, b = x, y form: calls on the rhs are single-valued, and a
		// single-valued guarded error assigned to _ is the len==1 case
		// per position below.
		for i, rhs := range asg.Rhs {
			if i >= len(asg.Lhs) || !isBlank(asg.Lhs[i]) {
				continue
			}
			if call, ok := rhs.(*ast.CallExpr); ok {
				if fn := guardedErrFunc(pass, call); fn != nil {
					pass.Reportf(asg.Lhs[i].Pos(), "error result of %s is discarded with _; check it", fnDisplay(fn))
				}
			}
		}
		return
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !declPkgMatches(fn, "graph", "gfdio") {
		return
	}
	errIdx := errorResultIndexes(fn)
	if len(errIdx) == 0 {
		return
	}
	if len(asg.Lhs) == 1 {
		// `_ = call`: the sole result (or result tuple) is swallowed.
		if isBlank(asg.Lhs[0]) {
			pass.Reportf(asg.Lhs[0].Pos(), "error result of %s is discarded with _; check it", fnDisplay(fn))
		}
		return
	}
	for _, i := range errIdx {
		if i < len(asg.Lhs) && isBlank(asg.Lhs[i]) {
			pass.Reportf(asg.Lhs[i].Pos(), "error result of %s is discarded with _; check it", fnDisplay(fn))
		}
	}
}

// guardedErrFunc resolves call to a graph/gfdio func with at least one
// error result, nil otherwise.
func guardedErrFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !declPkgMatches(fn, "graph", "gfdio") {
		return nil
	}
	if len(errorResultIndexes(fn)) == 0 {
		return nil
	}
	return fn
}

func fnDisplay(fn *types.Func) string {
	if r := recvNamed(fn); r != "" {
		return fn.Pkg().Name() + "." + r + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
