package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/gfdlint/internal/lint"
)

// Shadow flags inner declarations that shadow a function-local variable
// which is still used after the inner scope ends — the shape where a read
// below the shadow silently sees the old value. The idiomatic guard forms
// (`if v := f(); ...`, `for v := ...;`, `switch v := ...;`) are exempt:
// their scopes are self-delimiting and the pattern is universal Go.
var Shadow = &lint.Analyzer{
	Name:          "shadow",
	Doc:           "flags shadowed variables that are read again after the shadowing scope",
	SkipTestFiles: true,
	Run:           runShadow,
}

func runShadow(pass *lint.Pass) {
	// Uses of each object, for the used-after check.
	usesAfter := func(obj types.Object, pos token.Pos) bool {
		for id, o := range pass.Info.Uses {
			if o == obj && id.Pos() > pos {
				return true
			}
		}
		return false
	}

	for _, f := range pass.Files {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || asg.Tok != token.DEFINE {
				return true
			}
			if isStmtInit(stack, asg) {
				return true
			}
			for _, lhs := range asg.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					continue
				}
				inner := obj.Parent()
				if inner == nil || inner.Parent() == nil {
					continue
				}
				_, outer := inner.Parent().LookupParent(id.Name, obj.Pos())
				if outer == nil || outer == obj {
					continue
				}
				ov, ok := outer.(*types.Var)
				if !ok || ov.IsField() {
					continue
				}
				// Only function-local shadowing: package-level fallbacks
				// are a different (noisier) class.
				if ov.Parent() == pass.Pkg.Scope() || ov.Parent() == types.Universe {
					continue
				}
				if usesAfter(outer, inner.End()) {
					pass.Reportf(id.Pos(), "declaration of %q shadows the variable declared at %s, which is read again after this scope ends",
						id.Name, pass.Fset.Position(outer.Pos()))
				}
			}
			return true
		})
	}
}

// isStmtInit reports whether asg is the init clause of an if/for/switch
// statement (the idiomatic, exempt shadowing forms).
func isStmtInit(stack []ast.Node, asg *ast.AssignStmt) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.IfStmt:
		return p.Init == asg
	case *ast.ForStmt:
		return p.Init == asg
	case *ast.SwitchStmt:
		return p.Init == asg
	case *ast.TypeSwitchStmt:
		return p.Init == asg
	}
	return false
}
