package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/gfdlint/internal/cfg"
	"repro/tools/gfdlint/internal/dataflow"
	"repro/tools/gfdlint/internal/lint"
)

// CtxPkgs is the comma-separated package-path suffix list CtxPoll covers.
// The cancellation contract binds the engine packages; "*" covers all.
var CtxPkgs = "internal/core,internal/match"

// CtxPoll enforces the PR-8 cooperative-cancellation contract: every
// unbounded loop (`for { ... }` with no condition) in the engine packages
// must reach a cancellation poll on every path through an iteration. A poll
// is a channel operation (receive, select, range over a channel — a blocked
// loop is not a spinning loop), a context Err/Done check, a Search.Next/Err
// style cross-package iterator step (those poll internally), a stop-flag
// atomic Load, a call through a function value (conservatively assumed to
// poll), or a call to an in-package function that itself polls — the
// summary propagates through the package call graph, so the poll can hide
// any number of in-package calls deep. The analyzer builds the loop's CFG
// region and asks whether the back-edge is reachable from the loop head
// without passing a polling block; if so, one iteration can run with the
// context already canceled and the engine has lost its cancellation bound.
var CtxPoll = &lint.Analyzer{
	Name:          "ctxpoll",
	Doc:           "flags unbounded engine loops that can complete an iteration without polling cancellation",
	SkipTestFiles: true,
	Run:           runCtxPoll,
}

func runCtxPoll(pass *lint.Pass) {
	if !pkgEnabled(pass.Pkg.Path(), CtxPkgs) {
		return
	}
	cg := dataflow.BuildCallGraph(pass.Files, pass.Info)
	polls := cg.Mark(func(fn *dataflow.FuncNode, n ast.Node) bool {
		return pollSeed(pass, n)
	})
	nodePolls := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if m == nil {
				return true
			}
			if pollSeed(pass, m) {
				found = true
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if callee := cg.ResolveCall(call); callee != nil && polls[callee] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	blockPolls := func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			if nodePolls(n) {
				return true
			}
		}
		return false
	}

	for _, fn := range cg.Funcs() {
		g := cfg.New(fn.Body)
		for _, loop := range g.Loops {
			fs, ok := loop.Stmt.(*ast.ForStmt)
			if !ok || fs.Cond != nil || len(loop.Latches) == 0 {
				continue // bounded or conditioned loops state their own exit
			}
			body := loop.Body()
			latches := make(map[*cfg.Block]bool, len(loop.Latches))
			for _, l := range loop.Latches {
				latches[l] = true
			}
			if dataflow.ReachesWithout(loop.Head, latches, body, blockPolls) {
				pass.Reportf(fs.Pos(), "unbounded loop can complete an iteration without polling cancellation (ctx.Err/Done, Search.Next/Err, a stop-flag Load, or a channel operation); the engine cancellation contract requires a poll on every path")
			}
		}
	}
}

// pollSeed reports whether a node is, by itself, a cancellation poll.
// In-package calls are not seeds — the call-graph fixpoint handles them.
func pollSeed(pass *lint.Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SelectStmt:
		return true
	case *ast.SendStmt:
		return false // sending does not observe cancellation
	case *ast.UnaryExpr:
		return n.Op == token.ARROW
	case *ast.RangeStmt:
		if t := pass.Info.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return true
			}
		}
	case *ast.CallExpr:
		fn := calleeFunc(pass.Info, n)
		if fn == nil {
			// Not a plain func/method: a conversion is no poll, but a call
			// through a function value (stop func() bool, injected hooks)
			// conservatively counts as one.
			if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
				return false
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					return false
				}
			}
			return true
		}
		// Stop-flag checks: x.Load() where the receiver names a
		// cancellation flag (stopped.Load(), w.eng.stop.Load(), ...).
		if fn.Name() == "Load" {
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				recv := strings.ToLower(types.ExprString(ast.Unparen(sel.X)))
				for _, kw := range []string{"stop", "cancel", "done", "quit"} {
					if strings.Contains(recv, kw) {
						return true
					}
				}
			}
			return false
		}
		// Cross-package polling shapes: ctx.Err/ctx.Done, Search.Next/Err
		// (they poll internally, budgeted), and blocking sync waits.
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			switch fn.Name() {
			case "Next", "Err", "Done", "Wait":
				return true
			}
		}
	}
	return false
}
