package analyzers_test

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"repro/tools/gfdlint/internal/analyzers"
	"repro/tools/gfdlint/internal/lint"
	"repro/tools/gfdlint/internal/linttest"
	"repro/tools/gfdlint/internal/load"
)

const fixtureDir = "testdata/src"

// withHotPkgs points HotAlloc at the fixture packages for one test.
func withHotPkgs(t *testing.T, pkgs string) {
	old := analyzers.HotPkgs
	analyzers.HotPkgs = pkgs
	t.Cleanup(func() { analyzers.HotPkgs = old })
}

func TestHotAlloc(t *testing.T) {
	withHotPkgs(t, "*")
	linttest.Run(t, fixtureDir, analyzers.HotAlloc, "hotalloc")
}

func TestMutatorErr(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.MutatorErr, "mutatorerr")
}

func TestOverlayStale(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.OverlayStale, "overlaystale")
}

func TestEpochFlow(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.EpochFlow, "epochflow")
}

// withCtxPkgs points CtxPoll at the fixture packages for one test.
func withCtxPkgs(t *testing.T, pkgs string) {
	old := analyzers.CtxPkgs
	analyzers.CtxPkgs = pkgs
	t.Cleanup(func() { analyzers.CtxPkgs = old })
}

func TestCtxPoll(t *testing.T) {
	withCtxPkgs(t, "*")
	linttest.Run(t, fixtureDir, analyzers.CtxPoll, "ctxpoll")
}

// withGoroPkgs points GoroIsolate at the fixture packages for one test.
func withGoroPkgs(t *testing.T, pkgs string) {
	old := analyzers.GoroPkgs
	analyzers.GoroPkgs = pkgs
	t.Cleanup(func() { analyzers.GoroPkgs = old })
}

func TestGoroIsolate(t *testing.T) {
	withGoroPkgs(t, "*")
	linttest.Run(t, fixtureDir, analyzers.GoroIsolate, "goroisolate")
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.LockDiscipline, "lockdiscipline")
}

func TestCopyLock(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.CopyLock, "copylock")
}

func TestShadow(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.Shadow, "shadow")
}

func TestNilness(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.Nilness, "nilness")
}

// TestAllowAudit runs the audit alongside the analyzer whose findings the
// fixture's directives claim to suppress: the live suppression survives,
// the dead ones are reported.
func TestAllowAudit(t *testing.T) {
	linttest.RunSuite(t, fixtureDir,
		[]*lint.Analyzer{analyzers.OverlayStale, lint.AllowAudit}, "allowaudit")
}

// TestHotAllocFix applies the mechanical suggested fix for the plain-
// reassignment shape and compares the rewrite against fix.go.golden.
func TestHotAllocFix(t *testing.T) {
	withHotPkgs(t, "*")
	findings, fset := linttest.Run(t, fixtureDir, analyzers.HotAlloc, "hotallocfix")

	var fixable []lint.Finding
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) > 0 {
			fixable = append(fixable, f)
		}
	}
	if len(fixable) != 1 {
		t.Fatalf("want exactly 1 fixable finding (the plain-assign shape), got %d", len(fixable))
	}
	fixed, err := lint.ApplyFixes(fset, fixable, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("fix touched %d files, want 1", len(fixed))
	}
	golden, err := os.ReadFile(filepath.Join(fixtureDir, "hotallocfix", "fix.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range fixed {
		if filepath.Base(name) != "fix.go" {
			t.Fatalf("fix rewrote %s, want fix.go", name)
		}
		if !bytes.Equal(got, golden) {
			t.Errorf("fixed output differs from fix.go.golden:\n%s", got)
		}
	}
}

// copyTree copies the named entries of a fixture tree into dst, preserving
// relative layout.
func copyTree(t *testing.T, src, dst string, entries ...string) {
	t.Helper()
	for _, e := range entries {
		err := filepath.WalkDir(filepath.Join(src, e), func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(src, p)
			if err != nil {
				return err
			}
			target := filepath.Join(dst, rel)
			if d.IsDir() {
				return os.MkdirAll(target, 0o755)
			}
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(target, b, 0o644)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestHotAllocFixIdempotent pins that -fix converges in one application:
// running hotalloc over the already-fixed golden output yields no further
// fixable findings, so a second -fix pass would rewrite nothing.
func TestHotAllocFixIdempotent(t *testing.T) {
	withHotPkgs(t, "*")
	tmp := t.TempDir()
	copyTree(t, fixtureDir, tmp, "go.mod", "graph", "hotallocfix")
	golden, err := os.ReadFile(filepath.Join(fixtureDir, "hotallocfix", "fix.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "hotallocfix", "fix.go"), golden, 0o644); err != nil {
		t.Fatal(err)
	}

	pkgs, err := load.Load(load.Config{Dir: tmp, Env: []string{"GOWORK=off"}}, "./hotallocfix")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixed fixture matched no packages")
	}
	var findings []lint.Finding
	for _, p := range pkgs {
		findings = append(findings, lint.RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, []*lint.Analyzer{analyzers.HotAlloc})...)
	}
	// The := shape stays flagged (it needs a hand-hoisted buffer) but the
	// rewritten AppendCandidates line must be clean and nothing fixable may
	// remain.
	if len(findings) != 1 {
		t.Fatalf("fixed output has %d findings, want only the non-fixable := shape", len(findings))
	}
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) > 0 {
			t.Errorf("fixed output still offers a fix at %s: %s", f.Position(pkgs[0].Fset), f.Diag.Message)
		}
	}
}
