package analyzers_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/tools/gfdlint/internal/analyzers"
	"repro/tools/gfdlint/internal/lint"
	"repro/tools/gfdlint/internal/linttest"
)

const fixtureDir = "testdata/src"

// withHotPkgs points HotAlloc at the fixture packages for one test.
func withHotPkgs(t *testing.T, pkgs string) {
	old := analyzers.HotPkgs
	analyzers.HotPkgs = pkgs
	t.Cleanup(func() { analyzers.HotPkgs = old })
}

func TestHotAlloc(t *testing.T) {
	withHotPkgs(t, "*")
	linttest.Run(t, fixtureDir, analyzers.HotAlloc, "hotalloc")
}

func TestMutatorErr(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.MutatorErr, "mutatorerr")
}

func TestOverlayStale(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.OverlayStale, "overlaystale")
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.LockDiscipline, "lockdiscipline")
}

func TestCopyLock(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.CopyLock, "copylock")
}

func TestShadow(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.Shadow, "shadow")
}

func TestNilness(t *testing.T) {
	linttest.Run(t, fixtureDir, analyzers.Nilness, "nilness")
}

// TestHotAllocFix applies the mechanical suggested fix for the plain-
// reassignment shape and compares the rewrite against fix.go.golden.
func TestHotAllocFix(t *testing.T) {
	withHotPkgs(t, "*")
	findings, fset := linttest.Run(t, fixtureDir, analyzers.HotAlloc, "hotallocfix")

	var fixable []lint.Finding
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) > 0 {
			fixable = append(fixable, f)
		}
	}
	if len(fixable) != 1 {
		t.Fatalf("want exactly 1 fixable finding (the plain-assign shape), got %d", len(fixable))
	}
	fixed, err := lint.ApplyFixes(fset, fixable, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("fix touched %d files, want 1", len(fixed))
	}
	golden, err := os.ReadFile(filepath.Join(fixtureDir, "hotallocfix", "fix.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range fixed {
		if filepath.Base(name) != "fix.go" {
			t.Fatalf("fix rewrote %s, want fix.go", name)
		}
		if !bytes.Equal(got, golden) {
			t.Errorf("fixed output differs from fix.go.golden:\n%s", got)
		}
	}
}
