package analyzers

// ovflow.go is the shared staleness-flow engine behind overlaystale and
// epochflow: both analyzers describe their kill events (what makes an
// Overlay stale) and the engine runs a forward may-analysis over the
// function's CFG — an overlay object's fact travels every path, around
// loop back-edges, until a Reader use meets a stale fact. overlaystale
// feeds direct, intra-procedural Delta mutations; epochflow feeds
// interprocedural ones (callee summaries from the package call graph) and
// epoch advances (Refreeze/Compact), which the runtime staleness panic
// cannot catch.

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/gfdlint/internal/cfg"
	"repro/tools/gfdlint/internal/dataflow"
	"repro/tools/gfdlint/internal/lint"
)

// ovEventKind classifies one staleness-relevant operation.
type ovEventKind int

const (
	ovCreate  ovEventKind = iota // o := d.Overlay(): o becomes fresh, bound to d
	ovRebind                     // o reassigned from anything else: o becomes untracked
	ovMutate                     // an operation that stales every overlay bound to a delta
	ovAdvance                    // an epoch advance on a Frozen: stales overlays of deltas based on it
	ovRead                       // a Reader use of an overlay
)

type ovEvent struct {
	kind  ovEventKind
	pos   token.Pos
	obj   types.Object // overlay (create/rebind/read), delta (mutate), frozen (advance)
	delta types.Object // backing delta (create)
	what  string       // display text for reads
	via   string       // display text for mutate/advance ("call to merge", "Refreeze", ...)
}

// ovState is one overlay's fact.
type ovState struct {
	delta types.Object
	stale bool
	pos   token.Pos // position of the staling event (valid when stale)
	via   string
}

type ovFact map[types.Object]ovState

func (f ovFact) clone() ovFact {
	c := make(ovFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func ovJoin(a, b ovFact) ovFact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := a.clone()
	for k, vb := range b {
		va, ok := out[k]
		if !ok {
			out[k] = vb
			continue
		}
		if va.delta != vb.delta {
			// Bound to different deltas on different paths: stop tracking
			// rather than guess (reported staleness must be certain about
			// which mutation it blames).
			delete(out, k)
			continue
		}
		// May-analysis: stale on any path wins; prefer the earlier staling
		// position for determinism.
		switch {
		case va.stale && vb.stale:
			if vb.pos < va.pos {
				out[k] = vb
			}
		case vb.stale:
			out[k] = vb
		}
	}
	return out
}

func ovEqual(a, b ovFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

// ovAnalysis is one analyzer's configuration of the engine.
type ovAnalysis struct {
	pass *lint.Pass
	// events extracts the staleness events of one CFG node, in evaluation
	// order. Nested function literals are already excluded by the caller.
	events func(n ast.Node, emit func(ovEvent))
	// report renders one finding. mutPos/via describe the staling event.
	report func(read ovEvent, st ovState)
	// baseOf maps a Delta object to the Frozen it was taken from (for
	// ovAdvance kills); may be nil.
	baseOf map[types.Object]types.Object
}

// run checks every function declaration and function literal in the pass's
// files.
func (a *ovAnalysis) run() {
	for _, f := range a.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.checkBody(n.Body)
				}
			case *ast.FuncLit:
				a.checkBody(n.Body)
				return false // its nested literals were just handled by the recursion above
			}
			return true
		})
	}
}

// nodeEvents lists the events of one CFG node in order, skipping nested
// function literals (they are separate analysis units).
func (a *ovAnalysis) nodeEvents(n ast.Node) []ovEvent {
	var evs []ovEvent
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m == nil {
			return true
		}
		a.events(m, func(e ovEvent) { evs = append(evs, e) })
		return true
	})
	return evs
}

func (a *ovAnalysis) checkBody(body *ast.BlockStmt) {
	g := cfg.New(body)

	// Per-block event lists, computed once.
	events := map[*cfg.Block][][]ovEvent{}
	any := false
	for _, b := range g.Blocks {
		lists := make([][]ovEvent, len(b.Nodes))
		for i, n := range b.Nodes {
			lists[i] = a.nodeEvents(n)
			if len(lists[i]) > 0 {
				any = true
			}
		}
		events[b] = lists
	}
	if !any {
		return
	}

	transfer := func(b *cfg.Block, in ovFact, read func(ovEvent, ovState)) ovFact {
		out := in
		cloned := false
		mut := func(apply func(ovFact)) {
			if !cloned {
				out = out.clone()
				cloned = true
			}
			apply(out)
		}
		for _, list := range events[b] {
			for _, ev := range list {
				switch ev.kind {
				case ovCreate:
					mut(func(f ovFact) { f[ev.obj] = ovState{delta: ev.delta} })
				case ovRebind:
					if _, ok := out[ev.obj]; ok {
						mut(func(f ovFact) { delete(f, ev.obj) })
					}
				case ovMutate, ovAdvance:
					for o, st := range out {
						if st.stale {
							continue
						}
						hit := st.delta == ev.delta
						if ev.kind == ovAdvance {
							hit = a.baseOf != nil && a.baseOf[st.delta] == ev.obj
						}
						if hit {
							staled := st
							staled.stale, staled.pos, staled.via = true, ev.pos, ev.via
							key := o
							mut(func(f ovFact) { f[key] = staled })
						}
					}
				case ovRead:
					if st, ok := out[ev.obj]; ok && st.stale && read != nil {
						read(ev, st)
					}
				}
			}
		}
		return out
	}

	res := dataflow.Solve(g, dataflow.Spec[ovFact]{
		Dir:      dataflow.Forward,
		Boundary: ovFact{},
		Init:     ovFact{},
		Join:     ovJoin,
		Transfer: func(b *cfg.Block, in ovFact) ovFact { return transfer(b, in, nil) },
		Equal:    ovEqual,
	})

	// Report pass: re-run each block's transfer from its solved entry fact,
	// now observing reads. Dedupe by position (a read may be re-observed
	// through multiple blocks only if blocks were shared, which they are
	// not, but joins can present the same stale state twice).
	reported := map[token.Pos]bool{}
	for _, b := range g.Blocks {
		transfer(b, res.In[b], func(e ovEvent, st ovState) {
			if !reported[e.pos] {
				reported[e.pos] = true
				a.report(e, st)
			}
		})
	}
}

// --- shared type/shape helpers ---

// namedFromPkg reports whether t (after unwrapping pointers) is a named
// type with the given name declared in a package whose path is or ends in
// "/"+pkgSuffix.
func namedFromPkg(t types.Type, name, pkgSuffix string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || len(path) > len(pkgSuffix) && path[len(path)-len(pkgSuffix)-1] == '/' && path[len(path)-len(pkgSuffix):] == pkgSuffix
}

func isOverlayObj(o types.Object) bool {
	return o != nil && namedFromPkg(o.Type(), "Overlay", "graph")
}

func isDeltaObj(o types.Object) bool {
	return o != nil && namedFromPkg(o.Type(), "Delta", "graph")
}

func isWALObj(o types.Object) bool {
	return o != nil && namedFromPkg(o.Type(), "WAL", "graph")
}

func isFrozenObj(o types.Object) bool {
	return o != nil && namedFromPkg(o.Type(), "Frozen", "graph")
}

// collectGraphBindings walks a file set (skipping nothing: bindings are
// flow-insensitive) and records WAL→Delta aliases (w := graph.NewWAL(_, d))
// and Delta→Frozen bases (d := graph.NewDelta(f)).
func collectGraphBindings(files []*ast.File, info *types.Info) (walOf, baseOf map[types.Object]types.Object) {
	walOf = map[types.Object]types.Object{}
	baseOf = map[types.Object]types.Object{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range asg.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(asg.Lhs) {
					continue
				}
				fn := calleeFunc(info, call)
				if fn == nil || !declPkgMatches(fn, "graph") {
					continue
				}
				lhs, ok := asg.Lhs[i].(*ast.Ident)
				if !ok || lhs.Name == "_" {
					continue
				}
				switch fn.Name() {
				case "NewWAL", "OpenWAL":
					if len(call.Args) == 2 {
						if d, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok {
							walOf[identObj(info, lhs)] = identObj(info, d)
						}
					}
				case "NewDelta":
					if len(call.Args) == 1 {
						if b, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
							baseOf[identObj(info, lhs)] = identObj(info, b)
						}
					}
				}
			}
			return true
		})
	}
	return walOf, baseOf
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
