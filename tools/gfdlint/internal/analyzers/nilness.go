package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/gfdlint/internal/lint"
)

// Nilness is a syntactic subset of the SSA-based x/tools nilness pass: it
// flags dereferences of a variable inside the branch where a nil check
// just proved it nil — `if x == nil { use(x.f) }` and the symmetric
// `if x != nil { } else { use(x.f) }`. Dereference means pointer selector,
// pointer indirection, slice index, or map write; reassigning the variable
// inside the branch ends tracking.
var Nilness = &lint.Analyzer{
	Name: "nilness",
	Doc:  "flags dereferences on the branch where a nil check proved the value nil",
	Run:  runNilness,
}

func runNilness(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			id, op := nilCheckedIdent(pass, ifs.Cond)
			if id == nil {
				return true
			}
			switch op {
			case token.EQL:
				checkNilBranch(pass, id, ifs.Body)
			case token.NEQ:
				if blk, ok := ifs.Else.(*ast.BlockStmt); ok {
					checkNilBranch(pass, id, blk)
				}
			}
			return true
		})
	}
}

// nilCheckedIdent matches `x == nil` / `x != nil` (either side) where x is
// an identifier of nilable type.
func nilCheckedIdent(pass *lint.Pass, cond ast.Expr) (*ast.Ident, token.Token) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, token.ILLEGAL
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(pass, y) {
		// fallthrough with x
	} else if isNilIdent(pass, x) {
		x = y
	} else {
		return nil, token.ILLEGAL
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, token.ILLEGAL
	}
	switch pass.Info.Types[id].Type.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return id, be.Op
	}
	return nil, token.ILLEGAL
}

func isNilIdent(pass *lint.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}

// checkNilBranch flags dereferences of id's object inside body, stopping
// at the first reassignment.
func checkNilBranch(pass *lint.Pass, id *ast.Ident, body *ast.BlockStmt) {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return
	}
	// First reassignment position, if any: derefs after it are fine.
	limit := token.Pos(1 << 60)
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			if l, ok := lhs.(*ast.Ident); ok && identObj(pass.Info, l) == obj && asg.Pos() < limit {
				limit = asg.Pos()
			}
		}
		return true
	})

	sameVar := func(e ast.Expr) bool {
		u, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.Info.Uses[u] == obj && u.Pos() < limit
	}
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s of %q, which the branch condition proved nil (checked at %s)",
			what, id.Name, pass.Fset.Position(id.Pos()))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.StarExpr:
			if sameVar(e.X) {
				report(e.Pos(), "indirection")
			}
		case *ast.SelectorExpr:
			if !sameVar(e.X) {
				return true
			}
			if _, isPtr := pass.Info.Types[e.X].Type.Underlying().(*types.Pointer); isPtr {
				report(e.Pos(), "field or method access")
			}
		case *ast.IndexExpr:
			if !sameVar(e.X) {
				return true
			}
			switch pass.Info.Types[e.X].Type.Underlying().(type) {
			case *types.Slice:
				report(e.Pos(), "index")
			}
		}
		return true
	})

	// Map writes: m[k] = v on a nil map panics (reads do not).
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok || !sameVar(ix.X) {
				continue
			}
			if _, isMap := pass.Info.Types[ix.X].Type.Underlying().(*types.Map); isMap {
				report(ix.Pos(), "map write")
			}
		}
		return true
	})
}
