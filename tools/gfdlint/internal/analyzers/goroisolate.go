package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/gfdlint/internal/dataflow"
	"repro/tools/gfdlint/internal/lint"
)

// GoroPkgs is the comma-separated package-path suffix list GoroIsolate
// covers.
var GoroPkgs = "internal/core,internal/match"

// GoroIsolate enforces the worker-isolation contract from the parallel
// engine (parallel.go): a panic in a worker goroutine must become a
// PanicError on the run, never a process crash, and every goroutine must
// have a join or release path (WaitGroup.Done, a channel send/close/receive,
// a condvar) so the run cannot orphan it. For every `go` statement in the
// engine packages the analyzer checks two things on the goroutine body:
// (1) if the body can panic — determined through per-function can-panic
// summaries over the package call graph, with sync/atomic/context/builtin
// operations considered safe — a deferred recover() guard must be installed
// at goroutine entry, before the first statement that can panic; (2) the
// body must contain join evidence on its non-panicking exits. Pure
// coordination goroutines (a lone select on ctx.Done, a Wait+close pair)
// are provably panic-free and need no guard.
var GoroIsolate = &lint.Analyzer{
	Name:          "goroisolate",
	Doc:           "flags engine goroutines without a recover guard at entry or without a reachable join/release",
	SkipTestFiles: true,
	Run:           runGoroIsolate,
}

func runGoroIsolate(pass *lint.Pass) {
	if !pkgEnabled(pass.Pkg.Path(), GoroPkgs) {
		return
	}
	cg := dataflow.BuildCallGraph(pass.Files, pass.Info)
	canPanic := cg.Mark(func(fn *dataflow.FuncNode, n ast.Node) bool {
		return panicSeed(pass, n)
	})

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var target *dataflow.FuncNode
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				target = cg.NodeForLit(lit)
			} else {
				target = cg.ResolveCall(gs.Call)
			}
			if target == nil {
				return true // cross-package or dynamic target: out of reach
			}
			if canPanic[target] && !entryRecoverGuard(pass, cg, canPanic, target.Body) {
				pass.Reportf(gs.Pos(), "goroutine body can panic but installs no recover() guard at entry; an unrecovered panic here crashes the process instead of failing the run with a PanicError")
			}
			if !hasJoinEvidence(pass, target.Body) {
				pass.Reportf(gs.Pos(), "goroutine has no join or release path (WaitGroup.Done, channel send/close/receive, or condvar); the run can return while this worker is still live")
			}
			return true
		})
	}
}

// entryRecoverGuard reports whether body installs a deferred recover()
// before any statement that can panic: scanning top-level statements in
// order, a recovering defer establishes the guard; a statement that can
// panic first means the guard comes too late.
func entryRecoverGuard(pass *lint.Pass, cg *dataflow.CallGraph, canPanic map[*dataflow.FuncNode]bool, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			if deferRecovers(pass, cg, ds.Call) {
				return true
			}
			continue // a non-recovering defer (wg.Done) runs after the panic anyway
		}
		if stmtCanPanic(pass, cg, canPanic, stmt) {
			return false
		}
	}
	return false
}

// deferRecovers reports whether a deferred call reaches recover(): either a
// function literal whose body calls recover, or an in-package function that
// does.
func deferRecovers(pass *lint.Pass, cg *dataflow.CallGraph, call *ast.CallExpr) bool {
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := cg.ResolveCall(call); fn != nil {
		body = fn.Body
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func stmtCanPanic(pass *lint.Pass, cg *dataflow.CallGraph, canPanic map[*dataflow.FuncNode]bool, stmt ast.Stmt) bool {
	risky := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if risky {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's body only matters where it is called
		}
		if n == nil {
			return true
		}
		if panicSeed(pass, n) {
			risky = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := cg.ResolveCall(call); callee != nil && canPanic[callee] {
				risky = true
				return false
			}
		}
		return true
	})
	return risky
}

// safeCallPkgs are packages whose exported functions and methods are
// treated as non-panicking for goroutine-isolation purposes.
var safeCallPkgs = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"context":     true,
	"time":        true,
}

// panicSeed reports whether a node can panic by itself. In-package calls
// are not seeds — the call-graph fixpoint propagates can-panic through
// them. Channel sends and closes are assumed protocol-correct (gfdlint's
// lockdiscipline family owns channel-protocol bugs).
func panicSeed(pass *lint.Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.IndexExpr, *ast.IndexListExpr, *ast.SliceExpr:
		return true // bounds / nil map write
	case *ast.TypeAssertExpr:
		return true // comma-ok forms are rare enough to over-approximate
	case *ast.StarExpr:
		// A deref can fault; in type position (e.g. *T in a declaration)
		// there is nothing to evaluate.
		if tv, ok := pass.Info.Types[n.X]; ok && tv.IsType() {
			return false
		}
		return true
	case *ast.BinaryExpr:
		return n.Op == token.QUO || n.Op == token.REM
	case *ast.CallExpr:
		fn := calleeFunc(pass.Info, n)
		if fn == nil {
			if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
				return false // conversion
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
					return b.Name() == "panic"
				}
			}
			return true // call through a function value: unknown body
		}
		if fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
			return false // universe funcs; in-package handled by the fixpoint
		}
		return !safeCallPkgs[fn.Pkg().Path()]
	}
	return false
}

// hasJoinEvidence reports whether a goroutine body contains any join or
// release construct: WaitGroup.Done/Wait, sync.Cond use, a channel
// operation (send, receive, close, select, range over a channel).
func hasJoinEvidence(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			}
			if fn, _, ok := syncMethod(pass.Info, n); ok {
				switch fn.Name() {
				case "Done", "Wait", "Signal", "Broadcast":
					found = true
				}
			}
		}
		return !found
	})
	return found
}
