package analyzers

import (
	"fmt"
	"go/ast"
	"sort"

	"repro/tools/gfdlint/internal/dataflow"
	"repro/tools/gfdlint/internal/lint"
)

// EpochFlow is the interprocedural extension of overlaystale: a Reader
// derived from a Delta (an Overlay) must not flow past a call that can
// mutate or retire its backing store, even when the mutation hides inside a
// callee. overlaystale catches the direct d.AddEdge(); this analyzer
// computes mutated-parameter summaries over the package call graph — which
// parameters (or receivers) of each in-package function transitively reach
// a graph.Mutator call, a Refreeze/RefreezeOpts (which merges the Delta
// into a new epoch), or a Compact (which advances the epoch of the base
// Frozen) — and stales overlay facts at every call site that passes the
// backing Delta (or its base Frozen) into such a parameter. Refreeze does
// not bump the Delta's version, so the runtime staleness panic never fires
// for these reads: this analyzer is the only enforcement of the PR-9 epoch
// contract ("snapshot-derived readers die at the next epoch").
var EpochFlow = &lint.Analyzer{
	Name: "epochflow",
	Doc:  "flags Overlay reads past a call that can mutate or Refreeze/Compact the backing store (interprocedural via callee summaries)",
	Run:  runEpochFlow,
}

func runEpochFlow(pass *lint.Pass) {
	info := pass.Info
	walOf, baseOf := collectGraphBindings(pass.Files, info)
	cg := dataflow.BuildCallGraph(pass.Files, info)

	// Per-function summaries: which parameter indices (receiver = -1)
	// transitively reach an epoch-advancing operation.
	mut := cg.MutatedParams(func(call *ast.CallExpr) []*ast.Ident {
		fn := calleeFunc(info, call)
		if fn == nil || !declPkgMatches(fn, "graph") {
			return nil
		}
		switch {
		case deltaMutators[fn.Name()]:
			if r := recvIdent(call); r != nil {
				return []*ast.Ident{r}
			}
		case fn.Name() == "Refreeze" || fn.Name() == "RefreezeOpts":
			if len(call.Args) >= 1 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					return []*ast.Ident{id}
				}
			}
		case fn.Name() == "Compact":
			if r := recvIdent(call); r != nil {
				return []*ast.Ident{r}
			}
		}
		return nil
	})

	pos := func(n ast.Node) string { return pass.Fset.Position(n.Pos()).String() }

	// killsFor emits the staling events of one call: direct Refreeze/Compact,
	// or an argument/receiver forwarded into a summarized mutating parameter
	// of an in-package callee. Direct graph.Mutator calls are overlaystale's
	// domain and are deliberately not re-reported here.
	killsFor := func(call *ast.CallExpr, emit func(ovEvent)) {
		if fn := calleeFunc(info, call); fn != nil && declPkgMatches(fn, "graph") {
			switch {
			case (fn.Name() == "Refreeze" || fn.Name() == "RefreezeOpts") && len(call.Args) >= 1:
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if d := identObj(info, id); isDeltaObj(d) {
						emit(ovEvent{kind: ovMutate, pos: call.Pos(), delta: d,
							via: fmt.Sprintf("the %s at %s merges the backing Delta into a new epoch", fn.Name(), pos(call))})
					}
				}
			case fn.Name() == "Compact":
				if r := recvIdent(call); r != nil {
					if f := identObj(info, r); isFrozenObj(f) {
						emit(ovEvent{kind: ovAdvance, pos: call.Pos(), obj: f,
							via: fmt.Sprintf("the Compact at %s advances the epoch of its base Frozen", pos(call))})
					}
				}
			}
			return
		}
		callee := cg.ResolveCall(call)
		if callee == nil || len(mut[callee]) == 0 {
			return
		}
		idxs := make([]int, 0, len(mut[callee]))
		for idx := range mut[callee] {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			var arg ast.Expr
			if idx == -1 {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					arg = sel.X
				}
			} else if idx < len(call.Args) {
				arg = call.Args[idx]
			}
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := identObj(info, id)
			if isWALObj(obj) {
				obj = walOf[obj]
			}
			switch {
			case isDeltaObj(obj):
				emit(ovEvent{kind: ovMutate, pos: call.Pos(), delta: obj,
					via: fmt.Sprintf("the call to %s at %s can mutate the backing Delta", callee.Name, pos(call))})
			case isFrozenObj(obj):
				emit(ovEvent{kind: ovAdvance, pos: call.Pos(), obj: obj,
					via: fmt.Sprintf("the call to %s at %s can advance the epoch of its base Frozen", callee.Name, pos(call))})
			}
		}
	}

	a := &ovAnalysis{pass: pass, baseOf: baseOf}
	a.events = func(n ast.Node, emit func(ovEvent)) {
		ovAssignEvents(info, n, emit)
		if call, ok := n.(*ast.CallExpr); ok {
			ovReadEvents(info, call, emit) // args are evaluated before the call runs
			killsFor(call, emit)
		}
	}
	a.report = func(e ovEvent, st ovState) {
		pass.Reportf(e.pos, "%s uses a stale Overlay: %s; snapshot-derived readers die at the next epoch — re-derive the overlay after it", e.what, st.via)
	}
	a.run()
}
