// Fixtures for the epochflow analyzer: an Overlay must not flow past a
// call that can mutate or retire its backing store — a Refreeze/Compact
// (epoch advance) or a mutation hidden inside an in-package callee. Direct
// Delta mutations are overlaystale's domain and are not re-reported here.
package epochflow

import (
	"bytes"

	"fixtures/graph"
)

// grow mutates its Delta one call deep.
func grow(d *graph.Delta) { d.AddNode("person") }

// churn reaches the mutation two calls deep: the summary is a fixpoint.
func churn(d *graph.Delta) { grow(d) }

// advance merges the delta into a new epoch inside a helper.
func advance(f *graph.Frozen, d *graph.Delta) *graph.Frozen { return f.Refreeze(d) }

// logGrow mutates through a WAL fronting the Delta.
func logGrow(w *graph.WAL) { w.AddNode("person") }

// inspect only reads: passing a fresh overlay through it is fine.
func inspect(o *graph.Overlay) int { return o.NumNodes() }

// freshOverlay returns a new snapshot; assigning from it rebinds.
func freshOverlay(d *graph.Delta) *graph.Overlay { return d.Overlay() }

// Refreeze does not bump the Delta version, so the runtime staleness panic
// never fires here: the analyzer is the only enforcement.
func directRefreeze(f *graph.Frozen) int {
	d := graph.NewDelta(f)
	o := d.Overlay()
	f.Refreeze(d)
	return o.NumNodes() // want "merges the backing Delta into a new epoch"
}

func helperMutates(f *graph.Frozen) int {
	d := graph.NewDelta(f)
	o := d.Overlay()
	grow(d)
	return o.NumNodes() // want "call to grow .* can mutate the backing Delta"
}

func helperMutatesTwoDeep(f *graph.Frozen) int {
	d := graph.NewDelta(f)
	o := d.Overlay()
	churn(d)
	return o.NumNodes() // want "call to churn .* can mutate the backing Delta"
}

func helperRefreezes(f *graph.Frozen) int {
	d := graph.NewDelta(f)
	o := d.Overlay()
	advance(f, d)
	return o.NumNodes() // want "call to advance .* can mutate the backing Delta"
}

// Compact retires the base Frozen's epoch: overlays of deltas based on it
// (the NewDelta binding) die with it.
func compactAdvancesEpoch(f *graph.Frozen) int {
	d := graph.NewDelta(f)
	o := d.Overlay()
	f.Compact()
	return o.NumNodes() // want "advances the epoch of its base Frozen"
}

// The mutation rides a WAL handle; the WAL→Delta binding maps it back.
func mutatesThroughWAL(f *graph.Frozen, buf *bytes.Buffer) int {
	d := graph.NewDelta(f)
	w := graph.NewWAL(buf, d)
	o := d.Overlay()
	logGrow(w)
	return o.NumNodes() // want "call to logGrow .* can mutate the backing Delta"
}

// An epoch advance late in a loop body stales reads earlier in the body on
// the next iteration.
func staleNextIteration(f *graph.Frozen, d *graph.Delta) int {
	o := d.Overlay()
	total := 0
	for i := 0; i < 2; i++ {
		total += o.NumNodes() // want "merges the backing Delta into a new epoch"
		f.Refreeze(d)
	}
	return total
}

// --- clean shapes ---

// Re-deriving the overlay after the epoch advance is the documented fix.
func rederivedAfterRefreeze(f *graph.Frozen) int {
	d := graph.NewDelta(f)
	o := d.Overlay()
	f.Refreeze(d)
	o = d.Overlay()
	return o.NumNodes()
}

// A read-only helper leaves the overlay fresh.
func readOnlyHelper(f *graph.Frozen) int {
	d := graph.NewDelta(f)
	o := d.Overlay()
	return inspect(o) + o.NumNodes()
}

// Rebinding from a helper that returns a fresh overlay stops tracking the
// old value: no false positive on the new one.
func rebindFromHelper(f *graph.Frozen) int {
	d := graph.NewDelta(f)
	o := d.Overlay()
	f.Refreeze(d)
	o = freshOverlay(d)
	return o.NumNodes()
}

// A direct mutation is overlaystale's domain: epochflow stays quiet rather
// than double-reporting.
func directMutationNotRereported(f *graph.Frozen) int {
	d := graph.NewDelta(f)
	o := d.Overlay()
	d.AddNode("person")
	return o.NumNodes()
}
