// Fixtures for the hotalloc analyzer: per-iteration Reader copies in loop
// bodies are flagged; copy-safe uses outside loops are not.
package hotalloc

import "fixtures/graph"

func perIterationCopies(f *graph.Frozen, labels []string) int {
	total := 0
	for i := 0; i < 10; i++ {
		cands := f.CandidateNodes("person") // want "allocates a fresh copy every loop iteration"
		total += len(cands)
	}
	for _, l := range labels {
		total += len(f.NodesByLabel(l)) // want "allocates a fresh copy every loop iteration"
	}
	return total
}

// Closures defined in a loop body run per iteration; the copy still
// happens once per iteration.
func closureInLoop(f *graph.Frozen) {
	var thunks []func() int
	for i := 0; i < 3; i++ {
		thunks = append(thunks, func() int {
			return len(f.CandidateNodes("city")) // want "allocates a fresh copy every loop iteration"
		})
	}
	for _, th := range thunks {
		_ = th()
	}
}

// The copy contract makes these single calls safe: the caller owns the
// returned slice. No loop, no finding.
func copySafeOutsideLoop(f *graph.Frozen) ([]graph.NodeID, []graph.NodeID) {
	cands := f.CandidateNodes("person")
	byLabel := f.NodesByLabel("city")
	return cands, byLabel
}

// A call in the loop condition runs per iteration too, but the analyzer
// only claims loop bodies; the condition shape is left to review.
func callInLoopHeader(f *graph.Frozen) {
	for i := 0; i < len(f.CandidateNodes("x")); i++ {
		_ = i
	}
}

// Group-evaluation shape: shared multi-GFD validation iterates pattern
// groups and enumerates each group's pattern once. Fetching the seed
// candidates inside the group loop re-copies per group — exactly the
// allocation the grouped engines exist to avoid.
func groupEvaluationLoop(f *graph.Frozen, groups [][]int) int {
	total := 0
	for _, members := range groups {
		seeds := f.CandidateNodes("person") // want "allocates a fresh copy every loop iteration"
		for range members {
			total += len(seeds)
		}
	}
	return total
}

// The member fan-out inside a group is a nested loop; a copy taken there
// allocates once per (group, member) pair and is still flagged.
func memberFanOut(f *graph.Frozen, groups [][]int) int {
	total := 0
	for _, members := range groups {
		for range members {
			total += len(f.NodesByLabel("city")) // want "allocates a fresh copy every loop iteration"
		}
	}
	return total
}

// How the grouped engines do it: hoist one buffer for the whole sweep and
// refill it with AppendCandidates per group. Clean.
func groupEvaluationHoisted(f *graph.Frozen, groups [][]int) int {
	total := 0
	var buf []graph.NodeID
	for _, members := range groups {
		buf = f.AppendCandidates(buf[:0], "person")
		for range members {
			total += len(buf)
		}
	}
	return total
}

// Retained per-iteration copies are the documented escape hatch.
func retainedCopies(f *graph.Frozen, labels []string) [][]graph.NodeID {
	var parts [][]graph.NodeID
	for _, l := range labels {
		//gfdlint:allow hotalloc -- each part is retained; the copy is the point
		parts = append(parts, f.CandidateNodes(l))
	}
	return parts
}
