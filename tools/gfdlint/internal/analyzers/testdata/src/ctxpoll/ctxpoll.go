// Fixtures for the ctxpoll analyzer: unbounded `for {}` loops must reach a
// cancellation poll on every path through an iteration. Polls are channel
// operations, ctx.Err/Done, Search.Next/Err, stop-flag Loads, dynamic
// calls, and in-package helpers that themselves poll (call-graph fixpoint).
package ctxpoll

import (
	"context"
	"sync/atomic"

	"fixtures/match"
)

func work(n int) int { return n + 1 }

// canceled polls one call deep: the fixpoint marks it a poll.
func canceled(ctx context.Context) bool { return ctx.Err() != nil }

var ready atomic.Bool
var stopped atomic.Bool

// A spin loop with no poll anywhere: an iteration can run with the context
// already canceled.
func busySpin() {
	n := 0
	for { // want "without polling cancellation"
		n = work(n)
	}
}

// The poll sits behind a condition: the other arm completes an iteration
// without it.
func pollOnOnePath(ctx context.Context) int {
	n := 0
	for { // want "without polling cancellation"
		if n%2 == 0 {
			if ctx.Err() != nil {
				return n
			}
		}
		n = work(n)
	}
}

// A continue can bypass the select at the bottom of the body.
func continueSkipsPoll(ctx context.Context, ch chan int) int {
	n := 0
	for { // want "without polling cancellation"
		n = work(n)
		if n%3 == 0 {
			continue
		}
		select {
		case <-ctx.Done():
			return n
		case ch <- n:
		}
	}
}

// Sending does not observe cancellation: a send-only loop still spins the
// contract.
func sendIsNotAPoll(ch chan int) {
	n := 0
	for { // want "without polling cancellation"
		n = work(n)
		ch <- n
	}
}

// Load only counts when the receiver names a cancellation flag; "ready"
// does not.
func loadNotStopNamed() {
	n := 0
	for { // want "without polling cancellation"
		if ready.Load() {
			n = work(n)
		}
	}
}

// --- clean shapes ---

// The canonical engine loop: a select in every iteration.
func selectLoop(ctx context.Context, ch chan int) int {
	n := 0
	for {
		select {
		case <-ctx.Done():
			return n
		case v := <-ch:
			n += v
		}
	}
}

// An unconditional ctx.Err check dominates the back-edge.
func errCheckEveryIteration(ctx context.Context) int {
	n := 0
	for {
		if ctx.Err() != nil {
			return n
		}
		n = work(n)
	}
}

// Search.Next polls internally: stepping the iterator is a poll.
func drainSearch(s *match.Search) int {
	n := 0
	for {
		if !s.Next() {
			return n
		}
		n++
	}
}

// The poll hides one in-package call deep; the call-graph summary finds it.
func pollsThroughHelper(ctx context.Context) int {
	n := 0
	for {
		if canceled(ctx) {
			return n
		}
		n = work(n)
	}
}

// A stop-named flag Load is the engine's lock-free cancellation check.
func stopFlagLoop() int {
	n := 0
	for {
		if stopped.Load() {
			return n
		}
		n = work(n)
	}
}

// A call through a function value conservatively counts as a poll.
func dynamicCallConservative(step func() bool) int {
	n := 0
	for {
		if step() {
			return n
		}
		n++
	}
}

// Conditioned and range loops state their own exit: out of scope.
func conditionedLoop(n int) int {
	total := 0
	for total < n {
		total += 2
	}
	return total
}

func rangeOverChannel(ch chan int) int {
	n := 0
	for v := range ch {
		n += v
	}
	return n
}
