// Fixtures for the mutatorerr analyzer: dropped error returns from the
// graph persistence APIs are flagged; checked errors and non-guarded
// packages are not.
package mutatorerr

import (
	"bytes"
	"fmt"
	"os"

	"fixtures/graph"
)

func droppedStatements(w *graph.WAL, f *graph.Frozen, buf *bytes.Buffer) {
	w.Flush()            // want "error result of graph.WAL.Flush is dropped"
	w.Close()            // want "error result of graph.WAL.Close is dropped"
	f.WriteSnapshot(buf) // want "error result of graph.Frozen.WriteSnapshot is dropped"
}

func blankAssigns(w *graph.WAL, base *graph.Frozen, buf *bytes.Buffer) *graph.Delta {
	_ = w.Err() // want "error result of graph.WAL.Err is discarded with _"

	d, _, _ := graph.Recover(base, buf) // want "error result of graph.Recover is discarded with _"

	// Parallel assignment with a guarded call on the rhs.
	var n int
	n, _ = 1, w.Sync() // want "error result of graph.WAL.Sync is discarded with _"
	_ = n
	return d
}

func goAndDefer(w *graph.WAL) {
	go w.Flush()    // want "error result of graph.WAL.Flush is dropped by the go statement"
	defer w.Close() // want "error result of graph.WAL.Close is dropped by the deferred call"
}

// Checked errors are the contract being enforced; none of these flag.
func checkedErrors(base *graph.Frozen, buf *bytes.Buffer) error {
	w, err := graph.OpenWAL("wal.log", graph.NewDelta(base))
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if _, _, err := graph.Recover(base, buf); err != nil {
		return err
	}
	return w.Close()
}

// Only graph/gfdio errors are guarded: dropping errors from other packages
// is left to general-purpose tools.
func otherPackagesNotGuarded(f *os.File) {
	fmt.Fprintln(os.Stdout, "x")
	f.Close()
}

// Error-free graph calls in statement position are fine.
func noErrorResult(d *graph.Delta) {
	d.AddEdge(1, 2, "knows")
}
