// Fixtures for the unused-suppression audit: an //gfdlint:allow directive
// that suppresses a live finding survives; one with nothing beneath it is
// reported (nolintlint-style), so dead suppressions cannot accumulate.
package allowaudit

import "fixtures/graph"

// The directive suppresses a real overlaystale finding: used, not reported.
func usedDirective(d *graph.Delta) int {
	o := d.Overlay()
	d.AddNode("person")
	//gfdlint:allow overlaystale -- this read exercises the staleness panic on purpose
	return o.NumNodes()
}

// Nothing trips overlaystale on the covered lines: the directive is dead.
func unusedDirective(d *graph.Delta) int {
	o := d.Overlay()
	//gfdlint:allow overlaystale -- the read below is fresh, nothing to allow // want "unused //gfdlint:allow directive"
	return o.NumNodes()
}

// A blanket directive with no names is a wildcard; unused ones are flagged
// the same way.
func wildcardUnused() int {
	//gfdlint:allow -- blanket suppression guarding nothing // want "unused //gfdlint:allow directive"
	return 1
}
