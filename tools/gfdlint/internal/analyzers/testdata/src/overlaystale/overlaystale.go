// Fixtures for the overlaystale analyzer: Overlay reads after the backing
// Delta is mutated are flagged (lexically and through loop back-edges);
// re-taking the overlay after the mutation batch is the fix.
package overlaystale

import (
	"bytes"

	"fixtures/graph"
)

func sink(o *graph.Overlay) int { return o.NumNodes() }

func lexicallyStale(d *graph.Delta) int {
	o := d.Overlay()
	d.AddNode("person")
	return o.NumNodes() // want "uses a stale Overlay"
}

// Re-taking the overlay after the mutation batch is the documented fix.
func retakenAfterMutation(d *graph.Delta) int {
	o := d.Overlay()
	d.AddNode("person")
	o = d.Overlay()
	return o.NumNodes()
}

// Mutating through a WAL fronting the same Delta stales the overlay too.
func staleThroughWAL(d *graph.Delta, buf *bytes.Buffer) []graph.NodeID {
	w := graph.NewWAL(buf, d)
	o := d.Overlay()
	w.AddEdge(1, 2, "knows")
	return o.OutByLabel(1, "knows") // want "uses a stale Overlay"
}

// A mutation anywhere in a loop body stales reads in the same body on the
// next iteration, regardless of lexical order.
func staleAcrossIterations(d *graph.Delta) int {
	o := d.Overlay()
	total := 0
	for i := 0; i < 3; i++ {
		total += o.NumNodes() // want "goes stale in this loop"
		d.AddNode("person")
	}
	return total
}

// Re-taking inside the loop keeps every read fresh.
func retakenInsideLoop(d *graph.Delta) int {
	total := 0
	for i := 0; i < 3; i++ {
		d.AddNode("person")
		o := d.Overlay()
		total += o.NumNodes()
	}
	return total
}

// Handing a stale overlay to any call counts as a read.
func passedWhileStale(d *graph.Delta) int {
	o := d.Overlay()
	d.RemoveNode(1)
	return sink(o) // want "passing o uses a stale Overlay"
}

// Delta/Base are meta accessors and stay valid on a stale overlay.
func metaAccessorsStayValid(d *graph.Delta) *graph.Delta {
	o := d.Overlay()
	d.AddNode("person")
	return o.Delta()
}

// Mutate first, take the overlay after: nothing stale.
func takenAfterMutation(d *graph.Delta) int {
	d.AddNode("person")
	o := d.Overlay()
	return o.NumNodes()
}

// Tests asserting the staleness panic are the one legitimate read-after-
// mutate shape; they suppress the finding with the reason inline.
func assertsThePanic(d *graph.Delta) {
	o := d.Overlay()
	d.AddNode("person")
	//gfdlint:allow overlaystale -- this exercises the staleness panic on purpose
	_ = o.NumNodes()
}
