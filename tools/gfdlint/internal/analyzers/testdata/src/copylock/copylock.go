// Fixtures for the copylock analyzer: lock-bearing values copied through
// signatures, containers, and interface boxing.
package copylock

import (
	"fmt"
	"sync"
)

type guarded struct {
	mu   sync.Mutex
	data map[string]int
}

func byValueParam(g guarded) int { // want "parameter of type guarded is passed by value and contains mu.sync.Mutex"
	return len(g.data)
}

func byValueResult() guarded { // want "result of type guarded is passed by value"
	return guarded{}
}

func (g guarded) byValueReceiver() int { // want "receiver of type guarded is passed by value"
	return len(g.data)
}

// Containers of lock-bearing element types copy the lock on every
// send/receive/load even though the declaration looks innocent.
var badChan chan guarded // want "channel of guarded copies mu.sync.Mutex on every send and receive"

var badMap map[string]guarded // want "map with guarded values copies mu.sync.Mutex on every load"

// Boxing a lock-bearing value into an interface copies it.
func boxesIntoInterface(g *guarded) {
	fmt.Println(g.mu) // want "boxes it into an interface"
}

// Pointers never copy the pointee's locks: all clean.
func pointerParam(g *guarded) int { return len(g.data) }

func pointerResult() *guarded { return &guarded{} }

func (g *guarded) pointerReceiver() int { return len(g.data) }

var okChan chan *guarded

var okMap map[string]*guarded

func printsPointer(g *guarded) {
	fmt.Println(g)
}
