// Fixtures for the lockdiscipline analyzer: cond.Wait outside a loop,
// locks held across return, self-deadlock, and the clean shapes the
// executor and Deque actually use.
package lockdiscipline

import "sync"

type queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []int
}

// An if-guarded Wait misses spurious wakeups and the scan-then-sleep race.
func (q *queue) takeIfGuarded() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		q.cond.Wait() // want "sync.Cond.Wait must run in a for loop"
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// The correct shape: Wait in a for loop re-checking the condition.
func (q *queue) takeLooped() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

func (q *queue) returnsWhileHeld(flag bool) int {
	q.mu.Lock()
	if flag {
		return 0 // want "return while q.mu is held"
	}
	q.mu.Unlock()
	return 1
}

func (q *queue) doubleLock() {
	q.mu.Lock()
	q.mu.Lock() // want "locked again while already held"
	q.mu.Unlock()
}

func (q *queue) neverReleased() {
	q.mu.Lock() // want "q.mu is still locked when neverReleased returns"
	q.items = nil
}

// Clean shapes: defer-unlock, branch unlock+return, deferred closure.
func (q *queue) deferUnlock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, 1)
}

func (q *queue) branchUnlockAndReturn(flag bool) int {
	q.mu.Lock()
	if flag {
		q.mu.Unlock()
		return 0
	}
	n := len(q.items)
	q.mu.Unlock()
	return n
}

func (q *queue) deferredClosureUnlock() {
	q.mu.Lock()
	defer func() {
		q.items = nil
		q.mu.Unlock()
	}()
	q.items = append(q.items, 2)
}

// Functions whose name says "lock" intentionally return holding the lock.
func (q *queue) lockAll() {
	q.mu.Lock()
}

func (q *queue) unlockAll() {
	q.mu.Unlock()
}
