// Fixtures for the shadow analyzer: inner := declarations that shadow a
// function-local variable read again after the inner scope ends.
package shadow

func fetch() (int, error)        { return 1, nil }
func compute(n int) (int, error) { return n, nil }
func process(n int)              {}

func reusedAfterShadow(vals []int) int {
	total := 0
	limit := 10
	if len(vals) > 0 {
		limit := len(vals) // want "shadows the variable declared at"
		total += limit
	}
	return total + limit
}

// The classic err shadow: the outer err returned below silently misses the
// inner failure.
func errShadow() error {
	data, err := fetch()
	if data > 0 {
		result, err := compute(data) // want "shadows the variable declared at"
		process(result)
		process(len(errString(err)))
	}
	return err
}

func errString(err error) string {
	if err != nil {
		return err.Error()
	}
	return ""
}

// The idiomatic guard forms are self-delimiting and exempt.
func guardFormExempt(m map[string]int) int {
	v := 1
	if v, ok := m["k"]; ok {
		return v
	}
	return v
}

// Shadowing is harmless when the outer variable is never read afterwards.
func deadAfterScope(vals []int) {
	n := len(vals)
	process(n)
	{
		n := 0
		process(n)
	}
}
