// Fixture module for gfdlint's analyzer tests. It is a standalone module
// (not in the repo workspace; tests load it with GOWORK=off) so fixtures
// can reference a stub "graph" package whose import path ends in /graph,
// which is how the contract analyzers recognise the real repro/internal/graph.
module fixtures

go 1.22
