// Fixture for hotalloc's mechanical -fix: the plain-reassignment shape
// `buf = r.CandidateNodes(l)` rewrites to AppendCandidates(buf[:0], l).
// fix.go.golden holds the expected output.
package hotallocfix

import "fixtures/graph"

func reusableBuffer(f *graph.Frozen, labels []string) int {
	total := 0
	var buf []graph.NodeID
	for _, l := range labels {
		buf = f.CandidateNodes(l) // want "allocates a fresh copy every loop iteration"
		total += len(buf)
	}
	return total
}

// The := shape needs the buffer hoisted by hand: flagged, but no auto-fix.
func freshDeclareEachIteration(f *graph.Frozen, labels []string) int {
	total := 0
	for _, l := range labels {
		cands := f.CandidateNodes(l) // want "allocates a fresh copy every loop iteration"
		total += len(cands)
	}
	return total
}
