// Fixtures for the goroisolate analyzer: engine goroutines whose body can
// panic need a deferred recover() guard at entry, and every goroutine needs
// a join or release path (WaitGroup.Done, a channel operation, a condvar).
package goroisolate

import (
	"context"
	"sync"
)

// Indexing can panic and there is no guard; the Done defer is not a guard.
func riskyNoGuard(wg *sync.WaitGroup, xs []int, out chan int) {
	wg.Add(1)
	go func() { // want "installs no recover"
		defer wg.Done()
		out <- xs[0]
	}()
}

// Guarded but orphaned: nothing ever observes this goroutine finishing.
func guardedNoJoin(xs []int) {
	go func() { // want "no join or release path"
		defer func() { recover() }()
		xs[0] = 1
	}()
}

// The guard must come before the first statement that can panic.
func guardTooLate(xs []int, out chan int) {
	go func() { // want "installs no recover"
		x := xs[0]
		defer func() { recover() }()
		out <- x
	}()
}

// pump can panic (slice index) and installs no guard; the can-panic
// summary crosses the named-function boundary.
func pump(xs []int, out chan int) {
	for _, i := range []int{0, 1} {
		out <- xs[i]
	}
}

func namedPump(xs []int, out chan int) {
	go pump(xs, out) // want "installs no recover"
}

// Both contracts violated at once: two findings on one statement.
func doublyBad(m map[string]int) {
	go func() { // want "installs no recover" "no join or release path"
		m["k"] = 1
	}()
}

// --- clean shapes ---

// The engine worker shape: Done defer first (it runs after the panic
// anyway), recover guard second, real work after — joined via WaitGroup.
func fullWorker(wg *sync.WaitGroup, xs []int, out chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				out <- -1
			}
		}()
		for i := range xs {
			out <- xs[i]
		}
	}()
}

// Provably panic-free coordination needs no guard; the receive and close
// are its join evidence.
func watcher(ctx context.Context, stop chan struct{}) {
	go func() {
		<-ctx.Done()
		close(stop)
	}()
}

// The closer pairs a Wait with a close: panic-free and joined.
func closer(wg *sync.WaitGroup, out chan int) {
	go func() {
		wg.Wait()
		close(out)
	}()
}

// A dynamic target has no in-package body to check: out of reach by design.
func dynamicTarget(f func()) {
	go f()
}
