// Package match is a stub of repro/internal/match with the iterator shape
// ctxpoll keys on: Search.Next/Err poll cancellation internally (budgeted),
// so stepping the iterator counts as a poll.
package match

type Search struct{ done bool }

func (s *Search) Next() bool { return !s.done }
func (s *Search) Err() error { return nil }
