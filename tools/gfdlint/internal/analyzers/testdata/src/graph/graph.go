// Package graph is a stub of repro/internal/graph with the method shapes
// the contract analyzers key on: Reader copy-contract methods, Mutator and
// WAL error returns, and the Delta/Overlay pairing. Bodies are trivial —
// only signatures and declaring-package identity matter to the analyzers.
package graph

import "io"

type NodeID uint32

// Frozen mimics the immutable CSR snapshot.
type Frozen struct{ n int }

func (f *Frozen) NumNodes() int                        { return f.n }
func (f *Frozen) CandidateNodes(label string) []NodeID { return nil }
func (f *Frozen) NodesByLabel(label string) []NodeID   { return nil }
func (f *Frozen) AppendCandidates(dst []NodeID, label string) []NodeID {
	return dst
}
func (f *Frozen) WriteSnapshot(w io.Writer) error { return nil }

// Remap mimics the node-ID remapping a compaction produces.
type Remap []NodeID

// RefreezeOptions mimics the compaction policy knob.
type RefreezeOptions struct{ CompactThreshold float64 }

func (f *Frozen) Refreeze(d *Delta) *Frozen { return &Frozen{} }
func (f *Frozen) RefreezeOpts(d *Delta, opt RefreezeOptions) (*Frozen, Remap) {
	return &Frozen{}, nil
}
func (f *Frozen) Compact() (*Frozen, Remap) { return &Frozen{}, nil }

// Delta mimics the mutable overlay log.
type Delta struct{ version uint64 }

func NewDelta(base *Frozen) *Delta { return &Delta{} }

func (d *Delta) AddNode(label string) NodeID { d.version++; return 0 }
func (d *Delta) AddNodeWithAttrs(label string, attrs map[string]string) NodeID {
	d.version++
	return 0
}
func (d *Delta) SetAttr(v NodeID, key, val string)        { d.version++ }
func (d *Delta) AddEdge(from, to NodeID, label string)    { d.version++ }
func (d *Delta) RemoveEdge(from, to NodeID, label string) { d.version++ }
func (d *Delta) RemoveNode(v NodeID)                      { d.version++ }
func (d *Delta) Overlay() *Overlay                        { return &Overlay{d: d} }

// Overlay mimics the version-pinned read view; Reader methods panic when
// the backing Delta has been mutated since the overlay was taken.
type Overlay struct{ d *Delta }

func (o *Overlay) NumNodes() int                              { return 0 }
func (o *Overlay) OutByLabel(v NodeID, label string) []NodeID { return nil }
func (o *Overlay) CandidateNodes(label string) []NodeID       { return nil }
func (o *Overlay) Delta() *Delta                              { return o.d }
func (o *Overlay) Base() *Frozen                              { return nil }

// WAL mimics the write-ahead log fronting a Delta.
type WAL struct{ d *Delta }

func NewWAL(w io.Writer, d *Delta) *WAL              { return &WAL{d: d} }
func OpenWAL(path string, d *Delta) (*WAL, error)    { return &WAL{d: d}, nil }
func (l *WAL) AddNode(label string) NodeID           { return l.d.AddNode(label) }
func (l *WAL) AddEdge(from, to NodeID, label string) { l.d.AddEdge(from, to, label) }
func (l *WAL) Err() error                            { return nil }
func (l *WAL) Flush() error                          { return nil }
func (l *WAL) Sync() error                           { return nil }
func (l *WAL) Close() error                          { return nil }

func Recover(base *Frozen, r io.Reader) (*Delta, int, error) { return &Delta{}, 0, nil }
func ReadSnapshot(r io.Reader) (*Frozen, error)              { return &Frozen{}, nil }
