// Fixtures for the nilness analyzer: dereferences on the branch where a
// nil check just proved the value nil.
package nilness

type node struct {
	next *node
	val  int
}

func derefInNilBranch(p *node) int {
	if p == nil {
		return p.val // want "field or method access of .p., which the branch condition proved nil"
	}
	return p.val
}

func indirectionInNilBranch(p *node) node {
	if nil == p {
		return *p // want "indirection of .p., which the branch condition proved nil"
	}
	return *p
}

func indexInNilBranch(s []int) int {
	if s == nil {
		return s[0] // want "index of .s., which the branch condition proved nil"
	}
	return s[0]
}

func mapWriteInNilBranch(m map[string]int) {
	if m == nil {
		m["k"] = 1 // want "map write of .m., which the branch condition proved nil"
	}
}

func derefInElseOfNotNil(p *node) int {
	if p != nil {
		return p.val
	} else {
		return p.val // want "field or method access of .p., which the branch condition proved nil"
	}
}

// Reassigning inside the branch ends tracking: clean.
func reassignedBeforeDeref(p *node) int {
	if p == nil {
		p = &node{}
		return p.val
	}
	return p.val
}

// Map reads on a nil map are defined; only writes panic.
func mapReadIsFine(m map[string]int) int {
	if m == nil {
		return m["k"]
	}
	return m["k"]
}
