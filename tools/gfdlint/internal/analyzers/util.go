// Package analyzers holds gfdlint's project-specific checks. Each analyzer
// mechanically enforces one contract that DESIGN.md previously stated only
// in prose; see the Doc string on each for the contract and the fix.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/gfdlint/internal/lint"
)

// All returns every gfdlint analyzer: the contract checks plus the bundled
// general-purpose passes.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		HotAlloc,
		MutatorErr,
		OverlayStale,
		EpochFlow,
		CtxPoll,
		GoroIsolate,
		LockDiscipline,
		CopyLock,
		Shadow,
		Nilness,
	}
}

// calleeFunc resolves the function or method a call invokes, nil when the
// call is a conversion or the callee is not a plain func/method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// declPkgMatches reports whether fn is declared in a package whose import
// path is one of names or ends in "/"+name — so "graph" matches the real
// repro/internal/graph and the fixtures/graph stub alike.
func declPkgMatches(fn *types.Func, names ...string) bool {
	p := fn.Pkg()
	if p == nil {
		return false
	}
	path := p.Path()
	for _, n := range names {
		if path == n || strings.HasSuffix(path, "/"+n) {
			return true
		}
	}
	return false
}

// pkgEnabled reports whether an analyzed package path is covered by the
// comma-separated suffix list ("*" covers everything).
func pkgEnabled(path, suffixes string) bool {
	for _, s := range strings.Split(suffixes, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if s == "*" || path == s || strings.HasSuffix(path, "/"+s) || strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// recvIdent returns the receiver identifier of a method call x.M(...),
// nil when the receiver is not a simple identifier.
func recvIdent(call *ast.CallExpr) *ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return id
}

// errorResultIndexes returns the result positions of fn typed `error`.
func errorResultIndexes(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			out = append(out, i)
		}
	}
	return out
}

// syncMethod resolves a call to a method declared in package sync,
// returning the method and the receiver expression text used as the lock
// identity key.
func syncMethod(info *types.Info, call *ast.CallExpr) (fn *types.Func, key string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return fn, types.ExprString(ast.Unparen(sel.X)), true
}

// recvNamed returns the name of fn's receiver's named type ("" for
// functions).
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
