package analyzers

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/tools/gfdlint/internal/cfg"
	"repro/tools/gfdlint/internal/dataflow"
	"repro/tools/gfdlint/internal/lint"
)

// LockDiscipline enforces the locking rules the work-stealing executor
// (core/parallel.go, cluster.Deque) relies on:
//
//   - sync.Cond.Wait must be called directly inside a for loop that
//     re-checks the wait condition — an `if` guard misses spurious wakeups
//     and the scan-then-sleep race the executor's seq handshake closes.
//   - a sync.Mutex/RWMutex locked in a function must be released on every
//     path: a `return` while the lock is held (and no defer-unlock is
//     registered) is reported, as is falling off the end of the function
//     and re-locking a held mutex (self-deadlock).
//
// The release rule runs a forward dataflow over the function's CFG: the
// fact is the set of held lock keys ("mu", "st.mu", ...) with their
// acquisition sites; paths joining with divergent lock state stop tracking
// the divergent keys (no report) rather than guess.
var LockDiscipline = &lint.Analyzer{
	Name: "lockdiscipline",
	Doc:  "flags cond.Wait outside a loop and locks not released on all paths",
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *lint.Pass) {
	for _, f := range pass.Files {
		// Condvar rule, over the whole file.
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, _, ok := syncMethod(pass.Info, call)
			if !ok || fn.Name() != "Wait" || recvNamed(fn) != "Cond" {
				return true
			}
			if !waitDirectlyInFor(stack) {
				pass.Reportf(call.Pos(), "sync.Cond.Wait must run in a for loop re-checking its condition (spurious wakeups; see the executor's seq handshake in core/parallel.go)")
			}
			return true
		})

		// Lock-release rule, one function (or function literal) at a time.
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch fd := n.(type) {
			case *ast.FuncDecl:
				if fd.Body != nil {
					checkLockPaths(pass, fd.Name.Name, fd.Body)
				}
			case *ast.FuncLit:
				checkLockPaths(pass, "func literal", fd.Body)
			}
			return true
		})
	}
}

// waitDirectlyInFor reports whether the Wait call's nearest non-block
// ancestor statement is a for loop.
func waitDirectlyInFor(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ExprStmt, *ast.BlockStmt, *ast.LabeledStmt:
			continue
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		default:
			return false
		}
	}
	return false
}

// ldFact maps a held lock key to its acquisition position. nil is the
// lattice bottom (block not yet reached); an empty non-nil map means "no
// locks held".
type ldFact map[string]token.Pos

func checkLockPaths(pass *lint.Pass, name string, body *ast.BlockStmt) {
	g := cfg.New(body)

	// Deferred unlocks release on every path; registration is treated
	// flow-insensitively (a conditional defer still clears the key, exactly
	// as the pre-CFG walker did).
	deferred := map[string]bool{}
	for _, d := range g.Defers {
		markDeferredUnlocks(pass, d.Call, deferred)
	}

	// Keys whose state diverged at some join: tracked but never reported.
	// Populated after solving, consulted by the report pass.
	dead := map[string]bool{}

	join := func(a, b ldFact) ldFact {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		out := make(ldFact, len(a)+len(b))
		for k, pa := range a {
			if pb, ok := b[k]; ok && pb < pa {
				pa = pb
			}
			out[k] = pa
		}
		for k, pb := range b {
			if _, ok := a[k]; !ok {
				out[k] = pb
			}
		}
		return out
	}
	equal := func(a, b ldFact) bool {
		if (a == nil) != (b == nil) || len(a) != len(b) {
			return false
		}
		for k, pa := range a {
			if pb, ok := b[k]; !ok || pa != pb {
				return false
			}
		}
		return true
	}

	// transfer interprets one block; report is nil while solving and set
	// during the report pass.
	transfer := func(b *cfg.Block, in ldFact, report func(kind string, pos token.Pos, key string, lockPos token.Pos)) ldFact {
		if in == nil {
			return nil
		}
		out := in
		cloned := false
		set := func(k string, p token.Pos) {
			if !cloned {
				out, cloned = out.clone(), true
			}
			out[k] = p
		}
		del := func(k string) {
			if _, ok := out[k]; !ok {
				return
			}
			if !cloned {
				out, cloned = out.clone(), true
			}
			delete(out, k)
		}
		for _, n := range b.Nodes {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				fn, key, ok := syncMethod(pass.Info, call)
				if !ok {
					continue
				}
				switch fn.Name() {
				case "Lock":
					if pos, held := out[key]; held && !dead[key] && report != nil {
						report("relock", call.Pos(), key, pos)
					}
					set(key, call.Pos())
				case "RLock":
					// Read locks nest across goroutines but not within one
					// holder; track release only.
					set(key, call.Pos())
				case "Unlock", "RUnlock":
					del(key)
				}
			case *ast.ReturnStmt:
				if report != nil {
					for _, key := range sortedKeys(out) {
						if !dead[key] && !deferred[key] {
							report("return", s.Pos(), key, out[key])
						}
					}
				}
			}
		}
		return out
	}

	res := dataflow.Solve(g, dataflow.Spec[ldFact]{
		Dir:      dataflow.Forward,
		Boundary: ldFact{},
		Init:     nil,
		Join:     join,
		Transfer: func(b *cfg.Block, in ldFact) ldFact { return transfer(b, in, nil) },
		Equal:    equal,
	})

	// Keys whose state diverges at a real join point stop being tracked (no
	// report) rather than guessed at. The Exit block is not a real join:
	// paths meeting there are already past their returns, and a
	// returned-while-held path must not be whitewashed by a clean sibling.
	for _, b := range g.Blocks {
		if b == g.Exit || len(b.Preds) < 2 {
			continue
		}
		union := map[string]bool{}
		live := 0
		for _, p := range b.Preds {
			if res.Out[p] == nil {
				continue // unreachable predecessor: contributes nothing
			}
			live++
			for k := range res.Out[p] {
				union[k] = true
			}
		}
		if live < 2 {
			continue
		}
		for _, p := range b.Preds {
			if res.Out[p] == nil {
				continue
			}
			for k := range union {
				if _, ok := res.Out[p][k]; !ok {
					dead[k] = true
				}
			}
		}
	}

	type reportKey struct {
		pos token.Pos
		key string
	}
	reported := map[reportKey]bool{}
	report := func(kind string, pos token.Pos, key string, lockPos token.Pos) {
		if reported[reportKey{pos, key}] {
			return
		}
		reported[reportKey{pos, key}] = true
		switch kind {
		case "relock":
			pass.Reportf(pos, "%s is locked again while already held (locked at %s): self-deadlock", key, pass.Fset.Position(lockPos))
		case "return":
			pass.Reportf(pos, "return while %s is held (locked at %s); unlock before returning or defer the unlock", key, pass.Fset.Position(lockPos))
		}
	}
	for _, b := range g.Blocks {
		transfer(b, res.In[b], report)
	}

	// Falling off the end of the function with a lock held. Intentional
	// lock-helper shapes (lockAll and friends) keep the lock on return.
	if strings.Contains(strings.ToLower(name), "lock") {
		return
	}
	fellOff := map[string]token.Pos{}
	for _, p := range g.Exit.Preds {
		if fallsOff(p) && res.Out[p] != nil {
			for key, pos := range res.Out[p] {
				if !dead[key] && !deferred[key] {
					if old, ok := fellOff[key]; !ok || pos < old {
						fellOff[key] = pos
					}
				}
			}
		}
	}
	for _, key := range sortedKeys(fellOff) {
		pass.Reportf(fellOff[key], "%s is still locked when %s returns; unlock on every path or defer the unlock", key, name)
	}
}

func (f ldFact) clone() ldFact {
	c := make(ldFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func sortedKeys(f ldFact) []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fallsOff reports whether a predecessor of Exit reaches it by running past
// the last statement rather than through return/panic.
func fallsOff(b *cfg.Block) bool {
	if len(b.Nodes) == 0 {
		return true
	}
	switch last := b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return false
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok && cfg.IsTerminalCall(call) {
			return false
		}
	}
	return true
}

// markDeferredUnlocks handles `defer mu.Unlock()` and `defer func() { ...
// mu.Unlock() ... }()`.
func markDeferredUnlocks(pass *lint.Pass, call *ast.CallExpr, deferred map[string]bool) {
	if fn, key, ok := syncMethod(pass.Info, call); ok && (fn.Name() == "Unlock" || fn.Name() == "RUnlock") {
		deferred[key] = true
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if fn, key, ok := syncMethod(pass.Info, c); ok && (fn.Name() == "Unlock" || fn.Name() == "RUnlock") {
					deferred[key] = true
				}
			}
			return true
		})
	}
}
