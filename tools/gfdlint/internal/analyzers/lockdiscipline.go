package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/tools/gfdlint/internal/lint"
)

// LockDiscipline enforces the locking rules the work-stealing executor
// (core/parallel.go, cluster.Deque) relies on:
//
//   - sync.Cond.Wait must be called directly inside a for loop that
//     re-checks the wait condition — an `if` guard misses spurious wakeups
//     and the scan-then-sleep race the executor's seq handshake closes.
//   - a sync.Mutex/RWMutex locked in a function must be released on every
//     path: a `return` while the lock is held (and no defer-unlock is
//     registered) is reported, as is falling off the end of the function
//     and re-locking a held mutex (self-deadlock).
//
// The path check is a conservative per-block scan: branches that diverge
// in lock state stop tracking (no report) rather than guess.
var LockDiscipline = &lint.Analyzer{
	Name: "lockdiscipline",
	Doc:  "flags cond.Wait outside a loop and locks not released on all paths",
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *lint.Pass) {
	for _, f := range pass.Files {
		// Condvar rule, over the whole file.
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, _, ok := syncMethod(pass.Info, call)
			if !ok || fn.Name() != "Wait" || recvNamed(fn) != "Cond" {
				return true
			}
			if !waitDirectlyInFor(stack) {
				pass.Reportf(call.Pos(), "sync.Cond.Wait must run in a for loop re-checking its condition (spurious wakeups; see the executor's seq handshake in core/parallel.go)")
			}
			return true
		})

		// Lock-release rule, one function (or function literal) at a time.
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch fd := n.(type) {
			case *ast.FuncDecl:
				if fd.Body != nil {
					checkLockPaths(pass, fd.Name.Name, fd.Body)
				}
			case *ast.FuncLit:
				checkLockPaths(pass, "func literal", fd.Body)
			}
			return true
		})
	}
}

// waitDirectlyInFor reports whether the Wait call's nearest non-block
// ancestor statement is a for loop.
func waitDirectlyInFor(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ExprStmt, *ast.BlockStmt, *ast.LabeledStmt:
			continue
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		default:
			return false
		}
	}
	return false
}

// lockState tracks, per lock key ("mu", "st.mu", ...), where it was
// acquired. Keys in dead are no longer tracked (branch-divergent state).
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool
	dead     map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}, dead: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	for k := range s.dead {
		c.dead[k] = true
	}
	return c
}

func (s *lockState) sameHeld(o *lockState) bool {
	if len(s.held) != len(o.held) {
		return false
	}
	for k := range s.held {
		if _, ok := o.held[k]; !ok {
			return false
		}
	}
	return true
}

func checkLockPaths(pass *lint.Pass, name string, body *ast.BlockStmt) {
	st := newLockState()
	walkLockStmts(pass, body.List, st)
	for key, pos := range st.held {
		if st.dead[key] || st.deferred[key] {
			continue
		}
		// Intentional lock-helper shapes keep the lock on return.
		if strings.Contains(strings.ToLower(name), "lock") {
			continue
		}
		pass.Reportf(pos, "%s is still locked when %s returns; unlock on every path or defer the unlock", key, name)
	}
}

// walkLockStmts interprets a statement list, updating st and reporting
// returns that leave a tracked lock held. Nested function literals are
// separate units and are skipped here (the FuncLit case of the outer walk
// picks them up).
func walkLockStmts(pass *lint.Pass, stmts []ast.Stmt, st *lockState) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, key, ok := syncMethod(pass.Info, call)
			if !ok {
				continue
			}
			switch fn.Name() {
			case "Lock":
				if pos, held := st.held[key]; held && !st.dead[key] {
					pass.Reportf(call.Pos(), "%s is locked again while already held (locked at %s): self-deadlock", key, pass.Fset.Position(pos))
				}
				st.held[key] = call.Pos()
			case "RLock":
				// Read locks nest across goroutines but not within one
				// holder; track release only.
				st.held[key] = call.Pos()
			case "Unlock", "RUnlock":
				delete(st.held, key)
			}
		case *ast.DeferStmt:
			markDeferredUnlocks(pass, s.Call, st)
		case *ast.ReturnStmt:
			reportHeldAt(pass, s.Pos(), st, "return")
		case *ast.BranchStmt:
			// break/continue/goto leave the block; treat like return for
			// loops is too strict (the next iteration may unlock), so only
			// goto out of a held region is ignored conservatively.
		case *ast.BlockStmt:
			walkLockStmts(pass, s.List, st)
		case *ast.LabeledStmt:
			walkLockStmts(pass, []ast.Stmt{s.Stmt}, st)
		case *ast.IfStmt:
			walkLockBranch(pass, s.Body.List, st)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				walkLockBranch(pass, e.List, st)
			case *ast.IfStmt:
				walkLockBranch(pass, []ast.Stmt{e}, st)
			}
		case *ast.ForStmt:
			walkLockBranch(pass, s.Body.List, st)
		case *ast.RangeStmt:
			walkLockBranch(pass, s.Body.List, st)
		case *ast.SwitchStmt:
			walkCaseClauses(pass, s.Body, st)
		case *ast.TypeSwitchStmt:
			walkCaseClauses(pass, s.Body, st)
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkLockBranch(pass, cc.Body, st)
				}
			}
		}
	}
}

func walkCaseClauses(pass *lint.Pass, body *ast.BlockStmt, st *lockState) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			walkLockBranch(pass, cc.Body, st)
		}
	}
}

// walkLockBranch interprets a conditional branch: the branch body is
// checked with a clone of the current state, and if the branch falls
// through with a different set of held locks than it entered with, the
// affected keys stop being tracked rather than guessed at.
func walkLockBranch(pass *lint.Pass, stmts []ast.Stmt, st *lockState) {
	c := st.clone()
	walkLockStmts(pass, stmts, c)
	for k := range c.deferred {
		st.deferred[k] = true
	}
	if terminates(stmts) {
		return // the branch never falls through; its lock state is moot
	}
	if !c.sameHeld(st) {
		for k := range st.held {
			if _, ok := c.held[k]; !ok {
				st.dead[k] = true
			}
		}
		for k := range c.held {
			if _, ok := st.held[k]; !ok {
				st.dead[k] = true
				st.held[k] = c.held[k]
			}
		}
	}
	for k := range c.dead {
		st.dead[k] = true
	}
}

// terminates reports whether a statement list always diverges: ends in
// return, branch, panic, or a *Fatal*/Exit call.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "panic" || strings.Contains(fun.Name, "Fatal") || strings.HasPrefix(fun.Name, "fatal")
		case *ast.SelectorExpr:
			n := fun.Sel.Name
			return strings.Contains(n, "Fatal") || n == "Exit" || n == "Goexit"
		}
	}
	return false
}

func reportHeldAt(pass *lint.Pass, pos token.Pos, st *lockState, what string) {
	for key, lockPos := range st.held {
		if st.dead[key] || st.deferred[key] {
			continue
		}
		pass.Reportf(pos, "%s while %s is held (locked at %s); unlock before returning or defer the unlock",
			what, key, pass.Fset.Position(lockPos))
	}
}

// markDeferredUnlocks handles `defer mu.Unlock()` and `defer func() { ...
// mu.Unlock() ... }()`.
func markDeferredUnlocks(pass *lint.Pass, call *ast.CallExpr, st *lockState) {
	if fn, key, ok := syncMethod(pass.Info, call); ok && (fn.Name() == "Unlock" || fn.Name() == "RUnlock") {
		st.deferred[key] = true
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if fn, key, ok := syncMethod(pass.Info, c); ok && (fn.Name() == "Unlock" || fn.Name() == "RUnlock") {
					st.deferred[key] = true
				}
			}
			return true
		})
	}
}
