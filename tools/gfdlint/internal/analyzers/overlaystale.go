package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/gfdlint/internal/lint"
)

// OverlayStale enforces the "stale overlays panic instead of lying"
// contract (delta.go): a graph.Overlay pins the Delta version it was taken
// at, and every Reader method panics once the backing Delta has been
// mutated. The analyzer performs an intra-function flow check: after a
// mutation of a Delta (directly or through a WAL fronting it), any Reader
// call on — or use as a call argument of — an Overlay previously taken
// from that Delta is reported; the fix is re-taking d.Overlay() after the
// mutation batch. Inside a loop, a mutation anywhere in the body flags
// overlay reads in the same body (the panic fires on the next iteration)
// unless the overlay is re-taken inside the loop.
var OverlayStale = &lint.Analyzer{
	Name: "overlaystale",
	Doc:  "flags Overlay reads after a mutation of the backing Delta (runtime panic, caught at compile time)",
	Run:  runOverlayStale,
}

// deltaMutators are the graph.Mutator methods that bump a Delta's version.
var deltaMutators = map[string]bool{
	"AddNode":          true,
	"AddNodeWithAttrs": true,
	"SetAttr":          true,
	"AddEdge":          true,
	"RemoveEdge":       true,
	"RemoveNode":       true,
}

// overlay accessors that stay valid on a stale overlay.
var overlayMetaMethods = map[string]bool{"Delta": true, "Base": true}

type ovEventKind int

const (
	evCreate ovEventKind = iota // o := d.Overlay()
	evAlias                     // w := graph.NewWAL(_, d) / graph.OpenWAL(_, d)
	evMutate                    // d.AddEdge(...) or w.AddEdge(...)
	evRead                      // o.AnyReaderMethod(...) or f(o)
)

type ovEvent struct {
	kind  ovEventKind
	pos   token.Pos
	obj   types.Object // overlay var (create/read), delta var (mutate), wal var (alias)
	delta types.Object // backing delta var (create/alias)
	loops []ast.Node   // enclosing loop statements, outermost first
	what  string       // display text for reads
}

func runOverlayStale(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkOverlayFunc(pass, fd.Body)
			}
		}
	}
}

func checkOverlayFunc(pass *lint.Pass, body *ast.BlockStmt) {
	events := collectOverlayEvents(pass, body)

	// Pass 1: lexical order. A read is stale when the backing delta's last
	// mutation falls after the overlay's (re-)creation and before the read.
	lastMut := map[types.Object]token.Pos{}
	created := map[types.Object]*ovEvent{} // overlay var -> creation event
	aliases := map[types.Object]types.Object{}
	reported := map[token.Pos]bool{}
	for i := range events {
		ev := &events[i]
		switch ev.kind {
		case evCreate:
			created[ev.obj] = ev
		case evAlias:
			aliases[ev.obj] = ev.delta
		case evMutate:
			d := ev.obj
			if a, ok := aliases[d]; ok {
				d = a
			}
			lastMut[d] = ev.pos
			ev.delta = d
		case evRead:
			c, ok := created[ev.obj]
			if !ok {
				continue
			}
			if m, ok := lastMut[c.delta]; ok && m > c.pos && m < ev.pos && !reported[ev.pos] {
				reported[ev.pos] = true
				pass.Reportf(ev.pos, "%s uses a stale Overlay: its backing Delta was mutated at %s after the overlay was taken; Overlay methods panic on a stale snapshot — re-take Overlay() after the mutation batch",
					ev.what, pass.Fset.Position(m))
			}
		}
	}

	// Pass 2: loop bodies. A mutation anywhere in a loop body staleness-
	// poisons reads in the same body on the next iteration, regardless of
	// lexical order, unless the overlay is re-created inside that loop.
	for i := range events {
		read := &events[i]
		if read.kind != evRead || reported[read.pos] {
			continue
		}
		c, ok := created[read.obj]
		if !ok {
			continue
		}
		for _, loop := range read.loops {
			if containsNode(c.loops, loop) {
				continue // re-created inside this loop: fresh each iteration
			}
			for j := range events {
				mut := &events[j]
				if mut.kind == evMutate && mut.delta == c.delta && containsNode(mut.loops, loop) {
					reported[read.pos] = true
					pass.Reportf(read.pos, "%s uses an Overlay that goes stale in this loop: the backing Delta is mutated at %s in the same loop body; re-take Overlay() inside the loop after mutating",
						read.what, pass.Fset.Position(mut.pos))
					break
				}
			}
			if reported[read.pos] {
				break
			}
		}
	}
}

func containsNode(loops []ast.Node, n ast.Node) bool {
	for _, l := range loops {
		if l == n {
			return true
		}
	}
	return false
}

func collectOverlayEvents(pass *lint.Pass, body *ast.BlockStmt) []ovEvent {
	var events []ovEvent
	overlayVars := map[types.Object]bool{}

	// Creation/alias sites first, so reads of overlay vars declared later
	// in the file (closures) classify correctly during the event walk.
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(asg.Lhs) {
				continue
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !declPkgMatches(fn, "graph") {
				continue
			}
			if fn.Name() == "Overlay" && recvNamed(fn) == "Delta" {
				if lhs, ok := asg.Lhs[i].(*ast.Ident); ok && lhs.Name != "_" {
					overlayVars[identObj(pass.Info, lhs)] = true
				}
			}
		}
		return true
	})

	lint.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(s.Lhs) {
					continue
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || !declPkgMatches(fn, "graph") {
					continue
				}
				lhs, ok := s.Lhs[i].(*ast.Ident)
				if !ok || lhs.Name == "_" {
					continue
				}
				switch {
				case fn.Name() == "Overlay" && recvNamed(fn) == "Delta":
					if recv := recvIdent(call); recv != nil {
						events = append(events, ovEvent{kind: evCreate, pos: call.Pos(),
							obj: identObj(pass.Info, lhs), delta: identObj(pass.Info, recv), loops: loopsOf(stack)})
					}
				case (fn.Name() == "NewWAL" || fn.Name() == "OpenWAL") && len(call.Args) == 2:
					if d, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok {
						events = append(events, ovEvent{kind: evAlias, pos: call.Pos(),
							obj: identObj(pass.Info, lhs), delta: identObj(pass.Info, d), loops: loopsOf(stack)})
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, s)
			if fn != nil && declPkgMatches(fn, "graph") {
				if recv := recvIdent(s); recv != nil {
					obj := identObj(pass.Info, recv)
					if deltaMutators[fn.Name()] && !overlayVars[obj] {
						events = append(events, ovEvent{kind: evMutate, pos: s.Pos(), obj: obj, loops: loopsOf(stack)})
					}
					if overlayVars[obj] && !overlayMetaMethods[fn.Name()] {
						events = append(events, ovEvent{kind: evRead, pos: s.Pos(), obj: obj, loops: loopsOf(stack),
							what: recv.Name + "." + fn.Name()})
					}
				}
			}
			// Handing a (possibly stale) overlay to any call counts as a
			// read: the callee will hit Reader methods.
			for _, arg := range s.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := identObj(pass.Info, id); overlayVars[obj] {
						events = append(events, ovEvent{kind: evRead, pos: id.Pos(), obj: obj, loops: loopsOf(stack),
							what: "passing " + id.Name})
					}
				}
			}
		}
		return true
	})
	return events
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func loopsOf(stack []ast.Node) []ast.Node {
	var loops []ast.Node
	for i, n := range stack {
		switch s := n.(type) {
		case *ast.ForStmt:
			if i+1 < len(stack) && stack[i+1] == s.Body {
				loops = append(loops, n)
			}
		case *ast.RangeStmt:
			if i+1 < len(stack) && stack[i+1] == s.Body {
				loops = append(loops, n)
			}
		}
	}
	return loops
}
