package analyzers

import (
	"go/ast"
	"go/types"

	"repro/tools/gfdlint/internal/lint"
)

// OverlayStale enforces the "stale overlays panic instead of lying"
// contract (delta.go): a graph.Overlay pins the Delta version it was taken
// at, and every Reader method panics once the backing Delta has been
// mutated. The analyzer runs the shared staleness-flow engine (ovflow.go)
// over each function's CFG: a mutation of a Delta (directly or through a
// WAL fronting it) stales every overlay fact bound to that Delta on every
// path — including around loop back-edges, where a mutation later in the
// body reaches reads earlier in the body on the next iteration — and any
// Reader call on, or argument use of, a stale overlay is reported. The fix
// is re-taking d.Overlay() after the mutation batch; re-taking inside a
// loop clears the fact for that iteration.
var OverlayStale = &lint.Analyzer{
	Name: "overlaystale",
	Doc:  "flags Overlay reads after a mutation of the backing Delta (runtime panic, caught at compile time)",
	Run:  runOverlayStale,
}

// deltaMutators are the graph.Mutator methods that bump a Delta's version.
var deltaMutators = map[string]bool{
	"AddNode":          true,
	"AddNodeWithAttrs": true,
	"SetAttr":          true,
	"AddEdge":          true,
	"RemoveEdge":       true,
	"RemoveNode":       true,
}

// overlay accessors that stay valid on a stale overlay.
var overlayMetaMethods = map[string]bool{"Delta": true, "Base": true}

func runOverlayStale(pass *lint.Pass) {
	walOf, _ := collectGraphBindings(pass.Files, pass.Info)
	a := &ovAnalysis{pass: pass}
	a.events = func(n ast.Node, emit func(ovEvent)) {
		ovAssignEvents(pass.Info, n, emit)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		ovReadEvents(pass.Info, call, emit)
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !declPkgMatches(fn, "graph") || !deltaMutators[fn.Name()] {
			return
		}
		recv := recvIdent(call)
		if recv == nil {
			return
		}
		d := identObj(pass.Info, recv)
		if isWALObj(d) {
			d = walOf[d]
		}
		if isDeltaObj(d) {
			emit(ovEvent{kind: ovMutate, pos: call.Pos(), delta: d})
		}
	}
	a.report = func(e ovEvent, st ovState) {
		if st.pos > e.pos {
			// The mutation sits lexically after the read: the staleness
			// arrived around a loop back-edge and bites on the next
			// iteration.
			pass.Reportf(e.pos, "%s uses an Overlay that goes stale in this loop: the backing Delta is mutated at %s in the same loop body; re-take Overlay() inside the loop after mutating",
				e.what, pass.Fset.Position(st.pos))
			return
		}
		pass.Reportf(e.pos, "%s uses a stale Overlay: its backing Delta was mutated at %s after the overlay was taken; Overlay methods panic on a stale snapshot — re-take Overlay() after the mutation batch",
			e.what, pass.Fset.Position(st.pos))
	}
	a.run()
}

// ovAssignEvents emits the create/rebind events of an assignment: binding an
// identifier via d.Overlay() makes a fresh tracked overlay; assigning an
// overlay-typed identifier from anything else stops tracking it (the old
// value, stale or not, is gone).
func ovAssignEvents(info *types.Info, n ast.Node, emit func(ovEvent)) {
	asg, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	for i, lhs := range asg.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := identObj(info, id)
		if i < len(asg.Rhs) && len(asg.Rhs) == len(asg.Lhs) {
			if call, ok := ast.Unparen(asg.Rhs[i]).(*ast.CallExpr); ok {
				fn := calleeFunc(info, call)
				if fn != nil && declPkgMatches(fn, "graph") && fn.Name() == "Overlay" && recvNamed(fn) == "Delta" {
					if recv := recvIdent(call); recv != nil {
						emit(ovEvent{kind: ovCreate, pos: call.Pos(), obj: obj, delta: identObj(info, recv)})
						continue
					}
				}
			}
		}
		if isOverlayObj(obj) {
			emit(ovEvent{kind: ovRebind, pos: id.Pos(), obj: obj})
		}
	}
}

// ovReadEvents emits the read events of a call: a Reader method invoked on
// an overlay identifier, or an overlay identifier handed to any call as an
// argument (the callee will hit Reader methods).
func ovReadEvents(info *types.Info, call *ast.CallExpr, emit func(ovEvent)) {
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := identObj(info, id); isOverlayObj(obj) {
				emit(ovEvent{kind: ovRead, pos: id.Pos(), obj: obj, what: "passing " + id.Name})
			}
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || !declPkgMatches(fn, "graph") || overlayMetaMethods[fn.Name()] {
		return
	}
	if recv := recvIdent(call); recv != nil {
		if obj := identObj(info, recv); isOverlayObj(obj) {
			emit(ovEvent{kind: ovRead, pos: call.Pos(), obj: obj, what: recv.Name + "." + fn.Name()})
		}
	}
}
